// Tests for the white-pages database: Fig. 3 record fields, attribute
// resolution, serialization, claim/release (taken marking), shadow
// accounts, and usage policies.
#include <gtest/gtest.h>

#include <thread>

#include "common/rng.hpp"
#include "db/database.hpp"
#include "db/machine.hpp"
#include "db/policy.hpp"
#include "db/shadow.hpp"
#include "query/parser.hpp"

namespace actyp::db {
namespace {

MachineRecord SampleMachine(const std::string& name = "ece1.purdue.edu") {
  MachineRecord rec;
  rec.name = name;
  rec.state = MachineState::kUp;
  rec.dyn.load = 0.4;
  rec.dyn.active_jobs = 1;
  rec.dyn.available_memory_mb = 512;
  rec.dyn.available_swap_mb = 1024;
  rec.dyn.last_update = 12345;
  rec.dyn.service_flags = kExecutionUnitUp | kPvfsManagerUp;
  rec.effective_speed = 1.7;
  rec.num_cpus = 2;
  rec.max_allowed_load = 1.5;
  rec.object_path = "/etc/punch/machines/ece1";
  rec.shared_account = "nobody";
  rec.execution_unit_port = 7001;
  rec.pvfs_mount_port = 7002;
  rec.user_groups = {"ece", "public"};
  rec.tool_groups = {"simulation"};
  rec.shadow_pool = "shadow.ece1";
  rec.usage_policy = "public-load";
  rec.params = {{"arch", "sun"}, {"memory", "512"}, {"domain", "purdue"},
                {"license", "tsuprem4"}};
  return rec;
}

// --- MachineRecord ---

TEST(MachineRecord, StateNames) {
  EXPECT_EQ(MachineStateName(MachineState::kUp), "up");
  EXPECT_EQ(ParseMachineState("BLOCKED"), MachineState::kBlocked);
  EXPECT_FALSE(ParseMachineState("happy").has_value());
}

TEST(MachineRecord, AdminParamsWinOverBuiltins) {
  MachineRecord rec = SampleMachine();
  // 'memory' appears in params (static 512) and as a dynamic field; the
  // admin param takes precedence, making aggregation criteria stable.
  EXPECT_EQ(rec.Attribute("memory"), "512");
  rec.params.erase("memory");
  EXPECT_EQ(rec.Attribute("memory"), "512");  // falls back to dynamic
  rec.dyn.available_memory_mb = 256;
  EXPECT_EQ(rec.Attribute("memory"), "256");
}

TEST(MachineRecord, BuiltinAttributes) {
  MachineRecord rec = SampleMachine();
  EXPECT_EQ(rec.Attribute("state"), "up");
  EXPECT_EQ(rec.Attribute("load"), "0.4");
  EXPECT_EQ(rec.Attribute("activejobs"), "1");
  EXPECT_EQ(rec.Attribute("speed"), "1.7");
  EXPECT_EQ(rec.Attribute("cpus"), "2");
  EXPECT_EQ(rec.Attribute("name"), "ece1.purdue.edu");
  EXPECT_EQ(rec.Attribute("sharedaccount"), "nobody");
  EXPECT_FALSE(rec.Attribute("nonexistent").has_value());
}

TEST(MachineRecord, UserAndToolGroups) {
  MachineRecord rec = SampleMachine();
  EXPECT_TRUE(rec.AllowsUserGroup("ECE"));
  EXPECT_FALSE(rec.AllowsUserGroup("physics"));
  EXPECT_TRUE(rec.SupportsToolGroup("simulation"));
  EXPECT_FALSE(rec.SupportsToolGroup("cad"));
  rec.user_groups.clear();
  EXPECT_TRUE(rec.AllowsUserGroup("anyone"));  // empty list = open
}

TEST(MachineRecord, SerializeRoundTrip) {
  const MachineRecord rec = SampleMachine();
  auto round = MachineRecord::Deserialize(rec.Serialize());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->name, rec.name);
  EXPECT_EQ(round->state, rec.state);
  EXPECT_DOUBLE_EQ(round->dyn.load, rec.dyn.load);
  EXPECT_EQ(round->dyn.active_jobs, rec.dyn.active_jobs);
  EXPECT_EQ(round->dyn.last_update, rec.dyn.last_update);
  EXPECT_EQ(round->dyn.service_flags, rec.dyn.service_flags);
  EXPECT_EQ(round->num_cpus, rec.num_cpus);
  EXPECT_EQ(round->user_groups, rec.user_groups);
  EXPECT_EQ(round->tool_groups, rec.tool_groups);
  EXPECT_EQ(round->params, rec.params);
  EXPECT_EQ(round->shadow_pool, rec.shadow_pool);
  EXPECT_EQ(round->usage_policy, rec.usage_policy);
  EXPECT_EQ(round->execution_unit_port, rec.execution_unit_port);
}

// Property-style sweep: randomized records survive the round-trip.
class MachineRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(MachineRoundTrip, RandomRecord) {
  Rng rng(1000 + GetParam());
  MachineRecord rec;
  rec.name = "m" + std::to_string(rng.NextBounded(100000));
  rec.state = static_cast<MachineState>(rng.NextBounded(3));
  rec.dyn.load = rng.Uniform(0, 8);
  rec.dyn.active_jobs = static_cast<int>(rng.NextBounded(16));
  rec.dyn.available_memory_mb = rng.Uniform(16, 4096);
  rec.dyn.available_swap_mb = rng.Uniform(16, 8192);
  rec.dyn.last_update = static_cast<SimTime>(rng.NextBounded(1u << 30));
  rec.effective_speed = rng.Uniform(0.1, 5.0);
  rec.num_cpus = 1 + static_cast<int>(rng.NextBounded(8));
  rec.max_allowed_load = rng.Uniform(0.5, 4.0);
  rec.execution_unit_port = static_cast<std::uint16_t>(rng.NextBounded(65536));
  for (int i = 0; i < static_cast<int>(rng.NextBounded(5)); ++i) {
    rec.params["k" + std::to_string(i)] = "v" + std::to_string(rng.Next() % 97);
    rec.user_groups.push_back("g" + std::to_string(i));
  }
  auto round = MachineRecord::Deserialize(rec.Serialize());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->Serialize(), rec.Serialize());
}

INSTANTIATE_TEST_SUITE_P(Fuzz, MachineRoundTrip, ::testing::Range(0, 25));

TEST(MachineRecord, DeserializeRejectsBadInput) {
  EXPECT_FALSE(MachineRecord::Deserialize("").ok());
  EXPECT_FALSE(MachineRecord::Deserialize("1;2;3").ok());
  // Tamper one numeric field in a valid line.
  std::string line = SampleMachine().Serialize();
  const std::size_t semi = line.find(';');
  line = line.substr(0, semi + 1) + "notastate" + line.substr(line.find(';', semi + 1));
  EXPECT_FALSE(MachineRecord::Deserialize(line).ok());
}

// --- ResourceDatabase ---

TEST(ResourceDatabase, AddAssignsIdsAndRejectsDuplicates) {
  ResourceDatabase database;
  auto id1 = database.Add(SampleMachine("a"));
  auto id2 = database.Add(SampleMachine("b"));
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  EXPECT_NE(*id1, *id2);
  EXPECT_FALSE(database.Add(SampleMachine("a")).ok());
  EXPECT_EQ(database.size(), 2u);
}

TEST(ResourceDatabase, GetByIdAndName) {
  ResourceDatabase database;
  auto id = database.Add(SampleMachine("host1"));
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(database.Get(*id).ok());
  EXPECT_TRUE(database.GetByName("host1").ok());
  EXPECT_FALSE(database.Get(9999).ok());
  EXPECT_FALSE(database.GetByName("nope").ok());
}

TEST(ResourceDatabase, UpdateMutatesUnderLock) {
  ResourceDatabase database;
  auto id = database.Add(SampleMachine("host1"));
  ASSERT_TRUE(database
                  .Update(*id, [](MachineRecord& rec) {
                    rec.dyn.load = 3.5;
                    rec.params["arch"] = "hp";
                  })
                  .ok());
  auto rec = database.Get(*id);
  EXPECT_DOUBLE_EQ(rec->dyn.load, 3.5);
  EXPECT_EQ(rec->params.at("arch"), "hp");
}

TEST(ResourceDatabase, ClaimMatchingMarksTaken) {
  ResourceDatabase database;
  for (int i = 0; i < 10; ++i) {
    MachineRecord rec = SampleMachine("m" + std::to_string(i));
    rec.params["arch"] = i < 6 ? "sun" : "hp";
    database.Add(std::move(rec));
  }
  auto q = query::Parser::ParseBasic("punch.rsrc.arch = sun\n");
  ASSERT_TRUE(q.ok());

  const auto claimed = database.ClaimMatching(*q, "poolA");
  EXPECT_EQ(claimed.size(), 6u);
  EXPECT_EQ(database.free_count(), 4u);
  // Second claim with the same criteria finds nothing (all taken).
  EXPECT_TRUE(database.ClaimMatching(*q, "poolB").empty());
  EXPECT_EQ(database.ListTakenBy("poolA").size(), 6u);

  EXPECT_EQ(database.ReleaseAllFrom("poolA"), 6u);
  EXPECT_EQ(database.free_count(), 10u);
}

TEST(ResourceDatabase, ClaimHonorsLimitAndState) {
  ResourceDatabase database;
  for (int i = 0; i < 8; ++i) {
    MachineRecord rec = SampleMachine("m" + std::to_string(i));
    if (i >= 6) rec.state = MachineState::kDown;
    database.Add(std::move(rec));
  }
  auto q = query::Parser::ParseBasic("punch.rsrc.arch = sun\n");
  EXPECT_EQ(database.ClaimMatching(*q, "poolA", 3).size(), 3u);
  // Down machines are never claimed.
  EXPECT_EQ(database.ClaimMatching(*q, "poolB").size(), 3u);
}

TEST(ResourceDatabase, ReleaseValidatesOwnership) {
  ResourceDatabase database;
  auto id = database.Add(SampleMachine("m0"));
  auto q = query::Parser::ParseBasic("punch.rsrc.arch = sun\n");
  database.ClaimMatching(*q, "poolA");
  EXPECT_EQ(database.Release(*id, "poolB").code(),
            StatusCode::kPermissionDenied);
  EXPECT_TRUE(database.Release(*id, "poolA").ok());
}

TEST(ResourceDatabase, ConcurrentClaimsPartition) {
  ResourceDatabase database;
  for (int i = 0; i < 200; ++i) database.Add(SampleMachine("m" + std::to_string(i)));
  auto q = query::Parser::ParseBasic("punch.rsrc.arch = sun\n");

  std::vector<std::vector<MachineId>> results(4);
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      results[t] = database.ClaimMatching(*q, "pool" + std::to_string(t), 80);
    });
  }
  for (auto& thread : threads) thread.join();

  std::set<MachineId> all;
  std::size_t total = 0;
  for (const auto& r : results) {
    total += r.size();
    all.insert(r.begin(), r.end());
  }
  EXPECT_EQ(all.size(), total) << "claims must be disjoint";
  EXPECT_EQ(total, 200u);
}

TEST(ResourceDatabase, SnapshotRoundTrip) {
  ResourceDatabase database;
  for (int i = 0; i < 5; ++i) database.Add(SampleMachine("m" + std::to_string(i)));
  ResourceDatabase loaded;
  ASSERT_TRUE(loaded.LoadFrom(database.Serialize()).ok());
  EXPECT_EQ(loaded.size(), 5u);
  EXPECT_EQ(loaded.Serialize(), database.Serialize());
}

// --- shadow accounts ---

// --- change tracking (dirty-id refresh) ---

TEST(ResourceDatabase, VersionsAdvanceOnEveryMutation) {
  ResourceDatabase database;
  EXPECT_EQ(database.version(), 0u);
  auto id = database.Add(SampleMachine("host1"));
  ASSERT_TRUE(id.ok());
  const std::uint64_t after_add = database.version();
  EXPECT_GT(after_add, 0u);
  EXPECT_EQ(database.Get(*id)->version, after_add);

  ASSERT_TRUE(database.UpdateDynamic(*id, DynamicState{}).ok());
  EXPECT_GT(database.version(), after_add);
  EXPECT_EQ(database.Get(*id)->version, database.version());
}

TEST(ResourceDatabase, ChangesSinceReportsOnlyDirtyIds) {
  ResourceDatabase database;
  std::vector<MachineId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(*database.Add(SampleMachine("m" + std::to_string(i))));
  }
  std::vector<MachineId> dirty;
  auto cursor = database.ChangesSince(0, &dirty);
  ASSERT_TRUE(cursor.has_value());
  EXPECT_EQ(dirty.size(), ids.size());  // adds are changes

  dirty.clear();
  cursor = database.ChangesSince(*cursor, &dirty);
  ASSERT_TRUE(cursor.has_value());
  EXPECT_TRUE(dirty.empty());  // quiescent database

  // Touch two machines (one of them twice); exactly those come back,
  // deduplicated and ascending.
  ASSERT_TRUE(database.UpdateDynamic(ids[5], DynamicState{}).ok());
  ASSERT_TRUE(database.UpdateDynamic(ids[2], DynamicState{}).ok());
  ASSERT_TRUE(database.UpdateDynamic(ids[5], DynamicState{}).ok());
  dirty.clear();
  cursor = database.ChangesSince(*cursor, &dirty);
  ASSERT_TRUE(cursor.has_value());
  EXPECT_EQ(dirty, (std::vector<MachineId>{ids[2], ids[5]}));
}

TEST(ResourceDatabase, ChangesSinceCoversClaimAndRelease) {
  ResourceDatabase database;
  for (int i = 0; i < 4; ++i) {
    database.Add(SampleMachine("m" + std::to_string(i)));
  }
  std::vector<MachineId> dirty;
  const auto cursor = database.ChangesSince(0, &dirty);
  ASSERT_TRUE(cursor.has_value());

  auto q = query::Parser::ParseBasic("punch.rsrc.arch = sun\n");
  ASSERT_TRUE(q.ok());
  const auto claimed = database.ClaimMatching(*q, "poolA");
  ASSERT_EQ(claimed.size(), 4u);
  dirty.clear();
  auto cursor2 = database.ChangesSince(*cursor, &dirty);
  ASSERT_TRUE(cursor2.has_value());
  EXPECT_EQ(dirty.size(), 4u);

  database.ReleaseAllFrom("poolA");
  dirty.clear();
  cursor2 = database.ChangesSince(*cursor2, &dirty);
  ASSERT_TRUE(cursor2.has_value());
  EXPECT_EQ(dirty.size(), 4u);
}

TEST(ResourceDatabase, StaleCursorSignalsFullRefresh) {
  ResourceDatabase database;
  auto id = database.Add(SampleMachine("host1"));
  ASSERT_TRUE(id.ok());
  // Overflow the journal so the floor moves past version 0.
  for (int i = 0; i < (1 << 16) + 100; ++i) {
    // Alternate two records: consecutive same-id updates coalesce into
    // one journal entry, so a single id would never trim.
    database.Add(SampleMachine("churn" + std::to_string(i)));
  }
  std::vector<MachineId> dirty;
  EXPECT_FALSE(database.ChangesSince(0, &dirty).has_value());
  // A fresh cursor works again.
  const auto cursor = database.ChangesSince(database.version(), &dirty);
  ASSERT_TRUE(cursor.has_value());
  EXPECT_EQ(*cursor, database.version());
}

TEST(ResourceDatabase, ApplyDynamicBatchesAndJournals) {
  ResourceDatabase database;
  std::vector<MachineId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(*database.Add(SampleMachine("m" + std::to_string(i))));
  }
  std::vector<MachineId> dirty;
  const auto cursor = database.ChangesSince(0, &dirty);
  ASSERT_TRUE(cursor.has_value());

  DynamicState dyn;
  dyn.load = 2.25;
  database.ApplyDynamic({{ids[1], dyn}, {ids[3], dyn}, {9999, dyn}});
  EXPECT_DOUBLE_EQ(database.Get(ids[1])->dyn.load, 2.25);
  EXPECT_DOUBLE_EQ(database.Get(ids[3])->dyn.load, 2.25);

  dirty.clear();
  const auto cursor2 = database.ChangesSince(*cursor, &dirty);
  ASSERT_TRUE(cursor2.has_value());
  EXPECT_EQ(dirty, (std::vector<MachineId>{ids[1], ids[3]}));
}

TEST(ResourceDatabase, VisitAllSeesEveryRecordWithoutCopies) {
  ResourceDatabase database;
  for (int i = 0; i < 6; ++i) {
    database.Add(SampleMachine("m" + std::to_string(i)));
  }
  std::size_t seen = 0;
  database.VisitAll([&seen](const MachineRecord& rec) {
    EXPECT_NE(rec.id, kInvalidMachine);
    ++seen;
  });
  EXPECT_EQ(seen, 6u);
}

TEST(ShadowAccountPool, AcquireReleaseCycle) {
  ShadowAccountPool pool(5000, 3);
  EXPECT_EQ(pool.total(), 3u);
  auto a = pool.Acquire("sess-a");
  auto b = pool.Acquire("sess-b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(pool.free_count(), 1u);
  EXPECT_TRUE(pool.Release(*a, "sess-a").ok());
  EXPECT_EQ(pool.free_count(), 2u);
}

TEST(ShadowAccountPool, ExhaustionAndWrongSession) {
  ShadowAccountPool pool(5000, 1);
  auto a = pool.Acquire("sess-a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(pool.Acquire("sess-b").status().code(), StatusCode::kExhausted);
  EXPECT_EQ(pool.Release(*a, "sess-b").code(), StatusCode::kPermissionDenied);
  EXPECT_FALSE(pool.Release(9999, "sess-a").ok());
  EXPECT_FALSE(pool.Acquire("").ok());
}

TEST(ShadowAccountPool, ReleaseSessionCleansUp) {
  ShadowAccountPool pool(5000, 4);
  pool.Acquire("crashed");
  pool.Acquire("crashed");
  pool.Acquire("alive");
  EXPECT_EQ(pool.ReleaseSession("crashed"), 2u);
  EXPECT_EQ(pool.free_count(), 3u);
}

TEST(ShadowAccountRegistry, GetOrCreateIsIdempotent) {
  ShadowAccountRegistry registry;
  auto& a = registry.GetOrCreate("shadow.m1", 100, 4);
  auto& b = registry.GetOrCreate("shadow.m1", 999, 99);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.total(), 4u);
  EXPECT_EQ(registry.Find("shadow.m1"), &a);
  EXPECT_EQ(registry.Find("missing"), nullptr);
}

// --- usage policies ---

TEST(UsagePolicy, ParseAndEvaluatePaperExample) {
  // "public users are only allowed to access this machine if its load is
  // below a specified threshold" (§4.1).
  auto policy = UsagePolicy::Parse("deny public if load >= 0.5; allow");
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();

  MachineRecord rec = SampleMachine();
  rec.params.clear();
  rec.dyn.load = 0.7;
  EXPECT_FALSE(policy->Evaluate(rec, "public"));
  EXPECT_TRUE(policy->Evaluate(rec, "ece"));  // rule only matches public
  rec.dyn.load = 0.3;
  EXPECT_TRUE(policy->Evaluate(rec, "public"));
}

TEST(UsagePolicy, FirstMatchingRuleWins) {
  auto policy = UsagePolicy::Parse(
      "allow ece; deny * if load >= 1.0; allow");
  ASSERT_TRUE(policy.ok());
  MachineRecord rec = SampleMachine();
  rec.params.clear();
  rec.dyn.load = 2.0;
  EXPECT_TRUE(policy->Evaluate(rec, "ece"));    // first rule
  EXPECT_FALSE(policy->Evaluate(rec, "other")); // second rule
}

TEST(UsagePolicy, GroupGlobs) {
  auto policy = UsagePolicy::Parse("deny guest*");
  ASSERT_TRUE(policy.ok());
  MachineRecord rec = SampleMachine();
  EXPECT_FALSE(policy->Evaluate(rec, "guest42"));
  EXPECT_TRUE(policy->Evaluate(rec, "staff"));
}

TEST(UsagePolicy, MultipleConditionsAreConjunctive) {
  auto policy =
      UsagePolicy::Parse("deny * if load >= 0.5, memory <= 128");
  ASSERT_TRUE(policy.ok());
  MachineRecord rec = SampleMachine();
  rec.params.clear();
  rec.dyn.load = 0.9;
  rec.dyn.available_memory_mb = 64;
  EXPECT_FALSE(policy->Evaluate(rec, "x"));
  rec.dyn.available_memory_mb = 512;  // second condition fails -> rule skipped
  EXPECT_TRUE(policy->Evaluate(rec, "x"));
}

TEST(UsagePolicy, ParseErrors) {
  EXPECT_FALSE(UsagePolicy::Parse("").ok());
  EXPECT_FALSE(UsagePolicy::Parse("maybe public").ok());
  EXPECT_FALSE(UsagePolicy::Parse("deny * if load").ok());
}

TEST(PolicyRegistry, ResolvesByName) {
  PolicyRegistry registry;
  ASSERT_TRUE(registry.Register("public-load",
                                "deny public if load >= 0.5; allow")
                  .ok());
  MachineRecord rec = SampleMachine();
  rec.params.clear();
  rec.usage_policy = "public-load";
  rec.dyn.load = 0.9;
  EXPECT_FALSE(registry.Allows(rec, "public"));
  EXPECT_TRUE(registry.Allows(rec, "ece"));

  rec.usage_policy = "unregistered";
  EXPECT_TRUE(registry.Allows(rec, "public"));  // default open
  rec.usage_policy.clear();
  EXPECT_TRUE(registry.Allows(rec, "public"));
}

}  // namespace
}  // namespace actyp::db
