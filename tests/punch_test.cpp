// Tests for the PUNCH substrate: knowledge base, estimator, application
// manager (Fig. 2), VFS stub, user registry, and the network desktop's
// full Fig. 1 sequence against a simulated pipeline.
#include <gtest/gtest.h>

#include "actyp/scenario.hpp"
#include "punch/app_manager.hpp"
#include "punch/desktop.hpp"
#include "punch/estimator.hpp"
#include "punch/knowledge_base.hpp"
#include "punch/vfs.hpp"
#include "query/parser.hpp"

namespace actyp::punch {
namespace {

// --- knowledge base ---

TEST(KnowledgeBase, RegisterAndLookup) {
  KnowledgeBase kb;
  ToolSpec tool;
  tool.name = "mytool";
  AlgorithmSpec solo;
  solo.name = "solo";
  tool.algorithms.push_back(solo);
  ASSERT_TRUE(kb.RegisterTool(tool).ok());
  EXPECT_FALSE(kb.RegisterTool(tool).ok());
  EXPECT_TRUE(kb.Lookup("MyTool").ok());  // case-insensitive
  EXPECT_FALSE(kb.Lookup("other").ok());
}

TEST(KnowledgeBase, RejectsInvalidSpecs) {
  KnowledgeBase kb;
  EXPECT_FALSE(kb.RegisterTool(ToolSpec{}).ok());
  ToolSpec no_algo;
  no_algo.name = "x";
  EXPECT_FALSE(kb.RegisterTool(no_algo).ok());
}

TEST(KnowledgeBase, DemoHasPaperTool) {
  KnowledgeBase kb = KnowledgeBase::Demo();
  auto tool = kb.Lookup("tsuprem4");
  ASSERT_TRUE(tool.ok());
  EXPECT_EQ(tool->algorithms.size(), 3u);  // the Fig. 2 algorithm menu
  EXPECT_EQ(kb.ToolNames().size(), 3u);
}

// --- estimator ---

TEST(Estimator, PowerLawModel) {
  AlgorithmSpec algo;
  algo.name = "a";
  algo.cpu_base = 10;
  algo.cpu_coeff = 2;
  algo.cpu_exponents = {{"n", 2.0}};
  algo.memory_base_mb = 32;
  algo.memory_coeff = 0.5;
  algo.memory_param = "n";
  auto est = Estimator::Estimate(algo, {{"n", 10}});
  EXPECT_DOUBLE_EQ(est.cpu_units, 10 + 2 * 100);
  EXPECT_DOUBLE_EQ(est.memory_mb, 32 + 0.5 * 10);
}

TEST(Estimator, MissingParametersDefaultToOne) {
  AlgorithmSpec algo;
  algo.name = "a";
  algo.cpu_base = 5;
  algo.cpu_coeff = 3;
  algo.cpu_exponents = {{"missing", 2.0}};
  auto est = Estimator::Estimate(algo, {});
  EXPECT_DOUBLE_EQ(est.cpu_units, 8);
}

TEST(Estimator, SelectsMostAccurateWithoutBudget) {
  KnowledgeBase kb = KnowledgeBase::Demo();
  auto tool = kb.Lookup("tsuprem4");
  auto est = Estimator::SelectAlgorithm(*tool, {{"nodes", 1000}});
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->algorithm, "monte-carlo");  // accuracy 3.0
}

TEST(Estimator, BudgetForcesCheaperAlgorithm) {
  KnowledgeBase kb = KnowledgeBase::Demo();
  auto tool = kb.Lookup("tsuprem4");
  const auto expensive =
      Estimator::SelectAlgorithm(*tool, {{"nodes", 1e6}, {"carriers", 1e6}});
  ASSERT_TRUE(expensive.ok());
  auto budgeted = Estimator::SelectAlgorithm(
      *tool, {{"nodes", 1e6}, {"carriers", 1e6}},
      expensive->cpu_units * 0.5);
  ASSERT_TRUE(budgeted.ok());
  EXPECT_NE(budgeted->algorithm, expensive->algorithm);
  EXPECT_LT(budgeted->cpu_units, expensive->cpu_units);
}

TEST(Estimator, ImpossibleBudgetFails) {
  KnowledgeBase kb = KnowledgeBase::Demo();
  auto tool = kb.Lookup("tsuprem4");
  EXPECT_FALSE(Estimator::SelectAlgorithm(*tool, {{"nodes", 1e6}}, 0.001).ok());
}

// --- application manager (Fig. 2) ---

TEST(ApplicationManager, ExtractParameters) {
  const auto params = ApplicationManager::ExtractParameters(
      "# device spec\n"
      "nodes = 5000\n"
      "carriers = 2e4\n"
      "label = fancy   # non-numeric, ignored\n"
      "norm=1e-6\n");
  EXPECT_EQ(params.size(), 3u);
  EXPECT_DOUBLE_EQ(params.at("nodes"), 5000);
  EXPECT_DOUBLE_EQ(params.at("carriers"), 2e4);
  EXPECT_DOUBLE_EQ(params.at("norm"), 1e-6);
}

TEST(ApplicationManager, ComposesCompleteQuery) {
  KnowledgeBase kb = KnowledgeBase::Demo();
  ApplicationManager manager(&kb);
  RunRequest request;
  request.tool = "tsuprem4";
  request.input_deck = "nodes = 5000\ncarriers = 10000\n";
  request.user_login = "kapadia";
  request.access_group = "ece";
  request.domain = "purdue";

  auto run = manager.Compose(request);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const query::Query& q = run->query;
  EXPECT_TRUE(q.GetRsrc("memory").has_value());
  EXPECT_EQ(q.GetRsrc("memory")->op, query::CmpOp::kGe);
  EXPECT_EQ(q.GetRsrc("license")->value.text(), "tsuprem4");
  EXPECT_EQ(q.GetRsrc("domain")->value.text(), "purdue");
  EXPECT_EQ(q.GetUser("login"), "kapadia");
  EXPECT_FALSE(q.GetAppl("expectedcpuuse").empty());
  EXPECT_EQ(q.GetAppl("algorithm"), run->estimate.algorithm);

  // The arch term is an or-clause over supported architectures that
  // decomposes when the serialized query is parsed.
  auto composite = query::Parser::Parse(q.ToText());
  ASSERT_TRUE(composite.ok()) << composite.status().ToString();
  EXPECT_EQ(composite->size(), 2u);  // tsuprem4 runs on sun and hp
}

TEST(ApplicationManager, UnknownToolFails) {
  KnowledgeBase kb = KnowledgeBase::Demo();
  ApplicationManager manager(&kb);
  RunRequest request;
  request.tool = "doom";
  EXPECT_FALSE(manager.Compose(request).ok());
}

// --- vfs ---

TEST(Vfs, MountUnmountLifecycle) {
  VirtualFileSystem vfs;
  auto mount = vfs.Mount("sess-1", "m0", "apps/spice3");
  ASSERT_TRUE(mount.ok());
  EXPECT_EQ(mount->machine, "m0");
  EXPECT_NE(mount->mount_point.find("apps/spice3"), std::string::npos);
  EXPECT_FALSE(vfs.Mount("sess-1", "m0", "apps/spice3").ok());  // dup
  EXPECT_EQ(vfs.MountsFor("sess-1").size(), 1u);

  EXPECT_TRUE(vfs.Unmount("sess-1", "apps/spice3").ok());
  EXPECT_FALSE(vfs.Unmount("sess-1", "apps/spice3").ok());
  EXPECT_EQ(vfs.total_mounts(), 0u);
}

TEST(Vfs, SessionKeyIsCapability) {
  VirtualFileSystem vfs;
  EXPECT_FALSE(vfs.Mount("", "m0", "apps/x").ok());
  vfs.Mount("sess-1", "m0", "apps/x");
  EXPECT_FALSE(vfs.Unmount("sess-2", "apps/x").ok());
}

TEST(Vfs, UnmountSessionReleasesAll) {
  VirtualFileSystem vfs;
  vfs.Mount("sess-1", "m0", "apps/x");
  vfs.Mount("sess-1", "m0", "home/user");
  vfs.Mount("sess-2", "m1", "apps/y");
  EXPECT_EQ(vfs.UnmountSession("sess-1"), 2u);
  EXPECT_EQ(vfs.total_mounts(), 1u);
}

// --- user registry ---

TEST(UserRegistry, AuthAndAuthorization) {
  UserRegistry users;
  UserAccount account;
  account.login = "kapadia";
  account.access_group = "ece";
  account.allowed_tools = {"tsuprem4"};
  ASSERT_TRUE(users.AddUser(account).ok());
  EXPECT_FALSE(users.AddUser(account).ok());

  auto found = users.Authenticate("KAPADIA");
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(users.MayRun(*found, "tsuprem4"));
  EXPECT_FALSE(users.MayRun(*found, "spice3"));
  EXPECT_FALSE(users.Authenticate("intruder").ok());

  UserAccount open;
  open.login = "prof";
  users.AddUser(open);
  EXPECT_TRUE(users.MayRun(*users.Authenticate("prof"), "anything"));
}

// --- network desktop end-to-end over the simulated pipeline ---

class DesktopEndToEnd : public ::testing::Test {
 protected:
  DesktopEndToEnd() {
    ScenarioConfig config;
    config.machines = 64;
    config.clusters = 1;
    config.clients = 0;
    config.precreate_pools = false;  // desktop queries create pools
    config.seed = 5;
    scenario_ = std::make_unique<SimScenario>(config);
    // Give the fleet the attributes the demo tools ask for.
    scenario_->database().ForEach([this](const db::MachineRecord& rec) {
      scenario_->database().Update(rec.id, [](db::MachineRecord& r) {
        r.params["license"] = "tsuprem4";
        r.params["domain"] = "purdue";
        r.params["arch"] = "sun";
        r.params["memory"] = "1024";
      });
    });

    kb_ = KnowledgeBase::Demo();
    UserAccount account;
    account.login = "kapadia";
    account.access_group = "ece";
    account.storage_provider = "warehouse";
    users_.AddUser(account);
  }

  // Synchronous submit: post the query into the sim network through a
  // probe node and run the kernel until the reply arrives.
  Result<pipeline::Allocation> Submit(const std::string& query_text) {
    struct Client final : net::Node {
      void OnMessage(const net::Envelope& env, net::NodeContext&) override {
        replies.push_back(env.message);
      }
      std::vector<net::Message> replies;
    };
    const std::string addr = "desktop" + std::to_string(++submit_seq_);
    auto client = std::make_shared<Client>();
    scenario_->network().AddNode(addr, client, {"clients", 1});

    net::Message m{net::msg::kQuery};
    m.SetHeader(net::hdr::kReplyTo, addr);
    m.SetHeader(net::hdr::kRequestId, std::to_string(submit_seq_));
    m.body = query_text;
    scenario_->network().Post(addr, "qm0", std::move(m));
    // The deployment has periodic timers (monitor, sweeps), so step until
    // the reply arrives rather than draining the queue.
    const SimTime deadline = scenario_->kernel().Now() + Seconds(120);
    while (client->replies.empty() &&
           scenario_->kernel().Now() < deadline &&
           scenario_->kernel().Step()) {
    }

    if (client->replies.empty()) return Unavailable("no reply");
    if (client->replies[0].type == net::msg::kFailure) {
      return Unavailable(client->replies[0].Header(net::hdr::kError));
    }
    return pipeline::ParseAllocationMessage(client->replies[0]);
  }

  std::unique_ptr<SimScenario> scenario_;
  KnowledgeBase kb_;
  UserRegistry users_;
  VirtualFileSystem vfs_;
  int submit_seq_ = 0;
};

TEST_F(DesktopEndToEnd, FullRunLifecycle) {
  std::vector<pipeline::Allocation> released;
  NetworkDesktop desktop(
      &kb_, &users_, &vfs_,
      [this](const std::string& text) { return Submit(text); },
      [&released](const pipeline::Allocation& a) { released.push_back(a); });

  RunRequest request;
  request.tool = "tsuprem4";
  request.input_deck = "nodes = 2000\ncarriers = 5000\n";
  request.user_login = "kapadia";
  request.domain = "purdue";

  auto outcome = desktop.StartRun(request);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_FALSE(outcome->allocation.machine_name.empty());
  EXPECT_FALSE(outcome->allocation.session_key.empty());
  // Application disk + data disk from the storage provider.
  ASSERT_EQ(outcome->mounts.size(), 2u);
  EXPECT_NE(outcome->mounts[1].disk.find("warehouse/"), std::string::npos);
  EXPECT_EQ(vfs_.total_mounts(), 2u);

  ASSERT_TRUE(desktop.FinishRun(*outcome).ok());
  EXPECT_EQ(vfs_.total_mounts(), 0u);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].session_key, outcome->allocation.session_key);
}

TEST_F(DesktopEndToEnd, UnknownUserRejected) {
  NetworkDesktop desktop(&kb_, &users_, &vfs_,
                         [this](const std::string& text) { return Submit(text); },
                         {});
  RunRequest request;
  request.tool = "tsuprem4";
  request.user_login = "mallory";
  EXPECT_EQ(desktop.StartRun(request).status().code(),
            StatusCode::kPermissionDenied);
}

TEST_F(DesktopEndToEnd, ToolAuthorizationEnforced) {
  UserAccount limited;
  limited.login = "student";
  limited.access_group = "ece";
  limited.allowed_tools = {"spice3"};
  users_.AddUser(limited);
  NetworkDesktop desktop(&kb_, &users_, &vfs_,
                         [this](const std::string& text) { return Submit(text); },
                         {});
  RunRequest request;
  request.tool = "tsuprem4";
  request.user_login = "student";
  EXPECT_EQ(desktop.StartRun(request).status().code(),
            StatusCode::kPermissionDenied);
}

}  // namespace
}  // namespace actyp::punch
