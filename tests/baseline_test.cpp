// Tests for the baseline schedulers: centralized, matchmaker, and the
// static-partition frontend.
#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/central.hpp"
#include "baseline/matchmaker.hpp"
#include "baseline/scan_cache.hpp"
#include "baseline/static_partition.hpp"
#include "pipeline/protocol.hpp"
#include "pipeline/resource_pool.hpp"
#include "query/parser.hpp"
#include "simnet/kernel.hpp"
#include "simnet/sim_network.hpp"

namespace actyp::baseline {
namespace {

class Probe final : public net::Node {
 public:
  void OnMessage(const net::Envelope& env, net::NodeContext& ctx) override {
    messages.push_back(env.message);
    times.push_back(ctx.Now());
  }
  std::vector<net::Message> messages;
  std::vector<SimTime> times;
  [[nodiscard]] int count(std::string_view type) const {
    int n = 0;
    for (const auto& m : messages) n += (m.type == type);
    return n;
  }
};

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest() : network_(&kernel_, simnet::Topology::Lan(), 11) {
    network_.AddHost("alpha", 12);
    probe_ = std::make_shared<Probe>();
    network_.AddNode("probe", probe_, {"alpha", 2});
  }

  void AddMachines(int count, const std::string& arch) {
    for (int i = 0; i < count; ++i) {
      db::MachineRecord rec;
      rec.name = arch + std::to_string(next_id_++);
      rec.params["arch"] = arch;
      rec.dyn.available_memory_mb = 512;
      rec.execution_unit_port = 7000;
      ASSERT_TRUE(database_.Add(std::move(rec)).ok());
    }
  }

  net::Message QueryMessage(const std::string& body, std::uint64_t id = 1) {
    net::Message m{net::msg::kQuery};
    m.SetHeader(net::hdr::kReplyTo, "probe");
    m.SetHeader(net::hdr::kRequestId, std::to_string(id));
    m.body = body;
    return m;
  }

  simnet::SimKernel kernel_;
  simnet::SimNetwork network_;
  db::ResourceDatabase database_;
  std::shared_ptr<Probe> probe_;
  int next_id_ = 0;
};

// --- central scheduler ---

TEST_F(BaselineTest, CentralAllocatesLeastLoaded) {
  AddMachines(4, "sun");
  database_.Update(2, [](db::MachineRecord& r) { r.dyn.load = 0.0; });
  database_.Update(1, [](db::MachineRecord& r) { r.dyn.load = 2.0; });
  database_.Update(3, [](db::MachineRecord& r) { r.dyn.load = 2.0; });
  database_.Update(4, [](db::MachineRecord& r) { r.dyn.load = 2.0; });

  auto central =
      std::make_shared<CentralScheduler>(CentralSchedulerConfig{}, &database_);
  network_.AddNode("central", central, {"alpha", 1});

  network_.Post("probe", "central", QueryMessage("punch.rsrc.arch = sun\n"));
  kernel_.Run();
  ASSERT_EQ(probe_->count(net::msg::kAllocation), 1);
  EXPECT_EQ(probe_->messages[0].Header(net::hdr::kMachine),
            database_.Get(2)->name);
  EXPECT_EQ(central->stats().allocations, 1u);
}

TEST_F(BaselineTest, CentralTracksItsOwnPlacements) {
  AddMachines(2, "sun");
  auto central =
      std::make_shared<CentralScheduler>(CentralSchedulerConfig{}, &database_);
  network_.AddNode("central", central, {"alpha", 1});

  network_.Post("probe", "central", QueryMessage("punch.rsrc.arch = sun\n", 1));
  network_.Post("probe", "central", QueryMessage("punch.rsrc.arch = sun\n", 2));
  kernel_.Run();
  ASSERT_EQ(probe_->count(net::msg::kAllocation), 2);
  // Two placements spread over the two machines.
  EXPECT_NE(probe_->messages[0].Header(net::hdr::kMachine),
            probe_->messages[1].Header(net::hdr::kMachine));

  // Release one and verify the job count drains.
  auto allocation = pipeline::ParseAllocationMessage(probe_->messages[0]);
  ASSERT_TRUE(allocation.ok());
  network_.Post("probe", "central",
                pipeline::MakeReleaseMessage(allocation->machine_id,
                                             allocation->session_key));
  kernel_.Run();
  EXPECT_EQ(central->stats().releases, 1u);
}

TEST_F(BaselineTest, CentralFailsUnmatchable) {
  AddMachines(2, "sun");
  auto central =
      std::make_shared<CentralScheduler>(CentralSchedulerConfig{}, &database_);
  network_.AddNode("central", central, {"alpha", 1});
  network_.Post("probe", "central", QueryMessage("punch.rsrc.arch = vax\n"));
  network_.Post("probe", "central", QueryMessage("broken", 2));
  kernel_.Run();
  EXPECT_EQ(probe_->count(net::msg::kFailure), 2);
}

TEST_F(BaselineTest, CentralScanCostScalesWithDatabase) {
  AddMachines(1000, "sun");
  auto central =
      std::make_shared<CentralScheduler>(CentralSchedulerConfig{}, &database_);
  network_.AddNode("central", central, {"alpha", 1});
  network_.Post("probe", "central", QueryMessage("punch.rsrc.arch = sun\n"));
  kernel_.Run();
  const auto stats = network_.StatsFor("central");
  // 1000 machines x pool_per_machine (6us) plus translate overhead.
  EXPECT_GE(stats.busy_time, Micros(6000));
}

// --- matchmaker ---

TEST_F(BaselineTest, MatchmakerBatchesUntilCycle) {
  AddMachines(4, "sun");
  MatchmakerConfig config;
  config.cycle_period = Seconds(5);
  auto matchmaker = std::make_shared<Matchmaker>(config, &database_);
  network_.AddNode("mm", matchmaker, {"alpha", 1});

  network_.Post("probe", "mm", QueryMessage("punch.rsrc.arch = sun\n"));
  kernel_.RunUntil(Seconds(4));
  EXPECT_EQ(probe_->count(net::msg::kAllocation), 0);  // still queued
  EXPECT_EQ(matchmaker->queue_depth(), 1u);

  kernel_.RunUntil(Seconds(6));
  EXPECT_EQ(probe_->count(net::msg::kAllocation), 1);
  // Reply arrives just after the 5s negotiation cycle.
  EXPECT_GE(probe_->times[0], Seconds(5));
  EXPECT_EQ(matchmaker->stats().cycles, 1u);
}

TEST_F(BaselineTest, MatchmakerServesWholeBatch) {
  AddMachines(8, "sun");
  MatchmakerConfig config;
  config.cycle_period = Seconds(2);
  auto matchmaker = std::make_shared<Matchmaker>(config, &database_);
  network_.AddNode("mm", matchmaker, {"alpha", 1});
  for (int i = 0; i < 5; ++i) {
    network_.Post("probe", "mm", QueryMessage("punch.rsrc.arch = sun\n", i));
  }
  kernel_.RunUntil(Seconds(3));
  EXPECT_EQ(probe_->count(net::msg::kAllocation), 5);
  EXPECT_EQ(matchmaker->stats().matched, 5u);
}

TEST_F(BaselineTest, MatchmakerUnmatchedReported) {
  AddMachines(1, "sun");
  MatchmakerConfig config;
  config.cycle_period = Seconds(1);
  auto matchmaker = std::make_shared<Matchmaker>(config, &database_);
  network_.AddNode("mm", matchmaker, {"alpha", 1});
  network_.Post("probe", "mm", QueryMessage("punch.rsrc.arch = vax\n"));
  kernel_.RunUntil(Seconds(2));
  EXPECT_EQ(probe_->count(net::msg::kFailure), 1);
  EXPECT_EQ(matchmaker->stats().unmatched, 1u);
}

// --- static partition frontend ---

TEST_F(BaselineTest, StaticFrontendRoutesByKey) {
  AddMachines(4, "sun");
  AddMachines(4, "hp");
  // Two static pools behind the frontend.
  db::ShadowAccountRegistry shadows;
  directory::DirectoryService dir;
  auto make_pool = [&](const std::string& text, const std::string& addr) {
    auto criteria = query::Parser::ParseBasic(text);
    pipeline::ResourcePoolConfig config;
    config.pool_name = criteria->PoolName();
    config.criteria = *criteria;
    config.resort_period = 0;
    auto pool = std::make_shared<pipeline::ResourcePool>(
        config, &database_, &dir, &shadows, nullptr);
    network_.AddNode(addr, pool, {"alpha", 1});
    return pool;
  };
  make_pool("punch.rsrc.arch = sun\n", "pool.sun");
  make_pool("punch.rsrc.arch = hp\n", "pool.hp");

  StaticPartitionConfig config;
  config.route_key = "arch";
  config.routes = {{"sun", "pool.sun"}, {"hp", "pool.hp"}};
  auto frontend = std::make_shared<StaticPartitionFrontend>(config);
  network_.AddNode("frontend", frontend, {"alpha", 1});

  network_.Post("probe", "frontend", QueryMessage("punch.rsrc.arch = hp\n", 1));
  network_.Post("probe", "frontend", QueryMessage("punch.rsrc.arch = sun\n", 2));
  kernel_.Run();
  EXPECT_EQ(probe_->count(net::msg::kAllocation), 2);
  EXPECT_EQ(frontend->stats().routed, 2u);
}

TEST_F(BaselineTest, StaticFrontendFailsUnknownRoute) {
  StaticPartitionConfig config;
  config.route_key = "arch";
  config.routes = {{"sun", "pool.sun"}};
  auto frontend = std::make_shared<StaticPartitionFrontend>(config);
  network_.AddNode("frontend", frontend, {"alpha", 1});
  network_.Post("probe", "frontend", QueryMessage("punch.rsrc.arch = vax\n"));
  kernel_.Run();
  EXPECT_EQ(probe_->count(net::msg::kFailure), 1);
  EXPECT_EQ(frontend->stats().failures, 1u);
}

TEST_F(BaselineTest, StaticFrontendUsesFallback) {
  AddMachines(2, "sun");
  db::ShadowAccountRegistry shadows;
  directory::DirectoryService dir;
  auto criteria = query::Parser::ParseBasic("punch.rsrc.arch = sun\n");
  pipeline::ResourcePoolConfig pool_config;
  pool_config.pool_name = criteria->PoolName();
  pool_config.criteria = *criteria;
  pool_config.resort_period = 0;
  network_.AddNode("pool.any",
                   std::make_shared<pipeline::ResourcePool>(
                       pool_config, &database_, &dir, &shadows, nullptr),
                   {"alpha", 1});

  StaticPartitionConfig config;
  config.route_key = "arch";
  config.fallback = "pool.any";
  auto frontend = std::make_shared<StaticPartitionFrontend>(config);
  network_.AddNode("frontend", frontend, {"alpha", 1});
  network_.Post("probe", "frontend", QueryMessage("punch.rsrc.arch = sun\n"));
  kernel_.Run();
  EXPECT_EQ(probe_->count(net::msg::kAllocation), 1);
}

// --- journal-fed scan cache ---

TEST_F(BaselineTest, ScanCachePrimesThenRefreshesOnlyChurn) {
  AddMachines(50, "x86");
  ScanCache cache(&database_);

  // Priming sweep copies the whole fleet; a quiet database then costs
  // nothing per scan.
  EXPECT_EQ(cache.Refresh(), 50u);
  EXPECT_EQ(cache.Refresh(), 0u);
  EXPECT_EQ(cache.size(), 50u);

  // A single dynamic update refreshes exactly one mirror entry, and the
  // mirror reflects the new value.
  const auto record = database_.GetByName("x860");
  ASSERT_TRUE(record.ok());
  db::DynamicState dyn = record->dyn;
  dyn.load = 3.5;
  ASSERT_TRUE(database_.UpdateDynamic(record->id, dyn).ok());
  EXPECT_EQ(cache.Refresh(), 1u);
  bool seen = false;
  cache.ForEach([&](const db::MachineRecord& rec) {
    if (rec.id == record->id) {
      seen = true;
      EXPECT_DOUBLE_EQ(rec.dyn.load, 3.5);
    }
  });
  EXPECT_TRUE(seen);
  EXPECT_EQ(cache.entries_refreshed(), 51u);
}

TEST_F(BaselineTest, ScanCacheIteratesInAscendingIdOrder) {
  AddMachines(20, "sparc");
  ScanCache cache(&database_);
  cache.Refresh();

  // Same order the live database scans in — first-found-wins tie-breaks
  // (and so every allocation decision) are unchanged.
  std::vector<db::MachineId> cached;
  cache.ForEach(
      [&](const db::MachineRecord& rec) { cached.push_back(rec.id); });
  std::vector<db::MachineId> live;
  database_.ForEach(
      [&](const db::MachineRecord& rec) { live.push_back(rec.id); });
  EXPECT_EQ(cached, live);
  EXPECT_TRUE(std::is_sorted(cached.begin(), cached.end()));
}

TEST_F(BaselineTest, CentralReportsRefreshWorkViaStats) {
  AddMachines(30, "x86");
  auto central = std::make_shared<CentralScheduler>(CentralSchedulerConfig{},
                                                    &database_);
  network_.AddNode("sched", central, {"alpha", 1});
  network_.Post("probe", "sched",
                QueryMessage("punch.rsrc.arch = x86\n", 1));
  network_.Post("probe", "sched",
                QueryMessage("punch.rsrc.arch = x86\n", 2));
  kernel_.Run();
  EXPECT_EQ(probe_->count(net::msg::kAllocation), 2);
  // One priming sweep; the second query's refresh sees a quiet journal.
  EXPECT_EQ(central->stats().entries_refreshed, 30u);
}

}  // namespace
}  // namespace actyp::baseline
