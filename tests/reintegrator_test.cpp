// Focused tests for the reintegration stage: fragment accounting,
// best-response vs first-match QoS, duplicate release, failure paths,
// and timeout sweeps.
#include <gtest/gtest.h>

#include "pipeline/protocol.hpp"
#include "pipeline/reintegrator.hpp"
#include "simnet/kernel.hpp"
#include "simnet/sim_network.hpp"

namespace actyp::pipeline {
namespace {

class Probe final : public net::Node {
 public:
  void OnMessage(const net::Envelope& env, net::NodeContext&) override {
    messages.push_back(env.message);
  }
  std::vector<net::Message> messages;
  [[nodiscard]] int count(std::string_view type) const {
    int n = 0;
    for (const auto& m : messages) n += (m.type == type);
    return n;
  }
};

class ReintegratorTest : public ::testing::Test {
 protected:
  ReintegratorTest() : network_(&kernel_, simnet::Topology::Lan(), 3) {
    network_.AddHost("alpha", 4);
    client_ = std::make_shared<Probe>();
    pool_ = std::make_shared<Probe>();
    network_.AddNode("client", client_, {"alpha", 1});
    network_.AddNode("pool", pool_, {"alpha", 1});
  }

  void AddReintegrator(SimDuration timeout = Seconds(30),
                       SimDuration sweep = Seconds(10)) {
    ReintegratorConfig config;
    config.name = "reint";
    config.request_timeout = timeout;
    config.sweep_period = sweep;
    reint_ = std::make_shared<Reintegrator>(config);
    network_.AddNode("reint", reint_, {"alpha", 1});
  }

  // Builds a fragment allocation result as a pool would send it.
  net::Message FragmentAllocation(std::uint64_t request_id,
                                  std::uint32_t index, std::uint32_t total,
                                  double load,
                                  const std::string& machine,
                                  bool first_match = false) {
    Allocation allocation;
    allocation.machine_name = machine;
    allocation.machine_id = 1;
    allocation.session_key = "sess-" + machine;
    allocation.pool_name = "p";
    allocation.pool_address = "pool";
    allocation.machine_load = load;
    allocation.request_id = request_id;
    allocation.fragment_index = index;
    allocation.fragment_total = total;
    net::Message m = MakeAllocationMessage(allocation);
    m.SetHeader(phdr::kFinalReplyTo, "client");
    if (first_match) m.SetHeader(phdr::kQosFirstMatch, "1");
    return m;
  }

  net::Message FragmentFailure(std::uint64_t request_id, std::uint32_t index,
                               std::uint32_t total) {
    net::Message m = MakeFailureMessage(request_id, "no machine", index, total);
    m.SetHeader(phdr::kFinalReplyTo, "client");
    return m;
  }

  simnet::SimKernel kernel_;
  simnet::SimNetwork network_;
  std::shared_ptr<Probe> client_;
  std::shared_ptr<Probe> pool_;
  std::shared_ptr<Reintegrator> reint_;
};

TEST_F(ReintegratorTest, BestResponseWaitsForAllFragments) {
  AddReintegrator();
  network_.Post("pool", "reint", FragmentAllocation(1, 0, 2, 3.0, "heavy"));
  kernel_.RunUntil(Millis(500));
  // Only one of two fragments: nothing forwarded yet.
  EXPECT_EQ(client_->count(net::msg::kAllocation), 0);
  EXPECT_EQ(reint_->open_requests(), 1u);

  network_.Post("pool", "reint", FragmentAllocation(1, 1, 2, 0.5, "light"));
  kernel_.RunUntil(Seconds(1));
  ASSERT_EQ(client_->count(net::msg::kAllocation), 1);
  // Lowest load wins; the loser's machine is released back to its pool.
  EXPECT_EQ(client_->messages[0].Header(net::hdr::kMachine), "light");
  EXPECT_EQ(pool_->count(net::msg::kRelease), 1);
  EXPECT_EQ(reint_->open_requests(), 0u);
}

TEST_F(ReintegratorTest, FirstMatchForwardsImmediately) {
  AddReintegrator();
  network_.Post("pool", "reint",
                FragmentAllocation(2, 0, 3, 2.0, "first", /*first_match=*/true));
  kernel_.RunUntil(Seconds(1));
  ASSERT_EQ(client_->count(net::msg::kAllocation), 1);
  EXPECT_EQ(client_->messages[0].Header(net::hdr::kMachine), "first");

  // Stragglers are released, not forwarded.
  network_.Post("pool", "reint",
                FragmentAllocation(2, 1, 3, 0.1, "better", true));
  network_.Post("pool", "reint", FragmentFailure(2, 2, 3));
  kernel_.RunUntil(Seconds(2));
  EXPECT_EQ(client_->count(net::msg::kAllocation), 1);
  EXPECT_EQ(pool_->count(net::msg::kRelease), 1);
  EXPECT_EQ(reint_->open_requests(), 0u);
}

TEST_F(ReintegratorTest, AllFragmentsFailedYieldsFailure) {
  AddReintegrator();
  network_.Post("pool", "reint", FragmentFailure(3, 0, 2));
  network_.Post("pool", "reint", FragmentFailure(3, 1, 2));
  kernel_.RunUntil(Seconds(1));
  EXPECT_EQ(client_->count(net::msg::kFailure), 1);
  EXPECT_EQ(client_->count(net::msg::kAllocation), 0);
  EXPECT_EQ(reint_->stats().failed, 1u);
}

TEST_F(ReintegratorTest, MixedResultsPreferAllocation) {
  AddReintegrator();
  network_.Post("pool", "reint", FragmentFailure(4, 0, 2));
  network_.Post("pool", "reint", FragmentAllocation(4, 1, 2, 1.0, "only"));
  kernel_.RunUntil(Seconds(1));
  ASSERT_EQ(client_->count(net::msg::kAllocation), 1);
  EXPECT_EQ(client_->messages[0].Header(net::hdr::kMachine), "only");
  EXPECT_EQ(client_->count(net::msg::kFailure), 0);
}

TEST_F(ReintegratorTest, SingleFragmentPassesThrough) {
  AddReintegrator();
  network_.Post("pool", "reint", FragmentAllocation(5, 0, 1, 1.0, "solo"));
  kernel_.RunUntil(Seconds(1));
  EXPECT_EQ(client_->count(net::msg::kAllocation), 1);
  EXPECT_EQ(pool_->count(net::msg::kRelease), 0);
}

TEST_F(ReintegratorTest, TimeoutSweepsStaleRequests) {
  AddReintegrator(Seconds(5), Seconds(2));
  network_.Post("pool", "reint", FragmentAllocation(6, 0, 2, 1.0, "m"));
  kernel_.RunUntil(Seconds(1));
  EXPECT_EQ(reint_->open_requests(), 1u);

  kernel_.RunUntil(Seconds(12));
  EXPECT_EQ(reint_->open_requests(), 0u);
  EXPECT_EQ(reint_->stats().timed_out, 1u);
  EXPECT_EQ(client_->count(net::msg::kFailure), 1);
}

TEST_F(ReintegratorTest, IndependentRequestsDoNotInterfere) {
  AddReintegrator();
  network_.Post("pool", "reint", FragmentAllocation(7, 0, 2, 1.0, "a7"));
  network_.Post("pool", "reint", FragmentAllocation(8, 0, 2, 1.0, "a8"));
  kernel_.RunUntil(Seconds(1));
  EXPECT_EQ(reint_->open_requests(), 2u);
  network_.Post("pool", "reint", FragmentAllocation(7, 1, 2, 5.0, "b7"));
  network_.Post("pool", "reint", FragmentAllocation(8, 1, 2, 0.1, "b8"));
  kernel_.RunUntil(Seconds(2));
  ASSERT_EQ(client_->count(net::msg::kAllocation), 2);
  std::set<std::string> winners;
  for (const auto& m : client_->messages) {
    winners.insert(m.Header(net::hdr::kMachine));
  }
  EXPECT_EQ(winners, (std::set<std::string>{"a7", "b8"}));
}

}  // namespace
}  // namespace actyp::pipeline
