// Tests for the ClassAd-like and RSL-like translators and their
// integration with the query language.
#include <gtest/gtest.h>

#include "interop/classad.hpp"
#include "interop/rsl.hpp"
#include "query/parser.hpp"

namespace actyp::interop {
namespace {

TEST(ClassAd, TranslatesPaperStyleAd) {
  auto native = TranslateClassAd(
      "[ Requirements = Arch == \"sun\" && Memory >= 10 && "
      "License == \"tsuprem4\" && Domain == \"purdue\"; "
      "EstimatedCpu = 1000; Owner = \"kapadia\"; AccessGroup = \"ece\" ]");
  ASSERT_TRUE(native.ok()) << native.status().ToString();

  auto q = query::Parser::ParseBasic(*native);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->GetRsrc("arch")->value.text(), "sun");
  EXPECT_EQ(q->GetRsrc("memory")->op, query::CmpOp::kGe);
  EXPECT_EQ(q->GetRsrc("memory")->value.text(), "10");
  EXPECT_EQ(q->GetRsrc("license")->value.text(), "tsuprem4");
  EXPECT_EQ(q->GetUser("login"), "kapadia");
  EXPECT_EQ(q->GetUser("accessgroup"), "ece");
  EXPECT_EQ(q->GetAppl("expectedcpuuse"), "1000");
  // The translated query maps to the paper's exact pool signature.
  EXPECT_EQ(q->Signature(), "arch:domain:license:memory,==:==:==:>=");
}

TEST(ClassAd, DisjunctionBecomesComposite) {
  auto native = TranslateClassAd(
      "[ Requirements = (Arch == \"sun\" || Arch == \"hp\") && Memory >= 64 ]");
  ASSERT_TRUE(native.ok());
  auto composite = query::Parser::Parse(*native);
  ASSERT_TRUE(composite.ok());
  EXPECT_EQ(composite->size(), 2u);
}

TEST(ClassAd, MixedAttributeDisjunctionRejected) {
  auto native = TranslateClassAd(
      "[ Requirements = (Arch == \"sun\" || Memory >= 64) ]");
  EXPECT_FALSE(native.ok());
}

TEST(ClassAd, RankIsIgnored) {
  auto native = TranslateClassAd(
      "[ Requirements = Arch == \"sun\"; Rank = 100 ]");
  ASSERT_TRUE(native.ok());
  EXPECT_EQ(native->find("rank"), std::string::npos);
}

TEST(ClassAd, UnknownTopLevelGoesToAppl) {
  auto native = TranslateClassAd(
      "[ Requirements = Arch == \"sun\"; NiceUser = 1 ]");
  ASSERT_TRUE(native.ok());
  EXPECT_NE(native->find("punch.appl.niceuser = 1"), std::string::npos);
}

TEST(ClassAd, SyntaxErrors) {
  EXPECT_FALSE(TranslateClassAd("Requirements = x").ok());  // no brackets
  EXPECT_FALSE(TranslateClassAd("[ Requirements = Arch ==; ]").ok());
  EXPECT_FALSE(TranslateClassAd("[ Requirements = Arch == \"unterminated ]").ok());
  EXPECT_FALSE(TranslateClassAd("[ ]").ok());
  EXPECT_FALSE(TranslateClassAd("[ Requirements = Arch == \"sun\"").ok());
}

TEST(ClassAd, OperatorsPreserved) {
  auto native = TranslateClassAd(
      "[ Requirements = Memory >= 10 && Speed > 1.5 && Cpus <= 4 && "
      "Ostype != \"linux\" ]");
  ASSERT_TRUE(native.ok());
  auto q = query::Parser::ParseBasic(*native);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->GetRsrc("memory")->op, query::CmpOp::kGe);
  EXPECT_EQ(q->GetRsrc("speed")->op, query::CmpOp::kGt);
  EXPECT_EQ(q->GetRsrc("cpus")->op, query::CmpOp::kLe);
  EXPECT_EQ(q->GetRsrc("ostype")->op, query::CmpOp::kNe);
}

TEST(Rsl, TranslatesBasicSpec) {
  auto native = TranslateRsl(
      "&(arch=sun)(memory>=10)(license=tsuprem4)(owner=\"kapadia\")");
  ASSERT_TRUE(native.ok()) << native.status().ToString();
  auto q = query::Parser::ParseBasic(*native);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->GetRsrc("arch")->value.text(), "sun");
  EXPECT_EQ(q->GetRsrc("memory")->op, query::CmpOp::kGe);
  EXPECT_EQ(q->GetRsrc("license")->value.text(), "tsuprem4");
  EXPECT_EQ(q->GetUser("login"), "kapadia");
}

TEST(Rsl, MultiValueBecomesComposite) {
  auto native = TranslateRsl("&(arch=sun|hp)(memory>=64)");
  ASSERT_TRUE(native.ok());
  auto composite = query::Parser::Parse(*native);
  ASSERT_TRUE(composite.ok());
  EXPECT_EQ(composite->size(), 2u);
}

TEST(Rsl, MaxCpuTimeMapsToEstimate) {
  auto native = TranslateRsl("&(arch=sun)(maxcputime=1000)");
  ASSERT_TRUE(native.ok());
  auto q = query::Parser::ParseBasic(*native);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->GetAppl("expectedcpuuse"), "1000");
}

TEST(Rsl, StrictComparisons) {
  auto native = TranslateRsl("&(speed>1.5)(cpus<8)");
  ASSERT_TRUE(native.ok());
  auto q = query::Parser::ParseBasic(*native);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->GetRsrc("speed")->op, query::CmpOp::kGt);
  EXPECT_EQ(q->GetRsrc("cpus")->op, query::CmpOp::kLt);
}

TEST(Rsl, SyntaxErrors) {
  EXPECT_FALSE(TranslateRsl("").ok());
  EXPECT_FALSE(TranslateRsl("arch=sun").ok());      // missing parens
  EXPECT_FALSE(TranslateRsl("&(arch=sun").ok());    // unterminated
  EXPECT_FALSE(TranslateRsl("&(archsun)").ok());    // no operator
  EXPECT_FALSE(TranslateRsl("&(=sun)").ok());       // empty attribute
}

TEST(Rsl, WhitespaceTolerated) {
  auto native = TranslateRsl("& (arch = sun)  (memory >= 10)");
  ASSERT_TRUE(native.ok());
  auto q = query::Parser::ParseBasic(*native);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->GetRsrc("arch")->value.text(), "sun");
}

// Both translators produce queries with identical pool mapping for the
// same logical request — interoperability preserves aggregation.
TEST(Interop, TranslatorsAgreeOnPoolName) {
  auto from_classad = TranslateClassAd(
      "[ Requirements = Arch == \"sun\" && Memory >= 10 ]");
  auto from_rsl = TranslateRsl("&(arch=sun)(memory>=10)");
  ASSERT_TRUE(from_classad.ok());
  ASSERT_TRUE(from_rsl.ok());
  auto qa = query::Parser::ParseBasic(*from_classad);
  auto qb = query::Parser::ParseBasic(*from_rsl);
  ASSERT_TRUE(qa.ok());
  ASSERT_TRUE(qb.ok());
  EXPECT_EQ(qa->PoolName(), qb->PoolName());
}

}  // namespace
}  // namespace actyp::interop
