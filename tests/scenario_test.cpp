// System-level tests on the full assembled deployment (SimScenario):
// these assert the qualitative properties behind the paper's figures —
// more pools help, splitting helps, replication helps, WAN adds an RTT
// floor — at reduced scale so the suite stays fast.
#include <gtest/gtest.h>

#include "actyp/scenario.hpp"

namespace actyp {
namespace {

double MeanResponse(ScenarioConfig config, SimDuration warmup = Seconds(5),
                    SimDuration measure = Seconds(40)) {
  SimScenario scenario(std::move(config));
  scenario.Measure(warmup, measure);
  EXPECT_GT(scenario.collector().completed(), 0u);
  return scenario.collector().response_stats().mean();
}

ScenarioConfig BaseConfig() {
  ScenarioConfig config;
  config.machines = 800;
  config.clusters = 1;
  config.clients = 8;
  config.seed = 99;
  return config;
}

TEST(Scenario, EndToEndCompletesWithoutFailures) {
  ScenarioConfig config = BaseConfig();
  SimScenario scenario(config);
  scenario.Measure(Seconds(5), Seconds(30));
  EXPECT_GT(scenario.collector().completed(), 100u);
  EXPECT_EQ(scenario.collector().failures(), 0u);
  const auto pool_stats = scenario.TotalPoolStats();
  EXPECT_GT(pool_stats.allocations, 0u);
  EXPECT_EQ(scenario.network().dropped_messages(), 0u);
}

TEST(Scenario, AllocationsEventuallyReleased) {
  ScenarioConfig config = BaseConfig();
  config.clients = 4;
  SimScenario scenario(config);
  scenario.RunUntil(Seconds(30));
  const auto stats = scenario.TotalPoolStats();
  // Zero-duration jobs: releases track allocations closely (a few may be
  // in flight at the horizon).
  EXPECT_GE(stats.releases + 8, stats.allocations);
  EXPECT_GT(stats.releases, 0u);
}

TEST(Scenario, MorePoolsReduceResponseTime) {
  // Fig. 4's effect at reduced scale: 1 pool vs 8 pools, same machines.
  ScenarioConfig one = BaseConfig();
  one.machines = 1600;
  one.clusters = 1;
  one.clients = 16;

  ScenarioConfig eight = one;
  eight.clusters = 8;

  const double r1 = MeanResponse(one);
  const double r8 = MeanResponse(eight);
  EXPECT_LT(r8, r1 * 0.5) << "r1=" << r1 << " r8=" << r8;
}

TEST(Scenario, ResponseGrowsWithClients) {
  // Fig. 6's effect: closed-loop clients on a single pool.
  ScenarioConfig few = BaseConfig();
  few.clients = 2;
  ScenarioConfig many = BaseConfig();
  many.clients = 24;
  const double r_few = MeanResponse(few);
  const double r_many = MeanResponse(many);
  EXPECT_GT(r_many, r_few * 2) << "few=" << r_few << " many=" << r_many;
}

TEST(Scenario, ResponseGrowsWithPoolSize) {
  // Fig. 6: the linear search makes bigger pools slower per query.
  ScenarioConfig small = BaseConfig();
  small.machines = 400;
  ScenarioConfig large = BaseConfig();
  large.machines = 3200;
  const double r_small = MeanResponse(small);
  const double r_large = MeanResponse(large);
  EXPECT_GT(r_large, r_small * 2)
      << "small=" << r_small << " large=" << r_large;
}

TEST(Scenario, SplittingImprovesResponse) {
  // Fig. 7: one 1600-machine pool vs 4 segments of 400.
  ScenarioConfig whole = BaseConfig();
  whole.machines = 1600;
  whole.clients = 12;
  ScenarioConfig split = whole;
  split.pool_segments = 4;
  const double r_whole = MeanResponse(whole);
  const double r_split = MeanResponse(split);
  EXPECT_LT(r_split, r_whole) << "whole=" << r_whole << " split=" << r_split;
}

TEST(Scenario, ReplicationImprovesResponse) {
  // Fig. 8: replicated pool instances share the machine set.
  ScenarioConfig solo = BaseConfig();
  solo.machines = 1600;
  solo.clients = 24;
  ScenarioConfig replicated = solo;
  replicated.pool_replicas = 4;
  const double r_solo = MeanResponse(solo);
  const double r_replicated = MeanResponse(replicated);
  EXPECT_LT(r_replicated, r_solo * 0.6)
      << "solo=" << r_solo << " replicated=" << r_replicated;
}

TEST(Scenario, WanAddsRttFloor) {
  // Fig. 5: the same setup across a WAN is slower by about the RTT.
  ScenarioConfig lan = BaseConfig();
  lan.clients = 4;
  ScenarioConfig wan = lan;
  wan.wan = true;
  const double r_lan = MeanResponse(lan);
  const double r_wan = MeanResponse(wan);
  EXPECT_GT(r_wan, r_lan + 0.050) << "lan=" << r_lan << " wan=" << r_wan;
}

TEST(Scenario, OnDemandPoolCreationServesQueries) {
  ScenarioConfig config = BaseConfig();
  config.machines = 200;
  config.clusters = 4;
  config.precreate_pools = false;  // pools materialize on first query
  SimScenario scenario(config);
  scenario.Measure(Seconds(10), Seconds(30));
  EXPECT_GT(scenario.collector().completed(), 50u);
  EXPECT_EQ(scenario.collector().failures(), 0u);
  // All four cluster pools were created dynamically.
  EXPECT_EQ(scenario.directory().PoolNames().size(), 4u);
}

TEST(Scenario, QosFanoutStillAnswersOnce) {
  ScenarioConfig config = BaseConfig();
  config.machines = 400;
  config.clusters = 2;
  config.pool_managers = 2;
  config.qos_fanout = 2;
  config.clients = 4;
  SimScenario scenario(config);
  scenario.Measure(Seconds(5), Seconds(20));
  // Every interaction yields exactly one reply to the client; duplicates
  // are absorbed by the reintegrator.
  EXPECT_GT(scenario.collector().completed(), 20u);
  EXPECT_EQ(scenario.collector().failures(), 0u);
}

TEST(Scenario, IndexedPolicyCutsSelectionCost) {
  // The indexed least-load policy must serve the same closed loop with
  // near-constant entries examined per allocation, where the paper's
  // linear scan pays ~pool-size; response time drops accordingly.
  ScenarioConfig linear = BaseConfig();
  linear.machines = 1600;
  linear.clients = 4;
  ScenarioConfig indexed = linear;
  indexed.policy = "least-load";

  SimScenario linear_run(linear);
  linear_run.Measure(Seconds(2), Seconds(6));
  SimScenario indexed_run(indexed);
  indexed_run.Measure(Seconds(1), Seconds(3));

  EXPECT_GT(linear_run.collector().completed(), 100u);
  EXPECT_GT(indexed_run.collector().completed(), 100u);
  EXPECT_EQ(indexed_run.collector().failures(), 0u);

  const auto linear_stats = linear_run.TotalPoolStats();
  const auto indexed_stats = indexed_run.TotalPoolStats();
  const double linear_cost =
      static_cast<double>(linear_stats.entries_examined) /
      static_cast<double>(linear_stats.allocations);
  const double indexed_cost =
      static_cast<double>(indexed_stats.entries_examined) /
      static_cast<double>(indexed_stats.allocations);
  EXPECT_GT(linear_cost, 1000.0) << "linear scan should touch ~every entry";
  EXPECT_LT(indexed_cost, 8.0) << "index should examine O(1) entries";
  EXPECT_LT(indexed_run.collector().response_stats().mean(),
            linear_run.collector().response_stats().mean());
}

TEST(Scenario, MultiQmPmDeploymentServesAllClients) {
  // The qm_scaling/pm_scaling dimensions: several query managers and
  // pool managers in one deployment, indexed policy, no failures.
  ScenarioConfig config = BaseConfig();
  config.machines = 400;
  config.clusters = 4;
  config.query_managers = 4;
  config.pool_managers = 3;
  config.clients = 12;
  config.policy = "least-load";
  SimScenario scenario(config);
  scenario.Measure(Seconds(2), Seconds(6));
  EXPECT_GT(scenario.collector().completed(), 100u);
  EXPECT_EQ(scenario.collector().failures(), 0u);
  EXPECT_EQ(scenario.network().dropped_messages(), 0u);
}

TEST(Scenario, DeterministicForSeed) {
  auto run = [] {
    ScenarioConfig config;
    config.machines = 200;
    config.clusters = 2;
    config.clients = 4;
    config.seed = 1234;
    SimScenario scenario(config);
    scenario.Measure(Seconds(2), Seconds(10));
    return std::make_pair(scenario.collector().completed(),
                          scenario.collector().response_stats().mean());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

// --- failure injection ---

TEST(Scenario, SurvivesMessageLoss) {
  ScenarioConfig config = BaseConfig();
  config.machines = 400;
  config.clients = 8;
  config.message_loss_probability = 0.05;  // 5% of messages vanish
  config.client_request_timeout = Seconds(2);
  SimScenario scenario(config);
  scenario.Measure(Seconds(5), Seconds(60));
  // Clients keep making progress: timeouts turn losses into failures
  // and the closed loop continues.
  EXPECT_GT(scenario.collector().completed(), 500u);
  EXPECT_GT(scenario.collector().failures(), 0u);
  EXPECT_GT(scenario.network().lost_messages(), 0u);
}

TEST(Scenario, TotalMessageLossStallsButDoesNotWedge) {
  ScenarioConfig config = BaseConfig();
  config.machines = 100;
  config.clients = 2;
  config.message_loss_probability = 1.0;
  config.client_request_timeout = Seconds(1);
  SimScenario scenario(config);
  scenario.Measure(Seconds(2), Seconds(20));
  EXPECT_EQ(scenario.collector().completed(), 0u);
  EXPECT_GT(scenario.collector().failures(), 10u);  // timeouts keep firing
}

TEST(Scenario, MachinesGoingDownAreAvoidedAfterRefresh) {
  ScenarioConfig config = BaseConfig();
  config.machines = 20;
  config.clients = 4;
  config.resort_period = Seconds(1);
  SimScenario scenario(config);
  scenario.RunUntil(Seconds(5));

  // Take half the fleet down mid-run.
  std::vector<db::MachineId> downed;
  scenario.database().ForEach([&](const db::MachineRecord& rec) {
    if (rec.id % 2 == 0) downed.push_back(rec.id);
  });
  for (const auto id : downed) {
    scenario.database().Update(id, [](db::MachineRecord& rec) {
      rec.state = db::MachineState::kDown;
    });
  }
  // Let the pools' refresh ticks observe the change, then measure.
  scenario.RunUntil(Seconds(8));
  scenario.collector().Reset();
  scenario.RunUntil(Seconds(30));

  // The system still serves queries from the surviving machines.
  EXPECT_GT(scenario.collector().completed(), 100u);
  EXPECT_EQ(scenario.collector().failures(), 0u);
  // Down machines accumulate no further jobs once refresh saw them: their
  // monitor-reported job counts stay at the level they had when downed.
  // (Allocations target only up machines.)
}

TEST(Scenario, HotSpotConcentratesOnOnePool) {
  ScenarioConfig config = BaseConfig();
  config.machines = 800;
  config.clusters = 4;
  config.clients = 8;
  config.hot_fraction = 0.9;
  SimScenario scenario(config);
  scenario.Measure(Seconds(5), Seconds(20));
  EXPECT_GT(scenario.collector().completed(), 0u);
}

// --- LP-parallel engine (site-sharded logical processes) ---

ScenarioConfig LpConfig(std::uint64_t seed = 910) {
  ScenarioConfig config;
  config.machines = 400;
  config.clusters = 4;
  config.wan_sites = 2;
  config.clients = 6;
  config.seed = seed;
  return config;
}

// Everything the closed loop decides, compressed: equal digests mean
// the runs made identical allocation decisions in identical order.
struct RunDigest {
  std::uint64_t completed = 0;
  std::uint64_t failures = 0;
  std::uint64_t allocations = 0;
  std::uint64_t entries_examined = 0;
  std::uint64_t events = 0;
  double mean_s = 0;
  double p95_s = 0;

  bool operator==(const RunDigest& other) const {
    return completed == other.completed && failures == other.failures &&
           allocations == other.allocations &&
           entries_examined == other.entries_examined &&
           events == other.events && mean_s == other.mean_s &&
           p95_s == other.p95_s;
  }
};

RunDigest DigestFor(ScenarioConfig config, SimDuration warmup = Seconds(3),
                    SimDuration measure = Seconds(15)) {
  SimScenario scenario(std::move(config));
  scenario.Measure(warmup, measure);
  RunDigest digest;
  digest.completed = scenario.collector().completed();
  digest.failures = scenario.collector().failures();
  const auto pool_stats = scenario.TotalPoolStats();
  digest.allocations = pool_stats.allocations;
  digest.entries_examined = pool_stats.entries_examined;
  digest.events = scenario.total_events();
  digest.mean_s = scenario.collector().response_stats().mean();
  digest.p95_s = scenario.collector().QuantileSeconds(0.95);
  return digest;
}

TEST(ScenarioLp, MultiSiteConfigBuildsSharded) {
  SimScenario scenario(LpConfig());
  EXPECT_TRUE(scenario.lp_mode());
  scenario.Measure(Seconds(3), Seconds(15));
  EXPECT_GT(scenario.collector().completed(), 0u);
  EXPECT_EQ(scenario.collector().failures(), 0u);
}

TEST(ScenarioLp, WorkerCountNeverChangesResults) {
  // Sharding is a property of the scenario (wan_sites), never of
  // cell_jobs, so 1, 2 and 4 workers replay the identical schedule.
  ScenarioConfig config = LpConfig();
  const RunDigest serial = DigestFor(config);
  EXPECT_GT(serial.completed, 0u);
  for (const std::size_t jobs : {2u, 4u}) {
    config.cell_jobs = jobs;
    EXPECT_TRUE(DigestFor(config) == serial) << "cell_jobs=" << jobs;
  }
}

TEST(ScenarioLp, ZeroLatencyWanFallsBackToSerial) {
  // A zero-latency link leaves no lookahead: the conservative window
  // would be empty, so the build warns and runs the serial engine.
  ScenarioConfig config = LpConfig();
  config.wan_one_way = 0;
  config.wan_jitter = 0;
  SimScenario scenario(config);
  EXPECT_FALSE(scenario.lp_mode());
  scenario.Measure(Seconds(3), Seconds(15));
  EXPECT_GT(scenario.collector().completed(), 0u);
}

TEST(ScenarioLp, FaultPlanForcesSerialFallback) {
  // Fault injection mutates cross-shard state outside the mailbox
  // protocol, so a fault plan disables LP sharding rather than racing.
  ScenarioConfig config = LpConfig();
  fault::FaultEvent event;
  event.kind = fault::FaultKind::kLoss;
  event.start = Seconds(5);
  event.end = Seconds(6);
  event.probability = 0.1;
  config.fault_plan.events.push_back(event);
  SimScenario scenario(config);
  EXPECT_FALSE(scenario.lp_mode());
}

TEST(ScenarioLp, RandomizedTopologiesMatchAcrossWorkerCounts) {
  // Fuzz the deployment shape: whatever the topology, worker counts
  // must agree on every allocation decision.
  Rng rng(0xf022u);
  for (int iteration = 0; iteration < 4; ++iteration) {
    ScenarioConfig config;
    config.wan_sites = 2 + rng.NextBounded(3);               // 2..4
    config.clusters = config.wan_sites + rng.NextBounded(5);  // sites..+4
    config.machines = 120 + rng.NextBounded(300);
    config.clients = 2 + rng.NextBounded(6);
    config.wan_one_way = Millis(5 + rng.NextBounded(35));
    config.seed = 31000 + iteration;
    const RunDigest serial = DigestFor(config, Seconds(2), Seconds(10));
    EXPECT_GT(serial.completed, 0u) << "iteration " << iteration;
    for (const std::size_t jobs : {2u, 4u}) {
      config.cell_jobs = jobs;
      EXPECT_TRUE(DigestFor(config, Seconds(2), Seconds(10)) == serial)
          << "iteration " << iteration << " cell_jobs " << jobs;
    }
    config.cell_jobs = 1;
  }
}

}  // namespace
}  // namespace actyp
