// Tests for the message wire format, the threaded in-process transport,
// and the TCP transport.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/rng.hpp"
#include "net/inproc.hpp"
#include "net/message.hpp"
#include "net/tcp.hpp"

namespace actyp::net {
namespace {

// --- wire format ---

TEST(Message, EncodeDecodeRoundTrip) {
  Message m{"query"};
  m.SetHeader("reply-to", "client3");
  m.SetHeader("request-id", "42");
  m.body = "punch.rsrc.arch = sun\n";
  auto round = Message::Decode(m.Encode());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->type, "query");
  EXPECT_EQ(round->Header("reply-to"), "client3");
  EXPECT_EQ(round->Header("request-id"), "42");
  EXPECT_EQ(round->body, m.body);
}

TEST(Message, EmptyBodyAndHeaders) {
  Message m{"tick"};
  auto round = Message::Decode(m.Encode());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->type, "tick");
  EXPECT_TRUE(round->body.empty());
  EXPECT_TRUE(round->headers.empty());
}

TEST(Message, BodyMayContainBlankLines) {
  Message m{"query"};
  m.body = "line1\n\nline3\n\n\n";
  auto round = Message::Decode(m.Encode());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->body, m.body);
}

TEST(Message, DecodeRejectsGarbage) {
  EXPECT_FALSE(Message::Decode("").ok());
  EXPECT_FALSE(Message::Decode("HTTP/1.1 200\n\n").ok());
  EXPECT_FALSE(Message::Decode("ACTYP/1 query\nbadheader\n\n").ok());
  EXPECT_FALSE(Message::Decode("ACTYP/1 \ncontent-length: 0\n\n").ok());
  // Missing content-length.
  EXPECT_FALSE(Message::Decode("ACTYP/1 query\n\n").ok());
  // Truncated body.
  EXPECT_FALSE(Message::Decode("ACTYP/1 q\ncontent-length: 10\n\nabc").ok());
}

TEST(Message, HeaderAccessors) {
  Message m{"x"};
  EXPECT_EQ(m.Header("nope"), "");
  EXPECT_FALSE(m.HasHeader("nope"));
  m.SetHeader("k", "v");
  EXPECT_TRUE(m.HasHeader("k"));
}

class MessageFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MessageFuzz, RandomRoundTrip) {
  Rng rng(900 + GetParam());
  Message m{"t" + std::to_string(rng.NextBounded(100))};
  const int headers = static_cast<int>(rng.NextBounded(6));
  for (int i = 0; i < headers; ++i) {
    m.SetHeader("h" + std::to_string(i),
                "value-" + std::to_string(rng.Next() % 9973));
  }
  const std::size_t body_len = rng.NextBounded(2000);
  m.body.reserve(body_len);
  for (std::size_t i = 0; i < body_len; ++i) {
    m.body += static_cast<char>(32 + rng.NextBounded(95));
  }
  auto round = Message::Decode(m.Encode());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->type, m.type);
  EXPECT_EQ(round->headers, m.headers);
  EXPECT_EQ(round->body, m.body);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, MessageFuzz, ::testing::Range(0, 20));

// --- in-process transport ---

class EchoNode final : public Node {
 public:
  void OnMessage(const Envelope& env, NodeContext& ctx) override {
    if (env.message.type == "ping") {
      Message reply{"pong"};
      reply.body = env.message.body;
      ctx.Send(env.from, std::move(reply));
    }
  }
};

class CollectorNode final : public Node {
 public:
  void OnMessage(const Envelope& env, NodeContext&) override {
    std::lock_guard<std::mutex> lock(mu_);
    received_.push_back(env.message.type + ":" + env.message.body);
    ++count_;
  }
  std::vector<std::string> received() {
    std::lock_guard<std::mutex> lock(mu_);
    return received_;
  }
  int count() {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

 private:
  std::mutex mu_;
  std::vector<std::string> received_;
  int count_ = 0;
};

void WaitFor(const std::function<bool()>& cond, int timeout_ms = 3000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!cond() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(cond()) << "condition not met within timeout";
}

TEST(InProc, RequestReply) {
  InProcNetwork network;
  auto echo = std::make_shared<EchoNode>();
  auto sink = std::make_shared<CollectorNode>();
  ASSERT_TRUE(network.AddNode("echo", echo, {}).ok());
  ASSERT_TRUE(network.AddNode("sink", sink, {}).ok());

  Message ping{"ping"};
  ping.body = "hello";
  network.Post("sink", "echo", std::move(ping));
  WaitFor([&] { return sink->count() == 1; });
  EXPECT_EQ(sink->received()[0], "pong:hello");
}

TEST(InProc, DuplicateAddressRejected) {
  InProcNetwork network;
  ASSERT_TRUE(network.AddNode("a", std::make_shared<EchoNode>(), {}).ok());
  EXPECT_FALSE(network.AddNode("a", std::make_shared<EchoNode>(), {}).ok());
  EXPECT_TRUE(network.HasNode("a"));
  EXPECT_FALSE(network.HasNode("b"));
}

TEST(InProc, RemoveNodeStopsDelivery) {
  InProcNetwork network;
  auto sink = std::make_shared<CollectorNode>();
  ASSERT_TRUE(network.AddNode("sink", sink, {}).ok());
  network.Post("x", "sink", Message{"m"});
  WaitFor([&] { return sink->count() == 1; });
  ASSERT_TRUE(network.RemoveNode("sink").ok());
  EXPECT_FALSE(network.RemoveNode("sink").ok());
  network.Post("x", "sink", Message{"m"});  // silently dropped
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(sink->count(), 1);
}

TEST(InProc, LatencyDelaysDelivery) {
  InProcConfig config;
  config.latency = [](const Address&, const Address&) { return Millis(60); };
  InProcNetwork network(config);
  auto sink = std::make_shared<CollectorNode>();
  ASSERT_TRUE(network.AddNode("sink", sink, {}).ok());

  const auto start = std::chrono::steady_clock::now();
  network.Post("x", "sink", Message{"m"});
  WaitFor([&] { return sink->count() == 1; });
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_GE(elapsed, 50);
}

class SelfSchedulingNode final : public Node {
 public:
  void OnStart(NodeContext& ctx) override {
    ctx.ScheduleSelf(Millis(10), Message{"tick"});
  }
  void OnMessage(const Envelope& env, NodeContext& ctx) override {
    if (env.message.type != "tick") return;
    const int n = ++ticks_;
    if (n < 3) ctx.ScheduleSelf(Millis(10), Message{"tick"});
  }
  std::atomic<int> ticks_{0};
};

TEST(InProc, ScheduleSelfFiresRepeatedly) {
  InProcNetwork network;
  auto node = std::make_shared<SelfSchedulingNode>();
  ASSERT_TRUE(network.AddNode("timer", node, {}).ok());
  WaitFor([&] { return node->ticks_.load() == 3; });
}

TEST(InProc, ParallelServersProcessConcurrently) {
  InProcNetwork network;
  class SlowNode final : public Node {
   public:
    void OnMessage(const Envelope& env, NodeContext& ctx) override {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      ctx.Send(env.from, Message{"done"});
    }
  };
  auto slow = std::make_shared<SlowNode>();
  auto sink = std::make_shared<CollectorNode>();
  NodePlacement placement;
  placement.servers = 4;
  ASSERT_TRUE(network.AddNode("slow", slow, placement).ok());
  ASSERT_TRUE(network.AddNode("sink", sink, {}).ok());

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 4; ++i) network.Post("sink", "slow", Message{"go"});
  WaitFor([&] { return sink->count() == 4; });
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  // Serial execution would need >= 200ms; allow generous slack.
  EXPECT_LT(elapsed, 160);
}

// --- TCP transport ---

TEST(Tcp, CallRoundTrip) {
  TcpServer server;
  ASSERT_TRUE(server
                  .Start(0,
                         [](const Message& request) {
                           Message reply{"reply"};
                           reply.body = "echo:" + request.body;
                           reply.SetHeader("seen-type", request.type);
                           return reply;
                         })
                  .ok());
  ASSERT_GT(server.port(), 0);

  Message request{"query"};
  request.body = "punch.rsrc.arch = sun\n";
  auto reply = TcpClient::Call("127.0.0.1", server.port(), request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->type, "reply");
  EXPECT_EQ(reply->body, "echo:punch.rsrc.arch = sun\n");
  EXPECT_EQ(reply->Header("seen-type"), "query");
  server.Stop();
}

TEST(Tcp, MultipleSequentialCalls) {
  TcpServer server;
  std::atomic<int> served{0};
  ASSERT_TRUE(server
                  .Start(0,
                         [&served](const Message& request) {
                           ++served;
                           Message reply{"ok"};
                           reply.body = request.Header("n");
                           return reply;
                         })
                  .ok());
  for (int i = 0; i < 8; ++i) {
    Message request{"q"};
    request.SetHeader("n", std::to_string(i));
    auto reply = TcpClient::Call("127.0.0.1", server.port(), request);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->body, std::to_string(i));
  }
  EXPECT_EQ(served.load(), 8);
  server.Stop();
}

TEST(Tcp, LargeBody) {
  TcpServer server;
  ASSERT_TRUE(
      server.Start(0, [](const Message& request) { return request; }).ok());
  Message request{"big"};
  request.body.assign(1 << 20, 'x');  // 1 MiB
  auto reply = TcpClient::Call("127.0.0.1", server.port(), request);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->body.size(), request.body.size());
  server.Stop();
}

TEST(Tcp, ConnectFailureReported) {
  // Port 1 is essentially never listening.
  auto reply = TcpClient::Call("127.0.0.1", 1, Message{"q"});
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
}

TEST(Tcp, BadHostRejected) {
  auto reply = TcpClient::Call("not-an-ip", 80, Message{"q"});
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
}

TEST(Tcp, InjectedResetFailsCallAndRetryRecovers) {
  TcpServer server;
  // Reset the very first reply, deliver everything after.
  std::atomic<int> replies{0};
  server.SetFaultHook([&replies]() -> TcpFault {
    TcpFault fault;
    if (replies.fetch_add(1) == 0) fault.action = TcpFault::Action::kReset;
    return fault;
  });
  ASSERT_TRUE(server
                  .Start(0,
                         [](const Message& request) {
                           Message reply{"reply"};
                           reply.body = request.body;
                           return reply;
                         })
                  .ok());

  Message request{"query"};
  request.body = "hello\n";
  // Single-shot call eats the reset...
  auto failed = TcpClient::Call("127.0.0.1", server.port(), request);
  EXPECT_FALSE(failed.ok());
  // ...the retrying client reconnects and lands the reply.
  auto reply =
      TcpClient::CallWithRetry("127.0.0.1", server.port(), request, 2);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->body, "hello\n");
  server.Stop();
}

TEST(Tcp, InjectedPartialFrameFailsCallAndRetryRecovers) {
  TcpServer server;
  // Truncate the first reply after 3 bytes of its frame body.
  std::atomic<int> replies{0};
  server.SetFaultHook([&replies]() -> TcpFault {
    TcpFault fault;
    if (replies.fetch_add(1) == 0) {
      fault.action = TcpFault::Action::kTruncate;
      fault.bytes = 3;
    }
    return fault;
  });
  ASSERT_TRUE(server
                  .Start(0,
                         [](const Message& request) {
                           Message reply{"reply"};
                           reply.body = request.body;
                           return reply;
                         })
                  .ok());

  Message request{"query"};
  request.body = "partial-frame-check\n";
  auto failed = TcpClient::Call("127.0.0.1", server.port(), request);
  EXPECT_FALSE(failed.ok());  // frame starved mid-message
  auto reply =
      TcpClient::CallWithRetry("127.0.0.1", server.port(), request, 2);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->body, "partial-frame-check\n");
  server.Stop();
}

}  // namespace
}  // namespace actyp::net
