// Tests for the workload substrate: the Fig. 9 CPU-time mixture, the
// synthetic fleet builder, the query generator, the response collector,
// and the closed-loop client node.
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "common/strings.hpp"
#include "db/shadow.hpp"
#include "query/parser.hpp"
#include "simnet/kernel.hpp"
#include "simnet/sim_network.hpp"
#include "workload/client.hpp"
#include "workload/cpu_time.hpp"
#include "workload/generator.hpp"

namespace actyp::workload {
namespace {

// --- CPU time model (Fig. 9 shape) ---

TEST(CpuTime, SamplesArePositive) {
  CpuTimeModel model;
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(model.Sample(rng), 0.0);
}

TEST(CpuTime, MassSitsAtFewSeconds) {
  CpuTimeModel model;
  Rng rng(2);
  int below_30s = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) below_30s += (model.Sample(rng) <= 30.0);
  // The paper's histogram has the bulk of 236,222 runs at a few seconds.
  EXPECT_GT(static_cast<double>(below_30s) / n, 0.55);
}

TEST(CpuTime, TailReachesBeyond1e6Seconds) {
  CpuTimeModel model;
  Rng rng(3);
  double max_seen = 0;
  for (int i = 0; i < 236222; ++i) {
    max_seen = std::max(max_seen, model.Sample(rng));
  }
  // "observed CPU times extend out to more than 1e6 seconds".
  EXPECT_GT(max_seen, 1e6);
}

TEST(CpuTime, HistogramModeIsInFirstBuckets) {
  CpuTimeModel model;
  Rng rng(4);
  Histogram histogram(0, 1000, 100);  // Fig. 9's truncated X axis
  for (int i = 0; i < 236222; ++i) histogram.Add(model.Sample(rng));
  std::size_t mode = 0;
  for (std::size_t b = 1; b < histogram.bucket_count(); ++b) {
    if (histogram.bucket(b) > histogram.bucket(mode)) mode = b;
  }
  EXPECT_LE(mode, 2u);  // peak within the first ~30 seconds
  EXPECT_GT(histogram.overflow(), 0u);  // tail beyond the axis
}

// --- fleet generator ---

TEST(Fleet, BuildsRequestedCount) {
  db::ResourceDatabase database;
  db::ShadowAccountRegistry shadows;
  FleetSpec spec;
  spec.machine_count = 320;
  spec.cluster_count = 8;
  Rng rng(5);
  BuildFleet(spec, rng, &database, &shadows);
  EXPECT_EQ(database.size(), 320u);
}

TEST(Fleet, ClustersAreUniform) {
  db::ResourceDatabase database;
  FleetSpec spec;
  spec.machine_count = 320;
  spec.cluster_count = 8;
  Rng rng(5);
  BuildFleet(spec, rng, &database, nullptr);
  std::map<std::string, int> per_cluster;
  database.ForEach([&](const db::MachineRecord& rec) {
    ++per_cluster[rec.params.at("cluster")];
  });
  ASSERT_EQ(per_cluster.size(), 8u);
  for (const auto& [cluster, count] : per_cluster) EXPECT_EQ(count, 40);
}

TEST(Fleet, MachinesHaveUsableAttributes) {
  db::ResourceDatabase database;
  db::ShadowAccountRegistry shadows;
  FleetSpec spec;
  spec.machine_count = 50;
  Rng rng(6);
  BuildFleet(spec, rng, &database, &shadows);
  database.ForEach([&](const db::MachineRecord& rec) {
    EXPECT_TRUE(rec.IsUsable());
    EXPECT_TRUE(rec.params.count("arch"));
    EXPECT_GT(rec.dyn.available_memory_mb, 0);
    EXPECT_GT(rec.effective_speed, 0);
    EXPECT_FALSE(rec.shadow_pool.empty());
    EXPECT_NE(shadows.Find(rec.shadow_pool), nullptr);
  });
}

TEST(Fleet, DeterministicForSeed) {
  auto build = [] {
    db::ResourceDatabase database;
    FleetSpec spec;
    spec.machine_count = 64;
    Rng rng(7);
    BuildFleet(spec, rng, &database, nullptr);
    return database.Serialize();
  };
  EXPECT_EQ(build(), build());
}

// --- query generator ---

TEST(QueryGen, TargetsRequestedCluster) {
  QuerySpec spec;
  spec.cluster_count = 4;
  QueryGenerator generator(spec);
  auto q = query::Parser::ParseBasic(generator.ForCluster(2));
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->GetRsrc("cluster")->value.text(), "c2");
  EXPECT_EQ(q->GetUser("accessgroup"), "ece");
}

TEST(QueryGen, StripesUniformly) {
  QuerySpec spec;
  spec.cluster_count = 4;
  QueryGenerator generator(spec);
  Rng rng(8);
  std::map<std::string, int> counts;
  for (int i = 0; i < 4000; ++i) {
    auto q = query::Parser::ParseBasic(generator.Next(rng));
    ++counts[q->GetRsrc("cluster")->value.text()];
  }
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [cluster, count] : counts) {
    EXPECT_NEAR(count, 1000, 120);
  }
}

TEST(QueryGen, HotFractionBiasesClusterZero) {
  QuerySpec spec;
  spec.cluster_count = 4;
  spec.hot_fraction = 0.8;
  QueryGenerator generator(spec);
  Rng rng(9);
  int hot = 0;
  for (int i = 0; i < 2000; ++i) {
    auto q = query::Parser::ParseBasic(generator.Next(rng));
    hot += (q->GetRsrc("cluster")->value.text() == "c0");
  }
  EXPECT_GT(hot, 1600);  // 0.8 + 0.05 residual uniform share
}

TEST(QueryGen, OptionalMemoryConstraint) {
  QuerySpec spec;
  spec.include_memory_constraint = true;
  spec.min_memory_mb = 128;
  QueryGenerator generator(spec);
  auto q = query::Parser::ParseBasic(generator.ForCluster(0));
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->GetRsrc("memory")->op, query::CmpOp::kGe);
  EXPECT_EQ(q->GetRsrc("memory")->value.text(), "128");
}

// --- response collector ---

TEST(Collector, AggregatesAndResets) {
  ResponseCollector collector;
  collector.RecordResponse(Millis(10));
  collector.RecordResponse(Millis(30));
  collector.RecordFailure();
  EXPECT_EQ(collector.completed(), 2u);
  EXPECT_EQ(collector.failures(), 1u);
  EXPECT_NEAR(collector.response_stats().mean(), 0.020, 1e-9);
  EXPECT_NEAR(collector.QuantileSeconds(1.0), 0.030, 1e-9);
  collector.Reset();
  EXPECT_EQ(collector.completed(), 0u);
  EXPECT_EQ(collector.failures(), 0u);
}

// --- client node against a scripted allocator ---

// Minimal allocator: returns an allocation for every query after a fixed
// service delay; counts releases.
class ScriptedPool final : public net::Node {
 public:
  explicit ScriptedPool(SimDuration service) : service_(service) {}
  void OnMessage(const net::Envelope& env, net::NodeContext& ctx) override {
    if (env.message.type == net::msg::kQuery) {
      ctx.Consume(service_);
      pipeline::Allocation allocation;
      allocation.machine_name = "m0";
      allocation.machine_id = 1;
      allocation.session_key = "sess-" + std::to_string(++seq_);
      allocation.pool_address = ctx.self();
      allocation.request_id = 0;
      if (auto rid = ParseInt(env.message.Header(net::hdr::kRequestId))) {
        allocation.request_id = static_cast<std::uint64_t>(*rid);
      }
      ctx.Send(env.message.Header(net::hdr::kReplyTo),
               pipeline::MakeAllocationMessage(allocation));
      ++queries;
    } else if (env.message.type == net::msg::kRelease) {
      ++releases;
    }
  }
  SimDuration service_;
  int seq_ = 0;
  int queries = 0;
  int releases = 0;
};

TEST(ClientNode, ClosedLoopIssuesAndReleases) {
  simnet::SimKernel kernel;
  simnet::SimNetwork network(&kernel, simnet::Topology::Lan(), 10);
  network.AddHost("alpha", 4);
  auto pool = std::make_shared<ScriptedPool>(Millis(5));
  network.AddNode("pool", pool, {"alpha", 1});

  ResponseCollector collector;
  ClientConfig config;
  config.client_id = 1;
  config.entry = "pool";
  config.make_query = [](Rng&) {
    return std::string("punch.rsrc.cluster = c0\n");
  };
  config.collector = &collector;
  config.max_requests = 10;
  auto client = std::make_shared<ClientNode>(config);
  network.AddNode("client", client, {"alpha", 2});

  kernel.RunUntil(Seconds(10));
  EXPECT_EQ(client->stats().sent, 10u);
  EXPECT_EQ(client->stats().allocations, 10u);
  EXPECT_EQ(pool->releases, 10);  // zero job duration: release immediately
  EXPECT_EQ(collector.completed(), 10u);
  // Response time at least the 5ms service.
  EXPECT_GE(collector.response_stats().min(), 0.005);
}

TEST(ClientNode, JobDurationHoldsMachine) {
  simnet::SimKernel kernel;
  simnet::SimNetwork network(&kernel, simnet::Topology::Lan(), 10);
  network.AddHost("alpha", 4);
  auto pool = std::make_shared<ScriptedPool>(Millis(1));
  network.AddNode("pool", pool, {"alpha", 1});

  ResponseCollector collector;
  ClientConfig config;
  config.client_id = 1;
  config.entry = "pool";
  config.make_query = [](Rng&) {
    return std::string("punch.rsrc.cluster = c0\n");
  };
  config.collector = &collector;
  config.max_requests = 3;
  config.job_duration = [](Rng&) { return Seconds(2); };
  auto client = std::make_shared<ClientNode>(config);
  network.AddNode("client", client, {"alpha", 2});

  kernel.RunUntil(Seconds(1));
  EXPECT_EQ(pool->queries, 1);
  EXPECT_EQ(pool->releases, 0);  // job still "running"
  kernel.RunUntil(Seconds(3));
  EXPECT_EQ(pool->releases, 1);  // released after the 2s job
  kernel.RunUntil(Seconds(20));
  EXPECT_EQ(pool->releases, 3);
}

TEST(ClientNode, ThinkTimePacesRequests) {
  simnet::SimKernel kernel;
  simnet::SimNetwork network(&kernel, simnet::Topology::Lan(), 10);
  network.AddHost("alpha", 4);
  auto pool = std::make_shared<ScriptedPool>(Millis(1));
  network.AddNode("pool", pool, {"alpha", 1});

  ClientConfig config;
  config.client_id = 1;
  config.entry = "pool";
  config.make_query = [](Rng&) {
    return std::string("punch.rsrc.cluster = c0\n");
  };
  config.think_time = Seconds(1);
  auto client = std::make_shared<ClientNode>(config);
  network.AddNode("client", client, {"alpha", 2});

  kernel.RunUntil(Seconds(5));
  // Roughly one request per second of think time.
  EXPECT_LE(client->stats().sent, 6u);
  EXPECT_GE(client->stats().sent, 4u);
}

TEST(ClientNode, RequestTimeoutRecoversFromSilence) {
  simnet::SimKernel kernel;
  simnet::SimNetwork network(&kernel, simnet::Topology::Lan(), 10);
  network.AddHost("alpha", 4);

  // A pool that never answers.
  class BlackHole final : public net::Node {
   public:
    void OnMessage(const net::Envelope&, net::NodeContext&) override {}
  };
  network.AddNode("pool", std::make_shared<BlackHole>(), {"alpha", 1});

  ResponseCollector collector;
  ClientConfig config;
  config.client_id = 1;
  config.entry = "pool";
  config.make_query = [](Rng&) {
    return std::string("punch.rsrc.cluster = c0\n");
  };
  config.collector = &collector;
  config.request_timeout = Seconds(1);
  auto client = std::make_shared<ClientNode>(config);
  network.AddNode("client", client, {"alpha", 2});

  kernel.RunUntil(Seconds(10));
  // Without the timeout the client would wedge after one query; with it
  // the loop keeps issuing ~1 query per second.
  EXPECT_GE(client->stats().sent, 8u);
  EXPECT_GE(collector.failures(), 8u);
}

TEST(ClientNode, TimeoutIgnoredWhenReplyArrivesFirst) {
  simnet::SimKernel kernel;
  simnet::SimNetwork network(&kernel, simnet::Topology::Lan(), 10);
  network.AddHost("alpha", 4);
  auto pool = std::make_shared<ScriptedPool>(Millis(5));
  network.AddNode("pool", pool, {"alpha", 1});

  ResponseCollector collector;
  ClientConfig config;
  config.client_id = 1;
  config.entry = "pool";
  config.make_query = [](Rng&) {
    return std::string("punch.rsrc.cluster = c0\n");
  };
  config.collector = &collector;
  config.request_timeout = Seconds(5);
  config.max_requests = 10;
  auto client = std::make_shared<ClientNode>(config);
  network.AddNode("client", client, {"alpha", 2});

  kernel.RunUntil(Seconds(60));
  // Replies beat the timeout every time: no spurious failures.
  EXPECT_EQ(collector.completed(), 10u);
  EXPECT_EQ(collector.failures(), 0u);
}

TEST(ClientNode, FailureCountsAndContinues) {
  simnet::SimKernel kernel;
  simnet::SimNetwork network(&kernel, simnet::Topology::Lan(), 10);
  network.AddHost("alpha", 4);

  class FailingPool final : public net::Node {
   public:
    void OnMessage(const net::Envelope& env, net::NodeContext& ctx) override {
      if (env.message.type != net::msg::kQuery) return;
      std::uint64_t rid = 0;
      if (auto r = ParseInt(env.message.Header(net::hdr::kRequestId))) {
        rid = static_cast<std::uint64_t>(*r);
      }
      ctx.Send(env.message.Header(net::hdr::kReplyTo),
               pipeline::MakeFailureMessage(rid, "nope"));
    }
  };
  network.AddNode("pool", std::make_shared<FailingPool>(), {"alpha", 1});

  ResponseCollector collector;
  ClientConfig config;
  config.client_id = 1;
  config.entry = "pool";
  config.make_query = [](Rng&) {
    return std::string("punch.rsrc.cluster = c0\n");
  };
  config.collector = &collector;
  config.max_requests = 5;
  auto client = std::make_shared<ClientNode>(config);
  network.AddNode("client", client, {"alpha", 2});

  kernel.RunUntil(Seconds(5));
  EXPECT_EQ(client->stats().sent, 5u);
  EXPECT_EQ(client->stats().failures, 5u);
  EXPECT_EQ(collector.failures(), 5u);
}

}  // namespace
}  // namespace actyp::workload
