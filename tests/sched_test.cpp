// Tests for the scheduling policies: objective ordering, linear-search
// accounting, eligibility, per-query filters, the Fig. 8 instance-bias
// used by replicated pools, and the incrementally-maintained index's
// exact equivalence with the legacy linear scan.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sched/index.hpp"
#include "sched/policy.hpp"

namespace actyp::sched {
namespace {

CacheEntry Entry(double load, double memory = 256, double speed = 1.0) {
  CacheEntry entry;
  entry.load = load;
  entry.available_memory_mb = memory;
  entry.effective_speed = speed;
  entry.num_cpus = 1;
  entry.max_allowed_load = 1.0;
  return entry;
}

TEST(LeastLoad, PrefersLowestLoad) {
  LeastLoadPolicy policy;
  std::vector<CacheEntry> cache{Entry(0.9), Entry(0.1), Entry(0.5)};
  SelectionContext ctx;
  auto sel = policy.Select(cache, ctx);
  ASSERT_TRUE(sel.found());
  EXPECT_EQ(sel.index, 1u);
  EXPECT_EQ(sel.examined, 3u);  // linear search touches everything
}

TEST(LeastLoad, SpeedBreaksTies) {
  LeastLoadPolicy policy;
  EXPECT_TRUE(policy.Better(Entry(0.2, 256, 2.0), Entry(0.2, 256, 1.0)));
  EXPECT_FALSE(policy.Better(Entry(0.3, 256, 9.0), Entry(0.2, 256, 1.0)));
}

TEST(MostMemory, PrefersLargestMemory) {
  MostMemoryPolicy policy;
  std::vector<CacheEntry> cache{Entry(0.1, 128), Entry(0.9, 1024),
                                Entry(0.5, 512)};
  auto sel = policy.Select(cache, SelectionContext{});
  ASSERT_TRUE(sel.found());
  EXPECT_EQ(sel.index, 1u);
}

TEST(Fastest, DiscountsBySaturation) {
  FastestPolicy policy;
  // 3.0-speed machine at load 2 effectively 1.0; 1.5-speed idle is 1.5.
  CacheEntry busy_fast = Entry(2.0, 256, 3.0);
  busy_fast.max_allowed_load = 4.0;  // keep it eligible
  CacheEntry idle_slow = Entry(0.0, 256, 1.5);
  EXPECT_TRUE(policy.Better(idle_slow, busy_fast));
}

TEST(Eligibility, LoadCeilingExcludes) {
  LeastLoadPolicy policy;
  std::vector<CacheEntry> cache{Entry(1.0), Entry(2.0)};  // all at/over limit
  auto sel = policy.Select(cache, SelectionContext{});
  EXPECT_FALSE(sel.found());
  EXPECT_EQ(sel.examined, 2u);
}

TEST(Eligibility, MultiCpuRaisesCeiling) {
  LeastLoadPolicy policy;
  CacheEntry smp = Entry(1.5);
  smp.num_cpus = 4;  // ceiling = 1.0 + 4 - 1 = 4.0
  std::vector<CacheEntry> cache{smp};
  EXPECT_TRUE(policy.Select(cache, SelectionContext{}).found());
}

TEST(Eligibility, AllocatedExcluded) {
  LeastLoadPolicy policy;
  CacheEntry taken = Entry(0.0);
  taken.allocated = true;
  std::vector<CacheEntry> cache{taken};
  EXPECT_FALSE(policy.Select(cache, SelectionContext{}).found());
}

TEST(Filter, ExcludesByIndex) {
  LeastLoadPolicy policy;
  std::vector<CacheEntry> cache{Entry(0.0), Entry(0.5)};
  std::function<bool(std::size_t, const CacheEntry&)> filter =
      [](std::size_t i, const CacheEntry&) { return i != 0; };
  SelectionContext ctx;
  ctx.filter = &filter;
  auto sel = policy.Select(cache, ctx);
  ASSERT_TRUE(sel.found());
  EXPECT_EQ(sel.index, 1u);
}

TEST(ReplicationBias, InstancesPreferDistinctStrides) {
  // 8 idle machines, 2 instances: instance 0 should pick an even index,
  // instance 1 an odd index (Fig. 8's "instance i prefers every i-th").
  LeastLoadPolicy policy;
  std::vector<CacheEntry> cache;
  for (int i = 0; i < 8; ++i) cache.push_back(Entry(0.1 * i));

  SelectionContext ctx0;
  ctx0.instance = 0;
  ctx0.instance_count = 2;
  SelectionContext ctx1;
  ctx1.instance = 1;
  ctx1.instance_count = 2;

  const auto sel0 = policy.Select(cache, ctx0);
  const auto sel1 = policy.Select(cache, ctx1);
  ASSERT_TRUE(sel0.found());
  ASSERT_TRUE(sel1.found());
  EXPECT_EQ(sel0.index % 2, 0u);
  EXPECT_EQ(sel1.index % 2, 1u);
  EXPECT_NE(sel0.index, sel1.index);
}

TEST(ReplicationBias, FallsBackToOtherStride) {
  LeastLoadPolicy policy;
  // Only index 1 (odd) is eligible; instance 0 must still find it.
  std::vector<CacheEntry> cache{Entry(5.0), Entry(0.1), Entry(5.0),
                                Entry(5.0)};
  SelectionContext ctx;
  ctx.instance = 0;
  ctx.instance_count = 2;
  auto sel = policy.Select(cache, ctx);
  ASSERT_TRUE(sel.found());
  EXPECT_EQ(sel.index, 1u);
  // Preferred stride (2 entries) + fallback examination.
  EXPECT_GT(sel.examined, 2u);
}

TEST(RoundRobin, CyclesThroughMachines) {
  RoundRobinPolicy policy;
  std::vector<CacheEntry> cache{Entry(0.0), Entry(0.0), Entry(0.0)};
  SelectionContext ctx;
  std::vector<std::size_t> picks;
  for (int i = 0; i < 6; ++i) picks.push_back(policy.Select(cache, ctx).index);
  EXPECT_EQ(picks, (std::vector<std::size_t>{0, 1, 2, 0, 1, 2}));
}

TEST(RoundRobin, SkipsIneligible) {
  RoundRobinPolicy policy;
  std::vector<CacheEntry> cache{Entry(0.0), Entry(9.0), Entry(0.0)};
  SelectionContext ctx;
  EXPECT_EQ(policy.Select(cache, ctx).index, 0u);
  EXPECT_EQ(policy.Select(cache, ctx).index, 2u);
  EXPECT_EQ(policy.Select(cache, ctx).index, 0u);
}

TEST(Random, FindsEligibleEntry) {
  RandomPolicy policy;
  std::vector<CacheEntry> cache{Entry(9.0), Entry(9.0), Entry(0.0),
                                Entry(9.0)};
  Rng rng(3);
  SelectionContext ctx;
  ctx.rng = &rng;
  for (int i = 0; i < 20; ++i) {
    auto sel = policy.Select(cache, ctx);
    ASSERT_TRUE(sel.found());
    EXPECT_EQ(sel.index, 2u);
  }
}

TEST(Random, RequiresRng) {
  RandomPolicy policy;
  std::vector<CacheEntry> cache{Entry(0.0)};
  EXPECT_FALSE(policy.Select(cache, SelectionContext{}).found());
}

TEST(EmptyCache, NothingFound) {
  LeastLoadPolicy policy;
  std::vector<CacheEntry> cache;
  auto sel = policy.Select(cache, SelectionContext{});
  EXPECT_FALSE(sel.found());
  EXPECT_EQ(sel.examined, 0u);
}

TEST(Factory, CreatesAllPolicies) {
  for (const char* name :
       {"least-load", "most-memory", "fastest", "round-robin", "random",
        "linear-least-load", "linear-most-memory", "linear-fastest"}) {
    auto policy = MakePolicy(name);
    ASSERT_TRUE(policy.ok()) << name;
    EXPECT_EQ((*policy)->name(), name);
  }
  EXPECT_TRUE(MakePolicy("").ok());  // default
  EXPECT_FALSE(MakePolicy("quantum").ok());
  EXPECT_FALSE(MakePolicy("linear-random").ok());  // no legacy variant
}

TEST(Factory, BareNamesAreIndexedLinearNamesAreNot) {
  EXPECT_TRUE((*MakePolicy("least-load"))->indexed());
  EXPECT_TRUE((*MakePolicy("fastest"))->indexed());
  EXPECT_FALSE((*MakePolicy("linear-least-load"))->indexed());
  EXPECT_FALSE((*MakePolicy("round-robin"))->indexed());
  EXPECT_FALSE((*MakePolicy("random"))->indexed());
}

// Property sweep: every policy must return an eligible entry whenever one
// exists, and must examine at most 2n entries.
class PolicyProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(PolicyProperty, AlwaysFindsEligibleWhenPresent) {
  auto policy = MakePolicy(GetParam());
  ASSERT_TRUE(policy.ok());
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.NextBounded(40);
    std::vector<CacheEntry> cache;
    bool any_eligible = false;
    for (std::size_t i = 0; i < n; ++i) {
      const bool eligible = rng.Bernoulli(0.4);
      cache.push_back(Entry(eligible ? rng.Uniform(0, 0.9) : 9.0));
      any_eligible |= eligible;
    }
    SelectionContext ctx;
    ctx.rng = &rng;
    ctx.instance = static_cast<std::uint32_t>(rng.NextBounded(3));
    ctx.instance_count = 3;
    auto sel = (*policy)->Select(cache, ctx);
    EXPECT_EQ(sel.found(), any_eligible);
    if (sel.found()) {
      EXPECT_LT(cache[sel.index].load, 1.0);
    }
    EXPECT_LE(sel.examined, 2 * n);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyProperty,
                         ::testing::Values("least-load", "most-memory",
                                           "fastest", "round-robin",
                                           "random"));

// --- the scheduling index ---

CacheEntry RandomEntry(Rng& rng) {
  CacheEntry entry;
  entry.load = rng.Bernoulli(0.4) ? rng.Uniform(0, 0.95) : rng.Uniform(1, 9);
  entry.available_memory_mb = 64 * (1 + rng.NextBounded(32));
  entry.effective_speed = 0.5 + 0.25 * static_cast<double>(rng.NextBounded(8));
  entry.num_cpus = 1 + static_cast<int>(rng.NextBounded(3));
  entry.max_allowed_load = 1.0;
  return entry;
}

// The index must choose exactly the entry the legacy linear scan does,
// on any cache, any instance bias, and with any filter.
TEST(SchedulingIndex, MatchesLinearScanOnRandomCaches) {
  Rng rng(4242);
  for (const char* name : {"least-load", "most-memory", "fastest"}) {
    auto policy = MakePolicy(name);
    ASSERT_TRUE(policy.ok());
    for (int trial = 0; trial < 60; ++trial) {
      const std::uint32_t stride = 1 + rng.NextBounded(4);
      const std::size_t n = 1 + rng.NextBounded(60);
      std::vector<CacheEntry> cache;
      for (std::size_t i = 0; i < n; ++i) cache.push_back(RandomEntry(rng));

      SchedulingIndex index(policy->get(), 0, stride);
      index.Rebuild(cache);

      std::function<bool(std::size_t, const CacheEntry&)> filter =
          [](std::size_t i, const CacheEntry&) { return i % 5 != 3; };
      for (std::uint32_t instance = 0; instance < stride; ++instance) {
        SelectionContext ctx;
        ctx.instance = instance;
        ctx.instance_count = stride;
        if (trial % 2 == 0) ctx.filter = &filter;
        const Selection linear = (*policy)->Select(cache, ctx);
        const Selection indexed = index.Select(cache, ctx);
        EXPECT_EQ(indexed.index, linear.index)
            << name << " trial=" << trial << " instance=" << instance;
        EXPECT_EQ(indexed.found(), linear.found());
      }
    }
  }
}

// Equivalence on a mutating trace: allocate/release load changes with
// incremental Update() must keep the index's answers identical to the
// linear scan — the "same allocations on the same trace" property.
TEST(SchedulingIndex, TraceOfUpdatesStaysEquivalent) {
  Rng rng(99);
  auto policy = MakePolicy("least-load");
  ASSERT_TRUE(policy.ok());
  std::vector<CacheEntry> cache;
  for (int i = 0; i < 40; ++i) cache.push_back(RandomEntry(rng));
  SchedulingIndex index(policy->get(), 1, 2);
  index.Rebuild(cache);

  std::vector<std::size_t> held;
  SelectionContext ctx;
  ctx.instance = 1;
  ctx.instance_count = 2;
  for (int step = 0; step < 500; ++step) {
    const Selection linear = (*policy)->Select(cache, ctx);
    const Selection indexed = index.Select(cache, ctx);
    ASSERT_EQ(indexed.index, linear.index) << "step " << step;
    if (linear.found() && rng.Bernoulli(0.7)) {
      cache[linear.index].load += 1.0;  // allocate
      index.Update(cache, linear.index);
      held.push_back(linear.index);
    } else if (!held.empty()) {
      const std::size_t h = rng.NextBounded(held.size());
      cache[held[h]].load -= 1.0;  // release
      index.Update(cache, held[h]);
      held[h] = held.back();
      held.pop_back();
    }
  }
}

// The asymptotic win the refactor is for: a mostly-idle pool answers in
// O(1) examined entries instead of O(n).
TEST(SchedulingIndex, ExaminedStaysConstantOnIdlePool) {
  auto policy = MakePolicy("least-load");
  ASSERT_TRUE(policy.ok());
  std::vector<CacheEntry> cache;
  for (int i = 0; i < 3200; ++i) {
    CacheEntry entry;
    entry.load = 0.1;
    entry.effective_speed = 1.0;
    cache.push_back(entry);
  }
  SchedulingIndex index(policy->get(), 0, 1);
  index.Rebuild(cache);
  SelectionContext ctx;
  const Selection linear = (*policy)->Select(cache, ctx);
  const Selection indexed = index.Select(cache, ctx);
  EXPECT_EQ(indexed.index, linear.index);
  EXPECT_EQ(linear.examined, 3200u);
  EXPECT_LE(indexed.examined, 4u);
}

TEST(SchedulingIndex, FallsBackToSiblingStrides) {
  // Only an off-stride entry is eligible; the index must fall back the
  // way the linear scan's second phase does.
  auto policy = MakePolicy("least-load");
  std::vector<CacheEntry> cache;
  for (int i = 0; i < 6; ++i) {
    CacheEntry entry;
    entry.load = (i == 3) ? 0.2 : 5.0;  // index 3 is odd-stride
    cache.push_back(entry);
  }
  SchedulingIndex index(policy->get(), 0, 2);
  index.Rebuild(cache);
  SelectionContext ctx;
  ctx.instance = 0;
  ctx.instance_count = 2;
  const Selection sel = index.Select(cache, ctx);
  ASSERT_TRUE(sel.found());
  EXPECT_EQ(sel.index, 3u);
}

}  // namespace
}  // namespace actyp::sched
