// Smoke tests for the unified scenario driver substrate: every paper
// figure and ablation must be registered by name, runs must honor the
// driver overrides, and the JSON report emission must be parseable.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "actyp/scenario_registry.hpp"

namespace actyp {
namespace {

// A minimal recursive-descent JSON validity checker — enough to assert
// the driver's output is real JSON (objects, arrays, strings, numbers,
// null) without an external parser dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Number() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] char Peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

constexpr const char* kExpectedScenarios[] = {
    "fig4_pools_lan",  "fig5_pools_wan",
    "fig6_pool_size",  "fig7_splitting",
    "fig8_replication", "fig9_workload",
    "abl_baselines",   "abl_delegation",
    "abl_dynamic_aggregation", "abl_qos_fanout",
    "abl_query_micro", "abl_sched_policy",
};

TEST(ScenarioRegistry, AllPaperScenariosRegistered) {
  auto& registry = ScenarioRegistry::Instance();
  for (const char* name : kExpectedScenarios) {
    const ScenarioInfo* info = registry.Find(name);
    ASSERT_NE(info, nullptr) << "missing scenario: " << name;
    EXPECT_EQ(info->name, name);
    EXPECT_FALSE(info->summary.empty()) << name;
    EXPECT_TRUE(static_cast<bool>(info->run)) << name;
  }
  EXPECT_GE(registry.List().size(), 12u);
}

TEST(ScenarioRegistry, ListIsSortedAndFindRejectsUnknown) {
  auto& registry = ScenarioRegistry::Instance();
  const auto list = registry.List();
  for (std::size_t i = 1; i < list.size(); ++i) {
    EXPECT_LT(list[i - 1]->name, list[i]->name);
  }
  EXPECT_EQ(registry.Find("no_such_scenario"), nullptr);
}

TEST(ScenarioRegistry, Fig6HonorsOverridesAndProducesCells) {
  ScenarioRunOptions options;
  options.machines = 100;
  options.clients = 2;
  options.time_scale = 0.1;
  options.seed = 7;
  const auto* info = ScenarioRegistry::Instance().Find("fig6_pool_size");
  ASSERT_NE(info, nullptr);
  const ScenarioReport report = info->run(options);
  EXPECT_EQ(report.scenario, "fig6_pool_size");
  ASSERT_EQ(report.cells.size(), 1u);  // both sweep dims pinned
  const ScenarioCell& cell = report.cells.front();
  ASSERT_EQ(cell.dims.size(), 2u);
  EXPECT_EQ(cell.dims[0].first, "machines");
  EXPECT_EQ(cell.dims[0].second, 100.0);
  EXPECT_EQ(cell.dims[1].first, "clients");
  EXPECT_EQ(cell.dims[1].second, 2.0);
  double completed = 0;
  for (const auto& [name, value] : cell.metrics) {
    if (name == "completed") completed = value;
  }
  EXPECT_GT(completed, 0.0);
}

TEST(ScenarioRegistry, Fig6JsonIsParseable) {
  ScenarioRunOptions options;
  options.machines = 100;
  options.clients = 2;
  options.time_scale = 0.1;
  const auto* info = ScenarioRegistry::Instance().Find("fig6_pool_size");
  ASSERT_NE(info, nullptr);
  std::ostringstream out;
  WriteReportJson(info->run(options), out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"scenario\":\"fig6_pool_size\""), std::string::npos);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
}

// The tentpole guarantee of --jobs: a parallel sweep must emit exactly
// the bytes the serial sweep emits — every cell owns its own kernel and
// seed, and cells are collected in queue order. --stable zeroes the
// wall-clock-derived metrics, the only legitimately nondeterministic
// numbers in the report.
TEST(ParallelSweep, JobsFourIsByteIdenticalToSerial) {
  for (const char* name : {"qm_scaling", "pm_scaling"}) {
    const auto* info = ScenarioRegistry::Instance().Find(name);
    ASSERT_NE(info, nullptr);
    ScenarioRunOptions options;
    options.machines = 100;
    options.clients = 2;
    options.time_scale = 0.05;
    options.seed = 17;
    options.stable = true;

    options.jobs = 1;
    std::ostringstream serial;
    WriteReportJson(info->run(options), serial);

    options.jobs = 4;
    std::ostringstream parallel;
    WriteReportJson(info->run(options), parallel);

    EXPECT_FALSE(serial.str().empty());
    EXPECT_EQ(serial.str(), parallel.str()) << name;
  }
}

// Repeated parallel runs are stable too (no run-order dependence left).
TEST(ParallelSweep, ParallelRunsAreReproducible) {
  const auto* info = ScenarioRegistry::Instance().Find("fig6_pool_size");
  ASSERT_NE(info, nullptr);
  ScenarioRunOptions options;
  options.machines = 100;
  options.time_scale = 0.05;
  options.seed = 3;
  options.jobs = 3;
  options.stable = true;
  std::ostringstream first, second;
  WriteReportJson(info->run(options), first);
  WriteReportJson(info->run(options), second);
  EXPECT_EQ(first.str(), second.str());
}

// Removes the contiguous block of profiled-only metrics that
// AppendMetrics appends to a profiled cell ("client_issue_p50_s"
// through the trace digest's trailing "reply_tail_share"), leaving
// the pre-profiler report.
std::string StripStageMetrics(std::string json) {
  const std::string first = ",\"client_issue_p50_s\":";
  const std::string last = "\"reply_tail_share\":";
  for (;;) {
    const std::size_t start = json.find(first);
    if (start == std::string::npos) break;
    std::size_t end = json.find(last, start);
    if (end == std::string::npos) break;
    end += last.size();
    while (end < json.size() && json[end] != ',' && json[end] != '}') {
      ++end;  // consume the numeric value
    }
    json.erase(start, end - start);
  }
  return json;
}

// The profiler's runtime off switch must reproduce the pre-profiler
// report byte for byte: same cells, same metrics, same formatting —
// the profiled report is the unprofiled one plus the appended
// per-stage percentiles, nothing else moved.
TEST(ProfileToggle, ProfiledReportIsUnprofiledPlusStageMetrics) {
  const auto* info = ScenarioRegistry::Instance().Find("fig6_pool_size");
  ASSERT_NE(info, nullptr);
  ScenarioRunOptions options;
  options.machines = 100;
  options.clients = 2;
  options.time_scale = 0.1;
  options.seed = 11;
  options.stable = true;

  options.profile = true;
  std::ostringstream profiled;
  WriteReportJson(info->run(options), profiled);

  options.profile = false;
  std::ostringstream unprofiled;
  WriteReportJson(info->run(options), unprofiled);

  EXPECT_NE(profiled.str().find("\"pool_select_p95_s\":"),
            std::string::npos);
  EXPECT_EQ(unprofiled.str().find("_p50_s"), std::string::npos);
  EXPECT_EQ(unprofiled.str().find("_p99_s"), std::string::npos);
  EXPECT_EQ(StripStageMetrics(profiled.str()), unprofiled.str());
}

// Byte-identical replay with profiling off: repeated unprofiled runs
// at a fixed seed emit the same bytes (the profiler leaves no trace in
// the simulation, so the off path is exactly the seed path).
TEST(ProfileToggle, UnprofiledRunsAreByteIdentical) {
  for (const char* name : {"fig6_pool_size", "qm_scaling"}) {
    const auto* info = ScenarioRegistry::Instance().Find(name);
    ASSERT_NE(info, nullptr);
    ScenarioRunOptions options;
    options.machines = 100;
    options.clients = 2;
    options.time_scale = 0.05;
    options.seed = 23;
    options.stable = true;
    options.profile = false;
    std::ostringstream first, second;
    WriteReportJson(info->run(options), first);
    WriteReportJson(info->run(options), second);
    EXPECT_FALSE(first.str().empty()) << name;
    EXPECT_EQ(first.str(), second.str()) << name;
  }
}

// Parallel profiled sweeps stay deterministic: each cell owns its own
// profiler, so --jobs does not reorder or interleave stage samples.
TEST(ProfileToggle, ProfiledParallelSweepMatchesSerial) {
  const auto* info = ScenarioRegistry::Instance().Find("qm_scaling");
  ASSERT_NE(info, nullptr);
  ScenarioRunOptions options;
  options.machines = 100;
  options.clients = 2;
  options.time_scale = 0.05;
  options.seed = 29;
  options.stable = true;
  options.profile = true;

  options.jobs = 1;
  std::ostringstream serial;
  WriteReportJson(info->run(options), serial);

  options.jobs = 4;
  std::ostringstream parallel;
  WriteReportJson(info->run(options), parallel);

  EXPECT_NE(serial.str().find("_p95_s"), std::string::npos);
  EXPECT_EQ(serial.str(), parallel.str());
}

TEST(ReportEmitters, JsonEscapesAndNonFiniteValues) {
  ScenarioReport report;
  report.scenario = "synthetic";
  report.title = "quotes \" backslash \\ newline \n tab \t";
  ScenarioCell cell;
  cell.labels.emplace_back("label", "va\"lue");
  cell.dims.emplace_back("dim", 1.5);
  cell.metrics.emplace_back("nan_metric", std::nan(""));
  cell.metrics.emplace_back("inf_metric",
                            std::numeric_limits<double>::infinity());
  report.cells.push_back(cell);
  report.note = "control char \x01 and unicode-free text";
  std::ostringstream out;
  WriteReportJson(report, out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"nan_metric\":null"), std::string::npos);
  EXPECT_NE(json.find("\"inf_metric\":null"), std::string::npos);
}

TEST(ReportEmitters, TableContainsTitleHeadersAndNote) {
  ScenarioReport report;
  report.scenario = "synthetic";
  report.title = "synthetic title";
  ScenarioCell cell;
  cell.labels.emplace_back("policy", "least-load");
  cell.dims.emplace_back("clients", 8);
  cell.metrics.emplace_back("mean_s", 0.25);
  report.cells.push_back(cell);
  report.note = "shape check: synthetic";
  std::ostringstream out;
  WriteReportTable(report, out);
  const std::string table = out.str();
  EXPECT_NE(table.find("synthetic title"), std::string::npos);
  EXPECT_NE(table.find("policy"), std::string::npos);
  EXPECT_NE(table.find("least-load"), std::string::npos);
  EXPECT_NE(table.find("clients"), std::string::npos);
  EXPECT_NE(table.find("mean_s"), std::string::npos);
  EXPECT_NE(table.find("shape check: synthetic"), std::string::npos);
}

}  // namespace
}  // namespace actyp
