// Tests for the discrete-event kernel, the topology/latency model, and
// the simulated network's queueing behaviour (service times, node
// serialization, host core limits).
#include <gtest/gtest.h>

#include <algorithm>

#include "simnet/kernel.hpp"
#include "simnet/sim_network.hpp"
#include "simnet/topology.hpp"

namespace actyp::simnet {
namespace {

// --- kernel ---

TEST(Kernel, ExecutesInTimeOrder) {
  SimKernel kernel;
  std::vector<int> order;
  kernel.Schedule(Millis(30), [&] { order.push_back(3); });
  kernel.Schedule(Millis(10), [&] { order.push_back(1); });
  kernel.Schedule(Millis(20), [&] { order.push_back(2); });
  kernel.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(kernel.Now(), Millis(30));
}

TEST(Kernel, TieBreakIsInsertionOrder) {
  SimKernel kernel;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    kernel.Schedule(Millis(10), [&order, i] { order.push_back(i); });
  }
  kernel.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Kernel, EventsMayScheduleEvents) {
  SimKernel kernel;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) kernel.Schedule(Millis(1), chain);
  };
  kernel.Schedule(0, chain);
  kernel.Run();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(kernel.Now(), Millis(9));
}

TEST(Kernel, RunUntilStopsAtBoundary) {
  SimKernel kernel;
  int fired = 0;
  kernel.Schedule(Millis(5), [&] { ++fired; });
  kernel.Schedule(Millis(15), [&] { ++fired; });
  kernel.RunUntil(Millis(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(kernel.Now(), Millis(10));  // clock advances to the boundary
  EXPECT_EQ(kernel.pending(), 1u);
  kernel.Run();
  EXPECT_EQ(fired, 2);
}

TEST(Kernel, NegativeDelayClampsToNow) {
  SimKernel kernel;
  kernel.Schedule(Millis(5), [] {});
  kernel.Run();
  bool fired = false;
  kernel.Schedule(-100, [&] { fired = true; });
  kernel.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(kernel.Now(), Millis(5));
}

TEST(Kernel, ClockAdapterTracksKernel) {
  SimKernel kernel;
  const Clock& clock = kernel.clock();
  kernel.Schedule(Millis(7), [] {});
  kernel.Run();
  EXPECT_EQ(clock.Now(), Millis(7));
}

// --- cancellation ---

TEST(Kernel, CancelPreventsExecution) {
  SimKernel kernel;
  int fired = 0;
  const auto id = kernel.Schedule(Millis(5), [&] { ++fired; });
  kernel.Schedule(Millis(10), [&] { fired += 10; });
  EXPECT_EQ(kernel.pending(), 2u);
  EXPECT_TRUE(kernel.Cancel(id));
  EXPECT_EQ(kernel.pending(), 1u);
  kernel.Run();
  EXPECT_EQ(fired, 10);  // only the surviving event ran
  EXPECT_EQ(kernel.executed(), 1u);
  EXPECT_EQ(kernel.cancelled(), 1u);
}

TEST(Kernel, CancelIsStaleAfterFiring) {
  SimKernel kernel;
  const auto id = kernel.Schedule(Millis(1), [] {});
  kernel.Run();
  EXPECT_FALSE(kernel.Cancel(id));
  EXPECT_FALSE(kernel.Cancel(id));  // idempotently stale
  EXPECT_FALSE(kernel.Cancel(SimKernel::kInvalidTimer));
}

TEST(Kernel, StaleIdCannotCancelReusedSlot) {
  SimKernel kernel;
  const auto first = kernel.Schedule(Millis(1), [] {});
  ASSERT_TRUE(kernel.Cancel(first));
  // The freed slot is reused; the old handle's generation is dead.
  bool fired = false;
  kernel.Schedule(Millis(2), [&] { fired = true; });
  EXPECT_FALSE(kernel.Cancel(first));
  kernel.Run();
  EXPECT_TRUE(fired);
}

TEST(Kernel, CancelHeadThenRunUntil) {
  SimKernel kernel;
  int fired = 0;
  const auto head = kernel.Schedule(Millis(1), [&] { ++fired; });
  kernel.Schedule(Millis(20), [&] { ++fired; });
  ASSERT_TRUE(kernel.Cancel(head));
  kernel.RunUntil(Millis(10));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(kernel.Now(), Millis(10));
  kernel.Run();
  EXPECT_EQ(fired, 1);
}

TEST(Kernel, CancelKeepsTieBreakOrder) {
  SimKernel kernel;
  std::vector<int> order;
  std::vector<SimKernel::TimerId> ids;
  for (int i = 0; i < 9; ++i) {
    ids.push_back(kernel.Schedule(Millis(10), [&order, i] {
      order.push_back(i);
    }));
  }
  // Cancel every third event; survivors must still run in insertion
  // order despite heap removals moving slots around.
  for (int i = 0; i < 9; i += 3) EXPECT_TRUE(kernel.Cancel(ids[i]));
  kernel.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 4, 5, 7, 8}));
}

TEST(Kernel, RescheduleAfterCancelPattern) {
  // The give-up-timer pattern: arm, cancel, re-arm, repeatedly.
  SimKernel kernel;
  int fired = 0;
  SimKernel::TimerId timer = SimKernel::kInvalidTimer;
  for (int round = 0; round < 100; ++round) {
    timer = kernel.Schedule(Millis(5), [&] { ++fired; });
    if (round % 2 == 0) {
      EXPECT_TRUE(kernel.Cancel(timer));
    }
    kernel.Run();
  }
  EXPECT_EQ(fired, 50);
  EXPECT_EQ(kernel.cancelled(), 50u);
  EXPECT_TRUE(kernel.Empty());
}

TEST(Kernel, RandomizedCancelMatchesReference) {
  // Heap invariant fuzz: a mix of schedules and cancels must fire the
  // surviving events in exact (time, insertion) order.
  SimKernel kernel;
  Rng rng(2024);
  std::vector<std::pair<SimTime, std::uint64_t>> fired;
  std::vector<std::pair<SimTime, std::uint64_t>> expected;
  std::vector<SimKernel::TimerId> live;
  std::vector<std::pair<SimTime, std::uint64_t>> live_keys;
  std::uint64_t seq = 0;
  for (int i = 0; i < 2000; ++i) {
    if (!live.empty() && rng.Bernoulli(0.3)) {
      const std::size_t victim = rng.NextBounded(live.size());
      EXPECT_TRUE(kernel.Cancel(live[victim]));
      live[victim] = live.back();
      live.pop_back();
      live_keys[victim] = live_keys.back();
      live_keys.pop_back();
    } else {
      const SimTime at = static_cast<SimTime>(rng.NextBounded(100000));
      const std::uint64_t s = seq++;
      live.push_back(kernel.ScheduleAt(at, [&fired, at, s] {
        fired.emplace_back(at, s);
      }));
      live_keys.emplace_back(at, s);
    }
  }
  expected = live_keys;
  std::sort(expected.begin(), expected.end());
  kernel.Run();
  EXPECT_EQ(fired, expected);
}

// --- topology ---

TEST(Topology, IntraSiteIsLan) {
  Topology topology;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const SimDuration latency = topology.SampleLatency("a", "b", 100, rng);
    EXPECT_GE(latency, Micros(150));
    EXPECT_LE(latency, Micros(150 + 50 + 10));
  }
}

TEST(Topology, InterSiteIsWan) {
  Topology topology = Topology::WanTwoSites("purdue", "upc");
  topology.SetHostSite("client", "purdue");
  topology.SetHostSite("server", "upc");
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const SimDuration latency =
        topology.SampleLatency("client", "server", 100, rng);
    EXPECT_GE(latency, Millis(30));
    EXPECT_LE(latency, Millis(36));
  }
}

TEST(Topology, LoopbackIsCheap) {
  Topology topology;
  Rng rng(1);
  EXPECT_LE(topology.SampleLatency("h", "h", 1000, rng), Micros(5));
}

TEST(Topology, BandwidthTermGrowsWithSize) {
  Topology topology;
  topology.SetIntraSiteLink(LinkSpec{Micros(100), 0, 10.0});
  Rng rng(1);
  const SimDuration small = topology.SampleLatency("a", "b", 0, rng);
  const SimDuration big = topology.SampleLatency("a", "b", 10000, rng);
  EXPECT_EQ(big - small, Micros(1000));  // 10000 bytes / 10 B per us
}

TEST(Topology, PerLinkOverride) {
  Topology topology;
  topology.SetHostSite("a", "s1");
  topology.SetHostSite("b", "s2");
  topology.SetLink("s1", "s2", LinkSpec{Millis(100), 0, 1e9});
  Rng rng(1);
  EXPECT_GE(topology.SampleLatency("a", "b", 10, rng), Millis(100));
  EXPECT_GE(topology.SampleLatency("b", "a", 10, rng), Millis(100));
}

// --- simulated network ---

// Consumes a fixed service time and acknowledges to the sender.
class ServerNode final : public net::Node {
 public:
  explicit ServerNode(SimDuration service) : service_(service) {}
  void OnMessage(const net::Envelope& env, net::NodeContext& ctx) override {
    ctx.Consume(service_);
    net::Message done{"done"};
    done.SetHeader("n", env.message.Header("n"));
    ctx.Send(env.from, std::move(done));
  }

 private:
  SimDuration service_;
};

class RecorderNode final : public net::Node {
 public:
  void OnMessage(const net::Envelope& env, net::NodeContext& ctx) override {
    arrivals.push_back(ctx.Now());
    labels.push_back(env.message.Header("n"));
  }
  std::vector<SimTime> arrivals;
  std::vector<std::string> labels;
};

TEST(SimNetwork, ServiceTimeSerializesSingleServer) {
  SimKernel kernel;
  Topology topology;
  topology.SetIntraSiteLink(LinkSpec{Micros(100), 0, 0});  // fixed latency
  SimNetwork network(&kernel, topology);
  network.AddHost("server", 8);
  network.AddHost("client", 8);

  auto server = std::make_shared<ServerNode>(Millis(10));
  auto recorder = std::make_shared<RecorderNode>();
  network.AddNode("server0", server, {"server", 1});
  network.AddNode("rec", recorder, {"client", 8});

  // Two back-to-back requests from the recorder's address.
  for (int i = 0; i < 2; ++i) {
    net::Message m{"work"};
    m.SetHeader("n", std::to_string(i));
    network.Post("rec", "server0", std::move(m));
  }
  kernel.Run();

  ASSERT_EQ(recorder->arrivals.size(), 2u);
  // First: 100us there + 10ms service + 100us back = 10.2 ms.
  EXPECT_EQ(recorder->arrivals[0], Micros(100) + Millis(10) + Micros(100));
  // Second: queued behind the first -> +10ms service.
  EXPECT_EQ(recorder->arrivals[1],
            Micros(100) + Millis(20) + Micros(100));
}

TEST(SimNetwork, MultipleServersOverlap) {
  SimKernel kernel;
  Topology topology;
  topology.SetIntraSiteLink(LinkSpec{Micros(100), 0, 0});
  SimNetwork network(&kernel, topology);
  network.AddHost("server", 8);
  network.AddHost("client", 8);
  network.AddNode("server0", std::make_shared<ServerNode>(Millis(10)),
                  {"server", 2});
  auto recorder = std::make_shared<RecorderNode>();
  network.AddNode("rec", recorder, {"client", 8});

  for (int i = 0; i < 2; ++i) {
    network.Post("rec", "server0", net::Message{"work"});
  }
  kernel.Run();
  ASSERT_EQ(recorder->arrivals.size(), 2u);
  // Both served in parallel: same completion time.
  EXPECT_EQ(recorder->arrivals[0], recorder->arrivals[1]);
}

TEST(SimNetwork, HostCoreLimitThrottlesNodes) {
  SimKernel kernel;
  Topology topology;
  topology.SetIntraSiteLink(LinkSpec{Micros(100), 0, 0});
  SimNetwork network(&kernel, topology);
  network.AddHost("server", 1);  // one core shared by two nodes
  network.AddHost("client", 8);
  network.AddNode("s0", std::make_shared<ServerNode>(Millis(10)),
                  {"server", 1});
  network.AddNode("s1", std::make_shared<ServerNode>(Millis(10)),
                  {"server", 1});
  auto recorder = std::make_shared<RecorderNode>();
  network.AddNode("rec", recorder, {"client", 8});

  network.Post("rec", "s0", net::Message{"work"});
  network.Post("rec", "s1", net::Message{"work"});
  kernel.Run();
  ASSERT_EQ(recorder->arrivals.size(), 2u);
  // The single core serializes the two nodes: 10ms apart.
  EXPECT_EQ(recorder->arrivals[1] - recorder->arrivals[0], Millis(10));
}

TEST(SimNetwork, TwelveCoreHostRunsTwelveConcurrently) {
  SimKernel kernel;
  Topology topology;
  topology.SetIntraSiteLink(LinkSpec{Micros(100), 0, 0});
  SimNetwork network(&kernel, topology);
  network.AddHost("alpha", 12);
  network.AddHost("client", 16);
  for (int i = 0; i < 16; ++i) {
    network.AddNode("s" + std::to_string(i),
                    std::make_shared<ServerNode>(Millis(10)), {"alpha", 1});
  }
  auto recorder = std::make_shared<RecorderNode>();
  network.AddNode("rec", recorder, {"client", 16});
  for (int i = 0; i < 16; ++i) {
    network.Post("rec", "s" + std::to_string(i), net::Message{"work"});
  }
  kernel.Run();
  ASSERT_EQ(recorder->arrivals.size(), 16u);
  std::multiset<SimTime> times(recorder->arrivals.begin(),
                               recorder->arrivals.end());
  // 12 finish in the first wave, 4 in the second.
  EXPECT_EQ(times.count(*times.begin()), 12u);
}

TEST(SimNetwork, DropsToUnknownNodeCounted) {
  SimKernel kernel;
  SimNetwork network(&kernel, Topology{});
  network.Post("x", "ghost", net::Message{"m"});
  kernel.Run();
  EXPECT_EQ(network.dropped_messages(), 1u);
}

TEST(SimNetwork, RemoveNodeStopsProcessing) {
  SimKernel kernel;
  SimNetwork network(&kernel, Topology{});
  auto recorder = std::make_shared<RecorderNode>();
  network.AddNode("rec", recorder, {});
  EXPECT_TRUE(network.HasNode("rec"));
  ASSERT_TRUE(network.RemoveNode("rec").ok());
  EXPECT_FALSE(network.HasNode("rec"));
  network.Post("x", "rec", net::Message{"m"});
  kernel.Run();
  EXPECT_TRUE(recorder->arrivals.empty());
  EXPECT_EQ(network.dropped_messages(), 1u);
}

TEST(SimNetwork, StatsTrackServiceAndQueue) {
  SimKernel kernel;
  Topology topology;
  topology.SetIntraSiteLink(LinkSpec{Micros(100), 0, 0});
  SimNetwork network(&kernel, topology);
  network.AddHost("server", 4);
  network.AddNode("s0", std::make_shared<ServerNode>(Millis(5)),
                  {"server", 1});
  for (int i = 0; i < 3; ++i) network.Post("x", "s0", net::Message{"w"});
  kernel.Run();
  const NodeStats stats = network.StatsFor("s0");
  EXPECT_EQ(stats.messages, 3u);
  EXPECT_EQ(stats.busy_time, Millis(15));
  EXPECT_GE(stats.max_queue, 2u);
  EXPECT_EQ(network.StatsFor("missing").messages, 0u);
}

TEST(SimNetwork, DeterministicAcrossRuns) {
  auto run = [] {
    SimKernel kernel;
    SimNetwork network(&kernel, Topology{}, 99);
    network.AddHost("server", 2);
    network.AddNode("s0", std::make_shared<ServerNode>(Millis(3)),
                    {"server", 1});
    auto recorder = std::make_shared<RecorderNode>();
    network.AddNode("rec", recorder, {"server", 2});
    for (int i = 0; i < 10; ++i) {
      net::Message m{"w"};
      m.SetHeader("n", std::to_string(i));
      network.Post("rec", "s0", std::move(m));
    }
    kernel.Run();
    return recorder->arrivals;
  };
  EXPECT_EQ(run(), run());
}

class SelfTickNode final : public net::Node {
 public:
  void OnStart(net::NodeContext& ctx) override {
    ctx.ScheduleSelf(Millis(10), net::Message{"tick"});
  }
  void OnMessage(const net::Envelope& env, net::NodeContext& ctx) override {
    if (env.message.type != "tick") return;
    times.push_back(ctx.Now());
    if (times.size() < 3) ctx.ScheduleSelf(Millis(10), net::Message{"tick"});
  }
  std::vector<SimTime> times;
};

TEST(SimNetwork, ScheduleSelfIsPeriodic) {
  SimKernel kernel;
  SimNetwork network(&kernel, Topology{});
  auto node = std::make_shared<SelfTickNode>();
  network.AddNode("timer", node, {});
  kernel.Run();
  ASSERT_EQ(node->times.size(), 3u);
  EXPECT_EQ(node->times[0], Millis(10));
  EXPECT_EQ(node->times[1], Millis(20));
  EXPECT_EQ(node->times[2], Millis(30));
}

// Arms a timer on start, then cancels it when told to.
class CancellingNode final : public net::Node {
 public:
  void OnStart(net::NodeContext& ctx) override {
    timer_ = ctx.ScheduleSelf(Millis(50), net::Message{"late-tick"});
    EXPECT_NE(timer_, 0u);
  }
  void OnMessage(const net::Envelope& env, net::NodeContext& ctx) override {
    if (env.message.type == "cancel") {
      cancel_result = ctx.CancelSelf(timer_);
    } else if (env.message.type == "late-tick") {
      ++late_ticks;
    }
  }
  net::TimerId timer_ = 0;
  bool cancel_result = false;
  int late_ticks = 0;
};

TEST(SimNetwork, CancelSelfStopsPendingTimer) {
  SimKernel kernel;
  SimNetwork network(&kernel, Topology{});
  auto node = std::make_shared<CancellingNode>();
  network.AddNode("n", node, {});
  network.Post("x", "n", net::Message{"cancel"});
  kernel.Run();
  EXPECT_TRUE(node->cancel_result);
  EXPECT_EQ(node->late_ticks, 0);
  EXPECT_EQ(kernel.pending(), 0u);
}

TEST(SimNetwork, RemoveNodeCancelsItsSelfTimers) {
  // A crashed service's periodic tick must not deliver to the fresh
  // instance registered later under the same address (tick storms).
  SimKernel kernel;
  SimNetwork network(&kernel, Topology{});
  auto first = std::make_shared<SelfTickNode>();
  network.AddNode("svc", first, {});
  kernel.RunUntil(Millis(15));  // one tick fired, the next is pending
  ASSERT_EQ(first->times.size(), 1u);
  ASSERT_TRUE(network.RemoveNode("svc").ok());

  auto second = std::make_shared<SelfTickNode>();
  network.AddNode("svc", second, {});
  kernel.Run();
  // The replacement saw only its own cadence; the orphaned timer died
  // with the removed node instead of being delivered (or dropped).
  EXPECT_EQ(first->times.size(), 1u);
  EXPECT_EQ(second->times.size(), 3u);
  EXPECT_EQ(network.dropped_messages(), 0u);
}

}  // namespace
}  // namespace actyp::simnet
