// Profiler subsystem tests: histogram quantile accuracy and lossless
// merge (the property that lets sweep cells aggregate), ring-buffer
// wrap-around, the no-perturbation guarantee (profiling on/off leaves
// the simulation byte-for-byte unchanged), fixed-seed determinism of
// the reported percentiles, and the metrics exporter's two formats.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "actyp/scenario.hpp"
#include "profile/metrics_exporter.hpp"
#include "profile/stage_profiler.hpp"

namespace actyp::profile {
namespace {

TEST(StageName, CoversEveryStage) {
  EXPECT_EQ(StageName(Stage::kClientIssue), "client_issue");
  EXPECT_EQ(StageName(Stage::kQmAdmit), "qm_admit");
  EXPECT_EQ(StageName(Stage::kPmDelegate), "pm_delegate");
  EXPECT_EQ(StageName(Stage::kPoolSelect), "pool_select");
  EXPECT_EQ(StageName(Stage::kReintegrate), "reintegrate");
  EXPECT_EQ(StageName(Stage::kReply), "reply");
}

TEST(LatencyHistogram, EmptyReportsZeros) {
  LatencyHistogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.mean(), 0.0);
  EXPECT_EQ(histogram.min(), 0.0);
  EXPECT_EQ(histogram.max(), 0.0);
  EXPECT_EQ(histogram.Quantile(0.5), 0.0);
}

TEST(LatencyHistogram, SingleValueReportsItselfExactly) {
  LatencyHistogram histogram;
  histogram.Add(0.0123);
  EXPECT_EQ(histogram.count(), 1u);
  // The observed-range clamp makes a degenerate distribution exact even
  // though the bucket is ~15% wide.
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.50), 0.0123);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.99), 0.0123);
  EXPECT_DOUBLE_EQ(histogram.min(), 0.0123);
  EXPECT_DOUBLE_EQ(histogram.max(), 0.0123);
}

TEST(LatencyHistogram, GoldenQuantilesOnUniformSamples) {
  LatencyHistogram histogram;
  // 1 ms .. 1 s uniform grid: the true quantiles are known, and the
  // geometric buckets (16/decade ~ 15% wide) plus interpolation must
  // land within one bucket width of them.
  for (int i = 1; i <= 1000; ++i) {
    histogram.Add(static_cast<double>(i) / 1000.0);
  }
  EXPECT_EQ(histogram.count(), 1000u);
  EXPECT_NEAR(histogram.mean(), 0.5005, 1e-9);
  EXPECT_NEAR(histogram.Quantile(0.50), 0.500, 0.500 * 0.16);
  EXPECT_NEAR(histogram.Quantile(0.95), 0.950, 0.950 * 0.16);
  EXPECT_NEAR(histogram.Quantile(0.99), 0.990, 0.990 * 0.16);
  // Quantiles are monotone and bounded by the observed extremes.
  const double p50 = histogram.Quantile(0.50);
  const double p95 = histogram.Quantile(0.95);
  const double p99 = histogram.Quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, histogram.max());
  EXPECT_GE(p50, histogram.min());
  EXPECT_DOUBLE_EQ(histogram.min(), 0.001);
  EXPECT_DOUBLE_EQ(histogram.max(), 1.0);
}

TEST(LatencyHistogram, UnderflowAndOverflowAreClamped) {
  LatencyHistogram histogram;  // default range [1e-6, 1e3)
  histogram.Add(1e-9);         // underflow bucket
  histogram.Add(5e3);          // overflow bucket
  EXPECT_EQ(histogram.count(), 2u);
  // Clamping to the observed range keeps the estimates finite and sane.
  EXPECT_GE(histogram.Quantile(0.01), 1e-9);
  EXPECT_LE(histogram.Quantile(0.99), 5e3);
  histogram.Add(-1.0);  // negatives are dropped, not folded in
  EXPECT_EQ(histogram.count(), 2u);
}

TEST(LatencyHistogram, MergeEqualsCombinedSamples) {
  // Lossless merge is what makes per-cell profilers aggregatable: the
  // merged histogram must be indistinguishable from one histogram fed
  // every sample. Exact bucket equality implies exact quantile
  // equality, checked here over an awkward mixed distribution.
  LatencyHistogram left, right, combined;
  std::vector<double> left_samples, right_samples;
  for (int i = 1; i <= 300; ++i) {
    left_samples.push_back(1e-4 * i);           // 0.1 ms .. 30 ms
    right_samples.push_back(2e-3 + 1e-3 * i);   // 3 ms .. 302 ms
  }
  for (const double v : left_samples) {
    left.Add(v);
    combined.Add(v);
  }
  for (const double v : right_samples) {
    right.Add(v);
    combined.Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), combined.count());
  EXPECT_DOUBLE_EQ(left.mean(), combined.mean());
  EXPECT_DOUBLE_EQ(left.min(), combined.min());
  EXPECT_DOUBLE_EQ(left.max(), combined.max());
  for (const double q : {0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(left.Quantile(q), combined.Quantile(q)) << "q=" << q;
  }
}

TEST(LatencyHistogram, MergeIntoEmptyAdoptsExtremes) {
  LatencyHistogram empty, full;
  full.Add(0.25);
  full.Add(0.75);
  empty.Merge(full);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.min(), 0.25);
  EXPECT_DOUBLE_EQ(empty.max(), 0.75);
}

TEST(StageProfiler, RecordFoldsIntoPerStageHistograms) {
  StageProfiler profiler;
  profiler.Record(Stage::kQmAdmit, 1, 0, 1000);        // 1 ms
  profiler.Record(Stage::kQmAdmit, 2, 0, 3000);        // 3 ms
  profiler.Record(Stage::kPoolSelect, 1, 500, 700);    // 0.2 ms
  EXPECT_EQ(profiler.recorded(), 3u);
  const StageSummary admit = profiler.Summary(Stage::kQmAdmit);
  EXPECT_EQ(admit.count, 2u);
  EXPECT_DOUBLE_EQ(admit.mean_s, 0.002);
  EXPECT_DOUBLE_EQ(admit.max_s, 0.003);
  const StageSummary select = profiler.Summary(Stage::kPoolSelect);
  EXPECT_EQ(select.count, 1u);
  EXPECT_DOUBLE_EQ(select.p50_s, 0.0002);
  EXPECT_EQ(profiler.Summary(Stage::kReply).count, 0u);
}

TEST(StageProfiler, NegativeSpansAreDropped) {
  StageProfiler profiler;
  profiler.Record(Stage::kReply, 1, 1000, 500);  // t_exit < t_enter
  EXPECT_EQ(profiler.recorded(), 0u);
  EXPECT_EQ(profiler.Summary(Stage::kReply).count, 0u);
  EXPECT_TRUE(profiler.RingSnapshot().empty());
}

TEST(StageProfiler, RingWrapsKeepingMostRecentOldestFirst) {
  StageProfiler::Config config;
  config.ring_capacity = 8;
  StageProfiler profiler(config);
  for (std::uint64_t id = 1; id <= 20; ++id) {
    profiler.Record(Stage::kClientIssue, id,
                    static_cast<SimTime>(id * 10),
                    static_cast<SimTime>(id * 10 + 5));
  }
  EXPECT_EQ(profiler.recorded(), 20u);  // histogram saw every span
  EXPECT_EQ(profiler.Summary(Stage::kClientIssue).count, 20u);
  const std::vector<SpanRecord> snapshot = profiler.RingSnapshot();
  ASSERT_EQ(snapshot.size(), 8u);  // ring kept only the last 8
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_EQ(snapshot[i].request_id, 13 + i) << "index " << i;
    EXPECT_EQ(snapshot[i].t_enter,
              static_cast<SimTime>((13 + i) * 10));
  }
}

TEST(StageProfiler, ResetClearsEverything) {
  StageProfiler profiler;
  profiler.Record(Stage::kQmAdmit, 1, 0, 100);
  profiler.Reset();
  EXPECT_EQ(profiler.recorded(), 0u);
  EXPECT_EQ(profiler.Summary(Stage::kQmAdmit).count, 0u);
  EXPECT_TRUE(profiler.RingSnapshot().empty());
}

TEST(StageProfiler, MergeFoldsHistogramsAcrossCells) {
  // The sweep aggregation path: each cell owns a profiler, the report
  // merges them. Merged summaries must match one profiler fed all
  // spans.
  StageProfiler cell_a, cell_b, all;
  for (std::uint64_t id = 1; id <= 50; ++id) {
    const auto exit_a = static_cast<SimTime>(1000 + id * 37);
    const auto exit_b = static_cast<SimTime>(2000 + id * 91);
    cell_a.Record(Stage::kPoolSelect, id, 0, exit_a);
    all.Record(Stage::kPoolSelect, id, 0, exit_a);
    cell_b.Record(Stage::kPoolSelect, id, 0, exit_b);
    all.Record(Stage::kPoolSelect, id, 0, exit_b);
  }
  cell_a.Merge(cell_b);
  const StageSummary merged = cell_a.Summary(Stage::kPoolSelect);
  const StageSummary direct = all.Summary(Stage::kPoolSelect);
  EXPECT_EQ(merged.count, direct.count);
  EXPECT_DOUBLE_EQ(merged.mean_s, direct.mean_s);
  EXPECT_DOUBLE_EQ(merged.p50_s, direct.p50_s);
  EXPECT_DOUBLE_EQ(merged.p95_s, direct.p95_s);
  EXPECT_DOUBLE_EQ(merged.p99_s, direct.p99_s);
  EXPECT_DOUBLE_EQ(merged.max_s, direct.max_s);
}

// ---------------------------------------------------------------------
// End-to-end through the simulated pipeline.
// ---------------------------------------------------------------------

ScenarioConfig SmallPipeline(bool profile) {
  ScenarioConfig config;
  config.machines = 60;
  config.clusters = 2;
  config.clients = 4;
  config.seed = 424242;
  config.profile = profile;
  return config;
}

TEST(PipelineProfiling, ScenarioProducesStageSpans) {
  SimScenario scenario(SmallPipeline(true));
  scenario.Measure(1'000'000, 5'000'000);  // 1 s warmup, 5 s measure
  ASSERT_NE(scenario.profiler(), nullptr);
  EXPECT_GT(scenario.collector().completed(), 0u);
  // Every request that completed passed through client/QM/pool/reply,
  // so those stages must have spans; their counts track completions.
  const auto completed = scenario.collector().completed();
  for (const Stage stage : {Stage::kClientIssue, Stage::kQmAdmit,
                            Stage::kPoolSelect, Stage::kReply}) {
    const StageSummary summary = scenario.profiler()->Summary(stage);
    EXPECT_GE(summary.count, completed) << StageName(stage);
    EXPECT_GE(summary.p50_s, 0.0) << StageName(stage);
    EXPECT_LE(summary.p50_s, summary.p95_s) << StageName(stage);
    EXPECT_LE(summary.p95_s, summary.p99_s) << StageName(stage);
  }
  // The end-to-end span dominates any single hop.
  EXPECT_GE(scenario.profiler()->Summary(Stage::kClientIssue).p50_s,
            scenario.profiler()->Summary(Stage::kReply).p50_s);
}

TEST(PipelineProfiling, FixedSeedPercentilesAreDeterministic) {
  SimScenario first(SmallPipeline(true));
  first.Measure(1'000'000, 5'000'000);
  SimScenario second(SmallPipeline(true));
  second.Measure(1'000'000, 5'000'000);
  ASSERT_NE(first.profiler(), nullptr);
  ASSERT_NE(second.profiler(), nullptr);
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const auto stage = static_cast<Stage>(i);
    const StageSummary a = first.profiler()->Summary(stage);
    const StageSummary b = second.profiler()->Summary(stage);
    EXPECT_EQ(a.count, b.count) << StageName(stage);
    EXPECT_DOUBLE_EQ(a.p50_s, b.p50_s) << StageName(stage);
    EXPECT_DOUBLE_EQ(a.p95_s, b.p95_s) << StageName(stage);
    EXPECT_DOUBLE_EQ(a.p99_s, b.p99_s) << StageName(stage);
  }
}

TEST(PipelineProfiling, ProfilingDoesNotPerturbTheSimulation) {
  // The no-perturbation guarantee behind the byte-identical-replay
  // acceptance: Record() neither consumes randomness nor schedules
  // events, so the observable simulation is identical with the
  // profiler on, off, or absent.
  SimScenario on(SmallPipeline(true));
  on.Measure(1'000'000, 5'000'000);
  SimScenario off(SmallPipeline(false));
  off.Measure(1'000'000, 5'000'000);
  EXPECT_NE(on.profiler(), nullptr);
  EXPECT_EQ(off.profiler(), nullptr);
  EXPECT_EQ(on.collector().completed(), off.collector().completed());
  EXPECT_EQ(on.collector().failures(), off.collector().failures());
  EXPECT_DOUBLE_EQ(on.collector().response_stats().mean(),
                   off.collector().response_stats().mean());
  EXPECT_DOUBLE_EQ(on.collector().QuantileSeconds(0.95),
                   off.collector().QuantileSeconds(0.95));
}

// ---------------------------------------------------------------------
// Metrics exporter.
// ---------------------------------------------------------------------

MetricCell SampleCell() {
  MetricCell cell;
  cell.scenario = "fig6_pool_size";
  cell.labels.emplace_back("policy", "least-load");
  cell.labels.emplace_back("machines", "400");
  cell.values.emplace_back("mean_s", 0.0125);
  cell.values.emplace_back("pool_select_p95_s", 0.0041);
  return cell;
}

TEST(MetricsExporterTest, ParseFormatRoundTrips) {
  EXPECT_EQ(MetricsExporter::ParseFormat("jsonl"),
            MetricsExporter::Format::kJsonl);
  EXPECT_EQ(MetricsExporter::ParseFormat("prom"),
            MetricsExporter::Format::kProm);
  EXPECT_FALSE(MetricsExporter::ParseFormat("csv").has_value());
  EXPECT_EQ(MetricsExporter::FormatName(MetricsExporter::Format::kJsonl),
            "jsonl");
  EXPECT_EQ(MetricsExporter::FormatName(MetricsExporter::Format::kProm),
            "prom");
}

TEST(MetricsExporterTest, JsonlEmitsOneObjectPerCell) {
  MetricsExporter exporter(MetricsExporter::Format::kJsonl);
  exporter.Add(SampleCell());
  exporter.Add(SampleCell());
  EXPECT_EQ(exporter.cell_count(), 2u);
  std::ostringstream out;
  exporter.Write(out);
  const std::string text = out.str();
  std::size_t lines = 0;
  std::istringstream stream(text);
  for (std::string line; std::getline(stream, line);) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"scenario\":\"fig6_pool_size\""),
              std::string::npos);
    EXPECT_NE(line.find("\"policy\":\"least-load\""), std::string::npos);
    EXPECT_NE(line.find("\"pool_select_p95_s\":0.0041"), std::string::npos);
  }
  EXPECT_EQ(lines, 2u);
}

TEST(MetricsExporterTest, PromEmitsTypedGaugesWithLabels) {
  MetricsExporter exporter(MetricsExporter::Format::kProm);
  exporter.Add(SampleCell());
  std::ostringstream out;
  exporter.Write(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE actyp_mean_s gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE actyp_pool_select_p95_s gauge"),
            std::string::npos);
  EXPECT_NE(
      text.find("actyp_mean_s{scenario=\"fig6_pool_size\","
                "policy=\"least-load\",machines=\"400\"} 0.0125"),
      std::string::npos);
  EXPECT_NE(text.find("# EOF"), std::string::npos);
}

TEST(MetricsExporterTest, PromSanitizesAwkwardNamesAndValues) {
  MetricCell cell;
  cell.scenario = "synthetic";
  cell.labels.emplace_back("label", "quote\" slash\\ newline\n");
  cell.values.emplace_back("weird-metric.name", 1.0);
  MetricsExporter exporter(MetricsExporter::Format::kProm);
  exporter.Add(std::move(cell));
  std::ostringstream out;
  exporter.Write(out);
  const std::string text = out.str();
  // Metric names must match [a-zA-Z_][a-zA-Z0-9_]*; label values escape
  // quotes, backslashes, and newlines per the exposition format.
  EXPECT_NE(text.find("actyp_weird_metric_name"), std::string::npos);
  EXPECT_NE(text.find("quote\\\" slash\\\\ newline\\n"), std::string::npos);
}

}  // namespace
}  // namespace actyp::profile
