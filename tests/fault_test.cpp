// Fault subsystem tests: plan parsing and round-tripping, loss-window
// on/off edges, partition drops, machine/service churn re-registration
// through a full scenario, and deterministic replay — including
// byte-identical JSON from the registered fault scenarios under a
// fixed seed, the property the perf-tracking baseline relies on.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "actyp/scenario.hpp"
#include "actyp/scenario_registry.hpp"
#include "common/config.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "simnet/kernel.hpp"
#include "simnet/sim_network.hpp"

namespace actyp {
namespace {

using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultPlan;

TEST(FaultPlan, ParsesEveryKind) {
  const auto plan = FaultPlan::Parse(
      "# a comment\n"
      "loss start=2 end=8 p=0.05\n"
      "latency start=3 end=6 extra_ms=50 site_a=purdue site_b=upc\n"
      "partition start=4 end=6 site_a=purdue site_b=upc\n"
      "crash at=5 target=machines count=10 downtime=3\n"
      "crash at=5 target=qm0\n"
      "churn start=1 end=30 rate=2 downtime=5 target=machines\n"
      "churn start=1 rate=0.5 target=pools\n");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->events.size(), 7u);

  const auto& loss = plan->events[0];
  EXPECT_EQ(loss.kind, FaultKind::kLoss);
  EXPECT_EQ(loss.start, Seconds(2));
  EXPECT_EQ(loss.end, Seconds(8));
  EXPECT_DOUBLE_EQ(loss.probability, 0.05);

  const auto& latency = plan->events[1];
  EXPECT_EQ(latency.kind, FaultKind::kLatency);
  EXPECT_EQ(latency.extra_latency, Millis(50));
  EXPECT_EQ(latency.site_a, "purdue");
  EXPECT_EQ(latency.site_b, "upc");

  const auto& partition = plan->events[2];
  EXPECT_EQ(partition.kind, FaultKind::kPartition);
  EXPECT_EQ(partition.start, Seconds(4));
  EXPECT_EQ(partition.end, Seconds(6));

  const auto& crash = plan->events[3];
  EXPECT_EQ(crash.kind, FaultKind::kCrash);
  EXPECT_EQ(crash.target, "machines");
  EXPECT_EQ(crash.count, 10u);
  EXPECT_EQ(crash.downtime, Seconds(3));

  EXPECT_EQ(plan->events[4].target, "qm0");

  const auto& churn = plan->events[5];
  EXPECT_EQ(churn.kind, FaultKind::kChurn);
  EXPECT_DOUBLE_EQ(churn.rate_per_s, 2.0);
  EXPECT_EQ(churn.end, Seconds(30));

  EXPECT_EQ(plan->events[6].target, "pools");
  EXPECT_EQ(plan->events[6].end, 0);
}

TEST(FaultPlan, RejectsMalformedInput) {
  EXPECT_FALSE(FaultPlan::Parse("quake start=1\n").ok());
  EXPECT_FALSE(FaultPlan::Parse("loss start=1 p=1.5\n").ok());
  EXPECT_FALSE(FaultPlan::Parse("loss p=oops\n").ok());
  EXPECT_FALSE(FaultPlan::Parse("loss start=5 end=2 p=0.1\n").ok());
  EXPECT_FALSE(FaultPlan::Parse("loss frequency=2\n").ok());
  EXPECT_FALSE(FaultPlan::Parse("latency start=1 end=2\n").ok());
  EXPECT_FALSE(FaultPlan::Parse("churn target=machines\n").ok());
  EXPECT_FALSE(FaultPlan::Parse("crash at=1 target= count=2\n").ok());
  EXPECT_FALSE(FaultPlan::Parse("loss start 1\n").ok());
  // The error names the offending line.
  const auto bad = FaultPlan::Parse("loss p=0.1\nchurn target=x\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("line 2"), std::string::npos);
}

TEST(FaultPlan, SerializeRoundTrips) {
  const char* text =
      "loss start=2 end=8 p=0.05\n"
      "latency start=3 end=6 extra_ms=50 site_a=purdue site_b=upc\n"
      "partition start=4 end=6 site_a=* site_b=*\n"
      "crash at=5 target=machines count=10 downtime=3\n"
      "churn start=1 rate=0.5 downtime=2 target=pool.*\n";
  const auto plan = FaultPlan::Parse(text);
  ASSERT_TRUE(plan.ok());
  const auto reparsed = FaultPlan::Parse(plan->Serialize());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(plan->Serialize(), reparsed->Serialize());
  ASSERT_EQ(reparsed->events.size(), plan->events.size());
  for (std::size_t i = 0; i < plan->events.size(); ++i) {
    EXPECT_EQ(plan->events[i].kind, reparsed->events[i].kind) << i;
    EXPECT_EQ(plan->events[i].start, reparsed->events[i].start) << i;
    EXPECT_EQ(plan->events[i].end, reparsed->events[i].end) << i;
  }
}

TEST(FaultPlan, FromConfigOrdersNumerically) {
  const auto config = Config::Parse(
      "[fault]\n"
      "2 = crash at=5 target=machines\n"
      "10 = churn start=6 rate=1 target=machines\n"
      "1 = loss start=0 end=4 p=0.1\n");
  ASSERT_TRUE(config.ok());
  const auto plan = FaultPlan::FromConfig(config.value());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->events.size(), 3u);
  // Numeric order 1, 2, 10 — not lexicographic 1, 10, 2.
  EXPECT_EQ(plan->events[0].kind, FaultKind::kLoss);
  EXPECT_EQ(plan->events[1].kind, FaultKind::kCrash);
  EXPECT_EQ(plan->events[2].kind, FaultKind::kChurn);

  const auto bad = Config::Parse("[fault]\nfirst = loss p=0.1\n");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(FaultPlan::FromConfig(bad.value()).ok());
}

TEST(FaultInjector, LossWindowOnOffEdges) {
  simnet::SimKernel kernel;
  simnet::SimNetwork network(&kernel, simnet::Topology::Lan(), 1);
  network.SetLossProbability(0.01);  // scenario's base loss rate
  FaultInjector injector(&kernel, &network, 7);
  const auto plan = FaultPlan::Parse("loss start=2 end=4 p=0.5\n");
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(injector.Arm(plan.value()).ok());

  kernel.RunUntil(Seconds(2) - 1);
  EXPECT_DOUBLE_EQ(network.loss_probability(), 0.01);
  kernel.RunUntil(Seconds(2));
  EXPECT_DOUBLE_EQ(network.loss_probability(), 0.5);
  kernel.RunUntil(Seconds(4) - 1);
  EXPECT_DOUBLE_EQ(network.loss_probability(), 0.5);
  kernel.RunUntil(Seconds(4));
  // The window closes back to the base rate, not to zero.
  EXPECT_DOUBLE_EQ(network.loss_probability(), 0.01);
  EXPECT_EQ(injector.stats().loss_windows_opened, 1u);
  EXPECT_EQ(injector.stats().loss_windows_closed, 1u);
}

// A node that counts deliveries.
class CountingNode final : public net::Node {
 public:
  void OnMessage(const net::Envelope&, net::NodeContext&) override {
    ++received;
  }
  int received = 0;
};

TEST(FaultInjector, PartitionDropsThenHeals) {
  simnet::SimKernel kernel;
  simnet::Topology topology =
      simnet::Topology::WanTwoSites("purdue", "upc", Millis(10), 0);
  simnet::SimNetwork network(&kernel, std::move(topology), 1);
  network.AddHost("client-host", 1, "purdue");
  network.AddHost("server-host", 1, "upc");
  auto client = std::make_shared<CountingNode>();
  auto server = std::make_shared<CountingNode>();
  network.AddNode("client", client, {"client-host", 1});
  network.AddNode("server", server, {"server-host", 1});

  FaultInjector injector(&kernel, &network, 7);
  const auto plan =
      FaultPlan::Parse("partition start=1 end=2 site_a=purdue site_b=upc\n");
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(injector.Arm(plan.value()).ok());

  network.Post("client", "server", net::Message{"ping"});
  kernel.RunUntil(Seconds(1));  // cut fires at t=1
  EXPECT_EQ(server->received, 1);
  EXPECT_EQ(network.partition_dropped(), 0u);

  network.Post("client", "server", net::Message{"ping"});
  kernel.RunUntil(Seconds(2) - 1);
  EXPECT_EQ(server->received, 1);
  EXPECT_EQ(network.partition_dropped(), 1u);

  kernel.RunUntil(Seconds(2));  // heal
  network.Post("client", "server", net::Message{"ping"});
  kernel.RunUntil(Seconds(3));
  EXPECT_EQ(server->received, 2);
  EXPECT_EQ(network.partition_dropped(), 1u);
  EXPECT_EQ(injector.stats().partitions_cut, 1u);
  EXPECT_EQ(injector.stats().partitions_healed, 1u);
}

TEST(FaultInjector, OverlappingLossWindowsCompose) {
  simnet::SimKernel kernel;
  simnet::SimNetwork network(&kernel, simnet::Topology::Lan(), 1);
  network.SetLossProbability(0.01);
  FaultInjector injector(&kernel, &network, 7);
  const auto plan = FaultPlan::Parse(
      "loss start=1 end=3 p=0.1\n"
      "loss start=2 end=4 p=0.5\n");
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(injector.Arm(plan.value()).ok());

  kernel.RunUntil(Seconds(2));
  EXPECT_DOUBLE_EQ(network.loss_probability(), 0.5);
  // The first window closing must not clobber the still-open second.
  kernel.RunUntil(Seconds(3));
  EXPECT_DOUBLE_EQ(network.loss_probability(), 0.5);
  // Both closed: back to the base rate, not a stale saved value.
  kernel.RunUntil(Seconds(4));
  EXPECT_DOUBLE_EQ(network.loss_probability(), 0.01);
}

TEST(FaultInjector, OverlappingPartitionsHealLast) {
  simnet::SimKernel kernel;
  simnet::Topology topology =
      simnet::Topology::WanTwoSites("purdue", "upc", Millis(10), 0);
  simnet::SimNetwork network(&kernel, std::move(topology), 1);
  FaultInjector injector(&kernel, &network, 7);
  const auto plan = FaultPlan::Parse(
      "partition start=1 end=3 site_a=purdue site_b=upc\n"
      "partition start=2 end=4 site_a=purdue site_b=upc\n");
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(injector.Arm(plan.value()).ok());

  network.topology().SetHostSite("ha", "purdue");
  network.topology().SetHostSite("hb", "upc");
  kernel.RunUntil(Seconds(3));  // first heal fires; second cut still open
  EXPECT_TRUE(network.topology().IsPartitioned("ha", "hb"));
  kernel.RunUntil(Seconds(4));
  EXPECT_FALSE(network.topology().IsPartitioned("ha", "hb"));
}

TEST(Topology, OneSidedWildcardLatencyPenaltyApplies) {
  simnet::Topology topology =
      simnet::Topology::WanTwoSites("purdue", "upc", Millis(10), 0);
  topology.SetHostSite("ha", "purdue");
  topology.SetHostSite("hb", "upc");
  Rng rng(1);
  const SimDuration before = topology.SampleLatency("ha", "hb", 0, rng);
  topology.SetLatencyPenalty("upc", "*", Millis(50));
  const SimDuration during = topology.SampleLatency("ha", "hb", 0, rng);
  EXPECT_EQ(during, before + Millis(50));
  topology.SetLatencyPenalty("upc", "*", 0);
  EXPECT_EQ(topology.SampleLatency("ha", "hb", 0, rng), before);
}

TEST(FaultInjector, ArmRejectsEventsWithoutHooks) {
  simnet::SimKernel kernel;
  simnet::SimNetwork network(&kernel, simnet::Topology::Lan(), 1);
  FaultInjector injector(&kernel, &network, 7);
  const auto machines = FaultPlan::Parse("churn rate=1 target=machines\n");
  ASSERT_TRUE(machines.ok());
  EXPECT_FALSE(injector.Arm(machines.value()).ok());
  const auto service = FaultPlan::Parse("crash at=1 target=qm9\n");
  ASSERT_TRUE(service.ok());
  EXPECT_FALSE(injector.Arm(service.value()).ok());
  const auto loss = FaultPlan::Parse("loss p=0.5\n");
  ASSERT_TRUE(loss.ok());
  EXPECT_TRUE(injector.Arm(loss.value()).ok());
}

ScenarioConfig SmallConfig(std::uint64_t seed = 11) {
  ScenarioConfig config;
  config.machines = 100;
  config.clusters = 2;
  config.clients = 4;
  config.client_request_timeout = Seconds(0.5);
  config.seed = seed;
  return config;
}

std::size_t CountDown(db::ResourceDatabase& database) {
  std::size_t down = 0;
  database.ForEach([&down](const db::MachineRecord& rec) {
    if (rec.state == db::MachineState::kDown) ++down;
  });
  return down;
}

TEST(FaultScenario, MachineCrashFlipsStateAndRestores) {
  ScenarioConfig config = SmallConfig();
  const auto plan =
      FaultPlan::Parse("crash at=1 target=machines count=5 downtime=2\n");
  ASSERT_TRUE(plan.ok());
  config.fault_plan = plan.value();
  SimScenario scenario(std::move(config));
  ASSERT_TRUE(scenario.fault_status().ok())
      << scenario.fault_status().ToString();

  scenario.RunUntil(Seconds(1.5));
  EXPECT_EQ(CountDown(scenario.database()), 5u);
  EXPECT_EQ(scenario.fault_stats().machines_crashed, 5u);
  scenario.RunUntil(Seconds(3.5));
  EXPECT_EQ(CountDown(scenario.database()), 0u);
  EXPECT_EQ(scenario.fault_stats().machines_restored, 5u);
}

TEST(FaultScenario, ServiceCrashRemovesNodeThenRestartReregisters) {
  ScenarioConfig config = SmallConfig();
  const auto plan = FaultPlan::Parse(
      "crash at=1 target=qm0 downtime=2\n"
      "crash at=1 target=pool.c0.r0 downtime=2\n");
  ASSERT_TRUE(plan.ok());
  config.fault_plan = plan.value();
  SimScenario scenario(std::move(config));
  ASSERT_TRUE(scenario.fault_status().ok())
      << scenario.fault_status().ToString();

  EXPECT_TRUE(scenario.network().HasNode("qm0"));
  EXPECT_EQ(scenario.directory().pool_count(), 2u);

  scenario.RunUntil(Seconds(1.5));
  EXPECT_FALSE(scenario.network().HasNode("qm0"));
  EXPECT_FALSE(scenario.network().HasNode("pool.c0.r0"));
  // The dead pool instance is gone from the directory...
  EXPECT_EQ(scenario.directory().pool_count(), 1u);

  scenario.RunUntil(Seconds(3.5));
  // ...and the restarted one registered itself again (§5.2.3 lifecycle).
  EXPECT_TRUE(scenario.network().HasNode("qm0"));
  EXPECT_TRUE(scenario.network().HasNode("pool.c0.r0"));
  EXPECT_EQ(scenario.directory().pool_count(), 2u);
  EXPECT_EQ(scenario.fault_stats().services_crashed, 2u);
  EXPECT_EQ(scenario.fault_stats().services_restarted, 2u);
}

TEST(FaultScenario, SegmentCrashFreesItsOwnClaim) {
  // Segments claim under distinct "<pool>#<s>" names; a dead segment
  // must free its partition immediately even though its siblings are
  // still registered under the same pool name.
  ScenarioConfig config = SmallConfig();
  config.clusters = 1;
  config.pool_segments = 2;
  const auto plan = FaultPlan::Parse("crash at=1 target=pool.c0.s0\n");
  ASSERT_TRUE(plan.ok());
  config.fault_plan = plan.value();
  SimScenario scenario(std::move(config));
  ASSERT_TRUE(scenario.fault_status().ok());

  const std::size_t free_before = scenario.database().free_count();
  scenario.RunUntil(Seconds(1.5));
  // Half the fleet (segment 0's partition) came back to the free list.
  EXPECT_GE(scenario.database().free_count(), free_before + 40);
  EXPECT_EQ(scenario.directory().pool_count(), 1u);
}

TEST(FaultScenario, ScenarioSurfacesBadPlanViaFaultStatus) {
  ScenarioConfig config = SmallConfig();
  const auto plan = FaultPlan::Parse("crash at=1 target=no_such_service\n");
  ASSERT_TRUE(plan.ok());
  config.fault_plan = plan.value();
  SimScenario scenario(std::move(config));
  EXPECT_FALSE(scenario.fault_status().ok());
}

struct ReplayResult {
  std::uint64_t completed = 0;
  std::uint64_t failures = 0;
  double mean = 0;
  std::uint64_t lost = 0;
  std::uint64_t crashed = 0;
};

ReplayResult RunReplay(std::uint64_t seed) {
  ScenarioConfig config = SmallConfig(seed);
  config.message_loss_probability = 0.05;
  const auto plan = FaultPlan::Parse(
      "churn start=0 rate=5 downtime=1 target=machines\n"
      "loss start=1 end=2 p=0.3\n");
  EXPECT_TRUE(plan.ok());
  config.fault_plan = plan.value();
  SimScenario scenario(std::move(config));
  scenario.Measure(Seconds(1), Seconds(3));
  ReplayResult result;
  result.completed = scenario.collector().completed();
  result.failures = scenario.collector().failures();
  result.mean = scenario.collector().response_stats().mean();
  result.lost = scenario.network().lost_messages();
  result.crashed = scenario.fault_stats().machines_crashed;
  return result;
}


TEST(FaultPlan, ParsesAndSerializesSiteEvents) {
  const auto plan = FaultPlan::Parse(
      "site-crash at=5 site=purdue downtime=3\n"
      "site-restore at=9 site=purdue\n");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->events.size(), 2u);
  EXPECT_EQ(plan->events[0].kind, FaultKind::kSiteCrash);
  EXPECT_EQ(plan->events[0].site, "purdue");
  EXPECT_EQ(plan->events[0].downtime, Seconds(3));
  EXPECT_EQ(plan->events[1].kind, FaultKind::kSiteRestore);
  EXPECT_EQ(plan->events[1].start, Seconds(9));

  // Round-trips through the text format.
  const auto reparsed = FaultPlan::Parse(plan->Serialize());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->Serialize(), plan->Serialize());

  // Site events demand a site.
  EXPECT_FALSE(FaultPlan::Parse("site-crash at=5\n").ok());
  EXPECT_FALSE(FaultPlan::Parse("site-restore at=5\n").ok());
}

TEST(FaultScenario, SiteCrashTakesMachinesAndServicesDownTogether) {
  // On a LAN everything lives at site "local": a site-crash is a
  // correlated whole-deployment failure — every machine and every
  // registered service goes dark in one event, and the explicit
  // site-restore brings exactly that set back.
  ScenarioConfig config = SmallConfig();
  const auto plan = FaultPlan::Parse(
      "site-crash at=1 site=local\n"
      "site-restore at=2 site=local\n");
  ASSERT_TRUE(plan.ok());
  config.fault_plan = plan.value();
  SimScenario scenario(std::move(config));
  ASSERT_TRUE(scenario.fault_status().ok())
      << scenario.fault_status().ToString();

  scenario.RunUntil(Seconds(1.5));
  EXPECT_EQ(CountDown(scenario.database()), 100u);
  EXPECT_FALSE(scenario.network().HasNode("qm0"));
  EXPECT_FALSE(scenario.network().HasNode("pm0"));
  EXPECT_FALSE(scenario.network().HasNode("pool.c0.r0"));
  EXPECT_EQ(scenario.fault_stats().sites_crashed, 1u);
  EXPECT_GE(scenario.fault_stats().services_crashed, 4u);

  scenario.RunUntil(Seconds(2.5));
  EXPECT_EQ(CountDown(scenario.database()), 0u);
  EXPECT_TRUE(scenario.network().HasNode("qm0"));
  EXPECT_TRUE(scenario.network().HasNode("pool.c0.r0"));
  EXPECT_EQ(scenario.fault_stats().sites_restored, 1u);
  EXPECT_EQ(scenario.fault_stats().services_restarted,
            scenario.fault_stats().services_crashed);
}

TEST(FaultScenario, ReplayIsDeterministicUnderFixedSeed) {
  const ReplayResult a = RunReplay(42);
  const ReplayResult b = RunReplay(42);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.lost, b.lost);
  EXPECT_EQ(a.crashed, b.crashed);
  // The run actually exercised the fault machinery.
  EXPECT_GT(a.lost, 0u);
  EXPECT_GT(a.crashed, 0u);
  EXPECT_GT(a.completed, 0u);
}

// Acceptance property for the fault scenarios: the same driver options
// must produce byte-identical JSON, run after run.
TEST(FaultScenario, RegisteredFaultScenariosAreByteDeterministic) {
  ScenarioRunOptions options;
  options.machines = 200;
  options.clients = 4;
  options.time_scale = 0.05;
  options.seed = 7;
  for (const char* name :
       {"lossy_lan", "lossy_wan", "pool_churn", "ondemand_churn"}) {
    const ScenarioInfo* info = ScenarioRegistry::Instance().Find(name);
    ASSERT_NE(info, nullptr) << name;
    std::ostringstream first;
    WriteReportJson(info->run(options), first);
    std::ostringstream second;
    WriteReportJson(info->run(options), second);
    EXPECT_EQ(first.str(), second.str()) << name;
    EXPECT_NE(first.str().find("\"success_rate\""), std::string::npos)
        << name;
  }
}

}  // namespace
}  // namespace actyp
