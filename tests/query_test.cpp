// Tests for the query language: values/operators, the paper's exact
// signature/identifier example, composite decomposition, TTL/visited
// state, and the wire round-trip.
#include <gtest/gtest.h>

#include "query/parser.hpp"
#include "query/query.hpp"
#include "query/value.hpp"

namespace actyp::query {
namespace {

// The paper's §5.1 sample query, verbatim.
constexpr const char* kPaperQuery =
    "punch.rsrc.arch = sun\n"
    "punch.rsrc.memory = >=10\n"
    "punch.rsrc.license = tsuprem4\n"
    "punch.rsrc.domain = purdue\n"
    "punch.appl.expectedcpuuse = 1000\n"
    "punch.user.login = kapadia\n"
    "punch.user.accessgroup = ece\n";

// --- values and operators ---

TEST(Value, NumericDetection) {
  EXPECT_TRUE(Value("10").is_numeric());
  EXPECT_TRUE(Value("2.5").is_numeric());
  EXPECT_FALSE(Value("sun").is_numeric());
  EXPECT_FALSE(Value("10MB").is_numeric());
}

TEST(Value, NumericComparisonBeatsLexicographic) {
  // Lexicographically "9" > "10"; numerically 9 < 10.
  EXPECT_LT(Value("9").Compare(Value("10")), 0);
  EXPECT_EQ(Value("10").Compare(Value("10.0")), 0);
}

TEST(Value, StringComparisonCaseInsensitive) {
  EXPECT_EQ(Value("SUN").Compare(Value("sun")), 0);
  EXPECT_LT(Value("hp").Compare(Value("sun")), 0);
}

struct CmpCase {
  const char* lhs;
  CmpOp op;
  const char* rhs;
  bool expect;
};

class EvalCmpTest : public ::testing::TestWithParam<CmpCase> {};

TEST_P(EvalCmpTest, Evaluates) {
  const auto& c = GetParam();
  EXPECT_EQ(EvalCmp(Value(c.lhs), c.op, Value(c.rhs)), c.expect)
      << c.lhs << " " << CmpOpSpelling(c.op) << " " << c.rhs;
}

INSTANTIATE_TEST_SUITE_P(
    Operators, EvalCmpTest,
    ::testing::Values(
        CmpCase{"10", CmpOp::kEq, "10", true},
        CmpCase{"10", CmpOp::kEq, "11", false},
        CmpCase{"sun", CmpOp::kEq, "SUN", true},
        CmpCase{"10", CmpOp::kNe, "11", true},
        CmpCase{"512", CmpOp::kGe, "10", true},
        CmpCase{"8", CmpOp::kGe, "10", false},
        CmpCase{"10", CmpOp::kGe, "10", true},
        CmpCase{"8", CmpOp::kLe, "10", true},
        CmpCase{"11", CmpOp::kLe, "10", false},
        CmpCase{"11", CmpOp::kGt, "10", true},
        CmpCase{"10", CmpOp::kGt, "10", false},
        CmpCase{"9", CmpOp::kLt, "10", true},
        CmpCase{"sparc-ultra-5", CmpOp::kGlob, "sparc*", true},
        CmpCase{"hp9000", CmpOp::kGlob, "sparc*", false}));

TEST(CmpOp, SpellingRoundTrip) {
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kGe, CmpOp::kLe, CmpOp::kGt,
                   CmpOp::kLt, CmpOp::kGlob}) {
    auto parsed = ParseCmpOp(CmpOpSpelling(op));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, op);
  }
  EXPECT_EQ(ParseCmpOp("="), CmpOp::kEq);
  EXPECT_FALSE(ParseCmpOp("~=").has_value());
}

// --- parsing ---

TEST(Parser, ParsesPaperQuery) {
  auto q = Parser::ParseBasic(kPaperQuery);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->family(), "punch");
  EXPECT_EQ(q->rsrc().size(), 4u);
  EXPECT_EQ(q->GetRsrc("arch")->value.text(), "sun");
  EXPECT_EQ(q->GetRsrc("memory")->op, CmpOp::kGe);
  EXPECT_EQ(q->GetRsrc("memory")->value.text(), "10");
  EXPECT_EQ(q->GetAppl("expectedcpuuse"), "1000");
  EXPECT_EQ(q->GetUser("login"), "kapadia");
  EXPECT_EQ(q->GetUser("accessgroup"), "ece");
}

TEST(Parser, PaperSignatureAndIdentifier) {
  auto q = Parser::ParseBasic(kPaperQuery);
  ASSERT_TRUE(q.ok());
  // Exactly the strings in §5.2.2 of the paper.
  EXPECT_EQ(q->Signature(), "arch:domain:license:memory,==:==:==:>=");
  EXPECT_EQ(q->Identifier(), "sun:purdue:tsuprem4:10");
  EXPECT_EQ(q->PoolName(),
            "arch:domain:license:memory,==:==:==:>=/sun:purdue:tsuprem4:10");
}

TEST(Parser, MissingRsrcKeysAreDontCare) {
  auto q = Parser::ParseBasic("punch.rsrc.arch = sun\n");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q->GetRsrc("ostype").has_value());
  // appl/user default to "undefined" == empty lookup.
  EXPECT_EQ(q->GetAppl("expectedcpuuse"), "");
  EXPECT_EQ(q->GetUser("login"), "");
}

TEST(Parser, KeyRequiresThreeComponents) {
  EXPECT_FALSE(Parser::Parse("punch.arch = sun\n").ok());
  EXPECT_FALSE(Parser::Parse("arch = sun\n").ok());
}

TEST(Parser, RejectsUnknownType) {
  EXPECT_FALSE(Parser::Parse("punch.bogus.arch = sun\n").ok());
}

TEST(Parser, RejectsMixedFamilies) {
  EXPECT_FALSE(Parser::Parse("punch.rsrc.arch = sun\n"
                             "globus.rsrc.memory = 10\n")
                   .ok());
}

TEST(Parser, RejectsEmptyQuery) {
  EXPECT_FALSE(Parser::Parse("").ok());
  EXPECT_FALSE(Parser::Parse("# only a comment\n").ok());
}

TEST(Parser, WildcardValuesGetGlobSemantics) {
  auto q = Parser::ParseBasic("punch.rsrc.ostype = solaris*\n");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->GetRsrc("ostype")->op, CmpOp::kGlob);
}

TEST(Parser, DoubledSeparatorAbsorbed) {
  auto q = Parser::ParseBasic("punch.rsrc.arch == sun\n");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->GetRsrc("arch")->value.text(), "sun");
  EXPECT_EQ(q->GetRsrc("arch")->op, CmpOp::kEq);
}

TEST(Parser, DetachedOperatorValueKeepsOperator) {
  auto q = Parser::ParseBasic("punch.rsrc.arch = ==sun\n");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->GetRsrc("arch")->op, CmpOp::kEq);
  EXPECT_EQ(q->GetRsrc("arch")->value.text(), "sun");
}

// --- composite queries ---

TEST(Parser, OrClauseDecomposes) {
  auto composite = Parser::Parse("punch.rsrc.arch = sun|hp\n");
  ASSERT_TRUE(composite.ok());
  ASSERT_EQ(composite->size(), 2u);
  EXPECT_EQ(composite->alternatives()[0].GetRsrc("arch")->value.text(), "sun");
  EXPECT_EQ(composite->alternatives()[1].GetRsrc("arch")->value.text(), "hp");
}

TEST(Parser, CartesianProductOfOrClauses) {
  auto composite = Parser::Parse(
      "punch.rsrc.arch = sun|hp|sgi\n"
      "punch.rsrc.memory = >=10|>=100\n");
  ASSERT_TRUE(composite.ok());
  EXPECT_EQ(composite->size(), 6u);
}

TEST(Parser, SharedTermsAppearInEveryAlternative) {
  auto composite = Parser::Parse(
      "punch.rsrc.arch = sun|hp\n"
      "punch.rsrc.domain = purdue\n"
      "punch.user.login = kapadia\n");
  ASSERT_TRUE(composite.ok());
  for (const auto& alt : composite->alternatives()) {
    EXPECT_EQ(alt.GetRsrc("domain")->value.text(), "purdue");
    EXPECT_EQ(alt.GetUser("login"), "kapadia");
  }
}

TEST(Parser, ExplosionGuard) {
  // 4 keys x 4 alternatives = 256 > kMaxAlternatives (64).
  std::string text;
  for (int k = 0; k < 4; ++k) {
    text += "punch.rsrc.k" + std::to_string(k) + " = a|b|c|d\n";
  }
  EXPECT_FALSE(Parser::Parse(text).ok());
}

TEST(Parser, ParseBasicRejectsComposite) {
  EXPECT_FALSE(Parser::ParseBasic("punch.rsrc.arch = sun|hp\n").ok());
}

// --- pipeline state carried with the query ---

TEST(Query, TtlDecrementsToFailure) {
  Query q;
  q.set_ttl(2);
  EXPECT_TRUE(q.DecrementTtl());   // 2 -> 1, still alive
  EXPECT_FALSE(q.DecrementTtl());  // 1 -> 0, expired
  EXPECT_FALSE(q.DecrementTtl());  // stays expired
}

TEST(Query, VisitedListDeduplicates) {
  Query q;
  q.AddVisited("pm0");
  q.AddVisited("pm1");
  q.AddVisited("pm0");
  EXPECT_EQ(q.visited().size(), 2u);
  EXPECT_TRUE(q.HasVisited("pm0"));
  EXPECT_FALSE(q.HasVisited("pm2"));
}

TEST(Query, WireRoundTripPreservesState) {
  auto q = Parser::ParseBasic(kPaperQuery);
  ASSERT_TRUE(q.ok());
  q->set_ttl(5);
  q->AddVisited("pm0");
  q->AddVisited("pm3");
  q->set_request_id(777);
  FragmentInfo frag;
  frag.composite_id = 42;
  frag.index = 1;
  frag.total = 3;
  q->set_fragment(frag);

  auto round = Parser::ParseBasic(q->ToText());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(*round, *q);
  EXPECT_EQ(round->ttl(), 5);
  EXPECT_EQ(round->visited(), (std::vector<std::string>{"pm0", "pm3"}));
  EXPECT_EQ(round->request_id(), 777u);
  EXPECT_EQ(round->fragment().composite_id, 42u);
  EXPECT_EQ(round->fragment().index, 1u);
  EXPECT_EQ(round->fragment().total, 3u);
  EXPECT_EQ(round->PoolName(), q->PoolName());
}

TEST(Query, DefaultTtlMatchesConstant) {
  Query q;
  EXPECT_EQ(q.ttl(), kDefaultTtl);
}

// --- matching ---

TEST(Query, MatchesAgainstAttributes) {
  auto q = Parser::ParseBasic(kPaperQuery);
  ASSERT_TRUE(q.ok());
  auto machine = [](const std::string& name) -> std::optional<std::string> {
    if (name == "arch") return "sun";
    if (name == "memory") return "512";
    if (name == "license") return "tsuprem4";
    if (name == "domain") return "purdue";
    return std::nullopt;
  };
  EXPECT_TRUE(q->Matches(machine));

  auto too_small = [&machine](const std::string& name) {
    if (name == "memory") return std::optional<std::string>("8");
    return machine(name);
  };
  EXPECT_FALSE(q->Matches(too_small));

  auto missing_license = [&machine](const std::string& name) {
    if (name == "license") return std::optional<std::string>();
    return machine(name);
  };
  EXPECT_FALSE(q->Matches(missing_license));
}

TEST(Query, SignatureOrderIndependentOfInsertion) {
  Query a, b;
  a.SetRsrc("memory", CmpOp::kGe, "10");
  a.SetRsrc("arch", CmpOp::kEq, "sun");
  b.SetRsrc("arch", CmpOp::kEq, "sun");
  b.SetRsrc("memory", CmpOp::kGe, "10");
  EXPECT_EQ(a.Signature(), b.Signature());
  EXPECT_EQ(a.Identifier(), b.Identifier());
}

TEST(Query, EmptyRsrcSignature) {
  Query q;
  EXPECT_EQ(q.Signature(), ",");
  EXPECT_EQ(q.Identifier(), "");
}

TEST(SplitKeyFn, HandlesDottedNames) {
  auto parts = SplitKey("punch.rsrc.os.version");
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->family, "punch");
  EXPECT_EQ(parts->type, "rsrc");
  EXPECT_EQ(parts->name, "os.version");
}

TEST(ParseConditionFn, OperatorPrefixes) {
  EXPECT_EQ(ParseCondition(">=10").op, CmpOp::kGe);
  EXPECT_EQ(ParseCondition("<=10").op, CmpOp::kLe);
  EXPECT_EQ(ParseCondition(">10").op, CmpOp::kGt);
  EXPECT_EQ(ParseCondition("<10").op, CmpOp::kLt);
  EXPECT_EQ(ParseCondition("!=sun").op, CmpOp::kNe);
  EXPECT_EQ(ParseCondition("=~ultra*").op, CmpOp::kGlob);
  EXPECT_EQ(ParseCondition("plain").op, CmpOp::kEq);
}

}  // namespace
}  // namespace actyp::query
