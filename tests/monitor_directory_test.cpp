// Tests for the resource monitoring service and the local directory
// service.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "db/database.hpp"
#include "directory/directory.hpp"
#include "monitor/monitor.hpp"

namespace actyp {
namespace {

db::MachineRecord Machine(const std::string& name) {
  db::MachineRecord rec;
  rec.name = name;
  rec.dyn.available_memory_mb = 512;
  rec.dyn.available_swap_mb = 1024;
  rec.params["arch"] = "sun";
  return rec;
}

// --- monitor ---

TEST(Monitor, StepRefreshesDynamicFields) {
  db::ResourceDatabase database;
  auto id = database.Add(Machine("m0"));
  monitor::MonitorConfig config;
  config.update_period = Seconds(5);
  monitor::ResourceMonitor monitor(&database, config, Rng(1));

  monitor.Step(Seconds(10));
  auto rec = database.Get(*id);
  EXPECT_EQ(rec->dyn.last_update, Seconds(10));
  EXPECT_GE(rec->dyn.load, 0.0);
}

TEST(Monitor, RespectsUpdatePeriod) {
  db::ResourceDatabase database;
  auto id = database.Add(Machine("m0"));
  monitor::MonitorConfig config;
  config.update_period = Seconds(5);
  monitor::ResourceMonitor monitor(&database, config, Rng(1));

  monitor.Step(Seconds(10));
  const SimTime first = database.Get(*id)->dyn.last_update;
  monitor.Step(Seconds(12));  // < period since last update
  EXPECT_EQ(database.Get(*id)->dyn.last_update, first);
  monitor.Step(Seconds(16));
  EXPECT_GT(database.Get(*id)->dyn.last_update, first);
}

TEST(Monitor, LoadStaysNonNegativeOverLongRun) {
  db::ResourceDatabase database;
  auto id = database.Add(Machine("m0"));
  monitor::ResourceMonitor monitor(&database, monitor::MonitorConfig{},
                                   Rng(7));
  for (int step = 1; step <= 200; ++step) {
    monitor.Step(Seconds(5.0 * step));
    EXPECT_GE(database.Get(*id)->dyn.load, 0.0);
  }
}

TEST(Monitor, LoadRevertsTowardMean) {
  db::ResourceDatabase database;
  std::vector<db::MachineId> ids;
  for (int i = 0; i < 50; ++i) {
    ids.push_back(*database.Add(Machine("m" + std::to_string(i))));
  }
  monitor::MonitorConfig config;
  config.background_load_mean = 0.25;
  monitor::ResourceMonitor monitor(&database, config, Rng(3));
  for (int step = 1; step <= 100; ++step) monitor.Step(Seconds(5.0 * step));

  double total = 0;
  for (auto id : ids) total += database.Get(id)->dyn.load;
  EXPECT_NEAR(total / 50.0, 0.25, 0.15);
}

TEST(Monitor, JobStartEndAdjustsLoadAndMemory) {
  db::ResourceDatabase database;
  auto id = database.Add(Machine("m0"));
  monitor::MonitorConfig config;
  monitor::ResourceMonitor monitor(&database, config, Rng(2));
  monitor.Step(Seconds(10));

  const auto before = database.Get(*id).value();
  monitor.OnJobStart(*id);
  auto during = database.Get(*id).value();
  EXPECT_NEAR(during.dyn.load, before.dyn.load + config.job_load, 1e-9);
  EXPECT_NEAR(during.dyn.available_memory_mb,
              before.dyn.available_memory_mb - config.job_memory_mb, 1e-9);
  EXPECT_EQ(during.dyn.active_jobs, before.dyn.active_jobs + 1);
  EXPECT_EQ(monitor.active_jobs(*id), 1);

  monitor.OnJobEnd(*id);
  auto after = database.Get(*id).value();
  EXPECT_NEAR(after.dyn.load, before.dyn.load, 1e-9);
  EXPECT_EQ(monitor.active_jobs(*id), 0);
}

TEST(Monitor, StepMarksOnlyRewrittenMachinesDirty) {
  db::ResourceDatabase database;
  std::vector<db::MachineId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(*database.Add(Machine("m" + std::to_string(i))));
  }
  monitor::MonitorConfig config;
  config.update_period = Seconds(5);
  monitor::ResourceMonitor monitor(&database, config, Rng(11));

  // First sweep rewrites everything (all records are period-stale).
  monitor.Step(Seconds(10));
  std::vector<db::MachineId> dirty;
  auto cursor = database.ChangesSince(0, &dirty);
  ASSERT_TRUE(cursor.has_value());

  // A sweep inside the update period rewrites nothing: no machine may
  // gain a version bump, so pool refreshes see zero dirty ids.
  monitor.Step(Seconds(12));
  dirty.clear();
  cursor = database.ChangesSince(*cursor, &dirty);
  ASSERT_TRUE(cursor.has_value());
  EXPECT_TRUE(dirty.empty());

  // Past the period, the sweep rewrites the whole (due) fleet again.
  monitor.Step(Seconds(16));
  dirty.clear();
  cursor = database.ChangesSince(*cursor, &dirty);
  ASSERT_TRUE(cursor.has_value());
  EXPECT_EQ(dirty.size(), ids.size());
}

TEST(Monitor, JobLoadPersistsAcrossSweeps) {
  db::ResourceDatabase database;
  auto id = database.Add(Machine("m0"));
  monitor::MonitorConfig config;
  monitor::ResourceMonitor monitor(&database, config, Rng(2));
  monitor.Step(Seconds(10));
  monitor.OnJobStart(*id);
  monitor.Step(Seconds(20));
  EXPECT_GE(database.Get(*id)->dyn.load, config.job_load);
  EXPECT_EQ(database.Get(*id)->dyn.active_jobs, 1);
}

// --- directory ---

TEST(Directory, RegisterLookupUnregister) {
  directory::DirectoryService dir;
  directory::PoolInstance inst;
  inst.pool_name = "arch,==/sun";
  inst.instance = 0;
  inst.address = "pool.alpha.0";
  inst.machine_count = 800;
  ASSERT_TRUE(dir.RegisterPool(inst).ok());
  EXPECT_FALSE(dir.RegisterPool(inst).ok());  // duplicate instance

  auto found = dir.Lookup("arch,==/sun");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].address, "pool.alpha.0");
  EXPECT_TRUE(dir.Lookup("missing").empty());

  ASSERT_TRUE(dir.UnregisterPool("arch,==/sun", 0).ok());
  EXPECT_TRUE(dir.Lookup("arch,==/sun").empty());
  EXPECT_FALSE(dir.UnregisterPool("arch,==/sun", 0).ok());
}

TEST(Directory, MultipleInstancesAndRandomPick) {
  directory::DirectoryService dir;
  for (std::uint32_t i = 0; i < 4; ++i) {
    directory::PoolInstance inst;
    inst.pool_name = "p";
    inst.instance = i;
    inst.address = "pool." + std::to_string(i);
    ASSERT_TRUE(dir.RegisterPool(inst).ok());
  }
  EXPECT_EQ(dir.Lookup("p").size(), 4u);
  EXPECT_EQ(dir.pool_count(), 4u);

  Rng rng(5);
  std::set<std::string> picked;
  for (int i = 0; i < 200; ++i) {
    auto inst = dir.PickRandom("p", rng);
    ASSERT_TRUE(inst.has_value());
    picked.insert(inst->address);
  }
  EXPECT_EQ(picked.size(), 4u);  // all instances get traffic
  EXPECT_FALSE(dir.PickRandom("missing", rng).has_value());
}

TEST(Directory, PoolNamesSorted) {
  directory::DirectoryService dir;
  for (const char* name : {"b", "a", "c"}) {
    directory::PoolInstance inst;
    inst.pool_name = name;
    inst.instance = 0;
    inst.address = name;
    dir.RegisterPool(inst);
  }
  EXPECT_EQ(dir.PoolNames(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Directory, PoolManagerPeers) {
  directory::DirectoryService dir;
  for (int i = 0; i < 3; ++i) {
    directory::PoolManagerEntry entry;
    entry.name = "pm" + std::to_string(i);
    entry.address = "addr" + std::to_string(i);
    ASSERT_TRUE(dir.RegisterPoolManager(entry).ok());
  }
  EXPECT_FALSE(dir.RegisterPoolManager({"pm0", "x", ""}).ok());
  EXPECT_EQ(dir.PoolManagers().size(), 3u);

  auto peers = dir.PoolManagersExcluding({"pm0", "pm2"});
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_EQ(peers[0].name, "pm1");

  ASSERT_TRUE(dir.UnregisterPoolManager("pm1").ok());
  EXPECT_TRUE(dir.PoolManagersExcluding({"pm0", "pm2"}).empty());
}

TEST(Directory, RejectsEmptyNames) {
  directory::DirectoryService dir;
  directory::PoolInstance inst;
  EXPECT_FALSE(dir.RegisterPool(inst).ok());
  directory::PoolManagerEntry entry;
  EXPECT_FALSE(dir.RegisterPoolManager(entry).ok());
}

}  // namespace
}  // namespace actyp
