// Replicated-directory subsystem tests: anti-entropy equivalence against
// the authoritative DirectoryService, LWW convergence independent of op
// delivery order, partition-divergence-then-heal convergence bounds,
// the bounded-journal full-sync fallback (as a merge, never a wipe),
// crash/restore with warming and failover, the full wan_partition_heal
// scenario's convergence acceptance, and fixed-seed byte-identical
// replay with replication on.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "actyp/scenario.hpp"
#include "actyp/scenario_registry.hpp"
#include "directory/directory.hpp"
#include "replica/group.hpp"
#include "replica/replica.hpp"
#include "simnet/kernel.hpp"

namespace actyp {
namespace {

using replica::DirectoryReplica;
using replica::ReplicaGroup;
using replica::ReplicaGroupConfig;
using replica::ReplicaHandle;

directory::PoolInstance MakeInstance(const std::string& name,
                                     std::uint32_t instance,
                                     const std::string& address) {
  directory::PoolInstance out;
  out.pool_name = name;
  out.instance = instance;
  out.address = address;
  out.machine_count = 10 + instance;
  return out;
}

// A group of two replicas on one kernel, with a switchable "partition"
// between their sites.
struct TestGroup {
  explicit TestGroup(std::size_t journal_capacity = 4096,
                     SimDuration sync_period = Millis(100)) {
    ReplicaGroupConfig config;
    config.sync_period = sync_period;
    config.journal_capacity = journal_capacity;
    config.seed = 7;
    group = std::make_unique<ReplicaGroup>(&kernel, config);
    group->AddReplica("east");
    group->AddReplica("west");
    group->SetReachability([this](const std::string&, const std::string&) {
      return !partitioned;
    });
    group->Start();
  }

  simnet::SimKernel kernel;
  std::unique_ptr<ReplicaGroup> group;
  bool partitioned = false;
};

TEST(Replica, AntiEntropyMatchesAuthoritativeDirectory) {
  TestGroup tg;
  directory::DirectoryService authoritative;

  // The same operation sequence against the authoritative service and
  // against replica 0 of the group.
  const auto drive = [](directory::DirectoryApi* dir) {
    ASSERT_TRUE(dir->RegisterPool(MakeInstance("pool/a", 0, "addr0")).ok());
    ASSERT_TRUE(dir->RegisterPool(MakeInstance("pool/a", 1, "addr1")).ok());
    ASSERT_TRUE(dir->RegisterPool(MakeInstance("pool/b", 0, "addr2")).ok());
    ASSERT_TRUE(
        dir->RegisterPoolManager({"pm0", "pm0-addr", "domain"}).ok());
    ASSERT_TRUE(
        dir->RegisterPoolManager({"pm1", "pm1-addr", "domain"}).ok());
    ASSERT_TRUE(dir->UnregisterPool("pool/a", 1).ok());
    ASSERT_TRUE(dir->UnregisterPoolManager("pm1").ok());
  };
  drive(&authoritative);
  drive(tg.group->replica(0));

  // Quiesce: a few sync periods so replica 1 pulls everything.
  tg.kernel.RunUntil(Millis(500));

  for (DirectoryReplica* replica :
       {tg.group->replica(0), tg.group->replica(1)}) {
    const auto a = replica->Lookup("pool/a");
    ASSERT_EQ(a.size(), 1u);
    EXPECT_EQ(a[0].address, "addr0");
    EXPECT_EQ(replica->Lookup("pool/b").size(), 1u);
    EXPECT_EQ(replica->pool_count(), authoritative.pool_count());
    EXPECT_EQ(replica->PoolNames(), authoritative.PoolNames());
    const auto pms = replica->PoolManagers();
    ASSERT_EQ(pms.size(), 1u);
    EXPECT_EQ(pms[0].name, "pm0");
  }
  EXPECT_EQ(tg.group->replica(0)->StateDigest(),
            tg.group->replica(1)->StateDigest());
  EXPECT_TRUE(tg.group->Converged());
}

TEST(Replica, LwwMergeIsOrderIndependent) {
  // Two replicas receive each other's ops in opposite orders; the LWW
  // stamp (with origin tiebreak) must produce identical winners.
  DirectoryReplica a({0, "east", 4096});
  DirectoryReplica b({1, "west", 4096});
  ASSERT_TRUE(a.RegisterPool(MakeInstance("pool/x", 0, "from-a")).ok());
  ASSERT_TRUE(b.RegisterPool(MakeInstance("pool/x", 0, "from-b")).ok());
  ASSERT_TRUE(b.RegisterPool(MakeInstance("pool/y", 0, "only-b")).ok());

  std::vector<replica::Op> from_a, from_b;
  ASSERT_TRUE(a.DeltaSince(b.version_vector(), &from_a));
  ASSERT_TRUE(b.DeltaSince(a.version_vector(), &from_b));
  a.ApplyOps(from_b);
  b.ApplyOps(from_a);

  EXPECT_EQ(a.StateDigest(), b.StateDigest());
  // Equal stamps break toward the higher origin: replica 1's write wins.
  const auto x = a.Lookup("pool/x");
  ASSERT_EQ(x.size(), 1u);
  EXPECT_EQ(x[0].address, "from-b");
}

TEST(Replica, PartitionDivergenceThenHealConverges) {
  TestGroup tg;
  ASSERT_TRUE(
      tg.group->replica(0)->RegisterPool(MakeInstance("pool/a", 0, "a0")).ok());
  tg.kernel.RunUntil(Millis(300));
  ASSERT_TRUE(tg.group->Converged());

  // Partition, then writes on both sides.
  tg.partitioned = true;
  ReplicaHandle east(tg.group.get(), "east");
  ReplicaHandle west(tg.group.get(), "west");
  ASSERT_TRUE(east.RegisterPool(MakeInstance("pool/east", 0, "e0")).ok());
  ASSERT_TRUE(west.RegisterPool(MakeInstance("pool/west", 0, "w0")).ok());
  ASSERT_TRUE(west.UnregisterPool("pool/a", 0).ok());
  tg.kernel.RunUntil(Millis(800));
  EXPECT_FALSE(tg.group->Converged());
  EXPECT_GT(tg.group->stats().sync_skipped, 0u);

  // Heal: both replicas must reach identical record sets within a
  // bounded number of sync periods (one pull in each direction).
  tg.partitioned = false;
  tg.group->NoteDisruption();
  tg.kernel.RunUntil(Millis(800) + 3 * Millis(100));
  EXPECT_TRUE(tg.group->Converged());
  EXPECT_EQ(tg.group->replica(0)->StateDigest(),
            tg.group->replica(1)->StateDigest());
  EXPECT_EQ(tg.group->stats().convergences, 1u);
  EXPECT_LE(tg.group->stats().converge_time_s, 0.3);
  // The partition-side unregister propagated: pool/a is gone everywhere.
  EXPECT_TRUE(tg.group->replica(0)->Lookup("pool/a").empty());
  EXPECT_EQ(tg.group->replica(0)->Lookup("pool/east").size(), 1u);
  EXPECT_EQ(tg.group->replica(0)->Lookup("pool/west").size(), 1u);
}

TEST(Replica, BoundedJournalFallsBackToFullStateMerge) {
  // Journal of 8 ops; 60 writes on one side while the peer is cut off.
  TestGroup tg(/*journal_capacity=*/8);
  ASSERT_TRUE(
      tg.group->replica(1)->RegisterPool(MakeInstance("pool/w", 0, "w")).ok());
  tg.kernel.RunUntil(Millis(300));
  ASSERT_TRUE(tg.group->Converged());

  tg.partitioned = true;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(tg.group->replica(0)
                    ->RegisterPool(MakeInstance("pool/a", 0, "gen"))
                    .ok());
    ASSERT_TRUE(tg.group->replica(0)->UnregisterPool("pool/a", 0).ok());
  }
  ASSERT_TRUE(
      tg.group->replica(0)->RegisterPool(MakeInstance("pool/e", 0, "e")).ok());
  tg.kernel.RunUntil(Millis(600));

  tg.partitioned = false;
  tg.kernel.RunUntil(Millis(1000));
  EXPECT_GT(tg.group->stats().full_syncs, 0u);
  EXPECT_TRUE(tg.group->Converged());
  // The merge kept what only the stale side knew (pool/w) alongside the
  // journal-overflowed history (pool/e live, pool/a tombstoned).
  for (DirectoryReplica* replica :
       {tg.group->replica(0), tg.group->replica(1)}) {
    EXPECT_EQ(replica->Lookup("pool/w").size(), 1u);
    EXPECT_EQ(replica->Lookup("pool/e").size(), 1u);
    EXPECT_TRUE(replica->Lookup("pool/a").empty());
  }
}

TEST(Replica, CrashRestoreWarmingAndFailover) {
  TestGroup tg;
  ReplicaHandle east(tg.group.get(), "east");
  ASSERT_TRUE(east.RegisterPool(MakeInstance("pool/a", 0, "a0")).ok());
  tg.kernel.RunUntil(Millis(300));
  ASSERT_TRUE(tg.group->Converged());

  // Crash the east replica: its state is gone, and the east handle must
  // fail over to the west replica for both reads and writes.
  tg.group->Crash(0);
  EXPECT_FALSE(tg.group->alive(0));
  const auto before = tg.group->stats().failovers;
  EXPECT_EQ(east.Lookup("pool/a").size(), 1u);  // served by replica 1
  ASSERT_TRUE(east.RegisterPool(MakeInstance("pool/b", 0, "b0")).ok());
  EXPECT_GT(tg.group->stats().failovers, before);

  // Restore: warming until the first pull, then serving a full copy.
  tg.group->Restore(0);
  EXPECT_TRUE(tg.group->alive(0));
  // Still warming: the east handle keeps failing over.
  EXPECT_EQ(tg.group->replica(0)->pool_count(), 0u);
  EXPECT_EQ(east.Lookup("pool/b").size(), 1u);
  tg.kernel.RunUntil(tg.kernel.Now() + Millis(300));
  EXPECT_TRUE(tg.group->Converged());
  EXPECT_EQ(tg.group->replica(0)->Lookup("pool/a").size(), 1u);
  EXPECT_EQ(tg.group->replica(0)->Lookup("pool/b").size(), 1u);
  EXPECT_GE(tg.group->stats().restores, 1u);
}

// Builds the wan_partition_heal partition regime directly: partition +
// pool churn during the cut, writes on both sides, heal, convergence.
ScenarioConfig PartitionHealConfig(double ts, std::uint32_t replicas) {
  ScenarioConfig config;
  config.machines = 120;
  config.clusters = 2;
  config.clients = 4;
  config.wan = true;
  config.pool_replicas = 2;
  config.query_managers = 2;
  config.pool_managers = 2;
  config.directory_replicas = replicas;
  config.directory_sync_period = Seconds(0.35 * ts);
  config.client_request_timeout = Seconds(2.0 * ts);
  config.retry_max = 2;
  config.retry_backoff = Seconds(0.25 * ts);
  const std::string plan_text =
      "partition start=" + std::to_string(6.0 * ts) +
      " end=" + std::to_string(12.0 * ts) + " site_a=purdue site_b=upc\n" +
      "churn start=" + std::to_string(6.0 * ts) +
      " end=" + std::to_string(12.0 * ts) +
      " rate=" + std::to_string(1.0 / ts) +
      " downtime=" + std::to_string(1.5 * ts) + " target=pool.*\n";
  config.fault_plan = fault::FaultPlan::Parse(plan_text).value();
  config.seed = 20010611;
  return config;
}

TEST(Replica, WanPartitionHealScenarioConverges) {
  const double ts = 0.1;
  SimScenario scenario(PartitionHealConfig(ts, 2));
  ASSERT_TRUE(scenario.fault_status().ok());
  scenario.Measure(Seconds(3.0 * ts), Seconds(15.0 * ts));

  ReplicaGroup* group = scenario.replica_group();
  ASSERT_NE(group, nullptr);
  // Acceptance: both replicas hold identical record sets a bounded
  // sim-time after the heal (here: within the remaining measure window,
  // with the measured reconciliation delay itself under 10 scaled
  // seconds of the heal).
  EXPECT_TRUE(group->Converged());
  EXPECT_EQ(group->replica(0)->StateDigest(),
            group->replica(1)->StateDigest());
  EXPECT_GE(group->stats().convergences, 1u);
  EXPECT_LE(group->stats().converge_time_s, 10.0 * ts);
  EXPECT_GT(group->stats().sync_bytes, 0u);
  // The partition cut the replicas off from each other for its whole
  // duration: anti-entropy had to skip rounds.
  EXPECT_GT(group->stats().sync_skipped, 0u);
}

TEST(Replica, ScenarioDeterministicReplayWithReplication) {
  // Fixed seed + replication on => byte-identical kernel-visible state.
  const auto run = [] {
    const double ts = 0.1;
    SimScenario scenario(PartitionHealConfig(ts, 2));
    scenario.Measure(Seconds(3.0 * ts), Seconds(15.0 * ts));
    std::ostringstream out;
    out << scenario.collector().completed() << '/'
        << scenario.collector().failures() << '/'
        << scenario.kernel().executed() << '/'
        << scenario.replica_stats().sync_bytes << '/'
        << scenario.replica_stats().ops_pulled << '\n'
        << scenario.replica_group()->replica(0)->StateDigest()
        << scenario.replica_group()->replica(1)->StateDigest();
    return out.str();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(Replica, DriverReplicasOneIsByteIdenticalToSeedPath) {
  // --replicas 1 must leave every scenario byte-identical to a run that
  // never mentions replication: the flag routes through the identical
  // single-authoritative-directory code path.
  const ScenarioInfo* info =
      ScenarioRegistry::Instance().Find("directory_failover");
  ASSERT_NE(info, nullptr);
  ScenarioRunOptions base;
  base.machines = 120;
  base.clients = 3;
  base.time_scale = 0.1;
  base.seed = 5;
  base.stable = true;
  ScenarioRunOptions pinned = base;
  pinned.replicas = 1;

  const auto render = [&](const ScenarioRunOptions& options) {
    std::ostringstream out;
    WriteReportJson(info->run(options), out);
    return out.str();
  };
  // The sweep collapses to the replicas=1 regime under the pin; compare
  // that regime's cell between the two runs.
  const std::string with_flag = render(pinned);
  const std::string without_flag = render(base);
  EXPECT_FALSE(with_flag.empty());
  // The pinned run keeps only the seed cell; it must appear verbatim in
  // the unpinned run's output.
  const auto cell_start = with_flag.find("\"regime\":\"seed\"");
  const auto cell_end = with_flag.find('}', cell_start);
  ASSERT_NE(cell_start, std::string::npos);
  EXPECT_NE(without_flag.find(with_flag.substr(cell_start,
                                               cell_end - cell_start)),
            std::string::npos);
}

TEST(Replica, TombstoneGcPrunesOnceEveryoneHasApplied) {
  TestGroup tg;
  ASSERT_TRUE(
      tg.group->replica(0)->RegisterPool(MakeInstance("pool/a", 0, "a0")).ok());
  ASSERT_TRUE(
      tg.group->replica(0)->RegisterPool(MakeInstance("pool/b", 0, "b0")).ok());
  ASSERT_TRUE(tg.group->replica(0)->UnregisterPool("pool/a", 0).ok());

  // Before any sync, only replica 0 knows the delete: the tombstone is
  // not coverable by the group minimum and must survive.
  EXPECT_EQ(tg.group->replica(0)->tombstone_count(), 1u);

  // A few sync periods: replica 1 applies the delete, the group floor
  // rises over the tombstone's (origin, seq), and the next tick's GC
  // drops it from both replicas.
  tg.kernel.RunUntil(Millis(500));
  EXPECT_EQ(tg.group->replica(0)->tombstone_count(), 0u);
  EXPECT_EQ(tg.group->replica(1)->tombstone_count(), 0u);
  EXPECT_GE(tg.group->stats().tombstones_gc, 2u);

  // The deletion itself held: the pruned key stays gone, the live pool
  // stays served, and the replicas still agree byte-for-byte.
  EXPECT_TRUE(tg.group->replica(0)->Lookup("pool/a").empty());
  EXPECT_TRUE(tg.group->replica(1)->Lookup("pool/a").empty());
  EXPECT_EQ(tg.group->replica(1)->Lookup("pool/b").size(), 1u);
  EXPECT_EQ(tg.group->replica(0)->StateDigest(),
            tg.group->replica(1)->StateDigest());
}

TEST(Replica, WarmingReplicaBlocksTombstoneGc) {
  TestGroup tg;
  ASSERT_TRUE(
      tg.group->replica(0)->RegisterPool(MakeInstance("pool/a", 0, "a0")).ok());
  tg.kernel.RunUntil(Millis(300));

  // Crash replica 1, then delete while it is down: after the restore
  // the replica warms empty, and until its first successful pull the
  // group must keep the tombstone (the min vector cannot cover it).
  tg.group->Crash(1);
  ASSERT_TRUE(tg.group->replica(0)->UnregisterPool("pool/a", 0).ok());
  tg.group->Restore(1);
  EXPECT_EQ(tg.group->replica(0)->tombstone_count(), 1u);

  // Once the restored replica has pulled, GC resumes and prunes.
  tg.kernel.RunUntil(Millis(900));
  EXPECT_EQ(tg.group->replica(0)->tombstone_count(), 0u);
  EXPECT_TRUE(tg.group->replica(1)->Lookup("pool/a").empty());
  EXPECT_TRUE(tg.group->Converged());
}

}  // namespace
}  // namespace actyp
