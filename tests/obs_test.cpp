// Observability tests: flight-recorder ring semantics, determinism of
// the merged flight stream across repeat runs and LP worker counts,
// byte-identity of the simulation with the recorder on vs off,
// reservoir-vs-ring quantile agreement, and telemetry sample-stream
// determinism (including the sampled Measure overload leaving the run
// byte-identical to the unsampled one).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "actyp/scenario.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"
#include "profile/metrics_exporter.hpp"
#include "profile/stage_profiler.hpp"

namespace actyp {
namespace {

using obs::FlightEvent;
using obs::FlightKind;
using obs::FlightRecorder;

ScenarioConfig SmallConfig() {
  ScenarioConfig config;
  config.machines = 200;
  config.clusters = 1;
  config.clients = 4;
  config.seed = 4242;
  return config;
}

ScenarioConfig WanConfig(std::size_t cell_jobs) {
  ScenarioConfig config;
  config.machines = 200;
  config.clusters = 2;
  config.clients = 4;
  config.wan_sites = 2;
  config.cell_jobs = cell_jobs;
  config.seed = 4242;
  return config;
}

std::vector<std::string> Jsonl(const std::vector<FlightEvent>& events) {
  std::vector<std::string> lines;
  lines.reserve(events.size());
  for (const FlightEvent& event : events) {
    lines.push_back(obs::FlightEventJson(event));
  }
  return lines;
}

std::vector<std::string> Jsonl(
    const std::vector<profile::MetricCell>& cells) {
  std::vector<std::string> lines;
  lines.reserve(cells.size());
  for (const profile::MetricCell& cell : cells) {
    lines.push_back(profile::MetricCellJson(cell));
  }
  return lines;
}

TEST(FlightRecorder, RingKeepsMostRecentAndSeqSurvivesReset) {
  FlightRecorder recorder(/*shard=*/3, /*capacity=*/4);
  for (int i = 0; i < 6; ++i) {
    recorder.Record(Seconds(i), FlightKind::kTimerFire,
                    static_cast<std::uint64_t>(i), "node", "tick");
  }
#if !defined(ACTYP_PROFILE_OFF)
  EXPECT_EQ(recorder.recorded(), 6u);
  const auto window = recorder.Snapshot();
  ASSERT_EQ(window.size(), 4u);
  // Oldest first, and only the most recent four survive.
  EXPECT_EQ(window.front().id, 2u);
  EXPECT_EQ(window.back().id, 5u);
  for (const FlightEvent& event : window) EXPECT_EQ(event.shard, 3u);

  recorder.Reset();
  EXPECT_TRUE(recorder.Snapshot().empty());
  recorder.Record(Seconds(9), FlightKind::kTimerArm, 7, "node", "later");
  // The sequence counter keeps climbing across Reset: merged streams
  // stay strictly ordered even when the window is rebuilt mid-run.
  EXPECT_GT(recorder.Snapshot().front().seq, window.back().seq);
#else
  EXPECT_EQ(recorder.recorded(), 0u);
#endif
}

TEST(FlightRecorder, MergeOrdersByTimeShardSeq) {
  FlightRecorder a(/*shard=*/0, /*capacity=*/8);
  FlightRecorder b(/*shard=*/1, /*capacity=*/8);
  a.Record(Seconds(2), FlightKind::kMsgSend, 1, "n", "");
  b.Record(Seconds(1), FlightKind::kMsgSend, 2, "n", "");
  b.Record(Seconds(2), FlightKind::kMsgRecv, 3, "n", "");
  auto merged = obs::MergeFlightEvents({a.Snapshot(), b.Snapshot()});
#if !defined(ACTYP_PROFILE_OFF)
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].id, 2u);  // t=1
  EXPECT_EQ(merged[1].id, 1u);  // t=2 shard 0 before shard 1
  EXPECT_EQ(merged[2].id, 3u);
#else
  EXPECT_TRUE(merged.empty());
#endif
}

TEST(FlightRecorder, EventJsonShape) {
  FlightEvent event;
  event.t = Millis(1500);
  event.kind = FlightKind::kMsgDropLoss;
  event.shard = 1;
  event.seq = 7;
  event.id = 42;
  event.node = "client0";
  event.detail = "p=\"0.5\"";
  EXPECT_EQ(obs::FlightEventJson(event),
            "{\"t\":1.5,\"kind\":\"msg_drop_loss\",\"shard\":1,"
            "\"seq\":7,\"id\":42,\"node\":\"client0\","
            "\"detail\":\"p=\\\"0.5\\\"\"}");
}

TEST(Flight, RepeatRunsProduceIdenticalStreams) {
  ScenarioConfig config = SmallConfig();
  config.flight_recorder = true;
  SimScenario first(config);
  first.Measure(Seconds(2), Seconds(10));
  SimScenario second(config);
  second.Measure(Seconds(2), Seconds(10));
  const auto lines = Jsonl(first.FlightSnapshot());
#if !defined(ACTYP_PROFILE_OFF)
  EXPECT_FALSE(lines.empty());
#endif
  EXPECT_EQ(lines, Jsonl(second.FlightSnapshot()));
}

TEST(Flight, RecorderDoesNotPerturbTheRun) {
  ScenarioConfig off = SmallConfig();
  ScenarioConfig on = SmallConfig();
  on.flight_recorder = true;
  SimScenario plain(off);
  plain.Measure(Seconds(2), Seconds(10));
  SimScenario recorded(on);
  recorded.Measure(Seconds(2), Seconds(10));
  EXPECT_EQ(plain.collector().completed(), recorded.collector().completed());
  EXPECT_EQ(plain.collector().failures(), recorded.collector().failures());
  EXPECT_DOUBLE_EQ(plain.collector().response_stats().mean(),
                   recorded.collector().response_stats().mean());
  EXPECT_EQ(plain.total_events(), recorded.total_events());
}

TEST(Flight, MergedStreamIdenticalAcrossCellJobs) {
  ScenarioConfig serial = WanConfig(/*cell_jobs=*/1);
  serial.flight_recorder = true;
  ScenarioConfig threaded = WanConfig(/*cell_jobs=*/2);
  threaded.flight_recorder = true;
  SimScenario one(serial);
  one.Measure(Seconds(2), Seconds(10));
  SimScenario two(threaded);
  two.Measure(Seconds(2), Seconds(10));
  ASSERT_TRUE(one.lp_mode());
  ASSERT_TRUE(two.lp_mode());
  const auto lines = Jsonl(one.FlightSnapshot());
#if !defined(ACTYP_PROFILE_OFF)
  EXPECT_FALSE(lines.empty());
  // Both LP shards contribute to the merged stream.
  bool saw_shard1 = false;
  for (const FlightEvent& event : one.FlightSnapshot()) {
    if (event.shard == 1) saw_shard1 = true;
  }
  EXPECT_TRUE(saw_shard1);
#endif
  EXPECT_EQ(lines, Jsonl(two.FlightSnapshot()));
}

TEST(Sampling, ReservoirQuantilesAgreeWithRing) {
  // Under capacity the reservoir holds every duration, so its order
  // statistics are exact; the histogram interpolates within ~15%-wide
  // geometric buckets. The two must agree to bucket resolution.
  profile::StageProfiler::Config ring_config;
  profile::StageProfiler::Config reservoir_config;
  reservoir_config.sampling = profile::SamplingMode::kReservoir;
  reservoir_config.reservoir_capacity = 4096;
  profile::StageProfiler ring(ring_config);
  profile::StageProfiler reservoir(reservoir_config);
  for (int i = 1; i <= 1000; ++i) {
    const SimTime exit = Millis(i);
    ring.Record(profile::Stage::kPoolSelect, i, 0, exit);
    reservoir.Record(profile::Stage::kPoolSelect, i, 0, exit);
  }
#if !defined(ACTYP_PROFILE_OFF)
  const auto from_ring = ring.Summary(profile::Stage::kPoolSelect);
  const auto from_res = reservoir.Summary(profile::Stage::kPoolSelect);
  EXPECT_EQ(from_ring.count, from_res.count);
  EXPECT_DOUBLE_EQ(from_ring.mean_s, from_res.mean_s);
  EXPECT_NEAR(from_res.p50_s, from_ring.p50_s, 0.16 * from_ring.p50_s);
  EXPECT_NEAR(from_res.p95_s, from_ring.p95_s, 0.16 * from_ring.p95_s);
  EXPECT_NEAR(from_res.p99_s, from_ring.p99_s, 0.16 * from_ring.p99_s);
  // Exact order statistics from the full sample.
  EXPECT_DOUBLE_EQ(from_res.p50_s, 0.5);
  ASSERT_EQ(
      reservoir.Reservoir(profile::Stage::kPoolSelect).size(), 1000u);
#endif
}

TEST(Sampling, ReservoirIsDeterministic) {
  profile::StageProfiler::Config config;
  config.sampling = profile::SamplingMode::kReservoir;
  config.reservoir_capacity = 64;
  profile::StageProfiler first(config);
  profile::StageProfiler second(config);
  for (int i = 1; i <= 5000; ++i) {
    first.Record(profile::Stage::kQmAdmit, i, 0, Millis(i));
    second.Record(profile::Stage::kQmAdmit, i, 0, Millis(i));
  }
  EXPECT_EQ(first.Reservoir(profile::Stage::kQmAdmit),
            second.Reservoir(profile::Stage::kQmAdmit));
#if !defined(ACTYP_PROFILE_OFF)
  EXPECT_EQ(first.Reservoir(profile::Stage::kQmAdmit).size(), 64u);
  // Reset rebuilds an identical reservoir from an identical replay:
  // the private RNG reseeds, so merged-view rebuilds are idempotent.
  first.Reset();
  for (int i = 1; i <= 5000; ++i) {
    first.Record(profile::Stage::kQmAdmit, i, 0, Millis(i));
  }
  EXPECT_EQ(first.Reservoir(profile::Stage::kQmAdmit),
            second.Reservoir(profile::Stage::kQmAdmit));
#endif
}

TEST(Sampling, ModeNamesRoundTrip) {
  EXPECT_EQ(profile::SamplingModeFromName("ring"),
            profile::SamplingMode::kRing);
  EXPECT_EQ(profile::SamplingModeFromName("reservoir"),
            profile::SamplingMode::kReservoir);
  EXPECT_FALSE(profile::SamplingModeFromName("histogram").has_value());
}

TEST(Telemetry, SampledMeasureDoesNotPerturbTheRun) {
  ScenarioConfig config = SmallConfig();
  SimScenario plain(config);
  plain.Measure(Seconds(2), Seconds(10));
  SimScenario sampled(config);
  std::size_t samples = 0;
  sampled.Measure(Seconds(2), Seconds(10), Seconds(1),
                  [&](SimTime) { ++samples; });
  EXPECT_EQ(samples, 11u);  // the window start plus ten chunk ends
  EXPECT_EQ(plain.collector().completed(),
            sampled.collector().completed());
  EXPECT_DOUBLE_EQ(plain.collector().response_stats().mean(),
                   sampled.collector().response_stats().mean());
  EXPECT_EQ(plain.total_events(), sampled.total_events());
}

TEST(Telemetry, SampleStreamIsDeterministic) {
  const auto run = [](std::size_t cell_jobs) {
    ScenarioConfig config = WanConfig(cell_jobs);
    SimScenario scenario(config);
    std::vector<profile::MetricCell> samples;
    scenario.Measure(Seconds(2), Seconds(10), Seconds(1),
                     [&](SimTime t) {
                       samples.push_back(obs::TelemetrySample(scenario, t));
                     });
    return Jsonl(samples);
  };
  const auto first = run(1);
  EXPECT_EQ(first.size(), 11u);
  EXPECT_EQ(first, run(1));
  // The LP worker count is an execution knob: same gauges, same bytes.
  EXPECT_EQ(first, run(2));
}

TEST(Telemetry, GaugesTrackTheRun) {
  ScenarioConfig config = SmallConfig();
  SimScenario scenario(config);
  std::vector<profile::MetricCell> samples;
  scenario.Measure(Seconds(2), Seconds(10), Seconds(1), [&](SimTime t) {
    samples.push_back(obs::TelemetrySample(scenario, t));
  });
  ASSERT_FALSE(samples.empty());
  const auto value = [](const profile::MetricCell& cell,
                        const std::string& key) {
    for (const auto& [name, v] : cell.values) {
      if (name == key) return v;
    }
    ADD_FAILURE() << "missing gauge " << key;
    return 0.0;
  };
  // t_s is the sim clock in seconds: warmup ended at 2 s.
  EXPECT_DOUBLE_EQ(value(samples.front(), "t_s"), 2.0);
  EXPECT_DOUBLE_EQ(value(samples.back(), "t_s"), 12.0);
  // Completed counts are cumulative and non-decreasing over the window.
  double last = -1;
  for (const auto& cell : samples) {
    const double completed = value(cell, "completed");
    EXPECT_GE(completed, last);
    last = completed;
  }
  EXPECT_GT(last, 0.0);
  EXPECT_DOUBLE_EQ(value(samples.back(), "failures"), 0.0);
}

}  // namespace
}  // namespace actyp
