// Integration tests for the resource management pipeline stages on the
// discrete-event substrate: resource pools (claiming, allocation,
// release, access control, oversubscription, re-sort), pool managers
// (mapping, instance selection, creation via proxy, delegation with
// TTL), and query managers (routing rules, decomposition).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "db/database.hpp"
#include "db/policy.hpp"
#include "db/shadow.hpp"
#include "directory/directory.hpp"
#include "monitor/monitor.hpp"
#include "pipeline/pool_manager.hpp"
#include "pipeline/proxy.hpp"
#include "pipeline/query_manager.hpp"
#include "pipeline/reintegrator.hpp"
#include "pipeline/resource_pool.hpp"
#include "query/parser.hpp"
#include "simnet/kernel.hpp"
#include "simnet/sim_network.hpp"

namespace actyp::pipeline {
namespace {

// Captures everything sent to it; used as the "client".
class Probe final : public net::Node {
 public:
  void OnMessage(const net::Envelope& env, net::NodeContext& ctx) override {
    messages.push_back(env.message);
    times.push_back(ctx.Now());
  }
  std::vector<net::Message> messages;
  std::vector<SimTime> times;

  [[nodiscard]] int count(std::string_view type) const {
    int n = 0;
    for (const auto& m : messages) n += (m.type == type);
    return n;
  }
  [[nodiscard]] const net::Message* last(std::string_view type) const {
    for (auto it = messages.rbegin(); it != messages.rend(); ++it) {
      if (it->type == type) return &*it;
    }
    return nullptr;
  }
};

// Shared fixture: a sim network, a white-pages database, and helpers.
class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest()
      : network_(&kernel_, simnet::Topology::Lan(), /*seed=*/7) {
    network_.AddHost("alpha", 12);
    probe_ = std::make_shared<Probe>();
    network_.AddNode("probe", probe_, {"alpha", 4});
  }

  void AddMachines(int count, const std::string& arch = "sun",
                   const std::vector<std::string>& user_groups = {}) {
    for (int i = 0; i < count; ++i) {
      db::MachineRecord rec;
      rec.name = arch + std::to_string(next_machine_++);
      rec.params["arch"] = arch;
      rec.dyn.available_memory_mb = 512;
      rec.effective_speed = 1.0;
      rec.user_groups = user_groups;
      rec.execution_unit_port = 7000;
      rec.shadow_pool = "shadow." + arch;
      shadows_.GetOrCreate(rec.shadow_pool, 9000, 64);
      ASSERT_TRUE(database_.Add(std::move(rec)).ok());
    }
  }

  std::shared_ptr<ResourcePool> MakePool(
      const std::string& criteria_text,
      const std::function<void(ResourcePoolConfig&)>& tweak = {}) {
    auto criteria = query::Parser::ParseBasic(criteria_text);
    EXPECT_TRUE(criteria.ok());
    ResourcePoolConfig config;
    config.criteria = *criteria;
    config.pool_name = criteria->PoolName();
    config.resort_period = 0;  // tests drive ticks explicitly
    if (tweak) tweak(config);
    auto pool = std::make_shared<ResourcePool>(config, &database_, &directory_,
                                               &shadows_, &policies_);
    return pool;
  }

  net::Message QueryMessage(const std::string& body,
                            std::uint64_t request_id = 1) {
    net::Message m{net::msg::kQuery};
    m.SetHeader(net::hdr::kReplyTo, "probe");
    m.SetHeader(net::hdr::kRequestId, std::to_string(request_id));
    m.body = body;
    return m;
  }

  simnet::SimKernel kernel_;
  simnet::SimNetwork network_;
  db::ResourceDatabase database_;
  db::ShadowAccountRegistry shadows_;
  db::PolicyRegistry policies_;
  directory::DirectoryService directory_;
  std::shared_ptr<Probe> probe_;
  int next_machine_ = 0;
};

constexpr const char* kSunQuery =
    "punch.rsrc.arch = sun\npunch.user.accessgroup = ece\n";

// --- resource pool ---

TEST_F(PipelineTest, PoolClaimsAndRegistersOnStart) {
  AddMachines(10, "sun");
  AddMachines(5, "hp");
  auto pool = MakePool("punch.rsrc.arch = sun\n");
  network_.AddNode("pool0", pool, {"alpha", 1});

  EXPECT_EQ(pool->cache_size(), 10u);
  EXPECT_EQ(database_.free_count(), 5u);  // hp machines remain free
  auto instances = directory_.Lookup(pool->config().pool_name);
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(instances[0].address, "pool0");
  EXPECT_EQ(instances[0].machine_count, 10u);
}

TEST_F(PipelineTest, PoolAllocatesAndReleases) {
  AddMachines(4, "sun");
  auto pool = MakePool("punch.rsrc.arch = sun\n");
  network_.AddNode("pool0", pool, {"alpha", 1});

  network_.Post("probe", "pool0", QueryMessage(kSunQuery));
  kernel_.Run();

  ASSERT_EQ(probe_->count(net::msg::kAllocation), 1);
  auto allocation = ParseAllocationMessage(*probe_->last(net::msg::kAllocation));
  ASSERT_TRUE(allocation.ok());
  EXPECT_FALSE(allocation->machine_name.empty());
  EXPECT_FALSE(allocation->session_key.empty());
  EXPECT_EQ(allocation->port, 7000);
  EXPECT_GT(allocation->shadow_uid, 0u);
  EXPECT_EQ(allocation->pool_address, "pool0");
  EXPECT_EQ(allocation->request_id, 1u);
  EXPECT_EQ(pool->stats().allocations, 1u);

  // Release and verify the pool's bookkeeping drains.
  network_.Post("probe", "pool0",
                MakeReleaseMessage(allocation->machine_id,
                                   allocation->session_key));
  kernel_.Run();
  EXPECT_EQ(pool->stats().releases, 1u);
}

TEST_F(PipelineTest, PoolSpreadsLoadAcrossMachines) {
  AddMachines(4, "sun");
  auto pool = MakePool("punch.rsrc.arch = sun\n");
  network_.AddNode("pool0", pool, {"alpha", 1});

  for (int i = 0; i < 4; ++i) {
    network_.Post("probe", "pool0", QueryMessage(kSunQuery, 100 + i));
  }
  kernel_.Run();
  ASSERT_EQ(probe_->count(net::msg::kAllocation), 4);
  std::set<std::string> machines;
  for (const auto& m : probe_->messages) {
    if (m.type == net::msg::kAllocation) {
      machines.insert(m.Header(net::hdr::kMachine));
    }
  }
  // Least-load spreads the four jobs over the four idle machines.
  EXPECT_EQ(machines.size(), 4u);
}

TEST_F(PipelineTest, PoolOversubscribesWhenSaturated) {
  AddMachines(2, "sun");
  auto pool = MakePool("punch.rsrc.arch = sun\n");
  network_.AddNode("pool0", pool, {"alpha", 1});

  for (int i = 0; i < 5; ++i) {
    network_.Post("probe", "pool0", QueryMessage(kSunQuery, 100 + i));
  }
  kernel_.Run();
  EXPECT_EQ(probe_->count(net::msg::kAllocation), 5);
  EXPECT_GT(pool->stats().oversubscribed, 0u);
}

TEST_F(PipelineTest, PoolFailsWhenOversubscriptionDisabled) {
  AddMachines(1, "sun");
  auto pool = MakePool("punch.rsrc.arch = sun\n",
                       [](ResourcePoolConfig& c) {
                         c.allow_oversubscribe = false;
                       });
  network_.AddNode("pool0", pool, {"alpha", 1});

  network_.Post("probe", "pool0", QueryMessage(kSunQuery, 1));
  network_.Post("probe", "pool0", QueryMessage(kSunQuery, 2));
  kernel_.Run();
  EXPECT_EQ(probe_->count(net::msg::kAllocation), 1);
  EXPECT_EQ(probe_->count(net::msg::kFailure), 1);
}

TEST_F(PipelineTest, PoolEnforcesUserGroups) {
  AddMachines(3, "sun", {"faculty"});
  auto pool = MakePool("punch.rsrc.arch = sun\n");
  network_.AddNode("pool0", pool, {"alpha", 1});

  network_.Post("probe", "pool0",
                QueryMessage("punch.rsrc.arch = sun\n"
                             "punch.user.accessgroup = student\n"));
  kernel_.Run();
  EXPECT_EQ(probe_->count(net::msg::kFailure), 1);

  network_.Post("probe", "pool0",
                QueryMessage("punch.rsrc.arch = sun\n"
                             "punch.user.accessgroup = faculty\n",
                             2));
  kernel_.Run();
  EXPECT_EQ(probe_->count(net::msg::kAllocation), 1);
}

TEST_F(PipelineTest, PoolEnforcesUsagePolicy) {
  ASSERT_TRUE(
      policies_.Register("public-load", "deny public if load >= 0.5; allow")
          .ok());
  AddMachines(1, "sun");
  database_.Update(1, [](db::MachineRecord& rec) {
    rec.usage_policy = "public-load";
    rec.dyn.load = 0.9;
  });
  auto pool = MakePool("punch.rsrc.arch = sun\n",
                       [](ResourcePoolConfig& c) {
                         c.allow_oversubscribe = false;
                       });
  network_.AddNode("pool0", pool, {"alpha", 1});

  network_.Post("probe", "pool0",
                QueryMessage("punch.rsrc.arch = sun\n"
                             "punch.user.accessgroup = public\n"));
  kernel_.Run();
  EXPECT_EQ(probe_->count(net::msg::kFailure), 1);

  network_.Post("probe", "pool0",
                QueryMessage("punch.rsrc.arch = sun\n"
                             "punch.user.accessgroup = ece\n",
                             2));
  kernel_.Run();
  EXPECT_EQ(probe_->count(net::msg::kAllocation), 1);
}

TEST_F(PipelineTest, ReplicasShareMachineSet) {
  AddMachines(8, "sun");
  auto pool0 = MakePool("punch.rsrc.arch = sun\n",
                        [](ResourcePoolConfig& c) {
                          c.instance = 0;
                          c.instance_count = 2;
                        });
  auto pool1 = MakePool("punch.rsrc.arch = sun\n",
                        [](ResourcePoolConfig& c) {
                          c.instance = 1;
                          c.instance_count = 2;
                        });
  network_.AddNode("pool0", pool0, {"alpha", 1});
  network_.AddNode("pool1", pool1, {"alpha", 1});
  EXPECT_EQ(pool0->cache_size(), 8u);
  EXPECT_EQ(pool1->cache_size(), 8u);  // adopted, not re-claimed
  EXPECT_EQ(directory_.Lookup(pool0->config().pool_name).size(), 2u);

  // Replicas avoid picking the same machine thanks to the bias.
  network_.Post("probe", "pool0", QueryMessage(kSunQuery, 1));
  network_.Post("probe", "pool1", QueryMessage(kSunQuery, 2));
  kernel_.Run();
  ASSERT_EQ(probe_->count(net::msg::kAllocation), 2);
  EXPECT_NE(probe_->messages[0].Header(net::hdr::kMachine),
            probe_->messages[1].Header(net::hdr::kMachine));
}

TEST_F(PipelineTest, PoolResortRefreshesFromDatabase) {
  AddMachines(3, "sun");
  auto pool = MakePool("punch.rsrc.arch = sun\n",
                       [](ResourcePoolConfig& c) {
                         c.resort_period = Seconds(1);
                       });
  network_.AddNode("pool0", pool, {"alpha", 1});

  // Bump machine 1's load in the white pages; after the tick the pool
  // must see it and avoid that machine.
  database_.Update(1, [](db::MachineRecord& rec) { rec.dyn.load = 5.0; });
  kernel_.RunUntil(Seconds(3));

  network_.Post("probe", "pool0", QueryMessage(kSunQuery));
  // The resort timer reschedules forever; run a bounded window instead of
  // draining the queue.
  kernel_.RunUntil(Seconds(5));
  ASSERT_EQ(probe_->count(net::msg::kAllocation), 1);
  EXPECT_NE(probe_->last(net::msg::kAllocation)->Header(net::hdr::kMachine),
            database_.Get(1)->name);
}

TEST_F(PipelineTest, DownedMachineExcludedAfterRefresh) {
  AddMachines(3, "sun");
  auto pool = MakePool("punch.rsrc.arch = sun\n",
                       [](ResourcePoolConfig& c) {
                         c.resort_period = Seconds(1);
                         c.allow_oversubscribe = true;
                       });
  network_.AddNode("pool0", pool, {"alpha", 1});

  // Machine 2 dies; the next refresh tick must stop handing it out.
  database_.Update(2, [](db::MachineRecord& rec) {
    rec.state = db::MachineState::kDown;
  });
  kernel_.RunUntil(Seconds(3));

  const std::string downed = database_.Get(2)->name;
  for (int i = 0; i < 6; ++i) {
    network_.Post("probe", "pool0", QueryMessage(kSunQuery, 100 + i));
  }
  kernel_.RunUntil(Seconds(4));
  ASSERT_EQ(probe_->count(net::msg::kAllocation), 6);
  for (const auto& m : probe_->messages) {
    if (m.type == net::msg::kAllocation) {
      EXPECT_NE(m.Header(net::hdr::kMachine), downed);
    }
  }
}

TEST_F(PipelineTest, PoolShutdownUnregistersAndReleasesClaims) {
  AddMachines(5, "sun");
  auto pool = MakePool("punch.rsrc.arch = sun\n");
  network_.AddNode("pool0", pool, {"alpha", 1});
  EXPECT_EQ(database_.free_count(), 0u);

  network_.Post("probe", "pool0", net::Message{net::msg::kShutdown});
  kernel_.Run();
  EXPECT_TRUE(directory_.Lookup(pool->config().pool_name).empty());
  EXPECT_EQ(database_.free_count(), 5u);
}

TEST_F(PipelineTest, PoolRejectsMalformedQuery) {
  AddMachines(1, "sun");
  auto pool = MakePool("punch.rsrc.arch = sun\n");
  network_.AddNode("pool0", pool, {"alpha", 1});
  network_.Post("probe", "pool0", QueryMessage("not a query"));
  kernel_.Run();
  EXPECT_EQ(probe_->count(net::msg::kFailure), 1);
}

// --- co-allocation (extension; the 2001 prototype lacked it, §8) ---

TEST_F(PipelineTest, CoAllocationGrantsAtomically) {
  AddMachines(6, "sun");
  auto pool = MakePool("punch.rsrc.arch = sun\n");
  network_.AddNode("pool0", pool, {"alpha", 1});

  network_.Post("probe", "pool0",
                QueryMessage("punch.rsrc.arch = sun\n"
                             "punch.appl.count = 4\n"));
  kernel_.Run();
  ASSERT_EQ(probe_->count(net::msg::kAllocation), 1);
  const auto* allocation = probe_->last(net::msg::kAllocation);
  const auto machines = SplitSkipEmpty(allocation->Header("machines"), ',');
  EXPECT_EQ(machines.size(), 4u);
  EXPECT_EQ(std::set<std::string>(machines.begin(), machines.end()).size(),
            4u);  // distinct machines

  // One release returns the whole set.
  network_.Post("probe", "pool0",
                MakeReleaseMessage(0, allocation->Header(net::hdr::kSessionKey)));
  kernel_.Run();
  EXPECT_EQ(pool->stats().releases, 1u);

  // After release all six machines are idle again: a second co-allocation
  // of 6 succeeds.
  network_.Post("probe", "pool0",
                QueryMessage("punch.rsrc.arch = sun\n"
                             "punch.appl.count = 6\n",
                             2));
  kernel_.Run();
  EXPECT_EQ(probe_->count(net::msg::kAllocation), 2);
}

TEST_F(PipelineTest, CoAllocationIsAllOrNothing) {
  AddMachines(2, "sun");
  auto pool = MakePool("punch.rsrc.arch = sun\n",
                       [](ResourcePoolConfig& c) {
                         c.allow_oversubscribe = false;
                       });
  network_.AddNode("pool0", pool, {"alpha", 1});

  network_.Post("probe", "pool0",
                QueryMessage("punch.rsrc.arch = sun\n"
                             "punch.appl.count = 3\n"));
  kernel_.Run();
  EXPECT_EQ(probe_->count(net::msg::kFailure), 1);
  // Nothing was committed: a 2-machine request still succeeds.
  network_.Post("probe", "pool0",
                QueryMessage("punch.rsrc.arch = sun\n"
                             "punch.appl.count = 2\n",
                             2));
  kernel_.Run();
  EXPECT_EQ(probe_->count(net::msg::kAllocation), 1);
}

// --- advance reservations (extension; future work in the paper) ---

// The indexed policies must grant exactly the allocations the legacy
// linear scans grant on the same trace: same machines, same queries,
// same interleaved releases (re-sort off, so the cache order is fixed
// and the sched-level equivalence applies end to end).
TEST(PoolPolicyEquivalence, IndexedMatchesLinearOnSameTrace) {
  auto run = [](const std::string& policy_name) {
    simnet::SimKernel kernel;
    simnet::SimNetwork network(&kernel, simnet::Topology::Lan(), 7);
    network.AddHost("alpha", 12);
    db::ResourceDatabase database;
    db::ShadowAccountRegistry shadows;
    db::PolicyRegistry policies;
    directory::DirectoryService directory;
    auto probe = std::make_shared<Probe>();
    network.AddNode("probe", probe, {"alpha", 4});
    for (int i = 0; i < 24; ++i) {
      db::MachineRecord rec;
      rec.name = "sun" + std::to_string(i);
      rec.params["arch"] = "sun";
      rec.dyn.load = 0.1 * static_cast<double>(i % 7);
      rec.dyn.available_memory_mb = 256 + 64 * (i % 5);
      rec.effective_speed = 1.0 + 0.5 * static_cast<double>(i % 3);
      EXPECT_TRUE(database.Add(std::move(rec)).ok());
    }
    auto criteria = query::Parser::ParseBasic("punch.rsrc.arch = sun\n");
    EXPECT_TRUE(criteria.ok());
    ResourcePoolConfig config;
    config.criteria = *criteria;
    config.pool_name = criteria->PoolName();
    config.resort_period = 0;
    config.policy = policy_name;
    auto pool = std::make_shared<ResourcePool>(config, &database, &directory,
                                               &shadows, &policies);
    network.AddNode("pool0", pool, {"alpha", 1});

    std::vector<std::string> order;
    std::vector<std::pair<db::MachineId, std::string>> held;
    std::uint64_t request_id = 1;
    for (int step = 0; step < 40; ++step) {
      net::Message query{net::msg::kQuery};
      query.SetHeader(net::hdr::kReplyTo, "probe");
      query.SetHeader(net::hdr::kRequestId, std::to_string(request_id++));
      query.body = "punch.rsrc.arch = sun\n";
      network.Post("probe", "pool0", std::move(query));
      kernel.Run();
      if (const auto* m = probe->last(net::msg::kAllocation)) {
        order.push_back(m->Header(net::hdr::kMachine));
        db::MachineId id = 0;
        if (auto parsed = ParseInt(m->Header(net::hdr::kMachineId))) {
          id = static_cast<db::MachineId>(*parsed);
        }
        held.emplace_back(id, m->Header(net::hdr::kSessionKey));
      }
      if (step % 3 == 2 && !held.empty()) {
        const auto [id, session] = held.front();
        held.erase(held.begin());
        network.Post("probe", "pool0", MakeReleaseMessage(id, session));
        kernel.Run();
      }
    }
    EXPECT_EQ(order.size(), 40u) << policy_name;
    return order;
  };

  EXPECT_EQ(run("least-load"), run("linear-least-load"));
  EXPECT_EQ(run("most-memory"), run("linear-most-memory"));
  EXPECT_EQ(run("fastest"), run("linear-fastest"));
}

// The dirty-id incremental refresh must leave the pool indistinguishable
// from the legacy full sweep: same allocations on the same randomized
// schedule of monitor sweeps, direct white-pages updates, machine
// down/up churn, and interleaved queries/releases — while re-reading
// only the records that actually changed.
TEST(PoolRefreshEquivalence, IncrementalMatchesFullSweepUnderChurn) {
  struct RunResult {
    std::vector<std::string> allocations;
    std::uint64_t entries_refreshed = 0;
    std::uint64_t refresh_ticks = 0;
  };
  auto run = [](bool incremental) {
    simnet::SimKernel kernel;
    simnet::SimNetwork network(&kernel, simnet::Topology::Lan(), 7);
    network.AddHost("alpha", 12);
    db::ResourceDatabase database;
    db::ShadowAccountRegistry shadows;
    db::PolicyRegistry policies;
    directory::DirectoryService directory;
    auto probe = std::make_shared<Probe>();
    network.AddNode("probe", probe, {"alpha", 4});
    std::vector<db::MachineId> ids;
    for (int i = 0; i < 30; ++i) {
      db::MachineRecord rec;
      rec.name = "sun" + std::to_string(i);
      rec.params["arch"] = "sun";
      rec.dyn.load = 0.05 * static_cast<double>(i % 9);
      rec.dyn.available_memory_mb = 256;
      ids.push_back(*database.Add(std::move(rec)));
    }
    monitor::MonitorConfig mon_config;
    mon_config.update_period = Seconds(2);
    monitor::ResourceMonitor monitor(&database, mon_config, Rng(99));

    auto criteria = query::Parser::ParseBasic("punch.rsrc.arch = sun\n");
    EXPECT_TRUE(criteria.ok());
    ResourcePoolConfig config;
    config.criteria = *criteria;
    config.pool_name = criteria->PoolName();
    config.policy = "least-load";
    config.resort_period = Seconds(1);
    config.incremental_refresh = incremental;
    auto pool = std::make_shared<ResourcePool>(config, &database, &directory,
                                               &shadows, &policies);
    network.AddNode("pool0", pool, {"alpha", 1});

    Rng churn(4242);  // same schedule for both modes
    RunResult result;
    std::vector<std::pair<db::MachineId, std::string>> held;
    std::vector<db::MachineId> down;
    std::uint64_t request_id = 1;
    for (int step = 0; step < 60; ++step) {
      const SimTime now = Seconds(0.7 * (step + 1));
      // Random churn against the white pages: load nudges, machines
      // flipping down and back up, periodic monitor sweeps.
      if (churn.NextDouble() < 0.4) {
        const db::MachineId id =
            ids[churn.NextBounded(ids.size())];
        database.Update(id, [&churn](db::MachineRecord& rec) {
          rec.dyn.load = 2.0 * churn.NextDouble();
        });
      }
      if (churn.NextDouble() < 0.15) {
        const db::MachineId id = ids[churn.NextBounded(ids.size())];
        database.Update(id, [](db::MachineRecord& rec) {
          rec.state = db::MachineState::kDown;
        });
        down.push_back(id);
      }
      if (!down.empty() && churn.NextDouble() < 0.3) {
        database.Update(down.back(), [](db::MachineRecord& rec) {
          rec.state = db::MachineState::kUp;
        });
        down.pop_back();
      }
      if (step % 3 == 0) monitor.Step(now);

      net::Message query{net::msg::kQuery};
      query.SetHeader(net::hdr::kReplyTo, "probe");
      query.SetHeader(net::hdr::kRequestId, std::to_string(request_id++));
      query.body = "punch.rsrc.arch = sun\n";
      network.Post("probe", "pool0", std::move(query));
      kernel.RunUntil(now);
      if (const auto* m = probe->last(net::msg::kAllocation)) {
        result.allocations.push_back(m->Header(net::hdr::kMachine));
        db::MachineId id = 0;
        if (auto parsed = ParseInt(m->Header(net::hdr::kMachineId))) {
          id = static_cast<db::MachineId>(*parsed);
        }
        held.emplace_back(id, m->Header(net::hdr::kSessionKey));
      }
      if (held.size() > 4) {
        const auto [id, session] = held.front();
        held.erase(held.begin());
        network.Post("probe", "pool0", MakeReleaseMessage(id, session));
        kernel.RunUntil(now + Millis(100));
      }
    }
    result.entries_refreshed = pool->stats().entries_refreshed;
    result.refresh_ticks = pool->stats().refresh_ticks;
    return result;
  };

  const RunResult inc = run(true);
  const RunResult full = run(false);
  EXPECT_EQ(inc.allocations, full.allocations);
  EXPECT_GT(inc.allocations.size(), 30u);
  ASSERT_GT(full.refresh_ticks, 0u);
  // The full sweep re-reads the whole 30-entry cache every tick; the
  // dirty-id sweep re-reads only what changed.
  EXPECT_EQ(full.entries_refreshed, full.refresh_ticks * 30u);
  EXPECT_LT(inc.entries_refreshed, full.entries_refreshed / 2);
}

// A quiet fleet costs a quiet refresh: with no monitor sweeps and no
// white-pages writes, the dirty-id refresh touches zero entries no
// matter how many ticks elapse.
TEST(PoolRefreshEquivalence, QuietTicksRefreshNothing) {
  simnet::SimKernel kernel;
  simnet::SimNetwork network(&kernel, simnet::Topology::Lan(), 7);
  network.AddHost("alpha", 12);
  db::ResourceDatabase database;
  directory::DirectoryService directory;
  for (int i = 0; i < 20; ++i) {
    db::MachineRecord rec;
    rec.name = "sun" + std::to_string(i);
    rec.params["arch"] = "sun";
    database.Add(std::move(rec));
  }
  auto criteria = query::Parser::ParseBasic("punch.rsrc.arch = sun\n");
  ASSERT_TRUE(criteria.ok());
  ResourcePoolConfig config;
  config.criteria = *criteria;
  config.pool_name = criteria->PoolName();
  config.policy = "least-load";
  config.resort_period = Seconds(1);
  auto pool = std::make_shared<ResourcePool>(config, &database, &directory,
                                             nullptr, nullptr);
  network.AddNode("pool0", pool, {"alpha", 1});
  kernel.RunUntil(Seconds(10));
  EXPECT_GE(pool->stats().refresh_ticks, 9u);
  EXPECT_EQ(pool->stats().entries_refreshed, 0u);
}

TEST(ReservationBookUnit, BookConflictCancelPrune) {
  ReservationBook book;
  EXPECT_TRUE(book.IsFree(1, Seconds(10), Seconds(20)));
  ASSERT_TRUE(book.Book(1, Seconds(10), Seconds(20), "sess-a").ok());
  // Overlapping windows conflict; touching windows do not.
  EXPECT_FALSE(book.IsFree(1, Seconds(15), Seconds(25)));
  EXPECT_FALSE(book.Book(1, Seconds(19), Seconds(21), "sess-b").ok());
  EXPECT_TRUE(book.Book(1, Seconds(20), Seconds(30), "sess-b").ok());
  EXPECT_TRUE(book.Book(2, Seconds(10), Seconds(20), "sess-b").ok());
  EXPECT_EQ(book.total(), 3u);
  EXPECT_EQ(book.CountFor(1), 2u);

  EXPECT_EQ(book.Cancel("sess-b"), 2u);
  EXPECT_TRUE(book.IsFree(1, Seconds(20), Seconds(30)));

  EXPECT_EQ(book.Prune(Seconds(20)), 1u);  // sess-a's window ended
  EXPECT_EQ(book.total(), 0u);
}

TEST(ReservationBookUnit, RejectsBadWindows) {
  ReservationBook book;
  EXPECT_FALSE(book.Book(1, Seconds(10), Seconds(10), "s").ok());
  EXPECT_FALSE(book.Book(1, Seconds(20), Seconds(10), "s").ok());
  EXPECT_FALSE(book.Book(1, Seconds(10), Seconds(20), "").ok());
}

TEST_F(PipelineTest, AdvanceReservationBooksFutureWindow) {
  AddMachines(1, "sun");
  auto pool = MakePool("punch.rsrc.arch = sun\n");
  network_.AddNode("pool0", pool, {"alpha", 1});

  auto reserve = [&](double start_s, std::uint64_t id) {
    return QueryMessage("punch.rsrc.arch = sun\n"
                        "punch.appl.starttime = " +
                            std::to_string(start_s) +
                            "\n"
                            "punch.appl.duration = 100\n",
                        id);
  };
  network_.Post("probe", "pool0", reserve(1000, 1));
  kernel_.Run();
  ASSERT_EQ(probe_->count(net::msg::kAllocation), 1);
  const auto* granted = probe_->last(net::msg::kAllocation);
  EXPECT_EQ(granted->Header("reserved-start"), "1000.000000");
  EXPECT_EQ(pool->stats().reservations, 1u);

  // The single machine is booked for [1000, 1100): an overlapping
  // reservation fails, a later one succeeds.
  network_.Post("probe", "pool0", reserve(1050, 2));
  kernel_.Run();
  EXPECT_EQ(probe_->count(net::msg::kFailure), 1);
  network_.Post("probe", "pool0", reserve(1100, 3));
  kernel_.Run();
  EXPECT_EQ(probe_->count(net::msg::kAllocation), 2);

  // Reservations do not consume present capacity: an immediate query
  // still allocates now.
  network_.Post("probe", "pool0", QueryMessage(kSunQuery, 4));
  kernel_.Run();
  EXPECT_EQ(probe_->count(net::msg::kAllocation), 3);
}

TEST_F(PipelineTest, ReservationCancelFreesWindow) {
  AddMachines(1, "sun");
  auto pool = MakePool("punch.rsrc.arch = sun\n");
  network_.AddNode("pool0", pool, {"alpha", 1});

  network_.Post("probe", "pool0",
                QueryMessage("punch.rsrc.arch = sun\n"
                             "punch.appl.starttime = 500\n"
                             "punch.appl.duration = 1000\n",
                             1));
  kernel_.Run();
  ASSERT_EQ(probe_->count(net::msg::kAllocation), 1);
  const std::string session =
      probe_->last(net::msg::kAllocation)->Header(net::hdr::kSessionKey);

  network_.Post("probe", "pool0", MakeReleaseMessage(0, session));
  kernel_.Run();

  // The freed window can be rebooked.
  network_.Post("probe", "pool0",
                QueryMessage("punch.rsrc.arch = sun\n"
                             "punch.appl.starttime = 600\n"
                             "punch.appl.duration = 100\n",
                             2));
  kernel_.Run();
  EXPECT_EQ(probe_->count(net::msg::kAllocation), 2);
  EXPECT_EQ(probe_->count(net::msg::kFailure), 0);
}

TEST_F(PipelineTest, PastReservationRejected) {
  AddMachines(1, "sun");
  auto pool = MakePool("punch.rsrc.arch = sun\n");
  network_.AddNode("pool0", pool, {"alpha", 1});
  kernel_.RunUntil(Seconds(100));
  network_.Post("probe", "pool0",
                QueryMessage("punch.rsrc.arch = sun\n"
                             "punch.appl.starttime = 50\n"
                             "punch.appl.duration = 10\n"));
  kernel_.RunUntil(Seconds(101));
  EXPECT_EQ(probe_->count(net::msg::kFailure), 1);
}

// --- pool manager ---

TEST_F(PipelineTest, PoolManagerForwardsToExistingPool) {
  AddMachines(4, "sun");
  auto pool = MakePool("punch.rsrc.arch = sun\n");
  network_.AddNode("pool0", pool, {"alpha", 1});

  PoolManagerConfig pm_config;
  pm_config.name = "pm0";
  pm_config.allow_create = false;
  pm_config.allow_delegate = false;
  auto pm = std::make_shared<PoolManager>(pm_config, &directory_);
  network_.AddNode("pm0", pm, {"alpha", 1});

  network_.Post("probe", "pm0", QueryMessage(kSunQuery));
  kernel_.Run();
  EXPECT_EQ(probe_->count(net::msg::kAllocation), 1);
  EXPECT_EQ(pm->stats().forwarded, 1u);
}

TEST_F(PipelineTest, PoolManagerCreatesPoolThroughProxy) {
  AddMachines(6, "sun");

  ProxyConfig proxy_config;
  proxy_config.host = "alpha";
  proxy_config.pool_resort_period = 0;  // keep the event queue drainable
  auto proxy = std::make_shared<ProxyServer>(proxy_config, &network_,
                                             &database_, &directory_,
                                             &shadows_, &policies_);
  network_.AddNode("proxy", proxy, {"alpha", 1});

  PoolManagerConfig pm_config;
  pm_config.name = "pm0";
  pm_config.proxies = {"proxy"};
  auto pm = std::make_shared<PoolManager>(pm_config, &directory_);
  network_.AddNode("pm0", pm, {"alpha", 1});

  network_.Post("probe", "pm0", QueryMessage(kSunQuery));
  kernel_.Run();

  // The pool was created on the fly, answered the query, and is now
  // registered for future queries.
  EXPECT_EQ(probe_->count(net::msg::kAllocation), 1);
  EXPECT_EQ(proxy->stats().pools_created, 1u);
  EXPECT_EQ(directory_.pool_count(), 1u);

  // Second query hits the existing pool (no second creation).
  network_.Post("probe", "pm0", QueryMessage(kSunQuery, 2));
  kernel_.Run();
  EXPECT_EQ(probe_->count(net::msg::kAllocation), 2);
  EXPECT_EQ(proxy->stats().pools_created, 1u);
}

TEST_F(PipelineTest, DistinctSignaturesCreateDistinctPools) {
  AddMachines(4, "sun");
  AddMachines(4, "hp");

  ProxyConfig proxy_config;
  proxy_config.host = "alpha";
  proxy_config.pool_resort_period = 0;  // keep the event queue drainable
  network_.AddNode("proxy",
                   std::make_shared<ProxyServer>(proxy_config, &network_,
                                                 &database_, &directory_,
                                                 &shadows_, &policies_),
                   {"alpha", 1});
  PoolManagerConfig pm_config;
  pm_config.name = "pm0";
  pm_config.proxies = {"proxy"};
  network_.AddNode("pm0", std::make_shared<PoolManager>(pm_config, &directory_),
                   {"alpha", 1});

  network_.Post("probe", "pm0", QueryMessage("punch.rsrc.arch = sun\n", 1));
  network_.Post("probe", "pm0", QueryMessage("punch.rsrc.arch = hp\n", 2));
  network_.Post("probe", "pm0",
                QueryMessage("punch.rsrc.arch = sun\npunch.rsrc.memory = >=256\n", 3));
  kernel_.Run();
  // Three distinct pool names: arch==sun, arch==hp, arch+memory.
  EXPECT_EQ(directory_.PoolNames().size(), 3u);
  // The first two queries allocate. The third maps to a new pool whose
  // criteria overlap arch==sun — but those machines are already marked
  // taken, so its white-pages walk comes up empty and the query fails:
  // claims are exclusive (§5.2.3).
  EXPECT_EQ(probe_->count(net::msg::kAllocation), 2);
  EXPECT_EQ(probe_->count(net::msg::kFailure), 1);
}

TEST_F(PipelineTest, DelegationReachesPeerPoolManager) {
  AddMachines(4, "sun");
  // pm1 owns the pool; pm0 cannot create and must delegate to pm1.
  auto pool = MakePool("punch.rsrc.arch = sun\n");
  network_.AddNode("pool0", pool, {"alpha", 1});

  PoolManagerConfig pm0_config;
  pm0_config.name = "pm0";
  pm0_config.allow_create = false;
  auto pm0 = std::make_shared<PoolManager>(pm0_config, &directory_);

  PoolManagerConfig pm1_config;
  pm1_config.name = "pm1";
  pm1_config.allow_create = false;
  auto pm1 = std::make_shared<PoolManager>(pm1_config, &directory_);

  network_.AddNode("pm0", pm0, {"alpha", 1});
  network_.AddNode("pm1", pm1, {"alpha", 1});

  // Make pm0 blind to the pool: use a second directory for it.
  // (Simpler: both share the directory here, so instead verify the
  // delegation path by sending a query that maps to a missing pool and
  // checking it bounces pm0 -> pm1 -> failure with both visited.)
  network_.Post("probe", "pm0",
                QueryMessage("punch.rsrc.arch = vax\n"));
  kernel_.Run();
  ASSERT_EQ(probe_->count(net::msg::kFailure), 1);
  EXPECT_EQ(pm0->stats().delegated + pm1->stats().delegated, 1u);
  const std::string error =
      probe_->last(net::msg::kFailure)->Header(net::hdr::kError);
  EXPECT_NE(error.find("no unvisited pool manager"), std::string::npos);
}

TEST_F(PipelineTest, TtlBoundsDelegationChain) {
  // Ring of pool managers, none able to create: the query's TTL must
  // stop the walk.
  for (int i = 0; i < 12; ++i) {
    PoolManagerConfig config;
    config.name = "pm" + std::to_string(i);
    config.allow_create = false;
    network_.AddNode(config.name,
                     std::make_shared<PoolManager>(config, &directory_),
                     {"alpha", 1});
  }
  auto q = query::Parser::ParseBasic("punch.rsrc.arch = vax\n");
  ASSERT_TRUE(q.ok());
  q->set_ttl(3);
  net::Message m{net::msg::kQuery};
  m.SetHeader(net::hdr::kReplyTo, "probe");
  m.SetHeader(net::hdr::kRequestId, "9");
  m.body = q->ToText();
  network_.Post("probe", "pm0", std::move(m));
  kernel_.Run();

  ASSERT_EQ(probe_->count(net::msg::kFailure), 1);
  const std::string error =
      probe_->last(net::msg::kFailure)->Header(net::hdr::kError);
  EXPECT_NE(error.find("TTL expired"), std::string::npos);
}

// --- query manager ---

// Fragment bookkeeping travels on headers: QoS duplicates of one
// alternative share a single serialized body (no per-fragment
// actyp.meta.* rewrite), with fragment coordinates, sched hints, and
// the TTL all carried as message headers.
TEST_F(PipelineTest, QueryManagerCarriesFragmentStateOnHeaders) {
  QueryManagerConfig config;
  config.name = "qm";
  config.default_pool_managers = {"probe"};
  config.reintegrator = "probe";
  config.qos_fanout = 2;
  auto qm = std::make_shared<QueryManager>(config);
  network_.AddNode("qm", qm, {"alpha", 1});

  network_.Post("probe", "qm", QueryMessage(kSunQuery, 7));
  kernel_.Run();

  std::vector<const net::Message*> fragments;
  for (const auto& m : probe_->messages) {
    if (m.type == net::msg::kQuery) fragments.push_back(&m);
  }
  ASSERT_EQ(fragments.size(), 2u);
  EXPECT_EQ(fragments[0]->Header(phdr::kFragment), "0/2");
  EXPECT_EQ(fragments[1]->Header(phdr::kFragment), "1/2");
  EXPECT_EQ(fragments[0]->Header(phdr::kSchedHints), "1");
  EXPECT_EQ(fragments[0]->Header(phdr::kTtl), "8");
  EXPECT_EQ(fragments[0]->Header(phdr::kAccessGroup), "ece");
  // A basic query's body is forwarded verbatim — shared across the
  // duplicates, no actyp.meta.* stamped in.
  EXPECT_EQ(fragments[0]->body, fragments[1]->body);
  EXPECT_EQ(fragments[0]->body, kSunQuery);
  EXPECT_EQ(fragments[0]->body.find("actyp.meta."), std::string::npos);
}

// Delegation state travels on headers too: each hop appends itself to
// the visited header, decrements the TTL header, and forwards the body
// untouched.
TEST_F(PipelineTest, DelegationTracksTtlAndVisitedOnHeaders) {
  PoolManagerConfig pm_config;
  pm_config.name = "pm0";
  pm_config.allow_create = false;
  network_.AddNode("pm0",
                   std::make_shared<PoolManager>(pm_config, &directory_),
                   {"alpha", 1});
  // A probe masquerading as the peer pool manager captures the
  // delegated message.
  directory::PoolManagerEntry peer;
  peer.name = "pm-peer";
  peer.address = "probe";
  ASSERT_TRUE(directory_.RegisterPoolManager(peer).ok());

  const std::string body = "punch.rsrc.arch = vax\n";
  network_.Post("probe", "pm0", QueryMessage(body, 5));
  kernel_.Run();

  const auto* delegated = probe_->last(net::msg::kQuery);
  ASSERT_NE(delegated, nullptr);
  EXPECT_EQ(delegated->Header(phdr::kTtl), "7");  // default 8, one hop
  EXPECT_EQ(delegated->Header(phdr::kVisited), "pm0");
  EXPECT_EQ(delegated->body, body);  // no re-serialization
}

TEST_F(PipelineTest, QueryManagerRoutesByParameterRule) {
  AddMachines(3, "sun");
  AddMachines(3, "hp");
  auto sun_pool = MakePool("punch.rsrc.arch = sun\n");
  auto hp_pool = MakePool("punch.rsrc.arch = hp\n");
  network_.AddNode("pool.sun", sun_pool, {"alpha", 1});
  network_.AddNode("pool.hp", hp_pool, {"alpha", 1});

  PoolManagerConfig pm_sun;
  pm_sun.name = "pm.sun";
  pm_sun.allow_create = false;
  pm_sun.allow_delegate = false;
  PoolManagerConfig pm_hp;
  pm_hp.name = "pm.hp";
  pm_hp.allow_create = false;
  pm_hp.allow_delegate = false;
  auto pm_sun_node = std::make_shared<PoolManager>(pm_sun, &directory_);
  auto pm_hp_node = std::make_shared<PoolManager>(pm_hp, &directory_);
  network_.AddNode("pm.sun", pm_sun_node, {"alpha", 1});
  network_.AddNode("pm.hp", pm_hp_node, {"alpha", 1});

  QueryManagerConfig qm_config;
  qm_config.name = "qm0";
  qm_config.rules = {{"arch", "sun", {"pm.sun"}}, {"arch", "hp", {"pm.hp"}}};
  qm_config.default_pool_managers = {"pm.sun"};
  auto qm = std::make_shared<QueryManager>(qm_config);
  network_.AddNode("qm0", qm, {"alpha", 1});

  network_.Post("probe", "qm0", QueryMessage("punch.rsrc.arch = hp\n", 1));
  network_.Post("probe", "qm0", QueryMessage("punch.rsrc.arch = sun\n", 2));
  kernel_.Run();
  EXPECT_EQ(probe_->count(net::msg::kAllocation), 2);
  EXPECT_EQ(pm_hp_node->stats().queries, 1u);
  EXPECT_EQ(pm_sun_node->stats().queries, 1u);
}

TEST_F(PipelineTest, CompositeQueryReintegrates) {
  AddMachines(3, "sun");
  AddMachines(3, "hp");
  network_.AddNode("pool.sun", MakePool("punch.rsrc.arch = sun\n"),
                   {"alpha", 1});
  network_.AddNode("pool.hp", MakePool("punch.rsrc.arch = hp\n"),
                   {"alpha", 1});

  PoolManagerConfig pm_config;
  pm_config.name = "pm0";
  pm_config.allow_create = false;
  pm_config.allow_delegate = false;
  network_.AddNode("pm0",
                   std::make_shared<PoolManager>(pm_config, &directory_),
                   {"alpha", 1});

  ReintegratorConfig reint_config;
  reint_config.name = "reint";
  reint_config.sweep_period = 0;
  auto reint = std::make_shared<Reintegrator>(reint_config);
  network_.AddNode("reint", reint, {"alpha", 1});

  QueryManagerConfig qm_config;
  qm_config.name = "qm0";
  qm_config.default_pool_managers = {"pm0"};
  qm_config.reintegrator = "reint";
  auto qm = std::make_shared<QueryManager>(qm_config);
  network_.AddNode("qm0", qm, {"alpha", 1});

  // "sun or hp": both fragments allocate; the reintegrator forwards the
  // better one and releases the loser.
  network_.Post("probe", "qm0",
                QueryMessage("punch.rsrc.arch = sun|hp\n", 42));
  kernel_.Run();

  EXPECT_EQ(qm->stats().composites, 1u);
  EXPECT_EQ(qm->stats().fragments, 2u);
  ASSERT_EQ(probe_->count(net::msg::kAllocation), 1);
  EXPECT_EQ(reint->stats().completed, 1u);
  EXPECT_EQ(reint->stats().released_duplicates, 1u);
  EXPECT_EQ(reint->open_requests(), 0u);
  // The released machine's pool got its release message.
  EXPECT_EQ(probe_->last(net::msg::kAllocation)
                ->Header(net::hdr::kRequestId),
            "42");
}

TEST_F(PipelineTest, QueryManagerFailsUnroutableQuery) {
  QueryManagerConfig qm_config;
  qm_config.name = "qm0";
  // No rules, no defaults.
  auto qm = std::make_shared<QueryManager>(qm_config);
  network_.AddNode("qm0", qm, {"alpha", 1});
  network_.Post("probe", "qm0", QueryMessage(kSunQuery));
  kernel_.Run();
  EXPECT_EQ(probe_->count(net::msg::kFailure), 1);
  EXPECT_EQ(qm->stats().routing_failures, 1u);
}

TEST_F(PipelineTest, QueryManagerReportsParseErrors) {
  QueryManagerConfig qm_config;
  qm_config.name = "qm0";
  qm_config.default_pool_managers = {"pm0"};
  auto qm = std::make_shared<QueryManager>(qm_config);
  network_.AddNode("qm0", qm, {"alpha", 1});
  network_.Post("probe", "qm0", QueryMessage("garbage query text"));
  kernel_.Run();
  EXPECT_EQ(probe_->count(net::msg::kFailure), 1);
  EXPECT_EQ(qm->stats().parse_failures, 1u);
}

TEST_F(PipelineTest, QueryManagerTranslatorHook) {
  AddMachines(2, "sun");
  network_.AddNode("pool.sun", MakePool("punch.rsrc.arch = sun\n"),
                   {"alpha", 1});
  PoolManagerConfig pm_config;
  pm_config.name = "pm0";
  pm_config.allow_create = false;
  pm_config.allow_delegate = false;
  network_.AddNode("pm0",
                   std::make_shared<PoolManager>(pm_config, &directory_),
                   {"alpha", 1});

  QueryManagerConfig qm_config;
  qm_config.name = "qm0";
  qm_config.default_pool_managers = {"pm0"};
  auto qm = std::make_shared<QueryManager>(qm_config);
  qm->RegisterTranslator("toy", [](const std::string& text) -> Result<std::string> {
    if (text == "want sun") return std::string("punch.rsrc.arch = sun\n");
    return InvalidArgument("toy: cannot translate");
  });
  network_.AddNode("qm0", qm, {"alpha", 1});

  net::Message m = QueryMessage("want sun");
  m.SetHeader("language", "toy");
  network_.Post("probe", "qm0", std::move(m));
  kernel_.Run();
  EXPECT_EQ(probe_->count(net::msg::kAllocation), 1);

  net::Message bad = QueryMessage("want vax", 2);
  bad.SetHeader("language", "toy");
  network_.Post("probe", "qm0", std::move(bad));
  net::Message unknown = QueryMessage("x", 3);
  unknown.SetHeader("language", "martian");
  network_.Post("probe", "qm0", std::move(unknown));
  kernel_.Run();
  EXPECT_EQ(probe_->count(net::msg::kFailure), 2);
  EXPECT_EQ(qm->stats().translation_failures, 2u);
}

// --- split pools (Fig. 7 machinery) ---

TEST_F(PipelineTest, SplitPoolFansOutAndAggregates) {
  AddMachines(8, "sun");
  auto seg0 = MakePool("punch.rsrc.arch = sun\n",
                       [](ResourcePoolConfig& c) {
                         c.instance = 0;
                         c.segment = true;
                         c.claim_name = c.pool_name + "#0";
                         c.claim_limit = 4;
                       });
  network_.AddNode("pool.s0", seg0, {"alpha", 1});
  auto seg1 = MakePool("punch.rsrc.arch = sun\n",
                       [](ResourcePoolConfig& c) {
                         c.instance = 1;
                         c.segment = true;
                         c.claim_name = c.pool_name + "#1";
                         c.claim_limit = 0;
                       });
  network_.AddNode("pool.s1", seg1, {"alpha", 1});
  EXPECT_EQ(seg0->cache_size(), 4u);
  EXPECT_EQ(seg1->cache_size(), 4u);  // disjoint partition

  ReintegratorConfig reint_config;
  reint_config.name = "reint";
  reint_config.sweep_period = 0;
  auto reint = std::make_shared<Reintegrator>(reint_config);
  network_.AddNode("reint", reint, {"alpha", 1});

  PoolManagerConfig pm_config;
  pm_config.name = "pm0";
  pm_config.allow_create = false;
  pm_config.allow_delegate = false;
  pm_config.reintegrator = "reint";
  auto pm = std::make_shared<PoolManager>(pm_config, &directory_);
  network_.AddNode("pm0", pm, {"alpha", 1});

  net::Message m = QueryMessage(kSunQuery, 7);
  m.SetHeader(phdr::kFinalReplyTo, "probe");
  network_.Post("probe", "pm0", std::move(m));
  kernel_.Run();

  EXPECT_EQ(pm->stats().fanouts, 1u);
  EXPECT_EQ(seg0->stats().queries + seg1->stats().queries, 2u);
  ASSERT_EQ(probe_->count(net::msg::kAllocation), 1);
  EXPECT_EQ(reint->stats().released_duplicates, 1u);
}

}  // namespace
}  // namespace actyp::pipeline
