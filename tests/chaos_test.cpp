// Chaos engine tests: regime and fault-plan round-tripping (the
// property the repro bundles rely on), generator determinism, opt-in
// site validation at arm time, every invariant in the catalogue firing
// on a seeded known violation, shrinker convergence to a minimal plan,
// and byte-stable trial replay.
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "actyp/scenario.hpp"
#include "actyp/scenario_registry.hpp"
#include "chaos/chaos_plan.hpp"
#include "chaos/invariants.hpp"
#include "chaos/shrinker.hpp"
#include "chaos/trial.hpp"
#include "chaos/workload_regime.hpp"
#include "common/config.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "simnet/kernel.hpp"
#include "simnet/sim_network.hpp"

namespace actyp {
namespace {

using chaos::ChaosPlanGenerator;
using chaos::ChaosRanges;
using chaos::ChaosTrial;
using chaos::InvariantChecker;
using chaos::Shrinker;
using chaos::TrialParams;
using chaos::Violation;
using chaos::WorkloadRegime;
using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultPlan;

bool HasInvariant(const std::vector<Violation>& violations,
                  std::string_view name) {
  for (const Violation& violation : violations) {
    if (violation.invariant == name) return true;
  }
  return false;
}

std::string DetailOf(const std::vector<Violation>& violations,
                     std::string_view name) {
  for (const Violation& violation : violations) {
    if (violation.invariant == name) return violation.detail;
  }
  return "";
}

// A regime small enough that a full trial (warmup + measure + drain)
// runs in well under a second of host time at time_scale 0.2.
WorkloadRegime SmallRegime() {
  WorkloadRegime regime;
  regime.machines = 100;
  regime.clusters = 1;
  regime.clients = 4;
  regime.query_managers = 1;
  return regime;
}

TrialParams FastParams() {
  TrialParams params;
  params.time_scale = 0.2;
  return params;
}

// --- round-tripping: the property the repro bundles rely on ---

TEST(WorkloadRegime, SerializeRoundTripsDefaults) {
  const WorkloadRegime regime;
  const auto reparsed = WorkloadRegime::Parse(regime.Serialize());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed.value(), regime);
}

TEST(WorkloadRegime, ParseRejectsMalformedInput) {
  EXPECT_FALSE(WorkloadRegime::Parse("machines").ok());
  EXPECT_FALSE(WorkloadRegime::Parse("machines=oops").ok());
  EXPECT_FALSE(WorkloadRegime::Parse("cpus=4").ok());
  EXPECT_FALSE(WorkloadRegime::Parse("machines=0").ok());
  EXPECT_FALSE(WorkloadRegime::Parse("sync_period=0").ok());
  EXPECT_FALSE(WorkloadRegime::Parse("hot_fraction=1.5").ok());
}

// Property test over the generator's whole output space: every regime
// and every fault plan a trial can be built from must survive the text
// round-trip value-exactly (the generator quantizes magnitudes so %g
// serialization is lossless).
TEST(ChaosPlanGenerator, GeneratedTrialsRoundTripThroughText) {
  const ChaosPlanGenerator generator(ChaosRanges{}, 8.0);
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const ChaosTrial trial = generator.Generate(seed);

    const auto regime = WorkloadRegime::Parse(trial.regime.Serialize());
    ASSERT_TRUE(regime.ok()) << "seed " << seed;
    EXPECT_EQ(regime.value(), trial.regime) << "seed " << seed;

    const auto plan = FaultPlan::Parse(trial.plan.Serialize());
    ASSERT_TRUE(plan.ok()) << "seed " << seed << ": "
                           << plan.status().ToString();
    EXPECT_EQ(plan.value(), trial.plan) << "seed " << seed;

    // The config embedding (repro bundles) is an exact inverse too.
    const auto from_config = FaultPlan::FromConfig(trial.plan.ToConfig());
    ASSERT_TRUE(from_config.ok()) << "seed " << seed;
    EXPECT_EQ(from_config.value(), trial.plan) << "seed " << seed;
  }
}

TEST(ChaosPlanGenerator, IsDeterministic) {
  const ChaosPlanGenerator generator(ChaosRanges{}, 8.0);
  EXPECT_EQ(generator.Generate(42), generator.Generate(42));
  EXPECT_NE(generator.Generate(42), generator.Generate(43));
}

TEST(ChaosPlanGenerator, HostileModeEmitsWedgeRegimes) {
  ChaosRanges ranges;
  ranges.hostile = true;
  const ChaosPlanGenerator generator(ranges, 8.0);
  bool saw_zero_timeout = false;
  for (std::uint64_t seed = 1; seed <= 32 && !saw_zero_timeout; ++seed) {
    saw_zero_timeout = generator.Generate(seed).regime.request_timeout_s == 0;
  }
  EXPECT_TRUE(saw_zero_timeout);
}

// --- site validation at arm time (opt-in) ---

TEST(FaultInjector, RejectsUnknownSiteOnceSitesAreRegistered) {
  simnet::SimKernel kernel;
  simnet::SimNetwork network(&kernel, simnet::Topology::Lan(), 1);
  FaultInjector injector(&kernel, &network, 7);
  const auto plan = FaultPlan::Parse(
      "partition start=1 end=2 site_a=purdue site_b=bogus\n");
  ASSERT_TRUE(plan.ok());

  // Legacy behavior: an injector that never registered sites arms
  // anything (bare-injector tests rely on this).
  EXPECT_TRUE(injector.Arm(plan.value()).ok());

  FaultInjector checked(&kernel, &network, 7);
  checked.RegisterSite("purdue");
  checked.RegisterSite("upc");
  const Status status = checked.Arm(plan.value());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("unknown site"), std::string::npos);
  EXPECT_NE(status.ToString().find("bogus"), std::string::npos);

  // Known sites and wildcards still arm.
  const auto known = FaultPlan::Parse(
      "partition start=1 end=2 site_a=purdue site_b=upc\n"
      "latency start=1 end=2 extra_ms=5 site_a=* site_b=*\n");
  ASSERT_TRUE(known.ok());
  EXPECT_TRUE(checked.Arm(known.value()).ok());
}

TEST(FaultScenario, SurfacesUnknownSitePlanViaFaultStatus) {
  ScenarioConfig config;
  config.machines = 100;
  config.clusters = 1;
  config.clients = 2;
  const auto plan = FaultPlan::Parse(
      "latency start=1 end=2 extra_ms=10 site_a=nowhere site_b=local\n");
  ASSERT_TRUE(plan.ok());
  config.fault_plan = plan.value();
  SimScenario scenario(std::move(config));
  ASSERT_FALSE(scenario.fault_status().ok());
  EXPECT_NE(scenario.fault_status().ToString().find("unknown site"),
            std::string::npos);
}

// --- invariant catalogue: pure helpers ---

TEST(InvariantChecker, TimerAccountingHelper) {
  EXPECT_FALSE(InvariantChecker::CheckTimerAccounting(10, 5, 2, 3));
  const auto violation = InvariantChecker::CheckTimerAccounting(10, 5, 2, 2);
  ASSERT_TRUE(violation);
  EXPECT_EQ(violation->invariant, "timer-conservation");
}

TEST(InvariantChecker, SuccessFloorHelper) {
  EXPECT_FALSE(InvariantChecker::CheckSuccessFloor(9, 1, 0.5));
  EXPECT_FALSE(InvariantChecker::CheckSuccessFloor(0, 0, 0.5));
  EXPECT_FALSE(InvariantChecker::CheckSuccessFloor(1, 9, 0.0));
  const auto violation = InvariantChecker::CheckSuccessFloor(1, 9, 0.5);
  ASSERT_TRUE(violation);
  EXPECT_EQ(violation->invariant, "success-floor");
  EXPECT_NE(violation->detail.find("0.100"), std::string::npos);
}

// --- invariant catalogue: end-to-end trials ---

TEST(ChaosTrial, CleanTrialReportsNoViolations) {
  ChaosTrial trial;
  trial.seed = 11;
  trial.regime = SmallRegime();
  const auto outcome = chaos::RunTrial(trial, FastParams());
  EXPECT_TRUE(outcome.violations.empty())
      << chaos::FormatViolations(outcome.violations);
  EXPECT_GT(outcome.completed, 0u);
}

// The seeded known violation: a zero give-up timer under total loss
// strands the closed loop — request conservation catches the wedge.
TEST(ChaosTrial, ZeroTimeoutUnderLossViolatesRequestConservation) {
  ChaosTrial trial;
  trial.seed = 11;
  trial.regime = SmallRegime();
  trial.regime.request_timeout_s = 0;
  trial.regime.retry_max = 0;
  const auto plan = FaultPlan::Parse("loss start=0.5 end=1.5 p=1\n");
  ASSERT_TRUE(plan.ok());
  trial.plan = plan.value();
  const auto outcome = chaos::RunTrial(trial, FastParams());
  EXPECT_TRUE(HasInvariant(outcome.violations, "request-conservation"))
      << chaos::FormatViolations(outcome.violations);
  EXPECT_NE(DetailOf(outcome.violations, "request-conservation")
                .find("client"),
            std::string::npos);
}

TEST(ChaosTrial, UnarmablePlanIsItselfAViolation) {
  ChaosTrial trial;
  trial.seed = 11;
  trial.regime = SmallRegime();
  const auto plan = FaultPlan::Parse("crash at=1 target=no_such_service\n");
  ASSERT_TRUE(plan.ok());
  trial.plan = plan.value();
  const auto outcome = chaos::RunTrial(trial, FastParams());
  ASSERT_TRUE(HasInvariant(outcome.violations, "fault-plan-arm"));
}

TEST(InvariantChecker, DetectsLeakedClaim) {
  ScenarioConfig config;
  config.machines = 100;
  config.clusters = 1;
  config.clients = 4;
  config.seed = 11;
  SimScenario scenario(std::move(config));
  scenario.RunUntil(Seconds(2));

  InvariantChecker checker;
  const InvariantChecker::Options options;
  EXPECT_FALSE(HasInvariant(checker.Check(scenario, options), "leaked-claim"));

  // Forge a claim no live pool instance owns.
  db::MachineId victim = 0;
  scenario.database().ForEach([&victim](const db::MachineRecord& record) {
    if (victim == 0) victim = record.id;
  });
  ASSERT_NE(victim, 0u);
  ASSERT_TRUE(scenario.database()
                  .Update(victim,
                          [](db::MachineRecord& record) {
                            record.taken_by = "ghost-pool";
                          })
                  .ok());

  const auto violations = checker.Check(scenario, options);
  ASSERT_TRUE(HasInvariant(violations, "leaked-claim"));
  EXPECT_NE(DetailOf(violations, "leaked-claim").find("ghost-pool"),
            std::string::npos);
}

TEST(InvariantChecker, DetectsLeakedSessionAndHeldAllocation) {
  ScenarioConfig config;
  config.machines = 100;
  config.clusters = 1;
  config.clients = 4;
  config.seed = 11;
  // Jobs that outlive the run: allocations never release, so pools hold
  // open sessions and clients hold allocations at drain time.
  config.job_duration = [](Rng&) { return Seconds(500); };
  config.client_horizon = Seconds(2);
  SimScenario scenario(std::move(config));
  scenario.RunUntil(Seconds(5));

  InvariantChecker checker;
  const auto violations = checker.Check(scenario, InvariantChecker::Options{});
  EXPECT_TRUE(HasInvariant(violations, "leaked-session"))
      << chaos::FormatViolations(violations);
  EXPECT_NE(DetailOf(violations, "request-conservation").find("holds"),
            std::string::npos);
}

TEST(InvariantChecker, DetectsDivergedReplicaGroup) {
  ScenarioConfig config;
  config.machines = 100;
  config.clusters = 1;
  config.clients = 4;
  config.directory_replicas = 2;
  config.seed = 11;
  SimScenario scenario(std::move(config));
  scenario.RunUntil(Seconds(2));

  // Crash and immediately restore a replica: it comes back empty, so the
  // group is diverged until its next anti-entropy pull — which the
  // checker must flag when judged before that pull.
  ASSERT_NE(scenario.replica_group(), nullptr);
  scenario.replica_group()->Crash(0);
  scenario.replica_group()->Restore(0);
  InvariantChecker checker;
  const auto violations = checker.Check(scenario, InvariantChecker::Options{});
  EXPECT_TRUE(HasInvariant(violations, "replica-convergence"))
      << chaos::FormatViolations(violations);
}

// --- shrinker ---

TEST(Shrinker, ConvergesToTheMinimalFailingPlan) {
  ChaosTrial trial;
  trial.seed = 11;
  trial.regime = SmallRegime();
  trial.regime.request_timeout_s = 0;
  trial.regime.retry_max = 0;
  // Only the loss window causes the wedge; the crash and the churn are
  // noise the shrinker must strip.
  const auto plan = FaultPlan::Parse(
      "loss start=0.5 end=1.5 p=0.9\n"
      "crash at=0.6 target=machines count=8 downtime=0.2\n"
      "churn start=0.5 end=1.4 rate=2 downtime=0.1 target=machines\n");
  ASSERT_TRUE(plan.ok());
  trial.plan = plan.value();

  const TrialParams params = FastParams();
  const Shrinker shrinker(
      [&params](const ChaosTrial& candidate) {
        return chaos::RunTrial(candidate, params).violations;
      },
      48);
  const Shrinker::Result result = shrinker.Shrink(trial);
  ASSERT_TRUE(result.reproduced);
  EXPECT_EQ(result.invariant, "request-conservation");
  ASSERT_EQ(result.trial.plan.events.size(), 1u);
  EXPECT_EQ(result.trial.plan.events[0].kind, FaultKind::kLoss);
  EXPECT_GT(result.runs, 1u);
  // The accepted plan is serialization-stable by construction.
  const auto reparsed = FaultPlan::Parse(result.trial.plan.Serialize());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value(), result.trial.plan);
}

TEST(Shrinker, ReportsUnreproducedWhenTheTrialIsClean) {
  ChaosTrial trial;
  trial.seed = 11;
  trial.regime = SmallRegime();
  std::size_t calls = 0;
  const Shrinker shrinker(
      [&calls](const ChaosTrial&) {
        ++calls;
        return std::vector<Violation>{};
      },
      8);
  const Shrinker::Result result = shrinker.Shrink(trial);
  EXPECT_FALSE(result.reproduced);
  EXPECT_EQ(calls, 1u);
}

// --- deterministic replay and the repro bundle ---

TEST(ChaosTrial, ReplaysByteIdentically) {
  const ChaosPlanGenerator generator(ChaosRanges{},
                                     chaos::ActiveWindowSeconds(FastParams()));
  const ChaosTrial trial = generator.Generate(7);
  const auto first = chaos::RunTrial(trial, FastParams());
  const auto second = chaos::RunTrial(trial, FastParams());
  EXPECT_EQ(first.violations, second.violations);
  EXPECT_EQ(first.completed, second.completed);
  EXPECT_EQ(first.failures, second.failures);
  EXPECT_EQ(first.lost, second.lost);
  EXPECT_EQ(first.retries, second.retries);
  EXPECT_DOUBLE_EQ(first.mean_s, second.mean_s);
}

TEST(ChaosTrial, ReproBundleCarriesTheFullTrial) {
  const ChaosPlanGenerator generator(ChaosRanges{}, 8.0);
  const ChaosTrial trial = generator.Generate(7);
  TrialParams params;
  params.time_scale = 0.2;
  params.quiesce_floor_s = 1.5;

  const auto config = Config::Parse(chaos::ReproBundleText(trial, params));
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->GetOr("scenario", ""), "chaos_cell");
  EXPECT_EQ(config->GetInt("seed", 0), 7);
  EXPECT_DOUBLE_EQ(config->GetDouble("time-scale", 0), 0.2);
  EXPECT_DOUBLE_EQ(config->GetDouble("quiesce", 0), 1.5);
  EXPECT_TRUE(config->GetBool("stable", false));

  const auto plan = FaultPlan::FromConfig(config.value());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan.value(), trial.plan);
  const auto regime = WorkloadRegime::Parse(config->GetOr("regime", ""));
  ASSERT_TRUE(regime.ok()) << regime.status().ToString();
  EXPECT_EQ(regime.value(), trial.regime);
}

TEST(ChaosCell, RegisteredScenarioReplaysATrial) {
  const ScenarioInfo* info = ScenarioRegistry::Instance().Find("chaos_cell");
  ASSERT_NE(info, nullptr);
  ScenarioRunOptions options;
  options.seed = 11;
  options.time_scale = 0.2;
  options.stable = true;
  options.regime_text = SmallRegime().Serialize();
  const ScenarioReport report = info->run(options);
  ASSERT_EQ(report.cells.size(), 1u);
  EXPECT_EQ(report.note, "no invariant violations");
}

}  // namespace
}  // namespace actyp
