// Unit tests for the common substrate: status/result, strings, config,
// RNG, statistics, queues, thread pool, clocks.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/config.hpp"
#include "common/mpsc_queue.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"

namespace actyp {
namespace {

// --- Status / Result ---

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = NotFound("machine m1");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: machine m1");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = InvalidArgument("bad");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  auto owned = std::move(r).value();
  EXPECT_EQ(*owned, 7);
}

// --- strings ---

TEST(Strings, SplitBasic) {
  EXPECT_EQ(Split("a:b:c", ':'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ':'), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a::c", ':'), (std::vector<std::string>{"a", "", "c"}));
}

TEST(Strings, SplitSkipEmptyDropsBlanks) {
  EXPECT_EQ(SplitSkipEmpty(":a::b:", ':'),
            (std::vector<std::string>{"a", "b"}));
}

TEST(Strings, JoinInvertsSplit) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(Strings, TrimRemovesOuterWhitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(Strings, ToLowerAscii) { EXPECT_EQ(ToLower("SPARC-Ultra"), "sparc-ultra"); }

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("punch.rsrc.arch", "punch."));
  EXPECT_FALSE(StartsWith("punch", "punch."));
  EXPECT_TRUE(EndsWith("pool.alpha.3", ".3"));
  EXPECT_FALSE(EndsWith("x", "xx"));
}

TEST(Strings, ParseIntAccepts) {
  EXPECT_EQ(ParseInt("42"), 42);
  EXPECT_EQ(ParseInt(" -7 "), -7);
  EXPECT_FALSE(ParseInt("4x").has_value());
  EXPECT_FALSE(ParseInt("").has_value());
  EXPECT_FALSE(ParseInt("3.5").has_value());
}

TEST(Strings, ParseDoubleAccepts) {
  EXPECT_DOUBLE_EQ(*ParseDouble("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("1e3"), 1000.0);
  EXPECT_FALSE(ParseDouble("sun").has_value());
  EXPECT_FALSE(ParseDouble("1.2.3").has_value());
}

struct GlobCase {
  const char* pattern;
  const char* text;
  bool match;
};

class GlobTest : public ::testing::TestWithParam<GlobCase> {};

TEST_P(GlobTest, Matches) {
  const auto& c = GetParam();
  EXPECT_EQ(GlobMatch(c.pattern, c.text), c.match)
      << c.pattern << " vs " << c.text;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, GlobTest,
    ::testing::Values(
        GlobCase{"*", "", true}, GlobCase{"*", "anything", true},
        GlobCase{"sun", "SUN", true},  // case-insensitive
        GlobCase{"sun", "sunx", false}, GlobCase{"sun*", "sun-ultra", true},
        GlobCase{"*ultra*", "sparc-ultra-5", true},
        GlobCase{"u?tra", "ultra", true}, GlobCase{"u?tra", "utra", false},
        GlobCase{"a*b*c", "axxbyyc", true}, GlobCase{"a*b*c", "acb", false},
        GlobCase{"", "", true}, GlobCase{"", "x", false}));

// --- config ---

TEST(Config, ParsesSectionsAndComments) {
  auto config = Config::Parse(
      "# comment\n"
      "top = 1\n"
      "[pool]\n"
      "size = 3200   # trailing\n"
      "policy = least-load\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->GetInt("top", 0), 1);
  EXPECT_EQ(config->GetInt("pool.size", 0), 3200);
  EXPECT_EQ(config->GetOr("pool.policy", ""), "least-load");
  EXPECT_FALSE(config->Has("missing"));
}

TEST(Config, TypedAccessorsFallBack) {
  Config config;
  config.Set("flag", "true");
  config.Set("bad", "zzz");
  EXPECT_TRUE(config.GetBool("flag", false));
  EXPECT_FALSE(config.GetBool("missing", false));
  EXPECT_EQ(config.GetInt("bad", 9), 9);
  EXPECT_DOUBLE_EQ(config.GetDouble("bad", 1.5), 1.5);
}

TEST(Config, RejectsMalformedLines) {
  EXPECT_FALSE(Config::Parse("novalue\n").ok());
  EXPECT_FALSE(Config::Parse("[unterminated\n").ok());
  EXPECT_FALSE(Config::Parse("= x\n").ok());
}

TEST(Config, SerializeRoundTrips) {
  Config config;
  config.Set("a.b", "1");
  config.Set("c", "hello world");
  auto reparsed = Config::Parse(config.Serialize());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->entries(), config.entries());
}

// --- rng ---

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIndependentOfParentUse) {
  Rng parent(7);
  Rng child = parent.Fork();
  const std::uint64_t child_first = child.Next();
  // Re-derive: same parent state sequence gives the same child.
  Rng parent2(7);
  Rng child2 = parent2.Fork();
  EXPECT_EQ(child2.Next(), child_first);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBoundedCoversRange) {
  Rng rng(42);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(10));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.rbegin(), 9u);
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Gaussian(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(12);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Exponential(3.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.1);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.Pareto(10.0, 1.5), 10.0);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(14);
  std::vector<double> weights{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(15);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = items;
  rng.Shuffle(copy);
  std::multiset<int> a(items.begin(), items.end());
  std::multiset<int> b(copy.begin(), copy.end());
  EXPECT_EQ(a, b);
}

// --- stats ---

TEST(RunningStats, BasicMoments) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  Rng rng(16);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Gaussian();
    all.Add(x);
    (i % 2 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(Histogram, BucketsAndEdges) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.0);
  h.Add(0.5);
  h.Add(9.99);
  h.Add(10.0);   // overflow -> last bucket
  h.Add(-1.0);   // underflow -> first bucket
  EXPECT_EQ(h.bucket(0), 3u);
  EXPECT_EQ(h.bucket(9), 2u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(3), 4.0);
}

TEST(Histogram, RenderShowsBars) {
  Histogram h(0, 2, 2);
  h.Add(0.5);
  h.Add(0.6);
  h.Add(1.5);
  const std::string out = h.Render(10);
  EXPECT_NE(out.find("##########"), std::string::npos);
}

TEST(QuantileSampler, ExactSmall) {
  QuantileSampler q;
  for (int i = 1; i <= 100; ++i) q.Add(i);
  EXPECT_NEAR(q.Quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(q.Quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(q.Quantile(0.5), 50.5, 1e-9);
}

TEST(QuantileSampler, ReservoirApproximatesLarge) {
  QuantileSampler q(1024);
  for (int i = 0; i < 100000; ++i) q.Add(i % 1000);
  EXPECT_NEAR(q.Quantile(0.5), 500, 60);
}

// --- queue & thread pool ---

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.Pop(), 3);
}

TEST(BlockingQueue, CloseDrainsThenEnds) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Close();
  EXPECT_FALSE(q.Push(2));
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueue, TryPopEmpty) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BlockingQueue, BoundedTryPushRejectsWhenFull) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  q.Pop();
  EXPECT_TRUE(q.TryPush(3));
}

TEST(BlockingQueue, CrossThreadDelivery) {
  BlockingQueue<int> q;
  std::thread producer([&q] {
    for (int i = 0; i < 100; ++i) q.Push(i);
    q.Close();
  });
  int count = 0;
  while (q.Pop()) ++count;
  producer.join();
  EXPECT_EQ(count, 100);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) pool.Submit([&counter] { ++counter; });
  pool.Drain();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, DrainWaitsForInFlight) {
  ThreadPool pool(2);
  std::atomic<bool> done{false};
  pool.Submit([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    done = true;
  });
  pool.Drain();
  EXPECT_TRUE(done.load());
}

// Multi-producer stress: the scenario driver leans on Submit from the
// sweep fan-out while Drain waits; every counted task must run exactly
// once and Drain must never hang on a lost wakeup.
TEST(ThreadPool, MultiProducerSubmitStress) {
  constexpr int kProducers = 8;
  constexpr int kTasksPerProducer = 2000;
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &executed] {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        pool.Submit([&executed] {
          executed.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& producer : producers) producer.join();
  pool.Drain();
  EXPECT_EQ(executed.load(), kProducers * kTasksPerProducer);
}

// Drain called repeatedly and concurrently while producers are active:
// each call must return (momentary idle) without deadlocking.
TEST(ThreadPool, ConcurrentDrainsReturn) {
  ThreadPool pool(3);
  std::atomic<int> executed{0};
  std::thread producer([&pool, &executed] {
    for (int i = 0; i < 500; ++i) {
      pool.Submit([&executed] {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
  });
  std::vector<std::thread> drainers;
  for (int d = 0; d < 3; ++d) {
    drainers.emplace_back([&pool] {
      for (int i = 0; i < 10; ++i) pool.Drain();
    });
  }
  producer.join();
  for (auto& drainer : drainers) drainer.join();
  pool.Drain();
  EXPECT_EQ(executed.load(), 500);
}

// Tasks submitting more tasks: Drain must cover the transitively
// spawned work, not just the directly submitted tasks.
TEST(ThreadPool, DrainCoversTasksSpawnedByTasks) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&pool, &executed] {
      executed.fetch_add(1, std::memory_order_relaxed);
      pool.Submit([&executed] {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  pool.Drain();
  EXPECT_EQ(executed.load(), 100);
}

// Shutdown race: destruction with queued work runs everything already
// accepted before joining (the queue drains before workers exit).
TEST(ThreadPool, DestructorRunsAcceptedTasks) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&executed] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  EXPECT_EQ(executed.load(), 64);
}

// --- clocks ---

TEST(ManualClock, AdvanceAndSet) {
  ManualClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.Now(), 150);
  clock.Set(10);
  EXPECT_EQ(clock.Now(), 10);
}

TEST(WallClock, MonotonicNonDecreasing) {
  WallClock clock;
  const SimTime a = clock.Now();
  const SimTime b = clock.Now();
  EXPECT_LE(a, b);
}

TEST(SimTimeHelpers, Conversions) {
  EXPECT_EQ(Millis(3), 3000);
  EXPECT_EQ(Seconds(1.5), 1500000);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(ToMillis(Millis(7)), 7.0);
}

}  // namespace
}  // namespace actyp
