// Trace-assembly subsystem tests: joining interleaved span streams
// into per-request waterfalls, critical-path attribution, background
// span separation (replica sync / monitor sweeps), tail digests,
// deterministic sink draining (the --jobs independence guarantee),
// Chrome trace-event output well-formedness, the streaming metrics
// writer, and end-to-end coverage of the new replica_sync /
// monitor_sweep stages through a replicated scenario.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "actyp/scenario.hpp"
#include "profile/metrics_exporter.hpp"
#include "profile/stage_profiler.hpp"
#include "profile/trace_assembler.hpp"

namespace actyp::profile {
namespace {

SpanRecord Span(std::uint64_t id, Stage stage, SimTime enter, SimTime exit) {
  return SpanRecord{id, stage, enter, exit};
}

TEST(BackgroundIdScheme, RoundTripsAndNeverCollidesWithRequests) {
  const std::uint64_t id = BackgroundId(Stage::kReplicaSync, 3);
  EXPECT_TRUE(IsBackgroundId(id));
  EXPECT_EQ(BackgroundInstance(id), 3u);
  // Request ids are (client << 32 | seq) with bit 63 clear.
  const std::uint64_t request = (7ull << 32) | 123;
  EXPECT_FALSE(IsBackgroundId(request));
  EXPECT_NE(BackgroundId(Stage::kReplicaSync, 0),
            BackgroundId(Stage::kMonitorSweep, 0));
}

TEST(StageNameTest, CoversNewBackgroundStages) {
  EXPECT_EQ(StageName(Stage::kReplicaSync), "replica_sync");
  EXPECT_EQ(StageName(Stage::kMonitorSweep), "monitor_sweep");
  EXPECT_EQ(kStageCount, 8u);
}

TEST(TraceAssemblerTest, JoinsInterleavedRequestsOnRequestId) {
  // Two requests whose spans arrive interleaved (the ring is in record
  // order, and concurrent requests interleave freely).
  const std::vector<SpanRecord> spans = {
      Span(2, Stage::kQmAdmit, 100, 150),
      Span(1, Stage::kClientIssue, 0, 500),
      Span(2, Stage::kClientIssue, 90, 400),
      Span(1, Stage::kQmAdmit, 10, 40),
      Span(2, Stage::kPoolSelect, 160, 300),
      Span(1, Stage::kPoolSelect, 50, 200),
      Span(1, Stage::kReply, 210, 230),
  };
  const AssembledTraces assembled = TraceAssembler::Assemble(spans);
  ASSERT_EQ(assembled.requests.size(), 2u);
  EXPECT_TRUE(assembled.background.empty());
  const RequestTrace& first = assembled.requests[0];
  EXPECT_EQ(first.request_id, 1u);
  ASSERT_EQ(first.spans.size(), 4u);
  // Spans are re-sorted into time order regardless of arrival order.
  EXPECT_EQ(first.spans[0].stage, Stage::kClientIssue);
  EXPECT_EQ(first.spans[1].stage, Stage::kQmAdmit);
  EXPECT_EQ(first.spans[2].stage, Stage::kPoolSelect);
  EXPECT_EQ(first.spans[3].stage, Stage::kReply);
  EXPECT_EQ(first.start, 0);
  EXPECT_EQ(first.end, 500);
  EXPECT_DOUBLE_EQ(first.duration_s, 500e-6);
  const RequestTrace& second = assembled.requests[1];
  EXPECT_EQ(second.request_id, 2u);
  ASSERT_EQ(second.spans.size(), 3u);
  EXPECT_EQ(second.start, 90);
  EXPECT_EQ(second.end, 400);
}

TEST(TraceAssemblerTest, RetryHopsStayInTimeOrderWithinOneRequest) {
  // A retried request records the same stage twice; the waterfall must
  // keep both hops, time-ordered.
  const std::vector<SpanRecord> spans = {
      Span(5, Stage::kClientIssue, 0, 1000),
      Span(5, Stage::kQmAdmit, 700, 750),  // retry hop, recorded later
      Span(5, Stage::kQmAdmit, 10, 60),    // first attempt
  };
  const AssembledTraces assembled = TraceAssembler::Assemble(spans);
  ASSERT_EQ(assembled.requests.size(), 1u);
  const RequestTrace& trace = assembled.requests[0];
  ASSERT_EQ(trace.spans.size(), 3u);
  EXPECT_EQ(trace.spans[1].t_enter, 10);
  EXPECT_EQ(trace.spans[2].t_enter, 700);
  // Both hops fold into the stage total.
  EXPECT_EQ(trace.stage_total[static_cast<std::size_t>(Stage::kQmAdmit)], 100);
}

TEST(TraceAssemblerTest, AttributionPicksLargestNonUmbrellaStage) {
  const std::vector<SpanRecord> spans = {
      Span(1, Stage::kClientIssue, 0, 1000),  // umbrella, excluded
      Span(1, Stage::kQmAdmit, 10, 60),       // 50
      Span(1, Stage::kPoolSelect, 70, 370),   // 300 <- critical path
      Span(1, Stage::kReply, 380, 480),       // 100
  };
  const AssembledTraces assembled = TraceAssembler::Assemble(spans);
  ASSERT_EQ(assembled.requests.size(), 1u);
  const RequestTrace& trace = assembled.requests[0];
  EXPECT_EQ(trace.top_stage, Stage::kPoolSelect);
  EXPECT_DOUBLE_EQ(trace.top_share, 300.0 / 450.0);
}

TEST(TraceAssemblerTest, AttributionTiesGoToTheEarlierStage) {
  const std::vector<SpanRecord> spans = {
      Span(1, Stage::kReply, 100, 200),  // 100
      Span(1, Stage::kQmAdmit, 0, 100),  // 100, earlier pipeline stage
  };
  const AssembledTraces assembled = TraceAssembler::Assemble(spans);
  EXPECT_EQ(assembled.requests[0].top_stage, Stage::kQmAdmit);
}

TEST(TraceAssemblerTest, UmbrellaOnlyTraceAttributesNothing) {
  const std::vector<SpanRecord> spans = {
      Span(1, Stage::kClientIssue, 0, 1000),
  };
  const AssembledTraces assembled = TraceAssembler::Assemble(spans);
  const RequestTrace& trace = assembled.requests[0];
  EXPECT_EQ(trace.top_stage, Stage::kClientIssue);
  EXPECT_DOUBLE_EQ(trace.top_share, 0.0);
}

TEST(TraceAssemblerTest, BackgroundSpansSplitOutAndSortByTime) {
  const std::uint64_t sync0 = BackgroundId(Stage::kReplicaSync, 0);
  const std::uint64_t sweep = BackgroundId(Stage::kMonitorSweep, 0);
  const std::vector<SpanRecord> spans = {
      Span(sweep, Stage::kMonitorSweep, 5000, 5150),
      Span(1, Stage::kClientIssue, 0, 400),
      Span(sync0, Stage::kReplicaSync, 1000, 1120),
      Span(1, Stage::kQmAdmit, 10, 50),
  };
  const AssembledTraces assembled = TraceAssembler::Assemble(spans);
  ASSERT_EQ(assembled.requests.size(), 1u);
  EXPECT_EQ(assembled.requests[0].spans.size(), 2u);
  ASSERT_EQ(assembled.background.size(), 2u);
  EXPECT_EQ(assembled.background[0].stage, Stage::kReplicaSync);
  EXPECT_EQ(assembled.background[1].stage, Stage::kMonitorSweep);
}

TEST(TraceAssemblerTest, TailReportDigestsTheSlowestFraction) {
  // 40 traces: ids 1..40, durations 10 us * id; the slowest 5% window
  // is ceil(0.05 * 40) = 2 traces (ids 40, 39). Make pool_select the
  // dominant stage in the tail.
  std::vector<SpanRecord> spans;
  for (std::uint64_t id = 1; id <= 40; ++id) {
    const auto end = static_cast<SimTime>(10 * id);
    spans.push_back(Span(id, Stage::kClientIssue, 0, end));
    spans.push_back(Span(id, Stage::kPoolSelect, 0, end / 2));
    spans.push_back(Span(id, Stage::kReply, end / 2, end / 2 + 2));
  }
  const AssembledTraces assembled = TraceAssembler::Assemble(spans);
  ASSERT_EQ(assembled.requests.size(), 40u);
  const TailReport tail = TraceAssembler::Tail(assembled.requests);
  EXPECT_EQ(tail.trace_count, 40u);
  EXPECT_EQ(tail.slow_count, 2u);
  EXPECT_EQ(tail.slow_top_stage, static_cast<int>(Stage::kPoolSelect));
  // Shares cover the attributed (non-umbrella) time and sum to 1.
  double total = 0;
  for (const double share : tail.tail_share) {
    total += share;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_GT(tail.tail_share[static_cast<std::size_t>(Stage::kPoolSelect)],
            tail.tail_share[static_cast<std::size_t>(Stage::kReply)]);
}

TEST(TraceAssemblerTest, TailReportOnNothingReportsNoStage) {
  const TailReport tail = TraceAssembler::Tail({});
  EXPECT_EQ(tail.trace_count, 0u);
  EXPECT_EQ(tail.slow_count, 0u);
  EXPECT_EQ(tail.slow_top_stage, -1);
}

TEST(TraceAssemblerTest, TailAlwaysIncludesAtLeastOneTrace) {
  const std::vector<SpanRecord> spans = {
      Span(9, Stage::kClientIssue, 0, 100),
      Span(9, Stage::kReply, 10, 20),
  };
  const AssembledTraces assembled = TraceAssembler::Assemble(spans);
  const TailReport tail = TraceAssembler::Tail(assembled.requests, 0.01);
  EXPECT_EQ(tail.slow_count, 1u);
  EXPECT_EQ(tail.slow_top_stage, static_cast<int>(Stage::kReply));
}

// ---------------------------------------------------------------------
// TraceSink: deterministic drain whatever the Add() order was.
// ---------------------------------------------------------------------

TEST(TraceSinkTest, TakeOrdersCellsIndependentlyOfAddOrder) {
  std::vector<SpanRecord> cell_a = {Span(1, Stage::kQmAdmit, 0, 10)};
  std::vector<SpanRecord> cell_b = {Span(2, Stage::kQmAdmit, 5, 25)};
  std::vector<SpanRecord> cell_c = {Span(3, Stage::kReply, 7, 8)};

  TraceSink forward;
  forward.Add(100, cell_a);
  forward.Add(200, cell_b);
  forward.Add(300, cell_c);
  TraceSink reverse;
  reverse.Add(300, cell_c);
  reverse.Add(100, cell_a);
  reverse.Add(200, cell_b);
  EXPECT_EQ(forward.size(), 3u);

  const std::vector<TraceCell> lhs = forward.Take();
  const std::vector<TraceCell> rhs = reverse.Take();
  ASSERT_EQ(lhs.size(), 3u);
  ASSERT_EQ(rhs.size(), 3u);
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_EQ(lhs[i].seed, rhs[i].seed) << "cell " << i;
    ASSERT_EQ(lhs[i].spans.size(), rhs[i].spans.size());
    EXPECT_EQ(lhs[i].spans[0].request_id, rhs[i].spans[0].request_id);
  }
  EXPECT_EQ(lhs[0].seed, 100u);
  EXPECT_EQ(lhs[2].seed, 300u);
  // Take() drained the sink.
  EXPECT_EQ(forward.size(), 0u);
}

TEST(TraceSinkTest, EqualSeedsOrderByContent) {
  // Two cells sharing a seed (a sweep can reuse seeds across regimes)
  // must still drain the same way regardless of completion order.
  std::vector<SpanRecord> small = {Span(1, Stage::kReply, 0, 5)};
  std::vector<SpanRecord> large = {Span(1, Stage::kReply, 0, 5),
                                   Span(2, Stage::kReply, 6, 9)};
  TraceSink forward, reverse;
  forward.Add(42, small);
  forward.Add(42, large);
  reverse.Add(42, large);
  reverse.Add(42, small);
  const std::vector<TraceCell> lhs = forward.Take();
  const std::vector<TraceCell> rhs = reverse.Take();
  ASSERT_EQ(lhs.size(), 2u);
  EXPECT_EQ(lhs[0].spans.size(), rhs[0].spans.size());
  EXPECT_EQ(lhs[1].spans.size(), rhs[1].spans.size());
  EXPECT_EQ(lhs[0].spans.size(), 1u);  // smaller cell first
}

// ---------------------------------------------------------------------
// Chrome trace-event output.
// ---------------------------------------------------------------------

std::string ChromeJson(const std::vector<TraceCell>& cells,
                       const ChromeTraceOptions& options = {}) {
  std::ostringstream out;
  WriteChromeTrace(cells, options, out);
  return out.str();
}

std::vector<TraceCell> SampleCells() {
  std::vector<SpanRecord> spans;
  for (std::uint64_t id = 1; id <= 8; ++id) {
    const auto end = static_cast<SimTime>(100 * id);
    spans.push_back(Span(id, Stage::kClientIssue, 0, end));
    spans.push_back(Span(id, Stage::kPoolSelect, 10, end / 2));
  }
  spans.push_back(Span(BackgroundId(Stage::kReplicaSync, 1),
                       Stage::kReplicaSync, 1000, 1200));
  return {TraceCell{7, spans}};
}

TEST(ChromeTraceTest, OutputIsBalancedJsonWithExpectedEvents) {
  const std::string json = ChromeJson(SampleCells());
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"pool_select\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"replica_sync\""), std::string::npos);
  EXPECT_NE(json.find("replica_sync 1"), std::string::npos);  // lane name
  // Braces and brackets balance (well-formed without a JSON parser; no
  // string value here contains a brace).
  long braces = 0, brackets = 0;
  for (const char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ChromeTraceTest, SlowLanesPickTheSlowestTraces) {
  ChromeTraceOptions options;
  options.slow_n = 2;
  options.exemplar_n = 1;
  const std::string json = ChromeJson(SampleCells(), options);
  // The two slowest requests are ids 8 (800 us) and 7 (700 us).
  EXPECT_NE(json.find("slow req 8 (800 us)"), std::string::npos);
  EXPECT_NE(json.find("slow req 7 (700 us)"), std::string::npos);
  EXPECT_EQ(json.find("slow req 6"), std::string::npos);
  EXPECT_NE(json.find("exemplar req"), std::string::npos);
}

TEST(ChromeTraceTest, SameCellsProduceByteIdenticalOutput) {
  EXPECT_EQ(ChromeJson(SampleCells()), ChromeJson(SampleCells()));
}

TEST(ChromeTraceTest, EmptyCellListStillWellFormed) {
  const std::string json = ChromeJson({});
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
}

// ---------------------------------------------------------------------
// MetricsStreamer.
// ---------------------------------------------------------------------

MetricCell StreamCell(double t) {
  MetricCell cell;
  cell.scenario = "stream";
  cell.labels.emplace_back("seed", "7");
  cell.values.emplace_back("t_s", t);
  cell.values.emplace_back("completed", 10 * t);
  return cell;
}

TEST(MetricsStreamerTest, JsonlStreamsOneLinePerCell) {
  std::ostringstream out;
  MetricsStreamer streamer(MetricsExporter::Format::kJsonl);
  streamer.Attach(&out);
  streamer.WriteCell(StreamCell(2.0));
  streamer.WriteCell(StreamCell(4.0));
  streamer.Close();
  EXPECT_EQ(streamer.cells_written(), 2u);
  std::size_t lines = 0;
  std::istringstream stream(out.str());
  for (std::string line; std::getline(stream, line);) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"scenario\":\"stream\""), std::string::npos);
  }
  EXPECT_EQ(lines, 2u);
}

TEST(MetricsStreamerTest, PromTypesEachMetricOnceAndTerminates) {
  std::ostringstream out;
  MetricsStreamer streamer(MetricsExporter::Format::kProm);
  streamer.Attach(&out);
  streamer.WriteCell(StreamCell(2.0));
  streamer.WriteCell(StreamCell(4.0));
  streamer.Close();
  const std::string text = out.str();
  // One TYPE header per metric even across cells; EOF exactly once at
  // the end.
  std::size_t type_count = 0;
  for (std::size_t pos = text.find("# TYPE actyp_t_s gauge");
       pos != std::string::npos;
       pos = text.find("# TYPE actyp_t_s gauge", pos + 1)) {
    ++type_count;
  }
  EXPECT_EQ(type_count, 1u);
  EXPECT_NE(text.find("actyp_t_s{scenario=\"stream\",seed=\"7\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("actyp_t_s{scenario=\"stream\",seed=\"7\"} 4"),
            std::string::npos);
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);
}

TEST(MetricsStreamerTest, WriteBeforeAttachIsANoOp) {
  MetricsStreamer streamer(MetricsExporter::Format::kJsonl);
  streamer.WriteCell(StreamCell(1.0));
  EXPECT_EQ(streamer.cells_written(), 0u);
}

// ---------------------------------------------------------------------
// End-to-end: replicated scenario produces the new background spans.
// ---------------------------------------------------------------------

ScenarioConfig ReplicatedPipeline() {
  ScenarioConfig config;
  config.machines = 60;
  config.clusters = 2;
  config.clients = 4;
  config.seed = 424242;
  config.directory_replicas = 2;
  config.profile = true;
  // Sweep every simulated second (instead of the default 5) so monitor
  // spans land inside a short measure window, and widen the ring so
  // the request flood cannot evict the background spans before the
  // snapshot is taken.
  config.monitor_period = Seconds(1.0);
  config.profile_ring_capacity = 1 << 16;
  return config;
}

TEST(PipelineTracing, ReplicatedScenarioRecordsBackgroundSpans) {
  SimScenario scenario(ReplicatedPipeline());
  // Measure past the monitor's first 5 s sweep tick (monitor_period is
  // unscaled) so both background stages appear.
  scenario.Measure(1'000'000, 4'000'000);
  ASSERT_NE(scenario.profiler(), nullptr);
  EXPECT_GT(scenario.profiler()->Summary(Stage::kReplicaSync).count, 0u);
  EXPECT_GT(scenario.profiler()->Summary(Stage::kMonitorSweep).count, 0u);
  const AssembledTraces assembled =
      TraceAssembler::Assemble(scenario.profiler()->RingSnapshot());
  EXPECT_GT(assembled.requests.size(), 0u);
  bool saw_sync = false, saw_sweep = false;
  for (const SpanRecord& span : assembled.background) {
    saw_sync = saw_sync || span.stage == Stage::kReplicaSync;
    saw_sweep = saw_sweep || span.stage == Stage::kMonitorSweep;
    EXPECT_TRUE(IsBackgroundId(span.request_id));
    EXPECT_GE(span.t_exit, span.t_enter);
  }
  EXPECT_TRUE(saw_sync);
  EXPECT_TRUE(saw_sweep);
  // No background id leaked into a request trace.
  for (const RequestTrace& trace : assembled.requests) {
    EXPECT_FALSE(IsBackgroundId(trace.request_id));
  }
}

TEST(PipelineTracing, FixedSeedTraceOutputIsDeterministic) {
  std::string first, second;
  for (std::string* out : {&first, &second}) {
    SimScenario scenario(ReplicatedPipeline());
    scenario.Measure(1'000'000, 4'000'000);
    ASSERT_NE(scenario.profiler(), nullptr);
    TraceSink sink;
    sink.Add(scenario.config().seed, scenario.profiler()->RingSnapshot());
    std::ostringstream json;
    WriteChromeTrace(sink.Take(), ChromeTraceOptions{}, json);
    *out = json.str();
  }
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(PipelineTracing, BackgroundSpansDoNotPerturbTheSimulation) {
  // The modeled-cost spans are bookkeeping only: profiling a replicated
  // scenario must not change what the simulation computes.
  ScenarioConfig on_config = ReplicatedPipeline();
  ScenarioConfig off_config = ReplicatedPipeline();
  off_config.profile = false;
  SimScenario on(on_config);
  on.Measure(1'000'000, 4'000'000);
  SimScenario off(off_config);
  off.Measure(1'000'000, 4'000'000);
  EXPECT_EQ(on.collector().completed(), off.collector().completed());
  EXPECT_EQ(on.collector().failures(), off.collector().failures());
  EXPECT_DOUBLE_EQ(on.collector().response_stats().mean(),
                   off.collector().response_stats().mean());
}

TEST(PipelineTracing, TailReportFromScenarioIsConsistent) {
  SimScenario scenario(ReplicatedPipeline());
  scenario.Measure(1'000'000, 4'000'000);
  ASSERT_NE(scenario.profiler(), nullptr);
  const AssembledTraces assembled =
      TraceAssembler::Assemble(scenario.profiler()->RingSnapshot());
  const TailReport tail = TraceAssembler::Tail(assembled.requests);
  ASSERT_GT(tail.trace_count, 0u);
  EXPECT_GE(tail.slow_count, 1u);
  EXPECT_LE(tail.slow_count, tail.trace_count);
  EXPECT_GE(tail.slow_top_stage, 0);
  EXPECT_LT(tail.slow_top_stage, static_cast<int>(kStageCount));
  double total = 0;
  for (const double share : tail.tail_share) {
    EXPECT_GE(share, 0.0);
    EXPECT_LE(share, 1.0);
    total += share;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

// --- --trace-filter (TraceFilter parse + cell filtering) ---

TEST(TraceFilterTest, ParsesAnySubsetOfTerms) {
  std::string error;
  const auto empty = TraceFilter::Parse("", &error);
  ASSERT_TRUE(empty.has_value());
  EXPECT_FALSE(empty->active());

  const auto full =
      TraceFilter::Parse("request=42,stage=pool_select,min-dur=0.25", &error);
  ASSERT_TRUE(full.has_value()) << error;
  EXPECT_TRUE(full->active());
  ASSERT_TRUE(full->request_id.has_value());
  EXPECT_EQ(*full->request_id, 42u);
  ASSERT_TRUE(full->stage.has_value());
  EXPECT_EQ(*full->stage, Stage::kPoolSelect);
  EXPECT_DOUBLE_EQ(full->min_duration_s, 0.25);
}

TEST(TraceFilterTest, RejectsMalformedSpecs) {
  std::string error;
  for (const char* bad :
       {"request=abc", "stage=bogus_stage", "min-dur=fast", "color=red"}) {
    EXPECT_FALSE(TraceFilter::Parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(TraceFilterTest, FiltersCellsByAllSetCriteria) {
  TraceCell cell;
  cell.seed = 9;
  // Request 1: 500 us with a pool_select hop. Request 2: 80 us, no
  // pool_select. One background monitor sweep.
  cell.spans = {
      Span(1, Stage::kClientIssue, 0, 500),
      Span(1, Stage::kPoolSelect, 50, 200),
      Span(2, Stage::kClientIssue, 0, 80),
      Span(2, Stage::kQmAdmit, 10, 30),
      Span(BackgroundId(Stage::kMonitorSweep, 0), Stage::kMonitorSweep, 0,
           900),
  };

  TraceFilter by_stage;
  by_stage.stage = Stage::kPoolSelect;
  auto kept = FilterTraceCells({cell}, by_stage);
  ASSERT_EQ(kept.size(), 1u);
  // Request 2 (no pool_select) and the non-matching background span
  // are dropped; request 1 keeps all of its spans.
  EXPECT_EQ(kept[0].spans.size(), 2u);
  for (const SpanRecord& span : kept[0].spans) {
    EXPECT_EQ(span.request_id, 1u);
  }

  TraceFilter by_duration;
  by_duration.min_duration_s = 100e-6;
  kept = FilterTraceCells({cell}, by_duration);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].spans.size(), 2u);  // only request 1 is slow enough

  TraceFilter by_id;
  by_id.request_id = 2;
  kept = FilterTraceCells({cell}, by_id);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].spans.size(), 2u);
  for (const SpanRecord& span : kept[0].spans) {
    EXPECT_EQ(span.request_id, 2u);
  }

  // A stage criterion keeps matching background lanes.
  TraceFilter by_background;
  by_background.stage = Stage::kMonitorSweep;
  kept = FilterTraceCells({cell}, by_background);
  ASSERT_EQ(kept.size(), 1u);
  ASSERT_EQ(kept[0].spans.size(), 1u);
  EXPECT_EQ(kept[0].spans[0].stage, Stage::kMonitorSweep);

  // An inactive filter passes everything through untouched.
  kept = FilterTraceCells({cell}, TraceFilter{});
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].spans.size(), cell.spans.size());
}

}  // namespace
}  // namespace actyp::profile
