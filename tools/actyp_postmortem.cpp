// actyp_postmortem: render a chaos post-mortem dump (the .jsonl file
// actyp_chaos writes next to a repro bundle) as an annotated timeline
// and name the first causally-implicated event.
//
//   actyp_postmortem chaos_postmortem_seed11.jsonl
//
// The dump is line-oriented typed JSON (see src/obs/postmortem.hpp):
// one meta line, one fault line per plan event, one telemetry line per
// gauge sample, one flight line per recorded event. The tool walks the
// gauge series for the first excursion — completed throughput going
// flat while clients are still in flight, or a failure-count jump —
// and blames the latest fault strike at or before it.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

namespace {

// Minimal line-local JSON field extraction. Every dump line is one
// flat object written by our own serializers (no nested duplicate
// keys we care about), so a direct key scan is sufficient.
std::optional<std::string> JsonString(const std::string& line,
                                      const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  std::string out;
  for (std::size_t i = at + needle.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\\' && i + 1 < line.size()) {
      const char next = line[++i];
      switch (next) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        default: out += next;
      }
      continue;
    }
    if (c == '"') return out;
    out += c;
  }
  return std::nullopt;
}

std::optional<double> JsonNumber(const std::string& line,
                                 const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  const char* start = line.c_str() + at + needle.size();
  char* end = nullptr;
  const double value = std::strtod(start, &end);
  if (end == start) return std::nullopt;
  return value;
}

struct Sample {
  double t_s = 0;
  double completed = 0;
  double failures = 0;
  double inflight = 0;
  double lost = 0;
};

struct Flight {
  double t = 0;
  std::string kind;
  std::string node;
  std::string detail;
};

int Usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: actyp_postmortem DUMP.jsonl\n"
               "\n"
               "Renders a chaos post-mortem dump as an annotated\n"
               "timeline and names the first causally-implicated\n"
               "event (the latest fault strike at or before the first\n"
               "telemetry excursion).\n");
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      return Usage(0);
    }
    if (!path.empty()) {
      std::fprintf(stderr, "actyp_postmortem: unexpected argument '%s'\n",
                   argv[i]);
      return Usage(2);
    }
    path = argv[i];
  }
  if (path.empty()) return Usage(2);

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "actyp_postmortem: cannot open '%s'\n",
                 path.c_str());
    return 1;
  }

  std::string seed = "?";
  std::string regime;
  std::vector<std::string> violations;
  std::vector<std::string> fault_events;
  std::vector<Sample> samples;
  std::vector<Flight> faults;  // fault_strike / fault_recover only
  std::size_t flight_total = 0;
  double flight_first = 0, flight_last = 0;

  std::string line;
  while (std::getline(in, line)) {
    const auto type = JsonString(line, "type");
    if (!type) continue;
    if (*type == "meta") {
      if (const auto value = JsonNumber(line, "seed")) {
        seed = std::to_string(static_cast<long long>(*value));
      }
      regime = JsonString(line, "regime").value_or("");
      // The violations array holds plain strings: pull each quoted
      // element between the brackets.
      const auto open = line.find("\"violations\":[");
      if (open != std::string::npos) {
        std::size_t at = open + std::strlen("\"violations\":[");
        while (at < line.size() && line[at] != ']') {
          if (line[at] == '"') {
            std::string item;
            for (++at; at < line.size() && line[at] != '"'; ++at) {
              if (line[at] == '\\' && at + 1 < line.size()) ++at;
              item += line[at];
            }
            violations.push_back(item);
          }
          ++at;
        }
      }
    } else if (*type == "fault") {
      if (const auto event = JsonString(line, "event")) {
        fault_events.push_back(*event);
      }
    } else if (*type == "telemetry") {
      Sample sample;
      sample.t_s = JsonNumber(line, "t_s").value_or(0);
      sample.completed = JsonNumber(line, "completed").value_or(0);
      sample.failures = JsonNumber(line, "failures").value_or(0);
      sample.inflight = JsonNumber(line, "inflight_clients").value_or(0);
      sample.lost = JsonNumber(line, "lost_messages").value_or(0);
      samples.push_back(sample);
    } else if (*type == "flight") {
      const double t = JsonNumber(line, "t").value_or(0);
      if (flight_total == 0) flight_first = t;
      flight_last = t;
      ++flight_total;
      const auto kind = JsonString(line, "kind").value_or("");
      if (kind == "fault_strike" || kind == "fault_recover") {
        Flight event;
        event.t = t;
        event.kind = kind;
        event.node = JsonString(line, "node").value_or("");
        event.detail = JsonString(line, "detail").value_or("");
        faults.push_back(event);
      }
    }
  }

  std::printf("post-mortem: seed=%s\n", seed.c_str());
  if (!regime.empty()) std::printf("regime: %s\n", regime.c_str());
  std::printf("violations:\n");
  for (const auto& violation : violations) {
    std::printf("  - %s\n", violation.c_str());
  }
  if (violations.empty()) std::printf("  (none recorded)\n");
  std::printf("fault plan:\n");
  for (const auto& event : fault_events) {
    std::printf("  - %s\n", event.c_str());
  }
  std::printf("flight window: %zu event(s), t=%.6gs .. %.6gs\n",
              flight_total, flight_first, flight_last);

  // First excursion: the earliest sample where completed throughput
  // goes flat with clients still in flight, or failures jump.
  std::optional<std::size_t> excursion;
  std::string excursion_why;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const Sample& prev = samples[i - 1];
    const Sample& cur = samples[i];
    if (cur.failures > prev.failures) {
      excursion = i;
      excursion_why = "failures jumped " +
                      std::to_string(static_cast<long long>(prev.failures)) +
                      " -> " +
                      std::to_string(static_cast<long long>(cur.failures));
      break;
    }
    if (cur.completed <= prev.completed && cur.inflight > 0) {
      excursion = i;
      excursion_why =
          "completed stalled at " +
          std::to_string(static_cast<long long>(cur.completed)) + " with " +
          std::to_string(static_cast<long long>(cur.inflight)) +
          " client(s) in flight";
      break;
    }
  }

  std::printf("timeline:\n");
  std::size_t next_fault = 0;
  const double excursion_t = excursion ? samples[*excursion].t_s : 0;
  auto print_faults_until = [&](double t) {
    for (; next_fault < faults.size() && faults[next_fault].t <= t;
         ++next_fault) {
      const Flight& event = faults[next_fault];
      std::printf("  t=%.6gs %s %s\n", event.t, event.kind.c_str(),
                  event.detail.c_str());
    }
  };
  if (excursion) {
    print_faults_until(excursion_t);
    std::printf("  t=%.6gs telemetry excursion: %s\n", excursion_t,
                excursion_why.c_str());
  }
  print_faults_until(flight_last + 1.0);
  if (faults.empty() && !excursion) std::printf("  (no events)\n");

  // Blame: the latest strike at or before the excursion; with no
  // excursion (or none before it), the first strike on record.
  const Flight* implicated = nullptr;
  for (const auto& event : faults) {
    if (event.kind != "fault_strike") continue;
    if (implicated == nullptr) {
      implicated = &event;
      continue;
    }
    if (excursion && event.t <= excursion_t) implicated = &event;
  }
  if (implicated != nullptr) {
    std::printf("first implicated event: t=%.6gs %s node=%s %s\n",
                implicated->t, implicated->kind.c_str(),
                implicated->node.c_str(), implicated->detail.c_str());
  } else {
    std::printf("first implicated event: (no fault strike recorded)\n");
  }
  return 0;
}
