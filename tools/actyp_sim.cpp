// actyp_sim: the unified scenario driver — one front door to every
// paper figure and ablation the repo reproduces.
//
//   list:      actyp_sim --list
//   run:       actyp_sim --scenario fig6_pool_size
//   JSON:      actyp_sim --scenario fig6_pool_size --json
//   overrides: actyp_sim --scenario fig4_pools_lan --machines 800
//                  --clients 8 --seed 7 --time-scale 0.25
//   faults:    actyp_sim --scenario lossy_lan --loss 0.05
//              actyp_sim --scenario pool_churn --churn-rate 2
//              actyp_sim --scenario fig4_pools_lan --fault-plan plan.txt
//   config:    actyp_sim --config examples/experiment.conf
//   everything: actyp_sim --all --json
//   parallel:  actyp_sim --scenario qm_scaling --jobs 8 --stable --json
//
// --jobs N runs independent scenario cells on N worker threads — each
// cell owns its own kernel/network/RNG — and, when several scenarios
// are requested (--all, repeated --scenario), whole scenarios too.
// Reports are always emitted in request order, so the output stream is
// independent of the worker count; --stable additionally zeroes the
// wall-clock-derived metrics, making fixed-seed output byte-identical
// across hosts and --jobs values.
//
// --config loads a full experiment from one file (scenario selection,
// overrides, and a [fault] section parsed via FaultPlan::FromConfig);
// flags given after --config override the file's values.
//
// JSON goes to stdout, one object per scenario run, with a stable
// {scenario, title, cells[], note} shape for perf tracking.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "actyp/scenario_registry.hpp"
#include "chaos/workload_regime.hpp"
#include "common/config.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "fault/fault_plan.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"
#include "profile/metrics_exporter.hpp"
#include "profile/stage_profiler.hpp"
#include "profile/trace_assembler.hpp"

namespace {

using actyp::ScenarioInfo;
using actyp::ScenarioRegistry;
using actyp::ScenarioRunOptions;
using actyp::profile::MetricsExporter;
using actyp::profile::MetricsStreamer;

int Usage(int code) {
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: actyp_sim [--list] [--scenario <name>] [--all] [--json]\n"
      "                 [--config FILE] [--seed N] [--machines N]\n"
      "                 [--clients N] [--time-scale X] [--loss P]\n"
      "                 [--churn-rate R] [--fault-plan FILE]\n"
      "                 [--replicas N] [--sync-period S]\n"
      "                 [--retry-max N] [--retry-backoff S]\n"
      "                 [--quiesce S] [--regime STR]\n"
      "                 [--jobs N] [--cell-jobs N] [--stable]\n"
      "                 [--no-profile]\n"
      "                 [--profile-ring-capacity N]\n"
      "                 [--metrics-out FILE] [--metrics-format jsonl|prom]\n"
      "                 [--metrics-interval S]\n"
      "                 [--telemetry-out FILE] [--telemetry-interval S]\n"
      "                 [--flight-out FILE]\n"
      "                 [--profile-sampling ring|reservoir]\n"
      "                 [--trace-out FILE] [--trace-top N]\n"
      "                 [--trace-filter SPEC]\n"
      "\n"
      "  --list            list registered scenarios and exit\n"
      "  --scenario <s>    run one scenario (repeatable)\n"
      "  --config FILE     load a full experiment config: scenario name,\n"
      "                    overrides, and a [fault] section (see\n"
      "                    examples/experiment.conf); later flags override\n"
      "  --all             run every registered scenario\n"
      "  --json            emit one JSON object per run to stdout\n"
      "  --seed N          override the scenario's base seed\n"
      "  --machines N      pin the fleet-size sweep dimension\n"
      "  --clients N       pin the client-count sweep dimension\n"
      "  --time-scale X    scale simulated warmup/measure durations\n"
      "  --loss P          inject message loss with probability P\n"
      "  --churn-rate R    crash R random machines per simulated second\n"
      "  --fault-plan FILE apply the fault plan in FILE (loss windows,\n"
      "                    latency spikes, partitions, crashes, churn,\n"
      "                    site-crash/site-restore)\n"
      "  --replicas N      replicate the directory service N ways\n"
      "                    (1 = the single authoritative directory)\n"
      "  --sync-period S   anti-entropy pull period, simulated seconds\n"
      "                    (scaled by --time-scale)\n"
      "  --retry-max N     client retries per timed-out request\n"
      "  --retry-backoff S base retry backoff, simulated seconds\n"
      "                    (scaled by --time-scale)\n"
      "  --quiesce S       drain each cell S extra simulated seconds\n"
      "                    (scaled by --time-scale) after the measurement\n"
      "                    window, so success rates reflect the recovered\n"
      "                    system; 0 (default) keeps output byte-identical\n"
      "  --regime STR      chaos_cell workload regime, one 'key=value ...'\n"
      "                    line (see src/chaos/workload_regime.hpp)\n"
      "  --jobs N          run independent sweep cells (and, for multi-\n"
      "                    scenario runs, whole scenarios) on N worker\n"
      "                    threads; output order is unchanged\n"
      "  --cell-jobs N     worker threads for the LP-parallel engine\n"
      "                    inside each multi-site cell (big_wan etc.);\n"
      "                    reports are byte-identical for any N\n"
      "  --stable          zero wall-clock-derived metrics so fixed-seed\n"
      "                    output is byte-identical across hosts/--jobs\n"
      "  --no-profile      disable the stage-span profiler: reports omit\n"
      "                    the per-stage percentiles (the pre-profiler\n"
      "                    output, byte for byte)\n"
      "  --profile-ring-capacity N  retain the last N stage spans per\n"
      "                    simulation (the window --trace-out assembles\n"
      "                    traces from; default 4096)\n"
      "  --metrics-out FILE  also export every report cell's metrics to\n"
      "                    FILE after the run\n"
      "  --metrics-format F  export format: jsonl (default, one JSON\n"
      "                    object per cell) or prom (Prometheus text)\n"
      "  --metrics-interval S  stream an incremental metrics snapshot to\n"
      "                    the --metrics-out file every S simulated\n"
      "                    seconds (scaled by --time-scale) while each\n"
      "                    cell runs, instead of only writing at the end\n"
      "  --telemetry-out FILE  record a continuous gauge time-series\n"
      "                    (queue depths, inflight requests, per-site\n"
      "                    load, replica staleness, pending timers) on\n"
      "                    the sim clock and write it as JSON lines;\n"
      "                    byte-identical for any --jobs / --cell-jobs\n"
      "  --telemetry-interval S  sim seconds between telemetry samples\n"
      "                    (scaled by --time-scale; default 1)\n"
      "  --flight-out FILE  enable the flight recorder (bounded ring of\n"
      "                    structured events: message sends/drops, timer\n"
      "                    arms/fires, fault strikes, replica syncs, pool\n"
      "                    claims) and write the merged window to FILE as\n"
      "                    JSON lines\n"
      "  --profile-sampling M  per-stage latency sampling mode: 'ring'\n"
      "                    (exact histogram + span ring, the default) or\n"
      "                    'reservoir' (seeded fixed-size reservoir per\n"
      "                    stage; p50/p95/p99 from its order statistics)\n"
      "  --trace-out FILE  assemble per-request traces from the span\n"
      "                    rings and write the slowest + exemplar\n"
      "                    requests (plus replica_sync / monitor_sweep\n"
      "                    lanes) as Chrome trace-event JSON — load the\n"
      "                    file in Perfetto or chrome://tracing\n"
      "  --trace-top N     traces per kind per cell in --trace-out\n"
      "                    (N slowest and N exemplars; default 5)\n"
      "  --trace-filter SPEC  keep only matching request traces in\n"
      "                    --trace-out: comma-separated request=<id>,\n"
      "                    stage=<name>, min-dur=<seconds> terms\n");
  return code;
}

int ListScenarios() {
  for (const ScenarioInfo* info : ScenarioRegistry::Instance().List()) {
    std::printf("%-26s %s\n", info->name.c_str(), info->summary.c_str());
  }
  return 0;
}

int MissingValue(const char* flag) {
  std::fprintf(stderr, "actyp_sim: %s requires a value\n", flag);
  return Usage(2);
}

int BadValue(const char* flag, const char* text) {
  std::fprintf(stderr, "actyp_sim: invalid value '%s' for %s\n", text, flag);
  return Usage(2);
}

bool ParseLong(const char* text, long min_value, long* out) {
  const auto value = actyp::ParseInt(text);
  if (!value || *value < min_value) return false;
  *out = *value;
  return true;
}

// Strict double parse: the whole token must be consumed.
bool ParseDouble(const char* text, double* out) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0') return false;
  *out = value;
  return true;
}

// Destination and format for --metrics-out / --metrics-format /
// --metrics-interval.
struct MetricsOutput {
  std::string path;  // empty = no export
  MetricsExporter::Format format = MetricsExporter::Format::kJsonl;
  double interval_s = 0;  // > 0 = stream incrementally during the run
};

// Destination and depth for --trace-out / --trace-top.
struct TraceOutput {
  std::string path;    // empty = no trace
  std::size_t top = 5; // slowest + exemplar traces per cell
  actyp::profile::TraceFilter filter;  // --trace-filter (default: all)
};

// Destinations for --telemetry-out / --flight-out.
struct ObsOutput {
  std::string telemetry_path;          // empty = no telemetry series
  double telemetry_interval_s = 1.0;   // sim seconds between samples
  bool telemetry_interval_set = false;
  std::string flight_path;             // empty = recorder stays off
};

// Flattens one finished report into exporter cells: string labels pass
// through, numeric dims become labels (formatted like the JSON report),
// metrics become the values.
std::vector<actyp::profile::MetricCell> FlattenReport(
    const actyp::ScenarioReport& report) {
  std::vector<actyp::profile::MetricCell> cells;
  cells.reserve(report.cells.size());
  for (const actyp::ScenarioCell& cell : report.cells) {
    actyp::profile::MetricCell out;
    out.scenario = report.scenario;
    for (const auto& [key, value] : cell.labels) {
      out.labels.emplace_back(key, value);
    }
    for (const auto& [key, value] : cell.dims) {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.6g", value);
      out.labels.emplace_back(key, buffer);
    }
    out.values = cell.metrics;
    cells.push_back(std::move(out));
  }
  return cells;
}

// Loads a full experiment config into the run list and options: the
// scenario selection ("scenario = fig4_pools_lan" or a comma list),
// the driver overrides (seed / machines / clients / time-scale / loss /
// churn-rate / json / profile / profile-ring-capacity / metrics-out /
// metrics-format / metrics-interval / trace-out / trace-top), and a
// [fault] section in FaultPlan::FromConfig form. Returns 0 on success.
int ApplyConfigFile(const char* path, std::vector<std::string>* names,
                    ScenarioRunOptions* options, bool* json, bool* all,
                    MetricsOutput* metrics, TraceOutput* trace,
                    ObsOutput* obs) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "actyp_sim: cannot read config '%s'\n", path);
    return 1;
  }
  std::ostringstream text;
  text << file.rdbuf();
  const auto config = actyp::Config::Parse(text.str());
  if (!config.ok()) {
    std::fprintf(stderr, "actyp_sim: %s: %s\n", path,
                 config.status().ToString().c_str());
    return 1;
  }

  const auto bad = [path](const char* key, const std::string& value) {
    std::fprintf(stderr, "actyp_sim: %s: invalid value '%s' for '%s'\n",
                 path, value.c_str(), key);
    return 1;
  };

  if (const auto scenario = config->Get("scenario")) {
    for (const auto& name : actyp::SplitSkipEmpty(*scenario, ',')) {
      const std::string trimmed = actyp::Trim(name);
      if (trimmed == "all") {
        *all = true;
      } else {
        names->push_back(trimmed);
      }
    }
  }
  *json = config->GetBool("json", *json);
  if (const auto value = config->Get("seed")) {
    const auto parsed = actyp::ParseInt(*value);
    if (!parsed || *parsed < 0) return bad("seed", *value);
    options->seed = static_cast<std::uint64_t>(*parsed);
  }
  if (const auto value = config->Get("machines")) {
    const auto parsed = actyp::ParseInt(*value);
    if (!parsed || *parsed < 1) return bad("machines", *value);
    options->machines = static_cast<std::size_t>(*parsed);
  }
  if (const auto value = config->Get("clients")) {
    const auto parsed = actyp::ParseInt(*value);
    if (!parsed || *parsed < 1) return bad("clients", *value);
    options->clients = static_cast<std::size_t>(*parsed);
  }
  if (const auto value = config->Get("time-scale")) {
    const auto parsed = actyp::ParseDouble(*value);
    if (!parsed || !(*parsed > 0)) return bad("time-scale", *value);
    options->time_scale = *parsed;
  }
  if (const auto value = config->Get("loss")) {
    const auto parsed = actyp::ParseDouble(*value);
    if (!parsed || *parsed < 0 || *parsed > 1) return bad("loss", *value);
    options->loss = *parsed;
  }
  if (const auto value = config->Get("churn-rate")) {
    const auto parsed = actyp::ParseDouble(*value);
    if (!parsed || !(*parsed >= 0)) return bad("churn-rate", *value);
    options->churn_rate = *parsed;
  }
  if (const auto value = config->Get("replicas")) {
    const auto parsed = actyp::ParseInt(*value);
    if (!parsed || *parsed < 1) return bad("replicas", *value);
    options->replicas = static_cast<std::uint32_t>(*parsed);
  }
  if (const auto value = config->Get("sync-period")) {
    const auto parsed = actyp::ParseDouble(*value);
    if (!parsed || !(*parsed > 0)) return bad("sync-period", *value);
    options->sync_period_s = *parsed;
  }
  if (const auto value = config->Get("retry-max")) {
    const auto parsed = actyp::ParseInt(*value);
    if (!parsed || *parsed < 0) return bad("retry-max", *value);
    options->retry_max = static_cast<std::size_t>(*parsed);
  }
  if (const auto value = config->Get("retry-backoff")) {
    const auto parsed = actyp::ParseDouble(*value);
    if (!parsed || !(*parsed > 0)) return bad("retry-backoff", *value);
    options->retry_backoff_s = *parsed;
  }
  if (const auto value = config->Get("quiesce")) {
    const auto parsed = actyp::ParseDouble(*value);
    if (!parsed || !(*parsed >= 0)) return bad("quiesce", *value);
    options->quiesce_s = *parsed;
  }
  if (const auto value = config->Get("regime")) {
    const auto regime = actyp::chaos::WorkloadRegime::Parse(*value);
    if (!regime.ok()) {
      std::fprintf(stderr, "actyp_sim: %s: %s\n", path,
                   regime.status().ToString().c_str());
      return 1;
    }
    options->regime_text = *value;
  }
  if (const auto value = config->Get("jobs")) {
    const auto parsed = actyp::ParseInt(*value);
    if (!parsed || *parsed < 1) return bad("jobs", *value);
    options->jobs = static_cast<std::size_t>(*parsed);
  }
  if (const auto value = config->Get("cell-jobs")) {
    const auto parsed = actyp::ParseInt(*value);
    if (!parsed || *parsed < 1) return bad("cell-jobs", *value);
    options->cell_jobs = static_cast<std::size_t>(*parsed);
  }
  options->stable = config->GetBool("stable", options->stable);
  options->profile = config->GetBool("profile", options->profile);
  if (const auto value = config->Get("profile-ring-capacity")) {
    const auto parsed = actyp::ParseInt(*value);
    if (!parsed || *parsed < 1) return bad("profile-ring-capacity", *value);
    options->profile_ring_capacity = static_cast<std::size_t>(*parsed);
  }
  if (const auto value = config->Get("metrics-out")) {
    metrics->path = *value;
  }
  if (const auto value = config->Get("metrics-format")) {
    const auto format = MetricsExporter::ParseFormat(*value);
    if (!format) return bad("metrics-format", *value);
    metrics->format = *format;
  }
  if (const auto value = config->Get("metrics-interval")) {
    const auto parsed = actyp::ParseDouble(*value);
    if (!parsed || !(*parsed > 0)) {
      std::fprintf(stderr,
                   "actyp_sim: %s: metrics-interval must be a positive "
                   "number of simulated seconds, got '%s'\n",
                   path, value->c_str());
      return 1;
    }
    metrics->interval_s = *parsed;
  }
  if (const auto value = config->Get("telemetry-out")) {
    obs->telemetry_path = *value;
  }
  if (const auto value = config->Get("telemetry-interval")) {
    const auto parsed = actyp::ParseDouble(*value);
    if (!parsed || !(*parsed > 0)) {
      std::fprintf(stderr,
                   "actyp_sim: %s: telemetry-interval must be a positive "
                   "number of simulated seconds, got '%s'\n",
                   path, value->c_str());
      return 1;
    }
    obs->telemetry_interval_s = *parsed;
    obs->telemetry_interval_set = true;
  }
  if (const auto value = config->Get("flight-out")) {
    obs->flight_path = *value;
  }
  if (const auto value = config->Get("profile-sampling")) {
    if (!actyp::profile::SamplingModeFromName(*value)) {
      return bad("profile-sampling", *value);
    }
    options->profile_sampling = *value;
  }
  if (const auto value = config->Get("trace-out")) {
    trace->path = *value;
  }
  if (const auto value = config->Get("trace-top")) {
    const auto parsed = actyp::ParseInt(*value);
    if (!parsed || *parsed < 1) return bad("trace-top", *value);
    trace->top = static_cast<std::size_t>(*parsed);
  }
  if (const auto value = config->Get("trace-filter")) {
    std::string error;
    const auto filter = actyp::profile::TraceFilter::Parse(*value, &error);
    if (!filter) {
      std::fprintf(stderr, "actyp_sim: %s: bad trace-filter: %s\n", path,
                   error.c_str());
      return 1;
    }
    trace->filter = *filter;
  }

  const auto plan = actyp::fault::FaultPlan::FromConfig(config.value());
  if (!plan.ok()) {
    std::fprintf(stderr, "actyp_sim: %s: %s\n", path,
                 plan.status().ToString().c_str());
    return 1;
  }
  if (!plan->empty()) options->fault_plan_text = plan->Serialize();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool list = false;
  bool all = false;
  bool json = false;
  std::vector<std::string> names;
  ScenarioRunOptions options;
  MetricsOutput metrics;
  TraceOutput trace;
  ObsOutput obs;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--list") == 0) {
      list = true;
    } else if (std::strcmp(arg, "--all") == 0) {
      all = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--help") == 0 ||
               std::strcmp(arg, "-h") == 0) {
      return Usage(0);
    } else if (std::strcmp(arg, "--scenario") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      names.emplace_back(argv[++i]);
    } else if (std::strcmp(arg, "--config") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      if (const int rc = ApplyConfigFile(argv[++i], &names, &options, &json,
                                         &all, &metrics, &trace, &obs);
          rc != 0) {
        return rc;
      }
    } else if (std::strcmp(arg, "--seed") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      long value = 0;  // 0 is a legitimate seed
      if (!ParseLong(argv[++i], 0, &value)) return BadValue(arg, argv[i]);
      options.seed = static_cast<std::uint64_t>(value);
    } else if (std::strcmp(arg, "--machines") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      long value = 0;
      if (!ParseLong(argv[++i], 1, &value)) return BadValue(arg, argv[i]);
      options.machines = static_cast<std::size_t>(value);
    } else if (std::strcmp(arg, "--clients") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      long value = 0;
      if (!ParseLong(argv[++i], 1, &value)) return BadValue(arg, argv[i]);
      options.clients = static_cast<std::size_t>(value);
    } else if (std::strcmp(arg, "--time-scale") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      double value = 0;
      if (!ParseDouble(argv[++i], &value) || !(value > 0)) {
        return BadValue(arg, argv[i]);
      }
      options.time_scale = value;
    } else if (std::strcmp(arg, "--loss") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      double value = 0;
      if (!ParseDouble(argv[++i], &value) || value < 0 || value > 1) {
        return BadValue(arg, argv[i]);
      }
      options.loss = value;
    } else if (std::strcmp(arg, "--churn-rate") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      double value = 0;
      if (!ParseDouble(argv[++i], &value) || !(value >= 0)) {
        return BadValue(arg, argv[i]);
      }
      options.churn_rate = value;
    } else if (std::strcmp(arg, "--replicas") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      long value = 0;
      if (!ParseLong(argv[++i], 1, &value)) return BadValue(arg, argv[i]);
      options.replicas = static_cast<std::uint32_t>(value);
    } else if (std::strcmp(arg, "--sync-period") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      double value = 0;
      if (!ParseDouble(argv[++i], &value) || !(value > 0)) {
        return BadValue(arg, argv[i]);
      }
      options.sync_period_s = value;
    } else if (std::strcmp(arg, "--retry-max") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      long value = 0;
      if (!ParseLong(argv[++i], 0, &value)) return BadValue(arg, argv[i]);
      options.retry_max = static_cast<std::size_t>(value);
    } else if (std::strcmp(arg, "--retry-backoff") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      double value = 0;
      if (!ParseDouble(argv[++i], &value) || !(value > 0)) {
        return BadValue(arg, argv[i]);
      }
      options.retry_backoff_s = value;
    } else if (std::strcmp(arg, "--quiesce") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      double value = 0;
      if (!ParseDouble(argv[++i], &value) || !(value >= 0)) {
        return BadValue(arg, argv[i]);
      }
      options.quiesce_s = value;
    } else if (std::strcmp(arg, "--regime") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      const auto regime = actyp::chaos::WorkloadRegime::Parse(argv[++i]);
      if (!regime.ok()) {
        std::fprintf(stderr, "actyp_sim: %s\n",
                     regime.status().ToString().c_str());
        return 2;
      }
      options.regime_text = argv[i];
    } else if (std::strcmp(arg, "--jobs") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      long value = 0;
      if (!ParseLong(argv[++i], 1, &value)) return BadValue(arg, argv[i]);
      options.jobs = static_cast<std::size_t>(value);
    } else if (std::strcmp(arg, "--cell-jobs") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      long value = 0;
      if (!ParseLong(argv[++i], 1, &value)) return BadValue(arg, argv[i]);
      options.cell_jobs = static_cast<std::size_t>(value);
    } else if (std::strcmp(arg, "--stable") == 0) {
      options.stable = true;
    } else if (std::strcmp(arg, "--no-profile") == 0) {
      options.profile = false;
    } else if (std::strcmp(arg, "--profile-ring-capacity") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      long value = 0;
      if (!ParseLong(argv[++i], 1, &value)) return BadValue(arg, argv[i]);
      options.profile_ring_capacity = static_cast<std::size_t>(value);
    } else if (std::strcmp(arg, "--metrics-out") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      metrics.path = argv[++i];
    } else if (std::strcmp(arg, "--metrics-format") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      const auto format = MetricsExporter::ParseFormat(argv[++i]);
      if (!format) return BadValue(arg, argv[i]);
      metrics.format = *format;
    } else if (std::strcmp(arg, "--metrics-interval") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      double value = 0;
      if (!ParseDouble(argv[++i], &value) || !(value > 0)) {
        std::fprintf(stderr,
                     "actyp_sim: --metrics-interval must be a positive "
                     "number of simulated seconds, got '%s'\n",
                     argv[i]);
        return 2;
      }
      metrics.interval_s = value;
    } else if (std::strcmp(arg, "--telemetry-out") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      obs.telemetry_path = argv[++i];
    } else if (std::strcmp(arg, "--telemetry-interval") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      double value = 0;
      if (!ParseDouble(argv[++i], &value) || !(value > 0)) {
        std::fprintf(stderr,
                     "actyp_sim: --telemetry-interval must be a positive "
                     "number of simulated seconds, got '%s'\n",
                     argv[i]);
        return 2;
      }
      obs.telemetry_interval_s = value;
      obs.telemetry_interval_set = true;
    } else if (std::strcmp(arg, "--flight-out") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      obs.flight_path = argv[++i];
    } else if (std::strcmp(arg, "--profile-sampling") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      if (!actyp::profile::SamplingModeFromName(argv[++i])) {
        return BadValue(arg, argv[i]);
      }
      options.profile_sampling = argv[i];
    } else if (std::strcmp(arg, "--trace-out") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      trace.path = argv[++i];
    } else if (std::strcmp(arg, "--trace-top") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      long value = 0;
      if (!ParseLong(argv[++i], 1, &value)) return BadValue(arg, argv[i]);
      trace.top = static_cast<std::size_t>(value);
    } else if (std::strcmp(arg, "--trace-filter") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      std::string error;
      const auto filter =
          actyp::profile::TraceFilter::Parse(argv[++i], &error);
      if (!filter) {
        std::fprintf(stderr, "actyp_sim: bad --trace-filter: %s\n",
                     error.c_str());
        return 2;
      }
      trace.filter = *filter;
    } else if (std::strcmp(arg, "--fault-plan") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      std::ifstream file(argv[++i]);
      if (!file) {
        std::fprintf(stderr, "actyp_sim: cannot read fault plan '%s'\n",
                     argv[i]);
        return 1;
      }
      std::ostringstream text;
      text << file.rdbuf();
      // Validate up front so a bad plan fails before any scenario runs.
      const auto plan = actyp::fault::FaultPlan::Parse(text.str());
      if (!plan.ok()) {
        std::fprintf(stderr, "actyp_sim: %s\n",
                     plan.status().ToString().c_str());
        return 1;
      }
      options.fault_plan_text = text.str();
    } else {
      std::fprintf(stderr, "actyp_sim: unknown argument '%s'\n", arg);
      return Usage(2);
    }
  }

  if (list) return ListScenarios();

  if (all) {
    for (const ScenarioInfo* info : ScenarioRegistry::Instance().List()) {
      names.push_back(info->name);
    }
  }
  if (names.empty()) return Usage(2);

  // Resolve every requested scenario before running anything, so a typo
  // fails fast instead of after minutes of sweeps.
  std::vector<const ScenarioInfo*> infos;
  infos.reserve(names.size());
  for (const std::string& name : names) {
    const ScenarioInfo* info = ScenarioRegistry::Instance().Find(name);
    if (info == nullptr) {
      std::fprintf(stderr,
                   "actyp_sim: unknown scenario '%s' (try --list)\n",
                   name.c_str());
      return 1;
    }
    infos.push_back(info);
  }

  // Observability wiring. The trace sink collects every cell's span
  // ring; the streamer opens the metrics file up front so snapshots
  // appear while the run is in flight (the final report cells are
  // appended to the same stream at the end).
  actyp::profile::TraceSink trace_sink;
  if (!trace.path.empty()) {
    if (!options.profile) {
      std::fprintf(stderr,
                   "actyp_sim: --trace-out needs the profiler; drop "
                   "--no-profile\n");
      return 2;
    }
    options.trace_sink = &trace_sink;
  }
  MetricsStreamer streamer(metrics.format);
  if (metrics.interval_s > 0) {
    if (metrics.path.empty()) {
      std::fprintf(stderr,
                   "actyp_sim: --metrics-interval needs --metrics-out "
                   "FILE\n");
      return 2;
    }
    if (const auto status = streamer.Open(metrics.path); !status.ok()) {
      std::fprintf(stderr, "actyp_sim: %s\n", status.ToString().c_str());
      return 1;
    }
    options.metrics_streamer = &streamer;
    options.metrics_interval_s = metrics.interval_s;
  }
  actyp::obs::TelemetrySink telemetry_sink;
  if (!obs.telemetry_path.empty()) {
    options.telemetry_sink = &telemetry_sink;
    options.telemetry_interval_s = obs.telemetry_interval_s;
  } else if (obs.telemetry_interval_set) {
    std::fprintf(stderr,
                 "actyp_sim: --telemetry-interval needs --telemetry-out "
                 "FILE\n");
    return 2;
  }
  actyp::obs::FlightSink flight_sink;
  if (!obs.flight_path.empty()) {
    options.flight_sink = &flight_sink;
  }

  // Multi-scenario runs parallelize across scenarios (each worker runs
  // its scenario's cells serially); a single scenario parallelizes its
  // own cells instead. Either way reports land in request order, so the
  // emitted stream is identical to a --jobs 1 run.
  std::vector<actyp::ScenarioReport> reports(infos.size());
  if (options.jobs > 1 && infos.size() > 1) {
    ScenarioRunOptions cell_options = options;
    cell_options.jobs = 1;
    {
      actyp::ThreadPool pool(std::min(options.jobs, infos.size()));
      for (std::size_t i = 0; i < infos.size(); ++i) {
        if (infos[i]->wall_clock) continue;
        pool.Submit([&reports, &infos, &cell_options, i] {
          reports[i] = infos[i]->run(cell_options);
        });
      }
      pool.Drain();
    }
    // Wall-clock scenarios measure host time: run them alone, after
    // the pool is idle, so concurrent sweeps cannot inflate the very
    // timings they report. Request order is preserved either way.
    for (std::size_t i = 0; i < infos.size(); ++i) {
      if (infos[i]->wall_clock) reports[i] = infos[i]->run(cell_options);
    }
  } else {
    for (std::size_t i = 0; i < infos.size(); ++i) {
      reports[i] = infos[i]->run(options);
    }
  }

  for (const actyp::ScenarioReport& report : reports) {
    if (json) {
      actyp::WriteReportJson(report, std::cout);
    } else {
      actyp::WriteReportTable(report, std::cout);
    }
  }

  if (!metrics.path.empty()) {
    if (options.metrics_streamer != nullptr) {
      // Streaming mode: the file already holds the in-flight snapshots;
      // append the final report cells and terminate the stream.
      for (const actyp::ScenarioReport& report : reports) {
        for (const auto& cell : FlattenReport(report)) {
          streamer.WriteCell(cell);
        }
      }
      streamer.Close();
    } else {
      MetricsExporter exporter(metrics.format);
      for (const actyp::ScenarioReport& report : reports) {
        for (auto& cell : FlattenReport(report)) {
          exporter.Add(std::move(cell));
        }
      }
      if (const auto status = exporter.WriteFile(metrics.path);
          !status.ok()) {
        std::fprintf(stderr, "actyp_sim: %s\n", status.ToString().c_str());
        return 1;
      }
    }
  }

  if (!obs.telemetry_path.empty()) {
    // One JSONL line per sample, cells ordered by seed — the sink's
    // drain order — so the file is byte-identical for any --jobs.
    MetricsExporter exporter(MetricsExporter::Format::kJsonl);
    for (auto& [seed, samples] : telemetry_sink.Take()) {
      for (auto& sample : samples) exporter.Add(std::move(sample));
    }
    if (const auto status = exporter.WriteFile(obs.telemetry_path);
        !status.ok()) {
      std::fprintf(stderr, "actyp_sim: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  if (!obs.flight_path.empty()) {
    std::vector<actyp::obs::FlightEvent> events;
    for (auto& [seed, cell_events] : flight_sink.Take()) {
      events.insert(events.end(),
                    std::make_move_iterator(cell_events.begin()),
                    std::make_move_iterator(cell_events.end()));
    }
    if (const auto status =
            actyp::obs::WriteFlightJsonlFile(events, obs.flight_path);
        !status.ok()) {
      std::fprintf(stderr, "actyp_sim: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  if (!trace.path.empty()) {
    actyp::profile::ChromeTraceOptions trace_options;
    trace_options.slow_n = trace.top;
    trace_options.exemplar_n = trace.top;
    if (const auto status = actyp::profile::WriteChromeTraceFile(
            actyp::profile::FilterTraceCells(trace_sink.Take(),
                                             trace.filter),
            trace_options, trace.path);
        !status.ok()) {
      std::fprintf(stderr, "actyp_sim: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
