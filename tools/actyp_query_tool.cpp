// actyp_query_tool: operator CLI for the query language.
//
// Reads a query (native key-value text, or ClassAd / RSL with
// --lang classad|rsl) from stdin or a file and prints the parsed terms,
// the pool signature/identifier mapping of §5.2.2, and the composite
// decomposition.
//
//   ./build/tools/actyp_query_tool [--lang native|classad|rsl] [file]
//   echo 'punch.rsrc.arch = sun|hp' | ./build/tools/actyp_query_tool
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "interop/classad.hpp"
#include "interop/rsl.hpp"
#include "query/parser.hpp"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "actyp_query_tool: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string lang = "native";
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--lang") == 0 && i + 1 < argc) {
      lang = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: actyp_query_tool [--lang native|classad|rsl] [file]\n");
      return 0;
    } else {
      path = argv[i];
    }
  }

  std::string text;
  if (path.empty()) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream in(path);
    if (!in) return Fail("cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }

  if (lang == "classad") {
    auto translated = actyp::interop::TranslateClassAd(text);
    if (!translated.ok()) return Fail(translated.status().ToString());
    std::printf("-- translated from ClassAd --\n%s\n", translated->c_str());
    text = std::move(translated.value());
  } else if (lang == "rsl") {
    auto translated = actyp::interop::TranslateRsl(text);
    if (!translated.ok()) return Fail(translated.status().ToString());
    std::printf("-- translated from RSL --\n%s\n", translated->c_str());
    text = std::move(translated.value());
  } else if (lang != "native") {
    return Fail("unknown language '" + lang + "'");
  }

  auto composite = actyp::query::Parser::Parse(text);
  if (!composite.ok()) return Fail(composite.status().ToString());

  std::printf("valid query: %zu basic alternative(s)\n\n",
              composite->size());
  for (std::size_t i = 0; i < composite->size(); ++i) {
    const auto& q = composite->alternatives()[i];
    std::printf("alternative %zu:\n", i);
    for (const auto& [name, cond] : q.rsrc()) {
      std::printf("  rsrc  %-16s %s\n", name.c_str(),
                  cond.ToString().c_str());
    }
    for (const auto& [name, value] : q.appl()) {
      std::printf("  appl  %-16s %s\n", name.c_str(), value.c_str());
    }
    for (const auto& [name, value] : q.user()) {
      std::printf("  user  %-16s %s\n", name.c_str(), value.c_str());
    }
    std::printf("  signature  : %s\n", q.Signature().c_str());
    std::printf("  identifier : %s\n", q.Identifier().c_str());
    std::printf("  pool name  : %s\n", q.PoolName().c_str());
    std::printf("  ttl        : %d\n\n", q.ttl());
  }
  return 0;
}
