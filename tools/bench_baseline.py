#!/usr/bin/env python3
"""Blocking perf gate for the actyp_sim scenario sweep.

Runs ``actyp_sim --all --json`` at pinned, deterministic settings,
writes the result to ``BENCH_<sha>.json``, and compares every scenario
cell against the checked-in ``BENCH_baseline.json``:

* **Deterministic metrics** — everything computed in simulated time
  (response means/percentiles, the per-stage profiler percentiles,
  refresh-economics counters, replication observables) is a pure
  function of the pinned seed, so it is compared exactly (or within
  ``--det-tolerance`` if you opt into slack). Any mismatch is drift.
* **Wall-clock metrics** — the TCP roundtrip latencies, the query
  micro-benchmark timings, ``ev_per_s_wall`` throughput, and the
  sweep's own ``wall_clock_s`` are machine-dependent and noisy. The
  baseline stores a min/max band measured over ``--repeats`` runs, and
  the gate only fails when the current value falls outside the band by
  more than ``--wall-slack`` (default 2.0 = 3x the band edge) in the
  *bad* direction: slower for latencies, less for throughput. Getting
  faster never fails the gate.

Usage:
    tools/bench_baseline.py                      # run + gate
    tools/bench_baseline.py --update             # refresh the baseline
    tools/bench_baseline.py --binary build/actyp_sim --wall-slack 3

``--update`` refuses to run from a binary that is older than the
newest source file (a stale binary would bake yesterday's numbers into
the baseline); rebuild first, or pass ``--allow-stale`` to override.
It also re-runs the sweep ``--repeats`` times and fails if any
deterministic metric differs between repeats — the exact gate is only
sound if the sweep really is reproducible on this host.

Exit status: 0 when the gate passes (or no baseline exists yet), 1 on
drift, 2 on harness errors (missing/stale binary, non-deterministic
sweep, unreadable baseline). The CI ``bench-baseline`` job runs this
as a **blocking** check: legitimate model changes must refresh the
baseline in the same PR (``--update``, commit BENCH_baseline.json).
"""

import argparse
import json
import os
import subprocess
import sys
import time

# Pinned run: deterministic, and small enough for a CI sidecar (~10 s).
# time-scale 0.4 keeps the simulated window past the monitor's 5 s sweep
# period, so the tracked entries_refreshed / refresh_cost metrics see
# real monitor churn instead of a quiet fleet.
RUN_ARGS = [
    "--all", "--json", "--stable",
    "--seed", "1",
    "--machines", "400",
    "--clients", "4",
    "--time-scale", "0.4",
]

BASELINE_FORMAT = 2

# Scenarios whose numbers are wall-clock, not simulated time.
WALL_CLOCK_SCENARIOS = {"tcp_roundtrip", "abl_query_micro", "_sweep_meta"}
# Wall-clock metric names, wherever they appear. Band-gated, never
# compared exactly.
WALL_CLOCK_METRICS = {"mean_ms", "max_ms", "p95_ms", "ns_per_op",
                      "ev_per_s_wall", "wall_clock_s"}
# Wall-clock metrics where bigger is better: gate the lower band edge
# (a throughput collapse fails; a speedup never does).
THROUGHPUT_METRICS = {"ev_per_s_wall"}

DIMENSION_KEYS = {
    "pools", "clients", "machines", "segments", "replicas", "fanout",
    "loss", "rate", "calls", "bucket_lo", "bucket_hi", "qms", "pms",
    "sites",
}

# Everything that can change the numbers the sweep emits. Used by the
# stale-binary refusal in --update.
SOURCE_ROOTS = ["src", "bench", "tools"]
SOURCE_SUFFIXES = (".cpp", ".hpp", ".h", ".cmake")
SOURCE_FILES = ["CMakeLists.txt"]


def run_sweep(binary):
    start = time.monotonic()
    try:
        out = subprocess.run(
            [binary] + RUN_ARGS, capture_output=True, text=True, check=True)
    except FileNotFoundError:
        print(f"bench_baseline: binary not found: {binary}", file=sys.stderr)
        sys.exit(2)
    except subprocess.CalledProcessError as err:
        sys.stderr.write(err.stderr)
        print(f"bench_baseline: {binary} failed with {err.returncode}",
              file=sys.stderr)
        sys.exit(2)
    elapsed = time.monotonic() - start
    reports = []
    for line in out.stdout.splitlines():
        line = line.strip()
        if line:
            reports.append(json.loads(line))
    # Host-side perf record for the whole sweep (band-gated like the
    # other wall-clock metrics).
    reports.append({
        "scenario": "_sweep_meta",
        "title": "sweep harness record",
        "cells": [{"wall_clock_s": round(elapsed, 3)}],
        "note": "wall-clock of the pinned --all sweep on the CI host",
    })
    print(f"bench_baseline: sweep wall-clock {elapsed:.1f}s")
    return reports


def git_sha(repo_root):
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=repo_root,
            capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "worktree"


def newest_source_mtime(repo_root):
    """Most recent mtime across everything compiled into actyp_sim."""
    newest = 0.0
    newest_path = None
    paths = [os.path.join(repo_root, name) for name in SOURCE_FILES]
    for root_name in SOURCE_ROOTS:
        for dirpath, _dirnames, filenames in os.walk(
                os.path.join(repo_root, root_name)):
            for filename in filenames:
                if filename.endswith(SOURCE_SUFFIXES):
                    paths.append(os.path.join(dirpath, filename))
    for path in paths:
        try:
            mtime = os.path.getmtime(path)
        except OSError:
            continue
        if mtime > newest:
            newest, newest_path = mtime, path
    return newest, newest_path


def check_binary_fresh(binary, repo_root):
    """--update refuses a binary older than the newest source file."""
    try:
        binary_mtime = os.path.getmtime(binary)
    except OSError:
        print(f"bench_baseline: binary not found: {binary}", file=sys.stderr)
        sys.exit(2)
    source_mtime, source_path = newest_source_mtime(repo_root)
    if source_mtime > binary_mtime:
        rel = os.path.relpath(source_path, repo_root)
        print(f"bench_baseline: refusing --update from a stale binary: "
              f"{rel} is newer than {binary}.\n"
              f"Rebuild (cmake --build build -j) or pass --allow-stale.",
              file=sys.stderr)
        sys.exit(2)


def cell_key(cell):
    """Identity of a cell: its labels and dimensions, not its metrics."""
    parts = []
    for key, value in sorted(cell.items()):
        if isinstance(value, str) or key in DIMENSION_KEYS:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def is_wall_metric(scenario, name):
    return name in WALL_CLOCK_METRICS or scenario in WALL_CLOCK_SCENARIOS


def split_metrics(reports):
    """Indexes a sweep into (deterministic, wall) metric maps.

    deterministic: {(scenario, cell_key): {metric: value}} — exact-gated.
    wall: {(scenario, cell_key, metric): value} — band-gated; only the
    named WALL_CLOCK_METRICS are tracked (a wall-clock scenario's other
    counters are neither reproducible nor interesting, so they are
    ignored rather than gated).
    """
    det = {}
    wall = {}
    for report in reports:
        scenario = report["scenario"]
        for cell in report.get("cells", []):
            key = (scenario, cell_key(cell))
            metrics = {}
            for name, value in cell.items():
                if isinstance(value, str) or name in DIMENSION_KEYS:
                    continue
                if not isinstance(value, (int, float)):
                    continue
                if name in WALL_CLOCK_METRICS:
                    wall[key + (name,)] = float(value)
                elif scenario not in WALL_CLOCK_SCENARIOS:
                    metrics[name] = float(value)
            if scenario not in WALL_CLOCK_SCENARIOS:
                det[key] = metrics
    return det, wall


def diff_deterministic(baseline, current, tolerance):
    """Exact (or tolerance-bounded) compare. Returns drift lines."""
    drift = []
    for key, base_metrics in sorted(baseline.items()):
        scenario, cell = key
        cur_metrics = current.get(key)
        if cur_metrics is None:
            drift.append(f"{scenario} [{cell}]: cell missing from this run")
            continue
        for name, base_value in sorted(base_metrics.items()):
            if name not in cur_metrics:
                drift.append(f"{scenario} [{cell}] {name}: metric missing")
                continue
            cur_value = cur_metrics[name]
            if base_value == cur_value:
                continue
            scale = max(abs(base_value), abs(cur_value), 1e-12)
            rel = abs(cur_value - base_value) / scale
            if rel > tolerance:
                drift.append(
                    f"{scenario} [{cell}] {name}: "
                    f"{base_value:g} -> {cur_value:g} ({rel:+.1%})")
    for key in sorted(set(current) - set(baseline)):
        drift.append(f"{key[0]} [{key[1]}]: new cell (not in baseline)")
    return drift


def diff_wall(bands, current, slack):
    """Band gate: fail only outside the measured band by > slack, in
    the bad direction (slower latency, lower throughput)."""
    drift = []
    for key, band in sorted(bands.items()):
        scenario, cell, name = key.split("\t")
        value = current.get((scenario, cell, name))
        if value is None:
            drift.append(f"{scenario} [{cell}] {name}: "
                         "wall metric missing from this run")
            continue
        lo, hi = band["min"], band["max"]
        if name in THROUGHPUT_METRICS:
            floor = lo / (1.0 + slack)
            if value < floor:
                drift.append(
                    f"{scenario} [{cell}] {name}: {value:g} below "
                    f"{floor:g} (baseline band [{lo:g}, {hi:g}], "
                    f"slack {slack:g})")
        else:
            ceiling = hi * (1.0 + slack)
            if value > ceiling:
                drift.append(
                    f"{scenario} [{cell}] {name}: {value:g} above "
                    f"{ceiling:g} (baseline band [{lo:g}, {hi:g}], "
                    f"slack {slack:g})")
    return drift


def build_baseline(binary, repeats):
    """Runs the sweep `repeats` times: the deterministic metrics must be
    identical across runs; the wall metrics become min/max bands."""
    runs = [run_sweep(binary) for _ in range(repeats)]
    det0, _ = split_metrics(runs[0])
    bands = {}
    for index, run in enumerate(runs):
        det, wall = split_metrics(run)
        if det != det0:
            print("bench_baseline: deterministic metrics differ between "
                  f"repeat 0 and repeat {index} — the sweep is not "
                  "reproducible on this host; cannot build an exact "
                  "baseline", file=sys.stderr)
            sys.exit(2)
        for key, value in wall.items():
            entry = bands.setdefault(
                "\t".join(key), {"min": value, "max": value})
            entry["min"] = min(entry["min"], value)
            entry["max"] = max(entry["max"], value)
    return {
        "format": BASELINE_FORMAT,
        "pinned_args": RUN_ARGS,
        "repeats": repeats,
        "reports": runs[0],
        "wall_bands": bands,
    }


def load_baseline(path):
    with open(path) as fh:
        data = json.load(fh)
    if isinstance(data, list):
        print(f"bench_baseline: {path} is a format-1 baseline (plain "
              "report list); regenerate it with --update", file=sys.stderr)
        sys.exit(2)
    if data.get("format") != BASELINE_FORMAT:
        print(f"bench_baseline: {path} has unsupported format "
              f"{data.get('format')!r}; regenerate it with --update",
              file=sys.stderr)
        sys.exit(2)
    return data


def main():
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary",
                        default=os.path.join(repo_root, "build", "actyp_sim"))
    parser.add_argument("--baseline",
                        default=os.path.join(repo_root, "BENCH_baseline.json"))
    parser.add_argument("--output-dir", default=repo_root,
                        help="where BENCH_<sha>.json is written")
    parser.add_argument("--det-tolerance", type=float, default=0.0,
                        help="max relative drift for deterministic metrics "
                             "(default 0 = exact)")
    parser.add_argument("--wall-slack", type=float, default=2.0,
                        help="allowed excursion past the wall-clock band, "
                             "relative to the band edge (default 2.0)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs used by --update to measure wall-clock "
                             "bands (default 3)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from fresh runs")
    parser.add_argument("--allow-stale", action="store_true",
                        help="let --update run from a binary older than "
                             "the newest source file")
    args = parser.parse_args()

    if args.update:
        if not args.allow_stale:
            check_binary_fresh(args.binary, repo_root)
        if args.repeats < 1:
            print("bench_baseline: --repeats must be >= 1", file=sys.stderr)
            return 2
        baseline = build_baseline(args.binary, args.repeats)
        with open(args.baseline, "w") as fh:
            json.dump(baseline, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"bench_baseline: baseline refreshed at {args.baseline} "
              f"({args.repeats} repeats, "
              f"{len(baseline['wall_bands'])} wall bands)")
        return 0

    reports = run_sweep(args.binary)
    sha = git_sha(repo_root)
    run_path = os.path.join(args.output_dir, f"BENCH_{sha}.json")
    with open(run_path, "w") as fh:
        json.dump(reports, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"bench_baseline: wrote {run_path}")

    if not os.path.exists(args.baseline):
        print("bench_baseline: no baseline checked in; "
              "run with --update to create one")
        return 0

    baseline = load_baseline(args.baseline)
    base_det, _ = split_metrics(baseline["reports"])
    cur_det, cur_wall = split_metrics(reports)
    drift = diff_deterministic(base_det, cur_det, args.det_tolerance)
    drift += diff_wall(baseline["wall_bands"], cur_wall, args.wall_slack)
    if not drift:
        print(f"bench_baseline: {len(cur_det)} cells exact, "
              f"{len(cur_wall)} wall metrics within band "
              f"(slack {args.wall_slack:g})")
        return 0
    print(f"bench_baseline: {len(drift)} metric(s) drifted:")
    for line in drift:
        print(f"  {line}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
