#!/usr/bin/env python3
"""Perf tracking for the actyp_sim scenario sweep.

Runs ``actyp_sim --all --json`` at pinned, deterministic settings,
writes the result to ``BENCH_<sha>.json``, and diffs the key metrics of
every scenario cell against a checked-in ``BENCH_baseline.json``.

Usage:
    tools/bench_baseline.py                      # run + diff
    tools/bench_baseline.py --update             # refresh the baseline
    tools/bench_baseline.py --binary build/actyp_sim --tolerance 0.25

Exit status: 0 when every compared metric is within tolerance (or no
baseline exists yet), 1 on drift, 2 on harness errors. The CI step that
runs this is advisory: drift is a signal to investigate, not a gate,
because simulated metrics shift legitimately when the model changes —
refresh the baseline in the same PR when that happens.

Wall-clock scenarios and wall-clock metrics (the TCP roundtrip
latencies, the query micro-benchmark timings, the scaling sweeps'
ev_per_s_wall throughput) are excluded from the diff; everything
else in the sweep — including the refresh-economics counters
entries_refreshed and refresh_cost, and the replicated-directory
observables converge_time_s / sync_bytes / full_syncs / failovers
from wan_partition_heal, directory_failover, and fig8's
replicated-directory cells — is a deterministic function of the
pinned seed and is tracked. The run is pinned with --stable so the
snapshot itself is byte-reproducible. The sweep's own wall-clock is
recorded in the snapshot under a "_sweep_meta" entry for perf tracking
over time, and also excluded.
"""

import argparse
import json
import os
import subprocess
import sys
import time

# Pinned run: deterministic, and small enough for a CI sidecar (~10 s).
# time-scale 0.4 keeps the simulated window past the monitor's 5 s sweep
# period, so the tracked entries_refreshed / refresh_cost metrics see
# real monitor churn instead of a quiet fleet.
RUN_ARGS = [
    "--all", "--json", "--stable",
    "--seed", "1",
    "--machines", "400",
    "--clients", "4",
    "--time-scale", "0.4",
]

# Scenarios whose numbers are wall-clock, not simulated time.
WALL_CLOCK_SCENARIOS = {"tcp_roundtrip", "abl_query_micro", "_sweep_meta"}
# Wall-clock metric names excluded wherever they appear.
WALL_CLOCK_METRICS = {"mean_ms", "max_ms", "p95_ms", "ns_per_op",
                      "ev_per_s_wall"}

DIMENSION_KEYS = {
    "pools", "clients", "machines", "segments", "replicas", "fanout",
    "loss", "rate", "calls", "bucket_lo", "bucket_hi", "qms", "pms",
}


def run_sweep(binary):
    start = time.monotonic()
    try:
        out = subprocess.run(
            [binary] + RUN_ARGS, capture_output=True, text=True, check=True)
    except FileNotFoundError:
        print(f"bench_baseline: binary not found: {binary}", file=sys.stderr)
        sys.exit(2)
    except subprocess.CalledProcessError as err:
        sys.stderr.write(err.stderr)
        print(f"bench_baseline: {binary} failed with {err.returncode}",
              file=sys.stderr)
        sys.exit(2)
    elapsed = time.monotonic() - start
    reports = []
    for line in out.stdout.splitlines():
        line = line.strip()
        if line:
            reports.append(json.loads(line))
    # Host-side perf record for the whole sweep (excluded from the diff:
    # wall-clock, machine-dependent).
    reports.append({
        "scenario": "_sweep_meta",
        "title": "sweep harness record",
        "cells": [{"wall_clock_s": round(elapsed, 3)}],
        "note": "wall-clock of the pinned --all sweep on the CI host",
    })
    print(f"bench_baseline: sweep wall-clock {elapsed:.1f}s")
    return reports


def git_sha(repo_root):
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=repo_root,
            capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "worktree"


def cell_key(cell):
    """Identity of a cell: its labels and dimensions, not its metrics."""
    parts = []
    for key, value in sorted(cell.items()):
        if isinstance(value, str) or key in DIMENSION_KEYS:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def cell_metrics(scenario, cell):
    metrics = {}
    for key, value in cell.items():
        if isinstance(value, str) or key in DIMENSION_KEYS:
            continue
        if key in WALL_CLOCK_METRICS or scenario in WALL_CLOCK_SCENARIOS:
            continue
        if isinstance(value, (int, float)):
            metrics[key] = float(value)
    return metrics


def index_reports(reports):
    indexed = {}
    for report in reports:
        scenario = report["scenario"]
        for cell in report.get("cells", []):
            indexed[(scenario, cell_key(cell))] = cell_metrics(scenario, cell)
    return indexed


def diff(baseline, current, tolerance):
    """Returns a list of human-readable drift lines."""
    drift = []
    for key, base_metrics in sorted(baseline.items()):
        scenario, cell = key
        cur_metrics = current.get(key)
        if cur_metrics is None:
            drift.append(f"{scenario} [{cell}]: cell missing from this run")
            continue
        for name, base_value in sorted(base_metrics.items()):
            if name not in cur_metrics:
                drift.append(f"{scenario} [{cell}] {name}: metric missing")
                continue
            cur_value = cur_metrics[name]
            if base_value == cur_value:
                continue
            scale = max(abs(base_value), abs(cur_value), 1e-12)
            rel = abs(cur_value - base_value) / scale
            if rel > tolerance:
                drift.append(
                    f"{scenario} [{cell}] {name}: "
                    f"{base_value:g} -> {cur_value:g} ({rel:+.1%})")
    for key in sorted(set(current) - set(baseline)):
        drift.append(f"{key[0]} [{key[1]}]: new cell (not in baseline)")
    return drift


def main():
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary",
                        default=os.path.join(repo_root, "build", "actyp_sim"))
    parser.add_argument("--baseline",
                        default=os.path.join(repo_root, "BENCH_baseline.json"))
    parser.add_argument("--output-dir", default=repo_root,
                        help="where BENCH_<sha>.json is written")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="max relative drift per metric (default 10%%)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run")
    args = parser.parse_args()

    reports = run_sweep(args.binary)
    sha = git_sha(repo_root)
    run_path = os.path.join(args.output_dir, f"BENCH_{sha}.json")
    with open(run_path, "w") as fh:
        json.dump(reports, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"bench_baseline: wrote {run_path}")

    if args.update:
        with open(args.baseline, "w") as fh:
            json.dump(reports, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"bench_baseline: baseline refreshed at {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        print("bench_baseline: no baseline checked in; "
              "run with --update to create one")
        return 0

    with open(args.baseline) as fh:
        baseline = index_reports(json.load(fh))
    current = index_reports(reports)
    drift = diff(baseline, current, args.tolerance)
    if not drift:
        print(f"bench_baseline: {len(current)} cells within "
              f"{args.tolerance:.0%} of baseline")
        return 0
    print(f"bench_baseline: {len(drift)} metric(s) drifted beyond "
          f"{args.tolerance:.0%}:")
    for line in drift:
        print(f"  {line}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
