// actyp_tracediff: compare two --trace-out Chrome trace files and
// report per-stage latency deltas for the request ids present in both.
//
//   actyp_tracediff base.json candidate.json [--top N]
//
// Fixed-seed runs assign the same request ids to the same logical
// requests, so diffing two traces (e.g. before/after a scheduler
// change, or loss=0 vs loss=0.05) attributes an end-to-end latency
// shift to the stage that moved. Spans are complete events ("ph":"X")
// with the duration in microseconds and the request id in args.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace {

struct RequestStages {
  std::map<std::string, double> stage_us;  // stage name -> summed dur
  double total_us = 0;
};

using TraceIndex = std::map<std::string, RequestStages>;

std::optional<std::string> JsonString(const std::string& line,
                                      const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  const auto start = at + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return std::nullopt;
  return line.substr(start, end - start);
}

std::optional<double> JsonNumber(const std::string& line,
                                 const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  const char* start = line.c_str() + at + needle.size();
  char* end = nullptr;
  const double value = std::strtod(start, &end);
  if (end == start) return std::nullopt;
  return value;
}

bool LoadTrace(const std::string& path, TraceIndex* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    // One span per line: the writer emits each traceEvents element on
    // its own line, so splitting on newlines never cuts a span.
    if (line.find("\"ph\":\"X\"") == std::string::npos) continue;
    const auto id = JsonString(line, "request_id");
    const auto name = JsonString(line, "name");
    const auto dur = JsonNumber(line, "dur");
    if (!id || !name || !dur) continue;
    auto& request = (*out)[*id];
    request.stage_us[*name] += *dur;
    request.total_us += *dur;
  }
  return true;
}

int Usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: actyp_tracediff BASE.json CANDIDATE.json [--top N]\n"
               "\n"
               "Diffs per-stage span time for the request ids present\n"
               "in both Chrome trace files (--trace-out output), and\n"
               "lists the N requests that moved most (default 10).\n");
  return code;
}

std::string FormatUs(double us) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.0f", us);
  return buffer;
}

std::string FormatDelta(double us) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%+.0f", us);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::size_t top = 10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      return Usage(0);
    } else if (std::strcmp(argv[i], "--top") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "actyp_tracediff: --top requires a value\n");
        return Usage(2);
      }
      char* end = nullptr;
      const long value = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || value < 1) {
        std::fprintf(stderr, "actyp_tracediff: invalid value '%s' for "
                     "--top\n", argv[i]);
        return Usage(2);
      }
      top = static_cast<std::size_t>(value);
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.size() != 2) return Usage(2);

  TraceIndex base, candidate;
  if (!LoadTrace(paths[0], &base)) {
    std::fprintf(stderr, "actyp_tracediff: cannot open '%s'\n",
                 paths[0].c_str());
    return 1;
  }
  if (!LoadTrace(paths[1], &candidate)) {
    std::fprintf(stderr, "actyp_tracediff: cannot open '%s'\n",
                 paths[1].c_str());
    return 1;
  }

  // Join on request id; per-stage totals accumulate over the join.
  struct RequestDelta {
    std::string id;
    double base_us = 0;
    double candidate_us = 0;
    double delta_us = 0;
  };
  std::vector<RequestDelta> joined;
  std::map<std::string, std::pair<double, double>> stage_totals;
  std::size_t base_only = 0;
  for (const auto& [id, base_request] : base) {
    const auto it = candidate.find(id);
    if (it == candidate.end()) {
      ++base_only;
      continue;
    }
    RequestDelta delta;
    delta.id = id;
    delta.base_us = base_request.total_us;
    delta.candidate_us = it->second.total_us;
    delta.delta_us = delta.candidate_us - delta.base_us;
    joined.push_back(delta);
    for (const auto& [stage, us] : base_request.stage_us) {
      stage_totals[stage].first += us;
    }
    for (const auto& [stage, us] : it->second.stage_us) {
      stage_totals[stage].second += us;
    }
  }
  const std::size_t candidate_only = candidate.size() - joined.size();

  std::printf("trace diff: %s vs %s\n", paths[0].c_str(),
              paths[1].c_str());
  std::printf("requests: %zu common, %zu base-only, %zu candidate-only\n",
              joined.size(), base_only, candidate_only);
  if (joined.empty()) {
    std::printf("no common request ids; nothing to diff\n");
    return 0;
  }

  std::printf("per-stage span time over common requests (us):\n");
  std::printf("  %-24s %12s %12s %12s\n", "stage", "base", "candidate",
              "delta");
  for (const auto& [stage, totals] : stage_totals) {
    std::printf("  %-24s %12s %12s %12s\n", stage.c_str(),
                FormatUs(totals.first).c_str(),
                FormatUs(totals.second).c_str(),
                FormatDelta(totals.second - totals.first).c_str());
  }

  std::sort(joined.begin(), joined.end(),
            [](const RequestDelta& a, const RequestDelta& b) {
              const double da = std::abs(a.delta_us);
              const double db = std::abs(b.delta_us);
              if (da != db) return da > db;
              return a.id < b.id;
            });
  std::printf("top %zu request(s) by |delta|:\n",
              std::min(top, joined.size()));
  for (std::size_t i = 0; i < joined.size() && i < top; ++i) {
    const RequestDelta& request = joined[i];
    std::printf("  req %s: base=%sus candidate=%sus delta=%sus\n",
                request.id.c_str(), FormatUs(request.base_us).c_str(),
                FormatUs(request.candidate_us).c_str(),
                FormatDelta(request.delta_us).c_str());
    // Name the stages that moved within this request.
    const auto& base_request = base[request.id];
    const auto& cand_request = candidate[request.id];
    std::map<std::string, double> deltas;
    for (const auto& [stage, us] : base_request.stage_us) {
      deltas[stage] -= us;
    }
    for (const auto& [stage, us] : cand_request.stage_us) {
      deltas[stage] += us;
    }
    for (const auto& [stage, delta] : deltas) {
      if (delta == 0) continue;
      std::printf("    %-24s %sus\n", stage.c_str(),
                  FormatDelta(delta).c_str());
    }
  }
  return 0;
}
