// actyp_fleet_tool: generate and inspect white-pages snapshots.
//
//   generate: actyp_fleet_tool gen <machines> <clusters> [seed] > fleet.db
//   inspect:  actyp_fleet_tool info fleet.db
//
// Snapshots use the line format of db::MachineRecord::Serialize and can
// be loaded with db::ResourceDatabase::LoadFrom.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/strings.hpp"
#include "db/database.hpp"
#include "workload/generator.hpp"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  actyp_fleet_tool gen <machines> <clusters> [seed]\n"
               "  actyp_fleet_tool info <snapshot-file>\n");
  return 1;
}

int Generate(int argc, char** argv) {
  if (argc < 4) return Usage();
  const auto machines = actyp::ParseInt(argv[2]);
  const auto clusters = actyp::ParseInt(argv[3]);
  if (!machines || !clusters || *machines <= 0 || *clusters <= 0) {
    return Usage();
  }
  std::uint64_t seed = 42;
  if (argc > 4) {
    if (auto s = actyp::ParseInt(argv[4])) {
      seed = static_cast<std::uint64_t>(*s);
    }
  }

  actyp::db::ResourceDatabase database;
  actyp::workload::FleetSpec spec;
  spec.machine_count = static_cast<std::size_t>(*machines);
  spec.cluster_count = static_cast<std::size_t>(*clusters);
  actyp::Rng rng(seed);
  BuildFleet(spec, rng, &database, nullptr);
  std::fputs(database.Serialize().c_str(), stdout);
  return 0;
}

int Info(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::ifstream in(argv[2]);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", argv[2]);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  actyp::db::ResourceDatabase database;
  const actyp::Status status = database.LoadFrom(buffer.str());
  if (!status.ok()) {
    std::fprintf(stderr, "parse error: %s\n", status.ToString().c_str());
    return 1;
  }

  std::map<std::string, int> by_arch, by_cluster, by_state;
  double total_memory = 0, total_speed = 0;
  int cpus = 0;
  database.ForEach([&](const actyp::db::MachineRecord& rec) {
    auto arch = rec.params.find("arch");
    auto cluster = rec.params.find("cluster");
    ++by_arch[arch == rec.params.end() ? "?" : arch->second];
    ++by_cluster[cluster == rec.params.end() ? "?" : cluster->second];
    ++by_state[std::string(actyp::db::MachineStateName(rec.state))];
    total_memory += rec.dyn.available_memory_mb;
    total_speed += rec.effective_speed;
    cpus += rec.num_cpus;
  });

  std::printf("machines : %zu (%d cpus, %.1f GB memory, mean speed %.2f)\n",
              database.size(), cpus, total_memory / 1024.0,
              database.size() ? total_speed / static_cast<double>(database.size())
                              : 0.0);
  std::printf("states   :");
  for (const auto& [state, count] : by_state) {
    std::printf(" %s=%d", state.c_str(), count);
  }
  std::printf("\narchs    :");
  for (const auto& [arch, count] : by_arch) {
    std::printf(" %s=%d", arch.c_str(), count);
  }
  std::printf("\nclusters : %zu distinct", by_cluster.size());
  std::printf("\nfree     : %zu\n", database.free_count());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "gen") == 0) return Generate(argc, argv);
  if (std::strcmp(argv[1], "info") == 0) return Info(argc, argv);
  return Usage();
}
