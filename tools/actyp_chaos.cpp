// actyp_chaos: randomized fault x workload sweeps with machine-checked
// invariants and automatic repro shrinking — the property-based fuzzer
// built on the repo's deterministic replay machinery.
//
//   smoke:   actyp_chaos --budget 6 --seed 11 --jobs 2 --time-scale 0.2
//   hunt:    actyp_chaos --budget 400 --seed 1 --jobs 8 --out bundles/
//   hostile: actyp_chaos --hostile --budget 8 --seed 5 --out bundles/
//
// Trial i is generated from (seed + i) alone — regime, fault plan, and
// scenario seed — runs deterministically, and checks the invariant
// catalogue (src/chaos/invariants.hpp) after a drain window. On any
// violation the driver delta-debugs the fault plan to a minimal
// still-failing plan, writes an `actyp_sim --config` repro bundle, and
// exits 1. Output is byte-identical for any --jobs value.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "chaos/chaos_plan.hpp"
#include "common/strings.hpp"
#include "chaos/shrinker.hpp"
#include "chaos/trial.hpp"
#include "obs/postmortem.hpp"

namespace {

using actyp::ScenarioCell;
using actyp::ScenarioReport;
using actyp::ScenarioRunOptions;

int Usage(int code) {
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: actyp_chaos [--budget N] [--seed S] [--jobs M]\n"
      "                   [--time-scale X] [--quiesce S] [--hostile]\n"
      "                   [--out DIR] [--shrink-runs N] [--json]\n"
      "\n"
      "  --budget N      independently-seeded trials to run (default 16)\n"
      "  --seed S        base seed; trial i uses seed S+i (default "
      "20010611)\n"
      "  --jobs M        run trials on M worker threads; output is\n"
      "                  byte-identical for any M\n"
      "  --time-scale X  scale simulated durations (default 1)\n"
      "  --quiesce S     extra drain floor in simulated seconds before\n"
      "                  invariants are judged (scaled by --time-scale)\n"
      "  --hostile       widen the generator into regimes expected to\n"
      "                  wedge (zero request timeout under loss) — the\n"
      "                  seeded known-violation space\n"
      "  --out DIR       write repro bundles here (default .)\n"
      "  --shrink-runs N re-execution budget per shrink (default 48)\n"
      "  --json          emit the sweep report as JSON\n"
      "\n"
      "exit status: 0 clean, 1 invariant violations found, 2 usage\n");
  return code;
}

int MissingValue(const char* flag) {
  std::fprintf(stderr, "actyp_chaos: %s requires a value\n", flag);
  return Usage(2);
}

int BadValue(const char* flag, const char* text) {
  std::fprintf(stderr, "actyp_chaos: invalid value '%s' for %s\n", text,
               flag);
  return Usage(2);
}

bool ParseLong(const char* text, long min_value, long* out) {
  const auto value = actyp::ParseInt(text);
  if (!value || *value < min_value) return false;
  *out = *value;
  return true;
}

bool ParseDouble(const char* text, double* out) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0') return false;
  *out = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t budget = 16;
  std::uint64_t seed = 20010611;
  std::size_t jobs = 1;
  double time_scale = 1.0;
  double quiesce_s = 0.0;
  bool hostile = false;
  std::string out_dir = ".";
  std::size_t shrink_runs = 48;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      return Usage(0);
    } else if (std::strcmp(arg, "--budget") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      long value = 0;
      if (!ParseLong(argv[++i], 1, &value)) return BadValue(arg, argv[i]);
      budget = static_cast<std::size_t>(value);
    } else if (std::strcmp(arg, "--seed") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      long value = 0;
      if (!ParseLong(argv[++i], 0, &value)) return BadValue(arg, argv[i]);
      seed = static_cast<std::uint64_t>(value);
    } else if (std::strcmp(arg, "--jobs") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      long value = 0;
      if (!ParseLong(argv[++i], 1, &value)) return BadValue(arg, argv[i]);
      jobs = static_cast<std::size_t>(value);
    } else if (std::strcmp(arg, "--time-scale") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      double value = 0;
      if (!ParseDouble(argv[++i], &value) || !(value > 0)) {
        return BadValue(arg, argv[i]);
      }
      time_scale = value;
    } else if (std::strcmp(arg, "--quiesce") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      double value = 0;
      if (!ParseDouble(argv[++i], &value) || !(value >= 0)) {
        return BadValue(arg, argv[i]);
      }
      quiesce_s = value;
    } else if (std::strcmp(arg, "--hostile") == 0) {
      hostile = true;
    } else if (std::strcmp(arg, "--out") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      out_dir = argv[++i];
    } else if (std::strcmp(arg, "--shrink-runs") == 0) {
      if (i + 1 >= argc) return MissingValue(arg);
      long value = 0;
      if (!ParseLong(argv[++i], 1, &value)) return BadValue(arg, argv[i]);
      shrink_runs = static_cast<std::size_t>(value);
    } else if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else {
      std::fprintf(stderr, "actyp_chaos: unknown argument '%s'\n", arg);
      return Usage(2);
    }
  }

  actyp::chaos::TrialParams params;
  params.time_scale = time_scale;
  params.quiesce_floor_s = quiesce_s;

  actyp::chaos::ChaosRanges ranges;
  ranges.hostile = hostile;
  const actyp::chaos::ChaosPlanGenerator generator(
      ranges, actyp::chaos::ActiveWindowSeconds(params));

  std::vector<actyp::chaos::ChaosTrial> trials(budget);
  for (std::size_t i = 0; i < budget; ++i) {
    trials[i] = generator.Generate(seed + i);
  }

  // Run the budget in parallel; every trial owns its simulation, and
  // cells land in trial order, so the report is independent of --jobs.
  std::vector<actyp::chaos::TrialOutcome> outcomes(budget);
  std::vector<actyp::bench::CellTask> tasks;
  tasks.reserve(budget);
  for (std::size_t i = 0; i < budget; ++i) {
    tasks.push_back([&trials, &outcomes, &params, i] {
      outcomes[i] = actyp::chaos::RunTrial(trials[i], params);
      const auto& outcome = outcomes[i];
      ScenarioCell cell;
      cell.labels.emplace_back("seed", std::to_string(trials[i].seed));
      cell.dims.emplace_back(
          "events", static_cast<double>(trials[i].plan.events.size()));
      cell.metrics.emplace_back("completed",
                                static_cast<double>(outcome.completed));
      cell.metrics.emplace_back("failures",
                                static_cast<double>(outcome.failures));
      cell.metrics.emplace_back("success_rate", outcome.success_rate);
      cell.metrics.emplace_back("lost", static_cast<double>(outcome.lost));
      cell.metrics.emplace_back("retries",
                                static_cast<double>(outcome.retries));
      cell.metrics.emplace_back(
          "machines_crashed",
          static_cast<double>(outcome.machines_crashed));
      cell.metrics.emplace_back(
          "services_crashed",
          static_cast<double>(outcome.services_crashed));
      cell.metrics.emplace_back(
          "violations", static_cast<double>(outcome.violations.size()));
      return cell;
    });
  }
  ScenarioReport report;
  report.scenario = "chaos";
  report.title = "Chaos sweep — " + std::to_string(budget) +
                 " seeded fault x workload trials";
  ScenarioRunOptions options;
  options.jobs = jobs;
  options.stable = true;
  actyp::bench::RunCellTasks(options, std::move(tasks), &report);

  std::size_t violating = 0;
  for (const auto& outcome : outcomes) {
    if (!outcome.violations.empty()) ++violating;
  }
  report.note =
      violating == 0
          ? "all invariants held across the budget"
          : std::to_string(violating) + " trial(s) violated invariants";
  if (json) {
    actyp::WriteReportJson(report, std::cout);
  } else {
    actyp::WriteReportTable(report, std::cout);
  }

  if (violating == 0) return 0;

  // Findings: shrink serially in trial order (deterministic output),
  // then dump one repro bundle per violating trial.
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "actyp_chaos: cannot create '%s': %s\n",
                 out_dir.c_str(), ec.message().c_str());
    return 1;
  }
  const actyp::chaos::Shrinker shrinker(
      [&params](const actyp::chaos::ChaosTrial& trial) {
        return actyp::chaos::RunTrial(trial, params).violations;
      },
      shrink_runs);
  for (std::size_t i = 0; i < budget; ++i) {
    if (outcomes[i].violations.empty()) continue;
    std::printf("trial %zu seed=%s: %s\n", i,
                std::to_string(trials[i].seed).c_str(),
                actyp::chaos::FormatViolations(outcomes[i].violations)
                    .c_str());
    const auto shrunk = shrinker.Shrink(trials[i]);
    const auto& minimal = shrunk.reproduced ? shrunk.trial : trials[i];
    if (shrunk.reproduced) {
      std::printf("  shrunk %zu -> %zu event(s) in %zu run(s), "
                  "reproducing %s\n",
                  trials[i].plan.events.size(),
                  minimal.plan.events.size(), shrunk.runs,
                  shrunk.invariant.c_str());
    } else {
      std::printf("  violation did not reproduce on re-run; dumping the "
                  "original plan\n");
    }
    const std::string path = out_dir + "/chaos_repro_seed" +
                             std::to_string(trials[i].seed) + ".conf";
    std::ofstream bundle(path);
    bundle << actyp::chaos::ReproBundleText(minimal, params);
    if (!bundle) {
      std::fprintf(stderr, "actyp_chaos: cannot write '%s'\n",
                   path.c_str());
      return 1;
    }
    bundle.close();
    std::printf("  repro bundle: %s\n", path.c_str());
    for (const auto& event : minimal.plan.events) {
      std::printf("    %s\n", event.Serialize().c_str());
    }
    // Re-run the minimal trial once more with the flight recorder and
    // gauge sampler armed, and dump the post-mortem next to the bundle.
    actyp::chaos::TrialCapture capture;
    const auto replay = actyp::chaos::RunTrial(minimal, params, &capture);
    actyp::obs::PostmortemBundle postmortem;
    postmortem.seed = minimal.seed;
    postmortem.regime = minimal.regime.Serialize();
    const auto& violations = replay.violations.empty()
                                 ? outcomes[i].violations
                                 : replay.violations;
    for (const auto& violation : violations) {
      postmortem.violations.push_back(violation.invariant + ": " +
                                      violation.detail);
    }
    for (const auto& event : minimal.plan.events) {
      postmortem.fault_events.push_back(event.Serialize());
    }
    postmortem.telemetry = std::move(capture.telemetry);
    postmortem.flight = std::move(capture.flight);
    const std::string pm_path = out_dir + "/chaos_postmortem_seed" +
                                std::to_string(minimal.seed) + ".jsonl";
    const auto pm_status =
        actyp::obs::WritePostmortemFile(postmortem, pm_path);
    if (!pm_status.ok()) {
      std::fprintf(stderr, "actyp_chaos: %s\n",
                   pm_status.ToString().c_str());
      return 1;
    }
    std::printf("  post-mortem dump: %s\n", pm_path.c_str());
  }
  return 1;
}
