// ApplicationManager: the application-management component of Fig. 2.
// It parses user input, extracts parameters against the knowledge base,
// selects an algorithm via the estimator, determines hardware
// requirements, and composes the ActYP query (events 2-3 of Fig. 1).
#pragma once

#include <string>

#include "common/status.hpp"
#include "punch/estimator.hpp"
#include "punch/knowledge_base.hpp"
#include "query/query.hpp"

namespace actyp::punch {

// A tool-run request as the network desktop forwards it: the tool name,
// the raw input deck, and user identity/preferences.
struct RunRequest {
  std::string tool;
  std::string input_deck;     // "param = value" lines
  std::string user_login;
  std::string access_group;
  std::string domain;         // preferred administrative domain; "" = any
  double cpu_budget = 0.0;    // optional cap on estimated CPU seconds
};

struct ComposedRun {
  query::Query query;          // ready for the pipeline
  ResourceEstimate estimate;   // chosen algorithm + predicted resources
  std::string tool_group;
};

class ApplicationManager {
 public:
  explicit ApplicationManager(const KnowledgeBase* kb) : kb_(kb) {}

  // Fig. 2 end-to-end: parse -> extract/qualify -> rank/select ->
  // determine hardware -> compose query.
  [[nodiscard]] Result<ComposedRun> Compose(const RunRequest& request) const;

  // Parses an input deck ("key = value" per line, '#' comments) into
  // numeric run parameters; non-numeric values are ignored.
  [[nodiscard]] static RunParameters ExtractParameters(
      const std::string& input_deck);

 private:
  const KnowledgeBase* kb_;
};

}  // namespace actyp::punch
