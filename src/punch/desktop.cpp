#include "punch/desktop.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace actyp::punch {

Status UserRegistry::AddUser(UserAccount account) {
  if (account.login.empty()) return InvalidArgument("user needs a login");
  const std::string key = ToLower(account.login);
  if (users_.count(key)) {
    return AlreadyExists("user '" + account.login + "'");
  }
  users_[key] = std::move(account);
  return Status::Ok();
}

Result<UserAccount> UserRegistry::Authenticate(const std::string& login) const {
  auto it = users_.find(ToLower(login));
  if (it == users_.end()) {
    return PermissionDenied("unknown user '" + login + "'");
  }
  return it->second;
}

bool UserRegistry::MayRun(const UserAccount& account,
                          const std::string& tool) const {
  if (account.allowed_tools.empty()) return true;
  const std::string lower = ToLower(tool);
  return std::any_of(
      account.allowed_tools.begin(), account.allowed_tools.end(),
      [&lower](const std::string& t) { return ToLower(t) == lower; });
}

NetworkDesktop::NetworkDesktop(const KnowledgeBase* kb,
                               const UserRegistry* users,
                               VirtualFileSystem* vfs, SubmitFn submit,
                               ReleaseFn release)
    : kb_(kb),
      users_(users),
      vfs_(vfs),
      submit_(std::move(submit)),
      release_(std::move(release)),
      app_manager_(kb) {}

Result<RunOutcome> NetworkDesktop::StartRun(const RunRequest& request) {
  // Event 1: authenticate + authorize.
  auto account = users_->Authenticate(request.user_login);
  if (!account.ok()) return account.status();
  if (!users_->MayRun(*account, request.tool)) {
    return PermissionDenied("user '" + request.user_login +
                            "' may not run '" + request.tool + "'");
  }

  // Event 2: application management composes the query.
  RunRequest enriched = request;
  enriched.access_group = account->access_group;
  auto composed = app_manager_.Compose(enriched);
  if (!composed.ok()) return composed.status();

  // Events 3-6: the pipeline identifies, locates, and selects resources.
  auto allocation = submit_(composed->query.ToText());
  if (!allocation.ok()) return allocation.status();

  RunOutcome outcome;
  outcome.allocation = std::move(allocation.value());
  outcome.estimate = composed->estimate;

  // Mount the application disk and the user's data disk from their
  // storage provider into the shadow account.
  auto app_mount = vfs_->Mount(outcome.allocation.session_key,
                               outcome.allocation.machine_name,
                               "apps/" + ToLower(request.tool));
  if (app_mount.ok()) outcome.mounts.push_back(std::move(app_mount.value()));
  const std::string storage = account->storage_provider.empty()
                                  ? "home"
                                  : account->storage_provider;
  auto data_mount = vfs_->Mount(outcome.allocation.session_key,
                                outcome.allocation.machine_name,
                                storage + "/" + ToLower(account->login));
  if (data_mount.ok()) outcome.mounts.push_back(std::move(data_mount.value()));
  return outcome;
}

Status NetworkDesktop::FinishRun(const RunOutcome& outcome) {
  vfs_->UnmountSession(outcome.allocation.session_key);
  if (release_) release_(outcome.allocation);
  return Status::Ok();
}

}  // namespace actyp::punch
