#include "punch/knowledge_base.hpp"

#include "common/strings.hpp"

namespace actyp::punch {

Status KnowledgeBase::RegisterTool(ToolSpec spec) {
  if (spec.name.empty()) return InvalidArgument("tool must have a name");
  if (spec.algorithms.empty()) {
    return InvalidArgument("tool '" + spec.name +
                           "' must have at least one algorithm");
  }
  const std::string key = ToLower(spec.name);
  if (tools_.count(key)) {
    return AlreadyExists("tool '" + spec.name + "'");
  }
  tools_[key] = std::move(spec);
  return Status::Ok();
}

Result<ToolSpec> KnowledgeBase::Lookup(const std::string& tool) const {
  auto it = tools_.find(ToLower(tool));
  if (it == tools_.end()) return NotFound("tool '" + tool + "'");
  return it->second;
}

std::vector<std::string> KnowledgeBase::ToolNames() const {
  std::vector<std::string> names;
  names.reserve(tools_.size());
  for (const auto& [key, spec] : tools_) names.push_back(spec.name);
  return names;
}

KnowledgeBase KnowledgeBase::Demo() {
  KnowledgeBase kb;

  // Semiconductor process simulator — the paper's own example tool.
  ToolSpec tsuprem;
  tsuprem.name = "tsuprem4";
  tsuprem.tool_group = "simulation";
  tsuprem.license = "tsuprem4";
  tsuprem.architectures = {"sun", "hp"};
  {
    AlgorithmSpec drift;
    drift.name = "drift-diffusion";
    drift.cpu_base = 10.0;
    drift.cpu_coeff = 2e-4;
    drift.cpu_exponents = {{"nodes", 1.2}};
    drift.memory_base_mb = 24.0;
    drift.memory_coeff = 0.002;
    drift.memory_param = "nodes";
    drift.accuracy = 1.0;
    tsuprem.algorithms.push_back(drift);

    AlgorithmSpec hydro;
    hydro.name = "hydro-dynamic";
    hydro.cpu_base = 30.0;
    hydro.cpu_coeff = 8e-4;
    hydro.cpu_exponents = {{"nodes", 1.3}};
    hydro.memory_base_mb = 48.0;
    hydro.memory_coeff = 0.004;
    hydro.memory_param = "nodes";
    hydro.accuracy = 2.0;
    tsuprem.algorithms.push_back(hydro);

    AlgorithmSpec monte;
    monte.name = "monte-carlo";
    monte.cpu_base = 120.0;
    monte.cpu_coeff = 5e-3;
    monte.cpu_exponents = {{"nodes", 1.0}, {"carriers", 0.8}};
    monte.memory_base_mb = 96.0;
    monte.memory_coeff = 0.008;
    monte.memory_param = "carriers";
    monte.accuracy = 3.0;
    tsuprem.algorithms.push_back(monte);
  }
  kb.RegisterTool(std::move(tsuprem));

  // Circuit simulator: cheap, runs anywhere.
  ToolSpec spice;
  spice.name = "spice3";
  spice.tool_group = "cad";
  spice.license = "";
  spice.architectures = {"sun", "hp", "linux", "sgi"};
  {
    AlgorithmSpec transient;
    transient.name = "transient";
    transient.cpu_base = 2.0;
    transient.cpu_coeff = 5e-5;
    transient.cpu_exponents = {{"devices", 1.1}, {"timesteps", 1.0}};
    transient.memory_base_mb = 8.0;
    transient.memory_coeff = 0.001;
    transient.memory_param = "devices";
    transient.accuracy = 1.0;
    spice.algorithms.push_back(transient);
  }
  kb.RegisterTool(std::move(spice));

  // Finite-element package: memory-hungry, licensed.
  ToolSpec fem;
  fem.name = "femlab";
  fem.tool_group = "simulation";
  fem.license = "femlab";
  fem.architectures = {"sun", "sgi"};
  {
    AlgorithmSpec direct;
    direct.name = "direct-solver";
    direct.cpu_base = 20.0;
    direct.cpu_coeff = 1e-6;
    direct.cpu_exponents = {{"elements", 1.8}};
    direct.memory_base_mb = 128.0;
    direct.memory_coeff = 0.05;
    direct.memory_param = "elements";
    direct.accuracy = 2.0;
    fem.algorithms.push_back(direct);

    AlgorithmSpec iterative;
    iterative.name = "iterative-solver";
    iterative.cpu_base = 40.0;
    iterative.cpu_coeff = 6e-6;
    iterative.cpu_exponents = {{"elements", 1.3}};
    iterative.memory_base_mb = 64.0;
    iterative.memory_coeff = 0.01;
    iterative.memory_param = "elements";
    iterative.accuracy = 1.5;
    fem.algorithms.push_back(iterative);
  }
  kb.RegisterTool(std::move(fem));

  return kb;
}

}  // namespace actyp::punch
