// Run-time and resource estimation (the paper delegates this to the
// PUNCH performance-modeling service [14, 18]; here it is the power-law
// models stored in the knowledge base, evaluated against the run's
// extracted parameters).
#pragma once

#include <map>
#include <string>

#include "common/status.hpp"
#include "punch/knowledge_base.hpp"

namespace actyp::punch {

// Parameters extracted from the user's input deck (Fig. 2 "extract
// relevant parameters"): name -> numeric value.
using RunParameters = std::map<std::string, double>;

struct ResourceEstimate {
  std::string algorithm;
  double cpu_units = 0.0;   // reference-machine CPU seconds
  double memory_mb = 0.0;
  double accuracy = 0.0;
};

class Estimator {
 public:
  // Estimates the cost of running `algorithm` with `parameters`.
  [[nodiscard]] static ResourceEstimate Estimate(
      const AlgorithmSpec& algorithm, const RunParameters& parameters);

  // Ranks all of the tool's algorithms (Fig. 2 "rank algorithms") by
  // accuracy per unit cost, subject to an optional CPU budget, and
  // returns the winner's estimate. With no budget the most accurate
  // algorithm wins.
  [[nodiscard]] static Result<ResourceEstimate> SelectAlgorithm(
      const ToolSpec& tool, const RunParameters& parameters,
      double cpu_budget = 0.0);
};

}  // namespace actyp::punch
