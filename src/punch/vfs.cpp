#include "punch/vfs.hpp"

#include <algorithm>

namespace actyp::punch {

Result<MountRecord> VirtualFileSystem::Mount(const std::string& session_key,
                                             const std::string& machine,
                                             const std::string& disk) {
  if (session_key.empty()) {
    return PermissionDenied("mount requires a session key");
  }
  if (machine.empty() || disk.empty()) {
    return InvalidArgument("mount requires a machine and a disk");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto& session_mounts = mounts_[session_key];
  for (const auto& mount : session_mounts) {
    if (mount.disk == disk) {
      return AlreadyExists("disk '" + disk + "' already mounted");
    }
  }
  MountRecord record;
  record.machine = machine;
  record.disk = disk;
  record.mount_point =
      "/punch/" + session_key.substr(0, std::min<std::size_t>(
                                            12, session_key.size())) +
      "/" + disk;
  session_mounts.push_back(record);
  return record;
}

Status VirtualFileSystem::Unmount(const std::string& session_key,
                                  const std::string& disk) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = mounts_.find(session_key);
  if (it == mounts_.end()) return NotFound("no mounts for session");
  auto& session_mounts = it->second;
  const auto mount = std::find_if(
      session_mounts.begin(), session_mounts.end(),
      [&disk](const MountRecord& m) { return m.disk == disk; });
  if (mount == session_mounts.end()) {
    return NotFound("disk '" + disk + "' is not mounted");
  }
  session_mounts.erase(mount);
  if (session_mounts.empty()) mounts_.erase(it);
  return Status::Ok();
}

std::size_t VirtualFileSystem::UnmountSession(const std::string& session_key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = mounts_.find(session_key);
  if (it == mounts_.end()) return 0;
  const std::size_t n = it->second.size();
  mounts_.erase(it);
  return n;
}

std::vector<MountRecord> VirtualFileSystem::MountsFor(
    const std::string& session_key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = mounts_.find(session_key);
  return it == mounts_.end() ? std::vector<MountRecord>() : it->second;
}

std::size_t VirtualFileSystem::total_mounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [session, session_mounts] : mounts_) {
    n += session_mounts.size();
  }
  return n;
}

}  // namespace actyp::punch
