// NetworkDesktop: the user-facing façade of Fig. 1. It authenticates the
// user, verifies tool authorization, drives the application-management
// component (Fig. 2) to compose the ActYP query, submits it to the
// pipeline, mounts the application and data disks via the virtual file
// system, and releases everything when the run completes (events 1-6).
//
// Transport is injected: examples wire `submit` to a simulated pipeline
// or to a TCP query-manager frontend.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "pipeline/protocol.hpp"
#include "punch/app_manager.hpp"
#include "punch/vfs.hpp"

namespace actyp::punch {

struct UserAccount {
  std::string login;
  std::string access_group;
  std::vector<std::string> allowed_tools;  // empty = all tools
  std::string storage_provider;            // "location" of the data disks
};

class UserRegistry {
 public:
  Status AddUser(UserAccount account);
  [[nodiscard]] Result<UserAccount> Authenticate(
      const std::string& login) const;
  [[nodiscard]] bool MayRun(const UserAccount& account,
                            const std::string& tool) const;

 private:
  std::map<std::string, UserAccount> users_;
};

// Submits native query text to the pipeline and waits for the result.
using SubmitFn =
    std::function<Result<pipeline::Allocation>(const std::string& query_text)>;
// Releases a held allocation.
using ReleaseFn = std::function<void(const pipeline::Allocation&)>;

struct RunOutcome {
  pipeline::Allocation allocation;
  ResourceEstimate estimate;
  std::vector<MountRecord> mounts;
};

class NetworkDesktop {
 public:
  NetworkDesktop(const KnowledgeBase* kb, const UserRegistry* users,
                 VirtualFileSystem* vfs, SubmitFn submit, ReleaseFn release);

  // Runs the full Fig. 1 sequence and leaves the run "executing": the
  // allocation and mounts stay live until FinishRun.
  Result<RunOutcome> StartRun(const RunRequest& request);

  // Event 6/completion: unmounts disks and relinquishes the machine and
  // shadow account.
  Status FinishRun(const RunOutcome& outcome);

 private:
  const KnowledgeBase* kb_;
  const UserRegistry* users_;
  VirtualFileSystem* vfs_;
  SubmitFn submit_;
  ReleaseFn release_;
  ApplicationManager app_manager_;
};

}  // namespace actyp::punch
