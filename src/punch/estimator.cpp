#include "punch/estimator.hpp"

#include <cmath>

namespace actyp::punch {

ResourceEstimate Estimator::Estimate(const AlgorithmSpec& algorithm,
                                     const RunParameters& parameters) {
  ResourceEstimate estimate;
  estimate.algorithm = algorithm.name;
  estimate.accuracy = algorithm.accuracy;

  double product = 1.0;
  for (const auto& [param, exponent] : algorithm.cpu_exponents) {
    auto it = parameters.find(param);
    const double value = it == parameters.end() ? 1.0 : it->second;
    product *= std::pow(std::max(value, 1.0), exponent);
  }
  estimate.cpu_units = algorithm.cpu_base + algorithm.cpu_coeff * product;

  double mem_driver = 1.0;
  if (!algorithm.memory_param.empty()) {
    auto it = parameters.find(algorithm.memory_param);
    if (it != parameters.end()) mem_driver = std::max(it->second, 1.0);
  }
  estimate.memory_mb =
      algorithm.memory_base_mb + algorithm.memory_coeff * mem_driver;
  return estimate;
}

Result<ResourceEstimate> Estimator::SelectAlgorithm(
    const ToolSpec& tool, const RunParameters& parameters,
    double cpu_budget) {
  bool found = false;
  ResourceEstimate best;
  double best_score = -1.0;
  for (const auto& algorithm : tool.algorithms) {
    const ResourceEstimate estimate = Estimate(algorithm, parameters);
    if (cpu_budget > 0.0 && estimate.cpu_units > cpu_budget) continue;
    // Accuracy first; cost breaks ties (cheaper wins at equal accuracy).
    const double score =
        estimate.accuracy * 1e9 - estimate.cpu_units;
    if (!found || score > best_score) {
      found = true;
      best = estimate;
      best_score = score;
    }
  }
  if (!found) {
    return Exhausted("no algorithm of '" + tool.name +
                     "' fits within the CPU budget");
  }
  return best;
}

}  // namespace actyp::punch
