// PUNCH Virtual File System service stub (paper [7], §2): after ActYP
// selects a machine, the network desktop asks the PVFS mount manager on
// that machine to mount the application and data disks into the shadow
// account; when the run completes they are unmounted. This stub keeps
// the full session bookkeeping (who mounted what, keyed by the
// session-specific access key) without real filesystems.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace actyp::punch {

struct MountRecord {
  std::string machine;
  std::string disk;        // e.g. "apps/tsuprem4" or "home/kapadia"
  std::string mount_point; // path inside the shadow account
};

class VirtualFileSystem {
 public:
  // Mounts `disk` on `machine` for the session; the session key is the
  // capability (a caller with a wrong key is rejected).
  Result<MountRecord> Mount(const std::string& session_key,
                            const std::string& machine,
                            const std::string& disk);

  Status Unmount(const std::string& session_key, const std::string& disk);

  // Unmounts everything the session holds; returns the number released.
  std::size_t UnmountSession(const std::string& session_key);

  [[nodiscard]] std::vector<MountRecord> MountsFor(
      const std::string& session_key) const;
  [[nodiscard]] std::size_t total_mounts() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<MountRecord>> mounts_;  // by session
};

}  // namespace actyp::punch
