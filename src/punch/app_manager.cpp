#include "punch/app_manager.hpp"

#include <cmath>

#include "common/strings.hpp"

namespace actyp::punch {

RunParameters ApplicationManager::ExtractParameters(
    const std::string& input_deck) {
  RunParameters parameters;
  for (const auto& raw_line : Split(input_deck, '\n')) {
    std::string_view line = TrimView(raw_line);
    const std::size_t comment = line.find('#');
    if (comment != std::string_view::npos) {
      line = TrimView(line.substr(0, comment));
    }
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) continue;
    const std::string key = ToLower(Trim(line.substr(0, eq)));
    if (key.empty()) continue;
    if (auto value = ParseDouble(TrimView(line.substr(eq + 1)))) {
      parameters[key] = *value;
    }
  }
  return parameters;
}

Result<ComposedRun> ApplicationManager::Compose(
    const RunRequest& request) const {
  auto tool = kb_->Lookup(request.tool);
  if (!tool.ok()) return tool.status();

  const RunParameters parameters = ExtractParameters(request.input_deck);
  auto estimate =
      Estimator::SelectAlgorithm(*tool, parameters, request.cpu_budget);
  if (!estimate.ok()) return estimate.status();

  ComposedRun run;
  run.estimate = std::move(estimate.value());
  run.tool_group = tool->tool_group;

  // Hardware requirements (Fig. 2 "determine hardware"): supported
  // architectures become an or-clause, memory is the estimate rounded up,
  // licenses and domain constrain the pool.
  query::Query& q = run.query;
  q.set_family("punch");
  if (!tool->architectures.empty()) {
    // A multi-architecture tool yields a composite query (§5.2.1); the
    // caller renders alternatives joined by '|' through ToOrClause.
    std::string alternatives;
    for (std::size_t i = 0; i < tool->architectures.size(); ++i) {
      if (i) alternatives += "|";
      alternatives += tool->architectures[i];
    }
    q.SetRsrc("arch", query::CmpOp::kEq, alternatives);
  }
  const double memory =
      std::ceil(std::max(run.estimate.memory_mb, 1.0));
  q.SetRsrc("memory", query::CmpOp::kGe,
            std::to_string(static_cast<long long>(memory)));
  if (!tool->license.empty()) {
    q.SetRsrc("license", query::CmpOp::kEq, tool->license);
  }
  if (!request.domain.empty()) {
    q.SetRsrc("domain", query::CmpOp::kEq, request.domain);
  }
  if (tool->min_speed > 0.0) {
    q.SetRsrc("speed", query::CmpOp::kGe, std::to_string(tool->min_speed));
  }

  q.SetAppl("expectedcpuuse",
            std::to_string(static_cast<long long>(
                std::ceil(run.estimate.cpu_units))));
  q.SetAppl("algorithm", run.estimate.algorithm);
  q.SetAppl("toolgroup", run.tool_group);
  q.SetUser("login", request.user_login);
  q.SetUser("accessgroup", request.access_group);
  return run;
}

}  // namespace actyp::punch
