// Tool knowledge base for the PUNCH application-management component
// (paper Fig. 2): for each registered tool it records the algorithms the
// tool can run, per-algorithm resource models, hardware requirements,
// and license identifiers — everything needed to turn a user's "run this
// tool on this input" into an ActYP query.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace actyp::punch {

// One algorithm a tool supports (e.g. monte-carlo vs drift-diffusion in
// the paper's carrier-transport example), with a simple resource model:
//   cpu_units  = base + coeff * product(parameter^exponent)
//   memory_mb  = mem_base + mem_per_unit * size-parameter
struct AlgorithmSpec {
  std::string name;
  double cpu_base = 1.0;
  double cpu_coeff = 1.0;
  // Parameter name -> exponent in the CPU model.
  std::map<std::string, double> cpu_exponents;
  double memory_base_mb = 16.0;
  double memory_coeff = 0.0;
  std::string memory_param;  // parameter driving the memory term
  // Accuracy rank (higher = better result quality); the ranker trades
  // this against estimated cost.
  double accuracy = 1.0;
};

struct ToolSpec {
  std::string name;           // e.g. "tsuprem4"
  std::string tool_group;     // Fig. 3 field 17 category
  std::string license;        // license constraint for rsrc.license
  std::vector<std::string> architectures;  // supported archs
  std::vector<AlgorithmSpec> algorithms;
  double min_speed = 0.0;     // SPEC-like floor, 0 = none
};

class KnowledgeBase {
 public:
  Status RegisterTool(ToolSpec spec);
  [[nodiscard]] Result<ToolSpec> Lookup(const std::string& tool) const;
  [[nodiscard]] std::vector<std::string> ToolNames() const;

  // Builds the knowledge base used by the examples: a few engineering
  // tools with distinct resource profiles.
  static KnowledgeBase Demo();

 private:
  std::map<std::string, ToolSpec> tools_;
};

}  // namespace actyp::punch
