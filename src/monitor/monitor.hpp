// Resource monitoring service (§4.2): keeps white-pages fields 2-7
// fresh. The paper delegates this to any off-the-shelf monitor (they
// were evaluating SGI's Performance Co-Pilot); here the monitor is a
// synthetic one that combines
//   - background load: a mean-reverting (Ornstein-Uhlenbeck style)
//     process per machine, representing interactive users, and
//   - job load: +1 load and a memory bite per active ActYP-placed job
// so scheduling policies have realistic, time-varying state to act on.
#pragma once

#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "db/database.hpp"

namespace actyp::monitor {

struct MonitorConfig {
  double background_load_mean = 0.25;  // long-run mean of background load
  double reversion_rate = 0.2;         // pull toward the mean, per second
  double volatility = 0.15;            // diffusion per sqrt(second)
  double job_load = 1.0;               // load added by one active job
  double job_memory_mb = 64.0;         // memory consumed by one active job
  SimDuration update_period = Seconds(5.0);  // refresh cadence (field 6)
};

class ResourceMonitor {
 public:
  ResourceMonitor(db::ResourceDatabase* database, MonitorConfig config,
                  Rng rng);

  // Advances every machine's dynamic state to `now`. Machines are only
  // rewritten when a full update period has elapsed since their last
  // update, mirroring a periodic monitoring daemon. Returns the number
  // of machines rewritten — the sweep's work, which the profiler's
  // monitor_sweep span models its cost from.
  std::size_t Step(SimTime now);

  // Job placement notifications from the pipeline.
  void OnJobStart(db::MachineId id);
  void OnJobEnd(db::MachineId id);

  [[nodiscard]] int active_jobs(db::MachineId id) const;

 private:
  struct PerMachine {
    double background_load;
    double base_memory_mb;
    double base_swap_mb;
    int jobs = 0;
    SimTime last_update = 0;
  };

  void EnsureTracked(db::MachineId id, const db::MachineRecord& rec);

  db::ResourceDatabase* database_;
  MonitorConfig config_;
  Rng rng_;
  mutable std::mutex mu_;
  std::map<db::MachineId, PerMachine> machines_;
  // Scratch for Step's batched write-back, reused across sweeps.
  std::vector<std::pair<db::MachineId, db::DynamicState>> batch_;
};

}  // namespace actyp::monitor
