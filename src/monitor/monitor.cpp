#include "monitor/monitor.hpp"

#include <algorithm>
#include <cmath>

namespace actyp::monitor {

ResourceMonitor::ResourceMonitor(db::ResourceDatabase* database,
                                 MonitorConfig config, Rng rng)
    : database_(database), config_(config), rng_(rng) {}

void ResourceMonitor::EnsureTracked(db::MachineId id,
                                    const db::MachineRecord& rec) {
  auto it = machines_.find(id);
  if (it != machines_.end()) return;
  PerMachine pm;
  pm.background_load =
      std::max(0.0, config_.background_load_mean + rng_.Gaussian(0.0, 0.1));
  pm.base_memory_mb = rec.dyn.available_memory_mb;
  pm.base_swap_mb = rec.dyn.available_swap_mb;
  pm.last_update = rec.dyn.last_update;
  machines_.emplace(id, pm);
}

std::size_t ResourceMonitor::Step(SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  // One no-copy walk of the white pages computes the rewrites, then one
  // batched write applies them: the sweep no longer snapshots every
  // record, and only the machines actually rewritten are marked dirty
  // (version-bumped), so pool refreshes stay proportional to churn.
  batch_.clear();
  database_->VisitAll([&](const db::MachineRecord& rec) {
    EnsureTracked(rec.id, rec);
    PerMachine& pm = machines_.at(rec.id);
    const SimDuration since = now - pm.last_update;
    if (since < config_.update_period) return;
    const double dt = ToSeconds(since);

    // Euler-Maruyama step of dX = k(mean - X)dt + sigma dW, clamped >= 0.
    const double drift =
        config_.reversion_rate * (config_.background_load_mean - pm.background_load) * dt;
    const double diffusion =
        config_.volatility * std::sqrt(std::max(dt, 0.0)) * rng_.Gaussian();
    pm.background_load = std::max(0.0, pm.background_load + drift + diffusion);
    pm.last_update = now;

    db::DynamicState dyn;
    dyn.load = pm.background_load + config_.job_load * pm.jobs;
    dyn.active_jobs = pm.jobs;
    dyn.available_memory_mb =
        std::max(0.0, pm.base_memory_mb - config_.job_memory_mb * pm.jobs);
    dyn.available_swap_mb = pm.base_swap_mb;
    dyn.last_update = now;
    dyn.service_flags = rec.dyn.service_flags;
    batch_.emplace_back(rec.id, dyn);
  });
  database_->ApplyDynamic(batch_);
  return batch_.size();
}

void ResourceMonitor::OnJobStart(db::MachineId id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = machines_.find(id);
    if (it != machines_.end()) ++it->second.jobs;
  }
  // Reflect the new job immediately (the execution unit reports back
  // without waiting for the next monitoring sweep).
  database_->Update(id, [this](db::MachineRecord& rec) {
    rec.dyn.active_jobs += 1;
    rec.dyn.load += config_.job_load;
    rec.dyn.available_memory_mb =
        std::max(0.0, rec.dyn.available_memory_mb - config_.job_memory_mb);
  });
}

void ResourceMonitor::OnJobEnd(db::MachineId id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = machines_.find(id);
    if (it != machines_.end() && it->second.jobs > 0) --it->second.jobs;
  }
  database_->Update(id, [this](db::MachineRecord& rec) {
    rec.dyn.active_jobs = std::max(0, rec.dyn.active_jobs - 1);
    rec.dyn.load = std::max(0.0, rec.dyn.load - config_.job_load);
    rec.dyn.available_memory_mb += config_.job_memory_mb;
  });
}

int ResourceMonitor::active_jobs(db::MachineId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = machines_.find(id);
  return it == machines_.end() ? 0 : it->second.jobs;
}

}  // namespace actyp::monitor
