#include "actyp/scenario_registry.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace actyp {
namespace {

// JSON string escaping for the small character set our names and notes
// use; control characters become \u escapes.
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// JSON has no NaN/Infinity literals; emit null for non-finite values
// (e.g. a mean over zero completed queries).
void WriteJsonNumber(double value, std::ostream& out) {
  if (!std::isfinite(value)) {
    out << "null";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  out << buffer;
}

}  // namespace

ScenarioRegistry& ScenarioRegistry::Instance() {
  static ScenarioRegistry* registry = new ScenarioRegistry;
  return *registry;
}

void ScenarioRegistry::Register(ScenarioInfo info) {
  if (info.name.empty() || !info.run) {
    throw std::invalid_argument("scenario registration needs a name and fn");
  }
  if (!scenarios_.emplace(info.name, info).second) {
    throw std::invalid_argument("duplicate scenario: " + info.name);
  }
}

const ScenarioInfo* ScenarioRegistry::Find(const std::string& name) const {
  const auto it = scenarios_.find(name);
  return it == scenarios_.end() ? nullptr : &it->second;
}

std::vector<const ScenarioInfo*> ScenarioRegistry::List() const {
  std::vector<const ScenarioInfo*> out;
  out.reserve(scenarios_.size());
  for (const auto& [name, info] : scenarios_) out.push_back(&info);
  return out;
}

ScenarioRegistrar::ScenarioRegistrar(std::string name, std::string summary,
                                     ScenarioFn fn, bool wall_clock) {
  ScenarioRegistry::Instance().Register(
      {std::move(name), std::move(summary), std::move(fn), wall_clock});
}

namespace {

std::string CellSignature(const ScenarioCell& cell) {
  std::string signature;
  for (const auto& [name, value] : cell.labels) signature += name + "|";
  for (const auto& [name, value] : cell.dims) signature += name + "|";
  for (const auto& [name, value] : cell.metrics) signature += name + "|";
  return signature;
}

void WriteTableHeader(const ScenarioCell& cell, std::ostream& out) {
  char buffer[64];
  for (const auto& [name, value] : cell.labels) {
    std::snprintf(buffer, sizeof(buffer), "%18s", name.c_str());
    out << buffer;
  }
  for (const auto& [name, value] : cell.dims) {
    std::snprintf(buffer, sizeof(buffer), "%14s", name.c_str());
    out << buffer;
  }
  for (const auto& [name, value] : cell.metrics) {
    std::snprintf(buffer, sizeof(buffer), "%14s", name.c_str());
    out << buffer;
  }
  out << "\n";
}

}  // namespace

void WriteReportTable(const ScenarioReport& report, std::ostream& out) {
  out << "\n== " << report.title << " ==\n";
  // Reprint the header whenever the cell shape changes (e.g. fig9's
  // histogram rows followed by a summary row).
  std::string last_signature;
  char buffer[64];
  for (const auto& cell : report.cells) {
    const std::string signature = CellSignature(cell);
    if (signature != last_signature) {
      WriteTableHeader(cell, out);
      last_signature = signature;
    }
    for (const auto& [name, value] : cell.labels) {
      std::snprintf(buffer, sizeof(buffer), "%18s", value.c_str());
      out << buffer;
    }
    for (const auto& [name, value] : cell.dims) {
      std::snprintf(buffer, sizeof(buffer), "%14.6g", value);
      out << buffer;
    }
    for (const auto& [name, value] : cell.metrics) {
      std::snprintf(buffer, sizeof(buffer), "%14.6g", value);
      out << buffer;
    }
    out << "\n";
  }
  if (!report.note.empty()) out << "\n" << report.note << "\n";
}

void WriteReportJson(const ScenarioReport& report, std::ostream& out) {
  out << "{\"scenario\":\"" << JsonEscape(report.scenario) << "\","
      << "\"title\":\"" << JsonEscape(report.title) << "\",\"cells\":[";
  bool first_cell = true;
  for (const auto& cell : report.cells) {
    if (!first_cell) out << ",";
    first_cell = false;
    out << "{";
    bool first_field = true;
    for (const auto& [name, value] : cell.labels) {
      if (!first_field) out << ",";
      first_field = false;
      out << "\"" << JsonEscape(name) << "\":\"" << JsonEscape(value) << "\"";
    }
    for (const auto& [name, value] : cell.dims) {
      if (!first_field) out << ",";
      first_field = false;
      out << "\"" << JsonEscape(name) << "\":";
      WriteJsonNumber(value, out);
    }
    for (const auto& [name, value] : cell.metrics) {
      if (!first_field) out << ",";
      first_field = false;
      out << "\"" << JsonEscape(name) << "\":";
      WriteJsonNumber(value, out);
    }
    out << "}";
  }
  out << "],\"note\":\"" << JsonEscape(report.note) << "\"}\n";
}

}  // namespace actyp
