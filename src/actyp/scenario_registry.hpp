// ScenarioRegistry: the single front door to every experiment the repo
// reproduces. Each paper figure (fig4_pools_lan ... fig9_workload) and
// ablation (abl_baselines ... abl_sched_policy) registers itself by
// name; the unified `actyp_sim` driver lists, configures, and runs them
// and emits either an aligned table or machine-readable JSON. Benches,
// CI smoke tests, and future BENCH_*.json perf tracking all run through
// this layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace actyp {

namespace profile {
class MetricsStreamer;
class TraceSink;
}  // namespace profile

namespace obs {
class FlightSink;
class TelemetrySink;
}  // namespace obs

// Overrides applied uniformly to a scenario's sweep: pin a dimension
// (machines/clients), rescale simulated warmup/measure durations, or
// replace the seed so perf tracking can vary runs deterministically.
// The fault overrides layer deterministic fault injection onto any
// scenario: a flat message-loss probability, a machine-churn rate, or a
// full fault-plan text (see fault/fault_plan.hpp for the format).
struct ScenarioRunOptions {
  std::optional<std::uint64_t> seed;
  std::optional<std::size_t> machines;
  std::optional<std::size_t> clients;
  double time_scale = 1.0;
  std::optional<double> loss;        // --loss: message-loss probability
  std::optional<double> churn_rate;  // --churn-rate: machine crashes per s
  std::string fault_plan_text;       // --fault-plan: full plan text
  // --replicas: directory replication factor (1 = the seed single
  // authoritative directory, byte-identical under a fixed seed).
  std::optional<std::uint32_t> replicas;
  // --sync-period: anti-entropy pull period in simulated seconds.
  std::optional<double> sync_period_s;
  // --retry-max / --retry-backoff: client retry policy for timed-out
  // requests (backoff in simulated seconds).
  std::optional<std::size_t> retry_max;
  std::optional<double> retry_backoff_s;
  // --jobs: run independent sweep cells concurrently on this many
  // worker threads. Every cell owns its own kernel/network/RNG seeded
  // from (base seed, cell position), and results are emitted in fixed
  // cell order, so the output is independent of the worker count.
  std::size_t jobs = 1;
  // --cell-jobs: worker threads for the LP-parallel engine *inside*
  // each multi-site cell (scenarios built with wan_sites >= 2; see
  // ScenarioConfig). Composes with --jobs, which parallelizes across
  // cells. Purely an execution knob: sharding is fixed by the scenario,
  // so reports and traces are byte-identical for any value. Single-site
  // scenarios ignore it.
  std::size_t cell_jobs = 1;
  // --quiesce: extend each cell by this many simulated seconds (scaled
  // by --time-scale, like warmup/measure) after the measurement window,
  // so success-rate and convergence numbers are judged after faults
  // stop instead of mid-disruption. 0 (the default) keeps every
  // existing report byte-identical.
  double quiesce_s = 0;
  // --regime: one serialized chaos::WorkloadRegime line (see
  // src/chaos/workload_regime.hpp) selecting the chaos_cell scenario's
  // workload shape. Empty = the default regime; other scenarios ignore
  // it.
  std::string regime_text;
  // --stable: zero wall-clock-derived metrics (ev_per_s_wall) so
  // fixed-seed runs are byte-identical across hosts and --jobs values.
  bool stable = false;
  // --no-profile sets this false: the scenarios skip building the
  // stage profiler and the reports omit the per-stage percentile
  // metrics — restoring the pre-profiler output byte for byte.
  bool profile = true;
  // --profile-ring-capacity: span ring size per simulation (bounds how
  // much history --trace-out can assemble from).
  std::optional<std::size_t> profile_ring_capacity;
  // --trace-out wiring: when set (and profiling is on), every cell
  // deposits its span ring snapshot here; the driver assembles and
  // writes the Chrome trace file after the run. Cells running on
  // ThreadPool workers add in completion order — the sink re-orders
  // deterministically on drain.
  profile::TraceSink* trace_sink = nullptr;
  // --metrics-interval wiring: when streamer is set and the interval is
  // positive, every cell arms a periodic sim-clock flush that emits one
  // incremental snapshot cell per interval (scaled by --time-scale,
  // like every other simulated duration).
  profile::MetricsStreamer* metrics_streamer = nullptr;
  double metrics_interval_s = 0;
  // --telemetry-out wiring: when the sink is set and the interval is
  // positive, each cell runs its measurement window in interval-sized
  // chunks (scaled by --time-scale) and deposits one gauge sample per
  // chunk boundary. Chunked advancement never reorders events, so the
  // report stays byte-identical, and samples are keyed by cell seed, so
  // the series is byte-identical for any --jobs / --cell-jobs.
  obs::TelemetrySink* telemetry_sink = nullptr;
  double telemetry_interval_s = 0;
  // --flight-out wiring: when set, each cell builds its scenario with
  // the flight recorder enabled and deposits the merged event snapshot
  // here after its run.
  obs::FlightSink* flight_sink = nullptr;
  // --profile-sampling: "" keeps the scenario default (ring); "ring" or
  // "reservoir" overrides the profiler's per-stage sampling mode.
  std::string profile_sampling;
};

// One measured cell of a scenario sweep: ordered string labels
// (e.g. policy=least-load), ordered numeric dimensions (pools=4,
// clients=32), and ordered metric values (mean_s, ...).
struct ScenarioCell {
  std::vector<std::pair<std::string, std::string>> labels;
  std::vector<std::pair<std::string, double>> dims;
  std::vector<std::pair<std::string, double>> metrics;
};

// A completed scenario run.
struct ScenarioReport {
  std::string scenario;
  std::string title;
  std::vector<ScenarioCell> cells;
  std::string note;  // the qualitative shape check behind the figure
};

using ScenarioFn = std::function<ScenarioReport(const ScenarioRunOptions&)>;

struct ScenarioInfo {
  std::string name;
  std::string summary;
  ScenarioFn run;
  // True for scenarios whose reported numbers are host wall-clock
  // measurements (not simulated time): the driver must never run them
  // concurrently with other scenarios, or contention corrupts the very
  // timings they exist to report.
  bool wall_clock = false;
};

class ScenarioRegistry {
 public:
  static ScenarioRegistry& Instance();

  void Register(ScenarioInfo info);
  [[nodiscard]] const ScenarioInfo* Find(const std::string& name) const;
  [[nodiscard]] std::vector<const ScenarioInfo*> List() const;

 private:
  std::map<std::string, ScenarioInfo> scenarios_;
};

// File-scope registrar: construct one per scenario translation unit.
struct ScenarioRegistrar {
  ScenarioRegistrar(std::string name, std::string summary, ScenarioFn fn,
                    bool wall_clock = false);
};

// Report emitters shared by actyp_sim and the standalone bench mains.
void WriteReportTable(const ScenarioReport& report, std::ostream& out);
void WriteReportJson(const ScenarioReport& report, std::ostream& out);

}  // namespace actyp
