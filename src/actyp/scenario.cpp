#include "actyp/scenario.hpp"

#include <algorithm>

#include "actyp/monitor_node.hpp"
#include "common/logging.hpp"
#include "query/parser.hpp"

namespace actyp {
namespace {

constexpr const char* kServerHost = "alpha";
constexpr const char* kClientHost = "clients";
// Second server host, added on the client site when the directory is
// replicated across a WAN so both sides of a partition keep a full
// service stack (replica + pool manager + query manager + pools).
constexpr const char* kRemoteHost = "beta";

}  // namespace

// One WAN site of a multi-site (LP) deployment. Every mutable service
// here — white pages, directory, shadow accounts, monitor, collector,
// profiler — is reached only from nodes hosted on this site, which is
// exactly what lets the site run as a logical process sharing no state
// with its peers.
struct SimScenario::SiteStack {
  std::string site;
  std::string server_host;
  std::string client_host;
  std::unique_ptr<profile::StageProfiler> profiler;
  db::ResourceDatabase database;
  db::ShadowAccountRegistry shadows;
  db::PolicyRegistry policies;
  directory::DirectoryService directory;
  std::unique_ptr<monitor::ResourceMonitor> monitor;
  std::shared_ptr<pipeline::ProxyServer> proxy;
  workload::ResponseCollector collector;
  std::vector<net::Address> pm_addresses;
  std::vector<net::Address> qm_addresses;
};

SimScenario::SimScenario(ScenarioConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  Build();
}

SimScenario::~SimScenario() = default;

void SimScenario::Build() {
  // --- LP-parallel eligibility ---
  // Multi-site sharding is a scenario property: every shard-local
  // invariant below (per-site databases, per-site draws, lookahead > 0)
  // must hold by construction, so configs that would break one fall
  // back to the single-site serial build with a warning instead of
  // running a subtly wrong parallel simulation.
  if (config_.wan_sites >= 2) {
    std::string reason;
    if (!config_.fault_plan.events.empty()) {
      reason = "fault plan present";
    } else if (config_.directory_replicas > 1) {
      reason = "directory replication enabled";
    } else if (!config_.precreate_pools) {
      reason = "on-demand pool creation";
    } else if (config_.wan_one_way <= 0) {
      reason = "zero-latency WAN link leaves no lookahead";
    } else if (config_.clusters < config_.wan_sites) {
      reason = "fewer clusters than sites";
    }
    if (reason.empty()) {
      BuildMultiSite();
      return;
    }
    ACTYP_WARN << "scenario: LP sharding disabled (" << reason
               << "); falling back to the single-site serial build";
  }

  // Typical concurrent event population: one or two timers per client
  // plus per-node ticks; pre-sizing avoids slab growth mid-run.
  kernel_.Reserve(config_.clients * 4 + config_.machines / 8 + 64);

  // --- stage profiler ---
  // Built first so every stage config below can carry the raw pointer
  // (it outlives the network and any fault-restart config copies).
  // When profiling is off the pointer stays null and every hook reduces
  // to a pointer test: the seed path, byte for byte.
  if (config_.profile) {
    profile::StageProfiler::Config profiler_config;
    profiler_config.ring_capacity = config_.profile_ring_capacity;
    profiler_config.sampling = config_.profile_sampling;
    profiler_config.reservoir_capacity = config_.profile_reservoir_capacity;
    profiler_ = std::make_unique<profile::StageProfiler>(profiler_config);
  }
  profile::StageProfiler* profiler = profiler_.get();

  // --- flight recorder ---
  // Same null-hook discipline as the profiler: when disabled every
  // recording site reduces to a pointer test and the run is the seed
  // path byte for byte.
  if (config_.flight_recorder) {
    recorders_.push_back(
        std::make_unique<obs::FlightRecorder>(0, config_.flight_capacity));
  }
  obs::FlightRecorder* recorder =
      recorders_.empty() ? nullptr : recorders_.front().get();

  // --- topology ---
  simnet::Topology topology = simnet::Topology::Lan();
  if (config_.wan) {
    topology = simnet::Topology::WanTwoSites(
        "purdue", "upc", config_.wan_one_way, config_.wan_jitter);
  }
  network_ = std::make_unique<simnet::SimNetwork>(&kernel_, topology,
                                                  config_.seed ^ 0x6e0d3ULL);
  network_->SetLossProbability(config_.message_loss_probability);
  network_->SetFlightRecorder(0, recorder);
  fault_ = std::make_unique<fault::FaultInjector>(
      &kernel_, network_.get(), config_.seed ^ 0xfa017ULL);
  fault_->SetRecorder(recorder);
  InstallFaultHooks();
  const std::string server_site = config_.wan ? "upc" : "local";
  const std::string client_site = config_.wan ? "purdue" : "local";
  fault_->RegisterSite(server_site);
  fault_->RegisterSite(client_site);
  network_->AddHost(kServerHost, config_.server_cores, server_site);
  network_->AddHost(kClientHost,
                    static_cast<int>(std::max<std::size_t>(1, config_.clients)),
                    client_site);

  // --- replicated directory ---
  const bool replicated = config_.directory_replicas > 1;
  const bool dual_site = replicated && config_.wan;
  if (dual_site) {
    network_->AddHost(kRemoteHost, config_.server_cores, client_site);
  }
  if (replicated) {
    replica::ReplicaGroupConfig group_config;
    group_config.sync_period = config_.directory_sync_period;
    group_config.journal_capacity = config_.directory_journal_capacity;
    group_config.seed = config_.seed ^ 0x5e11caULL;
    group_config.profiler = profiler;
    group_config.recorder = recorder;
    replicas_ = std::make_unique<replica::ReplicaGroup>(&kernel_,
                                                        group_config);
    for (std::uint32_t i = 0; i < config_.directory_replicas; ++i) {
      // Even replicas at the server site, odd ones at the client site
      // (every replica is "local" on a LAN).
      replicas_->AddReplica(i % 2 == 0 ? server_site : client_site);
    }
    replicas_->SetReachability(
        [this](const std::string& a, const std::string& b) {
          return !network_->topology().IsSitePartitioned(a, b);
        });
    server_directory_ =
        std::make_unique<replica::ReplicaHandle>(replicas_.get(), server_site);
    remote_directory_ =
        std::make_unique<replica::ReplicaHandle>(replicas_.get(), client_site);
    // Replica crash/restore under churn: each replica is a crashable
    // service ("replica0", ...) co-located with its site.
    for (std::uint32_t i = 0; i < config_.directory_replicas; ++i) {
      fault_->RegisterService(
          "replica" + std::to_string(i),
          [this, i] { replicas_->Crash(i); },
          [this, i] { replicas_->Restore(i); }, replicas_->replica(i)->site());
    }
    replicas_->Start();
  }
  dir_api_ =
      replicated
          ? static_cast<directory::DirectoryApi*>(server_directory_.get())
          : static_cast<directory::DirectoryApi*>(&directory_);
  // Components on the remote (client-site) host register and look up
  // through their own side's replica.
  directory::DirectoryApi* remote_api =
      dual_site ? static_cast<directory::DirectoryApi*>(remote_directory_.get())
                : dir_api_;

  // --- fleet ---
  workload::FleetSpec fleet;
  fleet.machine_count = config_.machines;
  fleet.cluster_count = std::max<std::size_t>(1, config_.clusters);
  BuildFleet(fleet, rng_, &database_, &shadows_);

  // Assign machines to sites (round-robin on a WAN) so correlated
  // site-crash events know which half of the fleet goes dark together.
  site_machines_.clear();
  std::size_t machine_index = 0;
  database_.ForEach([&](const db::MachineRecord& rec) {
    const std::string& site =
        config_.wan && machine_index % 2 == 1 ? client_site : server_site;
    site_machines_[site].push_back(rec.id);
    ++machine_index;
  });

  monitor_ = std::make_unique<monitor::ResourceMonitor>(
      &database_, monitor::MonitorConfig{}, rng_.Fork());
  network_->AddNode(
      "monitor",
      std::make_shared<MonitorNode>(monitor_.get(), config_.monitor_period,
                                    profiler),
      net::NodePlacement{kServerHost, 1});

  // --- reintegrator ---
  pipeline::ReintegratorConfig reint_config;
  reint_config.name = "reint";
  reint_config.costs = config_.costs;
  reint_config.profiler = profiler;
  network_->AddNode("reint",
                    std::make_shared<pipeline::Reintegrator>(reint_config),
                    net::NodePlacement{kServerHost, 1});

  // --- proxies (for on-demand pool creation) ---
  pipeline::ProxyConfig proxy_config;
  proxy_config.host = kServerHost;
  proxy_config.pool_policy = config_.policy;
  proxy_config.pool_resort_period = config_.resort_period;
  proxy_config.costs = config_.costs;
  proxy_config.profiler = profiler;
  proxy_config.recorder = recorder;
  proxy_ = std::make_shared<pipeline::ProxyServer>(
      proxy_config, network_.get(), &database_, dir_api_, &shadows_,
      &policies_);
  network_->AddNode("proxy", proxy_, net::NodePlacement{kServerHost, 1});

  // --- pool managers ---
  // On a dual-site deployment odd-numbered stages run on the remote
  // host, registering and resolving through their own site's replica —
  // the failover path queries take when the WAN is cut.
  std::vector<net::Address> pm_addresses;
  for (std::size_t i = 0; i < std::max<std::size_t>(1, config_.pool_managers);
       ++i) {
    const bool remote = dual_site && i % 2 == 1;
    const char* host = remote ? kRemoteHost : kServerHost;
    const std::string& site = remote ? client_site : server_site;
    directory::DirectoryApi* dir = remote ? remote_api : dir_api_;
    pipeline::PoolManagerConfig pm_config;
    pm_config.name = "pm" + std::to_string(i);
    pm_config.proxies = {"proxy"};
    pm_config.reintegrator = "reint";
    pm_config.allow_create = !config_.precreate_pools;
    pm_config.costs = config_.costs;
    pm_config.profiler = profiler;
    const net::Address address = pm_config.name;
    network_->AddNode(address,
                      std::make_shared<pipeline::PoolManager>(pm_config, dir),
                      net::NodePlacement{host, 1});
    pm_addresses.push_back(address);
    fault_->RegisterService(
        address, [this, address] { network_->RemoveNode(address); },
        [this, address, pm_config, host, dir] {
          network_->AddNode(
              address,
              std::make_shared<pipeline::PoolManager>(pm_config, dir),
              net::NodePlacement{host, 1});
        },
        site);
  }

  // --- query managers ---
  std::vector<net::Address> qm_addresses;
  for (std::size_t i = 0;
       i < std::max<std::size_t>(1, config_.query_managers); ++i) {
    const bool remote = dual_site && i % 2 == 1;
    const char* host = remote ? kRemoteHost : kServerHost;
    const std::string& site = remote ? client_site : server_site;
    pipeline::QueryManagerConfig qm_config;
    qm_config.name = "qm" + std::to_string(i);
    qm_config.default_pool_managers = pm_addresses;
    qm_config.reintegrator = "reint";
    qm_config.qos_fanout = config_.qos_fanout;
    qm_config.costs = config_.costs;
    qm_config.profiler = profiler;
    const net::Address address = qm_config.name;
    network_->AddNode(address,
                      std::make_shared<pipeline::QueryManager>(qm_config),
                      net::NodePlacement{host, 1});
    qm_addresses.push_back(address);
    fault_->RegisterService(
        address, [this, address] { network_->RemoveNode(address); },
        [this, address, qm_config, host] {
          network_->AddNode(address,
                            std::make_shared<pipeline::QueryManager>(qm_config),
                            net::NodePlacement{host, 1});
        },
        site);
  }

  // --- resource pools ---
  workload::QuerySpec query_spec;
  query_spec.cluster_count = std::max<std::size_t>(1, config_.clusters);
  query_spec.hot_fraction = config_.hot_fraction;
  workload::QueryGenerator generator(query_spec);

  // Creates a pool node, tracks it for stats, and registers it with the
  // fault injector: a crash removes the node, unregisters it from the
  // directory (its own side's replica, when replicated), and frees its
  // claim once the last live instance is gone (surviving replicas keep
  // the shared machine set); a restart brings up a fresh instance that
  // re-adopts or re-claims its machines. On a dual-site deployment the
  // caller picks the host, and the pool registers through that site's
  // directory handle — which is what lets registrations made during a
  // partition reconcile after heal.
  auto add_pool = [&, this](const net::Address& address,
                            const pipeline::ResourcePoolConfig& pool_config,
                            bool remote) {
    const char* host = remote ? kRemoteHost : kServerHost;
    const std::string& site = remote ? client_site : server_site;
    directory::DirectoryApi* dir = remote ? remote_api : dir_api_;
    auto pool = std::make_shared<pipeline::ResourcePool>(
        pool_config, &database_, dir, &shadows_, &policies_);
    pools_.push_back(pool);
    pool_by_address_[address] = pool;
    network_->AddNode(address, pool, net::NodePlacement{host, 1});
    const std::string claim = pool_config.claim_name.empty()
                                  ? pool_config.pool_name
                                  : pool_config.claim_name;
    fault_->RegisterService(
        address,
        [this, address, pool_name = pool_config.pool_name,
         instance = pool_config.instance, claim,
         segment = pool_config.segment, dir] {
          network_->RemoveNode(address);
          dir->UnregisterPool(pool_name, instance);
          // A segment's claim is its own (distinct claim names partition
          // the machines), so free it immediately; replicas share one
          // claim that must survive until the last live instance dies.
          if (segment || dir->Lookup(pool_name).empty()) {
            database_.ReleaseAllFrom(claim);
          }
        },
        [this, address, pool_config, host, dir] {
          auto restarted = std::make_shared<pipeline::ResourcePool>(
              pool_config, &database_, dir, &shadows_, &policies_);
          pools_.push_back(restarted);
          pool_by_address_[address] = restarted;
          network_->AddNode(address, restarted,
                            net::NodePlacement{host, 1});
        },
        site);
  };

  if (config_.precreate_pools) {
    const std::size_t clusters = std::max<std::size_t>(1, config_.clusters);
    const std::uint32_t segments =
        std::max<std::uint32_t>(1, config_.pool_segments);
    const std::uint32_t replicas =
        std::max<std::uint32_t>(1, config_.pool_replicas);
    for (std::size_t c = 0; c < clusters; ++c) {
      auto criteria = query::Parser::ParseBasic(generator.ForCluster(c));
      // Strip appl/user terms: aggregation criteria are rsrc-only.
      query::Query pool_criteria(criteria->family());
      for (const auto& [name, cond] : criteria->rsrc()) {
        pool_criteria.SetRsrc(name, cond);
      }
      const std::string pool_name = pool_criteria.PoolName();
      const std::size_t per_cluster = config_.machines / clusters;

      if (segments > 1) {
        // Split pool: disjoint partitions under distinct claim names.
        for (std::uint32_t s = 0; s < segments; ++s) {
          pipeline::ResourcePoolConfig pool_config;
          pool_config.pool_name = pool_name;
          pool_config.instance = s;
          pool_config.instance_count = 1;
          pool_config.claim_name = pool_name + "#" + std::to_string(s);
          pool_config.segment = true;
          pool_config.criteria = pool_criteria;
          pool_config.policy = config_.policy;
          pool_config.resort_period = config_.resort_period;
          pool_config.claim_limit =
              s + 1 == segments ? 0 : per_cluster / segments;
          pool_config.costs = config_.costs;
          pool_config.profiler = profiler;
          pool_config.recorder = recorder;
          add_pool("pool.c" + std::to_string(c) + ".s" + std::to_string(s),
                   pool_config, /*remote=*/false);
        }
      } else {
        // Replicated (or single) pool: shared machine set, biased
        // selection per instance. Odd instances run on the remote host
        // of a dual-site deployment.
        for (std::uint32_t r = 0; r < replicas; ++r) {
          pipeline::ResourcePoolConfig pool_config;
          pool_config.pool_name = pool_name;
          pool_config.instance = r;
          pool_config.instance_count = replicas;
          pool_config.criteria = pool_criteria;
          pool_config.policy = config_.policy;
          pool_config.resort_period = config_.resort_period;
          pool_config.costs = config_.costs;
          pool_config.profiler = profiler;
          pool_config.recorder = recorder;
          add_pool("pool.c" + std::to_string(c) + ".r" + std::to_string(r),
                   pool_config, /*remote=*/dual_site && r % 2 == 1);
        }
      }
    }
  }

  // --- clients ---
  for (std::size_t i = 0; i < config_.clients; ++i) {
    workload::ClientConfig client_config;
    client_config.client_id = static_cast<std::uint32_t>(i + 1);
    client_config.entry = qm_addresses[i % qm_addresses.size()];
    // Retries rotate across the other query managers, so a dead entry
    // stage costs one backoff, not the whole interaction.
    for (std::size_t k = 1; k < qm_addresses.size(); ++k) {
      client_config.fallback_entries.push_back(
          qm_addresses[(i + k) % qm_addresses.size()]);
    }
    client_config.make_query = [generator](Rng& rng) {
      return generator.Next(rng);
    };
    client_config.think_time = config_.think_time;
    client_config.job_duration = config_.job_duration;
    client_config.collector = &collector_;
    client_config.profiler = profiler;
    client_config.qos_first_match = config_.qos_first_match;
    client_config.request_timeout = config_.client_request_timeout;
    client_config.retry_max = config_.retry_max;
    client_config.retry_backoff = config_.retry_backoff;
    client_config.horizon = config_.client_horizon;
    auto client = std::make_shared<workload::ClientNode>(client_config);
    clients_.push_back(client);
    network_->AddNode("client" + std::to_string(i), client,
                      net::NodePlacement{kClientHost, 1});
  }

  // --- fault plan (after every service is registered) ---
  fault_status_ = fault_->Arm(config_.fault_plan);
  if (!fault_status_.ok()) {
    ACTYP_WARN << "scenario: fault plan not armed: "
               << fault_status_.ToString();
  }

  // Convergence bookkeeping: converge_time measures from the moment a
  // disruption heals. Only partition heals need a scenario-level hook —
  // replica restores (direct churn or via a site restore) notify the
  // group through ReplicaGroup::Restore itself.
  if (replicas_ && fault_status_.ok()) {
    for (const fault::FaultEvent& event : config_.fault_plan.events) {
      if (event.kind == fault::FaultKind::kPartition &&
          event.end > event.start) {
        kernel_.ScheduleAt(event.end,
                           [this] { replicas_->NoteDisruption(); });
      }
    }
  }
}

void SimScenario::BuildMultiSite() {
  const std::size_t site_count = config_.wan_sites;
  const std::size_t clusters = std::max<std::size_t>(1, config_.clusters);
  kernel_.Reserve(config_.clients * 4 + config_.machines / 8 + 64);

  // --- topology and sharded network ---
  // Full WAN mesh: every distinct site pair gets the configured one-way
  // latency. The positive base latency is the conservative lookahead.
  simnet::Topology topology = simnet::Topology::Lan();
  topology.SetDefaultInterSiteLink(
      simnet::LinkSpec{config_.wan_one_way, config_.wan_jitter, 1.25});
  network_ = std::make_unique<simnet::SimNetwork>(&kernel_, topology,
                                                  config_.seed ^ 0x6e0d3ULL);
  network_->SetLossProbability(config_.message_loss_probability);
  std::vector<std::string> site_names;
  site_names.reserve(site_count);
  for (std::size_t k = 0; k < site_count; ++k) {
    site_names.push_back("site" + std::to_string(k));
  }
  network_->EnableSharding(site_names);

  // One flight recorder per shard, so recording stays thread-local to
  // the shard's worker; snapshots merge by (t, shard, seq) and are
  // identical for any cell_jobs value.
  if (config_.flight_recorder) {
    for (std::size_t k = 0; k < site_count; ++k) {
      recorders_.push_back(std::make_unique<obs::FlightRecorder>(
          static_cast<std::uint32_t>(k), config_.flight_capacity));
      network_->SetFlightRecorder(k, recorders_.back().get());
    }
  }

  // The injector is still built (the accessors promise one), but LP
  // eligibility guarantees an empty plan, so its hooks — which close
  // over the unused single-site database — never fire.
  fault_ = std::make_unique<fault::FaultInjector>(
      &kernel_, network_.get(), config_.seed ^ 0xfa017ULL);
  InstallFaultHooks();
  for (const std::string& name : site_names) fault_->RegisterSite(name);
  fault_status_ = fault_->Arm(config_.fault_plan);
  dir_api_ = &directory_;

  // Exact per-cluster machine counts (machine i of the single-site
  // build lands in cluster i % clusters).
  auto cluster_size = [&](std::size_t c) {
    return config_.machines / clusters +
           (c < config_.machines % clusters ? 1 : 0);
  };
  auto owner_of = [&](std::size_t c) { return c % site_count; };
  auto clients_on = [&](std::size_t k) {
    return config_.clients / site_count +
           (k < config_.clients % site_count ? 1 : 0);
  };

  workload::QuerySpec query_spec;
  query_spec.cluster_count = clusters;
  query_spec.hot_fraction = config_.hot_fraction;
  workload::QueryGenerator generator(query_spec);

  // --- pass 1: per-site stacks, fleets, and pool managers ---
  // Build order is fixed (site 0, 1, ...), so every rng_ draw below is
  // deterministic; nothing here runs under the LP engine yet.
  for (std::size_t k = 0; k < site_count; ++k) {
    auto site = std::make_unique<SiteStack>();
    site->site = site_names[k];
    site->server_host = site->site + ".srv";
    site->client_host = site->site + ".cli";
    if (config_.profile) {
      profile::StageProfiler::Config profiler_config;
      profiler_config.ring_capacity = config_.profile_ring_capacity;
      profiler_config.sampling = config_.profile_sampling;
      profiler_config.reservoir_capacity = config_.profile_reservoir_capacity;
      site->profiler =
          std::make_unique<profile::StageProfiler>(profiler_config);
    }
    profile::StageProfiler* profiler = site->profiler.get();
    network_->AddHost(site->server_host, config_.server_cores, site->site);
    network_->AddHost(
        site->client_host,
        static_cast<int>(std::max<std::size_t>(1, clients_on(k))),
        site->site);

    // This site's slice of the fleet: the clusters it owns, with the
    // same per-cluster machine counts as the single-site build. The
    // site-qualified domain keeps machine names globally unique.
    workload::FleetSpec fleet;
    fleet.domain = site->site;
    fleet.cluster_count = clusters;
    fleet.machine_count = 0;
    for (std::size_t c = k; c < clusters; c += site_count) {
      fleet.cluster_ids.push_back(c);
      fleet.machine_count += cluster_size(c);
    }
    BuildFleet(fleet, rng_, &site->database, &site->shadows);
    site_machines_[site->site] = {};
    site->database.ForEach([&](const db::MachineRecord& rec) {
      site_machines_[site->site].push_back(rec.id);
    });

    site->monitor = std::make_unique<monitor::ResourceMonitor>(
        &site->database, monitor::MonitorConfig{}, rng_.Fork());
    network_->AddNode(
        site->site + ".monitor",
        std::make_shared<MonitorNode>(site->monitor.get(),
                                      config_.monitor_period, profiler),
        net::NodePlacement{site->server_host, 1});

    pipeline::ReintegratorConfig reint_config;
    reint_config.name = site->site + ".reint";
    reint_config.costs = config_.costs;
    reint_config.profiler = profiler;
    network_->AddNode(reint_config.name,
                      std::make_shared<pipeline::Reintegrator>(reint_config),
                      net::NodePlacement{site->server_host, 1});

    pipeline::ProxyConfig proxy_config;
    proxy_config.host = site->server_host;
    proxy_config.pool_policy = config_.policy;
    proxy_config.pool_resort_period = config_.resort_period;
    proxy_config.costs = config_.costs;
    proxy_config.profiler = profiler;
    proxy_config.recorder =
        config_.flight_recorder ? recorders_[k].get() : nullptr;
    site->proxy = std::make_shared<pipeline::ProxyServer>(
        proxy_config, network_.get(), &site->database, &site->directory,
        &site->shadows, &site->policies);
    network_->AddNode(site->site + ".proxy", site->proxy,
                      net::NodePlacement{site->server_host, 1});

    for (std::size_t i = 0;
         i < std::max<std::size_t>(1, config_.pool_managers); ++i) {
      pipeline::PoolManagerConfig pm_config;
      pm_config.name = site->site + ".pm" + std::to_string(i);
      pm_config.proxies = {site->site + ".proxy"};
      pm_config.reintegrator = site->site + ".reint";
      pm_config.allow_create = false;  // LP mode requires precreate
      pm_config.costs = config_.costs;
      pm_config.profiler = profiler;
      network_->AddNode(pm_config.name,
                        std::make_shared<pipeline::PoolManager>(
                            pm_config, &site->directory),
                        net::NodePlacement{site->server_host, 1});
      site->pm_addresses.push_back(pm_config.name);
    }
    sites_.push_back(std::move(site));
  }

  // --- pass 2: query managers, pools, clients ---
  // Needs every site's pool-manager addresses: each QM routes cluster c
  // to the owner site's pool managers via a per-cluster rule, which is
  // what generates the cross-WAN traffic the LP engine synchronizes.
  for (std::size_t k = 0; k < site_count; ++k) {
    SiteStack& site = *sites_[k];
    profile::StageProfiler* profiler = site.profiler.get();
    obs::FlightRecorder* site_recorder =
        config_.flight_recorder ? recorders_[k].get() : nullptr;
    std::vector<pipeline::PmRule> rules;
    rules.reserve(clusters);
    for (std::size_t c = 0; c < clusters; ++c) {
      rules.push_back(pipeline::PmRule{
          "cluster", "c" + std::to_string(c),
          sites_[owner_of(c)]->pm_addresses});
    }
    for (std::size_t i = 0;
         i < std::max<std::size_t>(1, config_.query_managers); ++i) {
      pipeline::QueryManagerConfig qm_config;
      qm_config.name = site.site + ".qm" + std::to_string(i);
      qm_config.rules = rules;
      qm_config.default_pool_managers = site.pm_addresses;
      qm_config.reintegrator = site.site + ".reint";
      qm_config.qos_fanout = config_.qos_fanout;
      qm_config.costs = config_.costs;
      qm_config.profiler = profiler;
      network_->AddNode(qm_config.name,
                        std::make_shared<pipeline::QueryManager>(qm_config),
                        net::NodePlacement{site.server_host, 1});
      site.qm_addresses.push_back(qm_config.name);
    }

    // Pools for the clusters this site owns, registered in the site's
    // own directory (where its pool managers resolve them).
    const std::uint32_t segments =
        std::max<std::uint32_t>(1, config_.pool_segments);
    const std::uint32_t replicas =
        std::max<std::uint32_t>(1, config_.pool_replicas);
    for (std::size_t c = k; c < clusters; c += site_count) {
      auto criteria = query::Parser::ParseBasic(generator.ForCluster(c));
      query::Query pool_criteria(criteria->family());
      for (const auto& [name, cond] : criteria->rsrc()) {
        pool_criteria.SetRsrc(name, cond);
      }
      const std::string pool_name = pool_criteria.PoolName();
      const std::size_t per_cluster = cluster_size(c);
      auto add_site_pool =
          [&](const net::Address& address,
              const pipeline::ResourcePoolConfig& pool_config) {
            auto pool = std::make_shared<pipeline::ResourcePool>(
                pool_config, &site.database, &site.directory, &site.shadows,
                &site.policies);
            pools_.push_back(pool);
            pool_by_address_[address] = pool;
            network_->AddNode(address, pool,
                              net::NodePlacement{site.server_host, 1});
          };
      if (segments > 1) {
        for (std::uint32_t s = 0; s < segments; ++s) {
          pipeline::ResourcePoolConfig pool_config;
          pool_config.pool_name = pool_name;
          pool_config.instance = s;
          pool_config.instance_count = 1;
          pool_config.claim_name = pool_name + "#" + std::to_string(s);
          pool_config.segment = true;
          pool_config.criteria = pool_criteria;
          pool_config.policy = config_.policy;
          pool_config.resort_period = config_.resort_period;
          pool_config.claim_limit =
              s + 1 == segments ? 0 : per_cluster / segments;
          pool_config.costs = config_.costs;
          pool_config.profiler = profiler;
          pool_config.recorder = site_recorder;
          add_site_pool(
              "pool.c" + std::to_string(c) + ".s" + std::to_string(s),
              pool_config);
        }
      } else {
        for (std::uint32_t r = 0; r < replicas; ++r) {
          pipeline::ResourcePoolConfig pool_config;
          pool_config.pool_name = pool_name;
          pool_config.instance = r;
          pool_config.instance_count = replicas;
          pool_config.criteria = pool_criteria;
          pool_config.policy = config_.policy;
          pool_config.resort_period = config_.resort_period;
          pool_config.costs = config_.costs;
          pool_config.profiler = profiler;
          pool_config.recorder = site_recorder;
          add_site_pool(
              "pool.c" + std::to_string(c) + ".r" + std::to_string(r),
              pool_config);
        }
      }
    }
  }

  // --- clients ---
  // Client i lives on site i % K and enters through a local query
  // manager; its queries still stripe across the global cluster space,
  // so a (K-1)/K fraction of requests cross the WAN.
  for (std::size_t i = 0; i < config_.clients; ++i) {
    SiteStack& site = *sites_[i % site_count];
    workload::ClientConfig client_config;
    client_config.client_id = static_cast<std::uint32_t>(i + 1);
    client_config.entry =
        site.qm_addresses[(i / site_count) % site.qm_addresses.size()];
    for (std::size_t j = 1; j < site.qm_addresses.size(); ++j) {
      client_config.fallback_entries.push_back(
          site.qm_addresses[(i / site_count + j) % site.qm_addresses.size()]);
    }
    client_config.make_query = [generator](Rng& rng) {
      return generator.Next(rng);
    };
    client_config.think_time = config_.think_time;
    client_config.job_duration = config_.job_duration;
    client_config.collector = &site.collector;
    client_config.profiler = site.profiler.get();
    client_config.qos_first_match = config_.qos_first_match;
    client_config.request_timeout = config_.client_request_timeout;
    client_config.retry_max = config_.retry_max;
    client_config.retry_backoff = config_.retry_backoff;
    client_config.horizon = config_.client_horizon;
    auto client = std::make_shared<workload::ClientNode>(client_config);
    clients_.push_back(client);
    network_->AddNode("client" + std::to_string(i), client,
                      net::NodePlacement{site.client_host, 1});
  }
}

void SimScenario::InstallFaultHooks() {
  // Machine churn: crash picks uniformly among currently-up machines
  // and flips them down in the white pages; pools notice on their next
  // refresh sweep and stop handing them out until they come back.
  fault_->SetMachineHooks(
      [this](std::size_t n, Rng& rng) {
        std::vector<db::MachineId> up;
        database_.ForEach([&up](const db::MachineRecord& rec) {
          if (rec.state == db::MachineState::kUp) up.push_back(rec.id);
        });
        std::vector<db::MachineId> victims;
        victims.reserve(std::min(n, up.size()));
        for (std::size_t k = 0; k < n && !up.empty(); ++k) {
          const std::size_t i =
              static_cast<std::size_t>(rng.NextBounded(up.size()));
          victims.push_back(up[i]);
          up[i] = up.back();
          up.pop_back();
        }
        for (const db::MachineId id : victims) {
          database_.Update(id, [](db::MachineRecord& rec) {
            rec.state = db::MachineState::kDown;
          });
        }
        return victims;
      },
      [this](const std::vector<db::MachineId>& ids) {
        for (const db::MachineId id : ids) {
          database_.Update(id, [](db::MachineRecord& rec) {
            rec.state = db::MachineState::kUp;
          });
        }
      });

  // Pool churn: kill a random live instance straight out of the
  // directory — this also covers pools the proxy created on demand,
  // which the injector cannot know by name at build time. dir_api_ is
  // resolved at strike time: the server side's view when replicated.
  fault_->SetPoolHook([this](Rng& rng) {
    std::vector<directory::PoolInstance> instances;
    for (const std::string& name : dir_api_->PoolNames()) {
      for (auto& instance : dir_api_->Lookup(name)) {
        instances.push_back(std::move(instance));
      }
    }
    if (instances.empty()) return false;
    const directory::PoolInstance& victim =
        instances[rng.NextBounded(instances.size())];
    network_->RemoveNode(victim.address);
    dir_api_->UnregisterPool(victim.pool_name, victim.instance);
    // Proxy-created pools and replicas claim under the pool name
    // (freed when the last live instance dies, so the next query can
    // re-create the pool from scratch); a segment claims under the
    // "<pool>#<instance>" name Build assigned it and owns that claim
    // alone, so it is freed immediately.
    if (victim.segment) {
      database_.ReleaseAllFrom(victim.pool_name + "#" +
                               std::to_string(victim.instance));
    } else if (dir_api_->Lookup(victim.pool_name).empty()) {
      database_.ReleaseAllFrom(victim.pool_name);
    }
    return true;
  });

  // Correlated site faults: crash every up machine assigned to the
  // site; services follow through the site recorded at registration.
  fault_->SetSiteHook([this](const std::string& site) {
    std::vector<db::MachineId> victims;
    const auto it = site_machines_.find(site);
    if (it == site_machines_.end()) return victims;
    for (const db::MachineId id : it->second) {
      const auto rec = database_.Get(id);
      if (rec.ok() && rec->state == db::MachineState::kUp) {
        victims.push_back(id);
      }
    }
    for (const db::MachineId id : victims) {
      database_.Update(id, [](db::MachineRecord& rec) {
        rec.state = db::MachineState::kDown;
      });
    }
    return victims;
  });
}

void SimScenario::RunUntil(SimTime until) {
  if (network_ != nullptr && network_->sharded()) {
    ThreadPool* pool = nullptr;
    if (config_.cell_jobs > 1) {
      if (!window_pool_) {
        window_pool_ = std::make_unique<ThreadPool>(
            std::min(config_.cell_jobs, network_->shard_count()));
      }
      pool = window_pool_.get();
    }
    network_->RunShardedUntil(until, pool);
    return;
  }
  kernel_.RunUntil(until);
}

void SimScenario::ResetMeasurement() {
  collector_.Reset();
  if (profiler_) profiler_->Reset();
  for (const auto& site : sites_) {
    site->collector.Reset();
    if (site->profiler) site->profiler->Reset();
  }
}

void SimScenario::Measure(SimDuration warmup, SimDuration duration) {
  RunUntil(kernel_.Now() + warmup);
  ResetMeasurement();
  for (const auto& recorder : recorders_) recorder->Reset();
  RunUntil(kernel_.Now() + duration);
}

void SimScenario::Measure(SimDuration warmup, SimDuration duration,
                          SimDuration sample_interval,
                          const std::function<void(SimTime)>& sample) {
  if (sample_interval <= 0 || !sample) {
    Measure(warmup, duration);
    return;
  }
  RunUntil(kernel_.Now() + warmup);
  ResetMeasurement();
  for (const auto& recorder : recorders_) recorder->Reset();
  // Absolute window boundaries computed from the start keep the sample
  // grid drift-free however sample_interval divides duration.
  const SimTime start = kernel_.Now();
  const SimTime end = start + duration;
  sample(start);
  for (SimTime next = start; next < end;) {
    next = std::min<SimTime>(end, next + sample_interval);
    RunUntil(next);
    sample(next);
  }
}

std::vector<obs::FlightEvent> SimScenario::FlightSnapshot() const {
  std::vector<std::vector<obs::FlightEvent>> per_shard;
  per_shard.reserve(recorders_.size());
  for (const auto& recorder : recorders_) {
    per_shard.push_back(recorder->Snapshot());
  }
  return obs::MergeFlightEvents(std::move(per_shard));
}

workload::ResponseCollector& SimScenario::collector() {
  if (sites_.empty()) return collector_;
  merged_collector_.Reset();
  for (const auto& site : sites_) {
    merged_collector_.MergeFrom(site->collector);
  }
  return merged_collector_;
}

std::uint64_t SimScenario::total_events() const {
  return network_ != nullptr && network_->sharded()
             ? network_->total_executed()
             : kernel_.executed();
}

profile::StageProfiler* SimScenario::MergedProfiler() const {
  if (sites_.empty()) return profiler_.get();
  if (!config_.profile) return nullptr;
  if (!merged_profiler_) {
    profile::StageProfiler::Config merged_config;
    merged_config.ring_capacity =
        config_.profile_ring_capacity * sites_.size();
    merged_config.sampling = config_.profile_sampling;
    merged_config.reservoir_capacity = config_.profile_reservoir_capacity;
    merged_profiler_ =
        std::make_unique<profile::StageProfiler>(merged_config);
  }
  merged_profiler_->Reset();
  for (const auto& site : sites_) {
    merged_profiler_->Merge(*site->profiler);
    merged_profiler_->AbsorbRing(*site->profiler);
  }
  return merged_profiler_.get();
}

pipeline::PoolStats SimScenario::TotalPoolStats() const {
  pipeline::PoolStats total;
  for (const auto& pool : pools_) {
    const auto& s = pool->stats();
    total.queries += s.queries;
    total.allocations += s.allocations;
    total.failures += s.failures;
    total.releases += s.releases;
    total.oversubscribed += s.oversubscribed;
    total.entries_examined += s.entries_examined;
    total.entries_refreshed += s.entries_refreshed;
    total.refresh_ticks += s.refresh_ticks;
  }
  return total;
}

std::vector<std::pair<std::string, const pipeline::ResourcePool*>>
SimScenario::LivePools() const {
  std::vector<std::pair<std::string, const pipeline::ResourcePool*>> live;
  live.reserve(pool_by_address_.size());
  for (const auto& [address, pool] : pool_by_address_) {
    if (network_ != nullptr && network_->HasNode(address)) {
      live.emplace_back(address, pool.get());
    }
  }
  return live;
}

pipeline::ProxyStats SimScenario::proxy_stats() const {
  pipeline::ProxyStats total =
      proxy_ != nullptr ? proxy_->stats() : pipeline::ProxyStats{};
  for (const auto& site : sites_) {
    const pipeline::ProxyStats s = site->proxy->stats();
    total.pools_created += s.pools_created;
    total.create_failures += s.create_failures;
  }
  return total;
}

std::uint64_t SimScenario::total_client_failures() const {
  std::uint64_t n = 0;
  for (const auto& client : clients_) n += client->stats().failures;
  return n;
}

std::uint64_t SimScenario::total_client_retries() const {
  std::uint64_t n = 0;
  for (const auto& client : clients_) n += client->stats().retries;
  return n;
}

}  // namespace actyp
