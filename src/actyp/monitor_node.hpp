// Adapter running the ResourceMonitor as a periodic node on any
// Network, so monitor sweeps are part of the same (simulated or real)
// timeline as the pipeline.
#pragma once

#include "monitor/monitor.hpp"
#include "net/node.hpp"

namespace actyp {

class MonitorNode final : public net::Node {
 public:
  MonitorNode(monitor::ResourceMonitor* monitor, SimDuration period)
      : monitor_(monitor), period_(period) {}

  void OnStart(net::NodeContext& ctx) override {
    ctx.ScheduleSelf(period_, net::Message{net::msg::kTick});
  }

  void OnMessage(const net::Envelope& envelope,
                 net::NodeContext& ctx) override {
    if (envelope.message.type != net::msg::kTick) return;
    monitor_->Step(ctx.Now());
    ctx.ScheduleSelf(period_, net::Message{net::msg::kTick});
  }

 private:
  monitor::ResourceMonitor* monitor_;
  SimDuration period_;
};

}  // namespace actyp
