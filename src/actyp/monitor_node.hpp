// Adapter running the ResourceMonitor as a periodic node on any
// Network, so monitor sweeps are part of the same (simulated or real)
// timeline as the pipeline.
#pragma once

#include "monitor/monitor.hpp"
#include "net/node.hpp"
#include "profile/stage_profiler.hpp"

namespace actyp {

// Modeled monitor_sweep span cost: the sweep itself executes
// instantaneously in sim time (consuming service time would perturb
// the replay the profiler must not touch), so the recorded span gets
// a synthetic duration — a fixed dispatch cost plus a per-rewritten-
// machine term. Deterministic and monotone in the sweep's work.
inline constexpr SimDuration kMonitorSweepFixedCost = Micros(150);
inline constexpr SimDuration kMonitorSweepPerMachineCost = Micros(2);

class MonitorNode final : public net::Node {
 public:
  MonitorNode(monitor::ResourceMonitor* monitor, SimDuration period,
              profile::StageProfiler* profiler = nullptr)
      : monitor_(monitor), period_(period), profiler_(profiler) {}

  void OnStart(net::NodeContext& ctx) override {
    ctx.ScheduleSelf(period_, net::Message{net::msg::kTick});
  }

  void OnMessage(const net::Envelope& envelope,
                 net::NodeContext& ctx) override {
    if (envelope.message.type != net::msg::kTick) return;
    const std::size_t updated = monitor_->Step(ctx.Now());
    if (profiler_ != nullptr) {
      // Instance 0: all sweeps of the one monitor share a trace lane
      // (they never overlap — the modeled cost is far below the tick
      // period).
      profiler_->Record(
          profile::Stage::kMonitorSweep,
          profile::BackgroundId(profile::Stage::kMonitorSweep, 0),
          ctx.Now(),
          ctx.Now() + kMonitorSweepFixedCost +
              kMonitorSweepPerMachineCost *
                  static_cast<SimDuration>(updated));
    }
    ctx.ScheduleSelf(period_, net::Message{net::msg::kTick});
  }

 private:
  monitor::ResourceMonitor* monitor_;
  SimDuration period_;
  profile::StageProfiler* profiler_;
};

}  // namespace actyp
