// SimScenario: assembles a complete ActYP deployment on the
// discrete-event simulator — white pages, shadow accounts, monitor,
// query managers, pool managers, reintegrator, proxies, resource pools
// (with optional replication and splitting), and closed-loop clients —
// reproducing the experimental setups of the paper's §7.
//
// Topology mirrors the paper: all service components run on one
// multi-core server host ("alpha", 12 cores by default — the paper's
// 12-processor Alpha server); clients run on a client host either in
// the same site (LAN, Figs. 4 and 6-8) or across a WAN link (Fig. 5).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/database.hpp"
#include "db/policy.hpp"
#include "db/shadow.hpp"
#include "directory/directory.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "monitor/monitor.hpp"
#include "obs/flight_recorder.hpp"
#include "pipeline/pool_manager.hpp"
#include "profile/stage_profiler.hpp"
#include "pipeline/proxy.hpp"
#include "pipeline/query_manager.hpp"
#include "pipeline/reintegrator.hpp"
#include "pipeline/resource_pool.hpp"
#include "replica/group.hpp"
#include "simnet/kernel.hpp"
#include "simnet/sim_network.hpp"
#include "workload/client.hpp"
#include "workload/cpu_time.hpp"
#include "workload/generator.hpp"

namespace actyp {

struct ScenarioConfig {
  // Fleet / pools.
  std::size_t machines = 3200;
  std::size_t clusters = 1;        // number of distinct pools (Figs. 4-5)
  std::uint32_t pool_replicas = 1; // instances per pool (Fig. 8)
  std::uint32_t pool_segments = 1; // split factor per pool (Fig. 7)
  // Paper-faithful default: the O(n) scan + periodic sort whose linear
  // curves the figures reproduce. Set "least-load" (or another bare
  // policy name) for the indexed fast path — see qm_scaling/pm_scaling.
  std::string policy = "linear-least-load";
  SimDuration resort_period = Seconds(2.0);
  bool precreate_pools = true;  // false = pools created on demand

  // Pipeline stages.
  std::size_t query_managers = 1;
  std::size_t pool_managers = 1;
  std::uint32_t qos_fanout = 1;

  // Directory replication (src/replica/). 1 keeps the single
  // authoritative DirectoryService — the seed behavior, byte-identical
  // under a fixed seed. >= 2 builds a ReplicaGroup kept convergent by
  // journal-driven anti-entropy; lookups/registrations route to the
  // nearest reachable replica and fail over on partition or crash. WAN
  // runs with replication add a second server host ("beta") on the
  // client site, alternate replicas / pool managers / query managers /
  // pool instances across the two sites, and so keep a full service
  // stack on each side of a partition.
  std::uint32_t directory_replicas = 1;
  SimDuration directory_sync_period = Seconds(1.0);
  // Anti-entropy ops retained per replica before delta pulls degrade to
  // full-state syncs.
  std::size_t directory_journal_capacity = 4096;

  // Clients.
  std::size_t clients = 16;
  // Client retry policy: resend a timed-out request up to retry_max
  // times (seeded exponential backoff from retry_backoff) before the
  // interaction counts as failed. 0 = legacy single-shot behavior.
  std::size_t retry_max = 0;
  SimDuration retry_backoff = Millis(250);
  SimDuration think_time = 0;
  std::function<SimDuration(Rng&)> job_duration;  // nullptr = release now
  double hot_fraction = 0.0;
  bool qos_first_match = false;
  // Client give-up timer for lossy-network experiments (0 = off).
  SimDuration client_request_timeout = 0;
  // Absolute sim time after which clients stop opening new interactions
  // (0 = never). The chaos engine sets it to the measurement end so the
  // drain window can empty the closed loop before invariants are judged.
  SimTime client_horizon = 0;
  // Probability that any inter-node message is lost (fault injection).
  double message_loss_probability = 0.0;
  // Timed fault events — loss windows, latency spikes, partitions,
  // machine/service churn — armed against the simulation at t=0.
  fault::FaultPlan fault_plan;

  // Deployment.
  bool wan = false;  // clients across a WAN link (Fig. 5)
  // LP-parallel deployment: >= 2 builds that many WAN sites ("site0" ..
  // "site<K-1>"), each a full service stack (white pages, monitor,
  // proxy, reintegrator, pool managers, query managers, pools, clients)
  // over the clusters it owns — cluster c lives on site c % K, and each
  // site's query managers route foreign clusters to the owner site's
  // pool managers across the WAN. Sites become logical processes of the
  // conservative-window engine (simnet::SimNetwork::EnableSharding);
  // `cell_jobs` picks how many worker threads run them. Requires
  // precreate_pools, an empty fault plan, directory_replicas <= 1,
  // wan_one_way > 0 (the lookahead), and clusters >= wan_sites; any
  // ineligible combination warns and falls back to the single-site
  // serial build. Supersedes `wan` when set.
  std::size_t wan_sites = 0;
  // Worker threads for the LP engine (used only when wan_sites >= 2).
  // Purely an execution knob: sharding — and with it every RNG draw and
  // event tie-break — is fixed by wan_sites, so reports and traces are
  // byte-identical for any cell_jobs value.
  std::size_t cell_jobs = 1;
  int server_cores = 12;
  SimDuration wan_one_way = Millis(30);
  SimDuration wan_jitter = Millis(5);

  // Monitoring.
  SimDuration monitor_period = Seconds(5.0);

  // Stage-span profiling (src/profile/). When true the scenario owns a
  // StageProfiler and every pipeline stage records its spans; the
  // reports then carry per-stage p50/p95/p99. False skips building the
  // profiler entirely — the null-pointer hooks make the run (and its
  // report output) byte-identical to the unprofiled seed path.
  bool profile = true;
  std::size_t profile_ring_capacity = 4096;
  // Per-stage latency sampling: kRing keeps the exact histogram + span
  // ring (the default); kReservoir adds a seeded fixed-size Algorithm-R
  // reservoir per stage and computes p50/p95/p99 from it — unbiased
  // at any load, memory bounded by reservoir_capacity. Both modes draw
  // from a private fixed-seed RNG, so the sim replay is untouched.
  profile::SamplingMode profile_sampling = profile::SamplingMode::kRing;
  std::size_t profile_reservoir_capacity = 1024;

  // Flight recorder (src/obs/): when true each shard owns a bounded
  // ring of structured events — message send/receive/drop, timer
  // arm/fire/cancel, fault strikes/recoveries, replica syncs, pool
  // claim/release. Recording draws nothing from any seeded stream, so
  // false (the default) is byte-identical to the pre-recorder binary
  // and true is byte-identical across --jobs / --cell-jobs.
  bool flight_recorder = false;
  std::size_t flight_capacity = 8192;

  pipeline::CostModel costs;
  std::uint64_t seed = 20010611;  // HPDC 2001 ;-)
};

class SimScenario {
 public:
  explicit SimScenario(ScenarioConfig config);
  ~SimScenario();

  SimScenario(const SimScenario&) = delete;
  SimScenario& operator=(const SimScenario&) = delete;

  // Advances the simulation to `until` (absolute sim time).
  void RunUntil(SimTime until);

  // Runs a measurement: `warmup` is excluded (the collector is reset
  // after it), then `duration` of steady state is measured.
  void Measure(SimDuration warmup, SimDuration duration);

  // Sampled measurement: like Measure, but the steady-state window is
  // advanced in `sample_interval` chunks and `sample(now)` runs between
  // chunks (workers idle, so deterministic reads of any scenario state
  // are safe). Chunked advancement never reorders events, so the run is
  // byte-identical to the unsampled Measure for any chunk size.
  void Measure(SimDuration warmup, SimDuration duration,
               SimDuration sample_interval,
               const std::function<void(SimTime)>& sample);

  // The warmup-boundary reset Measure applies, minus the flight
  // recorders: collector(s) and profiler(s) start the measurement
  // clean. Callers driving the timeline with RunUntil (the chaos
  // capture path) use this to keep warmup-time flight events — fault
  // strikes often land there — while reporting identical metrics.
  void ResetMeasurement();

  // Merged flight-event view: per-shard rings merged and sorted by
  // (time, shard, seq) — identical for any worker count. Empty when
  // the flight recorder is off.
  [[nodiscard]] std::vector<obs::FlightEvent> FlightSnapshot() const;

  // Response statistics. Single-site scenarios return the shared
  // collector the clients record into; multi-site (LP) scenarios fold
  // the per-site collectors into a merged view on each call, in site
  // order, so quantiles are deterministic for any worker count.
  [[nodiscard]] workload::ResponseCollector& collector();
  // True when this scenario runs on the LP-parallel engine.
  [[nodiscard]] bool lp_mode() const { return !sites_.empty(); }
  // Events executed across every LP kernel (== kernel().executed() on a
  // single-site scenario).
  [[nodiscard]] std::uint64_t total_events() const;
  [[nodiscard]] simnet::SimKernel& kernel() { return kernel_; }
  [[nodiscard]] simnet::SimNetwork& network() { return *network_; }
  [[nodiscard]] db::ResourceDatabase& database() { return database_; }
  [[nodiscard]] directory::DirectoryService& directory() {
    return directory_;
  }
  [[nodiscard]] const ScenarioConfig& config() const { return config_; }

  // Aggregated pipeline statistics (summed over instances).
  [[nodiscard]] pipeline::PoolStats TotalPoolStats() const;
  [[nodiscard]] std::uint64_t total_client_failures() const;
  [[nodiscard]] std::uint64_t total_client_retries() const;

  // Replicated-directory subsystem; null when directory_replicas <= 1.
  [[nodiscard]] replica::ReplicaGroup* replica_group() {
    return replicas_.get();
  }
  [[nodiscard]] replica::ReplicaGroupStats replica_stats() const {
    return replicas_ ? replicas_->stats() : replica::ReplicaGroupStats{};
  }

  // Fault subsystem: the injector is always built (with machine, pool,
  // and service hooks installed); the configured plan is armed during
  // Build. `fault_status()` reports whether arming succeeded.
  [[nodiscard]] fault::FaultInjector& fault_injector() { return *fault_; }
  [[nodiscard]] const fault::FaultStats& fault_stats() const {
    return fault_->stats();
  }
  [[nodiscard]] const Status& fault_status() const { return fault_status_; }
  [[nodiscard]] pipeline::ProxyStats proxy_stats() const;

  // Chaos-invariant probes: every client node, and — per address — the
  // latest pool instance still attached to the network (fault restarts
  // replace an address's entry; crashed-and-gone instances drop out).
  [[nodiscard]] const std::vector<std::shared_ptr<workload::ClientNode>>&
  clients() const {
    return clients_;
  }
  [[nodiscard]] std::vector<
      std::pair<std::string, const pipeline::ResourcePool*>>
  LivePools() const;

  // Per-stage latency profiler; null when config.profile is false.
  // Multi-site scenarios rebuild a merged view on each call: per-site
  // histograms folded in site order plus a lossless union of the span
  // rings (capacity = sites x per-site ring), so summaries and trace
  // assembly are deterministic for any worker count.
  [[nodiscard]] profile::StageProfiler* profiler() {
    return MergedProfiler();
  }
  [[nodiscard]] const profile::StageProfiler* profiler() const {
    return MergedProfiler();
  }

 private:
  struct SiteStack;

  void Build();
  void BuildMultiSite();
  void InstallFaultHooks();
  void ResetCollector();
  [[nodiscard]] profile::StageProfiler* MergedProfiler() const;

  ScenarioConfig config_;
  // Declared before the network so it outlives the nodes (and any
  // fault-restart config copies) holding raw pointers to it.
  std::unique_ptr<profile::StageProfiler> profiler_;
  // Flight recorders, one per shard (a single entry on serial builds;
  // one per site under the LP engine, each touched only by its own
  // shard's thread). Same lifetime rule as the profiler.
  std::vector<std::unique_ptr<obs::FlightRecorder>> recorders_;
  simnet::SimKernel kernel_;
  std::unique_ptr<simnet::SimNetwork> network_;
  db::ResourceDatabase database_;
  db::ShadowAccountRegistry shadows_;
  db::PolicyRegistry policies_;
  directory::DirectoryService directory_;
  // Replicated-directory path (directory_replicas >= 2): the group plus
  // one routing handle per site; dir_api_ points at the server-site
  // handle, or directly at directory_ when unreplicated.
  std::unique_ptr<replica::ReplicaGroup> replicas_;
  std::unique_ptr<replica::ReplicaHandle> server_directory_;
  std::unique_ptr<replica::ReplicaHandle> remote_directory_;
  directory::DirectoryApi* dir_api_ = nullptr;
  // Machine ids by assigned site, for correlated site-crash events.
  std::map<std::string, std::vector<db::MachineId>> site_machines_;
  std::unique_ptr<monitor::ResourceMonitor> monitor_;
  std::unique_ptr<fault::FaultInjector> fault_;
  Status fault_status_;
  std::shared_ptr<pipeline::ProxyServer> proxy_;
  workload::ResponseCollector collector_;
  Rng rng_;

  // Multi-site (LP) deployment: one full service stack per site, empty
  // on single-site scenarios. Each stack's database / directory /
  // shadows / collector / profiler are touched only by nodes of that
  // site, so the shards of the LP engine share no mutable state.
  std::vector<std::unique_ptr<SiteStack>> sites_;
  // Lazily-built worker pool for RunShardedUntil (cell_jobs > 1 only).
  std::unique_ptr<ThreadPool> window_pool_;
  // Merged observable views for multi-site runs, rebuilt on access.
  workload::ResponseCollector merged_collector_;
  mutable std::unique_ptr<profile::StageProfiler> merged_profiler_;

  std::vector<std::shared_ptr<pipeline::ResourcePool>> pools_;
  // Latest instance per address: fault restarts overwrite the entry, so
  // LivePools audits exactly the instances that are reachable.
  std::map<std::string, std::shared_ptr<pipeline::ResourcePool>>
      pool_by_address_;
  std::vector<std::shared_ptr<workload::ClientNode>> clients_;
};

}  // namespace actyp
