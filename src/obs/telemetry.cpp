#include "obs/telemetry.hpp"

#include <algorithm>

#include "actyp/scenario.hpp"

namespace actyp::obs {

profile::MetricCell TelemetrySample(SimScenario& scenario, SimTime t) {
  profile::MetricCell cell;
  cell.scenario = "telemetry";
  cell.labels.emplace_back("seed",
                           std::to_string(scenario.config().seed));

  std::uint64_t inflight = 0;
  std::uint64_t held = 0;
  for (const auto& client : scenario.clients()) {
    if (client->inflight_request() != 0) ++inflight;
    held += client->held_count();
  }
  std::uint64_t pool_sessions = 0;
  const auto live_pools = scenario.LivePools();
  for (const auto& [address, pool] : live_pools) {
    pool_sessions += pool->active_sessions();
  }
  auto& collector = scenario.collector();
  auto& network = scenario.network();
  const fault::FaultStats& faults = scenario.fault_stats();
  const replica::ReplicaGroupStats replicas = scenario.replica_stats();
  const replica::ReplicaGroup* group = scenario.replica_group();

  // Fixed order: the byte-identity tests compare sample streams, so
  // every gauge appears in every sample, zeros included.
  cell.values.emplace_back("t_s", ToSeconds(t));
  cell.values.emplace_back("completed",
                           static_cast<double>(collector.completed()));
  cell.values.emplace_back("failures",
                           static_cast<double>(collector.failures()));
  cell.values.emplace_back(
      "retries", static_cast<double>(scenario.total_client_retries()));
  cell.values.emplace_back("inflight_clients",
                           static_cast<double>(inflight));
  cell.values.emplace_back("held_claims", static_cast<double>(held));
  cell.values.emplace_back("pool_sessions",
                           static_cast<double>(pool_sessions));
  cell.values.emplace_back("pools_live",
                           static_cast<double>(live_pools.size()));
  cell.values.emplace_back("pending_events",
                           static_cast<double>(network.pending_events()));
  cell.values.emplace_back("queued_messages",
                           static_cast<double>(network.queued_messages()));
  cell.values.emplace_back("busy_cores",
                           static_cast<double>(network.busy_cores()));
  cell.values.emplace_back("lost_messages",
                           static_cast<double>(network.lost_messages()));
  cell.values.emplace_back(
      "dropped_messages",
      static_cast<double>(network.dropped_messages()));
  cell.values.emplace_back(
      "machines_down", static_cast<double>(faults.machines_crashed -
                                           faults.machines_restored));
  cell.values.emplace_back(
      "services_down", static_cast<double>(faults.services_crashed -
                                           faults.services_restarted));
  cell.values.emplace_back("replica_max_staleness_s",
                           replicas.max_staleness_s);
  cell.values.emplace_back(
      "replica_journal_ops",
      static_cast<double>(group != nullptr ? group->TotalJournalOps()
                                           : 0));
  return cell;
}

void TelemetrySink::Add(std::uint64_t seed,
                        std::vector<profile::MetricCell> samples) {
  std::lock_guard<std::mutex> lock(mu_);
  cells_.emplace_back(seed, std::move(samples));
}

std::vector<std::pair<std::uint64_t, std::vector<profile::MetricCell>>>
TelemetrySink::Take() {
  std::lock_guard<std::mutex> lock(mu_);
  std::sort(cells_.begin(), cells_.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second.size() < b.second.size();
            });
  auto out = std::move(cells_);
  cells_.clear();
  return out;
}

}  // namespace actyp::obs
