// Post-mortem bundles: the machine-readable dump actyp_chaos writes
// next to a repro bundle when an invariant violation is confirmed —
// everything a human (or the actyp_postmortem tool) needs to explain
// the wedge without replaying it by hand. One typed JSON object per
// line:
//
//   {"type":"meta","seed":...,"regime":"...","violations":[...]}
//   {"type":"fault","event":"loss start=.. end=.. p=.."}     (per event)
//   {"type":"telemetry","scenario":"telemetry",...}          (per sample)
//   {"type":"flight","t":...,"kind":"msg_drop_loss",...}     (per event)
//
// The telemetry lines are MetricsExporter jsonl cells and the flight
// lines are FlightRecorder events, each with a "type" discriminator
// spliced in, so existing line-oriented tooling parses both unchanged.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "obs/flight_recorder.hpp"
#include "profile/metrics_exporter.hpp"

namespace actyp::obs {

struct PostmortemBundle {
  std::uint64_t seed = 0;
  std::string regime;
  std::vector<std::string> violations;    // formatted invariant names
  std::vector<std::string> fault_events;  // FaultEvent::Serialize lines
  std::vector<profile::MetricCell> telemetry;
  std::vector<FlightEvent> flight;
};

void WritePostmortem(const PostmortemBundle& bundle, std::ostream& out);
[[nodiscard]] Status WritePostmortemFile(const PostmortemBundle& bundle,
                                         const std::string& path);

}  // namespace actyp::obs
