// FlightRecorder: a bounded, deterministic ring of structured events —
// the "what actually happened" counterpart to the StageProfiler's
// "how long did it take". Every instrumented subsystem (network
// send/receive/drop, kernel timers, fault strikes and recoveries,
// replica sync rounds, pool claim/release) appends one FlightEvent
// stamped with sim time, shard, node, and request/background id, so a
// post-mortem can walk the causal chain backward from any observed
// excursion.
//
// Determinism contract: recording makes zero RNG draws and zero core
// consumptions, so enabling the recorder never perturbs the simulation
// — reports stay byte-identical with it on or off. Each LP shard owns
// its own recorder (no cross-thread sharing); SimScenario merges the
// per-shard rings in (time, shard, seq) order, which makes the merged
// stream byte-identical for any --cell-jobs worker count.
//
// Switching off mirrors the profiler: leave the recorder pointer null
// (ScenarioConfig::flight_recorder = false) and every hook reduces to
// a pointer test; configure with -DACTYP_PROFILE=OFF to compile
// Record() away entirely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/sim_time.hpp"
#include "common/status.hpp"

namespace actyp::obs {

// Event kinds, in rough causal order of a message's life plus the
// control-plane events that bend it.
enum class FlightKind : std::uint8_t {
  kMsgSend = 0,        // message scheduled for delivery
  kMsgRecv,            // message dispatched into a node handler
  kMsgDropLoss,        // dropped by the loss model / fault loss window
  kMsgDropPartition,   // dropped by a site partition
  kMsgDropDeadNode,    // destination node gone (crashed service)
  kTimerArm,           // node armed a self-timer
  kTimerFire,          // self-timer delivered
  kTimerCancel,        // self-timer cancelled before firing
  kFaultStrike,        // fault-plan event struck
  kFaultRecover,       // fault-plan event recovered/closed
  kReplicaSync,        // one anti-entropy pull completed
  kPoolClaim,          // pool allocated a machine to a session
  kPoolRelease,        // pool released a session's machine
};

inline constexpr std::size_t kFlightKindCount = 13;

// Stable snake_case names used in JSONL dumps and the post-mortem
// timeline.
[[nodiscard]] std::string_view FlightKindName(FlightKind kind);

// One recorded event. `seq` is a recorder-local monotonic counter that
// breaks ties among same-timestamp events deterministically; `id` is a
// request id (client_id << 32 | seq), a BackgroundId, a timer id, or 0
// when no id applies.
struct FlightEvent {
  SimTime t = 0;
  FlightKind kind = FlightKind::kMsgSend;
  std::uint32_t shard = 0;
  std::uint64_t seq = 0;
  std::uint64_t id = 0;
  std::string node;
  std::string detail;

  [[nodiscard]] bool operator==(const FlightEvent& other) const {
    return t == other.t && kind == other.kind && shard == other.shard &&
           seq == other.seq && id == other.id && node == other.node &&
           detail == other.detail;
  }
};

class FlightRecorder {
 public:
  // `shard` stamps every event (0 for the serial build); the ring keeps
  // the most recent `capacity` events.
  explicit FlightRecorder(std::uint32_t shard, std::size_t capacity = 8192);

  // Appends one event. Compiled away entirely under ACTYP_PROFILE=OFF.
#if defined(ACTYP_PROFILE_OFF)
  void Record(SimTime /*t*/, FlightKind /*kind*/, std::uint64_t /*id*/,
              std::string_view /*node*/, std::string_view /*detail*/) {}
#else
  void Record(SimTime t, FlightKind kind, std::uint64_t id,
              std::string_view node, std::string_view detail);
#endif

  // Clears the ring (Measure() calls this after warmup, in step with
  // the profiler and response collector). The seq counter keeps
  // counting so post-reset events never collide with pre-reset ones.
  void Reset();

  // Events recorded since construction (including overwritten ones).
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint32_t shard() const { return shard_; }

  // The retained events, oldest first.
  [[nodiscard]] std::vector<FlightEvent> Snapshot() const;

 private:
  std::uint32_t shard_;
  std::size_t capacity_;
  std::vector<FlightEvent> ring_;
  std::size_t ring_next_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t seq_ = 0;
};

// Merges per-shard snapshots into one stream ordered by
// (t, shard, seq) — the canonical order a serial execution would have
// observed, identical for any worker count.
[[nodiscard]] std::vector<FlightEvent> MergeFlightEvents(
    std::vector<std::vector<FlightEvent>> per_shard);

// One event as a single-line JSON object (no trailing newline):
//   {"t":1.25,"kind":"msg_send","shard":0,"seq":17,"id":4294967297,
//    "node":"qm0","detail":"query"}
[[nodiscard]] std::string FlightEventJson(const FlightEvent& event);

// Writes one JSON line per event.
void WriteFlightJsonl(const std::vector<FlightEvent>& events,
                      std::ostream& out);
// Same, to `path` (replacing any existing file).
[[nodiscard]] Status WriteFlightJsonlFile(
    const std::vector<FlightEvent>& events, const std::string& path);

// FlightSink: thread-safe deposit box for per-cell flight dumps, the
// flight analogue of profile::TraceSink. Sweep cells running on
// ThreadPool workers Add() their merged event streams keyed by cell
// seed; Take() returns them sorted by (seed, stream) so the --flight-out
// file is byte-identical for any --jobs value.
class FlightSink {
 public:
  void Add(std::uint64_t seed, std::vector<FlightEvent> events);
  // Sorted (seed ascending, then content) snapshots; clears the sink.
  [[nodiscard]] std::vector<
      std::pair<std::uint64_t, std::vector<FlightEvent>>>
  Take();

 private:
  std::vector<std::pair<std::uint64_t, std::vector<FlightEvent>>> cells_;
  std::mutex mu_;
};

}  // namespace actyp::obs
