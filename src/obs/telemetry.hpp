// Continuous telemetry: gauge samples over simulated time. Where the
// scenario report is one end-of-run aggregate and --metrics-interval
// streams snapshots from a kernel timer (serial scenarios only — a
// shard-0 tick would race the other LPs), the telemetry sampler pauses
// the run between RunUntil chunks and reads gauges single-threaded.
// Chunked RunUntil never reorders events, so sampling is invisible to
// the simulation: reports stay byte-identical with it on or off, and
// the samples themselves are byte-identical for any --jobs/--cell-jobs.
//
// Each sample is one profile::MetricCell (scenario "telemetry", the
// cell seed as a label, gauges in a fixed order), so the existing
// MetricsExporter serializes the series as JSON-lines for
// --telemetry-out.
#pragma once

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "common/sim_time.hpp"
#include "profile/metrics_exporter.hpp"

namespace actyp {
class SimScenario;
}  // namespace actyp

namespace actyp::obs {

// Reads every gauge at sim time `t` (call only between RunUntil
// chunks). Makes no RNG draws and consumes no cores.
[[nodiscard]] profile::MetricCell TelemetrySample(SimScenario& scenario,
                                                  SimTime t);

// TelemetrySink: thread-safe deposit box for per-cell sample series,
// the telemetry analogue of profile::TraceSink. Sweep cells Add()
// their series keyed by cell seed; Take() returns them sorted by seed
// so the --telemetry-out file is byte-identical for any --jobs value.
class TelemetrySink {
 public:
  void Add(std::uint64_t seed, std::vector<profile::MetricCell> samples);
  [[nodiscard]] std::vector<
      std::pair<std::uint64_t, std::vector<profile::MetricCell>>>
  Take();

 private:
  std::vector<std::pair<std::uint64_t, std::vector<profile::MetricCell>>>
      cells_;
  std::mutex mu_;
};

}  // namespace actyp::obs
