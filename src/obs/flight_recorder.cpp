#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <tuple>

namespace actyp::obs {
namespace {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatTime(SimTime t) {
  const double seconds = ToSeconds(t);
  if (!std::isfinite(seconds)) return "0";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", seconds);
  return buffer;
}

}  // namespace

std::string_view FlightKindName(FlightKind kind) {
  switch (kind) {
    case FlightKind::kMsgSend: return "msg_send";
    case FlightKind::kMsgRecv: return "msg_recv";
    case FlightKind::kMsgDropLoss: return "msg_drop_loss";
    case FlightKind::kMsgDropPartition: return "msg_drop_partition";
    case FlightKind::kMsgDropDeadNode: return "msg_drop_dead_node";
    case FlightKind::kTimerArm: return "timer_arm";
    case FlightKind::kTimerFire: return "timer_fire";
    case FlightKind::kTimerCancel: return "timer_cancel";
    case FlightKind::kFaultStrike: return "fault_strike";
    case FlightKind::kFaultRecover: return "fault_recover";
    case FlightKind::kReplicaSync: return "replica_sync";
    case FlightKind::kPoolClaim: return "pool_claim";
    case FlightKind::kPoolRelease: return "pool_release";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::uint32_t shard, std::size_t capacity)
    : shard_(shard), capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

#if !defined(ACTYP_PROFILE_OFF)
void FlightRecorder::Record(SimTime t, FlightKind kind, std::uint64_t id,
                            std::string_view node,
                            std::string_view detail) {
  FlightEvent event;
  event.t = t;
  event.kind = kind;
  event.shard = shard_;
  event.seq = seq_++;
  event.id = id;
  event.node.assign(node);
  event.detail.assign(detail);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[ring_next_] = std::move(event);
    ring_next_ = (ring_next_ + 1) % capacity_;
  }
  ++recorded_;
}
#endif

void FlightRecorder::Reset() {
  ring_.clear();
  ring_next_ = 0;
  recorded_ = 0;
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
    return out;
  }
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_next_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<FlightEvent> MergeFlightEvents(
    std::vector<std::vector<FlightEvent>> per_shard) {
  std::vector<FlightEvent> merged;
  std::size_t total = 0;
  for (const auto& events : per_shard) total += events.size();
  merged.reserve(total);
  for (auto& events : per_shard) {
    for (auto& event : events) merged.push_back(std::move(event));
  }
  // Each shard's snapshot is already (t, seq)-ordered; a stable global
  // order only needs the cross-shard tie-breaks.
  std::sort(merged.begin(), merged.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return std::tie(a.t, a.shard, a.seq) <
                     std::tie(b.t, b.shard, b.seq);
            });
  return merged;
}

std::string FlightEventJson(const FlightEvent& event) {
  std::string out;
  out.reserve(96 + event.node.size() + event.detail.size());
  out += "{\"t\":";
  out += FormatTime(event.t);
  out += ",\"kind\":\"";
  out += FlightKindName(event.kind);
  out += "\",\"shard\":";
  out += std::to_string(event.shard);
  out += ",\"seq\":";
  out += std::to_string(event.seq);
  out += ",\"id\":";
  out += std::to_string(event.id);
  out += ",\"node\":\"";
  out += JsonEscape(event.node);
  out += "\",\"detail\":\"";
  out += JsonEscape(event.detail);
  out += "\"}";
  return out;
}

void WriteFlightJsonl(const std::vector<FlightEvent>& events,
                      std::ostream& out) {
  for (const auto& event : events) {
    out << FlightEventJson(event) << '\n';
  }
}

Status WriteFlightJsonlFile(const std::vector<FlightEvent>& events,
                            const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Unavailable("cannot open '" + path + "' for writing");
  WriteFlightJsonl(events, out);
  out.flush();
  if (!out) return Unavailable("write to '" + path + "' failed");
  return Status::Ok();
}

void FlightSink::Add(std::uint64_t seed, std::vector<FlightEvent> events) {
  std::lock_guard<std::mutex> lock(mu_);
  cells_.emplace_back(seed, std::move(events));
}

std::vector<std::pair<std::uint64_t, std::vector<FlightEvent>>>
FlightSink::Take() {
  std::lock_guard<std::mutex> lock(mu_);
  std::sort(cells_.begin(), cells_.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second.size() < b.second.size();
            });
  auto out = std::move(cells_);
  cells_.clear();
  return out;
}

}  // namespace actyp::obs
