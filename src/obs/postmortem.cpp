#include "obs/postmortem.hpp"

#include <cstdio>
#include <fstream>

namespace actyp::obs {
namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Splices "type":<type> in as the first member of an existing
// single-line JSON object.
std::string WithType(const char* type, const std::string& object_json) {
  std::string out = "{\"type\":\"";
  out += type;
  out += "\",";
  out += object_json.substr(1);
  return out;
}

}  // namespace

void WritePostmortem(const PostmortemBundle& bundle, std::ostream& out) {
  out << "{\"type\":\"meta\",\"seed\":" << bundle.seed << ",\"regime\":\""
      << JsonEscape(bundle.regime) << "\",\"violations\":[";
  for (std::size_t i = 0; i < bundle.violations.size(); ++i) {
    if (i != 0) out << ',';
    out << '"' << JsonEscape(bundle.violations[i]) << '"';
  }
  out << "]}\n";
  for (const std::string& event : bundle.fault_events) {
    out << "{\"type\":\"fault\",\"event\":\"" << JsonEscape(event)
        << "\"}\n";
  }
  for (const profile::MetricCell& sample : bundle.telemetry) {
    out << WithType("telemetry", profile::MetricCellJson(sample)) << '\n';
  }
  for (const FlightEvent& event : bundle.flight) {
    out << WithType("flight", FlightEventJson(event)) << '\n';
  }
}

Status WritePostmortemFile(const PostmortemBundle& bundle,
                           const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Unavailable("cannot open '" + path + "' for writing");
  WritePostmortem(bundle, out);
  out.flush();
  if (!out) return Unavailable("write to '" + path + "' failed");
  return Status::Ok();
}

}  // namespace actyp::obs
