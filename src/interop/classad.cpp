#include "interop/classad.hpp"

#include <cctype>
#include <map>
#include <vector>

#include "common/strings.hpp"

namespace actyp::interop {
namespace {

// Attribute-name mapping from ClassAd conventions to the punch
// namespace. Unknown requirement attributes pass through as rsrc keys.
const std::map<std::string, std::string>& TopLevelMap() {
  static const std::map<std::string, std::string> kMap = {
      {"owner", "punch.user.login"},
      {"accessgroup", "punch.user.accessgroup"},
      {"estimatedcpu", "punch.appl.expectedcpuuse"},
      {"imagesize", "punch.appl.imagesize"},
      {"cmd", "punch.appl.tool"},
  };
  return kMap;
}

struct Comparison {
  std::string attr;
  std::string op;     // native spelling: == != >= <= > <
  std::string value;  // unquoted literal
};

class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  [[nodiscard]] bool Done() const { return pos_ >= text_.size(); }
  [[nodiscard]] char Peek() const { return Done() ? '\0' : text_[pos_]; }
  char Take() { return text_[pos_++]; }
  bool TryTake(std::string_view literal) {
    SkipSpace();
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  // Identifier: [A-Za-z_][A-Za-z0-9_]*
  Result<std::string> Identifier() {
    SkipSpace();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return InvalidArgument("classad: expected identifier at offset " +
                             std::to_string(start));
    }
    return ToLower(text_.substr(start, pos_ - start));
  }

  // Literal: "string" or number.
  Result<std::string> Literal() {
    SkipSpace();
    if (Done()) return InvalidArgument("classad: expected literal");
    if (Peek() == '"') {
      Take();
      std::string out;
      while (!Done() && Peek() != '"') out += Take();
      if (Done()) return InvalidArgument("classad: unterminated string");
      Take();
      return out;
    }
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return InvalidArgument("classad: expected literal at offset " +
                             std::to_string(start));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<std::string> CompareOp() {
    SkipSpace();
    for (const std::string_view op : {"==", "!=", ">=", "<=", ">", "<", "="}) {
      if (TryTake(op)) return std::string(op == "=" ? "==" : op);
    }
    return InvalidArgument("classad: expected comparison operator");
  }

  [[nodiscard]] std::size_t pos() const { return pos_; }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

Result<Comparison> ParseComparison(Scanner& scanner) {
  auto attr = scanner.Identifier();
  if (!attr.ok()) return attr.status();
  auto op = scanner.CompareOp();
  if (!op.ok()) return op.status();
  auto value = scanner.Literal();
  if (!value.ok()) return value.status();
  return Comparison{std::move(attr.value()), std::move(op.value()),
                    std::move(value.value())};
}

// Parses either one comparison or "( cmp || cmp || ... )" over one
// attribute; returns the attribute, the operator, and the value
// alternatives.
Result<std::vector<Comparison>> ParseClause(Scanner& scanner) {
  scanner.SkipSpace();
  if (scanner.Peek() != '(') {
    auto cmp = ParseComparison(scanner);
    if (!cmp.ok()) return cmp.status();
    return std::vector<Comparison>{std::move(cmp.value())};
  }
  scanner.Take();  // '('
  std::vector<Comparison> alternatives;
  while (true) {
    auto cmp = ParseComparison(scanner);
    if (!cmp.ok()) return cmp.status();
    alternatives.push_back(std::move(cmp.value()));
    if (scanner.TryTake("||")) continue;
    if (scanner.TryTake(")")) break;
    // Allow a parenthesized conjunction too: "(A && B)" is flattened by
    // returning the first comparison and rewinding is impossible — treat
    // '&&' inside parens as additional clauses of the same group.
    if (scanner.TryTake("&&")) continue;
    return InvalidArgument("classad: expected '||', '&&', or ')' at offset " +
                           std::to_string(scanner.pos()));
  }
  if (alternatives.size() > 1) {
    for (const auto& alt : alternatives) {
      if (alt.attr != alternatives.front().attr ||
          alt.op != alternatives.front().op) {
        // Mixed-attribute disjunction inside parens: only same-attribute
        // or-clauses map onto the pipeline's composite queries.
        if (alt.op != alternatives.front().op ||
            alt.attr != alternatives.front().attr) {
          return InvalidArgument(
              "classad: disjunctions must range over one attribute "
              "(found '" +
              alternatives.front().attr + "' and '" + alt.attr + "')");
        }
      }
    }
  }
  return alternatives;
}

}  // namespace

Result<std::string> TranslateClassAd(const std::string& classad_text) {
  Scanner scanner(classad_text);
  if (!scanner.TryTake("[")) {
    return InvalidArgument("classad: expected leading '['");
  }

  std::string native;
  bool saw_requirements = false;
  while (true) {
    scanner.SkipSpace();
    if (scanner.TryTake("]")) break;
    if (scanner.Done()) {
      return InvalidArgument("classad: missing closing ']'");
    }
    auto key = scanner.Identifier();
    if (!key.ok()) return key.status();
    if (!scanner.TryTake("=")) {
      return InvalidArgument("classad: expected '=' after '" + *key + "'");
    }

    if (*key == "requirements") {
      saw_requirements = true;
      while (true) {
        auto clause = ParseClause(scanner);
        if (!clause.ok()) return clause.status();
        const auto& alternatives = clause.value();
        // Same-attribute disjunction renders as value1|value2|...
        std::string value_expr;
        for (std::size_t i = 0; i < alternatives.size(); ++i) {
          if (i) value_expr += "|";
          if (alternatives[i].op != "==") {
            value_expr += alternatives[i].op;
          }
          value_expr += alternatives[i].value;
        }
        native += "punch.rsrc." + alternatives.front().attr + " = " +
                  value_expr + "\n";
        if (scanner.TryTake("&&")) continue;
        break;
      }
      if (!scanner.TryTake(";")) {
        // Trailing ';' is optional before ']'.
        scanner.SkipSpace();
        if (scanner.Peek() != ']') {
          return InvalidArgument(
              "classad: expected ';' or ']' after requirements");
        }
      }
      continue;
    }

    auto value = scanner.Literal();
    if (!value.ok()) return value.status();
    auto mapped = TopLevelMap().find(*key);
    if (mapped != TopLevelMap().end()) {
      native += mapped->second + " = " + *value + "\n";
    } else if (*key != "rank") {  // Rank is advisory; ignored
      native += "punch.appl." + *key + " = " + *value + "\n";
    }
    scanner.TryTake(";");
  }

  if (!saw_requirements && native.empty()) {
    return InvalidArgument("classad: empty ad");
  }
  return native;
}

}  // namespace actyp::interop
