// RSL-style translator (Globus Resource Specification Language): the
// pipeline interoperates with grid middleware by translating relations
// like
//
//   &(arch=sun)(memory>=10)(license=tsuprem4)(owner="kapadia")
//
// into native query text. '&' introduces a conjunction; each
// parenthesized relation is attribute, operator, value. Multi-value
// relations "(arch=sun|hp)" become or-clauses.
#pragma once

#include <string>

#include "common/status.hpp"

namespace actyp::interop {

Result<std::string> TranslateRsl(const std::string& rsl_text);

}  // namespace actyp::interop
