// ClassAd-style translator (§5.1: "this could allow ActYP to reuse
// Condor's ClassAds"). Supports the job-ad subset that maps onto the
// pipeline's query semantics:
//
//   [
//     Requirements = (Arch == "sun" || Arch == "hp") && Memory >= 10
//                    && License == "tsuprem4";
//     EstimatedCpu = 1000;
//     Owner = "kapadia";
//     AccessGroup = "ece";
//   ]
//
// Requirements must be a conjunction of comparisons; a parenthesized
// disjunction over a single attribute becomes an or-clause (composite
// query). Attribute names are case-insensitive; quoted strings and
// numbers are the only literal types.
#pragma once

#include <string>

#include "common/status.hpp"

namespace actyp::interop {

// Translates ClassAd text to native query text; the result feeds the
// query-manager translation hook.
Result<std::string> TranslateClassAd(const std::string& classad_text);

}  // namespace actyp::interop
