#include "interop/rsl.hpp"

#include <map>

#include "common/strings.hpp"

namespace actyp::interop {
namespace {

// RSL attributes that are user/application metadata rather than
// resource requirements.
const std::map<std::string, std::string>& RslMap() {
  static const std::map<std::string, std::string> kMap = {
      {"owner", "punch.user.login"},
      {"accessgroup", "punch.user.accessgroup"},
      {"maxcputime", "punch.appl.expectedcpuuse"},
      {"executable", "punch.appl.tool"},
      {"count", "punch.appl.count"},
  };
  return kMap;
}

std::string Unquote(std::string_view text) {
  text = TrimView(text);
  if (text.size() >= 2 && ((text.front() == '"' && text.back() == '"') ||
                           (text.front() == '\'' && text.back() == '\''))) {
    return std::string(text.substr(1, text.size() - 2));
  }
  return std::string(text);
}

}  // namespace

Result<std::string> TranslateRsl(const std::string& rsl_text) {
  std::string_view text = TrimView(rsl_text);
  if (text.empty()) return InvalidArgument("rsl: empty specification");
  if (text.front() == '&') text = TrimView(text.substr(1));
  if (text.empty() || text.front() != '(') {
    return InvalidArgument("rsl: expected '(' after '&'");
  }

  std::string native;
  std::size_t pos = 0;
  while (pos < text.size()) {
    // Skip whitespace between relations.
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    if (pos >= text.size()) break;
    if (text[pos] != '(') {
      return InvalidArgument("rsl: expected '(' at offset " +
                             std::to_string(pos));
    }
    const std::size_t close = text.find(')', pos);
    if (close == std::string_view::npos) {
      return InvalidArgument("rsl: unterminated relation");
    }
    const std::string_view relation = text.substr(pos + 1, close - pos - 1);
    pos = close + 1;

    // Find the earliest operator; prefer the longer spelling on ties so
    // ">=" is not read as ">" followed by "=value".
    std::size_t op_pos = std::string_view::npos;
    std::size_t op_len = 0;
    std::string op;
    for (const std::string_view candidate :
         {">=", "<=", "!=", ">", "<", "="}) {
      const std::size_t p = relation.find(candidate);
      if (p == std::string_view::npos) continue;
      if (op_pos == std::string_view::npos || p < op_pos ||
          (p == op_pos && candidate.size() > op_len)) {
        op_pos = p;
        op_len = candidate.size();
        op = candidate == "=" ? "==" : std::string(candidate);
      }
    }
    if (op_pos == std::string_view::npos) {
      return InvalidArgument("rsl: relation '" + std::string(relation) +
                             "' has no operator");
    }
    const std::string attr = ToLower(Trim(relation.substr(0, op_pos)));
    const std::string raw_value = Trim(relation.substr(op_pos + op_len));
    if (attr.empty() || raw_value.empty()) {
      return InvalidArgument("rsl: malformed relation '" +
                             std::string(relation) + "'");
    }

    // Multi-value: alternatives separated by '|'.
    std::string value_expr;
    const auto alternatives = SplitSkipEmpty(raw_value, '|');
    for (std::size_t i = 0; i < alternatives.size(); ++i) {
      if (i) value_expr += "|";
      if (op != "==") value_expr += op;
      value_expr += Unquote(alternatives[i]);
    }

    auto mapped = RslMap().find(attr);
    if (mapped != RslMap().end()) {
      native += mapped->second + " = " + Unquote(raw_value) + "\n";
    } else {
      native += "punch.rsrc." + attr + " = " + value_expr + "\n";
    }
  }
  if (native.empty()) return InvalidArgument("rsl: no relations found");
  return native;
}

}  // namespace actyp::interop
