#include "query/parser.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace actyp::query {
namespace {

// One parsed line before composite expansion.
struct RawTerm {
  KeyParts key;
  std::vector<Condition> alternatives;  // >1 => "or" clause
  std::string raw_value;                // for appl/user/meta terms
};

Result<std::vector<RawTerm>> Tokenize(std::string_view text) {
  std::vector<RawTerm> terms;
  std::size_t line_no = 0;
  for (const auto& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string_view line = TrimView(raw_line);
    if (line.empty() || line.front() == '#') continue;
    const std::size_t eq = line.find('=');
    // Careful: the first '=' may belong to an operator only when it is
    // the separator "key = value"; keys never contain '='.
    if (eq == std::string_view::npos) {
      return InvalidArgument("query line " + std::to_string(line_no) +
                             ": expected 'key = value'");
    }
    const std::string key = Trim(line.substr(0, eq));
    // "key == value" writes the separator twice; absorb the second '='
    // only when it is adjacent to the first (a detached "= ==value" is
    // an operator-prefixed value, not a doubled separator).
    std::size_t value_start = eq + 1;
    if (value_start < line.size() && line[value_start] == '=') ++value_start;
    const std::string_view value = TrimView(line.substr(value_start));
    auto parts = SplitKey(key);
    if (!parts.ok()) return parts.status();

    RawTerm term;
    term.key = std::move(parts.value());
    term.raw_value = std::string(value);
    for (const auto& alt : Split(value, '|')) {
      const auto trimmed = TrimView(alt);
      if (trimmed.empty()) {
        return InvalidArgument("query line " + std::to_string(line_no) +
                               ": empty alternative in or-clause");
      }
      term.alternatives.push_back(ParseCondition(trimmed));
    }
    if (term.alternatives.empty()) {
      return InvalidArgument("query line " + std::to_string(line_no) +
                             ": missing value");
    }
    terms.push_back(std::move(term));
  }
  return terms;
}

}  // namespace

Result<KeyParts> SplitKey(std::string_view key) {
  auto pieces = SplitSkipEmpty(key, '.');
  if (pieces.size() < 3) {
    return InvalidArgument("key '" + std::string(key) +
                           "' must have the form family.type.name");
  }
  KeyParts parts;
  parts.family = ToLower(pieces[0]);
  parts.type = ToLower(pieces[1]);
  std::vector<std::string> rest(pieces.begin() + 2, pieces.end());
  parts.name = ToLower(Join(rest, "."));
  return parts;
}

Condition ParseCondition(std::string_view text) {
  text = TrimView(text);
  for (const std::string_view op_text : {">=", "<=", "==", "!=", "=~"}) {
    if (StartsWith(text, op_text)) {
      return Condition{*ParseCmpOp(op_text),
                       Value(Trim(text.substr(op_text.size())))};
    }
  }
  for (const std::string_view op_text : {">", "<"}) {
    if (StartsWith(text, op_text)) {
      return Condition{*ParseCmpOp(op_text),
                       Value(Trim(text.substr(op_text.size())))};
    }
  }
  // Bare wildcard values get glob semantics so admins can write
  // "ostype = solaris*".
  const bool has_wildcard = text.find('*') != std::string_view::npos ||
                            text.find('?') != std::string_view::npos;
  return Condition{has_wildcard ? CmpOp::kGlob : CmpOp::kEq,
                   Value(std::string(text))};
}

Result<CompositeQuery> Parser::Parse(std::string_view text) {
  auto terms = Tokenize(text);
  if (!terms.ok()) return terms.status();
  if (terms->empty()) return InvalidArgument("empty query");

  // Determine family from the first non-meta term.
  std::string family;
  for (const auto& term : *terms) {
    if (term.key.family != "actyp") {
      family = term.key.family;
      break;
    }
  }
  if (family.empty()) family = "punch";

  // Start with one prototype query and expand the cartesian product of
  // rsrc or-clauses.
  std::vector<Query> expansion;
  expansion.emplace_back(family);

  for (const auto& term : *terms) {
    if (term.key.family == "actyp" && term.key.type == "meta") {
      // Pipeline state applies to every alternative.
      for (auto& q : expansion) {
        if (term.key.name == "ttl") {
          if (auto ttl = ParseInt(term.raw_value)) {
            q.set_ttl(static_cast<int>(*ttl));
          }
        } else if (term.key.name == "visited") {
          for (const auto& name : SplitSkipEmpty(term.raw_value, ',')) {
            q.AddVisited(name);
          }
        } else if (term.key.name == "request") {
          if (auto id = ParseInt(term.raw_value)) {
            q.set_request_id(static_cast<std::uint64_t>(*id));
          }
        } else if (term.key.name == "composite") {
          if (auto id = ParseInt(term.raw_value)) {
            auto frag = q.fragment();
            frag.composite_id = static_cast<std::uint64_t>(*id);
            q.set_fragment(frag);
          }
        } else if (term.key.name == "fragment") {
          const auto parts = Split(term.raw_value, '/');
          if (parts.size() == 2) {
            auto frag = q.fragment();
            if (auto idx = ParseInt(parts[0])) {
              frag.index = static_cast<std::uint32_t>(*idx);
            }
            if (auto total = ParseInt(parts[1])) {
              frag.total = static_cast<std::uint32_t>(*total);
            }
            q.set_fragment(frag);
          }
        }
        // Unknown meta keys are ignored for forward compatibility.
      }
      continue;
    }

    if (term.key.family != family) {
      return InvalidArgument("mixed families in one query: '" + family +
                             "' and '" + term.key.family + "'");
    }

    if (term.key.type == "rsrc") {
      if (term.alternatives.size() == 1) {
        for (auto& q : expansion) q.SetRsrc(term.key.name, term.alternatives[0]);
        continue;
      }
      if (expansion.size() * term.alternatives.size() > kMaxAlternatives) {
        return InvalidArgument(
            "composite query expands to more than " +
            std::to_string(kMaxAlternatives) + " basic queries");
      }
      std::vector<Query> next;
      next.reserve(expansion.size() * term.alternatives.size());
      for (const auto& base : expansion) {
        for (const auto& alt : term.alternatives) {
          Query q = base;
          q.SetRsrc(term.key.name, alt);
          next.push_back(std::move(q));
        }
      }
      expansion = std::move(next);
    } else if (term.key.type == "appl") {
      for (auto& q : expansion) q.SetAppl(term.key.name, term.raw_value);
    } else if (term.key.type == "user") {
      for (auto& q : expansion) q.SetUser(term.key.name, term.raw_value);
    } else {
      return InvalidArgument("unknown key type '" + term.key.type +
                             "' (expected rsrc, appl, or user)");
    }
  }

  return CompositeQuery(std::move(expansion));
}

Result<Query> Parser::ParseBasic(std::string_view text) {
  auto composite = Parse(text);
  if (!composite.ok()) return composite.status();
  if (!composite->IsBasic()) {
    return InvalidArgument("expected a basic query but found " +
                           std::to_string(composite->size()) +
                           " alternatives");
  }
  return composite->alternatives()[0];
}

}  // namespace actyp::query
