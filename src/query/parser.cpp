#include "query/parser.hpp"

#include <algorithm>
#include <cctype>

#include "common/strings.hpp"

namespace actyp::query {
namespace {

// One parsed line before composite expansion.
struct RawTerm {
  KeyParts key;
  std::vector<Condition> alternatives;  // >1 => "or" clause
  std::string raw_value;                // for appl/user/meta terms
};

Result<std::vector<RawTerm>> Tokenize(std::string_view text) {
  std::vector<RawTerm> terms;
  std::size_t line_no = 0;
  Status error = Status::Ok();
  ForEachPiece(text, '\n', [&](std::string_view raw_line) {
    if (!error.ok()) return;
    ++line_no;
    std::string_view line = TrimView(raw_line);
    if (line.empty() || line.front() == '#') return;
    const std::size_t eq = line.find('=');
    // Careful: the first '=' may belong to an operator only when it is
    // the separator "key = value"; keys never contain '='.
    if (eq == std::string_view::npos) {
      error = InvalidArgument("query line " + std::to_string(line_no) +
                              ": expected 'key = value'");
      return;
    }
    const std::string_view key = TrimView(line.substr(0, eq));
    // "key == value" writes the separator twice; absorb the second '='
    // only when it is adjacent to the first (a detached "= ==value" is
    // an operator-prefixed value, not a doubled separator).
    std::size_t value_start = eq + 1;
    if (value_start < line.size() && line[value_start] == '=') ++value_start;
    const std::string_view value = TrimView(line.substr(value_start));
    auto parts = SplitKey(key);
    if (!parts.ok()) {
      error = parts.status();
      return;
    }

    RawTerm term;
    term.key = std::move(parts.value());
    term.raw_value = std::string(value);
    ForEachPiece(value, '|', [&](std::string_view alt) {
      if (!error.ok()) return;
      const auto trimmed = TrimView(alt);
      if (trimmed.empty()) {
        error = InvalidArgument("query line " + std::to_string(line_no) +
                                ": empty alternative in or-clause");
        return;
      }
      term.alternatives.push_back(ParseCondition(trimmed));
    });
    if (!error.ok()) return;
    if (term.alternatives.empty()) {
      error = InvalidArgument("query line " + std::to_string(line_no) +
                              ": missing value");
      return;
    }
    terms.push_back(std::move(term));
  });
  if (!error.ok()) return error;
  return terms;
}

}  // namespace

Result<KeyParts> SplitKey(std::string_view key) {
  // family.type.name[.more]: empty segments are skipped; the name keeps
  // any further dots ("punch.rsrc.a.b" -> name "a.b").
  std::string_view family;
  std::string_view type;
  std::size_t name_begin = std::string_view::npos;
  std::size_t seen = 0;
  std::size_t offset = 0;
  for (;;) {
    const std::size_t dot = key.find('.', offset);
    const std::string_view piece =
        dot == std::string_view::npos ? key.substr(offset)
                                      : key.substr(offset, dot - offset);
    if (!piece.empty()) {
      if (seen == 0) {
        family = piece;
      } else {
        type = piece;
        name_begin = dot == std::string_view::npos ? key.size() : dot + 1;
      }
      if (++seen == 2) break;
    }
    if (dot == std::string_view::npos) break;
    offset = dot + 1;
  }
  KeyParts parts;
  if (seen == 2 && name_begin < key.size()) {
    // Lower-case the name while collapsing empty segments.
    std::string name;
    name.reserve(key.size() - name_begin);
    ForEachPiece(key.substr(name_begin), '.', [&name](std::string_view piece) {
      if (piece.empty()) return;
      if (!name.empty()) name += '.';
      for (const char c : piece) {
        name += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
    });
    if (!name.empty()) {
      parts.family = ToLower(family);
      parts.type = ToLower(type);
      parts.name = std::move(name);
      return parts;
    }
  }
  return InvalidArgument("key '" + std::string(key) +
                         "' must have the form family.type.name");
}

Condition ParseCondition(std::string_view text) {
  text = TrimView(text);
  for (const std::string_view op_text : {">=", "<=", "==", "!=", "=~"}) {
    if (StartsWith(text, op_text)) {
      return Condition{*ParseCmpOp(op_text),
                       Value(Trim(text.substr(op_text.size())))};
    }
  }
  for (const std::string_view op_text : {">", "<"}) {
    if (StartsWith(text, op_text)) {
      return Condition{*ParseCmpOp(op_text),
                       Value(Trim(text.substr(op_text.size())))};
    }
  }
  // Bare wildcard values get glob semantics so admins can write
  // "ostype = solaris*".
  const bool has_wildcard = text.find('*') != std::string_view::npos ||
                            text.find('?') != std::string_view::npos;
  return Condition{has_wildcard ? CmpOp::kGlob : CmpOp::kEq,
                   Value(std::string(text))};
}

Result<CompositeQuery> Parser::Parse(std::string_view text) {
  auto terms = Tokenize(text);
  if (!terms.ok()) return terms.status();
  if (terms->empty()) return InvalidArgument("empty query");

  // Determine family from the first non-meta term.
  std::string family;
  for (const auto& term : *terms) {
    if (term.key.family != "actyp") {
      family = term.key.family;
      break;
    }
  }
  if (family.empty()) family = "punch";

  // Start with one prototype query and expand the cartesian product of
  // rsrc or-clauses.
  std::vector<Query> expansion;
  expansion.emplace_back(family);

  for (const auto& term : *terms) {
    if (term.key.family == "actyp" && term.key.type == "meta") {
      // Pipeline state applies to every alternative.
      for (auto& q : expansion) {
        if (term.key.name == "ttl") {
          if (auto ttl = ParseInt(term.raw_value)) {
            q.set_ttl(static_cast<int>(*ttl));
          }
        } else if (term.key.name == "visited") {
          for (const auto& name : SplitSkipEmpty(term.raw_value, ',')) {
            q.AddVisited(name);
          }
        } else if (term.key.name == "request") {
          if (auto id = ParseInt(term.raw_value)) {
            q.set_request_id(static_cast<std::uint64_t>(*id));
          }
        } else if (term.key.name == "composite") {
          if (auto id = ParseInt(term.raw_value)) {
            auto frag = q.fragment();
            frag.composite_id = static_cast<std::uint64_t>(*id);
            q.set_fragment(frag);
          }
        } else if (term.key.name == "fragment") {
          const auto parts = Split(term.raw_value, '/');
          if (parts.size() == 2) {
            auto frag = q.fragment();
            if (auto idx = ParseInt(parts[0])) {
              frag.index = static_cast<std::uint32_t>(*idx);
            }
            if (auto total = ParseInt(parts[1])) {
              frag.total = static_cast<std::uint32_t>(*total);
            }
            q.set_fragment(frag);
          }
        }
        // Unknown meta keys are ignored for forward compatibility.
      }
      continue;
    }

    if (term.key.family != family) {
      return InvalidArgument("mixed families in one query: '" + family +
                             "' and '" + term.key.family + "'");
    }

    if (term.key.type == "rsrc") {
      if (term.alternatives.size() == 1) {
        for (auto& q : expansion) q.SetRsrc(term.key.name, term.alternatives[0]);
        continue;
      }
      if (expansion.size() * term.alternatives.size() > kMaxAlternatives) {
        return InvalidArgument(
            "composite query expands to more than " +
            std::to_string(kMaxAlternatives) + " basic queries");
      }
      std::vector<Query> next;
      next.reserve(expansion.size() * term.alternatives.size());
      for (const auto& base : expansion) {
        for (const auto& alt : term.alternatives) {
          Query q = base;
          q.SetRsrc(term.key.name, alt);
          next.push_back(std::move(q));
        }
      }
      expansion = std::move(next);
    } else if (term.key.type == "appl") {
      for (auto& q : expansion) q.SetAppl(term.key.name, term.raw_value);
    } else if (term.key.type == "user") {
      for (auto& q : expansion) q.SetUser(term.key.name, term.raw_value);
    } else {
      return InvalidArgument("unknown key type '" + term.key.type +
                             "' (expected rsrc, appl, or user)");
    }
  }

  return CompositeQuery(std::move(expansion));
}

Result<Query> Parser::ParseBasic(std::string_view text) {
  auto composite = Parse(text);
  if (!composite.ok()) return composite.status();
  if (!composite->IsBasic()) {
    return InvalidArgument("expected a basic query but found " +
                           std::to_string(composite->size()) +
                           " alternatives");
  }
  return composite->alternatives()[0];
}

}  // namespace actyp::query
