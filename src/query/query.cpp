#include "query/query.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace actyp::query {

void Query::SetRsrc(const std::string& name, Condition cond) {
  rsrc_[ToLower(name)] = std::move(cond);
}

void Query::SetRsrc(const std::string& name, CmpOp op,
                    const std::string& value) {
  SetRsrc(name, Condition{op, Value(value)});
}

std::optional<Condition> Query::GetRsrc(const std::string& name) const {
  auto it = rsrc_.find(ToLower(name));
  if (it == rsrc_.end()) return std::nullopt;
  return it->second;
}

void Query::RemoveRsrc(const std::string& name) { rsrc_.erase(ToLower(name)); }

void Query::SetAppl(const std::string& name, std::string value) {
  appl_[ToLower(name)] = std::move(value);
}

void Query::SetUser(const std::string& name, std::string value) {
  user_[ToLower(name)] = std::move(value);
}

std::string Query::GetAppl(const std::string& name) const {
  auto it = appl_.find(ToLower(name));
  return it == appl_.end() ? std::string() : it->second;
}

std::string Query::GetUser(const std::string& name) const {
  auto it = user_.find(ToLower(name));
  return it == user_.end() ? std::string() : it->second;
}

bool Query::DecrementTtl() {
  if (ttl_ <= 0) return false;
  --ttl_;
  return ttl_ > 0;
}

void Query::AddVisited(const std::string& pool_manager_name) {
  if (!HasVisited(pool_manager_name)) visited_.push_back(pool_manager_name);
}

bool Query::HasVisited(const std::string& pool_manager_name) const {
  return std::find(visited_.begin(), visited_.end(), pool_manager_name) !=
         visited_.end();
}

std::string Query::Signature() const {
  // rsrc_ is a std::map, so iteration is already sorted by key — exactly
  // the "sorted rsrc keys" of §5.2.2.
  std::vector<std::string> keys;
  std::vector<std::string> ops;
  keys.reserve(rsrc_.size());
  ops.reserve(rsrc_.size());
  for (const auto& [name, cond] : rsrc_) {
    keys.push_back(name);
    ops.emplace_back(CmpOpSpelling(cond.op));
  }
  return Join(keys, ":") + "," + Join(ops, ":");
}

std::string Query::Identifier() const {
  std::vector<std::string> values;
  values.reserve(rsrc_.size());
  for (const auto& [name, cond] : rsrc_) values.push_back(cond.value.text());
  return Join(values, ":");
}

std::string Query::PoolName() const { return Signature() + "/" + Identifier(); }

bool Query::Matches(const AttributeFn& attribute) const {
  for (const auto& [name, cond] : rsrc_) {
    const auto attr = attribute(name);
    if (!attr.has_value()) return false;
    if (!EvalCmp(Value(*attr), cond.op, cond.value)) return false;
  }
  return true;
}

std::string Query::ToText() const {
  std::string out;
  auto emit = [&out](const std::string& key, const std::string& value) {
    out += key;
    out += " = ";
    out += value;
    out += '\n';
  };
  for (const auto& [name, cond] : rsrc_) {
    emit(family_ + ".rsrc." + name, cond.ToString());
  }
  for (const auto& [name, value] : appl_) emit(family_ + ".appl." + name, value);
  for (const auto& [name, value] : user_) emit(family_ + ".user." + name, value);
  emit("actyp.meta.ttl", std::to_string(ttl_));
  if (!visited_.empty()) emit("actyp.meta.visited", Join(visited_, ","));
  if (fragment_.is_fragment()) {
    emit("actyp.meta.composite", std::to_string(fragment_.composite_id));
    emit("actyp.meta.fragment",
         std::to_string(fragment_.index) + "/" + std::to_string(fragment_.total));
  }
  if (request_id_ != 0) emit("actyp.meta.request", std::to_string(request_id_));
  return out;
}

bool operator==(const Query& a, const Query& b) {
  if (a.family_ != b.family_ || a.appl_ != b.appl_ || a.user_ != b.user_) {
    return false;
  }
  if (a.rsrc_.size() != b.rsrc_.size()) return false;
  auto it_a = a.rsrc_.begin();
  auto it_b = b.rsrc_.begin();
  for (; it_a != a.rsrc_.end(); ++it_a, ++it_b) {
    if (it_a->first != it_b->first) return false;
    if (it_a->second.op != it_b->second.op) return false;
    if (!(it_a->second.value == it_b->second.value)) return false;
  }
  return true;
}

}  // namespace actyp::query
