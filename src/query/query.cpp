#include "query/query.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace actyp::query {

namespace {

// Sorted-vector upsert/lookup helpers. Keys are stored lower-cased;
// callers almost always pass already-lower keys, so the common path
// avoids the allocating ToLower.
template <typename List, typename V>
void UpsertTerm(List& list, std::string_view name, V value) {
  const std::string lowered = IsLower(name) ? std::string(name)
                                            : ToLower(name);
  auto it = std::lower_bound(
      list.begin(), list.end(), lowered,
      [](const auto& entry, const std::string& key) {
        return entry.first < key;
      });
  if (it != list.end() && it->first == lowered) {
    it->second = std::move(value);
    return;
  }
  list.emplace(it, lowered, std::move(value));
}

template <typename List>
auto FindTerm(const List& list, std::string_view name) {
  // Lookup keys are short literals; compare case-insensitively without
  // materializing a lowered copy.
  auto lower = [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  };
  auto less = [&lower](std::string_view a, std::string_view b) {
    return std::lexicographical_compare(
        a.begin(), a.end(), b.begin(), b.end(),
        [&lower](char x, char y) { return lower(x) < lower(y); });
  };
  auto it = std::lower_bound(list.begin(), list.end(), name,
                             [&less](const auto& entry, std::string_view key) {
                               return less(entry.first, key);
                             });
  if (it != list.end() && !less(name, it->first)) return it;
  return list.end();
}

}  // namespace

void Query::SetRsrc(std::string_view name, Condition cond) {
  UpsertTerm(rsrc_, name, std::move(cond));
}

void Query::SetRsrc(std::string_view name, CmpOp op,
                    const std::string& value) {
  SetRsrc(name, Condition{op, Value(value)});
}

std::optional<Condition> Query::GetRsrc(std::string_view name) const {
  auto it = FindTerm(rsrc_, name);
  if (it == rsrc_.end()) return std::nullopt;
  return it->second;
}

void Query::RemoveRsrc(std::string_view name) {
  auto it = FindTerm(rsrc_, name);
  if (it != rsrc_.end()) rsrc_.erase(it);
}

void Query::SetAppl(std::string_view name, std::string value) {
  UpsertTerm(appl_, name, std::move(value));
}

void Query::SetUser(std::string_view name, std::string value) {
  UpsertTerm(user_, name, std::move(value));
}

std::string Query::GetAppl(std::string_view name) const {
  auto it = FindTerm(appl_, name);
  return it == appl_.end() ? std::string() : it->second;
}

std::string Query::GetUser(std::string_view name) const {
  auto it = FindTerm(user_, name);
  return it == user_.end() ? std::string() : it->second;
}

bool Query::DecrementTtl() {
  if (ttl_ <= 0) return false;
  --ttl_;
  return ttl_ > 0;
}

void Query::AddVisited(const std::string& pool_manager_name) {
  if (!HasVisited(pool_manager_name)) visited_.push_back(pool_manager_name);
}

bool Query::HasVisited(const std::string& pool_manager_name) const {
  return std::find(visited_.begin(), visited_.end(), pool_manager_name) !=
         visited_.end();
}

std::string Query::Signature() const {
  // rsrc_ is a std::map, so iteration is already sorted by key — exactly
  // the "sorted rsrc keys" of §5.2.2.
  std::vector<std::string> keys;
  std::vector<std::string> ops;
  keys.reserve(rsrc_.size());
  ops.reserve(rsrc_.size());
  for (const auto& [name, cond] : rsrc_) {
    keys.push_back(name);
    ops.emplace_back(CmpOpSpelling(cond.op));
  }
  return Join(keys, ":") + "," + Join(ops, ":");
}

std::string Query::Identifier() const {
  std::vector<std::string> values;
  values.reserve(rsrc_.size());
  for (const auto& [name, cond] : rsrc_) values.push_back(cond.value.text());
  return Join(values, ":");
}

std::string Query::PoolName() const { return Signature() + "/" + Identifier(); }

bool Query::Matches(const AttributeFn& attribute) const {
  for (const auto& [name, cond] : rsrc_) {
    const auto attr = attribute(name);
    if (!attr.has_value()) return false;
    if (!EvalCmp(Value(*attr), cond.op, cond.value)) return false;
  }
  return true;
}

std::string Query::ToText() const {
  std::string out;
  auto emit = [&out](const std::string& key, const std::string& value) {
    out += key;
    out += " = ";
    out += value;
    out += '\n';
  };
  for (const auto& [name, cond] : rsrc_) {
    emit(family_ + ".rsrc." + name, cond.ToString());
  }
  for (const auto& [name, value] : appl_) emit(family_ + ".appl." + name, value);
  for (const auto& [name, value] : user_) emit(family_ + ".user." + name, value);
  emit("actyp.meta.ttl", std::to_string(ttl_));
  if (!visited_.empty()) emit("actyp.meta.visited", Join(visited_, ","));
  if (fragment_.is_fragment()) {
    emit("actyp.meta.composite", std::to_string(fragment_.composite_id));
    emit("actyp.meta.fragment",
         std::to_string(fragment_.index) + "/" + std::to_string(fragment_.total));
  }
  if (request_id_ != 0) emit("actyp.meta.request", std::to_string(request_id_));
  return out;
}

bool operator==(const Query& a, const Query& b) {
  if (a.family_ != b.family_ || a.appl_ != b.appl_ || a.user_ != b.user_) {
    return false;
  }
  if (a.rsrc_.size() != b.rsrc_.size()) return false;
  auto it_a = a.rsrc_.begin();
  auto it_b = b.rsrc_.begin();
  for (; it_a != a.rsrc_.end(); ++it_a, ++it_b) {
    if (it_a->first != it_b->first) return false;
    if (it_a->second.op != it_b->second.op) return false;
    if (!(it_a->second.value == it_b->second.value)) return false;
  }
  return true;
}

}  // namespace actyp::query
