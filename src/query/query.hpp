// The basic (non-composite) query processed by the resource management
// pipeline, plus the signature/identifier mapping that names resource
// pools (§5.1, §5.2.2).
//
// Keys form a hierarchical namespace: family.type.name, e.g.
//   punch.rsrc.arch   — resource requirement (constraint on machines)
//   punch.appl.expectedcpuuse — predicted application behaviour
//   punch.user.login  — user-specific data
// Missing rsrc keys default to "don't care"; missing appl/user keys
// default to "undefined".
//
// Pipeline state (TTL, visited pool managers, fragment bookkeeping for
// composite reintegration) is carried *with the query itself*, which is
// what makes the architecture decentralized (§6).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "query/value.hpp"

namespace actyp::query {

// One constraint on a resource attribute.
struct Condition {
  CmpOp op = CmpOp::kEq;
  Value value;

  [[nodiscard]] std::string ToString() const {
    return std::string(CmpOpSpelling(op)) + value.text();
  }
};

// Default TTL for pool-manager delegation, analogous to the IP TTL
// field (§5.2.2).
inline constexpr int kDefaultTtl = 8;

// Fragment bookkeeping for composite-query reintegration, analogous to
// TCP/IP datagram fragmentation (§5.2.1).
struct FragmentInfo {
  std::uint64_t composite_id = 0;  // 0 = not part of a composite
  std::uint32_t index = 0;
  std::uint32_t total = 1;
  [[nodiscard]] bool is_fragment() const { return composite_id != 0; }
};

// Attribute lookup used when matching a query against a machine: returns
// the machine's value for a rsrc key name ("arch", "memory", ...) or
// nullopt when the machine does not define it.
using AttributeFn =
    std::function<std::optional<std::string>(const std::string& name)>;

class Query {
 public:
  // Terms live in flat vectors kept sorted by (lower-cased) key: queries
  // carry a handful of terms, and the per-stage parse/copy cost of
  // node-based maps dominated the pipeline's hot path.
  using RsrcList = std::vector<std::pair<std::string, Condition>>;
  using TermList = std::vector<std::pair<std::string, std::string>>;

  Query() = default;
  explicit Query(std::string family) : family_(std::move(family)) {}

  [[nodiscard]] const std::string& family() const { return family_; }
  void set_family(std::string family) { family_ = std::move(family); }

  // --- resource requirement terms (keyed by final name component) ---
  void SetRsrc(std::string_view name, Condition cond);
  void SetRsrc(std::string_view name, CmpOp op, const std::string& value);
  [[nodiscard]] const RsrcList& rsrc() const { return rsrc_; }
  [[nodiscard]] std::optional<Condition> GetRsrc(std::string_view name) const;
  void RemoveRsrc(std::string_view name);

  // --- application / user terms (plain values) ---
  void SetAppl(std::string_view name, std::string value);
  void SetUser(std::string_view name, std::string value);
  [[nodiscard]] const TermList& appl() const { return appl_; }
  [[nodiscard]] const TermList& user() const { return user_; }
  // "" when absent.
  [[nodiscard]] std::string GetAppl(std::string_view name) const;
  [[nodiscard]] std::string GetUser(std::string_view name) const;

  // --- pipeline state carried with the query ---
  [[nodiscard]] int ttl() const { return ttl_; }
  void set_ttl(int ttl) { ttl_ = ttl; }
  // Decrements TTL; returns false once expired (request has failed).
  bool DecrementTtl();

  [[nodiscard]] const std::vector<std::string>& visited() const {
    return visited_;
  }
  void AddVisited(const std::string& pool_manager_name);
  [[nodiscard]] bool HasVisited(const std::string& pool_manager_name) const;

  [[nodiscard]] FragmentInfo fragment() const { return fragment_; }
  void set_fragment(FragmentInfo info) { fragment_ = info; }

  [[nodiscard]] std::uint64_t request_id() const { return request_id_; }
  void set_request_id(std::uint64_t id) { request_id_ = id; }

  // --- pool naming (§5.2.2) ---
  // Signature: colon-separated sorted rsrc key names, a comma, then the
  // corresponding operator spellings. Example from the paper:
  //   arch:domain:license:memory,==:==:==:>=
  [[nodiscard]] std::string Signature() const;
  // Identifier: colon-separated values of the sorted rsrc keys:
  //   sun:purdue:tsuprem4:10
  [[nodiscard]] std::string Identifier() const;
  // Pool name = signature '/' identifier.
  [[nodiscard]] std::string PoolName() const;

  // --- matching ---
  // True when every rsrc constraint is satisfied by the machine's
  // attributes. A machine lacking a constrained attribute fails the
  // constraint (the query asked for something the machine does not
  // advertise); unconstrained attributes are "don't care".
  [[nodiscard]] bool Matches(const AttributeFn& attribute) const;

  // --- wire format ---
  // Serializes to the native text protocol (one key = value per line,
  // with pipeline state in the "actyp.meta.*" family).
  [[nodiscard]] std::string ToText() const;

  friend bool operator==(const Query& a, const Query& b);

 private:
  std::string family_ = "punch";
  RsrcList rsrc_;  // sorted by key
  TermList appl_;  // sorted by key
  TermList user_;  // sorted by key
  int ttl_ = kDefaultTtl;
  std::vector<std::string> visited_;
  FragmentInfo fragment_;
  std::uint64_t request_id_ = 0;
};

// A composite query: alternatives produced by "or" clauses. Decomposed
// into basic queries at the query-manager stage (§5.2.1).
class CompositeQuery {
 public:
  CompositeQuery() = default;
  explicit CompositeQuery(std::vector<Query> alternatives)
      : alternatives_(std::move(alternatives)) {}

  [[nodiscard]] const std::vector<Query>& alternatives() const {
    return alternatives_;
  }
  [[nodiscard]] std::vector<Query>& alternatives() { return alternatives_; }
  [[nodiscard]] bool IsBasic() const { return alternatives_.size() == 1; }
  [[nodiscard]] std::size_t size() const { return alternatives_.size(); }

 private:
  std::vector<Query> alternatives_;
};

}  // namespace actyp::query
