// Parser for the native key-value query language (§5.1) and the
// composite-query decomposition performed by query managers (§5.2.1).
//
// Input is line-oriented text:
//
//   punch.rsrc.arch = sun
//   punch.rsrc.memory = >=10
//   punch.rsrc.license = tsuprem4
//   punch.appl.expectedcpuuse = 1000
//   punch.user.login = kapadia
//
// A value may carry a leading comparison operator (default "==") and may
// contain '|'-separated alternatives ("or" clauses); such composite
// queries decompose into the cartesian product of their alternatives,
// each fragment tagged for reintegration at the end of the pipeline.
#pragma once

#include <string_view>

#include "common/status.hpp"
#include "query/query.hpp"

namespace actyp::query {

class Parser {
 public:
  // Maximum number of basic queries a single composite may expand to;
  // guards against cartesian blow-up from many OR'd keys.
  static constexpr std::size_t kMaxAlternatives = 64;

  // Parses text into a composite query (one alternative when no "or"
  // clause is present). Fragment info is left unset; the query manager
  // assigns composite ids when it decomposes.
  static Result<CompositeQuery> Parse(std::string_view text);

  // Convenience: parses and requires the result to be basic.
  static Result<Query> ParseBasic(std::string_view text);
};

// Splits a full key "family.type.name" into its three components; the
// name part may itself contain dots (they join into `name`).
struct KeyParts {
  std::string family;
  std::string type;  // "rsrc", "appl", "user" (or "meta" for actyp.meta.*)
  std::string name;
};
Result<KeyParts> SplitKey(std::string_view key);

// Parses a single value expression "opvalue" (e.g. ">=10", "sun",
// "=~ultra*") into a Condition.
Condition ParseCondition(std::string_view text);

}  // namespace actyp::query
