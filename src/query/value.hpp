// Typed attribute values for the query language.
//
// The paper's language is key-value text; values are interpreted as
// numeric when both sides of a comparison parse as numbers (e.g.
// "memory = >=10", default unit megabytes), otherwise as
// case-insensitive strings. Administrators may use '*'/'?' wildcards in
// machine parameters, matched with glob semantics.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace actyp::query {

// Comparison operators supported by the pipeline (§5.2.2 lists equal-to,
// greater-than, etc.; the signature encodes them as spelled strings).
enum class CmpOp {
  kEq,    // ==
  kNe,    // !=
  kGe,    // >=
  kLe,    // <=
  kGt,    // >
  kLt,    // <
  kGlob,  // =~  wildcard match
};

// Spelled form used in signatures and on the wire: "==", "!=", ">=", ...
std::string_view CmpOpSpelling(CmpOp op);
std::optional<CmpOp> ParseCmpOp(std::string_view text);

// A value is stored as its source text; numeric interpretation is
// attempted lazily at comparison time so "10", "10.5" and "sparc" all
// live in one representation (exactly what a text protocol carries).
class Value {
 public:
  Value() = default;
  explicit Value(std::string text);

  [[nodiscard]] const std::string& text() const { return text_; }
  [[nodiscard]] bool is_numeric() const { return numeric_.has_value(); }
  [[nodiscard]] double numeric() const { return numeric_.value_or(0.0); }

  // Three-way comparison against another value: <0, 0, >0. Numeric when
  // both sides are numeric, otherwise case-insensitive lexicographic.
  [[nodiscard]] int Compare(const Value& other) const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.Compare(b) == 0;
  }

 private:
  std::string text_;
  std::optional<double> numeric_;
};

// Evaluates `lhs op rhs` (lhs is the machine's attribute, rhs the query's
// constraint value).
bool EvalCmp(const Value& lhs, CmpOp op, const Value& rhs);

}  // namespace actyp::query
