#include "query/value.hpp"

#include "common/strings.hpp"

namespace actyp::query {

std::string_view CmpOpSpelling(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "==";
    case CmpOp::kNe: return "!=";
    case CmpOp::kGe: return ">=";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kLt: return "<";
    case CmpOp::kGlob: return "=~";
  }
  return "==";
}

std::optional<CmpOp> ParseCmpOp(std::string_view text) {
  if (text == "==" || text == "=") return CmpOp::kEq;
  if (text == "!=") return CmpOp::kNe;
  if (text == ">=") return CmpOp::kGe;
  if (text == "<=") return CmpOp::kLe;
  if (text == ">") return CmpOp::kGt;
  if (text == "<") return CmpOp::kLt;
  if (text == "=~") return CmpOp::kGlob;
  return std::nullopt;
}

Value::Value(std::string text) : text_(std::move(text)) {
  numeric_ = ParseDouble(text_);
}

int Value::Compare(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    const double a = numeric();
    const double b = other.numeric();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  const std::string a = ToLower(text_);
  const std::string b = ToLower(other.text_);
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

bool EvalCmp(const Value& lhs, CmpOp op, const Value& rhs) {
  switch (op) {
    case CmpOp::kEq: return lhs.Compare(rhs) == 0;
    case CmpOp::kNe: return lhs.Compare(rhs) != 0;
    case CmpOp::kGe: return lhs.Compare(rhs) >= 0;
    case CmpOp::kLe: return lhs.Compare(rhs) <= 0;
    case CmpOp::kGt: return lhs.Compare(rhs) > 0;
    case CmpOp::kLt: return lhs.Compare(rhs) < 0;
    case CmpOp::kGlob: return GlobMatch(rhs.text(), lhs.text());
  }
  return false;
}

}  // namespace actyp::query
