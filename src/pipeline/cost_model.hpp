// Per-stage service-time model. These constants replace the paper's
// physical testbed (524 MHz Alpha server): they are calibrated so a
// single un-contended query through the LAN pipeline lands in the tens
// of milliseconds and a 3,200-machine linear scan costs ~19 ms, which
// reproduces the response-time scales of Figs. 4-8. EXPERIMENTS.md
// records the calibration.
#pragma once

#include "common/sim_time.hpp"

namespace actyp::pipeline {

struct CostModel {
  // Query manager: translate + parse one query.
  SimDuration qm_translate = Micros(400);
  // Query manager: per fragment produced by decomposition.
  SimDuration qm_per_fragment = Micros(100);

  // Pool manager: signature/identifier construction + directory lookup.
  SimDuration pm_map = Micros(300);
  // Pool manager: forwarding decision for delegation.
  SimDuration pm_delegate = Micros(200);

  // Resource pool: fixed per-query overhead (accept, session setup).
  SimDuration pool_fixed = Micros(250);
  // Resource pool: linear-search cost per cache entry examined (the
  // dominant term in Fig. 6's linear plots).
  SimDuration pool_per_machine = Micros(6);
  // Resource pool: periodic re-sort, per entry.
  SimDuration pool_sort_per_machine = Micros(1);

  // Pool creation: fork/exec + directory registration.
  SimDuration pool_create_fixed = Millis(25);
  // Pool creation: white-pages walk, per database record inspected.
  SimDuration pool_create_per_machine = Micros(4);

  // Reintegrator: merging one fragment result.
  SimDuration reintegrate_per_fragment = Micros(150);
};

}  // namespace actyp::pipeline
