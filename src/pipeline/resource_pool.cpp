#include "pipeline/resource_pool.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/strings.hpp"
#include "obs/flight_recorder.hpp"
#include "query/parser.hpp"

namespace actyp::pipeline {
namespace {
// Sentinel load marking a cache entry whose machine is down/blocked;
// large enough that no policy (or oversubscribe fallback) picks it.
constexpr double kUnusableLoad = 1e18;
}  // namespace

ResourcePool::ResourcePool(ResourcePoolConfig config,
                           db::ResourceDatabase* database,
                           directory::DirectoryApi* directory,
                           db::ShadowAccountRegistry* shadows,
                           db::PolicyRegistry* policies)
    : config_(std::move(config)),
      database_(database),
      directory_(directory),
      shadows_(shadows),
      policies_(policies) {
  auto policy = sched::MakePolicy(config_.policy);
  policy_ = policy.ok() ? std::move(policy.value())
                        : std::make_unique<sched::LeastLoadPolicy>();
  if (policy_->indexed()) {
    index_ = std::make_unique<sched::SchedulingIndex>(
        policy_.get(), config_.instance, config_.instance_count);
  }
}

ResourcePool::~ResourcePool() = default;

void ResourcePool::OnStart(net::NodeContext& ctx) {
  Initialize(ctx);
  if (config_.resort_period > 0) {
    ctx.ScheduleSelf(config_.resort_period, net::Message{net::msg::kTick});
  }
}

void ResourcePool::Initialize(net::NodeContext& ctx) {
  const std::string claim_name =
      config_.claim_name.empty() ? config_.pool_name : config_.claim_name;
  // First instance claims machines; replicas adopt the existing claim so
  // all instances of a pool see the same machine set (Fig. 8).
  std::vector<db::MachineId> ids = database_->ListTakenBy(claim_name);
  if (ids.empty()) {
    ids = database_->ClaimMatching(config_.criteria, claim_name,
                                   config_.claim_limit);
  }

  cache_.clear();
  meta_.clear();
  cache_ids_.clear();
  id_index_.clear();
  cache_.reserve(ids.size());
  meta_.reserve(ids.size());
  cache_ids_.reserve(ids.size());
  any_user_groups_ = false;
  any_usage_policy_ = false;
  // Cursor first, read second: changes landing between the two are
  // re-applied by the first refresh tick, which is idempotent; taking
  // the cursor after the read could silently skip them.
  db_cursor_ = database_->version();
  database_->VisitRecords(ids, [this](std::size_t, const db::MachineRecord*
                                                      rec) {
    if (rec == nullptr) return;
    sched::CacheEntry entry;
    entry.id = rec->id;
    entry.load = rec->dyn.load;
    entry.available_memory_mb = rec->dyn.available_memory_mb;
    entry.effective_speed = rec->effective_speed;
    entry.num_cpus = rec->num_cpus;
    entry.max_allowed_load = rec->max_allowed_load;
    entry.active_jobs = 0;
    entry.updated = rec->dyn.last_update;
    id_index_[rec->id] = cache_.size();
    cache_.push_back(std::move(entry));
    cache_ids_.push_back(rec->id);

    EntryMeta meta;
    meta.name = rec->name;
    meta.user_groups = rec->user_groups;
    meta.usage_policy = rec->usage_policy;
    meta.shadow_pool = rec->shadow_pool;
    meta.execution_port = rec->execution_unit_port;
    any_user_groups_ |= !meta.user_groups.empty();
    any_usage_policy_ |= !meta.usage_policy.empty();
    meta_.push_back(std::move(meta));
  });
  if (index_) index_->Rebuild(cache_);

  initialized_ = true;
  if (config_.register_in_directory && directory_ != nullptr) {
    directory::PoolInstance instance;
    instance.pool_name = config_.pool_name;
    instance.instance = config_.instance;
    instance.address = ctx.self();
    instance.machine_count = cache_.size();
    instance.segment = config_.segment;
    const Status status = directory_->RegisterPool(instance);
    registered_ = status.ok();
    if (!status.ok()) {
      ACTYP_WARN << "pool '" << config_.pool_name
                 << "' failed directory registration: " << status.ToString();
    }
  }
}

void ResourcePool::OnMessage(const net::Envelope& envelope,
                             net::NodeContext& ctx) {
  const net::Message& message = envelope.message;
  if (message.type == net::msg::kQuery) {
    HandleQuery(envelope, ctx);
    if (config_.profiler != nullptr) {
      config_.profiler->Record(profile::Stage::kPoolSelect,
                               RequestIdOf(message), envelope.sent_at,
                               ctx.Now() + ctx.Consumed());
    }
  } else if (message.type == net::msg::kRelease) {
    HandleRelease(envelope, ctx);
  } else if (message.type == net::msg::kTick) {
    HandleTick(ctx);
  } else if (message.type == net::msg::kShutdown) {
    if (registered_ && directory_ != nullptr) {
      directory_->UnregisterPool(config_.pool_name, config_.instance);
      registered_ = false;
    }
    database_->ReleaseAllFrom(
        config_.claim_name.empty() ? config_.pool_name : config_.claim_name);
  } else {
    ACTYP_DEBUG << "pool '" << config_.pool_name
                << "': ignoring message type '" << message.type << "'";
  }
}

void ResourcePool::HandleQuery(const net::Envelope& envelope,
                               net::NodeContext& ctx) {
  ++stats_.queries;
  const net::Message& message = envelope.message;
  const net::Address reply_to = message.Header(net::hdr::kReplyTo);
  const std::uint64_t request_id = RequestIdOf(message);

  ctx.Consume(config_.costs.pool_fixed);

  // Facts selection needs: the access group, the co-allocation count,
  // the reservation window, and the fragment coordinates. When the
  // query manager attached its sched hints (§6 — parsed state travels
  // with the message) they are read from headers; queries injected
  // mid-pipeline parse the body as before.
  std::string access_group;
  std::size_t want = 1;
  std::optional<double> resv_start_s;
  double resv_duration_s = 3600.0;
  std::uint32_t frag_index = 0, frag_total = 1;
  ParseFragmentHeader(message, &frag_index, &frag_total);
  if (message.HasHeader(phdr::kSchedHints)) {
    access_group = message.Header(phdr::kAccessGroup);
    if (auto count = ParseInt(message.Header(phdr::kCoAlloc));
        count && *count > 1) {
      want = static_cast<std::size_t>(*count);
    }
    if (auto start = ParseDouble(message.Header(phdr::kResvStart))) {
      resv_start_s = *start;
      resv_duration_s =
          ParseDouble(message.Header(phdr::kResvDuration)).value_or(3600.0);
    }
  } else {
    auto parsed = query::Parser::ParseBasic(message.body);
    if (!parsed.ok()) {
      ++stats_.failures;
      if (!reply_to.empty()) {
        ctx.Send(reply_to,
                 MakeFailureMessage(request_id, parsed.status().ToString()));
      }
      return;
    }
    const query::Query& q = parsed.value();
    access_group = q.GetUser("accessgroup");
    if (auto count = ParseInt(q.GetAppl("count")); count && *count > 1) {
      want = static_cast<std::size_t>(*count);
    }
    if (auto start = ParseDouble(q.GetAppl("starttime"))) {
      resv_start_s = *start;
      resv_duration_s = ParseDouble(q.GetAppl("duration")).value_or(3600.0);
    }
    // The fragment header is authoritative when present (split pools
    // stamp it without rewriting the body); body meta only covers
    // queries injected with neither hints nor a fragment header.
    if (!message.HasHeader(phdr::kFragment)) {
      if (const query::FragmentInfo frag = q.fragment(); frag.is_fragment()) {
        frag_index = frag.index;
        frag_total = frag.total;
      }
    }
  }
  const std::string access_group_lower = ToLower(access_group);

  // Per-query eligibility: user group lists (Fig. 3 field 16) and usage
  // policies (field 19) applied to the pool's cached view. Most pools
  // carry no such metadata — the selection scan must not pay an
  // indirect filter call per entry for a check that always passes.
  const bool needs_meta_filter =
      (any_user_groups_ && !access_group.empty()) ||
      (policies_ != nullptr && any_usage_policy_);
  auto meta_allows = [this, &access_group, &access_group_lower](
                         std::size_t i, const sched::CacheEntry& entry) {
    const EntryMeta& meta = meta_[i];
    if (!meta.user_groups.empty() && !access_group_lower.empty()) {
      const bool allowed =
          std::any_of(meta.user_groups.begin(), meta.user_groups.end(),
                      [&access_group_lower](const std::string& g) {
                        return ToLower(g) == access_group_lower;
                      });
      if (!allowed) return false;
    }
    if (policies_ != nullptr && !meta.usage_policy.empty()) {
      // Evaluate the policy against the cached dynamic view.
      db::MachineRecord synth;
      synth.name = meta.name;
      synth.dyn.load = entry.load;
      synth.dyn.available_memory_mb = entry.available_memory_mb;
      synth.effective_speed = entry.effective_speed;
      synth.num_cpus = entry.num_cpus;
      synth.max_allowed_load = entry.max_allowed_load;
      synth.usage_policy = meta.usage_policy;
      if (!policies_->Allows(synth, access_group)) return false;
    }
    return true;
  };

  // Co-allocation and advance reservations (extensions beyond the 2001
  // prototype, which the paper lists as unsupported): `punch.appl.count
  // = N` machines granted atomically or not at all; `punch.appl.
  // starttime` (absolute seconds) + `punch.appl.duration` turn the
  // request into a booking of that future window.
  SimTime resv_start = 0, resv_end = 0;
  bool is_reservation = false;
  if (resv_start_s.has_value()) {
    resv_start = Seconds(*resv_start_s);
    resv_end = resv_start + Seconds(resv_duration_s);
    is_reservation = resv_end > resv_start && resv_start >= ctx.Now();
    if (!is_reservation) {
      ++stats_.failures;
      if (!reply_to.empty()) {
        ctx.Send(reply_to, MakeFailureMessage(
                               request_id, "invalid reservation window"));
      }
      return;
    }
  }

  sched::SelectionContext sel_ctx;
  sel_ctx.instance = config_.instance;
  sel_ctx.instance_count = config_.instance_count;
  sel_ctx.rng = &ctx.rng();

  // Select `want` distinct machines; already-picked indices are excluded
  // through the filter. A plain single allocation with no access-control
  // metadata in play needs no filter at all — the common fast path.
  std::vector<std::size_t> picked;
  std::size_t examined = 0;
  bool oversubscribed = false;
  std::function<bool(std::size_t, const sched::CacheEntry&)> pick_filter;
  if (needs_meta_filter || is_reservation || want > 1) {
    pick_filter = [this, &meta_allows, &picked, is_reservation,
                   needs_meta_filter, resv_start, resv_end](
                      std::size_t i, const sched::CacheEntry& entry) {
      if (std::find(picked.begin(), picked.end(), i) != picked.end()) {
        return false;
      }
      if (is_reservation &&
          !reservations_.IsFree(entry.id, resv_start, resv_end)) {
        return false;
      }
      return !needs_meta_filter || meta_allows(i, entry);
    };
    sel_ctx.filter = &pick_filter;
  }
  while (picked.size() < want) {
    sched::Selection selection = index_ ? index_->Select(cache_, sel_ctx)
                                        : policy_->Select(cache_, sel_ctx);
    if (!selection.found() && config_.allow_oversubscribe &&
        !is_reservation) {
      // Every machine is at its ceiling: time-share the least-loaded one
      // that passes access control.
      double best_load = 0.0;
      for (std::size_t i = 0; i < cache_.size(); ++i) {
        ++selection.examined;
        if (cache_[i].load >= kUnusableLoad) continue;  // machine is down
        if (pick_filter && !pick_filter(i, cache_[i])) continue;
        if (!selection.found() || cache_[i].load < best_load) {
          selection.index = i;
          best_load = cache_[i].load;
        }
      }
      oversubscribed |= selection.found();
    }
    examined += selection.examined;
    if (!selection.found()) break;
    picked.push_back(selection.index);
  }

  sched::Selection selection;  // summary view for the reply logic below
  if (picked.size() == want) selection.index = picked.front();
  selection.examined = examined;

  stats_.entries_examined += selection.examined;
  ctx.Consume(config_.costs.pool_per_machine *
              static_cast<SimDuration>(selection.examined));

  if (!selection.found() && !picked.empty()) {
    // Partial co-allocation: all-or-nothing, so nothing was committed
    // (loads are only bumped once the full set is granted below).
    picked.clear();
  }

  // Aggregation metadata that must survive this stage: the reintegrator
  // needs the final client address and the QoS mode on every fragment
  // result (all state travels with the messages, §6).
  auto propagate = [&message](net::Message& out) {
    for (const auto key : {phdr::kFinalReplyTo, phdr::kQosFirstMatch}) {
      if (message.HasHeader(key)) {
        out.SetHeader(key, message.Header(key));
      }
    }
  };

  if (!selection.found()) {
    ++stats_.failures;
    if (!reply_to.empty()) {
      net::Message failure =
          MakeFailureMessage(request_id,
                             "no machine available in pool '" +
                                 config_.pool_name + "'",
                             frag_index, frag_total);
      propagate(failure);
      ctx.Send(reply_to, std::move(failure));
    }
    return;
  }
  if (oversubscribed) ++stats_.oversubscribed;

  const std::string session_key = MakeSessionKey(ctx);
  if (is_reservation) {
    // A booking promises future capacity; present load is untouched.
    for (const std::size_t index : picked) {
      reservations_.Book(cache_[index].id, resv_start, resv_end, session_key);
    }
    reservation_sessions_.insert(session_key);
    ++stats_.reservations;
  } else {
    for (const std::size_t index : picked) {
      cache_[index].active_jobs += 1;
      cache_[index].load += 1.0;
      TouchIndex(index);
    }
  }

  const std::size_t primary = picked.front();
  sched::CacheEntry& chosen = cache_[primary];
  Allocation allocation;
  allocation.machine_name = meta_[primary].name;
  allocation.machine_id = chosen.id;
  allocation.port = meta_[primary].execution_port;
  allocation.session_key = session_key;
  allocation.pool_name = config_.pool_name;
  allocation.pool_address = ctx.self();
  allocation.machine_load = chosen.load;
  allocation.request_id = request_id;
  allocation.fragment_index = frag_index;
  allocation.fragment_total = frag_total;

  if (shadows_ != nullptr && !meta_[primary].shadow_pool.empty()) {
    auto* pool = shadows_->Find(meta_[primary].shadow_pool);
    if (pool != nullptr) {
      auto uid = pool->Acquire(allocation.session_key);
      if (uid.ok()) {
        allocation.shadow_uid = *uid;
        session_uid_[allocation.session_key] = *uid;
      }
    }
  }

  session_entry_[allocation.session_key] = picked;
  ++stats_.allocations;
  if (config_.recorder != nullptr) {
    config_.recorder->Record(ctx.Now(), obs::FlightKind::kPoolClaim,
                             request_id, ctx.self(),
                             config_.pool_name + " -> " +
                                 meta_[primary].name);
  }
  if (!reply_to.empty()) {
    net::Message out = MakeAllocationMessage(allocation);
    if (is_reservation) {
      out.SetHeader("reserved-start", std::to_string(ToSeconds(resv_start)));
      out.SetHeader("reserved-end", std::to_string(ToSeconds(resv_end)));
    }
    if (picked.size() > 1) {
      // Co-allocated set: full machine list rides in one header so the
      // client can reach every member.
      std::vector<std::string> names;
      names.reserve(picked.size());
      for (const std::size_t index : picked) {
        names.push_back(meta_[index].name);
      }
      out.SetHeader("machines", Join(names, ","));
    }
    propagate(out);
    ctx.Send(reply_to, std::move(out));
  }
}

void ResourcePool::HandleRelease(const net::Envelope& envelope,
                                 net::NodeContext& ctx) {
  const net::Message& message = envelope.message;
  const std::string session = message.Header(net::hdr::kSessionKey);
  ctx.Consume(config_.costs.pool_fixed / 2);

  auto it = session_entry_.find(session);
  if (it == session_entry_.end()) {
    ACTYP_DEBUG << "pool '" << config_.pool_name
                << "': release for unknown session";
    return;
  }
  if (reservation_sessions_.erase(session) > 0) {
    // Cancelling a booking frees the future window, not present load.
    reservations_.Cancel(session);
  } else {
    for (const std::size_t index : it->second) {
      sched::CacheEntry& entry = cache_[index];
      entry.active_jobs = std::max(0, entry.active_jobs - 1);
      entry.load = std::max(0.0, entry.load - 1.0);
      TouchIndex(index);
    }
  }

  auto uid_it = session_uid_.find(session);
  if (uid_it != session_uid_.end()) {
    if (shadows_ != nullptr && !it->second.empty()) {
      auto* pool = shadows_->Find(meta_[it->second.front()].shadow_pool);
      if (pool != nullptr) pool->Release(uid_it->second, session);
    }
    session_uid_.erase(uid_it);
  }
  session_entry_.erase(it);
  ++stats_.releases;
  if (config_.recorder != nullptr) {
    config_.recorder->Record(ctx.Now(), obs::FlightKind::kPoolRelease, 0,
                             ctx.self(), "session " + session);
  }
}

void ResourcePool::HandleTick(net::NodeContext& ctx) {
  const std::size_t refreshed = RefreshFromDatabase();
  if (index_) {
    // Indexed policies never reorder the cache. The dirty-id refresh
    // already re-positioned each touched entry in O(log n), so the tick
    // costs O(changed machines); only a full sweep (legacy mode or a
    // stale cursor) pays the O(n) heapify inside RefreshFromDatabase.
    ctx.Consume(config_.costs.pool_sort_per_machine *
                static_cast<SimDuration>(refreshed));
  } else {
    Resort(ctx);
  }
  reservations_.Prune(ctx.Now());
  ctx.ScheduleSelf(config_.resort_period, net::Message{net::msg::kTick});
}

void ResourcePool::ApplyRecord(std::size_t index,
                               const db::MachineRecord& rec) {
  sched::CacheEntry& entry = cache_[index];
  if (!rec.IsUsable()) {
    // The machine went down or was blocked since the last sweep: make
    // it unselectable (by any policy, including the oversubscribe
    // fallback) until it comes back.
    entry.load = kUnusableLoad;
    entry.updated = rec.dyn.last_update;
    return;
  }
  // Background load from the monitor plus this pool's own allocations.
  entry.load = rec.dyn.load + static_cast<double>(entry.active_jobs);
  entry.available_memory_mb = rec.dyn.available_memory_mb;
  entry.updated = rec.dyn.last_update;
}

std::size_t ResourcePool::RefreshFromDatabase() {
  ++stats_.refresh_ticks;
  if (config_.incremental_refresh) {
    dirty_ids_.clear();
    if (const auto cursor = database_->ChangesSince(db_cursor_, &dirty_ids_)) {
      db_cursor_ = *cursor;
      // Only dirty ids that live in this pool's cache are fetched; the
      // common quiet tick touches nothing at all.
      fetch_ids_.clear();
      fetch_index_.clear();
      for (const db::MachineId id : dirty_ids_) {
        const auto it = id_index_.find(id);
        if (it == id_index_.end()) continue;
        fetch_ids_.push_back(id);
        fetch_index_.push_back(it->second);
      }
      if (!fetch_ids_.empty()) {
        database_->VisitRecords(
            fetch_ids_, [this](std::size_t i, const db::MachineRecord* rec) {
              if (rec == nullptr) return;
              ApplyRecord(fetch_index_[i], *rec);
            });
        for (const std::size_t index : fetch_index_) TouchIndex(index);
      }
      stats_.entries_refreshed += fetch_ids_.size();
      return fetch_ids_.size();
    }
    // Cursor predates the db's retained change journal: re-anchor and
    // fall through to one full sweep.
    db_cursor_ = database_->version();
  }
  // Legacy path: one locked sweep over every cached record, no copies.
  database_->VisitRecords(
      cache_ids_, [this](std::size_t i, const db::MachineRecord* rec) {
        if (rec != nullptr) ApplyRecord(i, *rec);
      });
  if (index_) index_->Rebuild(cache_);
  stats_.entries_refreshed += cache_.size();
  return cache_.size();
}

void ResourcePool::TouchIndex(std::size_t index) {
  if (index_) index_->Update(cache_, index);
}

void ResourcePool::Resort(net::NodeContext& ctx) {
  ctx.Consume(config_.costs.pool_sort_per_machine *
              static_cast<SimDuration>(cache_.size()));
  // Sort cache and keep meta/session maps consistent via an index
  // permutation; the permutation buffers persist across ticks.
  sort_order_.resize(cache_.size());
  for (std::size_t i = 0; i < sort_order_.size(); ++i) sort_order_[i] = i;
  std::stable_sort(sort_order_.begin(), sort_order_.end(),
                   [this](std::size_t a, std::size_t b) {
                     return policy_->Better(cache_[a], cache_[b]);
                   });
  const bool identity =
      std::is_sorted(sort_order_.begin(), sort_order_.end());
  if (identity) return;  // already in objective order; nothing to move

  std::vector<sched::CacheEntry> new_cache;
  std::vector<EntryMeta> new_meta;
  std::vector<db::MachineId> new_ids;
  new_cache.reserve(cache_.size());
  new_meta.reserve(meta_.size());
  new_ids.reserve(cache_ids_.size());
  sort_new_index_.resize(cache_.size());
  for (std::size_t rank = 0; rank < sort_order_.size(); ++rank) {
    sort_new_index_[sort_order_[rank]] = rank;
    new_cache.push_back(std::move(cache_[sort_order_[rank]]));
    new_meta.push_back(std::move(meta_[sort_order_[rank]]));
    new_ids.push_back(cache_ids_[sort_order_[rank]]);
  }
  cache_ = std::move(new_cache);
  meta_ = std::move(new_meta);
  cache_ids_ = std::move(new_ids);
  for (auto& [session, indices] : session_entry_) {
    for (auto& index : indices) index = sort_new_index_[index];
  }
  for (std::size_t i = 0; i < cache_ids_.size(); ++i) {
    id_index_[cache_ids_[i]] = i;
  }
}

std::string ResourcePool::MakeSessionKey(net::NodeContext& ctx) {
  static const char kHex[] = "0123456789abcdef";
  std::string key = "sess-";
  for (int i = 0; i < 4; ++i) {
    std::uint64_t word = ctx.rng().Next();
    for (int j = 0; j < 8; ++j) {
      key += kHex[word & 0xF];
      word >>= 4;
    }
  }
  return key;
}

}  // namespace actyp::pipeline
