#include "pipeline/proxy.hpp"

#include "common/logging.hpp"
#include "pipeline/protocol.hpp"
#include "query/parser.hpp"

namespace actyp::pipeline {

ProxyServer::ProxyServer(ProxyConfig config, net::Network* network,
                         db::ResourceDatabase* database,
                         directory::DirectoryApi* directory,
                         db::ShadowAccountRegistry* shadows,
                         db::PolicyRegistry* policies)
    : config_(std::move(config)),
      network_(network),
      database_(database),
      directory_(directory),
      shadows_(shadows),
      policies_(policies) {}

void ProxyServer::OnMessage(const net::Envelope& envelope,
                            net::NodeContext& ctx) {
  if (envelope.message.type == net::msg::kCreatePool) {
    HandleCreatePool(envelope, ctx);
  } else {
    ACTYP_DEBUG << "proxy on '" << config_.host
                << "': ignoring message type '" << envelope.message.type
                << "'";
  }
}

void ProxyServer::HandleCreatePool(const net::Envelope& envelope,
                                   net::NodeContext& ctx) {
  const net::Message& message = envelope.message;

  auto parsed = query::Parser::ParseBasic(message.body);
  if (!parsed.ok()) {
    ++stats_.create_failures;
    const net::Address reply_to = message.Header(net::hdr::kReplyTo);
    if (!reply_to.empty()) {
      ctx.Send(reply_to, MakeFailureMessage(0, parsed.status().ToString()));
    }
    return;
  }
  const query::Query& q = parsed.value();

  // The pool's aggregation criteria are exactly the query's rsrc terms —
  // this is the "active" part of the yellow pages: categories defined on
  // the fly from the observed job mix.
  query::Query criteria(q.family());
  for (const auto& [name, cond] : q.rsrc()) criteria.SetRsrc(name, cond);

  ResourcePoolConfig pool_config;
  pool_config.pool_name = message.HasHeader(net::hdr::kPoolName)
                              ? message.Header(net::hdr::kPoolName)
                              : q.PoolName();
  pool_config.instance = next_pool_;
  pool_config.criteria = criteria;
  pool_config.policy = config_.pool_policy;
  pool_config.resort_period = config_.pool_resort_period;
  pool_config.costs = config_.costs;
  pool_config.profiler = config_.profiler;
  pool_config.recorder = config_.recorder;

  // Fork/exec plus the white-pages walk, charged to the proxy.
  ctx.Consume(config_.costs.pool_create_fixed +
              config_.costs.pool_create_per_machine *
                  static_cast<SimDuration>(database_->size()));

  const net::Address pool_address =
      "pool." + config_.host + "." + std::to_string(next_pool_++);
  auto pool = std::make_shared<ResourcePool>(pool_config, database_,
                                             directory_, shadows_, policies_);
  net::NodePlacement placement;
  placement.host = config_.host;
  placement.servers = config_.pool_servers;
  const Status added = network_->AddNode(pool_address, pool, placement);
  if (!added.ok()) {
    ++stats_.create_failures;
    ACTYP_WARN << "proxy: failed to create pool '" << pool_config.pool_name
               << "': " << added.ToString();
    const net::Address reply_to = message.Header(net::hdr::kReplyTo);
    if (!reply_to.empty()) {
      ctx.Send(reply_to, MakeFailureMessage(0, added.ToString()));
    }
    return;
  }
  ++stats_.pools_created;

  // Forward the originating query to the new pool with its headers
  // intact; the pool answers the original requester directly.
  net::Message forward{net::msg::kQuery};
  forward.headers = message.headers;
  forward.RemoveHeader(net::hdr::kPoolName);
  forward.body = message.body;
  ctx.Send(pool_address, std::move(forward));
}

}  // namespace actyp::pipeline
