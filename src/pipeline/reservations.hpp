// Advance reservations — an extension beyond the 2001 prototype (§8
// notes Globus supported "advance reservations and co-allocation of
// compute resources, neither of which are currently supported by
// ActYP"; the conclusions list them as future work).
//
// A ReservationBook tracks, per machine, the time intervals already
// promised to sessions. A query carrying `punch.appl.starttime` (absolute
// simulation seconds) and `punch.appl.duration` (seconds) is granted only
// on a machine whose book is free for the whole window.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/sim_time.hpp"
#include "common/status.hpp"
#include "db/machine.hpp"

namespace actyp::pipeline {

class ReservationBook {
 public:
  struct Interval {
    SimTime start = 0;
    SimTime end = 0;
    std::string session;
  };

  // True when [start, end) does not overlap any reservation on machine.
  [[nodiscard]] bool IsFree(db::MachineId machine, SimTime start,
                            SimTime end) const;

  // Books [start, end) for `session`; fails on conflict or empty window.
  Status Book(db::MachineId machine, SimTime start, SimTime end,
              const std::string& session);

  // Cancels every interval held by `session`; returns how many.
  std::size_t Cancel(const std::string& session);

  // Drops intervals that ended at or before `now`; returns how many.
  std::size_t Prune(SimTime now);

  [[nodiscard]] std::size_t CountFor(db::MachineId machine) const;
  [[nodiscard]] std::size_t total() const;
  [[nodiscard]] std::vector<Interval> IntervalsFor(db::MachineId machine) const;

 private:
  std::map<db::MachineId, std::vector<Interval>> by_machine_;
};

}  // namespace actyp::pipeline
