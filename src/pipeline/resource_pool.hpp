// ResourcePool (§5.2.3): a dynamically-created active object holding
//   1) machines aggregated according to the criteria encoded in its
//      name (claimed from the white pages at initialization), and
//   2) a scheduling process that orders those machines by a configured
//      objective and answers queries with a linear search.
//
// Lifecycle: OnStart walks the white pages, claims matching machines
// (marking them "taken"), loads a local cache, registers itself with the
// local directory service, and arms a periodic re-sort timer. Queries
// allocate a machine, generate a session key, and grab a shadow-account
// uid; releases return the job's capacity.
//
// Replication: instances of the same pool share one machine set (the
// first instance claims; later ones adopt the claim) and apply the
// instance-specific selection bias of Fig. 8.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.hpp"
#include "db/database.hpp"
#include "db/policy.hpp"
#include "db/shadow.hpp"
#include "directory/directory.hpp"
#include "net/node.hpp"
#include "pipeline/cost_model.hpp"
#include "pipeline/protocol.hpp"
#include "pipeline/reservations.hpp"
#include "profile/stage_profiler.hpp"
#include "query/query.hpp"
#include "sched/index.hpp"
#include "sched/policy.hpp"

namespace actyp::obs {
class FlightRecorder;
}  // namespace actyp::obs

namespace actyp::pipeline {

struct ResourcePoolConfig {
  std::string pool_name;       // signature '/' identifier (§5.2.2)
  std::uint32_t instance = 0;  // self-generated instance number
  std::uint32_t instance_count = 1;  // for the replication bias
  // Name under which machines are marked taken in the white pages.
  // Replicas share it (they adopt each other's claim); segments of a
  // split pool use distinct claim names so they partition the machines.
  // Empty = pool_name.
  std::string claim_name;
  // Registered as a segment of a split pool (Fig. 7).
  bool segment = false;
  query::Query criteria;       // aggregation criteria (rsrc terms only)
  std::string policy = "least-load";
  SimDuration resort_period = Seconds(2.0);
  std::size_t claim_limit = 0;  // cap on machines claimed; 0 = all
  // Refresh sweeps fetch only the records the white pages marked dirty
  // since the last tick (cost proportional to churn). False restores
  // the legacy full sweep over every cached record — kept for the
  // incremental-vs-full equivalence test and as an escape hatch.
  bool incremental_refresh = true;
  // When a query finds every machine at its load ceiling, hand out the
  // least-loaded one anyway (PUNCH machines are time-shared); when
  // false, reply with a failure instead.
  bool allow_oversubscribe = true;
  bool register_in_directory = true;
  CostModel costs;
  // Stage-span sink (not owned; must outlive the node, including any
  // fault-restart copies of this config). Null disables profiling.
  profile::StageProfiler* profiler = nullptr;
  // Flight-event sink for claim/release events (same ownership rules as
  // the profiler). Null — the default — records nothing.
  obs::FlightRecorder* recorder = nullptr;
};

struct PoolStats {
  std::uint64_t queries = 0;
  std::uint64_t allocations = 0;
  std::uint64_t failures = 0;
  std::uint64_t releases = 0;
  std::uint64_t oversubscribed = 0;
  std::uint64_t entries_examined = 0;
  std::uint64_t reservations = 0;  // advance reservations granted
  // Refresh economics: how many cache entries each periodic tick had to
  // re-read from the white pages. With dirty-id refresh this tracks
  // monitor/job churn, not cache size.
  std::uint64_t entries_refreshed = 0;
  std::uint64_t refresh_ticks = 0;
};

class ResourcePool final : public net::Node {
 public:
  // `policies` and `shadows` may be nullptr (checks are skipped).
  ResourcePool(ResourcePoolConfig config, db::ResourceDatabase* database,
               directory::DirectoryApi* directory,
               db::ShadowAccountRegistry* shadows,
               db::PolicyRegistry* policies);
  ~ResourcePool() override;

  void OnStart(net::NodeContext& ctx) override;
  void OnMessage(const net::Envelope& envelope, net::NodeContext& ctx) override;

  [[nodiscard]] const PoolStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }
  [[nodiscard]] const ResourcePoolConfig& config() const { return config_; }
  // Sessions still open against this instance (allocation granted, no
  // release seen) — the chaos leaked-session audit reads this at drain.
  [[nodiscard]] std::size_t active_sessions() const {
    return session_entry_.size();
  }

 private:
  struct EntryMeta {
    std::string name;  // machine name (identity lives here, off the
                       // scheduling scan's hot cache entries)
    std::vector<std::string> user_groups;
    std::string usage_policy;
    std::string shadow_pool;
    std::uint16_t execution_port = 0;
  };

  void Initialize(net::NodeContext& ctx);
  void HandleQuery(const net::Envelope& envelope, net::NodeContext& ctx);
  void HandleRelease(const net::Envelope& envelope, net::NodeContext& ctx);
  void HandleTick(net::NodeContext& ctx);
  // Re-reads white-pages state into the cache. Incremental mode fetches
  // only the records dirtied since the last tick and re-positions just
  // those in the scheduling index; the fallback (legacy mode, or a
  // cursor older than the db's change journal) sweeps everything and
  // leaves the index rebuild to the caller. Returns the number of
  // entries re-read (the simulated refresh cost).
  std::size_t RefreshFromDatabase();
  // Applies one record to cache entry `index` (shared by the initial
  // load and both refresh paths).
  void ApplyRecord(std::size_t index, const db::MachineRecord& rec);
  void Resort(net::NodeContext& ctx);
  // Re-positions entry `index` in the scheduling index after its load
  // changed (no-op for the legacy linear policies).
  void TouchIndex(std::size_t index);
  [[nodiscard]] std::string MakeSessionKey(net::NodeContext& ctx);

  ResourcePoolConfig config_;
  db::ResourceDatabase* database_;
  directory::DirectoryApi* directory_;
  db::ShadowAccountRegistry* shadows_;
  db::PolicyRegistry* policies_;

  std::unique_ptr<sched::SchedulingPolicy> policy_;
  // Present iff the policy is indexed: maintained on allocate/release/
  // refresh, consulted instead of the linear scan.
  std::unique_ptr<sched::SchedulingIndex> index_;
  std::vector<sched::CacheEntry> cache_;
  std::vector<EntryMeta> meta_;             // parallel to cache_
  std::vector<db::MachineId> cache_ids_;    // parallel to cache_ (refresh)
  // machine id -> cache index, for routing dirty ids to entries.
  std::unordered_map<db::MachineId, std::size_t> id_index_;
  // White-pages change cursor for the incremental refresh sweep.
  std::uint64_t db_cursor_ = 0;
  // Scratch for the dirty-id refresh, reused across ticks.
  std::vector<db::MachineId> dirty_ids_;
  std::vector<db::MachineId> fetch_ids_;
  std::vector<std::size_t> fetch_index_;
  bool any_user_groups_ = false;            // per-query filter fast path
  bool any_usage_policy_ = false;
  // session -> cache indices (one entry normally; several for
  // co-allocated requests, released together).
  std::unordered_map<std::string, std::vector<std::size_t>> session_entry_;
  std::unordered_map<std::string, std::uint32_t> session_uid_;
  ReservationBook reservations_;  // advance reservations (extension)
  std::unordered_set<std::string> reservation_sessions_;
  // Scratch for Resort, reused across ticks.
  std::vector<std::size_t> sort_order_;
  std::vector<std::size_t> sort_new_index_;
  PoolStats stats_;
  bool registered_ = false;
  bool initialized_ = false;
};

}  // namespace actyp::pipeline
