#include "pipeline/protocol.hpp"

#include "common/strings.hpp"

namespace actyp::pipeline {

net::Message MakeQueryMessage(const query::Query& q,
                              const net::Address& reply_to,
                              const net::Address& final_reply_to,
                              std::uint64_t request_id) {
  net::Message message{net::msg::kQuery};
  message.SetHeader(net::hdr::kReplyTo, reply_to);
  message.SetHeader(phdr::kFinalReplyTo, final_reply_to);
  message.SetHeader(net::hdr::kRequestId, std::to_string(request_id));
  message.body = q.ToText();
  return message;
}

net::Message MakeAllocationMessage(const Allocation& allocation) {
  net::Message message{net::msg::kAllocation};
  message.SetHeader(net::hdr::kMachine, allocation.machine_name);
  message.SetHeader(net::hdr::kMachineId,
                    std::to_string(allocation.machine_id));
  message.SetHeader(net::hdr::kPort, std::to_string(allocation.port));
  message.SetHeader(net::hdr::kSessionKey, allocation.session_key);
  message.SetHeader(net::hdr::kShadowUid,
                    std::to_string(allocation.shadow_uid));
  message.SetHeader(net::hdr::kPoolName, allocation.pool_name);
  message.SetHeader(phdr::kPoolAddress, allocation.pool_address);
  message.SetHeader(phdr::kLoad, std::to_string(allocation.machine_load));
  message.SetHeader(net::hdr::kRequestId,
                    std::to_string(allocation.request_id));
  message.SetHeader(phdr::kFragment,
                    std::to_string(allocation.fragment_index) + "/" +
                        std::to_string(allocation.fragment_total));
  return message;
}

std::uint64_t RequestIdOf(const net::Message& message) {
  if (auto rid = ParseInt(message.Header(net::hdr::kRequestId))) {
    return static_cast<std::uint64_t>(*rid);
  }
  return 0;
}

Result<Allocation> ParseAllocationMessage(const net::Message& message) {
  if (message.type != net::msg::kAllocation) {
    return InvalidArgument("not an allocation message: '" + message.type +
                           "'");
  }
  Allocation allocation;
  allocation.machine_name = message.Header(net::hdr::kMachine);
  if (allocation.machine_name.empty()) {
    return InvalidArgument("allocation missing machine name");
  }
  if (auto id = ParseInt(message.Header(net::hdr::kMachineId))) {
    allocation.machine_id = static_cast<std::uint32_t>(*id);
  }
  if (auto port = ParseInt(message.Header(net::hdr::kPort))) {
    allocation.port = static_cast<std::uint16_t>(*port);
  }
  allocation.session_key = message.Header(net::hdr::kSessionKey);
  if (auto uid = ParseInt(message.Header(net::hdr::kShadowUid))) {
    allocation.shadow_uid = static_cast<std::uint32_t>(*uid);
  }
  allocation.pool_name = message.Header(net::hdr::kPoolName);
  allocation.pool_address = message.Header(phdr::kPoolAddress);
  if (auto load = ParseDouble(message.Header(phdr::kLoad))) {
    allocation.machine_load = *load;
  }
  allocation.request_id = RequestIdOf(message);
  ParseFragmentHeader(message, &allocation.fragment_index,
                      &allocation.fragment_total);
  return allocation;
}

net::Message MakeFailureMessage(std::uint64_t request_id,
                                const std::string& error,
                                std::uint32_t fragment_index,
                                std::uint32_t fragment_total) {
  net::Message message{net::msg::kFailure};
  message.SetHeader(net::hdr::kRequestId, std::to_string(request_id));
  message.SetHeader(net::hdr::kError, error);
  message.SetHeader(phdr::kFragment, std::to_string(fragment_index) + "/" +
                                         std::to_string(fragment_total));
  return message;
}

net::Message MakeReleaseMessage(std::uint32_t machine_id,
                                const std::string& session_key) {
  net::Message message{net::msg::kRelease};
  message.SetHeader(net::hdr::kMachineId, std::to_string(machine_id));
  message.SetHeader(net::hdr::kSessionKey, session_key);
  return message;
}

void ParseFragmentHeader(const net::Message& message, std::uint32_t* index,
                         std::uint32_t* total) {
  *index = 0;
  *total = 1;
  const std::string value = message.Header(phdr::kFragment);
  if (value.empty()) return;
  const auto parts = Split(value, '/');
  if (parts.size() != 2) return;
  if (auto i = ParseInt(parts[0])) *index = static_cast<std::uint32_t>(*i);
  if (auto n = ParseInt(parts[1])) {
    *total = std::max<std::uint32_t>(1, static_cast<std::uint32_t>(*n));
  }
}

}  // namespace actyp::pipeline
