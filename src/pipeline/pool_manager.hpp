// PoolManager (§5.2.2): maps queries to pool names via the
// signature/identifier scheme, selects a random instance from the local
// directory service (or fans out to every segment of a split pool),
// creates pools through a proxy server when none exist, and delegates to
// peer pool managers with a TTL + visited list when it cannot satisfy
// the query locally.
#pragma once

#include <string>
#include <vector>

#include "directory/directory.hpp"
#include "net/node.hpp"
#include "pipeline/cost_model.hpp"
#include "profile/stage_profiler.hpp"
#include "query/query.hpp"

namespace actyp::pipeline {

struct PoolManagerConfig {
  std::string name;  // appears in queries' visited lists
  // Proxy servers that can create pools on this manager's behalf, tried
  // round-robin; empty = this manager cannot create pools.
  std::vector<net::Address> proxies;
  // Reintegrator that aggregates split-pool fan-out results; required
  // when the directory may contain segmented pools.
  net::Address reintegrator;
  // Allow creating a new pool when the directory has no instance.
  bool allow_create = true;
  // Allow delegating to peer pool managers (TTL-guarded).
  bool allow_delegate = true;
  CostModel costs;
  // Stage-span sink (not owned; must outlive the node, including any
  // fault-restart copies of this config). Null disables profiling.
  profile::StageProfiler* profiler = nullptr;
};

struct PoolManagerStats {
  std::uint64_t queries = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t fanouts = 0;
  std::uint64_t created = 0;
  std::uint64_t delegated = 0;
  std::uint64_t failures = 0;
};

class PoolManager final : public net::Node {
 public:
  PoolManager(PoolManagerConfig config, directory::DirectoryApi* directory);

  void OnStart(net::NodeContext& ctx) override;
  void OnMessage(const net::Envelope& envelope, net::NodeContext& ctx) override;

  [[nodiscard]] const PoolManagerStats& stats() const { return stats_; }

 private:
  void HandleQuery(const net::Envelope& envelope, net::NodeContext& ctx);
  void Fail(const net::Envelope& envelope, net::NodeContext& ctx,
            const std::string& reason);
  // Forwards the query to an unvisited peer, tracking TTL and the
  // visited list on headers. `parsed` may be null; the body is only
  // parsed when the message carries neither headers nor a prior parse.
  void Delegate(const net::Envelope& envelope, net::NodeContext& ctx,
                const query::Query* parsed);

  PoolManagerConfig config_;
  directory::DirectoryApi* directory_;
  PoolManagerStats stats_;
  std::size_t next_proxy_ = 0;
};

}  // namespace actyp::pipeline
