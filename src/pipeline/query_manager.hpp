// QueryManager (§5.2.1): the pipeline's entry stage. It translates
// queries from foreign resource-description languages into the native
// key-value format, decomposes composite ("or") queries into basic
// fragments, selects pool managers — by parameter value, or
// random/round-robin — and forwards the fragments. Composite fragments
// and QoS fan-out duplicates are aggregated by a Reintegrator stage.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/node.hpp"
#include "pipeline/cost_model.hpp"
#include "profile/stage_profiler.hpp"
#include "query/query.hpp"

namespace actyp::pipeline {

// Translates a foreign-language query body into native text.
using Translator = std::function<Result<std::string>(const std::string&)>;

enum class PmPickMode { kRandom, kRoundRobin };

// Routes queries whose rsrc `param` matches `value_glob` to a dedicated
// pool-manager set (the paper's example: sun machines to one set, hp to
// another).
struct PmRule {
  std::string param;
  std::string value_glob;
  std::vector<net::Address> pool_managers;
};

struct QueryManagerConfig {
  std::string name;
  std::vector<PmRule> rules;
  std::vector<net::Address> default_pool_managers;
  PmPickMode pick = PmPickMode::kRandom;
  // Aggregation stage for composite fragments and QoS duplicates.
  net::Address reintegrator;
  // QoS: forward every basic query to this many distinct pool managers
  // and let the reintegrator keep the best response (§6). 1 = off.
  std::uint32_t qos_fanout = 1;
  CostModel costs;
  // Stage-span sink (not owned; must outlive the node, including any
  // fault-restart copies of this config). Null disables profiling.
  profile::StageProfiler* profiler = nullptr;
};

struct QueryManagerStats {
  std::uint64_t queries = 0;
  std::uint64_t fragments = 0;
  std::uint64_t composites = 0;
  std::uint64_t translation_failures = 0;
  std::uint64_t parse_failures = 0;
  std::uint64_t routing_failures = 0;
};

class QueryManager final : public net::Node {
 public:
  explicit QueryManager(QueryManagerConfig config);

  // Registers a translator for the given language tag (message header
  // "language"); native queries need none.
  void RegisterTranslator(const std::string& language, Translator translator);

  void OnMessage(const net::Envelope& envelope, net::NodeContext& ctx) override;

  [[nodiscard]] const QueryManagerStats& stats() const { return stats_; }

 private:
  void HandleQuery(const net::Envelope& envelope, net::NodeContext& ctx);
  [[nodiscard]] std::vector<net::Address> CandidatePms(
      const query::Query& q) const;
  net::Address PickPm(const std::vector<net::Address>& candidates,
                      net::NodeContext& ctx);
  void Fail(const net::Envelope& envelope, net::NodeContext& ctx,
            const std::string& reason);

  QueryManagerConfig config_;
  std::unordered_map<std::string, Translator> translators_;
  QueryManagerStats stats_;
  std::size_t round_robin_ = 0;
};

}  // namespace actyp::pipeline
