#include "pipeline/reservations.hpp"

#include <algorithm>

namespace actyp::pipeline {

bool ReservationBook::IsFree(db::MachineId machine, SimTime start,
                             SimTime end) const {
  auto it = by_machine_.find(machine);
  if (it == by_machine_.end()) return true;
  for (const Interval& interval : it->second) {
    if (start < interval.end && interval.start < end) return false;
  }
  return true;
}

Status ReservationBook::Book(db::MachineId machine, SimTime start,
                             SimTime end, const std::string& session) {
  if (end <= start) return InvalidArgument("reservation window is empty");
  if (session.empty()) return InvalidArgument("reservation needs a session");
  if (!IsFree(machine, start, end)) {
    return Unavailable("machine " + std::to_string(machine) +
                       " already reserved in that window");
  }
  by_machine_[machine].push_back(Interval{start, end, session});
  return Status::Ok();
}

std::size_t ReservationBook::Cancel(const std::string& session) {
  std::size_t cancelled = 0;
  for (auto it = by_machine_.begin(); it != by_machine_.end();) {
    auto& intervals = it->second;
    const auto new_end = std::remove_if(
        intervals.begin(), intervals.end(),
        [&session](const Interval& i) { return i.session == session; });
    cancelled += static_cast<std::size_t>(intervals.end() - new_end);
    intervals.erase(new_end, intervals.end());
    it = intervals.empty() ? by_machine_.erase(it) : std::next(it);
  }
  return cancelled;
}

std::size_t ReservationBook::Prune(SimTime now) {
  std::size_t pruned = 0;
  for (auto it = by_machine_.begin(); it != by_machine_.end();) {
    auto& intervals = it->second;
    const auto new_end = std::remove_if(
        intervals.begin(), intervals.end(),
        [now](const Interval& i) { return i.end <= now; });
    pruned += static_cast<std::size_t>(intervals.end() - new_end);
    intervals.erase(new_end, intervals.end());
    it = intervals.empty() ? by_machine_.erase(it) : std::next(it);
  }
  return pruned;
}

std::size_t ReservationBook::CountFor(db::MachineId machine) const {
  auto it = by_machine_.find(machine);
  return it == by_machine_.end() ? 0 : it->second.size();
}

std::size_t ReservationBook::total() const {
  std::size_t n = 0;
  for (const auto& [machine, intervals] : by_machine_) n += intervals.size();
  return n;
}

std::vector<ReservationBook::Interval> ReservationBook::IntervalsFor(
    db::MachineId machine) const {
  auto it = by_machine_.find(machine);
  return it == by_machine_.end() ? std::vector<Interval>() : it->second;
}

}  // namespace actyp::pipeline
