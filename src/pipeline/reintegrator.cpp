#include "pipeline/reintegrator.hpp"

#include "common/logging.hpp"
#include "common/strings.hpp"

namespace actyp::pipeline {

Reintegrator::Reintegrator(ReintegratorConfig config)
    : config_(std::move(config)) {}

void Reintegrator::OnStart(net::NodeContext& ctx) {
  if (config_.sweep_period > 0) {
    ctx.ScheduleSelf(config_.sweep_period, net::Message{net::msg::kTick});
  }
}

void Reintegrator::OnMessage(const net::Envelope& envelope,
                             net::NodeContext& ctx) {
  const net::Message& message = envelope.message;
  if (message.type == net::msg::kAllocation ||
      message.type == net::msg::kFailure) {
    HandleResult(envelope, ctx);
    if (config_.profiler != nullptr) {
      config_.profiler->Record(profile::Stage::kReintegrate,
                               RequestIdOf(message), envelope.sent_at,
                               ctx.Now() + ctx.Consumed());
    }
    return;
  }
  if (message.type == net::msg::kTick) {
    const SimTime now = ctx.Now();
    for (auto it = requests_.begin(); it != requests_.end();) {
      PendingRequest& pending = it->second;
      if (now - pending.last_activity > config_.request_timeout) {
        if (!pending.answered) {
          ++stats_.timed_out;
          if (!pending.final_reply_to.empty()) {
            ctx.Send(pending.final_reply_to,
                     MakeFailureMessage(it->first,
                                        "reintegration timeout: " +
                                            std::to_string(pending.received) +
                                            "/" +
                                            std::to_string(pending.expected) +
                                            " fragments"));
          }
        }
        it = requests_.erase(it);
      } else {
        ++it;
      }
    }
    ctx.ScheduleSelf(config_.sweep_period, net::Message{net::msg::kTick});
    return;
  }
  ACTYP_DEBUG << "reintegrator '" << config_.name
              << "': ignoring message type '" << message.type << "'";
}

void Reintegrator::HandleResult(const net::Envelope& envelope,
                                net::NodeContext& ctx) {
  const net::Message& message = envelope.message;
  ++stats_.fragments;
  ctx.Consume(config_.costs.reintegrate_per_fragment);

  const std::uint64_t request_id = RequestIdOf(message);
  std::uint32_t frag_index = 0, frag_total = 1;
  ParseFragmentHeader(message, &frag_index, &frag_total);

  PendingRequest& pending = requests_[request_id];
  if (pending.received == 0 && !pending.answered) {
    pending.expected = frag_total;
    pending.first_match =
        message.Header(phdr::kQosFirstMatch) == "1" ||
        ToLower(message.Header(phdr::kQosFirstMatch)) == "true";
  }
  // Fragments agree on the total; keep the max defensively.
  pending.expected = std::max(pending.expected, frag_total);
  const std::string final_reply = message.Header(phdr::kFinalReplyTo);
  if (!final_reply.empty()) pending.final_reply_to = final_reply;
  ++pending.received;
  pending.last_activity = ctx.Now();

  if (message.type == net::msg::kAllocation) {
    auto allocation = ParseAllocationMessage(message);
    if (allocation.ok()) {
      if (pending.answered) {
        // A straggler after the request was answered: give it back.
        ReleaseAllocation(*allocation, ctx);
      } else if (pending.first_match) {
        pending.answered = true;
        ++stats_.completed;
        if (!pending.final_reply_to.empty()) {
          net::Message out = MakeAllocationMessage(*allocation);
          out.SetHeader(phdr::kFragment, "0/1");
          ctx.Send(pending.final_reply_to, std::move(out));
        }
      } else if (!pending.has_best) {
        pending.has_best = true;
        pending.best = std::move(allocation.value());
      } else if (allocation->machine_load < pending.best.machine_load) {
        ReleaseAllocation(pending.best, ctx);
        pending.best = std::move(allocation.value());
      } else {
        ReleaseAllocation(*allocation, ctx);
      }
    }
  }

  FinishIfComplete(request_id, pending, ctx);
}

void Reintegrator::FinishIfComplete(std::uint64_t request_id,
                                    PendingRequest& pending,
                                    net::NodeContext& ctx) {
  if (pending.received < pending.expected) return;
  if (!pending.answered) {
    if (pending.has_best) {
      ++stats_.completed;
      if (!pending.final_reply_to.empty()) {
        net::Message out = MakeAllocationMessage(pending.best);
        out.SetHeader(phdr::kFragment, "0/1");
        ctx.Send(pending.final_reply_to, std::move(out));
      }
    } else {
      ++stats_.failed;
      if (!pending.final_reply_to.empty()) {
        ctx.Send(pending.final_reply_to,
                 MakeFailureMessage(request_id,
                                    "all fragments failed to allocate"));
      }
    }
  }
  requests_.erase(request_id);
}

void Reintegrator::ReleaseAllocation(const Allocation& allocation,
                                     net::NodeContext& ctx) {
  ++stats_.released_duplicates;
  if (allocation.pool_address.empty()) return;
  ctx.Send(allocation.pool_address,
           MakeReleaseMessage(allocation.machine_id, allocation.session_key));
}

}  // namespace actyp::pipeline
