#include "pipeline/pool_manager.hpp"

#include <algorithm>
#include <optional>

#include "common/logging.hpp"
#include "common/strings.hpp"
#include "net/message.hpp"
#include "pipeline/protocol.hpp"
#include "query/parser.hpp"

namespace actyp::pipeline {

PoolManager::PoolManager(PoolManagerConfig config,
                         directory::DirectoryApi* directory)
    : config_(std::move(config)), directory_(directory) {}

void PoolManager::OnStart(net::NodeContext& ctx) {
  directory::PoolManagerEntry entry;
  entry.name = config_.name;
  entry.address = ctx.self();
  const Status status = directory_->RegisterPoolManager(entry);
  if (!status.ok()) {
    ACTYP_WARN << "pool manager '" << config_.name
               << "': registration failed: " << status.ToString();
  }
}

void PoolManager::OnMessage(const net::Envelope& envelope,
                            net::NodeContext& ctx) {
  if (envelope.message.type == net::msg::kQuery) {
    HandleQuery(envelope, ctx);
    if (config_.profiler != nullptr) {
      config_.profiler->Record(profile::Stage::kPmDelegate,
                               RequestIdOf(envelope.message),
                               envelope.sent_at, ctx.Now() + ctx.Consumed());
    }
  } else {
    ACTYP_DEBUG << "pool manager '" << config_.name
                << "': ignoring message type '" << envelope.message.type
                << "'";
  }
}

void PoolManager::HandleQuery(const net::Envelope& envelope,
                              net::NodeContext& ctx) {
  ++stats_.queries;
  const net::Message& message = envelope.message;
  ctx.Consume(config_.costs.pm_map);

  // The entry stage precomputes the pool name (sched hints, §6); the
  // common replicated-forward path then never re-parses the body. The
  // split and delegation paths parse on demand, and queries injected
  // mid-pipeline (no hint header) parse here as before.
  std::optional<query::Query> q;
  auto parse_query = [&]() {
    auto parsed = query::Parser::ParseBasic(message.body);
    if (!parsed.ok()) {
      Fail(envelope, ctx, parsed.status().ToString());
      return false;
    }
    q = std::move(parsed.value());
    return true;
  };
  std::string pool_name = message.Header(net::hdr::kPoolName);
  if (pool_name.empty()) {
    if (!parse_query()) return;
    pool_name = q->PoolName();
  }

  const auto instances = directory_->Lookup(pool_name);
  if (!instances.empty()) {
    const bool split = instances.front().segment;
    if (split && instances.size() > 1) {
      // Split pool: concurrent searches over every segment, aggregated
      // by the reintegrator (Fig. 7). Fragment coordinates ride on the
      // header; the body is forwarded verbatim (the old path parsed and
      // re-serialized it once per segment just to stamp actyp.meta.*).
      if (config_.reintegrator.empty()) {
        Fail(envelope, ctx, "split pool but no reintegrator configured");
        return;
      }
      ++stats_.fanouts;
      const auto total = static_cast<std::uint32_t>(instances.size());
      for (std::uint32_t i = 0; i < total; ++i) {
        net::Message out{net::msg::kQuery};
        out.headers = message.headers;
        out.SetHeader(net::hdr::kReplyTo, config_.reintegrator);
        out.SetHeader(phdr::kFragment,
                      std::to_string(i) + "/" + std::to_string(total));
        out.body = message.body;
        ctx.Send(instances[i].address, std::move(out));
      }
      return;
    }
    // Replicated (or single) pool: random instance selection.
    const auto& chosen =
        instances[ctx.rng().NextBounded(instances.size())];
    net::Message out{net::msg::kQuery};
    out.headers = message.headers;
    out.body = message.body;
    ctx.Send(chosen.address, std::move(out));
    ++stats_.forwarded;
    return;
  }

  // No instance exists: try to create one through a proxy server.
  if (config_.allow_create && !config_.proxies.empty()) {
    const net::Address& proxy =
        config_.proxies[next_proxy_++ % config_.proxies.size()];
    net::Message create{net::msg::kCreatePool};
    create.headers = message.headers;
    create.SetHeader(net::hdr::kPoolName, pool_name);
    create.body = message.body;
    ctx.Send(proxy, std::move(create));
    ++stats_.created;
    return;
  }

  // Cannot create: delegate to a peer pool manager, carrying the visited
  // list and TTL with the query (§5.2.2) — on headers, so each hop
  // forwards the body untouched.
  if (config_.allow_delegate) {
    Delegate(envelope, ctx, q.has_value() ? &*q : nullptr);
    return;
  }
  Fail(envelope, ctx, "no pool for '" + pool_name + "' and creation disabled");
}

void PoolManager::Delegate(const net::Envelope& envelope,
                           net::NodeContext& ctx,
                           const query::Query* parsed) {
  ctx.Consume(config_.costs.pm_delegate);
  const net::Message& message = envelope.message;

  // TTL and visited list ride on headers; a query injected with only
  // body meta (no entry stage) is lifted onto headers at its first hop,
  // so every later hop skips the parse.
  int ttl = query::kDefaultTtl;
  std::vector<std::string> visited;
  std::optional<query::Query> local;
  if (message.HasHeader(phdr::kTtl)) {
    if (const auto value = ParseInt(message.Header(phdr::kTtl))) {
      ttl = static_cast<int>(*value);
    }
    visited = SplitSkipEmpty(message.Header(phdr::kVisited), ',');
  } else {
    if (parsed == nullptr) {
      auto reparsed = query::Parser::ParseBasic(message.body);
      if (!reparsed.ok()) {
        Fail(envelope, ctx, reparsed.status().ToString());
        return;
      }
      local = std::move(reparsed.value());
      parsed = &*local;
    }
    ttl = parsed->ttl();
    visited = parsed->visited();
  }

  if (std::find(visited.begin(), visited.end(), config_.name) ==
      visited.end()) {
    visited.push_back(config_.name);
  }
  --ttl;
  if (ttl <= 0) {
    Fail(envelope, ctx, "query TTL expired at '" + config_.name + "'");
    return;
  }
  const auto peers = directory_->PoolManagersExcluding(visited);
  if (peers.empty()) {
    Fail(envelope, ctx,
         "no unvisited pool manager can satisfy the query (visited " +
             std::to_string(visited.size()) + ")");
    return;
  }
  const auto& peer = peers[ctx.rng().NextBounded(peers.size())];
  net::Message out{net::msg::kQuery};
  out.headers = message.headers;
  out.SetHeader(phdr::kTtl, std::to_string(ttl));
  out.SetHeader(phdr::kVisited, Join(visited, ","));
  out.body = message.body;
  ctx.Send(peer.address, std::move(out));
  ++stats_.delegated;
}

void PoolManager::Fail(const net::Envelope& envelope, net::NodeContext& ctx,
                       const std::string& reason) {
  ++stats_.failures;
  const net::Address reply_to = envelope.message.Header(net::hdr::kReplyTo);
  if (reply_to.empty()) return;
  const std::uint64_t request_id = RequestIdOf(envelope.message);
  std::uint32_t frag_index = 0, frag_total = 1;
  ParseFragmentHeader(envelope.message, &frag_index, &frag_total);
  net::Message failure =
      MakeFailureMessage(request_id, reason, frag_index, frag_total);
  for (const auto key : {phdr::kFinalReplyTo, phdr::kQosFirstMatch}) {
    if (envelope.message.HasHeader(key)) {
      failure.SetHeader(key, envelope.message.Header(key));
    }
  }
  ctx.Send(reply_to, std::move(failure));
}

}  // namespace actyp::pipeline
