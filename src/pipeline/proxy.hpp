// ProxyServer (§5.2.3): "If the resource pool is on a different machine,
// the pool manager starts it via a proxy server on the remote machine.
// (This server is a part of the ActYP service, and is assumed to be kept
// alive via a cron process.)"
//
// The proxy receives create-pool requests, instantiates a ResourcePool
// node on its own host (charging the white-pages walk to its own service
// time), and forwards the originating query to the new pool so the pool
// manager stays stateless.
#pragma once

#include <cstdint>
#include <string>

#include "db/database.hpp"
#include "db/policy.hpp"
#include "db/shadow.hpp"
#include "directory/directory.hpp"
#include "net/node.hpp"
#include "pipeline/cost_model.hpp"
#include "pipeline/resource_pool.hpp"

namespace actyp::pipeline {

struct ProxyConfig {
  std::string host = "localhost";  // pools are placed on this host
  // Defaults applied to pools this proxy creates.
  std::string pool_policy = "least-load";
  SimDuration pool_resort_period = Seconds(2.0);
  int pool_servers = 1;
  CostModel costs;
  // Handed to pools this proxy creates (not owned; null disables
  // profiling on them).
  profile::StageProfiler* profiler = nullptr;
  // Flight recorder handed to created pools (same ownership rules).
  obs::FlightRecorder* recorder = nullptr;
};

struct ProxyStats {
  std::uint64_t pools_created = 0;
  std::uint64_t create_failures = 0;
};

class ProxyServer final : public net::Node {
 public:
  ProxyServer(ProxyConfig config, net::Network* network,
              db::ResourceDatabase* database,
              directory::DirectoryApi* directory,
              db::ShadowAccountRegistry* shadows,
              db::PolicyRegistry* policies);

  void OnMessage(const net::Envelope& envelope, net::NodeContext& ctx) override;

  [[nodiscard]] const ProxyStats& stats() const { return stats_; }

 private:
  void HandleCreatePool(const net::Envelope& envelope, net::NodeContext& ctx);

  ProxyConfig config_;
  net::Network* network_;
  db::ResourceDatabase* database_;
  directory::DirectoryApi* directory_;
  db::ShadowAccountRegistry* shadows_;
  db::PolicyRegistry* policies_;
  ProxyStats stats_;
  std::uint32_t next_pool_ = 0;
};

}  // namespace actyp::pipeline
