#include "pipeline/query_manager.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/strings.hpp"
#include "pipeline/protocol.hpp"
#include "query/parser.hpp"

namespace actyp::pipeline {

QueryManager::QueryManager(QueryManagerConfig config)
    : config_(std::move(config)) {
  config_.qos_fanout = std::max<std::uint32_t>(1, config_.qos_fanout);
}

void QueryManager::RegisterTranslator(const std::string& language,
                                      Translator translator) {
  translators_[ToLower(language)] = std::move(translator);
}

void QueryManager::OnMessage(const net::Envelope& envelope,
                             net::NodeContext& ctx) {
  if (envelope.message.type == net::msg::kQuery) {
    HandleQuery(envelope, ctx);
    if (config_.profiler != nullptr) {
      // Span covers transport + queue wait (sent_at .. Now) plus the
      // service time this handler consumed.
      config_.profiler->Record(profile::Stage::kQmAdmit,
                               RequestIdOf(envelope.message),
                               envelope.sent_at, ctx.Now() + ctx.Consumed());
    }
  } else {
    ACTYP_DEBUG << "query manager '" << config_.name
                << "': ignoring message type '" << envelope.message.type
                << "'";
  }
}

void QueryManager::HandleQuery(const net::Envelope& envelope,
                               net::NodeContext& ctx) {
  ++stats_.queries;
  const net::Message& message = envelope.message;
  ctx.Consume(config_.costs.qm_translate);

  // 1. Translation into the native language (interoperability hook).
  std::string native = message.body;
  const std::string language = ToLower(message.Header("language"));
  if (!language.empty() && language != "native") {
    auto it = translators_.find(language);
    if (it == translators_.end()) {
      ++stats_.translation_failures;
      Fail(envelope, ctx, "no translator for language '" + language + "'");
      return;
    }
    auto translated = it->second(native);
    if (!translated.ok()) {
      ++stats_.translation_failures;
      Fail(envelope, ctx, translated.status().ToString());
      return;
    }
    native = std::move(translated.value());
  }

  // 2. Parse and decompose.
  auto composite = query::Parser::Parse(native);
  if (!composite.ok()) {
    ++stats_.parse_failures;
    Fail(envelope, ctx, composite.status().ToString());
    return;
  }

  const std::uint64_t request_id = RequestIdOf(message);
  const net::Address client = message.Header(net::hdr::kReplyTo);

  // Expand QoS duplicates: each basic alternative is sent to `fanout`
  // distinct pool managers; the reintegrator keeps the best answer.
  const auto& alternatives = composite->alternatives();
  const std::size_t fragment_count =
      alternatives.size() * config_.qos_fanout;
  ctx.Consume(config_.costs.qm_per_fragment *
              static_cast<SimDuration>(fragment_count));

  const bool aggregated = fragment_count > 1;
  if (aggregated && config_.reintegrator.empty()) {
    ++stats_.routing_failures;
    Fail(envelope, ctx,
         "composite/fan-out query but no reintegrator configured");
    return;
  }
  if (aggregated) ++stats_.composites;

  const auto total = static_cast<std::uint32_t>(fragment_count);
  std::vector<net::Address> used_pms;
  std::uint32_t index = 0;
  for (const query::Query& alternative : alternatives) {
    // Per-alternative state, computed once and shared by the QoS
    // duplicates. Fragment coordinates, TTL, and the sched hints all
    // ride on headers (§6 — the parsed state travels with the message),
    // so the body never needs the per-fragment actyp.meta.* rewrite the
    // old path paid: a basic query reuses the incoming text verbatim,
    // a composite serializes each alternative exactly once.
    const std::string body =
        composite->IsBasic() ? std::move(native) : alternative.ToText();
    const std::string pool_name = alternative.PoolName();
    const std::string access_group = alternative.GetUser("accessgroup");
    const std::string co_alloc = alternative.GetAppl("count");
    const std::string resv_start = alternative.GetAppl("starttime");
    const std::string resv_duration = alternative.GetAppl("duration");
    const std::string ttl = std::to_string(alternative.ttl());
    const auto base_candidates = CandidatePms(alternative);
    for (std::uint32_t dup = 0; dup < config_.qos_fanout; ++dup, ++index) {
      if (base_candidates.empty()) {
        ++stats_.routing_failures;
        const net::Address target =
            aggregated ? config_.reintegrator : client;
        if (!target.empty()) {
          net::Message failure = MakeFailureMessage(
              request_id, "no pool manager configured for this query",
              index, aggregated ? total : 1);
          if (aggregated) failure.SetHeader(phdr::kFinalReplyTo, client);
          ctx.Send(target, std::move(failure));
        }
        continue;
      }
      // Spread QoS duplicates over distinct pool managers when possible.
      auto candidates = base_candidates;
      if (config_.qos_fanout > 1 && candidates.size() > 1) {
        std::vector<net::Address> unused;
        for (const auto& c : candidates) {
          if (std::find(used_pms.begin(), used_pms.end(), c) ==
              used_pms.end()) {
            unused.push_back(c);
          }
        }
        if (!unused.empty()) candidates = std::move(unused);
      }
      const net::Address pm = PickPm(candidates, ctx);
      used_pms.push_back(pm);

      net::Message out{net::msg::kQuery};
      out.headers = message.headers;
      out.SetHeader(net::hdr::kReplyTo,
                    aggregated ? config_.reintegrator : client);
      out.SetHeader(phdr::kFinalReplyTo, client);
      if (aggregated) {
        out.SetHeader(phdr::kFragment,
                      std::to_string(index) + "/" + std::to_string(total));
      }
      out.SetHeader(net::hdr::kPoolName, pool_name);
      out.SetHeader(phdr::kSchedHints, "1");
      out.SetHeader(phdr::kTtl, ttl);
      if (!access_group.empty()) {
        out.SetHeader(phdr::kAccessGroup, access_group);
      }
      if (!co_alloc.empty()) out.SetHeader(phdr::kCoAlloc, co_alloc);
      if (!resv_start.empty()) {
        out.SetHeader(phdr::kResvStart, resv_start);
        if (!resv_duration.empty()) {
          out.SetHeader(phdr::kResvDuration, resv_duration);
        }
      }
      out.body = body;
      ctx.Send(pm, std::move(out));
      ++stats_.fragments;
    }
  }
}

std::vector<net::Address> QueryManager::CandidatePms(
    const query::Query& q) const {
  for (const auto& rule : config_.rules) {
    const auto cond = q.GetRsrc(rule.param);
    if (!cond) continue;
    if (GlobMatch(rule.value_glob, cond->value.text())) {
      return rule.pool_managers;
    }
  }
  return config_.default_pool_managers;
}

net::Address QueryManager::PickPm(const std::vector<net::Address>& candidates,
                                  net::NodeContext& ctx) {
  if (candidates.size() == 1) return candidates.front();
  if (config_.pick == PmPickMode::kRoundRobin) {
    return candidates[round_robin_++ % candidates.size()];
  }
  return candidates[ctx.rng().NextBounded(candidates.size())];
}

void QueryManager::Fail(const net::Envelope& envelope, net::NodeContext& ctx,
                        const std::string& reason) {
  const net::Address reply_to = envelope.message.Header(net::hdr::kReplyTo);
  if (reply_to.empty()) return;
  ctx.Send(reply_to,
           MakeFailureMessage(RequestIdOf(envelope.message), reason));
}

}  // namespace actyp::pipeline
