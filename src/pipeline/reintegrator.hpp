// Reintegrator: the query-manager stage at the end of the pipeline that
// reassembles composite-query fragments (§5.2.1's TCP/IP-fragmentation
// analogy), split-pool fan-outs (Fig. 7), and QoS duplicates (§6).
//
// Two aggregation modes, chosen per request via the qos-first-match
// header:
//   best-response (default): wait for every fragment, forward the
//     allocation with the lowest machine load, release the rest.
//   first-match: forward the first successful allocation immediately
//     (minimizing composite response time), release stragglers.
#pragma once

#include <cstdint>
#include <map>

#include "net/node.hpp"
#include "pipeline/cost_model.hpp"
#include "pipeline/protocol.hpp"
#include "profile/stage_profiler.hpp"

namespace actyp::pipeline {

struct ReintegratorConfig {
  std::string name;
  // Requests idle longer than this are failed and dropped (lost
  // fragments must not leak state).
  SimDuration request_timeout = Seconds(30.0);
  SimDuration sweep_period = Seconds(10.0);
  CostModel costs;
  // Stage-span sink (not owned; must outlive the node). Null disables
  // profiling.
  profile::StageProfiler* profiler = nullptr;
};

struct ReintegratorStats {
  std::uint64_t fragments = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t released_duplicates = 0;
};

class Reintegrator final : public net::Node {
 public:
  explicit Reintegrator(ReintegratorConfig config);

  void OnStart(net::NodeContext& ctx) override;
  void OnMessage(const net::Envelope& envelope, net::NodeContext& ctx) override;

  [[nodiscard]] const ReintegratorStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t open_requests() const { return requests_.size(); }

 private:
  struct PendingRequest {
    net::Address final_reply_to;
    std::uint32_t expected = 1;
    std::uint32_t received = 0;
    bool first_match = false;
    bool answered = false;
    bool has_best = false;
    Allocation best;
    SimTime last_activity = 0;
  };

  void HandleResult(const net::Envelope& envelope, net::NodeContext& ctx);
  void FinishIfComplete(std::uint64_t request_id, PendingRequest& pending,
                        net::NodeContext& ctx);
  void ReleaseAllocation(const Allocation& allocation, net::NodeContext& ctx);

  ReintegratorConfig config_;
  std::map<std::uint64_t, PendingRequest> requests_;
  ReintegratorStats stats_;
};

}  // namespace actyp::pipeline
