// Message conventions for the resource management pipeline: how queries,
// allocations, failures, and releases are encoded as net::Message.
//
// Header conventions (see net/message.hpp for the shared keys):
//   query:       reply-to        final destination for the result
//                final-reply-to  original client, preserved across stages
//                request-id      client-assigned id for correlation
//   allocation:  machine / machine-id / port / session-key / shadow-uid
//                pool-address    where to send the matching release
//                request-id, fragment (i/n), pool-name
//   failure:     error, request-id, fragment
//   release:     machine-id, session-key
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"
#include "net/message.hpp"
#include "net/node.hpp"
#include "query/query.hpp"

namespace actyp::pipeline {

// Additional header keys specific to the pipeline protocol.
namespace phdr {
inline constexpr std::string_view kFinalReplyTo = "final-reply-to";
inline constexpr std::string_view kFragment = "fragment";      // "i/n"
inline constexpr std::string_view kPoolAddress = "pool-address";
inline constexpr std::string_view kLoad = "machine-load";
inline constexpr std::string_view kQosFirstMatch = "qos-first-match";
// Scheduling hints the query manager extracts once at the pipeline
// entry so downstream stages (pool managers, pools) can route and
// select without re-parsing the query text. kSchedHints marks them
// authoritative: absent on queries injected mid-pipeline (tests,
// external frontends), and those fall back to parsing the body.
inline constexpr std::string_view kSchedHints = "sched-hints";
inline constexpr std::string_view kAccessGroup = "access-group";
inline constexpr std::string_view kCoAlloc = "co-alloc";       // count
inline constexpr std::string_view kResvStart = "resv-start";   // seconds
inline constexpr std::string_view kResvDuration = "resv-duration";
// Delegation state (§5.2.2), formerly re-serialized into the body as
// actyp.meta.* on every hop: the remaining TTL and the comma-joined
// visited pool-manager list now ride on headers, so the common
// forward/delegate paths never rewrite the query text. Queries injected
// mid-pipeline without these headers fall back to the body's
// actyp.meta.* terms.
inline constexpr std::string_view kTtl = "ttl";
inline constexpr std::string_view kVisited = "visited";
}  // namespace phdr

// Builds a query message. The query's own text body carries TTL/visited/
// fragment state (actyp.meta.* keys).
net::Message MakeQueryMessage(const query::Query& q,
                              const net::Address& reply_to,
                              const net::Address& final_reply_to,
                              std::uint64_t request_id);

// Result of a successful allocation at a resource pool.
struct Allocation {
  std::string machine_name;
  std::uint32_t machine_id = 0;
  std::uint16_t port = 0;
  std::string session_key;
  std::uint32_t shadow_uid = 0;
  std::string pool_name;
  net::Address pool_address;
  double machine_load = 0.0;
  std::uint64_t request_id = 0;
  std::uint32_t fragment_index = 0;
  std::uint32_t fragment_total = 1;
};

net::Message MakeAllocationMessage(const Allocation& allocation);
Result<Allocation> ParseAllocationMessage(const net::Message& message);

net::Message MakeFailureMessage(std::uint64_t request_id,
                                const std::string& error,
                                std::uint32_t fragment_index = 0,
                                std::uint32_t fragment_total = 1);

net::Message MakeReleaseMessage(std::uint32_t machine_id,
                                const std::string& session_key);

// Parses "i/n" fragment headers; defaults to 0/1.
void ParseFragmentHeader(const net::Message& message, std::uint32_t* index,
                         std::uint32_t* total);

// The request-id header as an integer; 0 when absent or malformed.
// Shared by every stage (and the profiler hooks) so correlation ids
// are parsed one way.
[[nodiscard]] std::uint64_t RequestIdOf(const net::Message& message);

}  // namespace actyp::pipeline
