#include "chaos/shrinker.hpp"

#include <algorithm>
#include <utility>

#include "common/sim_time.hpp"

namespace actyp::chaos {
namespace {

// Re-parse through the text format so every candidate the shrinker
// accepts is exactly what a repro bundle will replay.
ChaosTrial Normalize(const ChaosTrial& trial) {
  ChaosTrial out = trial;
  auto plan = fault::FaultPlan::Parse(trial.plan.Serialize());
  if (plan.ok()) out.plan = std::move(plan.value());
  return out;
}

// One magnitude-halving step; false when nothing is left to shrink.
bool HalveMagnitudes(fault::FaultEvent* event) {
  bool changed = false;
  if (event->probability > 0.02) {
    event->probability /= 2;
    changed = true;
  }
  if (event->count > 1) {
    event->count /= 2;
    changed = true;
  }
  if (event->rate_per_s > 0.2) {
    event->rate_per_s /= 2;
    changed = true;
  }
  if (event->extra_latency > Millis(2)) {
    event->extra_latency /= 2;
    changed = true;
  }
  if (event->end > event->start) {
    const SimDuration half = (event->end - event->start) / 2;
    if (half > Millis(10)) {
      event->end = event->start + half;  // narrow to the first half
      changed = true;
    }
  }
  return changed;
}

}  // namespace

Shrinker::Shrinker(RunFn run, std::size_t max_runs)
    : run_(std::move(run)), max_runs_(max_runs) {}

bool Shrinker::Fails(const ChaosTrial& trial, const std::string& invariant,
                     std::size_t* runs) const {
  ++*runs;
  for (const Violation& violation : run_(trial)) {
    if (violation.invariant == invariant) return true;
  }
  return false;
}

Shrinker::Result Shrinker::Shrink(const ChaosTrial& failing) const {
  Result result;
  result.trial = Normalize(failing);

  // Re-run the normalized original to pin the target invariant: the
  // shrunk plan must reproduce *this* violation, not just any.
  const std::vector<Violation> baseline = run_(result.trial);
  ++result.runs;
  if (baseline.empty()) return result;  // reproduced stays false
  result.invariant = baseline.front().invariant;
  result.reproduced = true;

  bool progress = true;
  while (progress && result.runs < max_runs_) {
    progress = false;
    // Pass 1: drop whole events.
    for (std::size_t i = 0;
         result.trial.plan.events.size() > 1 &&
         i < result.trial.plan.events.size() && result.runs < max_runs_;) {
      ChaosTrial candidate = result.trial;
      candidate.plan.events.erase(candidate.plan.events.begin() +
                                  static_cast<std::ptrdiff_t>(i));
      if (Fails(candidate, result.invariant, &result.runs)) {
        result.trial = std::move(candidate);
        progress = true;  // keep i: the next event shifted into place
      } else {
        ++i;
      }
    }
    // Pass 2: halve magnitudes / narrow windows, one event at a time.
    for (std::size_t i = 0;
         i < result.trial.plan.events.size() && result.runs < max_runs_;
         ++i) {
      ChaosTrial candidate = result.trial;
      if (!HalveMagnitudes(&candidate.plan.events[i])) continue;
      candidate = Normalize(candidate);
      if (candidate == result.trial) continue;  // quantized to a no-op
      if (Fails(candidate, result.invariant, &result.runs)) {
        result.trial = std::move(candidate);
        progress = true;
      }
    }
  }
  return result;
}

}  // namespace actyp::chaos
