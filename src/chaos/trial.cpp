#include "chaos/trial.hpp"

#include <algorithm>
#include <cstdio>

#include "actyp/scenario.hpp"
#include "common/config.hpp"
#include "obs/telemetry.hpp"

namespace actyp::chaos {
namespace {

std::string FormatDouble(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

}  // namespace

double ActiveWindowSeconds(const TrialParams& params) {
  return (params.warmup_s + params.quiesce_fraction * params.measure_s) *
         params.time_scale;
}

bool PlanCanLoseMessages(const fault::FaultPlan& plan) {
  for (const fault::FaultEvent& event : plan.events) {
    switch (event.kind) {
      case fault::FaultKind::kLoss:
      case fault::FaultKind::kPartition:
      case fault::FaultKind::kSiteCrash:
      case fault::FaultKind::kSiteRestore:
        return true;
      case fault::FaultKind::kCrash:
      case fault::FaultKind::kChurn:
        // A crashing service drops whatever was queued at it; pure
        // machine churn keeps every message deliverable.
        if (event.target != "machines") return true;
        break;
      case fault::FaultKind::kLatency:
        break;  // delays, never drops
    }
  }
  return false;
}

double DrainSeconds(const ChaosTrial& trial, const TrialParams& params) {
  const WorkloadRegime& regime = trial.regime;
  // Worst-case interaction tail: every retry burns a full give-up timer
  // plus a jittered exponential backoff (<= 2 x base x 2^attempt).
  double backoff = 0.0;
  double base = std::max(regime.retry_backoff_s, 0.001);
  for (std::size_t attempt = 0; attempt < regime.retry_max; ++attempt) {
    backoff += 2.0 * base;
    base *= 2.0;
  }
  double drain =
      static_cast<double>(regime.retry_max + 1) * regime.request_timeout_s +
      backoff + regime.think_time_s + 1.0;
  if (regime.directory_replicas > 1) {
    drain = std::max(drain, params.invariants.convergence_k *
                                    regime.sync_period_s +
                                1.0);
  }
  return std::max(drain * params.time_scale,
                  params.quiesce_floor_s * params.time_scale);
}

TrialOutcome RunTrial(const ChaosTrial& trial, const TrialParams& params,
                      TrialCapture* capture) {
  // Build the scenario config directly (not through bench::ApplyFaults,
  // whose lossy-run timeout defaulting would mask the hostile
  // zero-timeout regimes the generator emits on purpose).
  ScenarioConfig config;
  trial.regime.ApplyTo(&config, params.time_scale);
  config.seed = trial.seed;
  config.fault_plan = trial.plan;
  config.profile = false;  // trials are about invariants, not spans
  // A post-mortem capture arms the flight recorder; it never touches
  // the seeded RNG streams, so the trial outcome stays byte-identical.
  // The window is widened well past the driver default so the fault
  // strikes survive to the end of the drain even on busy trials.
  config.flight_recorder = capture != nullptr;
  if (capture != nullptr) config.flight_capacity = 65536;
  const SimDuration warmup = Seconds(params.warmup_s * params.time_scale);
  const SimDuration measure = Seconds(params.measure_s * params.time_scale);
  config.client_horizon = warmup + measure;

  SimScenario scenario(std::move(config));

  TrialOutcome outcome;
  if (!scenario.fault_status().ok()) {
    // An unarmable plan is itself a finding (unknown site, missing
    // hook): surface it instead of reporting a silently fault-free run.
    outcome.violations.push_back(
        {"fault-plan-arm", scenario.fault_status().ToString()});
    return outcome;
  }

  InvariantChecker::Options invariants = params.invariants;
  if (PlanCanLoseMessages(trial.plan) ||
      scenario.config().message_loss_probability > 0) {
    invariants.check_sessions = false;  // lost releases leak by design
  }
  if (scenario.config().directory_replicas > 1 ||
      !scenario.config().precreate_pools) {
    // Stale replica lookups can defer the last-instance claim release,
    // and on-demand pools live outside the scenario's pool registry.
    invariants.check_claims = false;
  }

  InvariantChecker checker;
  const SimDuration quiet = Seconds(params.quiesce_fraction *
                                    params.measure_s * params.time_scale);
  if (capture == nullptr) {
    scenario.Measure(warmup, quiet);
    checker.BeginQuiesce(scenario);  // generated faults all recovered here
    scenario.RunUntil(warmup + measure);
    scenario.RunUntil(warmup + measure +
                      Seconds(DrainSeconds(trial, params)));
  } else {
    // Drive the same timeline by hand: warmup, the Measure-equivalent
    // reset (keeping the flight ring — generated faults often strike
    // during warmup and the post-mortem needs those events), then
    // gauge samples every ~1/50 of the measure window through the end
    // of the drain. Chunked advancement never reorders events.
    const auto interval = std::max<SimDuration>(
        Seconds(params.measure_s * params.time_scale / 50.0), 1);
    const auto sample = [&](SimTime t) {
      capture->telemetry.push_back(obs::TelemetrySample(scenario, t));
    };
    scenario.RunUntil(warmup);
    scenario.ResetMeasurement();
    sample(warmup);
    const SimTime quiet_end = warmup + quiet;
    for (SimTime next = warmup; next < quiet_end;) {
      next = std::min<SimTime>(quiet_end, next + interval);
      scenario.RunUntil(next);
      sample(next);
    }
    checker.BeginQuiesce(scenario);  // generated faults all recovered here
    const SimTime drain_end =
        warmup + measure + Seconds(DrainSeconds(trial, params));
    for (SimTime next = quiet_end; next < drain_end;) {
      next = std::min<SimTime>(drain_end, next + interval);
      scenario.RunUntil(next);
      sample(next);
    }
    capture->flight = scenario.FlightSnapshot();
  }
  outcome.violations = checker.Check(scenario, invariants);

  outcome.mean_s = scenario.collector().response_stats().mean();
  outcome.p50_s = scenario.collector().QuantileSeconds(0.50);
  outcome.p95_s = scenario.collector().QuantileSeconds(0.95);
  outcome.completed = scenario.collector().completed();
  outcome.failures = scenario.collector().failures();
  const std::uint64_t attempts = outcome.completed + outcome.failures;
  outcome.success_rate = attempts == 0
                             ? 0.0
                             : static_cast<double>(outcome.completed) /
                                   static_cast<double>(attempts);
  outcome.lost = scenario.network().lost_messages() +
                 scenario.network().partition_dropped();
  outcome.retries = scenario.total_client_retries();
  outcome.machines_crashed = scenario.fault_stats().machines_crashed;
  outcome.services_crashed = scenario.fault_stats().services_crashed +
                             scenario.fault_stats().pools_killed;
  return outcome;
}

std::string ReproBundleText(const ChaosTrial& trial,
                            const TrialParams& params) {
  Config config = trial.plan.ToConfig();
  config.Set("scenario", "chaos_cell");
  config.Set("seed", std::to_string(trial.seed));
  config.Set("time-scale", FormatDouble(params.time_scale));
  config.Set("quiesce", FormatDouble(params.quiesce_floor_s));
  config.Set("regime", trial.regime.Serialize());
  config.Set("stable", "true");
  config.Set("json", "true");
  return config.Serialize();
}

}  // namespace actyp::chaos
