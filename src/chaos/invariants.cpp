#include "chaos/invariants.hpp"

#include <cstdio>
#include <set>

#include "actyp/scenario.hpp"

namespace actyp::chaos {
namespace {

std::string FormatRate(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return buf;
}

}  // namespace

std::string FormatViolations(const std::vector<Violation>& violations) {
  std::string out;
  for (const Violation& violation : violations) {
    if (!out.empty()) out += "; ";
    out += violation.invariant + ": " + violation.detail;
  }
  return out;
}

void InvariantChecker::BeginQuiesce(SimScenario& scenario) {
  quiesce_marked_ = true;
  quiesce_completed_ = scenario.collector().completed();
  quiesce_failures_ = scenario.collector().failures();
}

std::vector<Violation> InvariantChecker::Check(
    SimScenario& scenario, const Options& options) const {
  std::vector<Violation> violations;

  // Request conservation: a drained closed loop has no in-flight
  // request, no held allocation, and per-client bookkeeping that adds
  // up — every sent interaction became an allocation or a failure.
  for (const auto& client : scenario.clients()) {
    const auto& stats = client->stats();
    const std::string who = "client " + std::to_string(client->client_id());
    if (client->inflight_request() != 0) {
      violations.push_back(
          {"request-conservation",
           who + ": request " + std::to_string(client->inflight_request()) +
               " never reached a terminal state"});
    } else if (stats.sent != stats.allocations + stats.failures) {
      violations.push_back(
          {"request-conservation",
           who + ": sent=" + std::to_string(stats.sent) +
               " != allocations=" + std::to_string(stats.allocations) +
               " + failures=" + std::to_string(stats.failures)});
    }
    if (client->held_count() != 0) {
      violations.push_back(
          {"request-conservation",
           who + " still holds " + std::to_string(client->held_count()) +
               " allocation(s) after drain"});
    }
  }

  const auto live_pools = scenario.LivePools();

  if (options.check_claims) {
    // Every taken_by in the white pages must belong to a live pool
    // instance (segments claim under "<pool>#<segment>", replicas share
    // the pool name).
    std::set<std::string> valid;
    for (const auto& [address, pool] : live_pools) {
      const auto& config = pool->config();
      valid.insert(config.claim_name.empty() ? config.pool_name
                                             : config.claim_name);
    }
    std::size_t leaked = 0;
    std::string first;
    scenario.database().ForEach([&](const db::MachineRecord& record) {
      if (record.taken_by.empty() || valid.count(record.taken_by) != 0) {
        return;
      }
      ++leaked;
      if (first.empty()) {
        first = "machine " + std::to_string(record.id) + " taken by '" +
                record.taken_by + "'";
      }
    });
    if (leaked > 0) {
      violations.push_back(
          {"leaked-claim",
           std::to_string(leaked) +
               " machine(s) claimed by no live pool instance (first: " +
               first + ")"});
    }
  }

  if (options.check_sessions) {
    for (const auto& [address, pool] : live_pools) {
      if (pool->active_sessions() != 0) {
        violations.push_back(
            {"leaked-session",
             "pool " + address + " holds " +
                 std::to_string(pool->active_sessions()) +
                 " open session(s) after drain"});
      }
    }
  }

  if (auto* group = scenario.replica_group();
      group != nullptr && !group->Converged()) {
    const auto stats = scenario.replica_stats();
    violations.push_back(
        {"replica-convergence",
         "replica group still diverged after drain (max_staleness_s=" +
             FormatRate(stats.max_staleness_s) + ")"});
  }

  if (quiesce_marked_) {
    const std::uint64_t completed =
        scenario.collector().completed() - quiesce_completed_;
    const std::uint64_t failures =
        scenario.collector().failures() - quiesce_failures_;
    if (auto violation =
            CheckSuccessFloor(completed, failures, options.success_floor)) {
      violations.push_back(std::move(*violation));
    }
  }

  if (!scenario.lp_mode()) {
    auto& kernel = scenario.kernel();
    if (auto violation =
            CheckTimerAccounting(kernel.scheduled(), kernel.executed(),
                                 kernel.cancelled(), kernel.pending())) {
      violations.push_back(std::move(*violation));
    }
  }
  return violations;
}

std::optional<Violation> InvariantChecker::CheckTimerAccounting(
    std::uint64_t scheduled, std::uint64_t executed, std::uint64_t cancelled,
    std::uint64_t pending) {
  if (executed + cancelled + pending == scheduled) return std::nullopt;
  return Violation{
      "timer-conservation",
      "kernel accounting leak: scheduled=" + std::to_string(scheduled) +
          " != executed=" + std::to_string(executed) +
          " + cancelled=" + std::to_string(cancelled) +
          " + pending=" + std::to_string(pending)};
}

std::optional<Violation> InvariantChecker::CheckSuccessFloor(
    std::uint64_t completed, std::uint64_t failures, double floor) {
  const std::uint64_t attempts = completed + failures;
  if (floor <= 0 || attempts == 0) return std::nullopt;
  const double rate =
      static_cast<double>(completed) / static_cast<double>(attempts);
  if (rate >= floor) return std::nullopt;
  return Violation{"success-floor",
                   "post-quiesce success rate " + FormatRate(rate) +
                       " < floor " + FormatRate(floor) + " (" +
                       std::to_string(completed) + "/" +
                       std::to_string(attempts) + ")"};
}

}  // namespace actyp::chaos
