// InvariantChecker: machine-checked end-of-run properties of a chaos
// trial, judged after the faults have quiesced and the drain window
// emptied the closed loop. The catalogue (see README for details):
//
//   request-conservation  every issued request reached exactly one
//                         terminal state (reply, failure, or give-up);
//                         no in-flight requests or held allocations
//                         survive the drain
//   leaked-claim          every machine claim in the white pages belongs
//                         to a live pool instance (single-directory
//                         deployments; stale replica lookups can defer
//                         the last-instance release, so the trial
//                         runner gates this off under replication)
//   leaked-session        no pool instance holds an open session after
//                         the drain (only sound when no message can be
//                         lost — a lost release leaks by design)
//   replica-convergence   the replica group converged within the drain
//                         window (sized at k x sync_period)
//   success-floor         post-quiesce success rate above a floor: the
//                         system recovered, not merely survived
//   timer-conservation    kernel accounting: scheduled == executed +
//                         cancelled + pending at teardown
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace actyp {
class SimScenario;
}

namespace actyp::chaos {

struct Violation {
  std::string invariant;  // catalogue name, e.g. "request-conservation"
  std::string detail;     // offending request / machine / pool ids

  friend bool operator==(const Violation&, const Violation&) = default;
};

// "inv: detail; inv: detail" — deterministic digest for notes and logs.
std::string FormatViolations(const std::vector<Violation>& violations);

class InvariantChecker {
 public:
  struct Options {
    // Post-quiesce completed/(completed+failures) floor; <= 0 disables.
    double success_floor = 0.5;
    // Convergence budget in sync periods; the trial runner sizes the
    // drain window from this.
    double convergence_k = 4.0;
    bool check_sessions = true;
    bool check_claims = true;
  };

  // Snapshot the collector at the fault-quiesce boundary; the
  // success-floor invariant judges only what happened after this.
  void BeginQuiesce(SimScenario& scenario);

  [[nodiscard]] std::vector<Violation> Check(SimScenario& scenario,
                                             const Options& options) const;

  // Pure helpers, unit-testable with hand-fed violating numbers.
  static std::optional<Violation> CheckTimerAccounting(
      std::uint64_t scheduled, std::uint64_t executed,
      std::uint64_t cancelled, std::uint64_t pending);
  static std::optional<Violation> CheckSuccessFloor(std::uint64_t completed,
                                                    std::uint64_t failures,
                                                    double floor);

 private:
  bool quiesce_marked_ = false;
  std::uint64_t quiesce_completed_ = 0;
  std::uint64_t quiesce_failures_ = 0;
};

}  // namespace actyp::chaos
