#include "chaos/workload_regime.hpp"

#include <cstdio>

#include "actyp/scenario.hpp"
#include "common/strings.hpp"

namespace actyp::chaos {
namespace {

std::string FormatDouble(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

}  // namespace

std::string WorkloadRegime::Serialize() const {
  std::string out;
  out += "machines=" + std::to_string(machines);
  out += " clusters=" + std::to_string(clusters);
  out += " clients=" + std::to_string(clients);
  out += " query_managers=" + std::to_string(query_managers);
  out += " pool_managers=" + std::to_string(pool_managers);
  out += " pool_replicas=" + std::to_string(pool_replicas);
  out += " directory_replicas=" + std::to_string(directory_replicas);
  out += " sync_period=" + FormatDouble(sync_period_s);
  out += " retry_max=" + std::to_string(retry_max);
  out += " retry_backoff=" + FormatDouble(retry_backoff_s);
  out += " think_time=" + FormatDouble(think_time_s);
  out += " request_timeout=" + FormatDouble(request_timeout_s);
  out += " hot_fraction=" + FormatDouble(hot_fraction);
  out += " wan=" + std::to_string(wan ? 1 : 0);
  return out;
}

Result<WorkloadRegime> WorkloadRegime::Parse(std::string_view text) {
  WorkloadRegime regime;
  for (const std::string& token : SplitSkipEmpty(text, ' ')) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      return InvalidArgument("workload regime: token '" + token +
                             "' is not key=value");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    const auto as_count = [&]() -> Result<std::size_t> {
      const auto n = ParseInt(value);
      if (!n || *n < 0) {
        return InvalidArgument("workload regime: bad count for '" + key +
                               "': " + value);
      }
      return static_cast<std::size_t>(*n);
    };
    const auto as_seconds = [&]() -> Result<double> {
      const auto d = ParseDouble(value);
      if (!d || *d < 0) {
        return InvalidArgument("workload regime: bad duration for '" + key +
                               "': " + value);
      }
      return *d;
    };
    if (key == "machines") {
      auto n = as_count();
      if (!n.ok()) return n.status();
      regime.machines = n.value();
    } else if (key == "clusters") {
      auto n = as_count();
      if (!n.ok()) return n.status();
      regime.clusters = n.value();
    } else if (key == "clients") {
      auto n = as_count();
      if (!n.ok()) return n.status();
      regime.clients = n.value();
    } else if (key == "query_managers") {
      auto n = as_count();
      if (!n.ok()) return n.status();
      regime.query_managers = n.value();
    } else if (key == "pool_managers") {
      auto n = as_count();
      if (!n.ok()) return n.status();
      regime.pool_managers = n.value();
    } else if (key == "pool_replicas") {
      auto n = as_count();
      if (!n.ok()) return n.status();
      regime.pool_replicas = static_cast<std::uint32_t>(n.value());
    } else if (key == "directory_replicas") {
      auto n = as_count();
      if (!n.ok()) return n.status();
      regime.directory_replicas = static_cast<std::uint32_t>(n.value());
    } else if (key == "sync_period") {
      auto d = as_seconds();
      if (!d.ok()) return d.status();
      regime.sync_period_s = d.value();
    } else if (key == "retry_max") {
      auto n = as_count();
      if (!n.ok()) return n.status();
      regime.retry_max = n.value();
    } else if (key == "retry_backoff") {
      auto d = as_seconds();
      if (!d.ok()) return d.status();
      regime.retry_backoff_s = d.value();
    } else if (key == "think_time") {
      auto d = as_seconds();
      if (!d.ok()) return d.status();
      regime.think_time_s = d.value();
    } else if (key == "request_timeout") {
      auto d = as_seconds();
      if (!d.ok()) return d.status();
      regime.request_timeout_s = d.value();
    } else if (key == "hot_fraction") {
      auto d = as_seconds();
      if (!d.ok() || d.value() > 1.0) {
        return InvalidArgument("workload regime: hot_fraction must be in "
                               "[0, 1]: " +
                               value);
      }
      regime.hot_fraction = d.value();
    } else if (key == "wan") {
      regime.wan = value == "1" || value == "true";
    } else {
      return InvalidArgument("workload regime: unknown key '" + key + "'");
    }
  }
  if (regime.machines == 0 || regime.clusters == 0 || regime.clients == 0 ||
      regime.query_managers == 0 || regime.pool_managers == 0 ||
      regime.pool_replicas == 0 || regime.directory_replicas == 0 ||
      regime.sync_period_s <= 0) {
    return InvalidArgument(
        "workload regime: counts and sync_period must be positive");
  }
  return regime;
}

void WorkloadRegime::ApplyTo(ScenarioConfig* config,
                             double time_scale) const {
  config->machines = machines;
  config->clusters = clusters;
  config->clients = clients;
  config->query_managers = query_managers;
  config->pool_managers = pool_managers;
  config->pool_replicas = pool_replicas;
  config->directory_replicas = directory_replicas;
  config->directory_sync_period = Seconds(sync_period_s * time_scale);
  config->retry_max = retry_max;
  config->retry_backoff = Seconds(retry_backoff_s * time_scale);
  config->think_time = Seconds(think_time_s * time_scale);
  config->client_request_timeout = Seconds(request_timeout_s * time_scale);
  config->hot_fraction = hot_fraction;
  config->wan = wan;
}

}  // namespace actyp::chaos
