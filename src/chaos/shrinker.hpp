// Shrinker: delta-debugs a failing chaos trial's fault plan down to a
// locally-minimal plan that still reproduces the *same* invariant
// violation, re-running the trial deterministically for each candidate.
// Two passes to a fixpoint (bounded by a run budget): drop whole
// events, then halve magnitudes / narrow windows per event. Every
// candidate is normalized through the fault-plan text format first, so
// the accepted (and final) plan is serialization-stable by construction
// — the dumped repro bundle replays byte-for-byte what the shrinker
// verified.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "chaos/chaos_plan.hpp"
#include "chaos/invariants.hpp"

namespace actyp::chaos {

class Shrinker {
 public:
  // Runs one trial to completion and returns its violations (typically
  // RunTrial with fixed params; injected for testability).
  using RunFn = std::function<std::vector<Violation>(const ChaosTrial&)>;

  struct Result {
    ChaosTrial trial;        // minimal still-failing trial (normalized)
    std::string invariant;   // the violation it reproduces
    std::size_t runs = 0;    // deterministic re-executions spent
    bool reproduced = false; // original violation replayed at all
  };

  explicit Shrinker(RunFn run, std::size_t max_runs = 64);

  [[nodiscard]] Result Shrink(const ChaosTrial& failing) const;

 private:
  [[nodiscard]] bool Fails(const ChaosTrial& trial,
                           const std::string& invariant,
                           std::size_t* runs) const;

  RunFn run_;
  std::size_t max_runs_;
};

}  // namespace actyp::chaos
