#include "chaos/chaos_plan.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"

namespace actyp::chaos {
namespace {

// Quantize to milliseconds (times) / 3 decimals (rates, probabilities)
// so every drawn magnitude survives the %g text round-trip bit-exactly.
double Q3(double value) { return std::round(value * 1000.0) / 1000.0; }

}  // namespace

ChaosPlanGenerator::ChaosPlanGenerator(ChaosRanges ranges,
                                       double active_window_s)
    : ranges_(ranges), window_s_(active_window_s) {}

ChaosTrial ChaosPlanGenerator::Generate(std::uint64_t seed) const {
  ChaosTrial trial;
  trial.seed = seed;
  Rng rng(seed ^ 0xc4a05c4a05ULL);

  // --- workload regime (fixed draw order: determinism is the API) ---
  WorkloadRegime& regime = trial.regime;
  const std::size_t cluster_choices[] = {1, 2, 4};
  regime.clusters = cluster_choices[rng.NextBounded(3)];
  regime.machines = 100 * static_cast<std::size_t>(rng.NextInt(2, 8));
  regime.clients = static_cast<std::size_t>(rng.NextInt(4, 16));
  regime.query_managers = static_cast<std::size_t>(rng.NextInt(1, 2));
  regime.pool_managers = static_cast<std::size_t>(rng.NextInt(1, 2));
  regime.pool_replicas = rng.Bernoulli(0.25) ? 2 : 1;
  regime.wan = rng.Bernoulli(0.35);
  regime.directory_replicas = regime.wan && rng.Bernoulli(0.5) ? 2 : 1;
  regime.sync_period_s = Q3(rng.Uniform(0.4, 1.2));
  regime.retry_max = static_cast<std::size_t>(rng.NextInt(0, 3));
  regime.retry_backoff_s = Q3(rng.Uniform(0.05, 0.3));
  regime.think_time_s = rng.Bernoulli(0.3) ? Q3(rng.Uniform(0.01, 0.2)) : 0.0;
  regime.request_timeout_s = Q3(rng.Uniform(0.8, 2.0));
  regime.hot_fraction = rng.Bernoulli(0.25) ? Q3(rng.Uniform(0.1, 0.5)) : 0.0;
  if (ranges_.hostile && rng.Bernoulli(0.5)) {
    regime.request_timeout_s = 0.0;  // the wedge space: no give-up timer
  }

  // --- fault plan ---
  // Every event strikes in [0.10w, 0.55w] and has fully recovered by
  // 0.90w, so the last tenth of the active window is fault-free slack
  // before the quiesce boundary at w.
  const double w = window_s_;
  const double max_loss_p = ranges_.hostile ? 0.9 : ranges_.max_loss_p;
  enum Kind {
    kLoss,
    kCrashMachines,
    kChurnMachines,
    kChurnService,
    kLatency,
    kPartition,
    kSiteCrash,
  };
  std::vector<Kind> allowed = {kLoss, kCrashMachines, kChurnMachines,
                               kChurnService};
  if (regime.wan) {
    allowed.push_back(kLatency);
    allowed.push_back(kPartition);
    allowed.push_back(kSiteCrash);
  }
  const auto n_events = static_cast<std::size_t>(
      rng.NextInt(static_cast<std::int64_t>(ranges_.min_events),
                  static_cast<std::int64_t>(ranges_.max_events)));
  for (std::size_t i = 0; i < n_events; ++i) {
    const Kind kind = allowed[rng.NextBounded(allowed.size())];
    const double start = Q3(rng.Uniform(0.10 * w, 0.55 * w));
    const double duration = Q3(rng.Uniform(0.05 * w, 0.25 * w));
    const double end =
        Q3(std::max(start + 0.01, std::min(start + duration, 0.80 * w)));
    const double downtime = Q3(rng.Uniform(0.03 * w, 0.10 * w));
    fault::FaultEvent event;
    event.start = Seconds(start);
    switch (kind) {
      case kLoss:
        event.kind = fault::FaultKind::kLoss;
        event.end = Seconds(end);
        event.probability = Q3(rng.Uniform(ranges_.min_loss_p, max_loss_p));
        break;
      case kCrashMachines:
        event.kind = fault::FaultKind::kCrash;
        event.target = "machines";
        event.count = static_cast<std::size_t>(rng.NextInt(
            1, static_cast<std::int64_t>(ranges_.max_crash_count)));
        event.downtime = Seconds(downtime);
        break;
      case kChurnMachines:
        event.kind = fault::FaultKind::kChurn;
        event.target = "machines";
        event.end = Seconds(end);
        event.rate_per_s = Q3(
            rng.Uniform(ranges_.min_churn_rate, ranges_.max_churn_rate));
        event.downtime = Seconds(downtime);
        break;
      case kChurnService: {
        // Globs over the services every scenario registers: query
        // managers, pool managers, precreated pool instances.
        const char* targets[] = {"qm*", "pm*", "pool.*"};
        event.kind = fault::FaultKind::kChurn;
        event.target = targets[rng.NextBounded(3)];
        event.end = Seconds(end);
        event.rate_per_s = Q3(
            rng.Uniform(ranges_.min_churn_rate, ranges_.max_churn_rate));
        event.downtime = Seconds(downtime);
        break;
      }
      case kLatency:
        event.kind = fault::FaultKind::kLatency;
        event.end = Seconds(end);
        event.extra_latency =
            Millis(rng.NextInt(5, static_cast<std::int64_t>(
                                      std::max(6.0, ranges_.max_extra_ms))));
        event.site_a = "purdue";
        event.site_b = "upc";
        break;
      case kPartition:
        event.kind = fault::FaultKind::kPartition;
        event.end = Seconds(end);
        event.site_a = "purdue";
        event.site_b = "upc";
        break;
      case kSiteCrash:
        // Friendly plans blackout only the client site (the
        // wan_partition_heal precedent); hostile plans may take down
        // the server site instead, stranding every directory and pool
        // behind the WAN. The extra draw happens only on the hostile
        // path, so friendly plans are byte-identical to before.
        event.kind = fault::FaultKind::kSiteCrash;
        event.site = ranges_.hostile && rng.Bernoulli(0.5) ? "upc"
                                                           : "purdue";
        event.downtime = Seconds(downtime);
        break;
    }
    trial.plan.events.push_back(event);
  }

  if (ranges_.hostile && regime.request_timeout_s == 0.0) {
    // Guarantee the wedge actually triggers: a heavy loss window under a
    // zero give-up timer strands the closed loop deterministically.
    fault::FaultEvent wedge;
    wedge.kind = fault::FaultKind::kLoss;
    wedge.start = Seconds(Q3(0.20 * w));
    wedge.end = Seconds(Q3(0.60 * w));
    wedge.probability = Q3(rng.Uniform(0.4, 0.9));
    trial.plan.events.push_back(wedge);
  }
  return trial;
}

}  // namespace actyp::chaos
