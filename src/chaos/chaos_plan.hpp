// ChaosPlanGenerator: one seed -> one randomized fault plan crossed
// with one randomized workload regime. The generator is pure and
// deterministic (trial i of a sweep is Generate(base_seed + i)), so any
// finding is re-creatable from its seed alone, and every magnitude is
// quantized so plans survive the text round-trip bit-exactly — what the
// shrinker re-runs and the repro bundle replays is byte-for-byte the
// plan that failed.
#pragma once

#include <cstddef>
#include <cstdint>

#include "chaos/workload_regime.hpp"
#include "fault/fault_plan.hpp"

namespace actyp::chaos {

// One point in the fault x workload space.
struct ChaosTrial {
  std::uint64_t seed = 0;
  WorkloadRegime regime;
  fault::FaultPlan plan;

  friend bool operator==(const ChaosTrial&, const ChaosTrial&) = default;
};

// Magnitude/timing ranges the generator draws from. The defaults are
// "clean" by construction: every disruption both strikes and fully
// recovers inside the active window, victims always come back
// (downtime > 0), and clients always carry a give-up timer — so a
// healthy pipeline produces zero violations at any seed, and any
// violation is a real finding. `hostile` widens the space to regimes
// that are *expected* to wedge (zero request timeout under loss), the
// seeded known violation the shrinker regression uses.
struct ChaosRanges {
  std::size_t min_events = 1;
  std::size_t max_events = 4;
  double min_loss_p = 0.02;
  double max_loss_p = 0.35;
  double max_extra_ms = 80.0;
  std::size_t max_crash_count = 12;
  double min_churn_rate = 0.5;  // victim crashes per simulated second
  double max_churn_rate = 3.0;
  bool hostile = false;
};

class ChaosPlanGenerator {
 public:
  // `active_window_s` is the absolute sim time (already time-scaled) by
  // which every generated fault must have struck *and* recovered; the
  // trial runner places its quiesce boundary there.
  ChaosPlanGenerator(ChaosRanges ranges, double active_window_s);

  [[nodiscard]] ChaosTrial Generate(std::uint64_t seed) const;

 private:
  ChaosRanges ranges_;
  double window_s_;
};

}  // namespace actyp::chaos
