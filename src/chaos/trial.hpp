// chaos::RunTrial — deterministically execute one chaos trial (a
// WorkloadRegime crossed with a FaultPlan under one seed) and judge the
// invariant catalogue at drain time.
//
// Trial timeline (all simulated, scaled by `time_scale`):
//
//   0 ──warmup──┬──────measure──────────────┬───drain────┤ Check()
//               │          ▲ quiesce boundary            │
//               │  (warmup + quiesce_fraction x measure) │
//   faults may strike/recover up to the quiesce boundary;
//   clients stop issuing at the measure end (client_horizon);
//   the drain is sized so every in-flight interaction reaches a
//   terminal state and replicas converge before invariants are judged.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/chaos_plan.hpp"
#include "chaos/invariants.hpp"
#include "obs/flight_recorder.hpp"
#include "profile/metrics_exporter.hpp"

namespace actyp::chaos {

struct TrialParams {
  double time_scale = 1.0;
  double warmup_s = 2.0;  // unscaled, like the bench cells
  double measure_s = 10.0;
  // Fraction of the measure window by which the generator guarantees
  // every fault has struck and recovered; BeginQuiesce snapshots there.
  double quiesce_fraction = 0.6;
  // Extra drain floor (the --quiesce knob) on top of the computed one.
  double quiesce_floor_s = 0.0;
  InvariantChecker::Options invariants;
};

struct TrialOutcome {
  std::vector<Violation> violations;
  double mean_s = 0;
  double p50_s = 0;
  double p95_s = 0;
  std::uint64_t completed = 0;
  std::uint64_t failures = 0;
  double success_rate = 0;
  std::uint64_t lost = 0;
  std::uint64_t retries = 0;
  std::uint64_t machines_crashed = 0;
  std::uint64_t services_crashed = 0;
};

// Absolute sim seconds (scaled) by which generated faults must have
// fully recovered — the generator's active window.
[[nodiscard]] double ActiveWindowSeconds(const TrialParams& params);

// Seconds of post-measurement drain: long enough for every in-flight
// interaction to reach a terminal state (give-up timer plus worst-case
// retry backoffs) and for the replica group to converge (k sync
// periods), never below the configured floor.
[[nodiscard]] double DrainSeconds(const ChaosTrial& trial,
                                  const TrialParams& params);

// True when the plan can drop messages (loss windows, partitions, site
// crashes, service/pool crashes) — a lost release leaks its session by
// design, so RunTrial gates the session audit on this.
[[nodiscard]] bool PlanCanLoseMessages(const fault::FaultPlan& plan);

// Observability capture of one trial: the gauge samples taken across
// the whole timeline (warmup end through drain) and the flight-recorder
// window that survived to the end of the run. Filled only when a
// capture is passed to RunTrial; recording draws nothing from the
// seeded RNG streams, so the outcome is byte-identical either way.
struct TrialCapture {
  std::vector<profile::MetricCell> telemetry;
  std::vector<obs::FlightEvent> flight;
};

[[nodiscard]] TrialOutcome RunTrial(const ChaosTrial& trial,
                                    const TrialParams& params,
                                    TrialCapture* capture = nullptr);

// Serializes trial + params into an `actyp_sim --config` experiment
// file (scenario=chaos_cell) that replays the trial byte-identically.
[[nodiscard]] std::string ReproBundleText(const ChaosTrial& trial,
                                          const TrialParams& params);

}  // namespace actyp::chaos
