// WorkloadRegime: the workload half of a chaos trial — a compact,
// line-serializable description of the deployment shape and client
// behavior a FaultPlan is crossed with. One regime line plus one fault
// plan plus one seed fully determine a trial, which is what makes every
// chaos finding replayable via `actyp_sim --config`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.hpp"

namespace actyp {
struct ScenarioConfig;
}

namespace actyp::chaos {

struct WorkloadRegime {
  std::size_t machines = 400;
  std::size_t clusters = 2;
  std::size_t clients = 8;
  std::size_t query_managers = 2;
  std::size_t pool_managers = 1;
  std::uint32_t pool_replicas = 1;
  std::uint32_t directory_replicas = 1;
  // All durations are unscaled simulated seconds; ApplyTo multiplies
  // them by the trial's time scale like every other simulated knob.
  double sync_period_s = 1.0;  // directory anti-entropy pull period
  std::size_t retry_max = 1;
  double retry_backoff_s = 0.25;
  double think_time_s = 0.0;
  // Client give-up timer. 0 wedges the closed loop on the first lost
  // reply — only the hostile generator mode emits it (the seeded known
  // violation the shrinker regression reproduces).
  double request_timeout_s = 2.0;
  double hot_fraction = 0.0;
  bool wan = false;

  // One `key=value ...` line; Parse is the exact inverse.
  [[nodiscard]] std::string Serialize() const;
  static Result<WorkloadRegime> Parse(std::string_view text);

  void ApplyTo(ScenarioConfig* config, double time_scale) const;

  friend bool operator==(const WorkloadRegime&, const WorkloadRegime&) =
      default;
};

}  // namespace actyp::chaos
