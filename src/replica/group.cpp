#include "replica/group.hpp"

#include <algorithm>

#include "obs/flight_recorder.hpp"

namespace actyp::replica {

ReplicaGroup::ReplicaGroup(simnet::SimKernel* kernel,
                           ReplicaGroupConfig config)
    : kernel_(kernel), config_(config), rng_(config.seed) {}

DirectoryReplica* ReplicaGroup::AddReplica(const std::string& site) {
  ReplicaConfig rc;
  rc.id = static_cast<std::uint32_t>(replicas_.size());
  rc.site = site;
  rc.journal_capacity = config_.journal_capacity;
  replicas_.push_back(std::make_unique<DirectoryReplica>(rc));
  alive_.push_back(true);
  warming_.push_back(false);
  fresh_at_.push_back(0);
  return replicas_.back().get();
}

void ReplicaGroup::Start() {
  if (started_ || replicas_.size() < 2) return;
  started_ = true;
  // Phase-stagger the first ticks so replicas never sync in lock-step;
  // each tick re-arms itself, keeping the cadence exact.
  const auto n = static_cast<std::uint32_t>(replicas_.size());
  for (std::uint32_t id = 0; id < n; ++id) {
    const SimDuration phase =
        config_.sync_period * static_cast<SimDuration>(id + 1) /
        static_cast<SimDuration>(n);
    kernel_->Schedule(std::max<SimDuration>(phase, 1),
                      [this, id] { SyncTick(id); });
  }
}

bool ReplicaGroup::Reachable(const std::string& site_a,
                             const std::string& site_b) const {
  if (site_a == site_b) return true;
  return !reachable_ || reachable_(site_a, site_b);
}

DirectoryReplica* ReplicaGroup::Resolve(const std::string& from_site) const {
  const DirectoryReplica* preferred = nullptr;
  for (const auto& replica : replicas_) {
    if (replica->site() == from_site) {
      preferred = replica.get();
      break;
    }
  }
  // First pass skips warming replicas; the second accepts them, so a
  // group that is entirely cold still answers rather than failing.
  for (const bool allow_warming : {false, true}) {
    const auto eligible = [&](std::uint32_t id) {
      return alive_[id] && (allow_warming || !warming_[id]) &&
             Reachable(from_site, replicas_[id]->site());
    };
    if (preferred != nullptr && eligible(preferred->id())) {
      return replicas_[preferred->id()].get();
    }
    for (const auto& replica : replicas_) {
      if (replica.get() == preferred || !eligible(replica->id())) continue;
      if (preferred != nullptr) ++stats_.failovers;
      return replica.get();
    }
  }
  ++stats_.unavailable;
  return nullptr;
}

void ReplicaGroup::Crash(std::uint32_t id) {
  if (!alive_[id]) return;
  alive_[id] = false;
  replicas_[id]->Reset();
  ++stats_.crashes;
}

void ReplicaGroup::Restore(std::uint32_t id) {
  if (alive_[id]) return;
  alive_[id] = true;
  warming_[id] = true;
  fresh_at_[id] = kernel_->Now();
  ++stats_.restores;
  // The restored replica is empty: the group is divergent until its next
  // pull refills it.
  NoteDisruption();
}

void ReplicaGroup::NoteDisruption() {
  disrupted_at_ = kernel_->Now();
  awaiting_convergence_ = true;
}

bool ReplicaGroup::Converged() const {
  const DirectoryReplica* reference = nullptr;
  std::string reference_digest;
  for (const auto& replica : replicas_) {
    if (!alive_[replica->id()]) continue;
    if (reference == nullptr) {
      reference = replica.get();
      reference_digest = reference->StateDigest();
      continue;
    }
    if (replica->StateDigest() != reference_digest) return false;
  }
  return true;
}

void ReplicaGroup::SyncTick(std::uint32_t id) {
  kernel_->Schedule(config_.sync_period, [this, id] { SyncTick(id); });
  if (!alive_[id]) return;
  ++stats_.sync_rounds;
  DirectoryReplica* me = replicas_[id].get();

  std::vector<DirectoryReplica*> peers;
  for (const auto& replica : replicas_) {
    if (replica->id() == id || !alive_[replica->id()]) continue;
    if (!Reachable(me->site(), replica->site())) continue;
    peers.push_back(replica.get());
  }
  if (peers.empty()) {
    ++stats_.sync_skipped;
    return;
  }
  DirectoryReplica* peer = peers[rng_.NextBounded(peers.size())];

  std::uint64_t pull_bytes = 0;
  std::vector<Op> ops;
  if (peer->DeltaSince(me->version_vector(), &ops)) {
    for (const Op& op : ops) pull_bytes += op.WireBytes();
    stats_.ops_pulled += ops.size();
    stats_.ops_applied += me->ApplyOps(ops);
  } else {
    const DirectoryReplica::StateSnapshot snapshot = peer->FullState();
    pull_bytes = snapshot.WireBytes();
    me->InstallFullState(snapshot);
    ++stats_.full_syncs;
  }
  stats_.sync_bytes += pull_bytes;
  if (config_.profiler != nullptr) {
    // One span per pull on the pulling replica's lane, with the modeled
    // transfer cost (see kSyncFixedCost) — never consumed as sim time.
    config_.profiler->Record(
        profile::Stage::kReplicaSync,
        profile::BackgroundId(profile::Stage::kReplicaSync, id),
        kernel_->Now(),
        kernel_->Now() + kSyncFixedCost +
            static_cast<SimDuration>(pull_bytes / kSyncBytesPerMicro));
  }
  if (config_.recorder != nullptr) {
    config_.recorder->Record(
        kernel_->Now(), obs::FlightKind::kReplicaSync,
        profile::BackgroundId(profile::Stage::kReplicaSync, id),
        "replica" + std::to_string(id),
        "pull from replica" + std::to_string(peer->id()) +
            " bytes=" + std::to_string(pull_bytes));
  }
  // A pull from a warmed peer ends our own warming; pulling from a peer
  // that is itself still cold proves nothing (two freshly-restored
  // replicas would bless each other's empty state).
  if (!warming_[peer->id()]) warming_[id] = false;

  // Staleness: how long this replica's vector has lagged the union of
  // what the alive group knows.
  VersionVector group_union;
  for (const auto& replica : replicas_) {
    if (!alive_[replica->id()]) continue;
    for (const auto& [origin, seq] : replica->version_vector()) {
      auto& have = group_union[origin];
      have = std::max(have, seq);
    }
  }
  const VersionVector mine = me->version_vector();
  bool covered = true;
  for (const auto& [origin, seq] : group_union) {
    const auto it = mine.find(origin);
    if (it == mine.end() || it->second < seq) {
      covered = false;
      break;
    }
  }
  const SimTime now = kernel_->Now();
  if (covered) {
    fresh_at_[id] = now;
  } else {
    stats_.max_staleness_s =
        std::max(stats_.max_staleness_s, ToSeconds(now - fresh_at_[id]));
  }

  if (awaiting_convergence_ && Converged()) {
    stats_.converge_time_s = ToSeconds(now - disrupted_at_);
    ++stats_.convergences;
    awaiting_convergence_ = false;
  }

  // Tombstone GC: the pointwise-min version vector over the alive
  // replicas is the set of ops everyone has applied; tombstones at or
  // below it can never be needed again (see PruneTombstones). A
  // warming replica blocks collection — its vector is empty until the
  // first successful pull, so the min would cover nothing anyway, and
  // skipping keeps the "everyone has applied it" reading honest. A
  // crashed replica is excluded: it restarts empty under a new
  // incarnation, so it never resurrects pruned history.
  VersionVector floor;
  bool gc_ok = false;
  for (const auto& replica : replicas_) {
    if (!alive_[replica->id()]) continue;
    if (warming_[replica->id()]) {
      gc_ok = false;
      break;
    }
    const VersionVector vv = replica->version_vector();
    if (!gc_ok) {
      floor = vv;
      gc_ok = true;
      continue;
    }
    for (auto it = floor.begin(); it != floor.end();) {
      const auto other = vv.find(it->first);
      if (other == vv.end()) {
        it = floor.erase(it);
      } else {
        it->second = std::min(it->second, other->second);
        ++it;
      }
    }
  }
  if (gc_ok && !floor.empty()) {
    for (const auto& replica : replicas_) {
      if (!alive_[replica->id()]) continue;
      stats_.tombstones_gc += replica->PruneTombstones(floor);
    }
  }
}

std::uint64_t ReplicaGroup::TotalJournalOps() const {
  std::uint64_t total = 0;
  for (const auto& replica : replicas_) total += replica->journal_size();
  return total;
}

// --- ReplicaHandle ---------------------------------------------------------

Status ReplicaHandle::RegisterPool(const directory::PoolInstance& instance) {
  DirectoryReplica* replica = group_->Resolve(site_);
  if (replica == nullptr) return Unavailable("no reachable directory replica");
  return replica->RegisterPool(instance);
}

Status ReplicaHandle::UnregisterPool(const std::string& pool_name,
                                     std::uint32_t instance) {
  DirectoryReplica* replica = group_->Resolve(site_);
  if (replica == nullptr) return Unavailable("no reachable directory replica");
  return replica->UnregisterPool(pool_name, instance);
}

std::vector<directory::PoolInstance> ReplicaHandle::Lookup(
    const std::string& pool_name) const {
  DirectoryReplica* replica = group_->Resolve(site_);
  return replica == nullptr ? std::vector<directory::PoolInstance>{}
                            : replica->Lookup(pool_name);
}

std::vector<std::string> ReplicaHandle::PoolNames() const {
  DirectoryReplica* replica = group_->Resolve(site_);
  return replica == nullptr ? std::vector<std::string>{}
                            : replica->PoolNames();
}

std::size_t ReplicaHandle::pool_count() const {
  DirectoryReplica* replica = group_->Resolve(site_);
  return replica == nullptr ? 0 : replica->pool_count();
}

Status ReplicaHandle::RegisterPoolManager(
    const directory::PoolManagerEntry& entry) {
  DirectoryReplica* replica = group_->Resolve(site_);
  if (replica == nullptr) return Unavailable("no reachable directory replica");
  return replica->RegisterPoolManager(entry);
}

Status ReplicaHandle::UnregisterPoolManager(const std::string& name) {
  DirectoryReplica* replica = group_->Resolve(site_);
  if (replica == nullptr) return Unavailable("no reachable directory replica");
  return replica->UnregisterPoolManager(name);
}

std::vector<directory::PoolManagerEntry> ReplicaHandle::PoolManagers() const {
  DirectoryReplica* replica = group_->Resolve(site_);
  return replica == nullptr ? std::vector<directory::PoolManagerEntry>{}
                            : replica->PoolManagers();
}

}  // namespace actyp::replica
