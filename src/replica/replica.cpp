#include "replica/replica.hpp"

#include <algorithm>

namespace actyp::replica {
namespace {

std::size_t PoolInstanceBytes(const directory::PoolInstance& instance) {
  // name + address strings, instance number, machine count, segment flag.
  return instance.pool_name.size() + instance.address.size() + 4 + 8 + 1;
}

std::size_t PmEntryBytes(const directory::PoolManagerEntry& entry) {
  return entry.name.size() + entry.address.size() + entry.domain.size();
}

}  // namespace

std::size_t Op::WireBytes() const {
  // kind + origin + seq + stamp header, then the payload.
  std::size_t bytes = 1 + 4 + 8 + 8;
  switch (kind) {
    case OpKind::kPutPool:
      bytes += PoolInstanceBytes(pool);
      break;
    case OpKind::kPutPm:
      bytes += PmEntryBytes(pm);
      break;
    case OpKind::kDelPool:
      bytes += key.size() + 4;
      break;
    case OpKind::kDelPm:
      bytes += key.size();
      break;
  }
  return bytes;
}

std::size_t DirectoryReplica::StateSnapshot::WireBytes() const {
  std::size_t bytes = 8 + vv.size() * 12;
  for (const Op& op : ops) bytes += op.WireBytes();
  return bytes;
}

DirectoryReplica::DirectoryReplica(ReplicaConfig config)
    : config_(std::move(config)) {}

// --- local mutations -------------------------------------------------------

Status DirectoryReplica::RegisterPool(
    const directory::PoolInstance& instance) {
  if (instance.pool_name.empty()) {
    return InvalidArgument("pool instance must carry a pool name");
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Unlike the authoritative DirectoryService, a put is an upsert: a
  // service restarted after its unregister op was lost with a crashed
  // replica must be able to refresh its entry instead of wedging.
  Op op;
  op.kind = OpKind::kPutPool;
  op.pool = instance;
  CommitLocalLocked(std::move(op));
  return Status::Ok();
}

Status DirectoryReplica::UnregisterPool(const std::string& pool_name,
                                        std::uint32_t instance) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto pool_it = pools_.find(pool_name);
  const bool live = pool_it != pools_.end() &&
                    pool_it->second.count(instance) > 0 &&
                    !pool_it->second.at(instance).tombstone;
  if (!live) {
    return NotFound("pool '" + pool_name + "' instance " +
                    std::to_string(instance));
  }
  Op op;
  op.kind = OpKind::kDelPool;
  op.key = pool_name;
  op.instance = instance;
  CommitLocalLocked(std::move(op));
  return Status::Ok();
}

Status DirectoryReplica::RegisterPoolManager(
    const directory::PoolManagerEntry& entry) {
  if (entry.name.empty()) {
    return InvalidArgument("pool manager must have a name");
  }
  std::lock_guard<std::mutex> lock(mu_);
  Op op;
  op.kind = OpKind::kPutPm;
  op.pm = entry;
  CommitLocalLocked(std::move(op));
  return Status::Ok();
}

Status DirectoryReplica::UnregisterPoolManager(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = pms_.find(name);
  if (it == pms_.end() || it->second.tombstone) {
    return NotFound("pool manager '" + name + "'");
  }
  Op op;
  op.kind = OpKind::kDelPm;
  op.key = name;
  CommitLocalLocked(std::move(op));
  return Status::Ok();
}

void DirectoryReplica::CommitLocalLocked(Op op) {
  op.origin = OriginLocked();
  op.seq = ++vv_[op.origin];
  op.stamp = ++lamport_;
  MergeLocked(op);
  JournalLocked(std::move(op));
}

// --- reads -----------------------------------------------------------------

std::vector<directory::PoolInstance> DirectoryReplica::Lookup(
    const std::string& pool_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<directory::PoolInstance> out;
  const auto it = pools_.find(pool_name);
  if (it == pools_.end()) return out;
  for (const auto& [num, slot] : it->second) {
    if (!slot.tombstone) out.push_back(slot.value);
  }
  return out;
}

std::vector<std::string> DirectoryReplica::PoolNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, instances] : pools_) {
    for (const auto& [num, slot] : instances) {
      if (!slot.tombstone) {
        names.push_back(name);
        break;
      }
    }
  }
  return names;
}

std::size_t DirectoryReplica::pool_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [name, instances] : pools_) {
    for (const auto& [num, slot] : instances) {
      if (!slot.tombstone) ++n;
    }
  }
  return n;
}

std::vector<directory::PoolManagerEntry> DirectoryReplica::PoolManagers()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<directory::PoolManagerEntry> out;
  for (const auto& [name, slot] : pms_) {
    if (!slot.tombstone) out.push_back(slot.value);
  }
  return out;
}

// --- anti-entropy ----------------------------------------------------------

VersionVector DirectoryReplica::version_vector() const {
  std::lock_guard<std::mutex> lock(mu_);
  return vv_;
}

bool DirectoryReplica::DeltaSince(const VersionVector& have,
                                  std::vector<Op>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  // The journal can serve the delta only if, for every origin the peer
  // is behind on, nothing in the missing window fell off the floor.
  for (const auto& [origin, my_seq] : vv_) {
    const auto it = have.find(origin);
    const std::uint64_t peer_seq = it == have.end() ? 0 : it->second;
    if (peer_seq >= my_seq) continue;
    const auto floor_it = journal_floor_.find(origin);
    if (floor_it != journal_floor_.end() && floor_it->second > peer_seq) {
      return false;
    }
  }
  for (const Op& op : journal_) {
    const auto it = have.find(op.origin);
    const std::uint64_t peer_seq = it == have.end() ? 0 : it->second;
    if (op.seq > peer_seq) out->push_back(op);
  }
  return true;
}

std::size_t DirectoryReplica::ApplyOps(const std::vector<Op>& ops) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t applied = 0;
  for (const Op& op : ops) {
    auto& seen = vv_[op.origin];
    if (op.seq <= seen) continue;  // duplicate delivery
    seen = op.seq;
    lamport_ = std::max(lamport_, op.stamp);
    MergeLocked(op);
    JournalLocked(op);
    ++applied;
  }
  return applied;
}

void DirectoryReplica::MergeLocked(const Op& op) {
  switch (op.kind) {
    case OpKind::kPutPool: {
      auto& slot = pools_[op.pool.pool_name][op.pool.instance];
      if (Supersedes(slot, op.stamp, op.origin)) {
        slot = {op.stamp, op.origin, op.seq, false, op.pool};
      }
      break;
    }
    case OpKind::kDelPool: {
      auto& slot = pools_[op.key][op.instance];
      if (Supersedes(slot, op.stamp, op.origin)) {
        slot.stamp = op.stamp;
        slot.origin = op.origin;
        slot.seq = op.seq;
        slot.tombstone = true;
      }
      break;
    }
    case OpKind::kPutPm: {
      auto& slot = pms_[op.pm.name];
      if (Supersedes(slot, op.stamp, op.origin)) {
        slot = {op.stamp, op.origin, op.seq, false, op.pm};
      }
      break;
    }
    case OpKind::kDelPm: {
      auto& slot = pms_[op.key];
      if (Supersedes(slot, op.stamp, op.origin)) {
        slot.stamp = op.stamp;
        slot.origin = op.origin;
        slot.seq = op.seq;
        slot.tombstone = true;
      }
      break;
    }
  }
}

void DirectoryReplica::JournalLocked(Op op) {
  journal_.push_back(std::move(op));
  while (journal_.size() > config_.journal_capacity) {
    const Op& oldest = journal_.front();
    auto& floor = journal_floor_[oldest.origin];
    floor = std::max(floor, oldest.seq);
    journal_.pop_front();
  }
}

DirectoryReplica::StateSnapshot DirectoryReplica::FullState() const {
  std::lock_guard<std::mutex> lock(mu_);
  StateSnapshot snapshot;
  snapshot.vv = vv_;
  snapshot.lamport = lamport_;
  for (const auto& [name, instances] : pools_) {
    for (const auto& [num, slot] : instances) {
      Op op;
      op.origin = slot.origin;
      op.seq = slot.seq;
      op.stamp = slot.stamp;
      if (slot.tombstone) {
        op.kind = OpKind::kDelPool;
        op.key = name;
        op.instance = num;
      } else {
        op.kind = OpKind::kPutPool;
        op.pool = slot.value;
      }
      snapshot.ops.push_back(std::move(op));
    }
  }
  for (const auto& [name, slot] : pms_) {
    Op op;
    op.origin = slot.origin;
    op.seq = slot.seq;
    op.stamp = slot.stamp;
    if (slot.tombstone) {
      op.kind = OpKind::kDelPm;
      op.key = name;
    } else {
      op.kind = OpKind::kPutPm;
      op.pm = slot.value;
    }
    snapshot.ops.push_back(std::move(op));
  }
  return snapshot;
}

void DirectoryReplica::InstallFullState(const StateSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  // MERGE, never replace: a restarted (empty) replica legitimately
  // claims sequence numbers whose ops died with it, which forces peers
  // that missed those final ops into this path — blindly installing the
  // empty snapshot would wipe the survivor. LWW-merging the snapshot is
  // convergent from either side and keeps everything only we know.
  for (const Op& op : snapshot.ops) MergeLocked(op);
  for (const auto& [origin, seq] : snapshot.vv) {
    auto& have = vv_[origin];
    have = std::max(have, seq);
  }
  lamport_ = std::max(lamport_, snapshot.lamport);
  // The journal no longer reflects everything folded into the state, so
  // it cannot serve coherent deltas: drop it and raise the floor to the
  // merged vector (peers behind it will merge our full state in turn —
  // the cascade settles once the vectors equalize).
  journal_.clear();
  journal_floor_ = vv_;
}

void DirectoryReplica::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  pools_.clear();
  pms_.clear();
  journal_.clear();
  journal_floor_.clear();
  vv_.clear();
  // New incarnation: the next local op opens a fresh origin, and the
  // empty vector makes peers replay everything — including this
  // replica's own surviving pre-crash ops under their old origin.
  ++incarnation_;
}

namespace {

bool CoveredBy(const VersionVector& floor, std::uint32_t origin,
               std::uint64_t seq) {
  const auto it = floor.find(origin);
  return it != floor.end() && it->second >= seq;
}

}  // namespace

std::size_t DirectoryReplica::PruneTombstones(const VersionVector& floor) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t pruned = 0;
  for (auto pool_it = pools_.begin(); pool_it != pools_.end();) {
    auto& instances = pool_it->second;
    for (auto it = instances.begin(); it != instances.end();) {
      if (it->second.tombstone &&
          CoveredBy(floor, it->second.origin, it->second.seq)) {
        it = instances.erase(it);
        ++pruned;
      } else {
        ++it;
      }
    }
    pool_it = instances.empty() ? pools_.erase(pool_it) : std::next(pool_it);
  }
  for (auto it = pms_.begin(); it != pms_.end();) {
    if (it->second.tombstone &&
        CoveredBy(floor, it->second.origin, it->second.seq)) {
      it = pms_.erase(it);
      ++pruned;
    } else {
      ++it;
    }
  }
  return pruned;
}

std::size_t DirectoryReplica::tombstone_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [name, instances] : pools_) {
    for (const auto& [num, slot] : instances) {
      if (slot.tombstone) ++n;
    }
  }
  for (const auto& [name, slot] : pms_) {
    if (slot.tombstone) ++n;
  }
  return n;
}

std::string DirectoryReplica::StateDigest() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, instances] : pools_) {
    for (const auto& [num, slot] : instances) {
      if (slot.tombstone) continue;
      out += "pool " + name + " #" + std::to_string(num) + " @" +
             slot.value.address + " m=" +
             std::to_string(slot.value.machine_count) +
             (slot.value.segment ? " seg" : "") + "\n";
    }
  }
  for (const auto& [name, slot] : pms_) {
    if (slot.tombstone) continue;
    out += "pm " + name + " @" + slot.value.address + "\n";
  }
  return out;
}

}  // namespace actyp::replica
