// DirectoryReplica: one replica of the active-yellow-pages directory
// (paper Fig. 8 studies replicating the service; the repo previously ran
// a single authoritative directory::DirectoryService).
//
// State model: a last-writer-wins map keyed by pool instance
// (pool_name + instance number) and pool-manager name. Every local
// mutation becomes an Op stamped with
//   - (origin, seq): the issuing replica and its per-origin sequence
//     number — the coordinates of the per-replica version vectors, and
//   - stamp: a Lamport stamp used as the LWW tiebreak (higher stamp
//     wins; equal stamps break by origin id), so replicas converge to
//     the same state whatever order anti-entropy delivers ops in.
//
// Ops are appended to a bounded journal. A peer pulls deltas with
// DeltaSince(its version vector); when the requested window has been
// dropped from the bounded journal, the pull falls back to a full-state
// transfer (FullState/InstallFullState). Remote ops are re-journaled,
// so gossip is transitive: a replica that only ever talks to one peer
// still learns ops originated anywhere in the group.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "directory/directory.hpp"

namespace actyp::replica {

enum class OpKind : std::uint8_t {
  kPutPool,   // register (or overwrite) a pool instance
  kDelPool,   // unregister a pool instance (tombstone)
  kPutPm,     // register a pool manager
  kDelPm,     // unregister a pool manager (tombstone)
};

// origin replica id -> highest per-origin sequence number applied.
using VersionVector = std::map<std::uint32_t, std::uint64_t>;

struct Op {
  OpKind kind = OpKind::kPutPool;
  std::uint32_t origin = 0;
  std::uint64_t seq = 0;
  std::uint64_t stamp = 0;
  directory::PoolInstance pool;      // kPutPool payload
  directory::PoolManagerEntry pm;    // kPutPm payload
  std::string key;                   // kDelPool/kDelPm: name being removed
  std::uint32_t instance = 0;        // kDelPool: instance number

  // Approximate wire size, charged to the group's sync_bytes metric.
  [[nodiscard]] std::size_t WireBytes() const;
};

struct ReplicaConfig {
  std::uint32_t id = 0;
  std::string site = "local";
  // Ops retained for delta sync; older windows force a full-state sync.
  std::size_t journal_capacity = 4096;
};

class DirectoryReplica final : public directory::DirectoryApi {
 public:
  explicit DirectoryReplica(ReplicaConfig config);

  [[nodiscard]] std::uint32_t id() const { return config_.id; }
  [[nodiscard]] const std::string& site() const { return config_.site; }

  // --- DirectoryApi: local mutations (journaled) and reads ---
  // Unregister semantics match DirectoryService (NotFound for unknown
  // entries); registration is an *upsert* — re-registering a live entry
  // refreshes it, because the matching unregister op may have died with
  // a crashed replica and a restarted service must not wedge on it.
  Status RegisterPool(const directory::PoolInstance& instance) override;
  Status UnregisterPool(const std::string& pool_name,
                        std::uint32_t instance) override;
  [[nodiscard]] std::vector<directory::PoolInstance> Lookup(
      const std::string& pool_name) const override;
  [[nodiscard]] std::vector<std::string> PoolNames() const override;
  [[nodiscard]] std::size_t pool_count() const override;
  Status RegisterPoolManager(const directory::PoolManagerEntry& entry) override;
  Status UnregisterPoolManager(const std::string& name) override;
  [[nodiscard]] std::vector<directory::PoolManagerEntry> PoolManagers()
      const override;

  // --- anti-entropy ---
  [[nodiscard]] VersionVector version_vector() const;

  // Appends every journaled op the holder of `have` is missing to `out`
  // (per-origin ascending seq order). Returns false when the bounded
  // journal no longer covers the requested window — the caller must fall
  // back to a full-state sync.
  [[nodiscard]] bool DeltaSince(const VersionVector& have,
                                std::vector<Op>* out) const;

  // Merges remote ops (LWW) and advances the version vector. Ops already
  // covered by the vector are skipped. Returns how many were applied.
  std::size_t ApplyOps(const std::vector<Op>& ops);

  // Full-state transfer: every live entry and tombstone as an op, plus
  // the source's version vector and Lamport clock.
  struct StateSnapshot {
    std::vector<Op> ops;
    VersionVector vv;
    std::uint64_t lamport = 0;
    [[nodiscard]] std::size_t WireBytes() const;
  };
  [[nodiscard]] StateSnapshot FullState() const;
  // LWW-merges the snapshot into this replica's state (never a blind
  // replace: a freshly-restarted peer hands out an *empty* snapshot
  // while claiming sequence numbers whose ops died with it). The journal
  // cannot serve deltas for the merged history, so it is cleared and the
  // floor raised to the merged vector.
  void InstallFullState(const StateSnapshot& snapshot);

  // Crash model: lose directory state, journal, and knowledge of peers.
  // The restart begins a new *incarnation*: ops issued afterwards carry
  // a fresh origin actor id, so they can never be confused with the
  // lost pre-crash history (a per-origin version vector cannot express
  // the gap a crash tears into one origin's sequence). The Lamport
  // clock survives (stable storage), so post-restart upserts win LWW
  // against their own stale pre-crash entries.
  void Reset();

  // Canonical serialization of the live record set (tombstones and
  // stamps excluded) — equal digests mean the replicas answer every
  // lookup identically.
  [[nodiscard]] std::string StateDigest() const;

  // Tombstone GC: erases every tombstone whose writing op's
  // (origin, seq) is covered by `floor` (floor[origin] >= seq), i.e.
  // already applied by every replica the caller folded into the floor.
  // Such a tombstone can never be needed again — duplicate deliveries
  // are version-vector-gated, snapshots from covered peers carry the
  // deletion's outcome (the key's absence), and crashed replicas
  // restart empty — so dropping it everywhere is convergent. Returns
  // the number of tombstones erased.
  std::size_t PruneTombstones(const VersionVector& floor);

  // Live tombstones currently held (pools + pool managers).
  [[nodiscard]] std::size_t tombstone_count() const;

  // Ops currently retained in the bounded journal (telemetry gauge).
  [[nodiscard]] std::size_t journal_size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return journal_.size();
  }

 private:
  template <typename Payload>
  struct Slot {
    std::uint64_t stamp = 0;
    std::uint32_t origin = 0;
    std::uint64_t seq = 0;  // the writing op's per-origin seq (GC key)
    bool tombstone = false;
    Payload value{};
  };

  // True when (stamp, origin) supersedes the slot's current writer.
  template <typename Payload>
  static bool Supersedes(const Slot<Payload>& slot, std::uint64_t stamp,
                         std::uint32_t origin) {
    return stamp > slot.stamp || (stamp == slot.stamp && origin > slot.origin);
  }

  // Origin actor id of this replica's current incarnation.
  [[nodiscard]] std::uint32_t OriginLocked() const {
    return config_.id | (incarnation_ << 16);
  }
  // Stamps a locally-issued op, applies it, journals it. Caller holds mu_.
  void CommitLocalLocked(Op op);
  // LWW merge of one op into the state maps. Caller holds mu_.
  void MergeLocked(const Op& op);
  void JournalLocked(Op op);

  ReplicaConfig config_;
  mutable std::mutex mu_;
  std::uint64_t lamport_ = 0;
  std::uint32_t incarnation_ = 0;  // bumped by Reset
  VersionVector vv_;
  // pool name -> instance -> slot (live entry or tombstone).
  std::map<std::string, std::map<std::uint32_t, Slot<directory::PoolInstance>>>
      pools_;
  std::map<std::string, Slot<directory::PoolManagerEntry>> pms_;
  // Bounded op journal plus per-origin floor: seqs at or below the floor
  // have been discarded and can only be recovered via full sync.
  std::deque<Op> journal_;
  VersionVector journal_floor_;
};

}  // namespace actyp::replica
