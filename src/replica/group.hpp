// ReplicaGroup: owns the directory replicas of one administrative
// domain, keeps them convergent with journal-driven anti-entropy, and
// routes pipeline components to the nearest reachable replica.
//
// Sync protocol: each replica owns a seeded, phase-staggered timer on
// the sim kernel. On every tick it picks one reachable alive peer
// (seeded-uniform) and pulls the ops it is missing via
// DeltaSince(version vector); when the peer's bounded journal cannot
// serve the window, the pull degrades to a full-state transfer. The
// group is partition-aware through a site-level reachability hook
// (wired to Topology::IsSitePartitioned by the scenario) and
// crash-aware through Crash/Restore — the hooks the fault injector's
// service churn drives.
//
// Metrics: sync_bytes (delta + snapshot traffic), full_syncs,
// max_staleness (longest a replica's vector lagged the group union),
// converge_time (last disruption -> all alive replicas byte-identical),
// and failovers (reads/writes served by a non-preferred replica).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "profile/stage_profiler.hpp"
#include "replica/replica.hpp"
#include "simnet/kernel.hpp"

namespace actyp::obs {
class FlightRecorder;
}  // namespace actyp::obs

namespace actyp::replica {

// Modeled replica_sync span cost: a pull executes instantaneously in
// sim time (consuming service time would perturb the replay the
// profiler must never touch), so its recorded span gets a synthetic
// duration — a fixed round-trip cost plus a per-wire-byte transfer
// term. Deterministic and monotone in the pull's traffic, so the
// replica_sync percentiles track delta size and full-state fallbacks.
inline constexpr SimDuration kSyncFixedCost = Micros(120);
inline constexpr std::uint64_t kSyncBytesPerMicro = 16;

struct ReplicaGroupConfig {
  SimDuration sync_period = Seconds(1.0);
  std::size_t journal_capacity = 4096;
  std::uint64_t seed = 0x5e11caULL;
  // When set, every anti-entropy pull records one kReplicaSync span
  // (null = profiling off, the seed path).
  profile::StageProfiler* profiler = nullptr;
  // When set, every pull also appends one kReplicaSync flight event
  // (not owned; must outlive the group).
  obs::FlightRecorder* recorder = nullptr;
};

struct ReplicaGroupStats {
  std::uint64_t sync_rounds = 0;    // anti-entropy ticks on live replicas
  std::uint64_t sync_skipped = 0;   // ticks with no reachable peer
  std::uint64_t ops_pulled = 0;     // delta ops transferred
  std::uint64_t ops_applied = 0;    // delta ops that changed the target
  std::uint64_t sync_bytes = 0;     // delta + snapshot wire bytes
  std::uint64_t full_syncs = 0;     // bounded-journal fallbacks
  std::uint64_t failovers = 0;      // served by a non-preferred replica
  std::uint64_t unavailable = 0;    // no reachable replica at all
  std::uint64_t crashes = 0;
  std::uint64_t restores = 0;
  std::uint64_t convergences = 0;   // disruptions fully healed
  std::uint64_t tombstones_gc = 0;  // tombstones garbage-collected
  double max_staleness_s = 0;
  double converge_time_s = 0;       // last disruption -> convergence
};

class ReplicaGroup {
 public:
  // Sites are considered mutually reachable unless this says otherwise
  // (same-site access never traverses the WAN and is always reachable).
  using ReachabilityFn =
      std::function<bool(const std::string& site_a, const std::string& site_b)>;

  ReplicaGroup(simnet::SimKernel* kernel, ReplicaGroupConfig config);

  // Build-time wiring; call before Start().
  DirectoryReplica* AddReplica(const std::string& site);
  void SetReachability(ReachabilityFn fn) { reachable_ = std::move(fn); }

  // Arms the per-replica anti-entropy timers.
  void Start();

  [[nodiscard]] std::size_t size() const { return replicas_.size(); }
  [[nodiscard]] DirectoryReplica* replica(std::uint32_t id) {
    return replicas_[id].get();
  }
  [[nodiscard]] bool alive(std::uint32_t id) const { return alive_[id]; }

  // Nearest reachable replica for a component at `from_site`: the
  // lowest-id same-site replica when it is up, otherwise the lowest-id
  // alive replica whose site is reachable (counted as a failover), else
  // nullptr (counted as unavailable).
  [[nodiscard]] DirectoryReplica* Resolve(const std::string& from_site) const;

  // Fault hooks: a crash loses the replica's state (journal, peers'
  // history); a restore brings it back empty and *warming* — it joins
  // anti-entropy immediately but is not handed out by Resolve until its
  // first successful pull, so a cold replica never serves empty lookups.
  void Crash(std::uint32_t id);
  void Restore(std::uint32_t id);

  // Restarts the convergence clock: converge_time measures from the
  // last disruption (partition heal, replica restore) until every alive
  // replica reports an identical record set.
  void NoteDisruption();

  // True when all alive replicas hold byte-identical record sets.
  [[nodiscard]] bool Converged() const;

  [[nodiscard]] const ReplicaGroupStats& stats() const { return stats_; }

  // Telemetry gauge: ops currently retained across every replica's
  // bounded journal (journal depth of the whole group).
  [[nodiscard]] std::uint64_t TotalJournalOps() const;

 private:
  void SyncTick(std::uint32_t id);
  [[nodiscard]] bool Reachable(const std::string& site_a,
                               const std::string& site_b) const;

  simnet::SimKernel* kernel_;
  ReplicaGroupConfig config_;
  Rng rng_;
  ReachabilityFn reachable_;
  std::vector<std::unique_ptr<DirectoryReplica>> replicas_;
  std::vector<bool> alive_;
  std::vector<bool> warming_;      // restored, awaiting the first pull
  std::vector<SimTime> fresh_at_;  // last time a replica covered the union
  bool started_ = false;
  bool awaiting_convergence_ = false;
  SimTime disrupted_at_ = 0;
  mutable ReplicaGroupStats stats_;
};

// Routes the DirectoryApi of a component living at `site` to the
// group's nearest reachable replica: writes made during a partition
// land on the component's own side and reconcile after heal.
class ReplicaHandle final : public directory::DirectoryApi {
 public:
  ReplicaHandle(ReplicaGroup* group, std::string site)
      : group_(group), site_(std::move(site)) {}

  Status RegisterPool(const directory::PoolInstance& instance) override;
  Status UnregisterPool(const std::string& pool_name,
                        std::uint32_t instance) override;
  [[nodiscard]] std::vector<directory::PoolInstance> Lookup(
      const std::string& pool_name) const override;
  [[nodiscard]] std::vector<std::string> PoolNames() const override;
  [[nodiscard]] std::size_t pool_count() const override;
  Status RegisterPoolManager(const directory::PoolManagerEntry& entry) override;
  Status UnregisterPoolManager(const std::string& name) override;
  [[nodiscard]] std::vector<directory::PoolManagerEntry> PoolManagers()
      const override;

 private:
  ReplicaGroup* group_;
  std::string site_;
};

}  // namespace actyp::replica
