// Clock abstraction decoupling pipeline logic from real time.
#pragma once

#include <atomic>
#include <chrono>

#include "common/sim_time.hpp"

namespace actyp {

class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual SimTime Now() const = 0;
};

// Real time, microseconds since steady_clock epoch.
class WallClock final : public Clock {
 public:
  [[nodiscard]] SimTime Now() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

// Manually advanced clock for unit tests and for the discrete-event
// kernel (which owns and advances one).
class ManualClock final : public Clock {
 public:
  explicit ManualClock(SimTime start = 0) : now_(start) {}
  [[nodiscard]] SimTime Now() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void Advance(SimDuration delta) {
    now_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Set(SimTime t) { now_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<SimTime> now_;
};

}  // namespace actyp
