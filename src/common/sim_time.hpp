// Simulation time: microseconds as a signed 64-bit count. All pipeline
// components take time from a Clock so the same code runs under the
// discrete-event kernel and on the wall clock.
#pragma once

#include <cstdint>

namespace actyp {

using SimTime = std::int64_t;      // absolute microseconds since epoch 0
using SimDuration = std::int64_t;  // microseconds

constexpr SimDuration Micros(std::int64_t n) { return n; }
constexpr SimDuration Millis(std::int64_t n) { return n * 1000; }
constexpr SimDuration Seconds(double s) {
  return static_cast<SimDuration>(s * 1e6);
}

constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / 1e6; }
constexpr double ToMillis(SimDuration d) { return static_cast<double>(d) / 1e3; }

}  // namespace actyp
