// Streaming statistics and histograms used by the benchmark harnesses
// and the resource monitor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace actyp {

// Welford online mean/variance plus min/max.
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);
  void Reset();

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(count_); }

  [[nodiscard]] std::string ToString() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-width linear histogram over [lo, hi); out-of-range samples land
// in saturating edge buckets. Used for the Fig. 9 CPU-time histogram.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void Add(double x);
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] double bucket_hi(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t max_bucket_count() const;

  // Renders an ASCII bar chart, `width` columns at full scale.
  [[nodiscard]] std::string Render(std::size_t width = 60) const;

 private:
  double lo_, hi_, bucket_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

// Reservoir of raw samples with exact quantiles; bounded memory via
// uniform reservoir sampling once `capacity` is exceeded.
class QuantileSampler {
 public:
  explicit QuantileSampler(std::size_t capacity = 1 << 16);

  void Add(double x);
  // Feeds `other`'s retained samples through Add in their stored order.
  // Deterministic for a fixed merge order of the inputs (the LP-parallel
  // scenarios merge per-site samplers in site-rank order).
  void Merge(const QuantileSampler& other);
  // q in [0,1]; returns 0 when empty. Linear interpolation between order
  // statistics.
  [[nodiscard]] double Quantile(double q) const;
  [[nodiscard]] std::size_t seen() const { return seen_; }

 private:
  std::size_t capacity_;
  std::size_t seen_ = 0;
  std::uint64_t rng_state_;
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool dirty_ = false;
};

}  // namespace actyp
