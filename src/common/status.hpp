// Lightweight status / result types used across all ActYP libraries.
//
// The pipeline propagates failures as values (a query that cannot be
// satisfied is a normal outcome, not an exception), so every fallible
// API returns Status or Result<T>.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace actyp {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed query, bad config value
  kNotFound,          // no matching machine / pool / key
  kUnavailable,       // resource exists but cannot be used right now
  kExhausted,         // TTL expired, shadow accounts depleted
  kPermissionDenied,  // user/tool group not allowed on machine
  kAlreadyExists,     // duplicate registration
  kInternal,          // invariant violation, wire-format corruption
  kTimeout,           // transport or scheduling deadline missed
};

std::string_view StatusCodeName(StatusCode code);

// Value-semantic error carrier. An engaged message is only present for
// non-OK codes.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string ToString() const {
    if (ok()) return "OK";
    std::string out(StatusCodeName(code_));
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgument(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status NotFound(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
inline Status Unavailable(std::string msg) {
  return {StatusCode::kUnavailable, std::move(msg)};
}
inline Status Exhausted(std::string msg) {
  return {StatusCode::kExhausted, std::move(msg)};
}
inline Status PermissionDenied(std::string msg) {
  return {StatusCode::kPermissionDenied, std::move(msg)};
}
inline Status AlreadyExists(std::string msg) {
  return {StatusCode::kAlreadyExists, std::move(msg)};
}
inline Status Internal(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}
inline Status Timeout(std::string msg) {
  return {StatusCode::kTimeout, std::move(msg)};
}

inline std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kExhausted: return "EXHAUSTED";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kTimeout: return "TIMEOUT";
  }
  return "UNKNOWN";
}

// Result<T>: either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(data_).ok() &&
           "Result<T> must not be constructed from an OK status");
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }

  [[nodiscard]] Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace actyp
