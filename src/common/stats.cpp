#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/rng.hpp"

namespace actyp {

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::Reset() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

std::string RunningStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.6g sd=%.6g min=%.6g max=%.6g", count_, mean(),
                stddev(), min(), max());
  return buf;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), bucket_width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    ++counts_.front();
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    ++counts_.back();
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / bucket_width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  ++counts_[idx];
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + bucket_width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return lo_ + bucket_width_ * static_cast<double>(i + 1);
}

std::uint64_t Histogram::max_bucket_count() const {
  std::uint64_t best = 0;
  for (auto c : counts_) best = std::max(best, c);
  return best;
}

std::string Histogram::Render(std::size_t width) const {
  std::string out;
  const std::uint64_t peak = std::max<std::uint64_t>(1, max_bucket_count());
  char line[256];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        static_cast<std::size_t>(counts_[i] * width / peak);
    std::snprintf(line, sizeof(line), "[%8.1f,%8.1f) %8llu |", bucket_lo(i),
                  bucket_hi(i),
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

QuantileSampler::QuantileSampler(std::size_t capacity)
    : capacity_(capacity), rng_state_(0x9d7fca11u) {
  samples_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void QuantileSampler::Add(double x) {
  ++seen_;
  dirty_ = true;
  if (samples_.size() < capacity_) {
    samples_.push_back(x);
    return;
  }
  // Vitter's Algorithm R.
  const std::uint64_t r = SplitMix64(rng_state_) % seen_;
  if (r < capacity_) samples_[r] = x;
}

void QuantileSampler::Merge(const QuantileSampler& other) {
  for (double x : other.samples_) Add(x);
}

double QuantileSampler::Quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (dirty_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    dirty_ = false;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

}  // namespace actyp
