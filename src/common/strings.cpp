#include "common/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace actyp {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitSkipEmpty(std::string_view text, char sep) {
  std::vector<std::string> out;
  for (auto& piece : Split(text, sep)) {
    if (!piece.empty()) out.push_back(std::move(piece));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view TrimView(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Trim(std::string_view text) { return std::string(TrimView(text)); }

bool IsLower(std::string_view text) {
  for (const char c : text) {
    if (std::isupper(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::optional<std::int64_t> ParseInt(std::string_view text) {
  text = TrimView(text);
  if (text.empty()) return std::nullopt;
  std::int64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

std::optional<double> ParseDouble(std::string_view text) {
  text = TrimView(text);
  if (text.empty()) return std::nullopt;
  // std::from_chars<double> is available in libstdc++ 11+, but go through
  // strtod for locale-independent portability with a bounded copy.
  std::string buf(text);
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

bool GlobMatch(std::string_view pattern, std::string_view text) {
  // Iterative two-pointer match with star backtracking.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, match = 0;
  auto lower = [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  };
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || lower(pattern[p]) == lower(text[t]))) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      match = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++match;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace actyp
