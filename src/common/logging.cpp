#include "common/logging.hpp"

#include <cstdio>
#include <mutex>

namespace actyp {
namespace {

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

Logger::Logger() {
  sink_ = [](LogLevel level, const std::string& message) {
    std::fprintf(stderr, "[actyp %s] %s\n", LevelTag(level), message.c_str());
  };
}

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

void Logger::SetSink(Sink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  if (sink) {
    sink_ = std::move(sink);
  } else {
    sink_ = [](LogLevel level, const std::string& message) {
      std::fprintf(stderr, "[actyp %s] %s\n", LevelTag(level),
                   message.c_str());
    };
  }
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  std::lock_guard<std::mutex> lock(SinkMutex());
  sink_(level, message);
}

}  // namespace actyp
