// Minimal leveled logger. Components log through a process-wide sink so
// tests can silence or capture output.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace actyp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& Instance();

  void SetLevel(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  // Replaces the sink (default writes to stderr). Pass nullptr to restore
  // the default sink.
  void SetSink(Sink sink);

  void Log(LogLevel level, const std::string& message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

namespace internal {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Instance().Log(level_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

#define ACTYP_LOG(lvl)                                          \
  if (static_cast<int>(lvl) <                                   \
      static_cast<int>(::actyp::Logger::Instance().level())) {  \
  } else                                                        \
    ::actyp::internal::LogMessage(lvl).stream()

#define ACTYP_DEBUG ACTYP_LOG(::actyp::LogLevel::kDebug)
#define ACTYP_INFO ACTYP_LOG(::actyp::LogLevel::kInfo)
#define ACTYP_WARN ACTYP_LOG(::actyp::LogLevel::kWarn)
#define ACTYP_ERROR ACTYP_LOG(::actyp::LogLevel::kError)

}  // namespace actyp
