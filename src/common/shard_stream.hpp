// Deterministic per-shard RNG streams for the LP-parallel kernel.
//
// Each logical process (site shard) owns every stochastic draw made on
// behalf of its nodes — message loss, latency jitter — so a draw is a
// pure function of (experiment seed, shard rank, the shard's local
// event order). Worker count and thread interleaving never touch a
// stream: replaying a fixed seed with 1, 2, or 4 workers produces the
// same bits.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace actyp {

// Expands (seed, rank) into the seed of shard `rank`'s private stream.
// Two rounds of splitmix over a rank-salted state keep sibling streams
// statistically independent even for adjacent ranks.
inline std::uint64_t ShardStreamSeed(std::uint64_t seed, std::uint64_t rank) {
  std::uint64_t sm = seed ^ (0x9e3779b97f4a7c15ULL * (rank + 1));
  const std::uint64_t a = SplitMix64(sm);
  const std::uint64_t b = SplitMix64(sm);
  return a ^ (b << 1);
}

// The shard's private generator, ready to Fork() sub-streams from.
inline Rng ShardStream(std::uint64_t seed, std::uint64_t rank) {
  return Rng(ShardStreamSeed(seed, rank));
}

}  // namespace actyp
