// Fixed-size worker pool. Stages of the threaded runtime share one pool
// per process so replication experiments control concurrency explicitly.
#pragma once

#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/mpsc_queue.hpp"

namespace actyp {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  // Blocks until every task submitted before this call has finished.
  void Drain();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  BlockingQueue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> in_flight_{0};
  std::mutex drain_mu_;
  std::condition_variable drained_;
};

}  // namespace actyp
