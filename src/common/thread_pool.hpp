// Fixed-size worker pool. Stages of the threaded runtime share one pool
// per process so replication experiments control concurrency explicitly;
// the scenario driver runs independent sweep cells on one.
//
// Semantics (audited for lost wakeups and shutdown races):
//   - Submit is safe from any number of producer threads. After the
//     destructor has closed the queue, Submit drops the task (and still
//     wakes Drain waiters, so a racing Drain cannot hang on a task that
//     will never run).
//   - Drain blocks until every task submitted before the call has
//     finished, including tasks submitted *by* running tasks. Multiple
//     threads may Drain concurrently; each returns once the pool is
//     momentarily idle. Drain from inside a task deadlocks — don't.
//   - Tasks must not throw: an escaping exception terminates the
//     process (there is no result channel to surface it on).
//   - The destructor closes the queue, runs every task already
//     accepted, then joins the workers.
#pragma once

#include <functional>
#include <thread>
#include <vector>

#include "common/mpsc_queue.hpp"

namespace actyp {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  // Blocks until every task submitted before this call has finished.
  void Drain();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  // Decrements in_flight_ and, on the transition to zero, wakes Drain
  // waiters. The notify happens with drain_mu_ held: a waiter that has
  // seen in_flight_ != 0 is either still holding the mutex (it will
  // re-check before waiting) or already parked (it will be woken) —
  // the classic lost-wakeup window is closed in both cases.
  void FinishOne();

  BlockingQueue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> in_flight_{0};
  std::mutex drain_mu_;
  std::condition_variable drained_;
};

}  // namespace actyp
