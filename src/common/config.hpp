// Key=value configuration with sections, used for experiment configs and
// the admin-defined machine parameter lists (Fig. 3 field 20).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace actyp {

class Config {
 public:
  Config() = default;

  // Parses lines of "key = value"; '#' starts a comment; "[section]"
  // prefixes following keys as "section.key".
  static Result<Config> Parse(std::string_view text);

  void Set(const std::string& key, std::string value);

  [[nodiscard]] bool Has(const std::string& key) const;
  [[nodiscard]] std::optional<std::string> Get(const std::string& key) const;
  [[nodiscard]] std::string GetOr(const std::string& key,
                                  std::string fallback) const;
  [[nodiscard]] std::int64_t GetInt(const std::string& key,
                                    std::int64_t fallback) const;
  [[nodiscard]] double GetDouble(const std::string& key,
                                 double fallback) const;
  [[nodiscard]] bool GetBool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

  // Entries under "<section>." with the prefix stripped, in key order —
  // used for list-valued sections (e.g. the numbered fault-plan lines).
  [[nodiscard]] std::vector<std::pair<std::string, std::string>>
  SectionEntries(const std::string& section) const;

  [[nodiscard]] std::string Serialize() const;

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace actyp
