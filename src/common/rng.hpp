// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component (workload generator, monitor dynamics,
// network jitter, pool-manager selection) owns its own Rng seeded from
// the experiment seed, so experiments are reproducible bit-for-bit and
// components do not perturb each other's streams.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

namespace actyp {

// splitmix64: used to expand a single 64-bit seed into generator state.
inline std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  // Derives an independent child stream; used to hand sub-components
  // their own generators.
  [[nodiscard]] Rng Fork() { return Rng(Next() ^ 0xa5a5a5a5a5a5a5a5ULL); }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface so <random> distributions work.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return Next(); }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  // nearly-divisionless method.
  std::uint64_t NextBounded(std::uint64_t bound) {
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(Next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    NextBounded(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  bool Bernoulli(double p) { return NextDouble() < p; }

  // Box–Muller; one value per call (the spare is discarded to keep the
  // stream position independent of call parity).
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    double u1 = NextDouble();
    while (u1 <= 1e-300) u1 = NextDouble();
    const double u2 = NextDouble();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
  }

  double Exponential(double mean) {
    double u = NextDouble();
    while (u <= 1e-300) u = NextDouble();
    return -mean * std::log(u);
  }

  double LogNormal(double mu, double sigma) {
    return std::exp(Gaussian(mu, sigma));
  }

  // Pareto with scale x_m and shape alpha (heavy tail for alpha <= 2).
  double Pareto(double scale, double alpha) {
    double u = NextDouble();
    while (u <= 1e-300) u = NextDouble();
    return scale / std::pow(u, 1.0 / alpha);
  }

  // Picks an index according to non-negative weights; the total must be
  // positive.
  std::size_t WeightedIndex(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    double roll = NextDouble() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      roll -= weights[i];
      if (roll < 0.0) return i;
    }
    return weights.empty() ? 0 : weights.size() - 1;
  }

  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = NextBounded(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace actyp
