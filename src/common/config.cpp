#include "common/config.hpp"

#include "common/strings.hpp"

namespace actyp {

Result<Config> Config::Parse(std::string_view text) {
  Config config;
  std::string section;
  std::size_t line_no = 0;
  for (const auto& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string_view line = TrimView(raw_line);
    const std::size_t comment = line.find('#');
    if (comment != std::string_view::npos) {
      line = TrimView(line.substr(0, comment));
    }
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        return InvalidArgument("config line " + std::to_string(line_no) +
                               ": unterminated section header");
      }
      section = Trim(line.substr(1, line.size() - 2));
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return InvalidArgument("config line " + std::to_string(line_no) +
                             ": expected key=value");
    }
    std::string key = Trim(line.substr(0, eq));
    if (key.empty()) {
      return InvalidArgument("config line " + std::to_string(line_no) +
                             ": empty key");
    }
    if (!section.empty()) key = section + "." + key;
    config.entries_[key] = Trim(line.substr(eq + 1));
  }
  return config;
}

void Config::Set(const std::string& key, std::string value) {
  entries_[key] = std::move(value);
}

bool Config::Has(const std::string& key) const {
  return entries_.count(key) > 0;
}

std::optional<std::string> Config::Get(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string Config::GetOr(const std::string& key, std::string fallback) const {
  auto v = Get(key);
  return v ? *v : std::move(fallback);
}

std::int64_t Config::GetInt(const std::string& key,
                            std::int64_t fallback) const {
  auto v = Get(key);
  if (!v) return fallback;
  auto parsed = ParseInt(*v);
  return parsed ? *parsed : fallback;
}

double Config::GetDouble(const std::string& key, double fallback) const {
  auto v = Get(key);
  if (!v) return fallback;
  auto parsed = ParseDouble(*v);
  return parsed ? *parsed : fallback;
}

bool Config::GetBool(const std::string& key, bool fallback) const {
  auto v = Get(key);
  if (!v) return fallback;
  const std::string lower = ToLower(*v);
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") {
    return true;
  }
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") {
    return false;
  }
  return fallback;
}

std::vector<std::pair<std::string, std::string>> Config::SectionEntries(
    const std::string& section) const {
  std::vector<std::pair<std::string, std::string>> out;
  const std::string prefix = section + ".";
  for (auto it = entries_.lower_bound(prefix); it != entries_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.emplace_back(it->first.substr(prefix.size()), it->second);
  }
  return out;
}

std::string Config::Serialize() const {
  std::string out;
  for (const auto& [key, value] : entries_) {
    out += key;
    out += " = ";
    out += value;
    out += '\n';
  }
  return out;
}

}  // namespace actyp
