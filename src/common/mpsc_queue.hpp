// Blocking multi-producer queue used by the threaded transport and the
// thread pool. Close() wakes all waiters; Pop returns nullopt once the
// queue is closed and drained.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace actyp {

template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(std::size_t max_size = 0) : max_size_(max_size) {}

  // Returns false if the queue is closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (max_size_ > 0) {
      not_full_.wait(lock,
                     [&] { return closed_ || items_.size() < max_size_; });
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push; returns false when full or closed.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || (max_size_ > 0 && items_.size() >= max_size_)) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and empty.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t max_size_;
  bool closed_ = false;
};

}  // namespace actyp
