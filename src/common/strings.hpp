// Small string helpers shared by the query language, config parser, and
// wire format.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace actyp {

std::vector<std::string> Split(std::string_view text, char sep);
// Like Split but drops empty pieces.
std::vector<std::string> SplitSkipEmpty(std::string_view text, char sep);
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Allocation-free split: calls fn(piece) for every sep-separated piece
// (empty pieces included) — the hot-path alternative to Split.
template <typename Fn>
void ForEachPiece(std::string_view text, char sep, Fn&& fn) {
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      fn(text.substr(start));
      return;
    }
    fn(text.substr(start, pos - start));
    start = pos + 1;
  }
}

// True when the text contains no uppercase letters — lets hot paths
// skip the allocating ToLower for already-canonical keys.
bool IsLower(std::string_view text);

std::string_view TrimView(std::string_view text);
std::string Trim(std::string_view text);
std::string ToLower(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

std::optional<std::int64_t> ParseInt(std::string_view text);
std::optional<double> ParseDouble(std::string_view text);

// Case-insensitive glob with '*' and '?' — used for wildcard values in
// admin-defined parameters.
bool GlobMatch(std::string_view pattern, std::string_view text);

}  // namespace actyp
