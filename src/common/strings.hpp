// Small string helpers shared by the query language, config parser, and
// wire format.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace actyp {

std::vector<std::string> Split(std::string_view text, char sep);
// Like Split but drops empty pieces.
std::vector<std::string> SplitSkipEmpty(std::string_view text, char sep);
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

std::string_view TrimView(std::string_view text);
std::string Trim(std::string_view text);
std::string ToLower(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

std::optional<std::int64_t> ParseInt(std::string_view text);
std::optional<double> ParseDouble(std::string_view text);

// Case-insensitive glob with '*' and '?' — used for wildcard values in
// admin-defined parameters.
bool GlobMatch(std::string_view pattern, std::string_view text);

}  // namespace actyp
