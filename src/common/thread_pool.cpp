#include "common/thread_pool.hpp"

namespace actyp {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] {
      while (auto task = tasks_.Pop()) {
        (*task)();
        FinishOne();
      }
    });
  }
}

ThreadPool::~ThreadPool() {
  tasks_.Close();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  // Count the task before it becomes visible to workers, so a Drain
  // racing this Submit either waits for it or provably started first.
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (!tasks_.Push(std::move(task))) {
    // Queue closed (pool shutting down): the task is dropped, so it
    // must not be waited on either.
    FinishOne();
  }
}

void ThreadPool::FinishOne() {
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(drain_mu_);
    drained_.notify_all();
  }
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drained_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace actyp
