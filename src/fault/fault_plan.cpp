#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cstdio>

#include "common/strings.hpp"

namespace actyp::fault {
namespace {

std::string FormatSeconds(SimTime t) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", ToSeconds(t));
  return buffer;
}

std::string FormatDouble(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", v);
  return buffer;
}

Status LineError(std::size_t line_no, const std::string& what) {
  return InvalidArgument("fault plan line " + std::to_string(line_no) + ": " +
                         what);
}

// Parses one `<kind> key=value ...` line into an event.
Result<FaultEvent> ParseEventLine(std::string_view line, std::size_t line_no) {
  const std::vector<std::string> tokens = SplitSkipEmpty(line, ' ');
  FaultEvent event;
  const std::string kind = ToLower(tokens.front());
  if (kind == "loss") {
    event.kind = FaultKind::kLoss;
  } else if (kind == "latency") {
    event.kind = FaultKind::kLatency;
  } else if (kind == "partition") {
    event.kind = FaultKind::kPartition;
  } else if (kind == "crash") {
    event.kind = FaultKind::kCrash;
  } else if (kind == "churn") {
    event.kind = FaultKind::kChurn;
  } else if (kind == "site-crash") {
    event.kind = FaultKind::kSiteCrash;
  } else if (kind == "site-restore") {
    event.kind = FaultKind::kSiteRestore;
  } else {
    return LineError(line_no, "unknown fault kind '" + kind + "'");
  }

  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return LineError(line_no, "expected key=value, got '" + token + "'");
    }
    const std::string key = ToLower(token.substr(0, eq));
    const std::string value = token.substr(eq + 1);
    const auto number = ParseDouble(value);
    const auto need_number = [&]() -> Status {
      if (number) return Status::Ok();
      return LineError(line_no, "'" + key + "' needs a number, got '" + value +
                                    "'");
    };
    if (key == "start" || key == "at") {
      if (Status s = need_number(); !s.ok()) return s;
      event.start = Seconds(*number);
    } else if (key == "end") {
      if (Status s = need_number(); !s.ok()) return s;
      event.end = Seconds(*number);
    } else if (key == "p" || key == "probability") {
      if (Status s = need_number(); !s.ok()) return s;
      event.probability = *number;
    } else if (key == "extra_ms") {
      if (Status s = need_number(); !s.ok()) return s;
      event.extra_latency = static_cast<SimDuration>(*number * 1000.0);
    } else if (key == "site_a") {
      event.site_a = value;
    } else if (key == "site_b") {
      event.site_b = value;
    } else if (key == "target") {
      event.target = value;
    } else if (key == "site") {
      event.site = value;
    } else if (key == "count") {
      if (Status s = need_number(); !s.ok()) return s;
      if (*number < 1) return LineError(line_no, "'count' must be >= 1");
      event.count = static_cast<std::size_t>(*number);
    } else if (key == "rate") {
      if (Status s = need_number(); !s.ok()) return s;
      event.rate_per_s = *number;
    } else if (key == "downtime") {
      if (Status s = need_number(); !s.ok()) return s;
      event.downtime = Seconds(*number);
    } else {
      return LineError(line_no, "unknown key '" + key + "'");
    }
  }

  // Per-kind validation, so a bad plan fails before the simulation runs.
  if (event.end != 0 && event.end < event.start) {
    return LineError(line_no, "'end' precedes 'start'");
  }
  switch (event.kind) {
    case FaultKind::kLoss:
      if (event.probability < 0.0 || event.probability > 1.0) {
        return LineError(line_no, "loss needs p in [0, 1]");
      }
      break;
    case FaultKind::kLatency:
      if (event.extra_latency <= 0) {
        return LineError(line_no, "latency needs extra_ms > 0");
      }
      break;
    case FaultKind::kPartition:
      break;
    case FaultKind::kCrash:
      if (event.target.empty()) {
        return LineError(line_no, "crash needs a target");
      }
      break;
    case FaultKind::kChurn:
      if (event.rate_per_s <= 0.0) {
        return LineError(line_no, "churn needs rate > 0");
      }
      if (event.target.empty()) {
        return LineError(line_no, "churn needs a target");
      }
      break;
    case FaultKind::kSiteCrash:
    case FaultKind::kSiteRestore:
      if (event.site.empty()) {
        return LineError(line_no, std::string(FaultKindName(event.kind)) +
                                      " needs a site");
      }
      break;
  }
  return event;
}

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLoss:
      return "loss";
    case FaultKind::kLatency:
      return "latency";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kChurn:
      return "churn";
    case FaultKind::kSiteCrash:
      return "site-crash";
    case FaultKind::kSiteRestore:
      return "site-restore";
  }
  return "unknown";
}

std::string FaultEvent::Serialize() const {
  std::string out(FaultKindName(kind));
  out += " start=" + FormatSeconds(start);
  if (end != 0) out += " end=" + FormatSeconds(end);
  switch (kind) {
    case FaultKind::kLoss:
      out += " p=" + FormatDouble(probability);
      break;
    case FaultKind::kLatency:
      out += " extra_ms=" + FormatDouble(ToMillis(extra_latency));
      out += " site_a=" + site_a + " site_b=" + site_b;
      break;
    case FaultKind::kPartition:
      out += " site_a=" + site_a + " site_b=" + site_b;
      break;
    case FaultKind::kCrash:
      out += " target=" + target;
      if (target == "machines") out += " count=" + std::to_string(count);
      if (downtime != 0) out += " downtime=" + FormatSeconds(downtime);
      break;
    case FaultKind::kChurn:
      out += " rate=" + FormatDouble(rate_per_s);
      out += " target=" + target;
      if (downtime != 0) out += " downtime=" + FormatSeconds(downtime);
      break;
    case FaultKind::kSiteCrash:
      out += " site=" + site;
      if (downtime != 0) out += " downtime=" + FormatSeconds(downtime);
      break;
    case FaultKind::kSiteRestore:
      out += " site=" + site;
      break;
  }
  return out;
}

Result<FaultPlan> FaultPlan::Parse(std::string_view text) {
  FaultPlan plan;
  std::size_t line_no = 0;
  for (const auto& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string_view line = TrimView(raw_line);
    const std::size_t comment = line.find('#');
    if (comment != std::string_view::npos) {
      line = TrimView(line.substr(0, comment));
    }
    if (line.empty()) continue;
    auto event = ParseEventLine(line, line_no);
    if (!event.ok()) return event.status();
    plan.events.push_back(std::move(event.value()));
  }
  return plan;
}

Result<FaultPlan> FaultPlan::FromConfig(const Config& config) {
  // Collect `fault.<n>` entries and order them by <n>, so plans embedded
  // in experiment configs replay in authoring order regardless of the
  // map's lexicographic key order (fault.10 after fault.2).
  std::vector<std::pair<std::int64_t, std::string>> lines;
  for (const auto& [key, value] : config.SectionEntries("fault")) {
    const auto n = ParseInt(key);
    if (!n) {
      return InvalidArgument("fault config key 'fault." + key +
                             "' is not numbered");
    }
    lines.emplace_back(*n, value);
  }
  std::sort(lines.begin(), lines.end());
  std::string text;
  for (const auto& [n, line] : lines) {
    text += line;
    text += '\n';
  }
  return Parse(text);
}

std::string FaultPlan::Serialize() const {
  std::string out;
  for (const FaultEvent& event : events) {
    out += event.Serialize();
    out += '\n';
  }
  return out;
}

Config FaultPlan::ToConfig() const {
  Config config;
  std::size_t n = 0;
  for (const FaultEvent& event : events) {
    config.Set("fault." + std::to_string(++n), event.Serialize());
  }
  return config;
}

void FaultPlan::AddLossWindow(double p, SimTime start, SimTime end) {
  FaultEvent event;
  event.kind = FaultKind::kLoss;
  event.probability = p;
  event.start = start;
  event.end = end;
  events.push_back(std::move(event));
}

void FaultPlan::AddChurn(double rate_per_s, SimDuration downtime,
                         const std::string& target, SimTime start,
                         SimTime end) {
  FaultEvent event;
  event.kind = FaultKind::kChurn;
  event.rate_per_s = rate_per_s;
  event.downtime = downtime;
  event.target = target;
  event.start = start;
  event.end = end;
  events.push_back(std::move(event));
}

}  // namespace actyp::fault
