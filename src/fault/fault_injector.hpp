// FaultInjector: arms a FaultPlan against a running discrete-event
// simulation. Every event is scheduled on the sim kernel at plan time,
// so injection is part of the deterministic event order — two runs with
// the same seed and plan replay the same faults against the same
// simulation state.
//
// The injector drives three layers:
//   - the network: loss windows (SimNetwork::SetLossProbability),
//     latency spikes and partitions (Topology fault hooks);
//   - the fleet: machine crash/restore via hooks the scenario installs
//     (white-pages state flips that pools observe on their next sweep);
//   - the services: named nodes (query managers, pool managers,
//     precreated pools) registered with crash/restart callbacks, plus a
//     directory-driven hook that kills a random live pool instance —
//     the trigger for on-demand pool re-creation.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "db/machine.hpp"
#include "fault/fault_plan.hpp"
#include "simnet/kernel.hpp"
#include "simnet/sim_network.hpp"

namespace actyp::obs {
class FlightRecorder;
}  // namespace actyp::obs

namespace actyp::fault {

struct FaultStats {
  std::uint64_t loss_windows_opened = 0;
  std::uint64_t loss_windows_closed = 0;
  std::uint64_t latency_spikes = 0;
  std::uint64_t partitions_cut = 0;
  std::uint64_t partitions_healed = 0;
  std::uint64_t machines_crashed = 0;
  std::uint64_t machines_restored = 0;
  std::uint64_t services_crashed = 0;
  std::uint64_t services_restarted = 0;
  std::uint64_t pools_killed = 0;
  std::uint64_t churn_ticks = 0;
  std::uint64_t sites_crashed = 0;
  std::uint64_t sites_restored = 0;
};

class FaultInjector {
 public:
  // Crashes up to `n` currently-up machines, returning the victims.
  using CrashMachinesFn =
      std::function<std::vector<db::MachineId>(std::size_t n, Rng& rng)>;
  // Brings previously-crashed machines back up.
  using RestoreMachinesFn =
      std::function<void(const std::vector<db::MachineId>&)>;
  // Kills one random live pool instance; returns false when none exist.
  using KillPoolFn = std::function<bool(Rng& rng)>;
  // Crashes every up machine assigned to `site`, returning the victims.
  using CrashSiteMachinesFn =
      std::function<std::vector<db::MachineId>(const std::string& site)>;

  FaultInjector(simnet::SimKernel* kernel, simnet::SimNetwork* network,
                std::uint64_t seed);

  void SetMachineHooks(CrashMachinesFn crash, RestoreMachinesFn restore);
  void SetPoolHook(KillPoolFn kill);
  // Correlated whole-site faults: machine selection by site (restore
  // reuses the machine-restore hook). Services join a site crash through
  // the site they were registered with.
  void SetSiteHook(CrashSiteMachinesFn crash_site);

  // Registers a service node that crash/churn events can target by name
  // or glob, and that site-crash events take down when `site` matches.
  // `crash` must make the service unreachable; `restart` must bring a
  // fresh instance back.
  void RegisterService(const std::string& name, std::function<void()> crash,
                       std::function<void()> restart,
                       const std::string& site = "");
  [[nodiscard]] std::vector<std::string> ServiceNames() const;

  // Declares a site name events may reference. Validation is opt-in:
  // once any site is registered, Arm rejects plans whose site-crash/
  // site-restore/latency/partition events name an unknown site instead
  // of silently no-opping them. Injectors that never register sites
  // (bare-injector tests) keep the unchecked legacy behavior.
  void RegisterSite(const std::string& site);

  // Schedules every event of `plan` on the kernel. May be called more
  // than once (plans accumulate). Fails when an event needs a hook that
  // was never installed, so misconfigured scenarios fail loudly.
  Status Arm(const FaultPlan& plan);

  // Flight recorder for strike/recovery events (not owned; must outlive
  // the injector). Null — the default — records nothing; recording
  // draws nothing, so attaching is invisible to replay.
  void SetRecorder(obs::FlightRecorder* recorder) { recorder_ = recorder; }

  [[nodiscard]] const FaultStats& stats() const { return stats_; }

 private:
  struct Service {
    std::function<void()> crash;
    std::function<void()> restart;
    std::string site;
    bool down = false;
  };

  Status CheckHooks(const FaultEvent& event) const;
  void ArmLoss(const FaultEvent& event);
  void ArmLatency(const FaultEvent& event);
  void ArmPartition(const FaultEvent& event);
  void ArmCrash(const FaultEvent& event);
  void ArmChurn(const FaultEvent& event);

  // One crash of `event`'s target; schedules the matching recovery.
  void Strike(const FaultEvent& event);
  void ChurnTick(const FaultEvent& event, SimDuration interval);
  void CrashMachines(std::size_t count, SimDuration downtime);
  void CrashService(const std::string& glob, SimDuration downtime,
                    bool pick_one);
  void CrashSite(const std::string& site, SimDuration downtime);
  void RestoreSite(const std::string& site);

  [[nodiscard]] std::vector<std::string> MatchServices(
      const std::string& glob) const;

  // Appends one strike/recovery event (no-op when no recorder is set).
  void RecordFault(bool strike, const std::string& detail);

  using SitePair = std::pair<std::string, std::string>;
  [[nodiscard]] static SitePair MakeSitePair(const FaultEvent& event);

  simnet::SimKernel* kernel_;
  simnet::SimNetwork* network_;
  Rng rng_;
  CrashMachinesFn crash_machines_;
  RestoreMachinesFn restore_machines_;
  KillPoolFn kill_pool_;
  CrashSiteMachinesFn crash_site_machines_;
  std::map<std::string, Service> services_;
  std::set<std::string> known_sites_;
  // What each in-progress site crash took down, so a site-restore (or
  // the downtime timer) brings back exactly that set — machines or
  // services individually churned down stay down.
  std::map<std::string, std::vector<db::MachineId>> site_down_machines_;
  std::map<std::string, std::vector<std::string>> site_down_services_;
  // Overlap bookkeeping, so concurrent windows of one kind compose
  // instead of the first close clobbering a still-open window:
  // loss windows form a stack (latest open wins, closing restores the
  // next one down or the base rate), latency spikes on a pair sum, and
  // partitions on a pair heal only when every cut has healed.
  std::uint64_t next_window_id_ = 0;
  double base_loss_ = 0.0;
  std::vector<std::pair<std::uint64_t, double>> open_loss_;
  std::map<SitePair, SimDuration> open_latency_;
  std::map<SitePair, int> open_partitions_;
  obs::FlightRecorder* recorder_ = nullptr;
  FaultStats stats_;
};

}  // namespace actyp::fault
