// FaultPlan: a declarative, deterministic schedule of fault events for
// the discrete-event simulator — message-loss windows, per-link latency
// spikes, site partitions, one-shot crashes, and recurring churn. A plan
// is data only; the FaultInjector arms it against a running simulation.
//
// Text format: one event per line, `<kind> key=value ...`:
//
//   # seconds are simulated seconds (doubles)
//   loss      start=2 end=8 p=0.05
//   latency   start=3 end=6 extra_ms=50 site_a=purdue site_b=upc
//   partition start=4 end=6 site_a=purdue site_b=upc
//   crash     at=5 target=machines count=10 downtime=3
//   crash     at=5 target=qm0 downtime=2
//   churn     start=1 end=30 rate=2 downtime=5 target=machines
//   churn     start=1 rate=0.5 target=pools
//   site-crash   at=5 site=purdue downtime=3
//   site-restore at=9 site=purdue
//
// `target` selects what a crash/churn event takes down: the literal
// "machines" (random up machines from the white pages), the literal
// "pools" (a random live pool instance from the directory), or a glob
// matched against the services the scenario registered (e.g. "qm*",
// "pool.*"). `site_a`/`site_b` accept "*" meaning every site pair.
//
// A site-crash is a correlated whole-site failure: every machine the
// scenario assigned to `site` and every service registered with that
// site go down together. With `downtime=` the site restores itself;
// otherwise it stays dark until a matching site-restore event.
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/sim_time.hpp"
#include "common/status.hpp"

namespace actyp::fault {

enum class FaultKind {
  kLoss,       // message-loss window at probability `probability`
  kLatency,    // extra one-way latency on a site pair
  kPartition,  // drop every message between two sites
  kCrash,      // one-shot crash of machines or a service
  kChurn,      // recurring crashes at `rate_per_s` within [start, end)
  kSiteCrash,  // correlated crash of a site's machines + services
  kSiteRestore,  // bring a previously-crashed site back up
};

std::string_view FaultKindName(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kLoss;
  SimTime start = 0;  // when the fault begins (`start=` or `at=`)
  SimTime end = 0;    // when it heals; 0 = never / instantaneous
  double probability = 0.0;          // loss
  SimDuration extra_latency = 0;     // latency spike (one-way)
  std::string site_a = "*";          // latency/partition scope
  std::string site_b = "*";
  std::string target = "machines";   // crash/churn victim selector
  std::string site;                  // site-crash/site-restore scope
  std::size_t count = 1;             // machines taken down per crash
  double rate_per_s = 0.0;           // churn: crashes per simulated second
  SimDuration downtime = 0;          // how long a victim stays down; 0 = forever

  [[nodiscard]] std::string Serialize() const;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }

  // Parses the line-oriented text format above. '#' starts a comment.
  static Result<FaultPlan> Parse(std::string_view text);

  // Reads events from the `[fault]` section of a Config: every
  // `fault.<n> = <kind> key=value ...` entry, in ascending numeric
  // order of <n>.
  static Result<FaultPlan> FromConfig(const Config& config);

  // Round-trips through Parse.
  [[nodiscard]] std::string Serialize() const;

  // The inverse of FromConfig: numbered `fault.<n>` entries, one per
  // event in order. Chaos repro bundles merge this into an experiment
  // Config so `actyp_sim --config` replays the exact failing plan.
  [[nodiscard]] Config ToConfig() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;

  // Convenience builders for the driver flags.
  void AddLossWindow(double p, SimTime start = 0, SimTime end = 0);
  void AddChurn(double rate_per_s, SimDuration downtime,
                const std::string& target = "machines", SimTime start = 0,
                SimTime end = 0);
};

}  // namespace actyp::fault
