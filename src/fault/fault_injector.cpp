#include "fault/fault_injector.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/strings.hpp"
#include "obs/flight_recorder.hpp"

namespace actyp::fault {
namespace {

std::string FormatProbability(double p) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", p);
  return buffer;
}

}  // namespace

void FaultInjector::RecordFault(bool strike, const std::string& detail) {
  if (recorder_ == nullptr) return;
  recorder_->Record(kernel_->Now(),
                    strike ? obs::FlightKind::kFaultStrike
                           : obs::FlightKind::kFaultRecover,
                    0, "fault", detail);
}

FaultInjector::FaultInjector(simnet::SimKernel* kernel,
                             simnet::SimNetwork* network, std::uint64_t seed)
    : kernel_(kernel), network_(network), rng_(seed) {}

void FaultInjector::SetMachineHooks(CrashMachinesFn crash,
                                    RestoreMachinesFn restore) {
  crash_machines_ = std::move(crash);
  restore_machines_ = std::move(restore);
}

void FaultInjector::SetPoolHook(KillPoolFn kill) {
  kill_pool_ = std::move(kill);
}

void FaultInjector::SetSiteHook(CrashSiteMachinesFn crash_site) {
  crash_site_machines_ = std::move(crash_site);
}

void FaultInjector::RegisterService(const std::string& name,
                                    std::function<void()> crash,
                                    std::function<void()> restart,
                                    const std::string& site) {
  services_[name] = Service{std::move(crash), std::move(restart), site, false};
}

std::vector<std::string> FaultInjector::ServiceNames() const {
  std::vector<std::string> names;
  names.reserve(services_.size());
  for (const auto& [name, service] : services_) names.push_back(name);
  return names;
}

void FaultInjector::RegisterSite(const std::string& site) {
  if (!site.empty()) known_sites_.insert(site);
}

Status FaultInjector::CheckHooks(const FaultEvent& event) const {
  // Site-name validation only bites once the scenario declared its
  // sites; a bare injector keeps accepting any name.
  const auto known_site = [this](const std::string& site) {
    return known_sites_.empty() || known_sites_.count(site) != 0;
  };
  if (event.kind == FaultKind::kSiteCrash ||
      event.kind == FaultKind::kSiteRestore) {
    if (!crash_site_machines_ || !restore_machines_) {
      return InvalidArgument("fault plan has site events but no site hook "
                                "is installed");
    }
    if (!known_site(event.site)) {
      return InvalidArgument("fault plan references unknown site '" +
                             event.site + "'");
    }
    return Status::Ok();
  }
  if (event.kind == FaultKind::kLatency ||
      event.kind == FaultKind::kPartition) {
    for (const std::string* site : {&event.site_a, &event.site_b}) {
      if (*site != "*" && !known_site(*site)) {
        return InvalidArgument("fault plan references unknown site '" +
                               *site + "'");
      }
    }
    return Status::Ok();
  }
  if (event.kind != FaultKind::kCrash && event.kind != FaultKind::kChurn) {
    return Status::Ok();
  }
  if (event.target == "machines") {
    if (!crash_machines_ || !restore_machines_) {
      return InvalidArgument("fault plan targets machines but no machine "
                                "hooks are installed");
    }
    return Status::Ok();
  }
  if (event.target == "pools") {
    if (!kill_pool_) {
      return InvalidArgument("fault plan targets pools but no pool hook "
                                "is installed");
    }
    return Status::Ok();
  }
  if (MatchServices(event.target).empty()) {
    return InvalidArgument("fault plan targets '" + event.target +
                              "' but no registered service matches");
  }
  return Status::Ok();
}

Status FaultInjector::Arm(const FaultPlan& plan) {
  for (const FaultEvent& event : plan.events) {
    if (Status status = CheckHooks(event); !status.ok()) return status;
  }
  for (const FaultEvent& event : plan.events) {
    switch (event.kind) {
      case FaultKind::kLoss:
        ArmLoss(event);
        break;
      case FaultKind::kLatency:
        ArmLatency(event);
        break;
      case FaultKind::kPartition:
        ArmPartition(event);
        break;
      case FaultKind::kCrash:
        ArmCrash(event);
        break;
      case FaultKind::kChurn:
        ArmChurn(event);
        break;
      case FaultKind::kSiteCrash:
        kernel_->ScheduleAt(event.start, [this, event] {
          CrashSite(event.site, event.downtime);
        });
        break;
      case FaultKind::kSiteRestore:
        kernel_->ScheduleAt(event.start,
                            [this, event] { RestoreSite(event.site); });
        break;
    }
  }
  return Status::Ok();
}

FaultInjector::SitePair FaultInjector::MakeSitePair(const FaultEvent& event) {
  return event.site_a <= event.site_b
             ? SitePair{event.site_a, event.site_b}
             : SitePair{event.site_b, event.site_a};
}

void FaultInjector::ArmLoss(const FaultEvent& event) {
  // Open windows stack: the most recently opened probability is in
  // force, closing one restores the next one down (or the base rate the
  // scenario configured, captured when the first window opens).
  const std::uint64_t id = next_window_id_++;
  kernel_->ScheduleAt(event.start, [this, event, id] {
    if (open_loss_.empty()) base_loss_ = network_->loss_probability();
    open_loss_.emplace_back(id, event.probability);
    network_->SetLossProbability(event.probability);
    ++stats_.loss_windows_opened;
    RecordFault(true, "loss window open p=" +
                          FormatProbability(event.probability));
  });
  if (event.end > event.start) {
    kernel_->ScheduleAt(event.end, [this, id] {
      std::erase_if(open_loss_,
                    [id](const auto& window) { return window.first == id; });
      network_->SetLossProbability(
          open_loss_.empty() ? base_loss_ : open_loss_.back().second);
      ++stats_.loss_windows_closed;
      RecordFault(false, "loss window close");
    });
  }
}

void FaultInjector::ArmLatency(const FaultEvent& event) {
  // Concurrent spikes on one site pair add up; each close subtracts its
  // own contribution, so an early end never cancels a still-open spike.
  const SitePair pair = MakeSitePair(event);
  kernel_->ScheduleAt(event.start, [this, event, pair] {
    open_latency_[pair] += event.extra_latency;
    network_->topology().SetLatencyPenalty(event.site_a, event.site_b,
                                           open_latency_[pair]);
    ++stats_.latency_spikes;
    RecordFault(true,
                "latency spike " + event.site_a + "-" + event.site_b);
  });
  if (event.end > event.start) {
    kernel_->ScheduleAt(event.end, [this, event, pair] {
      open_latency_[pair] -= event.extra_latency;
      network_->topology().SetLatencyPenalty(event.site_a, event.site_b,
                                             open_latency_[pair]);
      RecordFault(false,
                  "latency restore " + event.site_a + "-" + event.site_b);
    });
  }
}

void FaultInjector::ArmPartition(const FaultEvent& event) {
  // A pair heals only when every overlapping cut on it has healed.
  const SitePair pair = MakeSitePair(event);
  kernel_->ScheduleAt(event.start, [this, event, pair] {
    if (++open_partitions_[pair] == 1) {
      network_->topology().SetPartition(event.site_a, event.site_b, true);
    }
    ++stats_.partitions_cut;
    RecordFault(true,
                "partition cut " + event.site_a + "-" + event.site_b);
  });
  if (event.end > event.start) {
    kernel_->ScheduleAt(event.end, [this, event, pair] {
      if (--open_partitions_[pair] == 0) {
        network_->topology().SetPartition(event.site_a, event.site_b, false);
      }
      ++stats_.partitions_healed;
      RecordFault(false,
                  "partition heal " + event.site_a + "-" + event.site_b);
    });
  }
}

void FaultInjector::ArmCrash(const FaultEvent& event) {
  kernel_->ScheduleAt(event.start, [this, event] { Strike(event); });
}

void FaultInjector::ArmChurn(const FaultEvent& event) {
  const SimDuration interval = std::max<SimDuration>(
      Micros(1), Seconds(1.0 / event.rate_per_s));
  // First strike lands one interval after the window opens; each tick
  // re-arms the next, so the cadence is exact and fully deterministic.
  kernel_->ScheduleAt(event.start + interval,
                      [this, event, interval] { ChurnTick(event, interval); });
}

void FaultInjector::ChurnTick(const FaultEvent& event, SimDuration interval) {
  if (event.end != 0 && kernel_->Now() >= event.end) return;
  ++stats_.churn_ticks;
  Strike(event);
  kernel_->Schedule(interval,
                    [this, event, interval] { ChurnTick(event, interval); });
}

void FaultInjector::Strike(const FaultEvent& event) {
  if (event.target == "machines") {
    CrashMachines(event.count, event.downtime);
  } else if (event.target == "pools") {
    if (kill_pool_(rng_)) {
      ++stats_.pools_killed;
      RecordFault(true, "pool kill");
    }
  } else {
    // A one-shot crash takes down every matching service; churn picks
    // one victim per tick.
    CrashService(event.target, event.downtime,
                 /*pick_one=*/event.kind == FaultKind::kChurn);
  }
}

void FaultInjector::CrashMachines(std::size_t count, SimDuration downtime) {
  const std::vector<db::MachineId> victims = crash_machines_(count, rng_);
  if (victims.empty()) return;
  stats_.machines_crashed += victims.size();
  RecordFault(true,
              "machines crash n=" + std::to_string(victims.size()));
  if (downtime > 0) {
    kernel_->Schedule(downtime, [this, victims] {
      restore_machines_(victims);
      stats_.machines_restored += victims.size();
      RecordFault(false,
                  "machines restore n=" + std::to_string(victims.size()));
    });
  }
}

void FaultInjector::CrashService(const std::string& glob, SimDuration downtime,
                                 bool pick_one) {
  std::vector<std::string> up;
  for (const std::string& name : MatchServices(glob)) {
    if (!services_.at(name).down) up.push_back(name);
  }
  if (up.empty()) return;
  if (pick_one) {
    const std::string victim = up[rng_.NextBounded(up.size())];
    up = {victim};
  }
  for (const std::string& name : up) {
    Service& service = services_.at(name);
    service.down = true;
    service.crash();
    ++stats_.services_crashed;
    RecordFault(true, "service crash " + name);
    if (downtime > 0) {
      kernel_->Schedule(downtime, [this, name] {
        auto it = services_.find(name);
        if (it == services_.end() || !it->second.down) return;
        it->second.restart();
        it->second.down = false;
        ++stats_.services_restarted;
        RecordFault(false, "service restart " + name);
      });
    }
  }
}

void FaultInjector::CrashSite(const std::string& site, SimDuration downtime) {
  if (!site_down_machines_[site].empty() ||
      !site_down_services_[site].empty()) {
    return;  // the site is already dark; overlapping crashes do not stack
  }
  ++stats_.sites_crashed;
  RecordFault(true, "site crash " + site);
  std::vector<db::MachineId> victims = crash_site_machines_(site);
  stats_.machines_crashed += victims.size();
  site_down_machines_[site] = std::move(victims);
  auto& downed = site_down_services_[site];
  for (auto& [name, service] : services_) {
    if (service.site != site || service.down) continue;
    service.down = true;
    service.crash();
    ++stats_.services_crashed;
    downed.push_back(name);
  }
  if (downtime > 0) {
    kernel_->Schedule(downtime, [this, site] { RestoreSite(site); });
  }
}

void FaultInjector::RestoreSite(const std::string& site) {
  auto machines = site_down_machines_.find(site);
  auto downed = site_down_services_.find(site);
  const bool had_machines =
      machines != site_down_machines_.end() && !machines->second.empty();
  const bool had_services =
      downed != site_down_services_.end() && !downed->second.empty();
  if (!had_machines && !had_services) return;  // nothing to restore
  ++stats_.sites_restored;
  RecordFault(false, "site restore " + site);
  if (had_machines) {
    restore_machines_(machines->second);
    stats_.machines_restored += machines->second.size();
    machines->second.clear();
  }
  if (had_services) {
    for (const std::string& name : downed->second) {
      auto it = services_.find(name);
      if (it == services_.end() || !it->second.down) continue;
      it->second.restart();
      it->second.down = false;
      ++stats_.services_restarted;
    }
    downed->second.clear();
  }
}

std::vector<std::string> FaultInjector::MatchServices(
    const std::string& glob) const {
  std::vector<std::string> out;
  for (const auto& [name, service] : services_) {
    if (GlobMatch(glob, name)) out.push_back(name);
  }
  return out;
}

}  // namespace actyp::fault
