#include "baseline/scan_cache.hpp"

#include <vector>

namespace actyp::baseline {

std::size_t ScanCache::FullSweep() {
  mirror_.clear();
  database_->ForEach(
      [this](const db::MachineRecord& record) { mirror_[record.id] = record; });
  cursor_ = database_->version();
  primed_ = true;
  return mirror_.size();
}

std::size_t ScanCache::Refresh() {
  std::size_t refreshed = 0;
  if (!primed_) {
    refreshed = FullSweep();
  } else {
    std::vector<db::MachineId> dirty;
    const auto next = database_->ChangesSince(cursor_, &dirty);
    if (!next.has_value()) {
      // Cursor fell out of the journal window: resweep rather than
      // miss silently-compacted changes.
      refreshed = FullSweep();
    } else {
      cursor_ = *next;
      for (const db::MachineId id : dirty) {
        auto record = database_->Get(id);
        if (record.ok()) {
          mirror_[id] = std::move(record).value();
        } else {
          mirror_.erase(id);
        }
        ++refreshed;
      }
    }
  }
  entries_refreshed_ += refreshed;
  return refreshed;
}

}  // namespace actyp::baseline
