#include "baseline/matchmaker.hpp"

#include "common/strings.hpp"
#include "pipeline/protocol.hpp"
#include "query/parser.hpp"

namespace actyp::baseline {

Matchmaker::Matchmaker(MatchmakerConfig config, db::ResourceDatabase* database)
    : config_(std::move(config)), database_(database), cache_(database) {}

void Matchmaker::OnStart(net::NodeContext& ctx) {
  ctx.ScheduleSelf(config_.cycle_period, net::Message{net::msg::kTick});
}

void Matchmaker::OnMessage(const net::Envelope& envelope,
                           net::NodeContext& ctx) {
  const net::Message& message = envelope.message;
  if (message.type == net::msg::kQuery) {
    ++stats_.queries;
    queue_.push_back(envelope);
    return;
  }
  if (message.type == net::msg::kRelease) {
    const std::string session = message.Header(net::hdr::kSessionKey);
    auto it = session_machine_.find(session);
    if (it != session_machine_.end()) {
      auto job = jobs_.find(it->second);
      if (job != jobs_.end() && job->second > 0) --job->second;
      session_machine_.erase(it);
      ++stats_.releases;
    }
    return;
  }
  if (message.type == net::msg::kTick) {
    RunCycle(ctx);
    ctx.ScheduleSelf(config_.cycle_period, net::Message{net::msg::kTick});
  }
}

void Matchmaker::RunCycle(net::NodeContext& ctx) {
  ++stats_.cycles;
  // One refresh covers the whole cycle: every queued request matches
  // against the same mirror snapshot the live database shows right now
  // (in-cycle claims still update jobs_, which the rank consults).
  stats_.entries_refreshed += cache_.Refresh();
  while (!queue_.empty()) {
    const net::Envelope request = std::move(queue_.front());
    queue_.pop_front();

    const net::Message& message = request.message;
    const net::Address reply_to = message.Header(net::hdr::kReplyTo);
    std::uint64_t request_id = 0;
    if (auto rid = ParseInt(message.Header(net::hdr::kRequestId))) {
      request_id = static_cast<std::uint64_t>(*rid);
    }

    auto parsed = query::Parser::ParseBasic(message.body);
    if (!parsed.ok()) {
      ++stats_.unmatched;
      if (!reply_to.empty()) {
        ctx.Send(reply_to, pipeline::MakeFailureMessage(
                               request_id, parsed.status().ToString()));
      }
      continue;
    }
    const query::Query& q = parsed.value();

    std::size_t scanned = 0;
    bool found = false;
    db::MachineRecord best;
    double best_load = 0.0;
    cache_.ForEach([&](const db::MachineRecord& rec) {
      ++scanned;
      if (!rec.IsUsable()) return;
      if (!q.Matches([&rec](const std::string& name) {
            return rec.Attribute(name);
          })) {
        return;
      }
      auto it = jobs_.find(rec.id);
      const double load = rec.dyn.load + (it == jobs_.end() ? 0 : it->second);
      if (!found || load < best_load) {
        found = true;
        best = rec;
        best_load = load;
      }
    });
    ctx.Consume(config_.costs.pool_per_machine *
                static_cast<SimDuration>(scanned));

    if (!found) {
      ++stats_.unmatched;
      if (!reply_to.empty()) {
        ctx.Send(reply_to, pipeline::MakeFailureMessage(
                               request_id, "matchmaker: no match"));
      }
      continue;
    }

    jobs_[best.id] += 1;
    pipeline::Allocation allocation;
    allocation.machine_name = best.name;
    allocation.machine_id = best.id;
    allocation.port = best.execution_unit_port;
    allocation.session_key =
        config_.name + "-" + std::to_string(++session_seq_);
    allocation.pool_name = config_.name;
    allocation.pool_address = ctx.self();
    allocation.machine_load = best_load + 1.0;
    allocation.request_id = request_id;
    session_machine_[allocation.session_key] = best.id;
    ++stats_.matched;
    if (!reply_to.empty()) {
      ctx.Send(reply_to, pipeline::MakeAllocationMessage(allocation));
    }
  }
}

}  // namespace actyp::baseline
