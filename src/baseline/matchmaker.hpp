// Condor-style matchmaker baseline (§8): a centralized, cycle-driven
// matcher. Queries queue until the next negotiation cycle; each cycle
// scans the white pages for every queued request and replies with the
// best (rank = lowest load) match. This reproduces Condor's
// receiver-initiated, batch-matched behaviour — excellent throughput for
// long jobs, but a built-in half-cycle latency floor that ActYP's
// pipeline avoids for the short interactive jobs PUNCH serves (Fig. 9).
#pragma once

#include <deque>
#include <map>

#include "baseline/scan_cache.hpp"
#include "db/database.hpp"
#include "net/node.hpp"
#include "pipeline/cost_model.hpp"

namespace actyp::baseline {

struct MatchmakerConfig {
  std::string name = "matchmaker";
  SimDuration cycle_period = Seconds(5.0);  // negotiation interval
  pipeline::CostModel costs;
};

struct MatchmakerStats {
  std::uint64_t queries = 0;
  std::uint64_t matched = 0;
  std::uint64_t unmatched = 0;
  std::uint64_t cycles = 0;
  std::uint64_t releases = 0;
  // Mirror entries refreshed from the change journal (see ScanCache);
  // the matchmaker refreshes once per negotiation cycle, not per
  // queued request.
  std::uint64_t entries_refreshed = 0;
};

class Matchmaker final : public net::Node {
 public:
  Matchmaker(MatchmakerConfig config, db::ResourceDatabase* database);

  void OnStart(net::NodeContext& ctx) override;
  void OnMessage(const net::Envelope& envelope, net::NodeContext& ctx) override;

  [[nodiscard]] const MatchmakerStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

 private:
  void RunCycle(net::NodeContext& ctx);

  MatchmakerConfig config_;
  db::ResourceDatabase* database_;
  ScanCache cache_;
  std::deque<net::Envelope> queue_;
  std::map<db::MachineId, int> jobs_;
  std::map<std::string, db::MachineId> session_machine_;
  MatchmakerStats stats_;
  std::uint64_t session_seq_ = 0;
};

}  // namespace actyp::baseline
