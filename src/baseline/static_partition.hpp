// Static-aggregation baseline: a frontend routing queries to a FIXED set
// of pre-partitioned pools by a configured classification key. This is
// the "multiple submit queues" model of cluster management systems (§8)
// and the foil for the paper's second key claim: static aggregation is
// inadequate when the job mix shifts, because a pool sized for
// yesterday's mix becomes a hot spot under today's (the
// abl_dynamic_aggregation bench measures exactly this).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "net/node.hpp"
#include "pipeline/cost_model.hpp"

namespace actyp::baseline {

struct StaticPartitionConfig {
  std::string name = "static-frontend";
  // rsrc key whose value selects the partition (e.g. "cluster").
  std::string route_key = "cluster";
  // value -> pool address; queries whose value is missing or unknown go
  // to `fallback` (empty = fail).
  std::map<std::string, net::Address> routes;
  net::Address fallback;
  pipeline::CostModel costs;
};

struct StaticPartitionStats {
  std::uint64_t queries = 0;
  std::uint64_t routed = 0;
  std::uint64_t failures = 0;
};

class StaticPartitionFrontend final : public net::Node {
 public:
  explicit StaticPartitionFrontend(StaticPartitionConfig config);

  void OnMessage(const net::Envelope& envelope, net::NodeContext& ctx) override;

  [[nodiscard]] const StaticPartitionStats& stats() const { return stats_; }

 private:
  StaticPartitionConfig config_;
  StaticPartitionStats stats_;
};

}  // namespace actyp::baseline
