#include "baseline/central.hpp"

#include "common/strings.hpp"
#include "pipeline/protocol.hpp"
#include "query/parser.hpp"

namespace actyp::baseline {

CentralScheduler::CentralScheduler(CentralSchedulerConfig config,
                                   db::ResourceDatabase* database)
    : config_(std::move(config)), database_(database), cache_(database) {}

void CentralScheduler::OnMessage(const net::Envelope& envelope,
                                 net::NodeContext& ctx) {
  if (envelope.message.type == net::msg::kQuery) {
    HandleQuery(envelope, ctx);
  } else if (envelope.message.type == net::msg::kRelease) {
    HandleRelease(envelope, ctx);
  }
}

void CentralScheduler::HandleQuery(const net::Envelope& envelope,
                                   net::NodeContext& ctx) {
  ++stats_.queries;
  const net::Message& message = envelope.message;
  const net::Address reply_to = message.Header(net::hdr::kReplyTo);
  std::uint64_t request_id = 0;
  if (auto rid = ParseInt(message.Header(net::hdr::kRequestId))) {
    request_id = static_cast<std::uint64_t>(*rid);
  }

  auto parsed = query::Parser::ParseBasic(message.body);
  ctx.Consume(config_.costs.qm_translate);
  if (!parsed.ok()) {
    ++stats_.failures;
    if (!reply_to.empty()) {
      ctx.Send(reply_to,
               pipeline::MakeFailureMessage(request_id,
                                            parsed.status().ToString()));
    }
    return;
  }
  const query::Query& q = parsed.value();

  // Full scan of the white pages — the centralized scheduler pays the
  // whole database on every query, and is a single serialization point.
  // The scan runs over the journal-fed mirror: same records, same
  // ascending-id order (so identical decisions), but the refresh cost
  // is proportional to churn since the last query, not fleet size.
  stats_.entries_refreshed += cache_.Refresh();
  std::size_t scanned = 0;
  bool found = false;
  db::MachineRecord best;
  double best_load = 0.0;
  cache_.ForEach([&](const db::MachineRecord& rec) {
    ++scanned;
    if (!rec.IsUsable()) return;
    if (!q.Matches([&rec](const std::string& name) {
          return rec.Attribute(name);
        })) {
      return;
    }
    auto it = jobs_.find(rec.id);
    const double load =
        rec.dyn.load + (it == jobs_.end() ? 0 : it->second);
    const double ceiling =
        rec.max_allowed_load + static_cast<double>(rec.num_cpus) - 1.0;
    if (!config_.allow_oversubscribe && load >= ceiling) return;
    if (!found || load < best_load) {
      found = true;
      best = rec;
      best_load = load;
    }
  });
  ctx.Consume(config_.costs.pool_per_machine *
              static_cast<SimDuration>(scanned));

  if (!found) {
    ++stats_.failures;
    if (!reply_to.empty()) {
      ctx.Send(reply_to, pipeline::MakeFailureMessage(
                             request_id, "central: no machine matches"));
    }
    return;
  }

  jobs_[best.id] += 1;
  pipeline::Allocation allocation;
  allocation.machine_name = best.name;
  allocation.machine_id = best.id;
  allocation.port = best.execution_unit_port;
  allocation.session_key =
      config_.name + "-" + std::to_string(++session_seq_);
  allocation.pool_name = config_.name;
  allocation.pool_address = ctx.self();
  allocation.machine_load = best_load + 1.0;
  allocation.request_id = request_id;
  session_machine_[allocation.session_key] = best.id;
  ++stats_.allocations;
  if (!reply_to.empty()) {
    ctx.Send(reply_to, pipeline::MakeAllocationMessage(allocation));
  }
}

void CentralScheduler::HandleRelease(const net::Envelope& envelope,
                                     net::NodeContext& ctx) {
  ctx.Consume(config_.costs.pool_fixed / 2);
  const std::string session =
      envelope.message.Header(net::hdr::kSessionKey);
  auto it = session_machine_.find(session);
  if (it == session_machine_.end()) return;
  auto job = jobs_.find(it->second);
  if (job != jobs_.end() && job->second > 0) --job->second;
  session_machine_.erase(it);
  ++stats_.releases;
}

}  // namespace actyp::baseline
