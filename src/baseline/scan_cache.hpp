// ScanCache: a journal-fed mirror of the ResourceDatabase for the
// centralized baselines. The central scheduler and the matchmaker scan
// the whole white pages on every query (resp. every cycle); without a
// cache each scan re-reads the live database, so refresh cost is paid
// per record per scan even when nothing changed. The cache keeps a
// private copy of every record — claims, dynamic load, availability and
// all — and refreshes it from the database's change journal, so the
// per-scan refresh cost is proportional to churn instead of fleet size.
//
// The mirror iterates in ascending machine-id order, exactly like
// ResourceDatabase::ForEach, so first-found-wins tie-breaks (and thus
// every allocation decision) are unchanged from scanning the live
// database. When the journal window has been outgrown (cursor predates
// the retained entries) the cache falls back to a full sweep and
// re-cursors at the current version — correctness never depends on the
// journal's bounded capacity.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "db/database.hpp"

namespace actyp::baseline {

class ScanCache {
 public:
  explicit ScanCache(db::ResourceDatabase* database) : database_(database) {}

  // Brings the mirror up to date with the database and returns the
  // number of entries refreshed by this call (the full fleet on the
  // priming sweep or a journal-overflow resweep; otherwise just the
  // records the journal reported dirty, including deletions).
  std::size_t Refresh();

  // Iterates the mirrored records in ascending machine-id order.
  void ForEach(const std::function<void(const db::MachineRecord&)>& fn) const {
    for (const auto& [id, record] : mirror_) fn(record);
  }

  [[nodiscard]] std::size_t size() const { return mirror_.size(); }

  // Total entries refreshed across every Refresh() call.
  [[nodiscard]] std::uint64_t entries_refreshed() const {
    return entries_refreshed_;
  }

 private:
  // Replaces the mirror with a fresh copy of the whole database and
  // re-cursors at its current version. Returns the entry count.
  std::size_t FullSweep();

  db::ResourceDatabase* database_;
  bool primed_ = false;
  std::uint64_t cursor_ = 0;
  std::uint64_t entries_refreshed_ = 0;
  std::map<db::MachineId, db::MachineRecord> mirror_;
};

}  // namespace actyp::baseline
