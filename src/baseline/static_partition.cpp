#include "baseline/static_partition.hpp"

#include "common/strings.hpp"
#include "pipeline/protocol.hpp"
#include "query/parser.hpp"

namespace actyp::baseline {

StaticPartitionFrontend::StaticPartitionFrontend(StaticPartitionConfig config)
    : config_(std::move(config)) {}

void StaticPartitionFrontend::OnMessage(const net::Envelope& envelope,
                                        net::NodeContext& ctx) {
  const net::Message& message = envelope.message;
  if (message.type != net::msg::kQuery) return;
  ++stats_.queries;
  ctx.Consume(config_.costs.qm_translate);

  auto parsed = query::Parser::ParseBasic(message.body);
  net::Address target = config_.fallback;
  if (parsed.ok()) {
    if (auto cond = parsed->GetRsrc(config_.route_key)) {
      auto it = config_.routes.find(cond->value.text());
      if (it != config_.routes.end()) target = it->second;
    }
  }

  if (target.empty()) {
    ++stats_.failures;
    const net::Address reply_to = message.Header(net::hdr::kReplyTo);
    if (!reply_to.empty()) {
      std::uint64_t request_id = 0;
      if (auto rid = ParseInt(message.Header(net::hdr::kRequestId))) {
        request_id = static_cast<std::uint64_t>(*rid);
      }
      ctx.Send(reply_to, pipeline::MakeFailureMessage(
                             request_id, "static frontend: no route"));
    }
    return;
  }

  net::Message out{net::msg::kQuery};
  out.headers = message.headers;
  out.body = message.body;
  ctx.Send(target, std::move(out));
  ++stats_.routed;
}

}  // namespace actyp::baseline
