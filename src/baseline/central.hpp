// Centralized scheduler baseline: one node owning the whole white pages,
// scanning every machine per query (the cluster-management-system model
// of §8 — Grid Engine / PBS / DQS "typically utilize centralized
// schedulers"). Used by the baseline ablation benches as the contrast to
// the decentralized, pipelined ActYP.
#pragma once

#include <map>

#include "baseline/scan_cache.hpp"
#include "db/database.hpp"
#include "net/node.hpp"
#include "pipeline/cost_model.hpp"

namespace actyp::baseline {

struct CentralSchedulerConfig {
  std::string name = "central";
  // Per-machine scan cost; kept identical to the pool scan cost so the
  // comparison isolates the architecture, not the constants.
  pipeline::CostModel costs;
  bool allow_oversubscribe = true;
};

struct CentralStats {
  std::uint64_t queries = 0;
  std::uint64_t allocations = 0;
  std::uint64_t failures = 0;
  std::uint64_t releases = 0;
  // Mirror entries refreshed from the change journal across all scans
  // (see ScanCache) — the work the journal saves versus re-reading the
  // fleet per query shows as this staying far below queries * fleet.
  std::uint64_t entries_refreshed = 0;
};

class CentralScheduler final : public net::Node {
 public:
  CentralScheduler(CentralSchedulerConfig config,
                   db::ResourceDatabase* database);

  void OnMessage(const net::Envelope& envelope, net::NodeContext& ctx) override;

  [[nodiscard]] const CentralStats& stats() const { return stats_; }

 private:
  void HandleQuery(const net::Envelope& envelope, net::NodeContext& ctx);
  void HandleRelease(const net::Envelope& envelope, net::NodeContext& ctx);

  CentralSchedulerConfig config_;
  db::ResourceDatabase* database_;
  ScanCache cache_;
  // The scheduler's own view of placed jobs (machine id -> count).
  std::map<db::MachineId, int> jobs_;
  std::map<std::string, db::MachineId> session_machine_;
  CentralStats stats_;
  std::uint64_t session_seq_ = 0;
};

}  // namespace actyp::baseline
