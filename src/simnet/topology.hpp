// Network topology model: hosts belong to sites; messages between hosts
// pay a latency sampled from the link between their sites plus a
// bandwidth term. Calibrated defaults:
//   - intra-site (LAN): 150 us +/- 50 us, 100 Mbit/s
//   - inter-site (WAN): 30 ms +/- 5 ms one-way, 10 Mbit/s
// The WAN default approximates the paper's Purdue (US) <-> UPC (Spain)
// link circa 2001.
#pragma once

#include <map>
#include <set>
#include <string>
#include <unordered_map>

#include "common/rng.hpp"
#include "common/sim_time.hpp"

namespace actyp::simnet {

struct LinkSpec {
  SimDuration base_latency = 0;   // one-way
  SimDuration jitter = 0;         // uniform in [0, jitter]
  double bytes_per_us = 12.5;     // bandwidth (12.5 B/us = 100 Mbit/s)
};

class Topology {
 public:
  Topology();

  // Site management. Hosts default to site "local".
  void SetHostSite(const std::string& host, const std::string& site);
  [[nodiscard]] const std::string& SiteOf(const std::string& host) const;

  void SetIntraSiteLink(LinkSpec spec) { intra_site_ = spec; }
  void SetDefaultInterSiteLink(LinkSpec spec) { inter_site_ = spec; }
  // Directed override for a specific site pair (applied symmetrically).
  void SetLink(const std::string& site_a, const std::string& site_b,
               LinkSpec spec);

  // Samples the one-way latency for `bytes` from host a to host b.
  [[nodiscard]] SimDuration SampleLatency(const std::string& host_a,
                                          const std::string& host_b,
                                          std::size_t bytes, Rng& rng) const;

  // Lower bound on any latency SampleLatency can return between two
  // distinct sites: the link's base latency (jitter, bandwidth, and
  // penalties only add), floored at SampleLatency's 1 us minimum. This
  // is the LP scheduler's lookahead for the site pair.
  [[nodiscard]] SimDuration MinSiteLatency(const std::string& site_a,
                                           const std::string& site_b) const;

  // --- fault-injection hooks (driven by fault::FaultInjector) ---
  // Cuts (or heals) every link between two sites; "*" for either side
  // means every site. Messages across a cut link are dropped by the
  // network. Intra-host traffic is never partitioned.
  void SetPartition(const std::string& site_a, const std::string& site_b,
                    bool cut);
  [[nodiscard]] bool IsPartitioned(const std::string& host_a,
                                   const std::string& host_b) const;
  // Same check at site granularity (used by the directory-replica layer
  // to decide peer reachability without naming hosts).
  [[nodiscard]] bool IsSitePartitioned(const std::string& site_a,
                                       const std::string& site_b) const;

  // Adds `extra` one-way latency between two sites ("*" = every pair,
  // including intra-site). Setting 0 clears the penalty.
  void SetLatencyPenalty(const std::string& site_a, const std::string& site_b,
                         SimDuration extra);

  // Convenience factories used by benches.
  static Topology Lan();
  static Topology WanTwoSites(const std::string& client_site,
                              const std::string& server_site,
                              SimDuration one_way = Millis(30),
                              SimDuration jitter = Millis(5));

 private:
  [[nodiscard]] const LinkSpec& LinkBetween(const std::string& site_a,
                                            const std::string& site_b) const;
  // Canonical (sorted) key for the symmetric partition/penalty maps.
  [[nodiscard]] static std::pair<std::string, std::string> OrderedPair(
      const std::string& site_a, const std::string& site_b);

  LinkSpec intra_site_;
  LinkSpec inter_site_;
  std::unordered_map<std::string, std::string> host_site_;
  std::map<std::pair<std::string, std::string>, LinkSpec> links_;
  // Active faults: cut site pairs and per-pair extra latency (the "*"
  // wildcard is stored literally and matched in the lookup).
  std::set<std::pair<std::string, std::string>> partitions_;
  std::map<std::pair<std::string, std::string>, SimDuration> penalties_;
};

}  // namespace actyp::simnet
