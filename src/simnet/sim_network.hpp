// SimNetwork: the discrete-event implementation of net::Network.
//
// Model:
//   - Nodes live on hosts; a host has a fixed number of cores (the
//     paper's ActYP server was a 12-processor Alpha).
//   - A node processes messages FCFS with `placement.servers` concurrent
//     units; starting a unit of work also requires a free host core.
//   - Handler side effects (sends, self-schedules) take effect when the
//     declared service time (NodeContext::Consume) completes, so service
//     time and queueing delay compose exactly as in a queueing network.
//
// LP-parallel mode (EnableSharding): sites become logical processes,
// each with its own slab-backed kernel, RNG stream, and counters. Intra-
// site traffic stays on the owning shard's kernel; cross-site messages
// go through per-(source, destination) outboxes that RunShardedUntil
// merges between windows in a fixed (deliver_at, source rank, source
// sequence) total order. Shards execute under a conservative window
// protocol — safe horizon W = min over shards of (next event time +
// lookahead), lookahead = min outbound cross-site base latency — so a
// shard never receives a message with a timestamp it has already passed.
// Every draw and every tie-break is shard-local, which makes fixed-seed
// replay byte-identical for any worker count (1, 2, 4, ...).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "net/node.hpp"
#include "simnet/kernel.hpp"
#include "simnet/topology.hpp"

namespace actyp::obs {
class FlightRecorder;
}  // namespace actyp::obs

namespace actyp::simnet {

struct NodeStats {
  std::uint64_t messages = 0;
  SimDuration busy_time = 0;
  std::uint64_t max_queue = 0;
};

class SimNetwork final : public net::Network {
 public:
  SimNetwork(SimKernel* kernel, Topology topology, std::uint64_t seed = 42);
  ~SimNetwork() override;

  // Switches to LP-parallel mode with one shard per listed site. Shard 0
  // reuses the primary kernel; the rest own private kernels. Must be
  // called before any AddHost/AddNode; hosts whose site is not listed
  // land on shard 0. Sharding is a property of the *scenario*, not of
  // the worker count: a sharded network replays identically whether
  // RunShardedUntil gets 1 worker or many.
  void EnableSharding(const std::vector<std::string>& sites);
  [[nodiscard]] bool sharded() const { return shards_.size() > 1; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  // Declares a host with `cores` processors. Nodes placed on undeclared
  // hosts get an implicit single-core host.
  void AddHost(const std::string& name, int cores,
               const std::string& site = "local");

  Status AddNode(const net::Address& address, std::shared_ptr<net::Node> node,
                 const net::NodePlacement& placement) override;
  Status RemoveNode(const net::Address& address) override;
  [[nodiscard]] bool HasNode(const net::Address& address) const override;

  void Post(const net::Address& from, const net::Address& to,
            net::Message message) override;

  // Conservative-window execution of a sharded network up to `until`
  // (inclusive, like SimKernel::RunUntil). Each round merges the cross-
  // shard outboxes, computes the safe horizon, and runs every shard's
  // sub-window — on `pool` when given (one task per shard, barrier via
  // Drain), inline otherwise. Returns events executed. Also valid on an
  // unsharded network, where it degenerates to kernel().RunUntil.
  std::size_t RunShardedUntil(SimTime until, ThreadPool* pool = nullptr);

  // Events executed across every shard kernel (== kernel().executed()
  // when unsharded).
  [[nodiscard]] std::uint64_t total_executed() const;

  [[nodiscard]] SimKernel& kernel() { return *kernel_; }
  [[nodiscard]] Topology& topology() { return topology_; }

  [[nodiscard]] NodeStats StatsFor(const net::Address& address) const;
  [[nodiscard]] std::uint64_t dropped_messages() const;

  // Fault injection: every Post between *distinct* nodes is lost with
  // this probability (self-messages/timers are never dropped — they
  // model local state, not the network).
  void SetLossProbability(double p) { loss_probability_ = p; }
  [[nodiscard]] double loss_probability() const { return loss_probability_; }
  [[nodiscard]] std::uint64_t lost_messages() const;
  // Messages dropped on a cut site pair (Topology::SetPartition).
  [[nodiscard]] std::uint64_t partition_dropped() const;

  // Attaches a flight recorder to `shard` (not owned; must outlive the
  // network). Each shard records only from its own execution, so the
  // recorders need no locking; null detaches. Recording draws nothing
  // and consumes nothing — attaching is invisible to the simulation.
  void SetFlightRecorder(std::size_t shard, obs::FlightRecorder* recorder);

  // Telemetry gauges, summed across shards/hosts/nodes. Deterministic
  // reads (no draws, no consumption); call only between run windows.
  [[nodiscard]] std::uint64_t pending_events() const;
  [[nodiscard]] std::uint64_t queued_messages() const;
  [[nodiscard]] std::uint64_t busy_cores() const;

 private:
  struct NodeRuntime;

  struct Host {
    std::string name;
    int cores = 1;
    int busy = 0;
    std::uint32_t shard = 0;
    std::vector<std::string> node_addresses;
    // Nodes with queued work that could not start because every core was
    // busy, in blocking order. Freed cores go to these nodes directly
    // instead of polling every node on the host.
    std::deque<std::shared_ptr<NodeRuntime>> waiting;
  };

  struct NodeRuntime {
    net::Address address;
    std::shared_ptr<net::Node> node;
    net::NodePlacement placement;
    Host* host = nullptr;
    std::deque<net::Envelope> pending;
    int busy = 0;
    bool removed = false;
    bool in_wait_queue = false;
    Rng rng;
    NodeStats stats;
    // Outstanding self-scheduled timers: node-level id -> kernel timer.
    // RemoveNode cancels them all, so a crashed service's periodic ticks
    // and give-up timers vanish instead of delivering to its successor.
    std::unordered_map<net::TimerId, SimKernel::TimerId> timers;
  };

  // A message crossing shards, parked in the sender's outbox until the
  // next inter-window merge. `seq` is the sender's append order — the
  // final tie-break of the deterministic merge.
  struct CrossShardMessage {
    SimTime deliver_at = 0;
    std::uint64_t seq = 0;
    net::Envelope envelope;
  };

  // One logical process: a site's kernel, RNG stream, and counters.
  // Everything here is touched only by the shard's own execution (or
  // between windows, single-threaded), so shards share no mutable state.
  struct Shard {
    SimKernel* kernel = nullptr;         // shard 0 aliases kernel_
    std::unique_ptr<SimKernel> owned;    // shards 1..K-1
    std::string site;
    Rng rng;                             // loss + latency draws
    net::TimerId next_timer_id = 1;
    std::uint64_t out_seq = 0;
    SimDuration lookahead = Micros(1);
    std::uint64_t dropped = 0;
    std::uint64_t lost = 0;
    std::uint64_t partition_dropped = 0;
    std::vector<std::vector<CrossShardMessage>> outbox;  // per dest shard
    // Optional flight recorder (not owned); written only from this
    // shard's execution.
    obs::FlightRecorder* recorder = nullptr;
  };

  class Context;
  struct Effects;

  Host* GetOrCreateHost(const std::string& name);
  [[nodiscard]] std::uint32_t ShardOfSite(const std::string& site) const;
  void Deliver(net::Envelope envelope);
  void TryDispatch(const std::shared_ptr<NodeRuntime>& runtime);
  void WakeHost(Host* host);
  // Applies a handler's buffered sends/timer ops at completion time.
  void ApplyEffects(const std::shared_ptr<NodeRuntime>& runtime,
                    Effects effects);
  // Moves every outbox message into its destination kernel, merged per
  // destination in (deliver_at, source rank, source seq) order. Single-
  // threaded: runs only between windows.
  void DrainMailboxes();
  void RefreshLookahead();

  SimKernel* kernel_;
  Topology topology_;
  Rng seeder_;
  // shards_[0] always exists and aliases kernel_/seeder_-driven serial
  // behavior; EnableSharding appends the rest.
  std::vector<Shard> shards_;
  std::unordered_map<std::string, std::uint32_t> site_shard_;
  std::map<std::string, std::unique_ptr<Host>> hosts_;
  // Looked up per message delivery; no ordered iteration anywhere.
  std::unordered_map<net::Address, std::shared_ptr<NodeRuntime>> nodes_;
  std::unordered_map<net::Address, std::string> node_host_;  // survives removal
  double loss_probability_ = 0.0;
  // Scratch for DrainMailboxes, reused across rounds.
  std::vector<CrossShardMessage> merge_scratch_;
};

}  // namespace actyp::simnet
