// SimNetwork: the discrete-event implementation of net::Network.
//
// Model:
//   - Nodes live on hosts; a host has a fixed number of cores (the
//     paper's ActYP server was a 12-processor Alpha).
//   - A node processes messages FCFS with `placement.servers` concurrent
//     units; starting a unit of work also requires a free host core.
//   - Handler side effects (sends, self-schedules) take effect when the
//     declared service time (NodeContext::Consume) completes, so service
//     time and queueing delay compose exactly as in a queueing network.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "net/node.hpp"
#include "simnet/kernel.hpp"
#include "simnet/topology.hpp"

namespace actyp::simnet {

struct NodeStats {
  std::uint64_t messages = 0;
  SimDuration busy_time = 0;
  std::uint64_t max_queue = 0;
};

class SimNetwork final : public net::Network {
 public:
  SimNetwork(SimKernel* kernel, Topology topology, std::uint64_t seed = 42);
  ~SimNetwork() override;

  // Declares a host with `cores` processors. Nodes placed on undeclared
  // hosts get an implicit single-core host.
  void AddHost(const std::string& name, int cores,
               const std::string& site = "local");

  Status AddNode(const net::Address& address, std::shared_ptr<net::Node> node,
                 const net::NodePlacement& placement) override;
  Status RemoveNode(const net::Address& address) override;
  [[nodiscard]] bool HasNode(const net::Address& address) const override;

  void Post(const net::Address& from, const net::Address& to,
            net::Message message) override;

  [[nodiscard]] SimKernel& kernel() { return *kernel_; }
  [[nodiscard]] Topology& topology() { return topology_; }

  [[nodiscard]] NodeStats StatsFor(const net::Address& address) const;
  [[nodiscard]] std::uint64_t dropped_messages() const { return dropped_; }

  // Fault injection: every Post between *distinct* nodes is lost with
  // this probability (self-messages/timers are never dropped — they
  // model local state, not the network).
  void SetLossProbability(double p) { loss_probability_ = p; }
  [[nodiscard]] double loss_probability() const { return loss_probability_; }
  [[nodiscard]] std::uint64_t lost_messages() const { return lost_; }
  // Messages dropped on a cut site pair (Topology::SetPartition).
  [[nodiscard]] std::uint64_t partition_dropped() const {
    return partition_dropped_;
  }

 private:
  struct NodeRuntime;

  struct Host {
    std::string name;
    int cores = 1;
    int busy = 0;
    std::vector<std::string> node_addresses;
    // Nodes with queued work that could not start because every core was
    // busy, in blocking order. Freed cores go to these nodes directly
    // instead of polling every node on the host.
    std::deque<std::shared_ptr<NodeRuntime>> waiting;
  };

  struct NodeRuntime {
    net::Address address;
    std::shared_ptr<net::Node> node;
    net::NodePlacement placement;
    Host* host = nullptr;
    std::deque<net::Envelope> pending;
    int busy = 0;
    bool removed = false;
    bool in_wait_queue = false;
    Rng rng;
    NodeStats stats;
    // Outstanding self-scheduled timers: node-level id -> kernel timer.
    // RemoveNode cancels them all, so a crashed service's periodic ticks
    // and give-up timers vanish instead of delivering to its successor.
    std::unordered_map<net::TimerId, SimKernel::TimerId> timers;
  };

  class Context;
  struct Effects;

  Host* GetOrCreateHost(const std::string& name);
  void Deliver(net::Envelope envelope);
  void TryDispatch(const std::shared_ptr<NodeRuntime>& runtime);
  void WakeHost(Host* host);
  // Applies a handler's buffered sends/timer ops at completion time.
  void ApplyEffects(const std::shared_ptr<NodeRuntime>& runtime,
                    Effects effects);

  SimKernel* kernel_;
  Topology topology_;
  Rng seeder_;
  net::TimerId next_timer_id_ = 1;
  std::map<std::string, std::unique_ptr<Host>> hosts_;
  // Looked up per message delivery; no ordered iteration anywhere.
  std::unordered_map<net::Address, std::shared_ptr<NodeRuntime>> nodes_;
  std::unordered_map<net::Address, std::string> node_host_;  // survives removal
  std::uint64_t dropped_ = 0;
  double loss_probability_ = 0.0;
  std::uint64_t lost_ = 0;
  std::uint64_t partition_dropped_ = 0;
};

}  // namespace actyp::simnet
