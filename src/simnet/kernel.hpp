// Discrete-event simulation kernel: a time-ordered event queue with a
// deterministic tie-break (insertion order). All figure-reproduction
// benchmarks run on this kernel, replacing the paper's physical testbed
// (UltraSPARC clients + 12-CPU Alpha server across a LAN/WAN).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.hpp"
#include "common/sim_time.hpp"

namespace actyp::simnet {

class SimKernel {
 public:
  SimKernel() = default;

  [[nodiscard]] SimTime Now() const { return now_; }
  [[nodiscard]] const Clock& clock() const { return clock_adapter_; }

  // Schedules `fn` to run `delay` microseconds from now (>= 0).
  void Schedule(SimDuration delay, std::function<void()> fn);
  void ScheduleAt(SimTime at, std::function<void()> fn);

  // Executes the next event; returns false when the queue is empty.
  bool Step();

  // Runs until the queue is empty or `max_events` fired; returns the
  // number of events executed.
  std::size_t Run(std::size_t max_events = SIZE_MAX);

  // Runs events with timestamp <= until; the clock ends at `until` even
  // if fewer events exist.
  std::size_t RunUntil(SimTime until);

  [[nodiscard]] bool Empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t pending() const { return events_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  class ClockAdapter final : public Clock {
   public:
    explicit ClockAdapter(const SimKernel* kernel) : kernel_(kernel) {}
    [[nodiscard]] SimTime Now() const override { return kernel_->now_; }

   private:
    const SimKernel* kernel_;
  };

  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> events_;
  ClockAdapter clock_adapter_{this};
};

}  // namespace actyp::simnet
