// Discrete-event simulation kernel: a time-ordered event queue with a
// deterministic tie-break (insertion order). All figure-reproduction
// benchmarks run on this kernel, replacing the paper's physical testbed
// (UltraSPARC clients + 12-CPU Alpha server across a LAN/WAN).
//
// Storage is a slab of event slots indexed by a 4-ary heap: scheduling
// reuses freed slots instead of growing a binary heap of fat elements,
// pops are O(log4 n), and every scheduled event returns a TimerId that
// can cancel it in O(log4 n) before it fires. Cancellation is what lets
// pool re-sort ticks, injector churn timers, and client give-up timers
// disappear from the queue when their owner dies, instead of firing as
// dead no-op events.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/clock.hpp"
#include "common/sim_time.hpp"

namespace actyp::simnet {

class SimKernel {
 public:
  // Handle for a scheduled event; kInvalidTimer (0) is never issued.
  // Ids embed a slot generation, so a handle kept past its event firing
  // (or cancellation) can never cancel an unrelated reused slot.
  using TimerId = std::uint64_t;
  static constexpr TimerId kInvalidTimer = 0;

  SimKernel() = default;

  [[nodiscard]] SimTime Now() const { return now_; }
  [[nodiscard]] const Clock& clock() const { return clock_adapter_; }

  // Schedules `fn` to run `delay` microseconds from now (>= 0).
  TimerId Schedule(SimDuration delay, std::function<void()> fn);
  TimerId ScheduleAt(SimTime at, std::function<void()> fn);

  // Removes a pending event before it fires. Returns false when the
  // handle is stale: the event already fired or was already cancelled.
  bool Cancel(TimerId id);

  // Pre-sizes the slab and heap for an expected number of concurrently
  // pending events (bulk schedule without reallocation).
  void Reserve(std::size_t events);

  // Executes the next event; returns false when the queue is empty.
  bool Step();

  // Runs until the queue is empty or `max_events` fired; returns the
  // number of events executed.
  std::size_t Run(std::size_t max_events = SIZE_MAX);

  // Runs events with timestamp <= until; the clock ends at `until` even
  // if fewer events exist.
  std::size_t RunUntil(SimTime until);

  // --- LP-parallel support (conservative time windows) ---
  // Timestamp of the earliest pending event; kNoEvent when the queue is
  // empty. The LP scheduler uses this as the shard's floor when deriving
  // the safe execution horizon.
  static constexpr SimTime kNoEvent = INT64_MAX;
  [[nodiscard]] SimTime NextEventTime() const {
    return heap_.empty() ? kNoEvent : heap_[0].at;
  }

  // Runs events with timestamp strictly < bound. Unlike RunUntil the
  // clock is left at the last executed event: the LP scheduler advances
  // it explicitly (AdvanceTo) once the whole window is committed, so a
  // late cross-shard delivery inside the window can still be scheduled.
  std::size_t RunBefore(SimTime bound);

  // Advances the clock without executing anything (never backwards).
  void AdvanceTo(SimTime t) {
    if (now_ < t) now_ = t;
  }

  [[nodiscard]] bool Empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }
  [[nodiscard]] std::uint64_t cancelled() const { return cancelled_; }
  // Every event ever scheduled. `executed + cancelled + pending ==
  // scheduled` is the timer-conservation identity the chaos invariant
  // checker audits at teardown.
  [[nodiscard]] std::uint64_t scheduled() const { return seq_; }

 private:
  struct Slot {
    std::uint32_t generation = 1;  // bumped on free; stale-id detection
    std::function<void()> fn;
  };

  // Heap entries carry the ordering key, so sift comparisons walk the
  // contiguous heap array without dereferencing the slab.
  struct HeapEntry {
    SimTime at;
    std::uint64_t seq;  // insertion order, the tie-break
    std::uint32_t slot;

    // (at, seq) total order: no two events compare equal.
    [[nodiscard]] bool Earlier(const HeapEntry& other) const {
      return at != other.at ? at < other.at : seq < other.seq;
    }
  };

  class ClockAdapter final : public Clock {
   public:
    explicit ClockAdapter(const SimKernel* kernel) : kernel_(kernel) {}
    [[nodiscard]] SimTime Now() const override { return kernel_->now_; }

   private:
    const SimKernel* kernel_;
  };

  void Place(std::size_t pos, const HeapEntry& entry) {
    heap_[pos] = entry;
    slot_pos_[entry.slot] = static_cast<std::uint32_t>(pos);
  }
  void SiftUp(std::size_t pos);
  void SiftDown(std::size_t pos);
  void RemoveAt(std::size_t pos);
  void FreeSlot(std::uint32_t slot);

  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::vector<Slot> slots_;          // slab; index = low 32 bits of TimerId
  // Heap position per slot, parallel to slots_: kept out of Slot so the
  // sift loops' position writes stay in a dense array instead of
  // dirtying the cache lines holding the callbacks.
  std::vector<std::uint32_t> slot_pos_;
  std::vector<std::uint32_t> free_;  // free slot indices
  std::vector<HeapEntry> heap_;      // 4-ary min-heap
  ClockAdapter clock_adapter_{this};
};

}  // namespace actyp::simnet
