#include "simnet/kernel.hpp"

#include <cassert>

namespace actyp::simnet {

void SimKernel::Schedule(SimDuration delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  ScheduleAt(now_ + delay, std::move(fn));
}

void SimKernel::ScheduleAt(SimTime at, std::function<void()> fn) {
  assert(at >= now_ && "cannot schedule into the past");
  events_.push(Event{at, seq_++, std::move(fn)});
}

bool SimKernel::Step() {
  if (events_.empty()) return false;
  // priority_queue::top is const; move out via const_cast on the
  // function only (the event is popped immediately after).
  Event event = std::move(const_cast<Event&>(events_.top()));
  events_.pop();
  now_ = event.at;
  ++executed_;
  event.fn();
  return true;
}

std::size_t SimKernel::Run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && Step()) ++n;
  return n;
}

std::size_t SimKernel::RunUntil(SimTime until) {
  std::size_t n = 0;
  while (!events_.empty() && events_.top().at <= until) {
    Step();
    ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

}  // namespace actyp::simnet
