#include "simnet/kernel.hpp"

#include <cassert>
#include <utility>

namespace actyp::simnet {
namespace {

constexpr std::uint32_t kArity = 4;

constexpr SimKernel::TimerId MakeTimerId(std::uint32_t slot,
                                         std::uint32_t generation) {
  return (static_cast<std::uint64_t>(generation) << 32) | slot;
}

}  // namespace

SimKernel::TimerId SimKernel::Schedule(SimDuration delay,
                                       std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return ScheduleAt(now_ + delay, std::move(fn));
}

SimKernel::TimerId SimKernel::ScheduleAt(SimTime at, std::function<void()> fn) {
  assert(at >= now_ && "cannot schedule into the past");
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    slot_pos_.push_back(0);
  }
  slots_[slot].fn = std::move(fn);
  heap_.push_back(HeapEntry{at, seq_++, slot});
  slot_pos_[slot] = static_cast<std::uint32_t>(heap_.size() - 1);
  SiftUp(heap_.size() - 1);
  return MakeTimerId(slot, slots_[slot].generation);
}

bool SimKernel::Cancel(TimerId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (id == kInvalidTimer || slot >= slots_.size() ||
      slots_[slot].generation != generation) {
    return false;  // stale: fired, cancelled, or never issued
  }
  RemoveAt(slot_pos_[slot]);
  ++cancelled_;
  return true;
}

void SimKernel::Reserve(std::size_t events) {
  slots_.reserve(events);
  slot_pos_.reserve(events);
  heap_.reserve(events);
  free_.reserve(events);
}

void SimKernel::SiftUp(std::size_t pos) {
  const HeapEntry entry = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / kArity;
    if (!entry.Earlier(heap_[parent])) break;
    Place(pos, heap_[parent]);
    pos = parent;
  }
  Place(pos, entry);
}

void SimKernel::SiftDown(std::size_t pos) {
  const HeapEntry entry = heap_[pos];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first_child = pos * kArity + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + kArity, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (heap_[c].Earlier(heap_[best])) best = c;
    }
    if (!heap_[best].Earlier(entry)) break;
    Place(pos, heap_[best]);
    pos = best;
  }
  Place(pos, entry);
}

void SimKernel::RemoveAt(std::size_t pos) {
  FreeSlot(heap_[pos].slot);
  const HeapEntry moved = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (pos == n) return;
  if (pos == 0) {
    // Pop fast path (bottom-up heap repair): walk the hole down along
    // minimal children without comparing against the tail entry — the
    // tail almost always belongs near a leaf, so the final SiftUp is
    // nearly free and each level costs only the min-of-children scan.
    for (;;) {
      const std::size_t first_child = pos * kArity + 1;
      if (first_child >= n) break;
      const std::size_t last_child = std::min(first_child + kArity, n);
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (heap_[c].Earlier(heap_[best])) best = c;
      }
      Place(pos, heap_[best]);
      pos = best;
    }
    Place(pos, moved);
    SiftUp(pos);
    return;
  }
  Place(pos, moved);
  // The swapped-in tail can violate either direction relative to `pos`.
  SiftUp(pos);
  SiftDown(slot_pos_[moved.slot]);
}

void SimKernel::FreeSlot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = nullptr;
  ++s.generation;  // invalidates every outstanding TimerId for the slot
  free_.push_back(slot);
}

bool SimKernel::Step() {
  if (heap_.empty()) return false;
  const std::uint32_t slot = heap_[0].slot;
  now_ = heap_[0].at;
  std::function<void()> fn = std::move(slots_[slot].fn);
  RemoveAt(0);  // frees the slot before fn runs, so fn may reuse it
  ++executed_;
  fn();
  return true;
}

std::size_t SimKernel::Run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && Step()) ++n;
  return n;
}

std::size_t SimKernel::RunUntil(SimTime until) {
  std::size_t n = 0;
  while (!heap_.empty() && heap_[0].at <= until) {
    Step();
    ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

std::size_t SimKernel::RunBefore(SimTime bound) {
  std::size_t n = 0;
  while (!heap_.empty() && heap_[0].at < bound) {
    Step();
    ++n;
  }
  return n;
}

}  // namespace actyp::simnet
