#include "simnet/sim_network.hpp"

#include <algorithm>
#include <cassert>

#include "common/logging.hpp"

namespace actyp::simnet {

// Collects the effects of one handler invocation; they are applied when
// the declared service time elapses. The context itself lives on the
// stack of the dispatching frame — the buffered effects are moved into
// the completion event, so no per-dispatch heap allocation is needed
// for the context.
struct SimNetwork::Effects {
  SimDuration consumed = 0;
  std::vector<std::pair<net::Address, net::Message>> sends;
  struct SelfTimer {
    SimDuration delay;
    net::TimerId id;
    net::Message message;
  };
  std::vector<SelfTimer> self_schedules;
};

class SimNetwork::Context final : public net::NodeContext {
 public:
  Context(SimNetwork* network, NodeRuntime* runtime)
      : network_(network), runtime_(runtime) {}

  [[nodiscard]] SimTime Now() const override {
    return network_->kernel_->Now();
  }

  void Send(const net::Address& to, net::Message message) override {
    effects_.sends.push_back({to, std::move(message)});
  }

  void Consume(SimDuration duration) override {
    if (duration > 0) effects_.consumed += duration;
  }

  [[nodiscard]] SimDuration Consumed() const override {
    return effects_.consumed;
  }

  net::TimerId ScheduleSelf(SimDuration delay, net::Message message) override {
    const net::TimerId id = network_->next_timer_id_++;
    effects_.self_schedules.push_back({delay, id, std::move(message)});
    return id;
  }

  bool CancelSelf(net::TimerId id) override {
    // Unlike sends, cancellation takes effect immediately rather than
    // at service completion: a timer whose deadline falls inside the
    // current service window must not deliver once cancelled (the
    // node.hpp contract). Timers armed by an earlier invocation are
    // removed from the kernel; one buffered in this very invocation is
    // simply dropped before it ever arms.
    auto it = runtime_->timers.find(id);
    if (it != runtime_->timers.end()) {
      network_->kernel_->Cancel(it->second);
      runtime_->timers.erase(it);
      return true;
    }
    for (auto timer = effects_.self_schedules.begin();
         timer != effects_.self_schedules.end(); ++timer) {
      if (timer->id == id) {
        effects_.self_schedules.erase(timer);
        return true;
      }
    }
    return false;
  }

  Rng& rng() override { return runtime_->rng; }

  [[nodiscard]] const net::Address& self() const override {
    return runtime_->address;
  }

  [[nodiscard]] SimDuration consumed() const { return effects_.consumed; }
  [[nodiscard]] Effects TakeEffects() { return std::move(effects_); }

 private:
  SimNetwork* network_;
  NodeRuntime* runtime_;
  Effects effects_;
};

SimNetwork::SimNetwork(SimKernel* kernel, Topology topology,
                       std::uint64_t seed)
    : kernel_(kernel), topology_(std::move(topology)), seeder_(seed) {}

SimNetwork::~SimNetwork() = default;

void SimNetwork::AddHost(const std::string& name, int cores,
                         const std::string& site) {
  auto host = std::make_unique<Host>();
  host->name = name;
  host->cores = std::max(1, cores);
  hosts_[name] = std::move(host);
  topology_.SetHostSite(name, site);
}

SimNetwork::Host* SimNetwork::GetOrCreateHost(const std::string& name) {
  auto it = hosts_.find(name);
  if (it != hosts_.end()) return it->second.get();
  auto host = std::make_unique<Host>();
  host->name = name;
  host->cores = 1;
  Host* raw = host.get();
  hosts_[name] = std::move(host);
  return raw;
}

Status SimNetwork::AddNode(const net::Address& address,
                           std::shared_ptr<net::Node> node,
                           const net::NodePlacement& placement) {
  if (nodes_.count(address)) return AlreadyExists("node '" + address + "'");
  auto runtime = std::make_shared<NodeRuntime>();
  runtime->address = address;
  runtime->node = std::move(node);
  runtime->placement = placement;
  runtime->placement.servers = std::max(1, placement.servers);
  runtime->host = GetOrCreateHost(placement.host);
  runtime->rng = seeder_.Fork();
  runtime->host->node_addresses.push_back(address);
  nodes_[address] = runtime;
  node_host_[address] = placement.host;

  // OnStart effects are immediate (registration-time setup costs are not
  // part of query response time).
  Context ctx(this, runtime.get());
  runtime->node->OnStart(ctx);
  ApplyEffects(runtime, ctx.TakeEffects());
  return Status::Ok();
}

Status SimNetwork::RemoveNode(const net::Address& address) {
  auto it = nodes_.find(address);
  if (it == nodes_.end()) return NotFound("node '" + address + "'");
  it->second->removed = true;  // in-flight completions check this flag
  // A removed node's pending self-timers die with it: its periodic
  // ticks and give-up timers must not deliver to a later node reusing
  // the address (the restarted service arms its own timers in OnStart).
  for (const auto& [id, kernel_id] : it->second->timers) {
    kernel_->Cancel(kernel_id);
  }
  it->second->timers.clear();
  auto& addresses = it->second->host->node_addresses;
  addresses.erase(std::remove(addresses.begin(), addresses.end(), address),
                  addresses.end());
  nodes_.erase(it);
  return Status::Ok();
}

bool SimNetwork::HasNode(const net::Address& address) const {
  return nodes_.count(address) > 0;
}

void SimNetwork::Post(const net::Address& from, const net::Address& to,
                      net::Message message) {
  if (loss_probability_ > 0.0 && from != to &&
      seeder_.Bernoulli(loss_probability_)) {
    ++lost_;
    return;
  }
  const auto from_host_it = node_host_.find(from);
  const auto to_host_it = node_host_.find(to);
  const std::string from_host =
      from_host_it == node_host_.end() ? "external" : from_host_it->second;
  const std::string to_host =
      to_host_it == node_host_.end() ? to : to_host_it->second;

  if (topology_.IsPartitioned(from_host, to_host)) {
    ++partition_dropped_;
    return;
  }

  const SimDuration latency = topology_.SampleLatency(
      from_host, to_host, message.WireSize(), seeder_);
  net::Envelope env{from, to, std::move(message), kernel_->Now()};
  kernel_->Schedule(latency, [this, env = std::move(env)]() mutable {
    Deliver(std::move(env));
  });
}

void SimNetwork::Deliver(net::Envelope envelope) {
  auto it = nodes_.find(envelope.to);
  if (it == nodes_.end()) {
    ++dropped_;
    ACTYP_DEBUG << "sim: dropping message type '" << envelope.message.type
                << "' to unknown node '" << envelope.to << "'";
    return;
  }
  auto runtime = it->second;
  runtime->pending.push_back(std::move(envelope));
  runtime->stats.max_queue =
      std::max<std::uint64_t>(runtime->stats.max_queue,
                              runtime->pending.size());
  TryDispatch(runtime);
}

void SimNetwork::TryDispatch(const std::shared_ptr<NodeRuntime>& runtime) {
  // A node stalled only by the host core limit parks itself on the
  // host's wait queue; WakeHost hands freed cores to parked nodes in
  // blocking order instead of polling every node on the host.
  const auto park_if_core_starved = [this, &runtime] {
    if (!runtime->removed && !runtime->in_wait_queue &&
        !runtime->pending.empty() &&
        runtime->busy < runtime->placement.servers &&
        runtime->host->busy >= runtime->host->cores) {
      runtime->in_wait_queue = true;
      runtime->host->waiting.push_back(runtime);
    }
  };
  while (!runtime->removed && !runtime->pending.empty() &&
         runtime->busy < runtime->placement.servers &&
         runtime->host->busy < runtime->host->cores) {
    net::Envelope envelope = std::move(runtime->pending.front());
    runtime->pending.pop_front();
    ++runtime->busy;
    ++runtime->host->busy;
    ++runtime->stats.messages;

    // Run the handler logic now (state transitions happen at start of
    // service); effects release at completion.
    Context ctx(this, runtime.get());
    runtime->node->OnMessage(envelope, ctx);
    const SimDuration service = ctx.consumed();
    runtime->stats.busy_time += service;

    Host* host = runtime->host;
    kernel_->Schedule(
        service, [this, runtime, host, effects = ctx.TakeEffects()]() mutable {
          --runtime->busy;
          --host->busy;
          ApplyEffects(runtime, std::move(effects));
          TryDispatch(runtime);
          WakeHost(host);
        });
  }
  park_if_core_starved();
}

void SimNetwork::ApplyEffects(const std::shared_ptr<NodeRuntime>& runtime,
                              Effects effects) {
  for (auto& [to, message] : effects.sends) {
    Post(runtime->address, to, std::move(message));
  }
  for (auto& timer : effects.self_schedules) {
    if (runtime->removed) break;  // a dead node arms no new timers
    net::Envelope env{runtime->address, runtime->address,
                      std::move(timer.message), kernel_->Now()};
    const SimKernel::TimerId kernel_id = kernel_->Schedule(
        timer.delay,
        [this, runtime, id = timer.id, env = std::move(env)]() mutable {
          runtime->timers.erase(id);
          Deliver(std::move(env));
        });
    runtime->timers.emplace(timer.id, kernel_id);
  }
}

void SimNetwork::WakeHost(Host* host) {
  // Hand freed cores to nodes that parked on the core limit, oldest
  // blocked first; TryDispatch re-parks a node that is still starved.
  while (host->busy < host->cores && !host->waiting.empty()) {
    std::shared_ptr<NodeRuntime> runtime = std::move(host->waiting.front());
    host->waiting.pop_front();
    runtime->in_wait_queue = false;
    if (runtime->removed) continue;
    TryDispatch(runtime);
  }
}

NodeStats SimNetwork::StatsFor(const net::Address& address) const {
  auto it = nodes_.find(address);
  return it == nodes_.end() ? NodeStats{} : it->second->stats;
}

}  // namespace actyp::simnet
