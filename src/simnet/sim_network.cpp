#include "simnet/sim_network.hpp"

#include <algorithm>
#include <cassert>

#include "common/logging.hpp"
#include "common/shard_stream.hpp"
#include "obs/flight_recorder.hpp"

namespace actyp::simnet {

// Collects the effects of one handler invocation; they are applied when
// the declared service time elapses. The context itself lives on the
// stack of the dispatching frame — the buffered effects are moved into
// the completion event, so no per-dispatch heap allocation is needed
// for the context.
struct SimNetwork::Effects {
  SimDuration consumed = 0;
  std::vector<std::pair<net::Address, net::Message>> sends;
  struct SelfTimer {
    SimDuration delay;
    net::TimerId id;
    net::Message message;
  };
  std::vector<SelfTimer> self_schedules;
};

class SimNetwork::Context final : public net::NodeContext {
 public:
  Context(SimNetwork* network, NodeRuntime* runtime)
      : runtime_(runtime), shard_(&network->shards_[runtime->host->shard]) {}

  [[nodiscard]] SimTime Now() const override { return shard_->kernel->Now(); }

  void Send(const net::Address& to, net::Message message) override {
    effects_.sends.push_back({to, std::move(message)});
  }

  void Consume(SimDuration duration) override {
    if (duration > 0) effects_.consumed += duration;
  }

  [[nodiscard]] SimDuration Consumed() const override {
    return effects_.consumed;
  }

  net::TimerId ScheduleSelf(SimDuration delay, net::Message message) override {
    const net::TimerId id = shard_->next_timer_id++;
    effects_.self_schedules.push_back({delay, id, std::move(message)});
    return id;
  }

  bool CancelSelf(net::TimerId id) override {
    // Unlike sends, cancellation takes effect immediately rather than
    // at service completion: a timer whose deadline falls inside the
    // current service window must not deliver once cancelled (the
    // node.hpp contract). Timers armed by an earlier invocation are
    // removed from the kernel; one buffered in this very invocation is
    // simply dropped before it ever arms.
    auto it = runtime_->timers.find(id);
    if (it != runtime_->timers.end()) {
      shard_->kernel->Cancel(it->second);
      runtime_->timers.erase(it);
      RecordCancel(id);
      return true;
    }
    for (auto timer = effects_.self_schedules.begin();
         timer != effects_.self_schedules.end(); ++timer) {
      if (timer->id == id) {
        effects_.self_schedules.erase(timer);
        RecordCancel(id);
        return true;
      }
    }
    return false;
  }

  Rng& rng() override { return runtime_->rng; }

  [[nodiscard]] const net::Address& self() const override {
    return runtime_->address;
  }

  [[nodiscard]] SimDuration consumed() const { return effects_.consumed; }
  [[nodiscard]] Effects TakeEffects() { return std::move(effects_); }

 private:
  void RecordCancel(net::TimerId id) {
    if (shard_->recorder != nullptr) {
      shard_->recorder->Record(shard_->kernel->Now(),
                               obs::FlightKind::kTimerCancel, id,
                               runtime_->address, "");
    }
  }

  NodeRuntime* runtime_;
  Shard* shard_;
  Effects effects_;
};

SimNetwork::SimNetwork(SimKernel* kernel, Topology topology,
                       std::uint64_t seed)
    : kernel_(kernel), topology_(std::move(topology)), seeder_(seed) {
  Shard primary;
  primary.kernel = kernel_;
  primary.site = "local";
  shards_.push_back(std::move(primary));
}

SimNetwork::~SimNetwork() = default;

void SimNetwork::EnableSharding(const std::vector<std::string>& sites) {
  assert(hosts_.empty() && nodes_.empty() &&
         "EnableSharding must precede AddHost/AddNode");
  assert(!sites.empty());
  shards_.clear();
  site_shard_.clear();
  // Every shard's stream — including shard 0's — comes from the shard-
  // rank expansion of the experiment seed, never from seeder_: draws
  // depend only on (seed, rank, shard-local order), so replay is
  // identical for any worker count.
  const std::uint64_t base_seed = seeder_.Next();
  for (std::size_t rank = 0; rank < sites.size(); ++rank) {
    Shard shard;
    if (rank == 0) {
      shard.kernel = kernel_;
    } else {
      shard.owned = std::make_unique<SimKernel>();
      shard.kernel = shard.owned.get();
    }
    shard.site = sites[rank];
    shard.rng = ShardStream(base_seed, rank);
    shard.outbox.resize(sites.size());
    site_shard_[sites[rank]] = static_cast<std::uint32_t>(rank);
    shards_.push_back(std::move(shard));
  }
}

std::uint32_t SimNetwork::ShardOfSite(const std::string& site) const {
  const auto it = site_shard_.find(site);
  return it == site_shard_.end() ? 0 : it->second;
}

void SimNetwork::AddHost(const std::string& name, int cores,
                         const std::string& site) {
  auto host = std::make_unique<Host>();
  host->name = name;
  host->cores = std::max(1, cores);
  host->shard = ShardOfSite(site);
  hosts_[name] = std::move(host);
  topology_.SetHostSite(name, site);
}

SimNetwork::Host* SimNetwork::GetOrCreateHost(const std::string& name) {
  auto it = hosts_.find(name);
  if (it != hosts_.end()) return it->second.get();
  auto host = std::make_unique<Host>();
  host->name = name;
  host->cores = 1;
  host->shard = ShardOfSite(topology_.SiteOf(name));
  Host* raw = host.get();
  hosts_[name] = std::move(host);
  return raw;
}

Status SimNetwork::AddNode(const net::Address& address,
                           std::shared_ptr<net::Node> node,
                           const net::NodePlacement& placement) {
  if (nodes_.count(address)) return AlreadyExists("node '" + address + "'");
  auto runtime = std::make_shared<NodeRuntime>();
  runtime->address = address;
  runtime->node = std::move(node);
  runtime->placement = placement;
  runtime->placement.servers = std::max(1, placement.servers);
  runtime->host = GetOrCreateHost(placement.host);
  runtime->rng = seeder_.Fork();
  runtime->host->node_addresses.push_back(address);
  nodes_[address] = runtime;
  node_host_[address] = placement.host;

  // OnStart effects are immediate (registration-time setup costs are not
  // part of query response time).
  Context ctx(this, runtime.get());
  runtime->node->OnStart(ctx);
  ApplyEffects(runtime, ctx.TakeEffects());
  return Status::Ok();
}

Status SimNetwork::RemoveNode(const net::Address& address) {
  auto it = nodes_.find(address);
  if (it == nodes_.end()) return NotFound("node '" + address + "'");
  it->second->removed = true;  // in-flight completions check this flag
  // A removed node's pending self-timers die with it: its periodic
  // ticks and give-up timers must not deliver to a later node reusing
  // the address (the restarted service arms its own timers in OnStart).
  SimKernel* kernel = shards_[it->second->host->shard].kernel;
  for (const auto& [id, kernel_id] : it->second->timers) {
    kernel->Cancel(kernel_id);
  }
  it->second->timers.clear();
  auto& addresses = it->second->host->node_addresses;
  addresses.erase(std::remove(addresses.begin(), addresses.end(), address),
                  addresses.end());
  nodes_.erase(it);
  return Status::Ok();
}

bool SimNetwork::HasNode(const net::Address& address) const {
  return nodes_.count(address) > 0;
}

void SimNetwork::Post(const net::Address& from, const net::Address& to,
                      net::Message message) {
  const auto from_host_it = node_host_.find(from);
  const auto to_host_it = node_host_.find(to);
  const std::string from_host =
      from_host_it == node_host_.end() ? "external" : from_host_it->second;
  const std::string to_host =
      to_host_it == node_host_.end() ? to : to_host_it->second;

  // The sending shard owns every draw this Post makes. An unsharded
  // network keeps the legacy shared stream (byte-identical to the
  // serial-only engine); external senders are charged to the
  // destination's shard.
  std::uint32_t from_shard = 0;
  std::uint32_t to_shard = 0;
  if (sharded()) {
    to_shard = ShardOfSite(topology_.SiteOf(to_host));
    from_shard = from_host_it == node_host_.end()
                     ? to_shard
                     : ShardOfSite(topology_.SiteOf(from_host));
  }
  Shard& sender = shards_[from_shard];
  Rng& draw_rng = sharded() ? sender.rng : seeder_;

  if (loss_probability_ > 0.0 && from != to &&
      draw_rng.Bernoulli(loss_probability_)) {
    ++sender.lost;
    if (sender.recorder != nullptr) {
      sender.recorder->Record(sender.kernel->Now(),
                              obs::FlightKind::kMsgDropLoss, 0, from,
                              message.type + " -> " + to);
    }
    return;
  }

  if (topology_.IsPartitioned(from_host, to_host)) {
    ++sender.partition_dropped;
    if (sender.recorder != nullptr) {
      sender.recorder->Record(sender.kernel->Now(),
                              obs::FlightKind::kMsgDropPartition, 0, from,
                              message.type + " -> " + to);
    }
    return;
  }

  const SimDuration latency =
      topology_.SampleLatency(from_host, to_host, message.WireSize(), draw_rng);
  const SimTime now = sender.kernel->Now();
  if (sender.recorder != nullptr && from != to) {
    sender.recorder->Record(now, obs::FlightKind::kMsgSend, 0, from,
                            message.type + " -> " + to);
  }
  net::Envelope env{from, to, std::move(message), now};
  if (to_shard == from_shard) {
    sender.kernel->Schedule(latency, [this, env = std::move(env)]() mutable {
      Deliver(std::move(env));
    });
    return;
  }
  // Cross-shard: park in the outbox for the next inter-window merge.
  // Safety: latency >= the link's base >= this shard's lookahead, so
  // deliver_at >= this window's horizon — the destination has not
  // executed past it.
  CrossShardMessage msg;
  msg.deliver_at = now + latency;
  msg.seq = sender.out_seq++;
  msg.envelope = std::move(env);
  sender.outbox[to_shard].push_back(std::move(msg));
}

void SimNetwork::Deliver(net::Envelope envelope) {
  auto it = nodes_.find(envelope.to);
  if (it == nodes_.end()) {
    // Attribute the drop to the shard Post routed the message to — the
    // same host->site->shard resolution, so it is always the shard
    // whose kernel is executing this delivery (no cross-shard write).
    const auto host_it = node_host_.find(envelope.to);
    const std::string& to_host =
        host_it == node_host_.end() ? envelope.to : host_it->second;
    Shard& shard = shards_[ShardOfSite(topology_.SiteOf(to_host))];
    ++shard.dropped;
    if (shard.recorder != nullptr) {
      shard.recorder->Record(shard.kernel->Now(),
                             obs::FlightKind::kMsgDropDeadNode, 0,
                             envelope.to, envelope.message.type);
    }
    ACTYP_DEBUG << "sim: dropping message type '" << envelope.message.type
                << "' to unknown node '" << envelope.to << "'";
    return;
  }
  auto runtime = it->second;
  Shard& shard = shards_[runtime->host->shard];
  if (shard.recorder != nullptr && envelope.from != envelope.to) {
    shard.recorder->Record(shard.kernel->Now(), obs::FlightKind::kMsgRecv,
                           0, envelope.to, envelope.message.type);
  }
  runtime->pending.push_back(std::move(envelope));
  runtime->stats.max_queue =
      std::max<std::uint64_t>(runtime->stats.max_queue,
                              runtime->pending.size());
  TryDispatch(runtime);
}

void SimNetwork::TryDispatch(const std::shared_ptr<NodeRuntime>& runtime) {
  // A node stalled only by the host core limit parks itself on the
  // host's wait queue; WakeHost hands freed cores to parked nodes in
  // blocking order instead of polling every node on the host.
  const auto park_if_core_starved = [this, &runtime] {
    if (!runtime->removed && !runtime->in_wait_queue &&
        !runtime->pending.empty() &&
        runtime->busy < runtime->placement.servers &&
        runtime->host->busy >= runtime->host->cores) {
      runtime->in_wait_queue = true;
      runtime->host->waiting.push_back(runtime);
    }
  };
  SimKernel* kernel = shards_[runtime->host->shard].kernel;
  while (!runtime->removed && !runtime->pending.empty() &&
         runtime->busy < runtime->placement.servers &&
         runtime->host->busy < runtime->host->cores) {
    net::Envelope envelope = std::move(runtime->pending.front());
    runtime->pending.pop_front();
    ++runtime->busy;
    ++runtime->host->busy;
    ++runtime->stats.messages;

    // Run the handler logic now (state transitions happen at start of
    // service); effects release at completion.
    Context ctx(this, runtime.get());
    runtime->node->OnMessage(envelope, ctx);
    const SimDuration service = ctx.consumed();
    runtime->stats.busy_time += service;

    Host* host = runtime->host;
    kernel->Schedule(
        service, [this, runtime, host, effects = ctx.TakeEffects()]() mutable {
          --runtime->busy;
          --host->busy;
          ApplyEffects(runtime, std::move(effects));
          TryDispatch(runtime);
          WakeHost(host);
        });
  }
  park_if_core_starved();
}

void SimNetwork::ApplyEffects(const std::shared_ptr<NodeRuntime>& runtime,
                              Effects effects) {
  for (auto& [to, message] : effects.sends) {
    Post(runtime->address, to, std::move(message));
  }
  Shard& shard = shards_[runtime->host->shard];
  SimKernel* kernel = shard.kernel;
  for (auto& timer : effects.self_schedules) {
    if (runtime->removed) break;  // a dead node arms no new timers
    net::Envelope env{runtime->address, runtime->address,
                      std::move(timer.message), kernel->Now()};
    if (shard.recorder != nullptr) {
      shard.recorder->Record(kernel->Now(), obs::FlightKind::kTimerArm,
                             timer.id, runtime->address, env.message.type);
    }
    const SimKernel::TimerId kernel_id = kernel->Schedule(
        timer.delay,
        [this, runtime, id = timer.id, env = std::move(env)]() mutable {
          runtime->timers.erase(id);
          Shard& home = shards_[runtime->host->shard];
          if (home.recorder != nullptr) {
            home.recorder->Record(home.kernel->Now(),
                                  obs::FlightKind::kTimerFire, id,
                                  runtime->address, env.message.type);
          }
          Deliver(std::move(env));
        });
    runtime->timers.emplace(timer.id, kernel_id);
  }
}

void SimNetwork::WakeHost(Host* host) {
  // Hand freed cores to nodes that parked on the core limit, oldest
  // blocked first; TryDispatch re-parks a node that is still starved.
  while (host->busy < host->cores && !host->waiting.empty()) {
    std::shared_ptr<NodeRuntime> runtime = std::move(host->waiting.front());
    host->waiting.pop_front();
    runtime->in_wait_queue = false;
    if (runtime->removed) continue;
    TryDispatch(runtime);
  }
}

void SimNetwork::DrainMailboxes() {
  const std::size_t n = shards_.size();
  for (std::size_t dest = 0; dest < n; ++dest) {
    merge_scratch_.clear();
    for (std::size_t src = 0; src < n; ++src) {
      auto& box = shards_[src].outbox[dest];
      std::move(box.begin(), box.end(), std::back_inserter(merge_scratch_));
      box.clear();
    }
    if (merge_scratch_.empty()) continue;
    // Sources were concatenated in rank order and each source's list is
    // already in its local seq order, so a stable sort on deliver_at
    // yields the (deliver_at, source rank, source seq) total order —
    // the destination kernel then assigns its insertion-order tie-break
    // seqs in exactly that order, independent of worker count.
    std::stable_sort(
        merge_scratch_.begin(), merge_scratch_.end(),
        [](const CrossShardMessage& a, const CrossShardMessage& b) {
          return a.deliver_at < b.deliver_at;
        });
    SimKernel* kernel = shards_[dest].kernel;
    for (CrossShardMessage& msg : merge_scratch_) {
      kernel->ScheduleAt(msg.deliver_at,
                         [this, env = std::move(msg.envelope)]() mutable {
                           Deliver(std::move(env));
                         });
    }
    merge_scratch_.clear();
  }
}

void SimNetwork::RefreshLookahead() {
  for (Shard& shard : shards_) {
    SimDuration lookahead = SimKernel::kNoEvent;
    for (const Shard& other : shards_) {
      if (&other == &shard) continue;
      lookahead = std::min(lookahead,
                           topology_.MinSiteLatency(shard.site, other.site));
    }
    shard.lookahead = std::max<SimDuration>(lookahead, Micros(1));
  }
}

std::size_t SimNetwork::RunShardedUntil(SimTime until, ThreadPool* pool) {
  if (!sharded()) return kernel_->RunUntil(until);
  RefreshLookahead();
  std::size_t executed = 0;
  for (;;) {
    DrainMailboxes();
    // Safe horizon: no shard can emit a cross-shard message landing
    // before (its next event time + its lookahead), so every event
    // strictly below W is already fully determined.
    SimTime min_floor = SimKernel::kNoEvent;
    SimTime horizon = SimKernel::kNoEvent;
    for (const Shard& shard : shards_) {
      const SimTime floor = shard.kernel->NextEventTime();
      min_floor = std::min(min_floor, floor);
      if (floor != SimKernel::kNoEvent) {
        horizon = std::min(horizon, floor + shard.lookahead);
      }
    }
    if (min_floor > until) break;  // nothing left inside this run
    const SimTime bound = std::min(horizon, until + 1);
    if (pool != nullptr) {
      // One task per shard; Drain is the window barrier. Shards touch
      // only their own kernel/RNG/counters and their own nodes' state
      // during the window, and the outboxes are merged after the
      // barrier, so the window is data-race-free.
      std::vector<std::size_t> ran(shards_.size(), 0);
      for (std::size_t i = 0; i < shards_.size(); ++i) {
        pool->Submit([this, i, bound, &ran] {
          ran[i] = shards_[i].kernel->RunBefore(bound);
        });
      }
      pool->Drain();
      for (const std::size_t n : ran) executed += n;
    } else {
      for (Shard& shard : shards_) {
        executed += shard.kernel->RunBefore(bound);
      }
    }
  }
  for (Shard& shard : shards_) shard.kernel->AdvanceTo(until);
  // The outboxes are empty here: the exit test runs right after a
  // drain, so everything beyond `until` already sits in its destination
  // kernel as a future event for the next call (Measure runs warmup and
  // measurement as two consecutive calls).
  return executed;
}

std::uint64_t SimNetwork::total_executed() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.kernel->executed();
  return total;
}

std::uint64_t SimNetwork::dropped_messages() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.dropped;
  return total;
}

std::uint64_t SimNetwork::lost_messages() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.lost;
  return total;
}

std::uint64_t SimNetwork::partition_dropped() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.partition_dropped;
  return total;
}

NodeStats SimNetwork::StatsFor(const net::Address& address) const {
  auto it = nodes_.find(address);
  return it == nodes_.end() ? NodeStats{} : it->second->stats;
}

void SimNetwork::SetFlightRecorder(std::size_t shard,
                                   obs::FlightRecorder* recorder) {
  if (shard < shards_.size()) shards_[shard].recorder = recorder;
}

std::uint64_t SimNetwork::pending_events() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.kernel->pending();
  return total;
}

std::uint64_t SimNetwork::queued_messages() const {
  std::uint64_t total = 0;
  for (const auto& [address, runtime] : nodes_) {
    total += runtime->pending.size();
  }
  return total;
}

std::uint64_t SimNetwork::busy_cores() const {
  std::uint64_t total = 0;
  for (const auto& [name, host] : hosts_) {
    total += static_cast<std::uint64_t>(host->busy);
  }
  return total;
}

}  // namespace actyp::simnet
