#include "simnet/sim_network.hpp"

#include <algorithm>
#include <cassert>

#include "common/logging.hpp"

namespace actyp::simnet {

// Collects the effects of one handler invocation; they are applied when
// the declared service time elapses.
class SimNetwork::Context final : public net::NodeContext {
 public:
  Context(SimNetwork* network, NodeRuntime* runtime)
      : network_(network), runtime_(runtime) {}

  [[nodiscard]] SimTime Now() const override {
    return network_->kernel_->Now();
  }

  void Send(const net::Address& to, net::Message message) override {
    sends_.push_back({to, std::move(message)});
  }

  void Consume(SimDuration duration) override {
    if (duration > 0) consumed_ += duration;
  }

  void ScheduleSelf(SimDuration delay, net::Message message) override {
    self_schedules_.push_back({delay, std::move(message)});
  }

  Rng& rng() override { return runtime_->rng; }

  [[nodiscard]] const net::Address& self() const override {
    return runtime_->address;
  }

  [[nodiscard]] SimDuration consumed() const { return consumed_; }

  // Applies buffered sends/self-schedules; called at completion time.
  void Flush() {
    for (auto& [to, message] : sends_) {
      network_->Post(runtime_->address, to, std::move(message));
    }
    sends_.clear();
    for (auto& [delay, message] : self_schedules_) {
      net::Envelope env{runtime_->address, runtime_->address,
                        std::move(message), network_->kernel_->Now()};
      network_->kernel_->Schedule(
          delay, [network = network_, env = std::move(env)]() mutable {
            network->Deliver(std::move(env));
          });
    }
    self_schedules_.clear();
  }

 private:
  SimNetwork* network_;
  NodeRuntime* runtime_;
  SimDuration consumed_ = 0;
  std::vector<std::pair<net::Address, net::Message>> sends_;
  std::vector<std::pair<SimDuration, net::Message>> self_schedules_;
};

SimNetwork::SimNetwork(SimKernel* kernel, Topology topology,
                       std::uint64_t seed)
    : kernel_(kernel), topology_(std::move(topology)), seeder_(seed) {}

SimNetwork::~SimNetwork() = default;

void SimNetwork::AddHost(const std::string& name, int cores,
                         const std::string& site) {
  auto host = std::make_unique<Host>();
  host->name = name;
  host->cores = std::max(1, cores);
  hosts_[name] = std::move(host);
  topology_.SetHostSite(name, site);
}

SimNetwork::Host* SimNetwork::GetOrCreateHost(const std::string& name) {
  auto it = hosts_.find(name);
  if (it != hosts_.end()) return it->second.get();
  auto host = std::make_unique<Host>();
  host->name = name;
  host->cores = 1;
  Host* raw = host.get();
  hosts_[name] = std::move(host);
  return raw;
}

Status SimNetwork::AddNode(const net::Address& address,
                           std::shared_ptr<net::Node> node,
                           const net::NodePlacement& placement) {
  if (nodes_.count(address)) return AlreadyExists("node '" + address + "'");
  auto runtime = std::make_shared<NodeRuntime>();
  runtime->address = address;
  runtime->node = std::move(node);
  runtime->placement = placement;
  runtime->placement.servers = std::max(1, placement.servers);
  runtime->host = GetOrCreateHost(placement.host);
  runtime->rng = seeder_.Fork();
  runtime->host->node_addresses.push_back(address);
  nodes_[address] = runtime;
  node_host_[address] = placement.host;

  // OnStart effects are immediate (registration-time setup costs are not
  // part of query response time).
  Context ctx(this, runtime.get());
  runtime->node->OnStart(ctx);
  ctx.Flush();
  return Status::Ok();
}

Status SimNetwork::RemoveNode(const net::Address& address) {
  auto it = nodes_.find(address);
  if (it == nodes_.end()) return NotFound("node '" + address + "'");
  it->second->removed = true;  // in-flight completions check this flag
  auto& addresses = it->second->host->node_addresses;
  addresses.erase(std::remove(addresses.begin(), addresses.end(), address),
                  addresses.end());
  nodes_.erase(it);
  return Status::Ok();
}

bool SimNetwork::HasNode(const net::Address& address) const {
  return nodes_.count(address) > 0;
}

void SimNetwork::Post(const net::Address& from, const net::Address& to,
                      net::Message message) {
  if (loss_probability_ > 0.0 && from != to &&
      seeder_.Bernoulli(loss_probability_)) {
    ++lost_;
    return;
  }
  const auto from_host_it = node_host_.find(from);
  const auto to_host_it = node_host_.find(to);
  const std::string from_host =
      from_host_it == node_host_.end() ? "external" : from_host_it->second;
  const std::string to_host =
      to_host_it == node_host_.end() ? to : to_host_it->second;

  if (topology_.IsPartitioned(from_host, to_host)) {
    ++partition_dropped_;
    return;
  }

  const SimDuration latency = topology_.SampleLatency(
      from_host, to_host, message.WireSize(), seeder_);
  net::Envelope env{from, to, std::move(message), kernel_->Now()};
  kernel_->Schedule(latency, [this, env = std::move(env)]() mutable {
    Deliver(std::move(env));
  });
}

void SimNetwork::Deliver(net::Envelope envelope) {
  auto it = nodes_.find(envelope.to);
  if (it == nodes_.end()) {
    ++dropped_;
    ACTYP_DEBUG << "sim: dropping message type '" << envelope.message.type
                << "' to unknown node '" << envelope.to << "'";
    return;
  }
  auto runtime = it->second;
  runtime->pending.push_back(std::move(envelope));
  runtime->stats.max_queue =
      std::max<std::uint64_t>(runtime->stats.max_queue,
                              runtime->pending.size());
  TryDispatch(runtime);
}

void SimNetwork::TryDispatch(const std::shared_ptr<NodeRuntime>& runtime) {
  while (!runtime->removed && !runtime->pending.empty() &&
         runtime->busy < runtime->placement.servers &&
         runtime->host->busy < runtime->host->cores) {
    net::Envelope envelope = std::move(runtime->pending.front());
    runtime->pending.pop_front();
    ++runtime->busy;
    ++runtime->host->busy;
    ++runtime->stats.messages;

    // Run the handler logic now (state transitions happen at start of
    // service); effects release at completion.
    auto ctx = std::make_shared<Context>(this, runtime.get());
    runtime->node->OnMessage(envelope, *ctx);
    const SimDuration service = ctx->consumed();
    runtime->stats.busy_time += service;

    Host* host = runtime->host;
    kernel_->Schedule(service, [this, runtime, ctx, host] {
      --runtime->busy;
      --host->busy;
      ctx->Flush();
      TryDispatch(runtime);
      WakeHost(host);
    });
  }
}

void SimNetwork::WakeHost(Host* host) {
  if (host->busy >= host->cores) return;
  // Give other nodes on this host a chance to start queued work.
  for (const auto& address : host->node_addresses) {
    auto it = nodes_.find(address);
    if (it == nodes_.end()) continue;
    if (host->busy >= host->cores) break;
    TryDispatch(it->second);
  }
}

NodeStats SimNetwork::StatsFor(const net::Address& address) const {
  auto it = nodes_.find(address);
  return it == nodes_.end() ? NodeStats{} : it->second->stats;
}

}  // namespace actyp::simnet
