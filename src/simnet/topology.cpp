#include "simnet/topology.hpp"

#include <algorithm>

namespace actyp::simnet {

Topology::Topology() {
  intra_site_ = LinkSpec{Micros(150), Micros(50), 12.5};
  inter_site_ = LinkSpec{Millis(30), Millis(5), 1.25};
}

void Topology::SetHostSite(const std::string& host, const std::string& site) {
  host_site_[host] = site;
}

const std::string& Topology::SiteOf(const std::string& host) const {
  static const std::string kDefaultSite = "local";
  auto it = host_site_.find(host);
  return it == host_site_.end() ? kDefaultSite : it->second;
}

void Topology::SetLink(const std::string& site_a, const std::string& site_b,
                       LinkSpec spec) {
  links_[{site_a, site_b}] = spec;
  links_[{site_b, site_a}] = spec;
}

const LinkSpec& Topology::LinkBetween(const std::string& site_a,
                                      const std::string& site_b) const {
  if (site_a == site_b) return intra_site_;
  auto it = links_.find({site_a, site_b});
  return it == links_.end() ? inter_site_ : it->second;
}

SimDuration Topology::SampleLatency(const std::string& host_a,
                                    const std::string& host_b,
                                    std::size_t bytes, Rng& rng) const {
  if (host_a == host_b) {
    // Loopback: negligible, but keep event ordering strictly causal.
    return Micros(5);
  }
  const std::string site_a = SiteOf(host_a);
  const std::string site_b = SiteOf(host_b);
  const LinkSpec& link = LinkBetween(site_a, site_b);
  SimDuration latency = link.base_latency;
  if (link.jitter > 0) {
    latency += static_cast<SimDuration>(rng.NextDouble() *
                                        static_cast<double>(link.jitter));
  }
  if (link.bytes_per_us > 0) {
    latency += static_cast<SimDuration>(static_cast<double>(bytes) /
                                        link.bytes_per_us);
  }
  if (!penalties_.empty()) {
    // Most specific match wins: exact pair, then one-sided wildcard,
    // then the global {"*","*"} penalty.
    auto it = penalties_.find(OrderedPair(site_a, site_b));
    if (it == penalties_.end()) it = penalties_.find(OrderedPair(site_a, "*"));
    if (it == penalties_.end()) it = penalties_.find(OrderedPair(site_b, "*"));
    if (it == penalties_.end()) it = penalties_.find({"*", "*"});
    if (it != penalties_.end()) latency += it->second;
  }
  return std::max<SimDuration>(latency, Micros(1));
}

SimDuration Topology::MinSiteLatency(const std::string& site_a,
                                     const std::string& site_b) const {
  return std::max<SimDuration>(LinkBetween(site_a, site_b).base_latency,
                               Micros(1));
}

std::pair<std::string, std::string> Topology::OrderedPair(
    const std::string& site_a, const std::string& site_b) {
  return site_a <= site_b ? std::make_pair(site_a, site_b)
                          : std::make_pair(site_b, site_a);
}

void Topology::SetPartition(const std::string& site_a,
                            const std::string& site_b, bool cut) {
  if (cut) {
    partitions_.insert(OrderedPair(site_a, site_b));
  } else {
    partitions_.erase(OrderedPair(site_a, site_b));
  }
}

bool Topology::IsPartitioned(const std::string& host_a,
                             const std::string& host_b) const {
  if (partitions_.empty() || host_a == host_b) return false;
  return IsSitePartitioned(SiteOf(host_a), SiteOf(host_b));
}

bool Topology::IsSitePartitioned(const std::string& site_a,
                                 const std::string& site_b) const {
  if (partitions_.empty()) return false;
  if (partitions_.count(OrderedPair(site_a, site_b)) > 0) return true;
  // "*" cuts: against one named site, or between all distinct sites.
  if (partitions_.count(OrderedPair(site_a, "*")) > 0 ||
      partitions_.count(OrderedPair(site_b, "*")) > 0) {
    return true;
  }
  return site_a != site_b && partitions_.count({"*", "*"}) > 0;
}

void Topology::SetLatencyPenalty(const std::string& site_a,
                                 const std::string& site_b,
                                 SimDuration extra) {
  if (extra > 0) {
    penalties_[OrderedPair(site_a, site_b)] = extra;
  } else {
    penalties_.erase(OrderedPair(site_a, site_b));
  }
}

Topology Topology::Lan() { return Topology(); }

Topology Topology::WanTwoSites(const std::string& client_site,
                               const std::string& server_site,
                               SimDuration one_way, SimDuration jitter) {
  Topology topology;
  topology.SetLink(client_site, server_site,
                   LinkSpec{one_way, jitter, 1.25});
  return topology;
}

}  // namespace actyp::simnet
