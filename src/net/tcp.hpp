// Real TCP transport (POSIX sockets, loopback-friendly). The production
// PUNCH deployment fronted the pipeline with TCP; here a TcpServer can
// expose any request/reply handler (typically the query-manager entry
// stage) and TcpClient issues blocking calls. Frames are 4-byte
// big-endian length + encoded Message.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "net/message.hpp"

namespace actyp::net {

// Handler receives a request and produces the reply.
using TcpHandler = std::function<Message(const Message& request)>;

// Test-only fault injection at the socket layer, consulted once per
// reply the server is about to send.
struct TcpFault {
  enum class Action {
    kNone,      // deliver the reply normally
    kReset,     // hard connection reset (SO_LINGER 0 close, no reply)
    kTruncate,  // send only `bytes` of the framed reply, then close
  };
  Action action = Action::kNone;
  std::size_t bytes = 0;  // kTruncate: bytes of the frame that get out
};
// Hooks run on the server's connection threads; keep them lock-free or
// internally synchronized.
using TcpFaultHook = std::function<TcpFault()>;

class TcpServer {
 public:
  TcpServer() = default;
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept loop.
  Status Start(std::uint16_t port, TcpHandler handler);
  void Stop();

  // Installs (or clears, with nullptr) the fault hook. Call before
  // Start; the hook decides the fate of every reply frame.
  void SetFaultHook(TcpFaultHook hook) { fault_hook_ = std::move(hook); }

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] bool running() const { return running_.load(); }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  TcpHandler handler_;
  TcpFaultHook fault_hook_;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> connections_;
};

class TcpClient {
 public:
  // Connects, sends `request`, waits for the reply, closes. `host` is a
  // dotted quad (tests use 127.0.0.1).
  static Result<Message> Call(const std::string& host, std::uint16_t port,
                              const Message& request);

  // Call with up to `attempts` tries: a reset or truncated reply (any
  // transport-level failure) reconnects and re-sends. Requests are
  // idempotent at this layer; dedup, if needed, is the handler's job.
  static Result<Message> CallWithRetry(const std::string& host,
                                       std::uint16_t port,
                                       const Message& request,
                                       std::size_t attempts);
};

// Frame helpers shared by server and client (exposed for tests).
Status WriteFrame(int fd, const Message& message);
Result<Message> ReadFrame(int fd);

}  // namespace actyp::net
