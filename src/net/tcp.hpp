// Real TCP transport (POSIX sockets, loopback-friendly). The production
// PUNCH deployment fronted the pipeline with TCP; here a TcpServer can
// expose any request/reply handler (typically the query-manager entry
// stage) and TcpClient issues blocking calls. Frames are 4-byte
// big-endian length + encoded Message.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "net/message.hpp"

namespace actyp::net {

// Handler receives a request and produces the reply.
using TcpHandler = std::function<Message(const Message& request)>;

class TcpServer {
 public:
  TcpServer() = default;
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept loop.
  Status Start(std::uint16_t port, TcpHandler handler);
  void Stop();

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] bool running() const { return running_.load(); }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  TcpHandler handler_;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> connections_;
};

class TcpClient {
 public:
  // Connects, sends `request`, waits for the reply, closes. `host` is a
  // dotted quad (tests use 127.0.0.1).
  static Result<Message> Call(const std::string& host, std::uint16_t port,
                              const Message& request);
};

// Frame helpers shared by server and client (exposed for tests).
Status WriteFrame(int fd, const Message& message);
Result<Message> ReadFrame(int fd);

}  // namespace actyp::net
