#include "net/message.hpp"

#include "common/strings.hpp"

namespace actyp::net {

std::string Message::Encode() const {
  std::string out = "ACTYP/1 " + type + "\n";
  for (const auto& [key, value] : headers) {
    out += key;
    out += ": ";
    out += value;
    out += '\n';
  }
  out += "content-length: " + std::to_string(body.size()) + "\n\n";
  out += body;
  return out;
}

Result<Message> Message::Decode(std::string_view wire) {
  const std::size_t header_end = wire.find("\n\n");
  if (header_end == std::string_view::npos) {
    return InvalidArgument("message missing header terminator");
  }
  const std::string_view header_block = wire.substr(0, header_end);
  const std::string_view body = wire.substr(header_end + 2);

  Message message;
  bool first = true;
  std::size_t declared_length = std::string_view::npos;
  for (const auto& line : Split(header_block, '\n')) {
    if (first) {
      first = false;
      if (!StartsWith(line, "ACTYP/1 ")) {
        return InvalidArgument("bad magic in message start line");
      }
      message.type = Trim(std::string_view(line).substr(8));
      if (message.type.empty()) return InvalidArgument("empty message type");
      continue;
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return InvalidArgument("malformed header line '" + line + "'");
    }
    const std::string key = ToLower(Trim(line.substr(0, colon)));
    const std::string value = Trim(line.substr(colon + 1));
    if (key == "content-length") {
      auto n = ParseInt(value);
      if (!n || *n < 0) return InvalidArgument("bad content-length");
      declared_length = static_cast<std::size_t>(*n);
    } else {
      message.SetHeader(key, value);
    }
  }
  if (first) return InvalidArgument("empty message");
  if (declared_length == std::string_view::npos) {
    return InvalidArgument("missing content-length");
  }
  if (declared_length > body.size()) {
    return InvalidArgument("truncated body: declared " +
                           std::to_string(declared_length) + ", have " +
                           std::to_string(body.size()));
  }
  message.body = std::string(body.substr(0, declared_length));
  return message;
}

std::size_t Message::WireSize() const {
  std::size_t n = 16 + type.size() + body.size();
  for (const auto& [key, value] : headers) n += key.size() + value.size() + 4;
  return n;
}

}  // namespace actyp::net
