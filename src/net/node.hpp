// Actor-style node abstraction. Every pipeline stage (query manager,
// pool manager, resource pool, reintegrator, proxy server, client) is a
// Node bound to an Address on some Network. The same component code runs
// on the discrete-event simulator, on the threaded in-process transport,
// or behind a TCP frontend — this is how the paper's "stages can be
// independently distributed and replicated" is expressed in code.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "common/status.hpp"
#include "net/message.hpp"

namespace actyp::net {

using Address = std::string;

struct Envelope {
  Address from;
  Address to;
  Message message;
  SimTime sent_at = 0;
};

// Handle for a self-scheduled timer; 0 means "not cancellable" (either
// an invalid id or a transport without cancellation support).
using TimerId = std::uint64_t;

// Execution context handed to a node while it processes one message.
class NodeContext {
 public:
  virtual ~NodeContext() = default;

  [[nodiscard]] virtual SimTime Now() const = 0;

  // Asynchronously sends a message; delivery incurs transport latency.
  virtual void Send(const Address& to, Message message) = 0;

  // Declares service time consumed by the current processing step. Under
  // the discrete-event kernel this occupies the node (and a host core)
  // for `duration`; under the threaded runtime it is a scaled sleep.
  virtual void Consume(SimDuration duration) = 0;

  // Service time accumulated by Consume() calls so far in the current
  // processing step. Now() does not advance while a handler runs, so
  // Now() + Consumed() is the sim time at which this step completes —
  // the profiler's span-exit stamp. Transports that execute Consume
  // inline (real sleeps) report 0.
  [[nodiscard]] virtual SimDuration Consumed() const { return 0; }

  // Delivers `message` back to this node after `delay` (timer). Returns
  // a handle for CancelSelf, or 0 when the transport cannot cancel.
  virtual TimerId ScheduleSelf(SimDuration delay, Message message) = 0;

  // Cancels a timer from a previous ScheduleSelf on this node before it
  // delivers. Returns false for stale/unknown ids and on transports
  // without cancellation; a cancelled timer never delivers its message.
  virtual bool CancelSelf(TimerId id) {
    (void)id;
    return false;
  }

  // Per-node deterministic random stream.
  virtual Rng& rng() = 0;

  // Address this node is registered under.
  [[nodiscard]] virtual const Address& self() const = 0;
};

class Node {
 public:
  virtual ~Node() = default;

  // Invoked once when the node is registered and the network starts it.
  virtual void OnStart(NodeContext& /*ctx*/) {}

  virtual void OnMessage(const Envelope& envelope, NodeContext& ctx) = 0;
};

// Placement of a node in the (simulated or real) deployment.
struct NodePlacement {
  std::string host = "localhost";  // host name, for latency & core limits
  int servers = 1;  // how many messages the node processes concurrently
};

class Network {
 public:
  virtual ~Network() = default;

  // Registers and starts a node. The network owns the node.
  virtual Status AddNode(const Address& address, std::shared_ptr<Node> node,
                         const NodePlacement& placement) = 0;
  virtual Status RemoveNode(const Address& address) = 0;
  [[nodiscard]] virtual bool HasNode(const Address& address) const = 0;

  // Injects a message from an external source (e.g. a test driver).
  virtual void Post(const Address& from, const Address& to,
                    Message message) = 0;
};

}  // namespace actyp::net
