// Threaded in-process transport: every node gets worker thread(s) and a
// mailbox; sends traverse a delivery scheduler that injects configurable
// network latency. This is the "real concurrency" runtime used by
// integration tests and the TCP demo; the figure benchmarks use the
// deterministic discrete-event runtime in simnet/.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/mpsc_queue.hpp"
#include "net/node.hpp"

namespace actyp::net {

struct InProcConfig {
  // Latency applied to a message from -> to; defaults to zero.
  std::function<SimDuration(const Address& from, const Address& to)> latency;
  // Real-time scale applied to Consume() and latency sleeps: a value of
  // 0.01 runs a 100ms simulated service in 1ms of wall time.
  double time_scale = 1.0;
  std::uint64_t seed = 42;
};

class InProcNetwork final : public Network {
 public:
  explicit InProcNetwork(InProcConfig config = {});
  ~InProcNetwork() override;

  InProcNetwork(const InProcNetwork&) = delete;
  InProcNetwork& operator=(const InProcNetwork&) = delete;

  Status AddNode(const Address& address, std::shared_ptr<Node> node,
                 const NodePlacement& placement) override;
  Status RemoveNode(const Address& address) override;
  [[nodiscard]] bool HasNode(const Address& address) const override;

  void Post(const Address& from, const Address& to, Message message) override;

  // Stops all nodes and the delivery scheduler (also done by ~).
  void Shutdown();

  [[nodiscard]] const Clock& clock() const { return clock_; }

 private:
  struct NodeRuntime;
  class Context;

  void Deliver(Envelope envelope, SimDuration delay);
  void SchedulerLoop();

  InProcConfig config_;
  WallClock clock_;
  Rng seeder_;

  mutable std::mutex nodes_mu_;
  std::map<Address, std::shared_ptr<NodeRuntime>> nodes_;

  struct Timed {
    SimTime due;
    std::uint64_t seq;
    Envelope envelope;
    bool operator>(const Timed& other) const {
      return due != other.due ? due > other.due : seq > other.seq;
    }
  };
  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::priority_queue<Timed, std::vector<Timed>, std::greater<>> timers_;
  std::uint64_t timer_seq_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread scheduler_;
};

}  // namespace actyp::net
