// Message model shared by every transport (§6: "queries propagate from
// one stage to the next via TCP or UDP"). A message is a type tag, a
// small header map, and an opaque body (usually query text).
//
// Wire format (text, HTTP-inspired, length-delimited body):
//
//   ACTYP/1 <type>\n
//   <key>: <value>\n
//   ...
//   content-length: <n>\n
//   \n
//   <body bytes>
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/status.hpp"

namespace actyp::net {

// Message types used by the resource management pipeline.
namespace msg {
inline constexpr std::string_view kQuery = "query";            // client -> QM, QM -> PM, PM -> pool
inline constexpr std::string_view kAllocation = "allocation";  // pool -> reintegrator/client
inline constexpr std::string_view kFailure = "failure";        // any stage -> reintegrator/client
inline constexpr std::string_view kRelease = "release";        // client -> pool (job done)
inline constexpr std::string_view kCreatePool = "create-pool"; // PM -> proxy server
inline constexpr std::string_view kPoolCreated = "pool-created";
inline constexpr std::string_view kTick = "tick";              // self-scheduled timer
inline constexpr std::string_view kShutdown = "shutdown";
}  // namespace msg

// Common header keys.
namespace hdr {
inline constexpr std::string_view kReplyTo = "reply-to";
inline constexpr std::string_view kRequestId = "request-id";
inline constexpr std::string_view kSessionKey = "session-key";
inline constexpr std::string_view kMachine = "machine";
inline constexpr std::string_view kMachineId = "machine-id";
inline constexpr std::string_view kPort = "port";
inline constexpr std::string_view kShadowUid = "shadow-uid";
inline constexpr std::string_view kPoolName = "pool-name";
inline constexpr std::string_view kError = "error";
}  // namespace hdr

struct Message {
  std::string type;
  std::map<std::string, std::string> headers;
  std::string body;

  Message() = default;
  explicit Message(std::string_view t) : type(t) {}

  [[nodiscard]] std::string Header(std::string_view key) const {
    auto it = headers.find(std::string(key));
    return it == headers.end() ? std::string() : it->second;
  }
  void SetHeader(std::string_view key, std::string value) {
    headers[std::string(key)] = std::move(value);
  }
  [[nodiscard]] bool HasHeader(std::string_view key) const {
    return headers.count(std::string(key)) > 0;
  }

  [[nodiscard]] std::string Encode() const;
  static Result<Message> Decode(std::string_view wire);

  // Approximate size on the wire, used by transports for bandwidth cost.
  [[nodiscard]] std::size_t WireSize() const;
};

}  // namespace actyp::net
