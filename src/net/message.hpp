// Message model shared by every transport (§6: "queries propagate from
// one stage to the next via TCP or UDP"). A message is a type tag, a
// small header map, and an opaque body (usually query text).
//
// Wire format (text, HTTP-inspired, length-delimited body):
//
//   ACTYP/1 <type>\n
//   <key>: <value>\n
//   ...
//   content-length: <n>\n
//   \n
//   <body bytes>
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace actyp::net {

// Message types used by the resource management pipeline.
namespace msg {
inline constexpr std::string_view kQuery = "query";            // client -> QM, QM -> PM, PM -> pool
inline constexpr std::string_view kAllocation = "allocation";  // pool -> reintegrator/client
inline constexpr std::string_view kFailure = "failure";        // any stage -> reintegrator/client
inline constexpr std::string_view kRelease = "release";        // client -> pool (job done)
inline constexpr std::string_view kCreatePool = "create-pool"; // PM -> proxy server
inline constexpr std::string_view kPoolCreated = "pool-created";
inline constexpr std::string_view kTick = "tick";              // self-scheduled timer
inline constexpr std::string_view kShutdown = "shutdown";
}  // namespace msg

// Common header keys.
namespace hdr {
inline constexpr std::string_view kReplyTo = "reply-to";
inline constexpr std::string_view kRequestId = "request-id";
inline constexpr std::string_view kSessionKey = "session-key";
inline constexpr std::string_view kMachine = "machine";
inline constexpr std::string_view kMachineId = "machine-id";
inline constexpr std::string_view kPort = "port";
inline constexpr std::string_view kShadowUid = "shadow-uid";
inline constexpr std::string_view kPoolName = "pool-name";
inline constexpr std::string_view kError = "error";
}  // namespace hdr

struct Message {
  // Messages carry a handful of headers, so a flat vector searched
  // linearly beats a node-based map on every hot path (set, get, copy);
  // insertion order is preserved on the wire.
  using HeaderList = std::vector<std::pair<std::string, std::string>>;

  std::string type;
  HeaderList headers;
  std::string body;

  Message() = default;
  explicit Message(std::string_view t) : type(t) {}

  [[nodiscard]] const std::string* FindHeader(std::string_view key) const {
    for (const auto& [name, value] : headers) {
      if (name == key) return &value;
    }
    return nullptr;
  }
  [[nodiscard]] std::string Header(std::string_view key) const {
    const std::string* value = FindHeader(key);
    return value == nullptr ? std::string() : *value;
  }
  void SetHeader(std::string_view key, std::string value) {
    for (auto& [name, existing] : headers) {
      if (name == key) {
        existing = std::move(value);
        return;
      }
    }
    headers.emplace_back(std::string(key), std::move(value));
  }
  void RemoveHeader(std::string_view key) {
    for (auto it = headers.begin(); it != headers.end(); ++it) {
      if (it->first == key) {
        headers.erase(it);
        return;
      }
    }
  }
  [[nodiscard]] bool HasHeader(std::string_view key) const {
    return FindHeader(key) != nullptr;
  }

  [[nodiscard]] std::string Encode() const;
  static Result<Message> Decode(std::string_view wire);

  // Approximate size on the wire, used by transports for bandwidth cost.
  [[nodiscard]] std::size_t WireSize() const;
};

}  // namespace actyp::net
