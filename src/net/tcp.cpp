#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/logging.hpp"

namespace actyp::net {
namespace {

Status WriteAll(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Unavailable(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status ReadAll(int fd, char* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n == 0) return Unavailable("peer closed connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Unavailable(std::string("recv: ") + std::strerror(errno));
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

constexpr std::size_t kMaxFrame = 16u << 20;  // 16 MiB sanity cap

}  // namespace

Status WriteFrame(int fd, const Message& message) {
  const std::string encoded = message.Encode();
  if (encoded.size() > kMaxFrame) return InvalidArgument("frame too large");
  const std::uint32_t len = htonl(static_cast<std::uint32_t>(encoded.size()));
  char header[4];
  std::memcpy(header, &len, 4);
  if (auto s = WriteAll(fd, header, 4); !s.ok()) return s;
  return WriteAll(fd, encoded.data(), encoded.size());
}

Result<Message> ReadFrame(int fd) {
  char header[4];
  if (auto s = ReadAll(fd, header, 4); !s.ok()) return s;
  std::uint32_t len = 0;
  std::memcpy(&len, header, 4);
  len = ntohl(len);
  if (len > kMaxFrame) return InvalidArgument("frame too large");
  std::string buffer(len, '\0');
  if (auto s = ReadAll(fd, buffer.data(), len); !s.ok()) return s;
  return Message::Decode(buffer);
}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start(std::uint16_t port, TcpHandler handler) {
  if (running_.load()) return AlreadyExists("server already running");
  handler_ = std::move(handler);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Unavailable(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Unavailable(std::string("listen: ") + std::strerror(errno));
  }

  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);

  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void TcpServer::AcceptLoop() {
  while (running_.load()) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    const int fd =
        ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket closed by Stop()
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void TcpServer::ServeConnection(int fd) {
  // One request/reply pair per frame; the connection stays open for
  // pipelined calls until the peer closes.
  while (running_.load()) {
    auto request = ReadFrame(fd);
    if (!request.ok()) break;
    Message reply = handler_(*request);
    if (fault_hook_) {
      const TcpFault fault = fault_hook_();
      if (fault.action == TcpFault::Action::kReset) {
        // SO_LINGER 0 turns the close into a hard RST — the client sees
        // a genuine connection reset, not an orderly shutdown.
        const linger hard_reset{1, 0};
        ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_reset,
                     sizeof(hard_reset));
        break;
      }
      if (fault.action == TcpFault::Action::kTruncate) {
        // Leak a partial frame (length header + a prefix of the body),
        // then close: the client's ReadFrame starves mid-message.
        const std::string encoded = reply.Encode();
        const std::uint32_t len =
            htonl(static_cast<std::uint32_t>(encoded.size()));
        char header[4];
        std::memcpy(header, &len, 4);
        if (WriteAll(fd, header, 4).ok()) {
          const std::size_t cut = std::min(fault.bytes, encoded.size());
          (void)WriteAll(fd, encoded.data(), cut);
        }
        break;
      }
    }
    if (!WriteFrame(fd, reply).ok()) break;
  }
  ::close(fd);
}

void TcpServer::Stop() {
  if (!running_.exchange(false)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections.swap(connections_);
  }
  for (auto& conn : connections) {
    if (conn.joinable()) conn.join();
  }
}

Result<Message> TcpClient::Call(const std::string& host, std::uint16_t port,
                                const Message& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgument("bad host address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Unavailable(std::string("connect: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  if (auto s = WriteFrame(fd, request); !s.ok()) {
    ::close(fd);
    return s;
  }
  auto reply = ReadFrame(fd);
  ::close(fd);
  return reply;
}

Result<Message> TcpClient::CallWithRetry(const std::string& host,
                                         std::uint16_t port,
                                         const Message& request,
                                         std::size_t attempts) {
  Result<Message> reply = Unavailable("no attempts made");
  for (std::size_t attempt = 0; attempt < std::max<std::size_t>(1, attempts);
       ++attempt) {
    reply = Call(host, port, request);
    if (reply.ok()) return reply;
  }
  return reply;
}

}  // namespace actyp::net
