#include "net/inproc.hpp"

#include <chrono>

#include "common/logging.hpp"

namespace actyp::net {

struct InProcNetwork::NodeRuntime {
  Address address;
  std::shared_ptr<Node> node;
  BlockingQueue<Envelope> mailbox;
  std::vector<std::thread> workers;
  Rng rng;

  NodeRuntime(Address addr, std::shared_ptr<Node> n, Rng r)
      : address(std::move(addr)), node(std::move(n)), rng(r) {}
};

class InProcNetwork::Context final : public NodeContext {
 public:
  Context(InProcNetwork* network, NodeRuntime* runtime)
      : network_(network), runtime_(runtime) {}

  [[nodiscard]] SimTime Now() const override {
    return network_->clock_.Now();
  }

  void Send(const Address& to, Message message) override {
    network_->Post(runtime_->address, to, std::move(message));
  }

  void Consume(SimDuration duration) override {
    const auto real = static_cast<std::int64_t>(
        static_cast<double>(duration) * network_->config_.time_scale);
    if (real > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(real));
    }
  }

  TimerId ScheduleSelf(SimDuration delay, Message message) override {
    Envelope env{runtime_->address, runtime_->address, std::move(message),
                 Now()};
    network_->Deliver(std::move(env), delay);
    return 0;  // the threaded transport does not support cancellation
  }

  Rng& rng() override { return runtime_->rng; }

  [[nodiscard]] const Address& self() const override {
    return runtime_->address;
  }

 private:
  InProcNetwork* network_;
  NodeRuntime* runtime_;
};

InProcNetwork::InProcNetwork(InProcConfig config)
    : config_(std::move(config)), seeder_(config_.seed) {
  scheduler_ = std::thread([this] { SchedulerLoop(); });
}

InProcNetwork::~InProcNetwork() { Shutdown(); }

Status InProcNetwork::AddNode(const Address& address,
                              std::shared_ptr<Node> node,
                              const NodePlacement& placement) {
  std::shared_ptr<NodeRuntime> runtime;
  {
    std::lock_guard<std::mutex> lock(nodes_mu_);
    if (nodes_.count(address)) {
      return AlreadyExists("node '" + address + "'");
    }
    runtime =
        std::make_shared<NodeRuntime>(address, std::move(node), seeder_.Fork());
    nodes_[address] = runtime;
  }

  {
    Context ctx(this, runtime.get());
    runtime->node->OnStart(ctx);
  }

  const int servers = std::max(1, placement.servers);
  for (int i = 0; i < servers; ++i) {
    runtime->workers.emplace_back([this, runtime] {
      Context ctx(this, runtime.get());
      while (auto envelope = runtime->mailbox.Pop()) {
        runtime->node->OnMessage(*envelope, ctx);
      }
    });
  }
  return Status::Ok();
}

Status InProcNetwork::RemoveNode(const Address& address) {
  std::shared_ptr<NodeRuntime> runtime;
  {
    std::lock_guard<std::mutex> lock(nodes_mu_);
    auto it = nodes_.find(address);
    if (it == nodes_.end()) return NotFound("node '" + address + "'");
    runtime = it->second;
    nodes_.erase(it);
  }
  runtime->mailbox.Close();
  for (auto& worker : runtime->workers) worker.join();
  return Status::Ok();
}

bool InProcNetwork::HasNode(const Address& address) const {
  std::lock_guard<std::mutex> lock(nodes_mu_);
  return nodes_.count(address) > 0;
}

void InProcNetwork::Post(const Address& from, const Address& to,
                         Message message) {
  Envelope env{from, to, std::move(message), clock_.Now()};
  const SimDuration latency =
      config_.latency ? config_.latency(from, to) : 0;
  Deliver(std::move(env), latency);
}

void InProcNetwork::Deliver(Envelope envelope, SimDuration delay) {
  const auto real_delay = static_cast<SimDuration>(
      static_cast<double>(delay) * config_.time_scale);
  if (real_delay <= 0) {
    std::shared_ptr<NodeRuntime> runtime;
    {
      std::lock_guard<std::mutex> lock(nodes_mu_);
      auto it = nodes_.find(envelope.to);
      if (it == nodes_.end()) {
        ACTYP_DEBUG << "dropping message to unknown node '" << envelope.to
                    << "'";
        return;
      }
      runtime = it->second;
    }
    runtime->mailbox.Push(std::move(envelope));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    timers_.push(
        Timed{clock_.Now() + real_delay, timer_seq_++, std::move(envelope)});
  }
  timer_cv_.notify_one();
}

void InProcNetwork::SchedulerLoop() {
  std::unique_lock<std::mutex> lock(timer_mu_);
  while (!stopping_.load()) {
    if (timers_.empty()) {
      timer_cv_.wait(lock);
      continue;
    }
    const SimTime due = timers_.top().due;
    const SimTime now = clock_.Now();
    if (now < due) {
      timer_cv_.wait_for(lock, std::chrono::microseconds(due - now));
      continue;
    }
    Envelope envelope = timers_.top().envelope;
    timers_.pop();
    lock.unlock();
    Deliver(std::move(envelope), 0);
    lock.lock();
  }
}

void InProcNetwork::Shutdown() {
  if (stopping_.exchange(true)) return;
  timer_cv_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();

  std::map<Address, std::shared_ptr<NodeRuntime>> nodes;
  {
    std::lock_guard<std::mutex> lock(nodes_mu_);
    nodes.swap(nodes_);
  }
  for (auto& [address, runtime] : nodes) {
    runtime->mailbox.Close();
    for (auto& worker : runtime->workers) worker.join();
  }
}

}  // namespace actyp::net
