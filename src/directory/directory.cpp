#include "directory/directory.hpp"

#include <algorithm>

namespace actyp::directory {

std::optional<PoolInstance> DirectoryApi::PickRandom(
    const std::string& pool_name, Rng& rng) const {
  auto instances = Lookup(pool_name);
  if (instances.empty()) return std::nullopt;
  return instances[rng.NextBounded(instances.size())];
}

std::vector<PoolManagerEntry> DirectoryApi::PoolManagersExcluding(
    const std::vector<std::string>& exclude) const {
  auto all = PoolManagers();
  std::vector<PoolManagerEntry> out;
  for (auto& entry : all) {
    if (std::find(exclude.begin(), exclude.end(), entry.name) ==
        exclude.end()) {
      out.push_back(std::move(entry));
    }
  }
  return out;
}

Status DirectoryService::RegisterPool(const PoolInstance& instance) {
  if (instance.pool_name.empty()) {
    return InvalidArgument("pool instance must carry a pool name");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto& instances = pools_[instance.pool_name];
  if (instances.count(instance.instance)) {
    return AlreadyExists("pool '" + instance.pool_name + "' instance " +
                         std::to_string(instance.instance));
  }
  instances[instance.instance] = instance;
  return Status::Ok();
}

Status DirectoryService::UnregisterPool(const std::string& pool_name,
                                        std::uint32_t instance) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pools_.find(pool_name);
  if (it == pools_.end() || !it->second.count(instance)) {
    return NotFound("pool '" + pool_name + "' instance " +
                    std::to_string(instance));
  }
  it->second.erase(instance);
  if (it->second.empty()) pools_.erase(it);
  return Status::Ok();
}

std::vector<PoolInstance> DirectoryService::Lookup(
    const std::string& pool_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PoolInstance> out;
  auto it = pools_.find(pool_name);
  if (it == pools_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [num, inst] : it->second) out.push_back(inst);
  return out;
}

std::vector<std::string> DirectoryService::PoolNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(pools_.size());
  for (const auto& [name, instances] : pools_) names.push_back(name);
  return names;
}

std::size_t DirectoryService::pool_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [name, instances] : pools_) n += instances.size();
  return n;
}

Status DirectoryService::RegisterPoolManager(const PoolManagerEntry& entry) {
  if (entry.name.empty()) {
    return InvalidArgument("pool manager must have a name");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (pool_managers_.count(entry.name)) {
    return AlreadyExists("pool manager '" + entry.name + "'");
  }
  pool_managers_[entry.name] = entry;
  return Status::Ok();
}

Status DirectoryService::UnregisterPoolManager(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!pool_managers_.erase(name)) {
    return NotFound("pool manager '" + name + "'");
  }
  return Status::Ok();
}

std::vector<PoolManagerEntry> DirectoryService::PoolManagers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PoolManagerEntry> out;
  out.reserve(pool_managers_.size());
  for (const auto& [name, entry] : pool_managers_) out.push_back(entry);
  return out;
}

}  // namespace actyp::directory
