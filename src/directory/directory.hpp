// Local directory service (§5.2.2-5.2.3): pool managers track resource
// pools through it, and pool objects register themselves (pool name +
// self-generated instance number) once initialized. It also lists peer
// pool managers for query delegation. One directory exists per
// administrative domain; replicated stages within a domain share it.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace actyp::directory {

// Where a registered pool instance can be reached. `address` is a
// transport address (simnet node name, in-proc queue name, or host:port
// for TCP).
struct PoolInstance {
  std::string pool_name;   // signature/identifier (§5.2.2)
  std::uint32_t instance;  // self-generated instance number
  std::string address;
  std::size_t machine_count = 0;  // advisory, for splitting decisions
  // True when this instance holds a *partition* of the pool's machines
  // (a split pool, Fig. 7) rather than a full replica (Fig. 8). Queries
  // must fan out to every segment and aggregate the results.
  bool segment = false;
};

struct PoolManagerEntry {
  std::string name;
  std::string address;
  std::string domain;
};

class DirectoryService {
 public:
  // --- resource pools ---
  Status RegisterPool(const PoolInstance& instance);
  Status UnregisterPool(const std::string& pool_name, std::uint32_t instance);

  // All live instances of a pool name (empty when none exist).
  [[nodiscard]] std::vector<PoolInstance> Lookup(
      const std::string& pool_name) const;

  // Random instance selection, as the paper prescribes for pool managers.
  [[nodiscard]] std::optional<PoolInstance> PickRandom(
      const std::string& pool_name, Rng& rng) const;

  [[nodiscard]] std::vector<std::string> PoolNames() const;
  [[nodiscard]] std::size_t pool_count() const;

  // --- pool managers (delegation peers) ---
  Status RegisterPoolManager(const PoolManagerEntry& entry);
  Status UnregisterPoolManager(const std::string& name);
  [[nodiscard]] std::vector<PoolManagerEntry> PoolManagers() const;
  // Peers excluding the given names (used with the query's visited list).
  [[nodiscard]] std::vector<PoolManagerEntry> PoolManagersExcluding(
      const std::vector<std::string>& exclude) const;

 private:
  mutable std::mutex mu_;
  // pool name -> instance number -> entry
  std::map<std::string, std::map<std::uint32_t, PoolInstance>> pools_;
  std::map<std::string, PoolManagerEntry> pool_managers_;
};

}  // namespace actyp::directory
