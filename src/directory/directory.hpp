// Local directory service (§5.2.2-5.2.3): pool managers track resource
// pools through it, and pool objects register themselves (pool name +
// self-generated instance number) once initialized. It also lists peer
// pool managers for query delegation. One directory exists per
// administrative domain; replicated stages within a domain share it.
//
// `DirectoryApi` is the abstract surface the pipeline consumes:
// `DirectoryService` is the single authoritative implementation, and
// `replica::ReplicaHandle` (src/replica/) routes the same calls to the
// nearest reachable replica of a replicated directory group.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace actyp::directory {

// Where a registered pool instance can be reached. `address` is a
// transport address (simnet node name, in-proc queue name, or host:port
// for TCP).
struct PoolInstance {
  std::string pool_name;   // signature/identifier (§5.2.2)
  std::uint32_t instance;  // self-generated instance number
  std::string address;
  std::size_t machine_count = 0;  // advisory, for splitting decisions
  // True when this instance holds a *partition* of the pool's machines
  // (a split pool, Fig. 7) rather than a full replica (Fig. 8). Queries
  // must fan out to every segment and aggregate the results.
  bool segment = false;
};

struct PoolManagerEntry {
  std::string name;
  std::string address;
  std::string domain;
};

// The directory operations the pipeline stages depend on.
class DirectoryApi {
 public:
  virtual ~DirectoryApi() = default;

  // --- resource pools ---
  virtual Status RegisterPool(const PoolInstance& instance) = 0;
  virtual Status UnregisterPool(const std::string& pool_name,
                                std::uint32_t instance) = 0;

  // All live instances of a pool name (empty when none exist), ordered
  // by instance number.
  [[nodiscard]] virtual std::vector<PoolInstance> Lookup(
      const std::string& pool_name) const = 0;

  [[nodiscard]] virtual std::vector<std::string> PoolNames() const = 0;
  [[nodiscard]] virtual std::size_t pool_count() const = 0;

  // --- pool managers (delegation peers) ---
  virtual Status RegisterPoolManager(const PoolManagerEntry& entry) = 0;
  virtual Status UnregisterPoolManager(const std::string& name) = 0;
  [[nodiscard]] virtual std::vector<PoolManagerEntry> PoolManagers() const = 0;

  // Random instance selection, as the paper prescribes for pool
  // managers. Defined on the base in terms of Lookup so every
  // implementation consumes the caller's RNG identically.
  [[nodiscard]] std::optional<PoolInstance> PickRandom(
      const std::string& pool_name, Rng& rng) const;

  // Peers excluding the given names (used with the query's visited list).
  [[nodiscard]] std::vector<PoolManagerEntry> PoolManagersExcluding(
      const std::vector<std::string>& exclude) const;
};

class DirectoryService : public DirectoryApi {
 public:
  // --- resource pools ---
  Status RegisterPool(const PoolInstance& instance) override;
  Status UnregisterPool(const std::string& pool_name,
                        std::uint32_t instance) override;

  [[nodiscard]] std::vector<PoolInstance> Lookup(
      const std::string& pool_name) const override;

  [[nodiscard]] std::vector<std::string> PoolNames() const override;
  [[nodiscard]] std::size_t pool_count() const override;

  // --- pool managers (delegation peers) ---
  Status RegisterPoolManager(const PoolManagerEntry& entry) override;
  Status UnregisterPoolManager(const std::string& name) override;
  [[nodiscard]] std::vector<PoolManagerEntry> PoolManagers() const override;

 private:
  mutable std::mutex mu_;
  // pool name -> instance number -> entry
  std::map<std::string, std::map<std::uint32_t, PoolInstance>> pools_;
  std::map<std::string, PoolManagerEntry> pool_managers_;
};

}  // namespace actyp::directory
