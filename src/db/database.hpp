// ResourceDatabase: the "white pages" listing every machine in a domain
// (§4.1). Resource pools walk it at initialization, marking matched
// machines as taken; the monitor updates dynamic fields in place.
//
// Thread-safe: the threaded runtime has the monitor, pool managers, and
// pools touching it concurrently. The discrete-event runtime serializes
// access but uses the same interface.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "db/machine.hpp"
#include "query/query.hpp"

namespace actyp::db {

class ResourceDatabase {
 public:
  ResourceDatabase() = default;

  // Inserts a record; assigns an id if the record has none. Fails on
  // duplicate name.
  Result<MachineId> Add(MachineRecord record);

  // Copy-out accessors (callers never hold references into the table).
  [[nodiscard]] Result<MachineRecord> Get(MachineId id) const;
  [[nodiscard]] Result<MachineRecord> GetByName(const std::string& name) const;

  // Applies `mutate` to the record under the lock. Returns NotFound for
  // unknown ids.
  Status Update(MachineId id,
                const std::function<void(MachineRecord&)>& mutate);

  // Monitor fast path: overwrite dynamic state (fields 2-7).
  Status UpdateDynamic(MachineId id, const DynamicState& dyn);

  // Monitor batch path: one lock, one journal entry per id. Unknown ids
  // are skipped.
  void ApplyDynamic(
      const std::vector<std::pair<MachineId, DynamicState>>& batch);

  // --- taken marking (§5.2.3) ---
  // Atomically claims every *free, usable* machine matching the query,
  // up to `limit` (0 = unlimited), marking each taken by `pool_name`.
  // Returns the claimed ids.
  std::vector<MachineId> ClaimMatching(const query::Query& query,
                                       const std::string& pool_name,
                                       std::size_t limit = 0);
  // Releases every machine taken by `pool_name`; returns how many.
  std::size_t ReleaseAllFrom(const std::string& pool_name);
  Status Release(MachineId id, const std::string& pool_name);

  // Ids currently taken by `pool_name` (replicated pool instances load
  // the machine set their sibling already claimed).
  [[nodiscard]] std::vector<MachineId> ListTakenBy(
      const std::string& pool_name) const;

  // Walks all records (copy per record) — used by baselines and tools.
  void ForEach(const std::function<void(const MachineRecord&)>& fn) const;

  // Walks all records under one lock without copying — the monitor's
  // sweep path. `fn` must not call back into the database (the lock is
  // held) and must not retain the reference.
  void VisitAll(const std::function<void(const MachineRecord&)>& fn) const;

  // --- change tracking (dirty-id refresh) ---
  // Every mutation bumps a global version, stamps it on the record, and
  // appends the id to a bounded change journal. Consumers poll
  // ChangesSince with their cursor to learn which records changed,
  // making refresh cost proportional to churn instead of fleet size.

  // Version of the most recent mutation (0 = pristine database).
  [[nodiscard]] std::uint64_t version() const;

  // Appends the ids of records mutated after `since` to `out`
  // (ascending, deduplicated) and returns the new cursor. Returns
  // nullopt when `since` predates the retained journal window — the
  // caller must fall back to a full sweep and re-cursor at version().
  [[nodiscard]] std::optional<std::uint64_t> ChangesSince(
      std::uint64_t since, std::vector<MachineId>* out) const;

  // Batched read for the pools' periodic refresh sweep: one lock, no
  // record copies. Calls fn(position, record) for each id, with a null
  // record for unknown ids; the reference is only valid inside fn.
  void VisitRecords(
      const std::vector<MachineId>& ids,
      const std::function<void(std::size_t, const MachineRecord*)>& fn) const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t free_count() const;

  // Snapshot serialization: one record per line. LoadFrom adds the
  // records in `text` to this database (it is not cleared first).
  [[nodiscard]] std::string Serialize() const;
  Status LoadFrom(std::string_view text);

 private:
  // Stamps the next version on `rec` and journals the change. Caller
  // holds mu_.
  void MarkDirtyLocked(MachineRecord& rec);

  MachineId next_id_ = 1;
  mutable std::mutex mu_;
  std::map<MachineId, MachineRecord> records_;
  std::map<std::string, MachineId> by_name_;

  // Change journal: (version, id) pairs in strictly increasing version
  // order. Bounded: when it outgrows kJournalCapacity the oldest half
  // is dropped and journal_floor_ records the last discarded version,
  // so stale cursors are detected instead of silently missing changes.
  static constexpr std::size_t kJournalCapacity = 1 << 16;
  std::uint64_t version_ = 0;
  std::uint64_t journal_floor_ = 0;
  std::vector<std::pair<std::uint64_t, MachineId>> journal_;
};

}  // namespace actyp::db
