// MachineRecord: one white-pages entry, carrying every field of the
// PUNCH resource database (paper Fig. 3, fields 1-20).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/sim_time.hpp"
#include "common/status.hpp"

namespace actyp::db {

using MachineId = std::uint32_t;
inline constexpr MachineId kInvalidMachine = 0;

// Field 1: resource state.
enum class MachineState { kUp, kDown, kBlocked };

std::string_view MachineStateName(MachineState s);
std::optional<MachineState> ParseMachineState(std::string_view text);

// Fields 2-7: dynamic state maintained by the resource monitor.
struct DynamicState {
  double load = 0.0;              // field 2: current load average
  int active_jobs = 0;            // field 3
  double available_memory_mb = 0; // field 4
  double available_swap_mb = 0;   // field 5
  SimTime last_update = 0;        // field 6: time of last monitor update
  std::uint32_t service_flags = 0;// field 7: PUNCH service status flags
};

// Bits for DynamicState::service_flags.
enum ServiceFlag : std::uint32_t {
  kExecutionUnitUp = 1u << 0,
  kPvfsManagerUp = 1u << 1,
  kProxyServerUp = 1u << 2,
};

struct MachineRecord {
  MachineId id = kInvalidMachine;

  MachineState state = MachineState::kUp;  // field 1
  DynamicState dyn;                        // fields 2-7

  // Fields 8-11: relatively static machine description.
  double effective_speed = 1.0;  // field 8 (SPEC-like units)
  int num_cpus = 1;              // field 9
  double max_allowed_load = 1.0; // field 10
  std::string name;              // field 11 (host name, unique)

  // Field 12: machine object pointer — path to access/audit info (ssh
  // key, owner, server start instructions).
  std::string object_path;

  // Field 13: shared account identifier (e.g. "nobody"); empty if none.
  std::string shared_account;

  // Fields 14-15: TCP ports of the PUNCH execution unit and the PVFS
  // mount manager.
  std::uint16_t execution_unit_port = 0;
  std::uint16_t pvfs_mount_port = 0;

  // Fields 16-17: user groups allowed on this machine and tool groups it
  // supports.
  std::vector<std::string> user_groups;
  std::vector<std::string> tool_groups;

  // Field 18: shadow account pool pointer (name resolved through the
  // ShadowAccountRegistry).
  std::string shadow_pool;

  // Field 19: usage policy pointer (name resolved through the
  // PolicyRegistry); empty = no policy.
  std::string usage_policy;

  // Field 20: administrator-defined key-value parameters (arch, memory,
  // ostype, osversion, owner, swap, cms, ...). Keys are lower-case.
  std::map<std::string, std::string> params;

  // Marker used by resource pools (§5.2.3): name of the pool currently
  // owning this machine in its cache, empty when free. Not a Fig. 3
  // field — it is the "taken" mark the paper describes.
  std::string taken_by;

  // Change-tracking stamp maintained by ResourceDatabase: the global
  // database version at this record's last mutation. Lets consumers
  // (pool refresh sweeps, the monitor) skip records that did not change
  // since their cursor. Not a Fig. 3 field and not serialized.
  std::uint64_t version = 0;

  // Resolves a query rsrc attribute name against this record. Admin
  // params win; a set of built-in names map onto structured fields so
  // queries can constrain load, speed, cpus, memory, swap, and state.
  [[nodiscard]] std::optional<std::string> Attribute(
      const std::string& name) const;

  [[nodiscard]] bool IsUsable() const {
    return state == MachineState::kUp;
  }

  [[nodiscard]] bool AllowsUserGroup(const std::string& group) const;
  [[nodiscard]] bool SupportsToolGroup(const std::string& group) const;

  // One-record-per-line text serialization (field;field;...), used for
  // database snapshots.
  [[nodiscard]] std::string Serialize() const;
  static Result<MachineRecord> Deserialize(std::string_view line);
};

}  // namespace actyp::db
