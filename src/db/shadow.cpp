#include "db/shadow.hpp"

namespace actyp::db {

ShadowAccountPool::ShadowAccountPool(std::uint32_t first_uid,
                                     std::size_t count) {
  accounts_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    accounts_.push_back(
        ShadowAccount{first_uid + static_cast<std::uint32_t>(i), {}});
  }
}

Result<std::uint32_t> ShadowAccountPool::Acquire(
    const std::string& session_key) {
  if (session_key.empty()) {
    return InvalidArgument("shadow account needs a session key");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& account : accounts_) {
    if (account.current_session.empty()) {
      account.current_session = session_key;
      return account.uid;
    }
  }
  return Exhausted("no free shadow accounts");
}

Status ShadowAccountPool::Release(std::uint32_t uid,
                                  const std::string& session_key) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& account : accounts_) {
    if (account.uid == uid) {
      if (account.current_session != session_key) {
        return PermissionDenied("uid " + std::to_string(uid) +
                                " is not held by this session");
      }
      account.current_session.clear();
      return Status::Ok();
    }
  }
  return NotFound("uid " + std::to_string(uid));
}

std::size_t ShadowAccountPool::ReleaseSession(const std::string& session_key) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t released = 0;
  for (auto& account : accounts_) {
    if (account.current_session == session_key) {
      account.current_session.clear();
      ++released;
    }
  }
  return released;
}

std::size_t ShadowAccountPool::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return accounts_.size();
}

std::size_t ShadowAccountPool::free_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& account : accounts_) {
    if (account.current_session.empty()) ++n;
  }
  return n;
}

ShadowAccountPool& ShadowAccountRegistry::GetOrCreate(const std::string& name,
                                                      std::uint32_t first_uid,
                                                      std::size_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pools_.find(name);
  if (it != pools_.end()) return it->second;
  auto [inserted, ok] = pools_.emplace(
      std::piecewise_construct, std::forward_as_tuple(name),
      std::forward_as_tuple(first_uid, count));
  return inserted->second;
}

ShadowAccountPool* ShadowAccountRegistry::Find(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pools_.find(name);
  return it == pools_.end() ? nullptr : &it->second;
}

}  // namespace actyp::db
