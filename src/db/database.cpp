#include "db/database.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace actyp::db {

void ResourceDatabase::MarkDirtyLocked(MachineRecord& rec) {
  rec.version = ++version_;
  if (!journal_.empty() && journal_.back().second == rec.id) {
    // Same record mutated again before anyone read the journal entry:
    // advancing the tail entry's version keeps every cursor correct
    // (cursors below the new version still see the id) without growing
    // the journal — the common case for job-start/-end double updates.
    journal_.back().first = version_;
    return;
  }
  if (journal_.size() >= kJournalCapacity) {
    // Drop the oldest half; consumers whose cursor predates the floor
    // get a full-refresh signal from ChangesSince.
    const std::size_t keep = kJournalCapacity / 2;
    journal_floor_ = journal_[journal_.size() - keep - 1].first;
    journal_.erase(journal_.begin(),
                   journal_.end() - static_cast<std::ptrdiff_t>(keep));
  }
  journal_.emplace_back(version_, rec.id);
}

std::uint64_t ResourceDatabase::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

std::optional<std::uint64_t> ResourceDatabase::ChangesSince(
    std::uint64_t since, std::vector<MachineId>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (since < journal_floor_) return std::nullopt;
  const auto begin = std::upper_bound(
      journal_.begin(), journal_.end(), since,
      [](std::uint64_t v, const auto& entry) { return v < entry.first; });
  const std::size_t mark = out->size();
  for (auto it = begin; it != journal_.end(); ++it) {
    out->push_back(it->second);
  }
  std::sort(out->begin() + static_cast<std::ptrdiff_t>(mark), out->end());
  out->erase(std::unique(out->begin() + static_cast<std::ptrdiff_t>(mark),
                         out->end()),
             out->end());
  return version_;
}

Result<MachineId> ResourceDatabase::Add(MachineRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (record.name.empty()) {
    return InvalidArgument("machine record must have a name");
  }
  if (by_name_.count(record.name)) {
    return AlreadyExists("machine '" + record.name + "' already registered");
  }
  if (record.id == kInvalidMachine) {
    record.id = next_id_++;
  } else {
    if (records_.count(record.id)) {
      return AlreadyExists("machine id " + std::to_string(record.id) +
                           " already registered");
    }
    next_id_ = std::max(next_id_, record.id + 1);
  }
  const MachineId id = record.id;
  by_name_[record.name] = id;
  auto& stored = records_[id];
  stored = std::move(record);
  MarkDirtyLocked(stored);
  return id;
}

Result<MachineRecord> ResourceDatabase::Get(MachineId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(id);
  if (it == records_.end()) {
    return NotFound("machine id " + std::to_string(id));
  }
  return it->second;
}

Result<MachineRecord> ResourceDatabase::GetByName(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return NotFound("machine '" + name + "'");
  return records_.at(it->second);
}

Status ResourceDatabase::Update(
    MachineId id, const std::function<void(MachineRecord&)>& mutate) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(id);
  if (it == records_.end()) {
    return NotFound("machine id " + std::to_string(id));
  }
  const std::string old_name = it->second.name;
  mutate(it->second);
  it->second.id = id;  // id is immutable
  if (it->second.name != old_name) {
    by_name_.erase(old_name);
    by_name_[it->second.name] = id;
  }
  MarkDirtyLocked(it->second);
  return Status::Ok();
}

Status ResourceDatabase::UpdateDynamic(MachineId id, const DynamicState& dyn) {
  return Update(id, [&dyn](MachineRecord& rec) { rec.dyn = dyn; });
}

void ResourceDatabase::ApplyDynamic(
    const std::vector<std::pair<MachineId, DynamicState>>& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, dyn] : batch) {
    auto it = records_.find(id);
    if (it == records_.end()) continue;
    it->second.dyn = dyn;
    MarkDirtyLocked(it->second);
  }
}

std::vector<MachineId> ResourceDatabase::ClaimMatching(
    const query::Query& query, const std::string& pool_name,
    std::size_t limit) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MachineId> claimed;
  for (auto& [id, rec] : records_) {
    if (limit > 0 && claimed.size() >= limit) break;
    if (!rec.taken_by.empty() || !rec.IsUsable()) continue;
    const MachineRecord& snapshot = rec;
    if (!query.Matches([&snapshot](const std::string& name) {
          return snapshot.Attribute(name);
        })) {
      continue;
    }
    rec.taken_by = pool_name;
    MarkDirtyLocked(rec);
    claimed.push_back(id);
  }
  return claimed;
}

std::size_t ResourceDatabase::ReleaseAllFrom(const std::string& pool_name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t released = 0;
  for (auto& [id, rec] : records_) {
    if (rec.taken_by == pool_name) {
      rec.taken_by.clear();
      MarkDirtyLocked(rec);
      ++released;
    }
  }
  return released;
}

Status ResourceDatabase::Release(MachineId id, const std::string& pool_name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(id);
  if (it == records_.end()) {
    return NotFound("machine id " + std::to_string(id));
  }
  if (it->second.taken_by != pool_name) {
    return PermissionDenied("machine " + std::to_string(id) +
                            " is not taken by '" + pool_name + "'");
  }
  it->second.taken_by.clear();
  MarkDirtyLocked(it->second);
  return Status::Ok();
}

std::vector<MachineId> ResourceDatabase::ListTakenBy(
    const std::string& pool_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MachineId> out;
  for (const auto& [id, rec] : records_) {
    if (rec.taken_by == pool_name) out.push_back(id);
  }
  return out;
}

void ResourceDatabase::VisitRecords(
    const std::vector<MachineId>& ids,
    const std::function<void(std::size_t, const MachineRecord*)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto it = records_.find(ids[i]);
    fn(i, it == records_.end() ? nullptr : &it->second);
  }
}

void ResourceDatabase::ForEach(
    const std::function<void(const MachineRecord&)>& fn) const {
  std::vector<MachineRecord> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.reserve(records_.size());
    for (const auto& [id, rec] : records_) snapshot.push_back(rec);
  }
  for (const auto& rec : snapshot) fn(rec);
}

void ResourceDatabase::VisitAll(
    const std::function<void(const MachineRecord&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, rec] : records_) fn(rec);
}

std::size_t ResourceDatabase::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::size_t ResourceDatabase::free_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [id, rec] : records_) {
    if (rec.taken_by.empty() && rec.IsUsable()) ++n;
  }
  return n;
}

std::string ResourceDatabase::Serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [id, rec] : records_) {
    out += rec.Serialize();
    out += '\n';
  }
  return out;
}

Status ResourceDatabase::LoadFrom(std::string_view text) {
  for (const auto& line : Split(text, '\n')) {
    if (TrimView(line).empty()) continue;
    auto rec = MachineRecord::Deserialize(line);
    if (!rec.ok()) return rec.status();
    auto added = Add(std::move(rec.value()));
    if (!added.ok()) return added.status();
  }
  return Status::Ok();
}

}  // namespace actyp::db
