// Usage policies (Fig. 3 field 19). The paper describes this field as a
// pointer to a PUNCH metaprogram letting administrators express rules
// like "public users may only use this machine when its load is below a
// threshold". We implement a small rule language with that power:
//
//   policy  := rule (';' rule)*
//   rule    := ('allow'|'deny') [group-glob] ['if' cond (',' cond)*]
//   cond    := attr op value          (op: == != >= <= > < =~)
//
// Rules are evaluated in order; the first whose group matches the
// requesting user's access group *and* whose conditions all hold decides
// the outcome. No matching rule => allow (policies restrict, they do not
// grant).
//
// Example:  "deny public if load >= 0.5; allow"
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "db/machine.hpp"
#include "query/value.hpp"

namespace actyp::db {

class UsagePolicy {
 public:
  struct Rule {
    bool allow = true;
    std::string group_glob = "*";
    struct Cond {
      std::string attr;
      query::CmpOp op;
      query::Value value;
    };
    std::vector<Cond> conditions;
  };

  static Result<UsagePolicy> Parse(std::string_view text);

  // True when `group` may use the machine in its current state.
  [[nodiscard]] bool Evaluate(const MachineRecord& machine,
                              const std::string& group) const;

  [[nodiscard]] const std::vector<Rule>& rules() const { return rules_; }

 private:
  std::vector<Rule> rules_;
};

// Resolves field-19 policy names to parsed policies.
class PolicyRegistry {
 public:
  Status Register(const std::string& name, std::string_view policy_text);

  // Evaluates the machine's policy for `group`; machines without a
  // policy (or with an unregistered name) allow everyone — matching the
  // paper's "currently unimplemented" default-open behaviour.
  [[nodiscard]] bool Allows(const MachineRecord& machine,
                            const std::string& group) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, UsagePolicy> policies_;
};

}  // namespace actyp::db
