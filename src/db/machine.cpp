#include "db/machine.hpp"

#include <algorithm>
#include <cstdio>

#include "common/strings.hpp"

namespace actyp::db {

std::string_view MachineStateName(MachineState s) {
  switch (s) {
    case MachineState::kUp: return "up";
    case MachineState::kDown: return "down";
    case MachineState::kBlocked: return "blocked";
  }
  return "down";
}

std::optional<MachineState> ParseMachineState(std::string_view text) {
  const std::string lower = ToLower(text);
  if (lower == "up") return MachineState::kUp;
  if (lower == "down") return MachineState::kDown;
  if (lower == "blocked") return MachineState::kBlocked;
  return std::nullopt;
}

namespace {
std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}
}  // namespace

std::optional<std::string> MachineRecord::Attribute(
    const std::string& name) const {
  // Administrator-defined parameters take precedence (field 20); this is
  // what makes aggregation criteria extensible "on the fly".
  auto it = params.find(name);
  if (it != params.end()) return it->second;

  if (name == "state") return std::string(MachineStateName(state));
  if (name == "load") return FormatDouble(dyn.load);
  if (name == "activejobs") return std::to_string(dyn.active_jobs);
  if (name == "memory") return FormatDouble(dyn.available_memory_mb);
  if (name == "swap") return FormatDouble(dyn.available_swap_mb);
  if (name == "speed") return FormatDouble(effective_speed);
  if (name == "cpus" || name == "ncpus") return std::to_string(num_cpus);
  if (name == "maxload") return FormatDouble(max_allowed_load);
  if (name == "name" || name == "machine") return this->name;
  if (name == "sharedaccount") {
    return shared_account.empty() ? std::optional<std::string>()
                                  : std::optional<std::string>(shared_account);
  }
  return std::nullopt;
}

bool MachineRecord::AllowsUserGroup(const std::string& group) const {
  if (user_groups.empty()) return true;  // unrestricted
  const std::string lower = ToLower(group);
  return std::any_of(user_groups.begin(), user_groups.end(),
                     [&](const std::string& g) { return ToLower(g) == lower; });
}

bool MachineRecord::SupportsToolGroup(const std::string& group) const {
  if (tool_groups.empty()) return true;
  const std::string lower = ToLower(group);
  return std::any_of(tool_groups.begin(), tool_groups.end(),
                     [&](const std::string& g) { return ToLower(g) == lower; });
}

std::string MachineRecord::Serialize() const {
  // Order mirrors Fig. 3. Lists use ','; params use 'k=v' joined by ','.
  std::vector<std::string> fields;
  fields.emplace_back(std::to_string(id));
  fields.emplace_back(MachineStateName(state));
  fields.emplace_back(FormatDouble(dyn.load));
  fields.emplace_back(std::to_string(dyn.active_jobs));
  fields.emplace_back(FormatDouble(dyn.available_memory_mb));
  fields.emplace_back(FormatDouble(dyn.available_swap_mb));
  fields.emplace_back(std::to_string(dyn.last_update));
  fields.emplace_back(std::to_string(dyn.service_flags));
  fields.emplace_back(FormatDouble(effective_speed));
  fields.emplace_back(std::to_string(num_cpus));
  fields.emplace_back(FormatDouble(max_allowed_load));
  fields.emplace_back(name);
  fields.emplace_back(object_path);
  fields.emplace_back(shared_account);
  fields.emplace_back(std::to_string(execution_unit_port));
  fields.emplace_back(std::to_string(pvfs_mount_port));
  fields.emplace_back(Join(user_groups, ","));
  fields.emplace_back(Join(tool_groups, ","));
  fields.emplace_back(shadow_pool);
  fields.emplace_back(usage_policy);
  std::vector<std::string> kv;
  kv.reserve(params.size());
  for (const auto& [k, v] : params) kv.push_back(k + "=" + v);
  fields.emplace_back(Join(kv, ","));
  return Join(fields, ";");
}

Result<MachineRecord> MachineRecord::Deserialize(std::string_view line) {
  const auto fields = Split(line, ';');
  if (fields.size() != 21) {
    return InvalidArgument("machine record has " +
                           std::to_string(fields.size()) +
                           " fields, expected 21");
  }
  MachineRecord rec;
  auto want_int = [](const std::string& s,
                     std::string_view what) -> Result<std::int64_t> {
    auto v = ParseInt(s);
    if (!v) return InvalidArgument("bad integer for " + std::string(what));
    return *v;
  };
  auto want_double = [](const std::string& s,
                        std::string_view what) -> Result<double> {
    auto v = ParseDouble(s);
    if (!v) return InvalidArgument("bad number for " + std::string(what));
    return *v;
  };

  auto id = want_int(fields[0], "id");
  if (!id.ok()) return id.status();
  rec.id = static_cast<MachineId>(*id);

  auto state = ParseMachineState(fields[1]);
  if (!state) return InvalidArgument("bad machine state '" + fields[1] + "'");
  rec.state = *state;

  auto load = want_double(fields[2], "load");
  if (!load.ok()) return load.status();
  rec.dyn.load = *load;
  auto jobs = want_int(fields[3], "active_jobs");
  if (!jobs.ok()) return jobs.status();
  rec.dyn.active_jobs = static_cast<int>(*jobs);
  auto mem = want_double(fields[4], "memory");
  if (!mem.ok()) return mem.status();
  rec.dyn.available_memory_mb = *mem;
  auto swap = want_double(fields[5], "swap");
  if (!swap.ok()) return swap.status();
  rec.dyn.available_swap_mb = *swap;
  auto upd = want_int(fields[6], "last_update");
  if (!upd.ok()) return upd.status();
  rec.dyn.last_update = *upd;
  auto flags = want_int(fields[7], "service_flags");
  if (!flags.ok()) return flags.status();
  rec.dyn.service_flags = static_cast<std::uint32_t>(*flags);

  auto speed = want_double(fields[8], "effective_speed");
  if (!speed.ok()) return speed.status();
  rec.effective_speed = *speed;
  auto cpus = want_int(fields[9], "num_cpus");
  if (!cpus.ok()) return cpus.status();
  rec.num_cpus = static_cast<int>(*cpus);
  auto maxload = want_double(fields[10], "max_allowed_load");
  if (!maxload.ok()) return maxload.status();
  rec.max_allowed_load = *maxload;

  rec.name = fields[11];
  rec.object_path = fields[12];
  rec.shared_account = fields[13];

  auto eport = want_int(fields[14], "execution_unit_port");
  if (!eport.ok()) return eport.status();
  rec.execution_unit_port = static_cast<std::uint16_t>(*eport);
  auto pport = want_int(fields[15], "pvfs_mount_port");
  if (!pport.ok()) return pport.status();
  rec.pvfs_mount_port = static_cast<std::uint16_t>(*pport);

  rec.user_groups = SplitSkipEmpty(fields[16], ',');
  rec.tool_groups = SplitSkipEmpty(fields[17], ',');
  rec.shadow_pool = fields[18];
  rec.usage_policy = fields[19];

  for (const auto& pair : SplitSkipEmpty(fields[20], ',')) {
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return InvalidArgument("bad admin param '" + pair + "'");
    }
    rec.params[ToLower(Trim(pair.substr(0, eq)))] = Trim(pair.substr(eq + 1));
  }
  return rec;
}

}  // namespace actyp::db
