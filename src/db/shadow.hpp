// Shadow accounts (Fig. 3 field 18): per-machine pools of logical user
// accounts not tied to any individual user. ActYP allocates one per run
// and the network desktop relinquishes it when the run completes (§2).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"

namespace actyp::db {

struct ShadowAccount {
  std::uint32_t uid = 0;
  std::string current_session;  // empty = free
};

// One pool of shadow accounts (typically one per machine or per cluster).
class ShadowAccountPool {
 public:
  ShadowAccountPool() = default;
  ShadowAccountPool(std::uint32_t first_uid, std::size_t count);

  // Claims a free uid for `session_key`.
  Result<std::uint32_t> Acquire(const std::string& session_key);
  Status Release(std::uint32_t uid, const std::string& session_key);
  // Releases every account held by the session (crash cleanup).
  std::size_t ReleaseSession(const std::string& session_key);

  [[nodiscard]] std::size_t total() const;
  [[nodiscard]] std::size_t free_count() const;

 private:
  mutable std::mutex mu_;
  std::vector<ShadowAccount> accounts_;
};

// Registry resolving Fig. 3's "shadow account pool pointer" names.
class ShadowAccountRegistry {
 public:
  // Creates (or returns the existing) pool under `name`.
  ShadowAccountPool& GetOrCreate(const std::string& name,
                                 std::uint32_t first_uid,
                                 std::size_t count);
  [[nodiscard]] ShadowAccountPool* Find(const std::string& name);

 private:
  std::mutex mu_;
  std::unordered_map<std::string, ShadowAccountPool> pools_;
};

}  // namespace actyp::db
