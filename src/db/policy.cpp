#include "db/policy.hpp"

#include "common/strings.hpp"

namespace actyp::db {
namespace {

Result<UsagePolicy::Rule::Cond> ParseCond(std::string_view text) {
  // attr op value — find the operator (two-char ops first).
  for (const std::string_view op_text :
       {">=", "<=", "==", "!=", "=~", ">", "<"}) {
    const std::size_t pos = text.find(op_text);
    if (pos == std::string_view::npos) continue;
    UsagePolicy::Rule::Cond cond;
    cond.attr = ToLower(Trim(text.substr(0, pos)));
    cond.op = *query::ParseCmpOp(op_text);
    cond.value = query::Value(Trim(text.substr(pos + op_text.size())));
    if (cond.attr.empty() || cond.value.text().empty()) {
      return InvalidArgument("bad policy condition '" + std::string(text) +
                             "'");
    }
    return cond;
  }
  return InvalidArgument("no operator in policy condition '" +
                         std::string(text) + "'");
}

}  // namespace

Result<UsagePolicy> UsagePolicy::Parse(std::string_view text) {
  UsagePolicy policy;
  for (const auto& rule_text : SplitSkipEmpty(text, ';')) {
    const std::string_view trimmed = TrimView(rule_text);
    if (trimmed.empty()) continue;

    Rule rule;
    std::string_view rest = trimmed;
    if (StartsWith(rest, "allow")) {
      rule.allow = true;
      rest = TrimView(rest.substr(5));
    } else if (StartsWith(rest, "deny")) {
      rule.allow = false;
      rest = TrimView(rest.substr(4));
    } else {
      return InvalidArgument("policy rule must start with allow/deny: '" +
                             std::string(trimmed) + "'");
    }

    // Optional group glob up to 'if'.
    const std::size_t if_pos = rest.find("if ");
    std::string_view group_part =
        if_pos == std::string_view::npos ? rest : rest.substr(0, if_pos);
    std::string_view cond_part =
        if_pos == std::string_view::npos ? std::string_view()
                                         : rest.substr(if_pos + 3);
    group_part = TrimView(group_part);
    if (!group_part.empty()) rule.group_glob = ToLower(Trim(group_part));

    for (const auto& cond_text : SplitSkipEmpty(cond_part, ',')) {
      if (TrimView(cond_text).empty()) continue;
      auto cond = ParseCond(TrimView(cond_text));
      if (!cond.ok()) return cond.status();
      rule.conditions.push_back(std::move(cond.value()));
    }
    policy.rules_.push_back(std::move(rule));
  }
  if (policy.rules_.empty()) return InvalidArgument("empty policy");
  return policy;
}

bool UsagePolicy::Evaluate(const MachineRecord& machine,
                           const std::string& group) const {
  const std::string lower_group = ToLower(group);
  for (const auto& rule : rules_) {
    if (!GlobMatch(rule.group_glob, lower_group)) continue;
    bool holds = true;
    for (const auto& cond : rule.conditions) {
      const auto attr = machine.Attribute(cond.attr);
      if (!attr || !query::EvalCmp(query::Value(*attr), cond.op, cond.value)) {
        holds = false;
        break;
      }
    }
    if (holds) return rule.allow;
  }
  return true;  // no rule matched: allow
}

Status PolicyRegistry::Register(const std::string& name,
                                std::string_view policy_text) {
  auto policy = UsagePolicy::Parse(policy_text);
  if (!policy.ok()) return policy.status();
  std::lock_guard<std::mutex> lock(mu_);
  policies_[name] = std::move(policy.value());
  return Status::Ok();
}

bool PolicyRegistry::Allows(const MachineRecord& machine,
                            const std::string& group) const {
  if (machine.usage_policy.empty()) return true;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = policies_.find(machine.usage_policy);
  if (it == policies_.end()) return true;
  return it->second.Evaluate(machine, group);
}

}  // namespace actyp::db
