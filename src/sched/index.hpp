// SchedulingIndex: the incrementally-maintained replacement for the
// paper's "sort every 2 s + linear scan" scheduling process. The pool's
// cache order never changes; the index keeps one 4-ary min-heap of
// cache indices per replication stride class, ordered by the policy
// objective with the cache index as the deterministic tie-break — the
// exact total order the legacy linear scan resolves.
//
// Selection is a best-first traversal of the instance's own class heap
// (then, only when that class has no eligible machine, of the sibling
// classes merged): each visited node counts as one entry examined, so
// `entries_examined` shows the asymptotic win over the O(n) scan while
// remaining an honest service-time driver. On a mostly-idle pool a
// query examines one or two entries instead of the whole cache.
//
// The pool calls Update(i) whenever entry i's objective inputs change
// (allocate, release, refresh) and Rebuild() after bulk reloads; both
// reuse the heap storage, allocation-free in steady state.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/policy.hpp"

namespace actyp::sched {

class SchedulingIndex {
 public:
  // `policy` must outlive the index. `instance_count` fixes the stride
  // partition (class of entry i = i mod instance_count).
  SchedulingIndex(const SchedulingPolicy* policy, std::uint32_t instance,
                  std::uint32_t instance_count);

  // Rebuilds every class heap from `cache` (Floyd heapify, O(n)).
  void Rebuild(const std::vector<CacheEntry>& cache);

  // Re-positions entry `index` after its objective inputs changed.
  void Update(const std::vector<CacheEntry>& cache, std::size_t index);

  // Equivalent to the legacy linear SchedulingPolicy::Select on the
  // same cache and context (same chosen index), in near-constant
  // examined entries. `ctx.instance` may override the constructor's
  // instance; `ctx.instance_count` must match the constructor's.
  [[nodiscard]] Selection Select(const std::vector<CacheEntry>& cache,
                                 const SelectionContext& ctx) const;

  [[nodiscard]] std::size_t size() const { return pos_.size(); }

 private:
  struct Node {
    std::uint32_t cls;
    std::uint32_t heap_pos;
  };

  [[nodiscard]] bool Less(const std::vector<CacheEntry>& cache,
                          std::uint32_t a, std::uint32_t b) const {
    if (policy_->Better(cache[a], cache[b])) return true;
    if (policy_->Better(cache[b], cache[a])) return false;
    return a < b;  // the linear scan's first-wins tie-break
  }

  void SiftUp(const std::vector<CacheEntry>& cache, std::uint32_t cls,
              std::size_t pos);
  void SiftDown(const std::vector<CacheEntry>& cache, std::uint32_t cls,
                std::size_t pos);

  // Best-first traversal of one class heap (own == true) or of every
  // class except `own_cls` merged. Returns SIZE_MAX when no eligible
  // entry passes the filter; adds visited nodes to `examined`.
  [[nodiscard]] std::size_t Search(const std::vector<CacheEntry>& cache,
                                   const SelectionContext& ctx,
                                   std::uint32_t own_cls, bool own,
                                   std::size_t* examined) const;

  const SchedulingPolicy* policy_;
  std::uint32_t instance_;
  std::uint32_t stride_;
  std::vector<std::vector<std::uint32_t>> heaps_;  // per class: cache indices
  std::vector<Node> pos_;                          // cache index -> heap slot
  // Scratch for Search: (class, heap position) frontier.
  mutable std::vector<std::pair<std::uint32_t, std::uint32_t>> frontier_;
};

}  // namespace actyp::sched
