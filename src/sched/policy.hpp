// Scheduling objectives for resource pools (§5.2.3): each pool object
// has scheduling processes that (a) periodically sort the machines in
// its cache by a configured criterion and (b) select a machine for each
// incoming query with a *linear* search — the paper calls out that the
// linear response-time plots of Fig. 6 "are simply a function of the
// linear search algorithms employed for scheduling", so selection cost
// is proportional to the number of entries examined.
//
// This reproduction keeps that legacy behaviour behind the "linear-*"
// policy names (linear-least-load, linear-most-memory, linear-fastest)
// so Fig. 6's curves stay reproducible, and makes the bare names
// (least-load, most-memory, fastest) *indexed*: pools maintain an
// incrementally-updated SchedulingIndex (sched/index.hpp) and answer
// queries in near-constant entries examined instead of O(n).
//
// Replicated pool instances maintain scheduling integrity via an
// instance-specific bias: instance i of n prefers every i-th machine
// (Fig. 8), so replicas racing over the same machine set rarely collide.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "common/status.hpp"
#include "db/machine.hpp"

namespace actyp::sched {

// A pool's cached view of one machine (loaded from the white pages at
// pool initialization, refreshed from monitor data). Deliberately kept
// to the plain scheduling attributes — the selection scan walks these
// back to back, and identity strings live in the pool's parallel
// metadata table instead of widening every entry.
struct CacheEntry {
  db::MachineId id = db::kInvalidMachine;
  double load = 0.0;
  double available_memory_mb = 0.0;
  double effective_speed = 1.0;
  int num_cpus = 1;
  double max_allowed_load = 1.0;
  int active_jobs = 0;
  bool allocated = false;  // currently handed to a client
  SimTime updated = 0;
};

struct SelectionContext {
  // Replication bias: this instance prefers entries whose index ≡
  // instance (mod instance_count). instance_count == 1 disables bias.
  std::uint32_t instance = 0;
  std::uint32_t instance_count = 1;
  Rng* rng = nullptr;  // for RandomPolicy
  // Optional per-query eligibility filter (user-group / usage-policy
  // checks); receives the entry index and entry. nullptr = all pass.
  const std::function<bool(std::size_t, const CacheEntry&)>* filter = nullptr;
};

struct Selection {
  std::size_t index = SIZE_MAX;
  std::size_t examined = 0;  // entries visited; drives service-time cost
  [[nodiscard]] bool found() const { return index != SIZE_MAX; }
};

class SchedulingPolicy {
 public:
  explicit SchedulingPolicy(bool indexed = false) : indexed_(indexed) {}
  virtual ~SchedulingPolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  // True when the pool should maintain a SchedulingIndex and select
  // through it; false runs the legacy Select scan on every query.
  [[nodiscard]] bool indexed() const { return indexed_; }

  // True when `a` should be preferred over `b` (used by the periodic
  // re-sort process and as the index ordering).
  [[nodiscard]] virtual bool Better(const CacheEntry& a,
                                    const CacheEntry& b) const = 0;

  // Linear scan for the best *free* usable machine, honouring the
  // replication bias: the instance's preferred stride is scanned first,
  // then the remainder. Returns the chosen index and entries examined.
  [[nodiscard]] virtual Selection Select(const std::vector<CacheEntry>& cache,
                                         const SelectionContext& ctx) const;

  // Eligibility shared by all policies and by the index.
  [[nodiscard]] static bool Eligible(const CacheEntry& entry) {
    return !entry.allocated &&
           entry.load < entry.max_allowed_load +
                            static_cast<double>(entry.num_cpus) - 1.0;
  }

 private:
  bool indexed_ = false;
};

// Lowest current load wins (default PUNCH objective).
class LeastLoadPolicy final : public SchedulingPolicy {
 public:
  explicit LeastLoadPolicy(bool indexed = true) : SchedulingPolicy(indexed) {}
  [[nodiscard]] std::string name() const override {
    return indexed() ? "least-load" : "linear-least-load";
  }
  [[nodiscard]] bool Better(const CacheEntry& a,
                            const CacheEntry& b) const override;
  [[nodiscard]] Selection Select(const std::vector<CacheEntry>& cache,
                                 const SelectionContext& ctx) const override;
};

// Largest available memory wins.
class MostMemoryPolicy final : public SchedulingPolicy {
 public:
  explicit MostMemoryPolicy(bool indexed = true) : SchedulingPolicy(indexed) {}
  [[nodiscard]] std::string name() const override {
    return indexed() ? "most-memory" : "linear-most-memory";
  }
  [[nodiscard]] bool Better(const CacheEntry& a,
                            const CacheEntry& b) const override;
  [[nodiscard]] Selection Select(const std::vector<CacheEntry>& cache,
                                 const SelectionContext& ctx) const override;
};

// Highest effective speed wins; ties broken by load.
class FastestPolicy final : public SchedulingPolicy {
 public:
  explicit FastestPolicy(bool indexed = true) : SchedulingPolicy(indexed) {}
  [[nodiscard]] std::string name() const override {
    return indexed() ? "fastest" : "linear-fastest";
  }
  [[nodiscard]] bool Better(const CacheEntry& a,
                            const CacheEntry& b) const override;
  [[nodiscard]] Selection Select(const std::vector<CacheEntry>& cache,
                                 const SelectionContext& ctx) const override;
};

// First free machine after a moving cursor (cheap, fair).
class RoundRobinPolicy final : public SchedulingPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "round-robin"; }
  [[nodiscard]] bool Better(const CacheEntry& a,
                            const CacheEntry& b) const override;
  [[nodiscard]] Selection Select(const std::vector<CacheEntry>& cache,
                                 const SelectionContext& ctx) const override;

 private:
  mutable std::size_t cursor_ = 0;
};

// Uniformly random free machine (baseline for ablations).
class RandomPolicy final : public SchedulingPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "random"; }
  [[nodiscard]] bool Better(const CacheEntry& a,
                            const CacheEntry& b) const override;
  [[nodiscard]] Selection Select(const std::vector<CacheEntry>& cache,
                                 const SelectionContext& ctx) const override;
};

// Factory by name. Indexed fast paths: "least-load", "most-memory",
// "fastest". Legacy linear scans: "linear-least-load",
// "linear-most-memory", "linear-fastest". Unordered: "round-robin",
// "random".
Result<std::unique_ptr<SchedulingPolicy>> MakePolicy(const std::string& name);

}  // namespace actyp::sched
