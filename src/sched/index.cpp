#include "sched/index.hpp"

#include <algorithm>

namespace actyp::sched {
namespace {

constexpr std::uint32_t kArity = 4;

}  // namespace

SchedulingIndex::SchedulingIndex(const SchedulingPolicy* policy,
                                 std::uint32_t instance,
                                 std::uint32_t instance_count)
    : policy_(policy),
      instance_(instance),
      stride_(std::max<std::uint32_t>(1, instance_count)) {
  heaps_.resize(stride_);
}

void SchedulingIndex::Rebuild(const std::vector<CacheEntry>& cache) {
  for (auto& heap : heaps_) heap.clear();
  pos_.resize(cache.size());
  for (std::size_t i = 0; i < cache.size(); ++i) {
    const auto cls = static_cast<std::uint32_t>(i % stride_);
    pos_[i] = Node{cls, static_cast<std::uint32_t>(heaps_[cls].size())};
    heaps_[cls].push_back(static_cast<std::uint32_t>(i));
  }
  for (std::uint32_t cls = 0; cls < stride_; ++cls) {
    const std::size_t n = heaps_[cls].size();
    if (n < 2) continue;
    for (std::size_t p = (n - 2) / kArity + 1; p-- > 0;) {
      SiftDown(cache, cls, p);
    }
  }
}

void SchedulingIndex::Update(const std::vector<CacheEntry>& cache,
                             std::size_t index) {
  const Node node = pos_[index];
  SiftUp(cache, node.cls, node.heap_pos);
  SiftDown(cache, node.cls, pos_[index].heap_pos);
}

void SchedulingIndex::SiftUp(const std::vector<CacheEntry>& cache,
                             std::uint32_t cls, std::size_t pos) {
  auto& heap = heaps_[cls];
  const std::uint32_t entry = heap[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / kArity;
    if (!Less(cache, entry, heap[parent])) break;
    heap[pos] = heap[parent];
    pos_[heap[pos]].heap_pos = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap[pos] = entry;
  pos_[entry].heap_pos = static_cast<std::uint32_t>(pos);
}

void SchedulingIndex::SiftDown(const std::vector<CacheEntry>& cache,
                               std::uint32_t cls, std::size_t pos) {
  auto& heap = heaps_[cls];
  const std::uint32_t entry = heap[pos];
  const std::size_t n = heap.size();
  for (;;) {
    const std::size_t first_child = pos * kArity + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + kArity, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (Less(cache, heap[c], heap[best])) best = c;
    }
    if (!Less(cache, heap[best], entry)) break;
    heap[pos] = heap[best];
    pos_[heap[pos]].heap_pos = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap[pos] = entry;
  pos_[entry].heap_pos = static_cast<std::uint32_t>(pos);
}

std::size_t SchedulingIndex::Search(const std::vector<CacheEntry>& cache,
                                    const SelectionContext& ctx,
                                    std::uint32_t own_cls, bool own,
                                    std::size_t* examined) const {
  frontier_.clear();
  if (own) {
    if (!heaps_[own_cls].empty()) frontier_.emplace_back(own_cls, 0);
  } else {
    for (std::uint32_t cls = 0; cls < stride_; ++cls) {
      if (cls != own_cls && !heaps_[cls].empty()) {
        frontier_.emplace_back(cls, 0);
      }
    }
  }

  while (!frontier_.empty()) {
    // Pop the frontier node whose entry is minimal in (objective, index)
    // order; the heap property guarantees the traversal visits entries
    // in exactly the order the linear scan would prefer them.
    std::size_t best = 0;
    for (std::size_t f = 1; f < frontier_.size(); ++f) {
      if (Less(cache, heaps_[frontier_[f].first][frontier_[f].second],
               heaps_[frontier_[best].first][frontier_[best].second])) {
        best = f;
      }
    }
    const auto [cls, pos] = frontier_[best];
    frontier_[best] = frontier_.back();
    frontier_.pop_back();

    const std::uint32_t entry = heaps_[cls][pos];
    ++*examined;
    if (SchedulingPolicy::Eligible(cache[entry]) &&
        (!ctx.filter || (*ctx.filter)(entry, cache[entry]))) {
      return entry;
    }
    const std::size_t n = heaps_[cls].size();
    const std::size_t first_child =
        static_cast<std::size_t>(pos) * kArity + 1;
    const std::size_t last_child = std::min(first_child + kArity, n);
    for (std::size_t c = first_child; c < last_child; ++c) {
      frontier_.emplace_back(cls, static_cast<std::uint32_t>(c));
    }
  }
  return SIZE_MAX;
}

Selection SchedulingIndex::Select(const std::vector<CacheEntry>& cache,
                                  const SelectionContext& ctx) const {
  Selection result;
  if (cache.empty()) return result;
  const std::uint32_t own_cls = ctx.instance % stride_;
  result.index = Search(cache, ctx, own_cls, /*own=*/true, &result.examined);
  if (result.index == SIZE_MAX && stride_ > 1) {
    result.index =
        Search(cache, ctx, own_cls, /*own=*/false, &result.examined);
  }
  return result;
}

}  // namespace actyp::sched
